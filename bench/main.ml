(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

   Usage: dune exec bench/main.exe [-- SECTION ...] [--metrics-out=FILE]
                                   [--jobs=N] [--trace-cache=DIR|off]
   Sections: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
             fig14 speed storage bechamel (default: all).

   --jobs=N runs the independent simulations of the shared Parboil batch
   (and the cycle-skip pair) across N domains. Simulated results are
   bit-identical at any job count; only host-time readings (MIPS,
   host_seconds) wobble under contention, so commit baselines from a
   serial run.

   Traces flow through the trace store (lib/trace/store.ml): every section
   asks for its workload via Runner.trace_cached, so one invocation
   interprets each (workload, tile spec) exactly once no matter how many
   sections or --jobs workers want it, and warm re-invocations load traces
   from the on-disk cache instead of interpreting at all. --trace-cache=DIR
   points the disk cache somewhere explicit (off/none disables it;
   MOSAICSIM_TRACE_CACHE is the environment equivalent). Cached traces are
   bit-identical to fresh ones, so simulated cycles never depend on cache
   state — the speed section's trace_gen_seconds gauges do.

   Each section's host time is published as a "bench.SECTION.host_seconds"
   gauge in a metrics registry; a per-phase summary is printed at the end
   and --metrics-out=FILE dumps the registry (CSV, or JSON for .json). *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config
module X86 = Mosaic_baseline.X86_model
module Trace = Mosaic_trace.Trace
module Table = Mosaic_util.Table
module Stats = Mosaic_util.Stats
module Dse = Mosaic_accel.Dse

let fcell = Table.fcell
let icell = Table.icell

(* ------------------------------------------------------------------ *)
(* Shared Parboil runs (Figs 5, 6 and the speed/storage tables)        *)
(* ------------------------------------------------------------------ *)

type parboil_result = {
  pname : string;
  mosaic_cycles : int;
  x86_cycles : int;
  ipc : float;
  dyn : int;
  mem_accesses : int;
  control_bytes : int;
  memory_bytes : int;
  comp_control : int;
  comp_memory : int;
  mips : float;
  host_seconds : float;
  trace_gen_seconds : float;
  trace_source : Mosaic_trace.Store.source;
}

let run_parboil name =
  let inst = W.Registry.instance name in
  let trace, cache = W.Runner.trace_cached_full inst ~ntiles:1 in
  let comp_control, comp_memory = Trace.compressed_bytes trace in
  let r =
    Soc.run_homogeneous Presets.xeon_soc ~program:inst.W.Runner.program ~trace
      ~tile_config:TC.out_of_order
  in
  let x =
    X86.run ~program:inst.W.Runner.program ~trace
      ~hierarchy:Presets.xeon_hierarchy ()
  in
  let control_bytes, memory_bytes = Trace.storage_bytes trace in
  {
    pname = name;
    mosaic_cycles = r.Soc.cycles;
    x86_cycles = x.X86.cycles;
    ipc = r.Soc.ipc;
    dyn = Trace.total_dyn_instrs trace;
    mem_accesses = Trace.total_mem_accesses trace;
    control_bytes;
    memory_bytes;
    comp_control;
    comp_memory;
    mips = r.Soc.mips;
    host_seconds = r.Soc.host_seconds;
    trace_gen_seconds = cache.Mosaic_trace.Store.gen_seconds;
    trace_source = cache.Mosaic_trace.Store.source;
  }

(* Set from --jobs=N before any section runs. *)
let jobs = ref 1

(* Set from --shards=N: shard count for the intra-run parallelism section
   of the speed suite; 0 means auto (2). Explicitly requesting both
   --jobs > 1 and --shards > 1 is refused — a batch of sharded runs would
   spawn jobs*shards domains and oversubscribe. *)
let shards = ref 0

let parboil_results =
  lazy
    (W.Runner.run_batch ~jobs:!jobs
       (List.map (fun name () -> run_parboil name) W.Registry.parboil_names))

(* ------------------------------------------------------------------ *)
(* Tables I and II                                                     *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Table.print ~title:"Table I: evaluation system (Intel Xeon E5-2667 v3)"
    ~columns:
      [ Table.column ~align:Table.Left "parameter"; Table.column ~align:Table.Left "value" ]
    (List.map (fun (k, v) -> [ k; v ]) Presets.table1_rows)

let table2 () =
  Table.print ~title:"Table II: DAE case-study parameters"
    ~columns:
      [ Table.column ~align:Table.Left "parameter"; Table.column ~align:Table.Left "value" ]
    (List.map (fun (k, v) -> [ k; v ]) Presets.table2_rows)

(* ------------------------------------------------------------------ *)
(* Fig 5: runtime accuracy; Fig 6: IPC characterization                *)
(* ------------------------------------------------------------------ *)

let paper_fig5 =
  [
    ("bfs", 0.97); ("cutcp", 0.72); ("histo", 2.21); ("lbm", 0.88);
    ("mri-gridding", 1.53); ("mri-q", 0.16); ("sad", 1.11); ("sgemm", 1.65);
    ("spmv", 1.37); ("stencil", 1.03); ("tpacf", 3.29);
  ]

let paper_fig6 =
  [
    ("bfs", 0.84); ("tpacf", 1.36); ("histo", 1.4); ("stencil", 1.65);
    ("lbm", 1.95); ("spmv", 2.06); ("mri-gridding", 2.35); ("mri-q", 2.42);
    ("cutcp", 2.48); ("sgemm", 3.05); ("sad", 3.7);
  ]

let fig5 () =
  let rs = Lazy.force parboil_results in
  Table.print
    ~title:"Fig 5: runtime accuracy factor (MosaicSim cycles / x86 cycles)"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "mosaic cyc";
        Table.column "x86 cyc";
        Table.column "factor";
        Table.column "paper";
      ]
    (List.map
       (fun r ->
         [
           r.pname;
           icell r.mosaic_cycles;
           icell r.x86_cycles;
           fcell (float_of_int r.mosaic_cycles /. float_of_int r.x86_cycles);
           fcell (List.assoc r.pname paper_fig5);
         ])
       rs);
  let factors =
    List.map
      (fun r -> float_of_int r.mosaic_cycles /. float_of_int r.x86_cycles)
      rs
  in
  Printf.printf "geomean accuracy factor: %.3f (paper: 1.099)\n\n"
    (Stats.geomean factors)

let fig6 () =
  let rs = Lazy.force parboil_results in
  let sorted = List.sort (fun a b -> compare a.ipc b.ipc) rs in
  Table.print
    ~title:"Fig 6: IPC characterization (low = memory-bound, high = compute-bound)"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "IPC";
        Table.column "paper IPC";
      ]
    (List.map
       (fun r -> [ r.pname; fcell r.ipc; fcell (List.assoc r.pname paper_fig6) ])
       sorted)

(* ------------------------------------------------------------------ *)
(* Figs 7-9: scaling trends                                            *)
(* ------------------------------------------------------------------ *)

let scaling_fig ~title make =
  let cfg = Soc.with_hierarchy Presets.xeon_soc Presets.xeon_scaled_hierarchy in
  let runs =
    List.map
      (fun nt ->
        let inst = make () in
        let trace = W.Runner.trace_cached inst ~ntiles:nt in
        let r =
          Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace
            ~tile_config:TC.out_of_order
        in
        let x =
          X86.run ~program:inst.W.Runner.program ~trace
            ~hierarchy:Presets.xeon_scaled_hierarchy ()
        in
        (nt, r.Soc.cycles, x.X86.cycles))
      [ 1; 2; 4; 8 ]
  in
  let _, m1, x1 = List.hd runs in
  Table.print ~title
    ~columns:
      [
        Table.column "threads";
        Table.column "mosaic speedup";
        Table.column "x86 speedup";
      ]
    (List.map
       (fun (nt, m, x) ->
         [
           icell nt;
           fcell (float_of_int m1 /. float_of_int m);
           fcell (float_of_int x1 /. float_of_int x);
         ])
       runs)

let fig7 () =
  scaling_fig
    ~title:"Fig 7: BFS scaling (latency-bound; atomics diverge the models)"
    (fun () -> W.Bfs.instance ~n:8192 ~degree:8 ())

let fig8 () =
  scaling_fig ~title:"Fig 8: SGEMM scaling (compute-bound; both near-linear)"
    (fun () -> W.Sgemm.instance ~m:48 ~n:48 ~k:48 ())

let fig9 () =
  scaling_fig ~title:"Fig 9: SPMV scaling (bandwidth-bound; sublinear)"
    (fun () -> W.Spmv.instance ~rows:8192 ~cols:8192 ~per_row:16 ())

(* ------------------------------------------------------------------ *)
(* Fig 10: accelerator design-space exploration                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  let sys = Mosaic_accel.Accel_model.default_sys in
  List.iter
    (fun kind ->
      let pts =
        Dse.sweep ~kind ~plm_sizes:Dse.paper_plm_sizes
          ~workload_bytes:Dse.paper_workload_bytes sys
      in
      Table.print
        ~title:(Printf.sprintf "Fig 10: DSE for the %s accelerator" kind)
        ~columns:
          [
            Table.column "PLM";
            Table.column "workload";
            Table.column "model cyc";
            Table.column "rtl cyc";
            Table.column "fpga cyc";
            Table.column "area um2";
          ]
        (List.map
           (fun (p : Dse.point) ->
             [
               Printf.sprintf "%dKB" (p.Dse.plm_bytes / 1024);
               Printf.sprintf "%dKB" (p.Dse.workload_bytes / 1024);
               icell p.Dse.model_cycles;
               icell p.Dse.rtl_cycles;
               icell p.Dse.fpga_cycles;
               fcell ~decimals:0 p.Dse.area_um2;
             ])
           pts))
    [ "gemm"; "histo"; "elementwise" ];
  Table.print
    ~title:
      "Fig 10d: model accuracy vs goldens (paper: 97-100% vs RTL, 89-93% vs FPGA)"
    ~columns:
      [
        Table.column ~align:Table.Left "accelerator";
        Table.column "vs RTL sim";
        Table.column "vs FPGA";
      ]
    (List.map
       (fun kind ->
         let pts =
           Dse.sweep ~kind ~plm_sizes:Dse.paper_plm_sizes
             ~workload_bytes:Dse.paper_workload_bytes sys
         in
         let rtl, fpga = Dse.mean_accuracy pts in
         [
           kind;
           Printf.sprintf "%.0f%%" (100.0 *. rtl);
           Printf.sprintf "%.0f%%" (100.0 *. fpga);
         ])
       [ "gemm"; "histo"; "elementwise" ])

(* ------------------------------------------------------------------ *)
(* Fig 11: DAE case study on graph projection                          *)
(* ------------------------------------------------------------------ *)

let proj_params = (512, 1024, 8)

let run_projection_homog core nt =
  let n_left, n_right, degree = proj_params in
  let inst = W.Projection.instance ~n_left ~n_right ~degree () in
  let trace = W.Runner.trace_cached inst ~ntiles:nt in
  (Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program ~trace
     ~tile_config:core)
    .Soc.cycles

let run_dae inst ~access ~execute ~pairs ~core =
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then access else execute), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero_cached inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then access else execute);
          tile_config = core;
        })
  in
  (Soc.run Presets.dae_soc ~program:inst.W.Runner.program ~trace ~tiles)
    .Soc.cycles

let run_projection_dae pairs =
  let n_left, n_right, degree = proj_params in
  let inst, _ = W.Projection.dae_instance ~n_left ~n_right ~degree () in
  run_dae inst ~access:"projection_access" ~execute:"projection_execute" ~pairs
    ~core:TC.in_order

let fig11 () =
  let ino1 = run_projection_homog TC.in_order 1 in
  let rows =
    [
      ("1 InO (baseline)", ino1);
      ("1 OoO", run_projection_homog TC.out_of_order 1);
      ("2 InO (homogeneous)", run_projection_homog TC.in_order 2);
      ("1 DAE pair (2 InO tiles)", run_projection_dae 1);
      ("8 InO (homogeneous)", run_projection_homog TC.in_order 8);
      ("4 DAE pairs (8 InO tiles)", run_projection_dae 4);
    ]
  in
  Table.print
    ~title:
      "Fig 11: graph-projection speedups (DAE heterogeneity wins the \
       area-equivalent comparison)"
    ~columns:
      [
        Table.column ~align:Table.Left "system";
        Table.column "cycles";
        Table.column "speedup";
      ]
    (List.map
       (fun (name, c) ->
         [ name; icell c; fcell (float_of_int ino1 /. float_of_int c) ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fig 12: EWSD and SGEMM optimized independently; Fig 13: combined    *)
(* ------------------------------------------------------------------ *)

let ewsd_params = (2048, 2048, 16)
let gemm_dim = 48

let run_ewsd_homog core nt =
  let rows, cols, per_row = ewsd_params in
  let inst = W.Ewsd.instance ~rows ~cols ~per_row () in
  let trace = W.Runner.trace_cached inst ~ntiles:nt in
  (Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program ~trace
     ~tile_config:core)
    .Soc.cycles

let run_ewsd_dae pairs =
  let rows, cols, per_row = ewsd_params in
  let inst, _ = W.Ewsd.dae_instance ~rows ~cols ~per_row () in
  run_dae inst ~access:"ewsd_access" ~execute:"ewsd_execute" ~pairs
    ~core:TC.in_order

let run_gemm_homog core nt =
  let inst = W.Sgemm.instance ~m:gemm_dim ~n:gemm_dim ~k:gemm_dim () in
  let trace = W.Runner.trace_cached inst ~ntiles:nt in
  (Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program ~trace
     ~tile_config:core)
    .Soc.cycles

let run_gemm_dae pairs =
  let inst, _ = W.Sgemm.dae_instance ~m:gemm_dim ~n:gemm_dim ~k:gemm_dim () in
  run_dae inst ~access:"sgemm_access" ~execute:"sgemm_execute" ~pairs
    ~core:TC.in_order

let run_gemm_accel () =
  let inst = W.Sgemm.instance ~accel:true ~m:gemm_dim ~n:gemm_dim ~k:gemm_dim () in
  let trace = W.Runner.trace_cached inst ~ntiles:1 in
  (Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program ~trace
     ~tile_config:TC.out_of_order)
    .Soc.cycles

let phase_results : (string * (int * int)) list ref = ref []

let compute_phases () =
  if !phase_results = [] then begin
    let systems =
      [
        ( "1 InO",
          (fun () -> run_gemm_homog TC.in_order 1),
          fun () -> run_ewsd_homog TC.in_order 1 );
        ( "4 InO",
          (fun () -> run_gemm_homog TC.in_order 4),
          fun () -> run_ewsd_homog TC.in_order 4 );
        ( "8 InO",
          (fun () -> run_gemm_homog TC.in_order 8),
          fun () -> run_ewsd_homog TC.in_order 8 );
        ( "1 OoO",
          (fun () -> run_gemm_homog TC.out_of_order 1),
          fun () -> run_ewsd_homog TC.out_of_order 1 );
        ("4+4 InO DAE", (fun () -> run_gemm_dae 4), fun () -> run_ewsd_dae 4);
        ("DAE w/ accel", run_gemm_accel, fun () -> run_ewsd_dae 4);
      ]
    in
    phase_results := List.map (fun (name, g, e) -> (name, (g (), e ()))) systems
  end;
  !phase_results

let fig12 () =
  let phases = compute_phases () in
  let _, (g_base, e_base) = List.hd phases in
  Table.print
    ~title:
      "Fig 12: EWSD and SGEMM optimized independently (speedups over 1 InO; \
       'DAE w/ accel' = gemm accelerator + DAE pairs for EWSD)"
    ~columns:
      [
        Table.column ~align:Table.Left "system";
        Table.column "sgemm cyc";
        Table.column "sgemm speedup";
        Table.column "ewsd cyc";
        Table.column "ewsd speedup";
      ]
    (List.map
       (fun (name, (g, e)) ->
         [
           name;
           icell g;
           fcell (float_of_int g_base /. float_of_int g);
           icell e;
           fcell (float_of_int e_base /. float_of_int e);
         ])
       phases)

(* The combined kernel runs SGEMM then EWSD serially; a mix where the
   baseline spends fraction p of its time in the dense phase is realized by
   repeating each phase (cycles are linear in repetitions), the counterpart
   of the paper's dataset-size variation. *)
let fig13 () =
  let phases = compute_phases () in
  let _, (g_base, e_base) = List.hd phases in
  let mixes =
    [
      ("dense-heavy", 0.75);
      ("equal", 0.5);
      ("sparse-heavy", 0.25);
    ]
  in
  let columns =
    Table.column ~align:Table.Left "system"
    :: List.map (fun (m, _) -> Table.column m) mixes
  in
  let rows =
    List.map
      (fun (name, (g, e)) ->
        name
        :: List.map
             (fun (_, p) ->
               let total_base = float_of_int (g_base + e_base) in
               let kg = p *. total_base /. float_of_int g_base in
               let ke = (1.0 -. p) *. total_base /. float_of_int e_base in
               let total_sys = (kg *. float_of_int g) +. (ke *. float_of_int e) in
               fcell (total_base /. total_sys))
             mixes)
      phases
  in
  Table.print
    ~title:
      "Fig 13: combined sparse+dense kernel, speedup over 1 InO per workload \
       mix (dense-heavy = 75% sgemm baseline time)"
    ~columns rows

(* ------------------------------------------------------------------ *)
(* Fig 14: Keras TensorFlow energy-delay improvements                  *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  let paper = [ ("convnet", 7.22); ("graphsage", 38.0); ("recsys", 282.24) ] in
  let rows =
    List.map
      (fun model ->
        let run ~accel =
          let inst = W.Dnn.instance model ~accel in
          let trace = W.Runner.trace_cached inst ~ntiles:1 in
          Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program
            ~trace ~tile_config:TC.out_of_order
        in
        let cpu = run ~accel:false and soc = run ~accel:true in
        [
          W.Dnn.name model;
          icell cpu.Soc.cycles;
          icell soc.Soc.cycles;
          fcell (cpu.Soc.edp /. soc.Soc.edp);
          fcell (List.assoc (W.Dnn.name model) paper);
        ])
      W.Dnn.all
  in
  Table.print
    ~title:"Fig 14: energy-delay improvement of the accelerator SoC over OoO"
    ~columns:
      [
        Table.column ~align:Table.Left "model";
        Table.column "OoO cycles";
        Table.column "SoC cycles";
        Table.column "EDP improvement";
        Table.column "paper";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Motivation: 1-IPC and interval models vs MosaicSim (Section I)      *)
(* ------------------------------------------------------------------ *)

let motivation () =
  let rows =
    List.map
      (fun name ->
        let inst = W.Registry.instance name in
        let trace = W.Runner.trace_cached inst ~ntiles:1 in
        let reference =
          (X86.run ~program:inst.W.Runner.program ~trace
             ~hierarchy:Presets.xeon_hierarchy ())
            .X86.cycles
        in
        let mosaic =
          (Soc.run_homogeneous Presets.xeon_soc ~program:inst.W.Runner.program
             ~trace ~tile_config:TC.out_of_order)
            .Soc.cycles
        in
        let ipc1 = (Mosaic_baseline.Simple_models.one_ipc ~trace).Mosaic_baseline.Simple_models.cycles in
        let interval =
          (Mosaic_baseline.Simple_models.interval
             ~program:inst.W.Runner.program ~trace
             ~hierarchy:Presets.xeon_hierarchy ())
            .Mosaic_baseline.Simple_models.cycles
        in
        let err est =
          let a = float_of_int est and b = float_of_int reference in
          Float.max a b /. Float.min a b
        in
        [
          name;
          icell reference;
          Printf.sprintf "%d (%.1fx)" ipc1 (err ipc1);
          Printf.sprintf "%d (%.1fx)" interval (err interval);
          Printf.sprintf "%d (%.2fx)" mosaic (err mosaic);
        ])
      [ "bfs"; "spmv"; "stencil"; "sgemm"; "mri-gridding" ]
  in
  Table.print
    ~title:
      "Motivation (Section I): high-level models vs MosaicSim, cycles and        error factor vs the x86 reference"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "x86 reference";
        Table.column "1-IPC";
        Table.column "interval";
        Table.column "MosaicSim";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Section VI-B: simulation speed and trace storage                    *)
(* ------------------------------------------------------------------ *)

(* Stall-heavy workloads where the event-driven scheduler's cycle skipping
   pays off: a dependent-load chain (the core idles for a DRAM round trip
   per hop) and an accelerator offload (the host tile idles for the whole
   invocation). Sized to run in seconds while still being skip-dominated. *)
let skip_workloads =
  [
    ( "pointer_chase",
      (* 8 MB of chain spills past the LLC, so every hop is a DRAM round
         trip the core can do nothing during. *)
      fun () -> W.Micro.pointer_chase ~seed:3 ~nodes:(1 lsl 20) ~steps:16384 ()
    );
    ("sgemm-accel", fun () -> W.Sgemm.instance ~accel:true ~m:64 ~n:64 ~k:64 ());
  ]

let speed_json_file = "BENCH_speed.json"

(* Filled by [speed] so a --manifest=FILE request at the end of the run
   can snapshot the speed registry (the richest one) rather than only the
   per-section phase timings. *)
let last_speed_reg : Mosaic_obs.Metrics.t option ref = ref None

let speed () =
  let rs = Lazy.force parboil_results in
  let source_label = function
    | Mosaic_trace.Store.Interpreted -> "interpreted"
    | Mosaic_trace.Store.Memo_hit -> "memo hit"
    | Mosaic_trace.Store.Disk_hit -> "disk hit"
  in
  (* trace_gen_seconds is the wall time spent obtaining the trace (full
     interpretation on a cache miss, ~ms of decode on a hit); sim_seconds
     is the timing model alone. MIPS is computed from sim time only, so it
     measures simulation, not interpretation. *)
  Table.print ~title:"Section VI-B: simulation speed (paper: up to 0.47 MIPS)"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "MIPS";
        Table.column "trace gen s";
        Table.column "sim s";
        Table.column ~align:Table.Left "trace source";
      ]
    (List.map
       (fun r ->
         [
           r.pname;
           fcell r.mips;
           fcell ~decimals:3 r.trace_gen_seconds;
           fcell ~decimals:3 r.host_seconds;
           source_label r.trace_source;
         ])
       rs);
  Printf.printf "mean simulation speed: %.2f MIPS\n\n"
    (Stats.mean (List.map (fun r -> r.mips) rs));
  (* Cycle-skipping speedup, measured as host time with the event-driven
     scheduler on vs the naive per-cycle sweep on the same run. *)
  let reg = Mosaic_obs.Metrics.create () in
  let gauge name v =
    Mosaic_obs.Metrics.set (Mosaic_obs.Metrics.gauge reg name) v
  in
  List.iter
    (fun r ->
      let p suffix = Printf.sprintf "speed.%s.%s" r.pname suffix in
      (* host_seconds is end-to-end (trace acquisition + timing model);
         sim_seconds is the timing model alone. See EXPERIMENTS.md. *)
      gauge (p "host_seconds") (r.trace_gen_seconds +. r.host_seconds);
      gauge (p "sim_seconds") r.host_seconds;
      gauge (p "trace_gen_seconds") r.trace_gen_seconds;
      gauge (p "mips") r.mips;
      gauge (p "cycles") (float_of_int r.mosaic_cycles))
    rs;
  let skip_rows =
    W.Runner.run_batch ~jobs:!jobs
    @@ List.map
      (fun (name, make) () ->
        let inst = make () in
        let trace = W.Runner.trace_cached inst ~ntiles:1 in
        let run cfg =
          Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace
            ~tile_config:TC.out_of_order
        in
        let skip = run Presets.dae_soc in
        let naive = run { Presets.dae_soc with Soc.cycle_skip = false } in
        assert (skip.Soc.cycles = naive.Soc.cycles);
        let speedup =
          if skip.Soc.host_seconds > 0.0 then
            naive.Soc.host_seconds /. skip.Soc.host_seconds
          else Float.infinity
        in
        (name, skip, naive, speedup))
      skip_workloads
  in
  (* Gauges land in the shared registry from the driver domain only; the
     parallel tasks above just return their results. *)
  List.iter
    (fun (name, (skip : Soc.result), (naive : Soc.result), speedup) ->
      let p suffix = Printf.sprintf "speed.skip.%s.%s" name suffix in
      gauge (p "host_seconds") skip.Soc.host_seconds;
      gauge (p "noskip_host_seconds") naive.Soc.host_seconds;
      gauge (p "mips") skip.Soc.mips;
      gauge (p "cycles") (float_of_int skip.Soc.cycles);
      gauge (p "stepped_cycles") (float_of_int skip.Soc.stepped_cycles);
      gauge (p "speedup") speedup)
    skip_rows;
  Table.print
    ~title:
      "Event-driven cycle skipping: host time, skip on (default) vs off \
       (--no-skip), identical simulated cycles"
    ~columns:
      [
        Table.column ~align:Table.Left "workload";
        Table.column "cycles";
        Table.column "stepped";
        Table.column "skip s";
        Table.column "sweep s";
        Table.column "speedup";
      ]
    (List.map
       (fun (name, skip, naive, speedup) ->
         [
           name;
           icell skip.Soc.cycles;
           icell skip.Soc.stepped_cycles;
           fcell ~decimals:3 skip.Soc.host_seconds;
           fcell ~decimals:3 naive.Soc.host_seconds;
           fcell speedup;
         ])
       skip_rows);
  (* Sampled simulation: the same Parboil runs under interval sampling
     (detailed measurement alternating with functional fast-forward,
     Sample.auto spec), with the full simulator's cycles — already
     measured above — as the exact oracle. est_cycles and err_pct are
     deterministic (simulated quantities); the speedup column is host
     time and wobbles. *)
  let sample_rows =
    W.Runner.run_batch ~jobs:!jobs
    @@ List.map
         (fun r () ->
           let inst = W.Registry.instance r.pname in
           let trace = W.Runner.trace_cached inst ~ntiles:1 in
           let spec =
             Mosaic.Sample.auto
               ~total_instrs:(Trace.total_dyn_instrs trace)
           in
           let s =
             Soc.run_homogeneous ~sample:spec Presets.xeon_soc
               ~program:inst.W.Runner.program ~trace
               ~tile_config:TC.out_of_order
           in
           (r, s))
         rs
  in
  List.iter
    (fun (r, (s : Soc.result)) ->
      let rep = Option.get s.Soc.sample in
      let p suffix = Printf.sprintf "speed.sample.%s.%s" r.pname suffix in
      let err_pct =
        100.0
        *. Float.abs
             (float_of_int (rep.Mosaic.Sample.est_cycles - r.mosaic_cycles))
        /. float_of_int r.mosaic_cycles
      in
      let speedup =
        if s.Soc.host_seconds > 0.0 then r.host_seconds /. s.Soc.host_seconds
        else Float.infinity
      in
      gauge (p "est_cycles") (float_of_int rep.Mosaic.Sample.est_cycles);
      gauge (p "err_pct") err_pct;
      gauge (p "detailed_instrs")
        (float_of_int rep.Mosaic.Sample.detailed_instrs);
      gauge (p "periods") (float_of_int rep.Mosaic.Sample.periods);
      gauge (p "degraded") (float_of_int rep.Mosaic.Sample.degraded);
      gauge (p "exact_seconds") r.host_seconds;
      gauge (p "sampled_seconds") s.Soc.host_seconds;
      gauge (p "speedup") speedup)
    sample_rows;
  let sample_geomean =
    exp
      (Stats.mean
         (List.map
            (fun (r, (s : Soc.result)) ->
              log
                (Stdlib.max 1e-9
                   (if s.Soc.host_seconds > 0.0 then
                      r.host_seconds /. s.Soc.host_seconds
                    else 1e9)))
            sample_rows))
  in
  let sample_max_err =
    List.fold_left
      (fun acc (r, (s : Soc.result)) ->
        let rep = Option.get s.Soc.sample in
        Float.max acc
          (100.0
          *. Float.abs
               (float_of_int (rep.Mosaic.Sample.est_cycles - r.mosaic_cycles))
          /. float_of_int r.mosaic_cycles))
      0.0 sample_rows
  in
  gauge "speed.sample.geomean_speedup" sample_geomean;
  gauge "speed.sample.max_err_pct" sample_max_err;
  Table.print
    ~title:
      "Sampled simulation: interval sampling (auto spec) vs the full \
       simulator (exact oracle)"
    ~columns:
      [
        Table.column ~align:Table.Left "workload";
        Table.column "exact cyc";
        Table.column "sampled est";
        Table.column "err %";
        Table.column "periods";
        Table.column "exact s";
        Table.column "sampled s";
        Table.column "speedup";
      ]
    (List.map
       (fun (r, (s : Soc.result)) ->
         let rep = Option.get s.Soc.sample in
         [
           r.pname;
           icell r.mosaic_cycles;
           icell rep.Mosaic.Sample.est_cycles;
           fcell ~decimals:2
             (100.0
             *. Float.abs
                  (float_of_int
                     (rep.Mosaic.Sample.est_cycles - r.mosaic_cycles))
             /. float_of_int r.mosaic_cycles);
           icell rep.Mosaic.Sample.periods;
           fcell ~decimals:3 r.host_seconds;
           fcell ~decimals:3 s.Soc.host_seconds;
           fcell
             (if s.Soc.host_seconds > 0.0 then
                r.host_seconds /. s.Soc.host_seconds
              else Float.infinity);
         ])
       sample_rows);
  Printf.printf "sampled geomean speedup: %.2fx; max cycle error %.2f%%\n\n"
    sample_geomean sample_max_err;
  (* Intra-run parallelism: the same multi-tile SoC simulated serially and
     sharded across domains. Cycles (and every counter) must be
     bit-identical — the speedup column is the only thing allowed to
     move, and only on hosts with free cores. *)
  let nshards = if !shards >= 1 then !shards else 2 in
  let cores_avail = Mosaic_util.Domain_pool.available_cores () in
  gauge "speed.shard.shards" (float_of_int nshards);
  gauge "speed.shard.available_cores" (float_of_int cores_avail);
  if cores_avail < 2 then
    (* The "host" member written alongside the metrics records the core
       count, so readers of the baseline file can tell determinism checks
       from performance data without an ad-hoc marker gauge. *)
    Printf.printf
      "note: host reports %d available core(s); sharded runs verify \
       determinism here but cannot speed up — shard speedups below are \
       expected to be < 1 (the host.cores member in %s records this).\n"
      cores_avail speed_json_file;
  let shard_rows =
    List.map
      (fun (e : Mosaic_suite.Shard_suite.entry) ->
        let serial = e.run ~shards:1 in
        let sharded = e.run ~shards:nshards in
        if serial.Soc.cycles <> sharded.Soc.cycles then
          failwith
            (Printf.sprintf
               "shard determinism violated on %s: serial %d cycles, \
                shards:%d %d cycles"
               e.name serial.Soc.cycles nshards sharded.Soc.cycles);
        let speedup =
          if sharded.Soc.host_seconds > 0.0 then
            serial.Soc.host_seconds /. sharded.Soc.host_seconds
          else Float.infinity
        in
        (e, serial, sharded, speedup))
      Mosaic_suite.Shard_suite.entries
  in
  List.iter
    (fun ((e : Mosaic_suite.Shard_suite.entry), (serial : Soc.result),
          (sharded : Soc.result), speedup) ->
      let p suffix = Printf.sprintf "speed.shard.%s.%s" e.name suffix in
      gauge (p "serial_seconds") serial.Soc.host_seconds;
      gauge (p "sharded_seconds") sharded.Soc.host_seconds;
      gauge (p "speedup") speedup;
      gauge (p "cycles") (float_of_int sharded.Soc.cycles))
    shard_rows;
  let shard_geomean =
    exp
      (Stats.mean
         (List.map (fun (_, _, _, s) -> log (Stdlib.max s 1e-9)) shard_rows))
  in
  gauge "speed.shard.speedup" shard_geomean;
  Table.print
    ~title:
      (Printf.sprintf
         "Intra-run sharding: one SoC across %d domains (%d host cores), \
          bit-identical cycles"
         nshards cores_avail)
    ~columns:
      [
        Table.column ~align:Table.Left "workload";
        Table.column "tiles";
        Table.column "cycles";
        Table.column "serial s";
        Table.column "sharded s";
        Table.column "speedup";
      ]
    (List.map
       (fun ((e : Mosaic_suite.Shard_suite.entry), serial, sharded, speedup) ->
         ignore (serial : Soc.result);
         [
           e.name;
           icell e.ntiles;
           icell (sharded : Soc.result).Soc.cycles;
           fcell ~decimals:3 serial.Soc.host_seconds;
           fcell ~decimals:3 sharded.Soc.host_seconds;
           fcell speedup;
         ])
       shard_rows);
  Printf.printf "shard geomean speedup: %.2fx (%d shards, %d cores)\n\n"
    shard_geomean nshards cores_avail;
  (* Profiler overhead: the same run with cycle accounting on vs off.
     Simulated cycles must be bit-identical (the profiler only observes);
     the ratio records how much host time the attribution costs. *)
  let inst = W.Registry.instance "spmv" in
  let trace = W.Runner.trace_cached inst ~ntiles:1 in
  let run ~profile =
    Soc.run_homogeneous ~profile Presets.xeon_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let plain = run ~profile:false and prof = run ~profile:true in
  assert (plain.Soc.cycles = prof.Soc.cycles);
  let overhead =
    if prof.Soc.mips > 0.0 then plain.Soc.mips /. prof.Soc.mips
    else Float.infinity
  in
  gauge "speed.profile.spmv.cycles" (float_of_int prof.Soc.cycles);
  gauge "speed.profile.spmv.mips" prof.Soc.mips;
  gauge "speed.profile.spmv.plain_mips" plain.Soc.mips;
  gauge "speed.profile_overhead_ratio" overhead;
  Table.print
    ~title:
      "Cycle-accounting profiler overhead (spmv, 1 OoO; identical simulated \
       cycles)"
    ~columns:
      [
        Table.column ~align:Table.Left "mode";
        Table.column "cycles";
        Table.column "MIPS";
        Table.column "overhead";
      ]
    [
      [ "unprofiled"; icell plain.Soc.cycles; fcell plain.Soc.mips; "-" ];
      [ "profiled"; icell prof.Soc.cycles; fcell prof.Soc.mips; fcell overhead ];
    ];
  (* One-trace-many-configs incremental DSE: the 16-point default L1 x L2
     grid, re-timed from a single profiled simulation, with every point
     also fully simulated so the speedup and error figures below are
     measured against the exact oracle, never assumed. Sim-dominated
     workloads, so the one-off profiling + skeleton cost amortizes. *)
  let sweep_workloads = [ "cutcp"; "histo"; "spmv" ] in
  let sweep_grid =
    Mosaic.Sweep.grid
      (List.map Mosaic.Sweep.axis_of_spec Mosaic.Sweep.default_axes)
  in
  let sweep_rows =
    W.Runner.run_batch ~jobs:!jobs
    @@ List.map
         (fun name () ->
           let inst = W.Registry.instance name in
           let trace = W.Runner.trace_cached inst ~ntiles:1 in
           let s =
             Mosaic.Sweep.run ~exact:true Presets.xeon_soc
               ~tile_config:TC.out_of_order ~program:inst.W.Runner.program
               ~trace sweep_grid
           in
           (name, s))
         sweep_workloads
  in
  List.iter
    (fun (name, (s : Mosaic.Sweep.t)) ->
      let p suffix = Printf.sprintf "speed.sweep.%s.%s" name suffix in
      gauge (p "points") (float_of_int (Array.length s.Mosaic.Sweep.points));
      gauge (p "full_seconds") s.Mosaic.Sweep.exact_seconds;
      gauge (p "incremental_seconds") (Mosaic.Sweep.incremental_seconds s);
      gauge (p "speedup") (Option.value ~default:0.0 (Mosaic.Sweep.speedup s));
      gauge (p "max_err_pct") (Mosaic.Sweep.max_err_pct s);
      gauge (p "cycles") (float_of_int s.Mosaic.Sweep.base.Soc.cycles))
    sweep_rows;
  let sweep_geomean =
    exp
      (Stats.mean
         (List.map
            (fun (_, s) ->
              log (Option.value ~default:1.0 (Mosaic.Sweep.speedup s)))
            sweep_rows))
  in
  gauge "speed.sweep.geomean_speedup" sweep_geomean;
  Table.print
    ~title:
      "Incremental DSE: 16-point L1 x L2 sweep, one profiled sim + re-timing \
       vs full per-point simulation (exact oracle)"
    ~columns:
      [
        Table.column ~align:Table.Left "workload";
        Table.column "points";
        Table.column "full s";
        Table.column "incr s";
        Table.column "speedup";
        Table.column "max err %";
      ]
    (List.map
       (fun (name, (s : Mosaic.Sweep.t)) ->
         [
           name;
           icell (Array.length s.Mosaic.Sweep.points);
           fcell ~decimals:3 s.Mosaic.Sweep.exact_seconds;
           fcell ~decimals:3 (Mosaic.Sweep.incremental_seconds s);
           fcell (Option.value ~default:0.0 (Mosaic.Sweep.speedup s));
           fcell ~decimals:2 (Mosaic.Sweep.max_err_pct s);
         ])
       sweep_rows);
  Printf.printf "sweep geomean speedup: %.1fx\n\n" sweep_geomean;
  (* Provenance rides along with the numbers: available cores, OCaml
     version, timestamp, and git rev as a "host" member of the same
     object. Comparison tools key on speed.* and ignore it. *)
  let host_member =
    Mosaic_obs.Json.Obj
      (Mosaic_obs.Manifest.host_info ()
      @ [ ("timestamp", Mosaic_obs.Json.String (Mosaic_obs.Manifest.timestamp ())) ])
  in
  let doc =
    match Mosaic_obs.Metrics.to_json reg with
    | Mosaic_obs.Json.Obj kvs ->
        Mosaic_obs.Json.Obj (kvs @ [ ("host", host_member) ])
    | j -> j
  in
  Out_channel.with_open_text speed_json_file (fun oc ->
      Out_channel.output_string oc (Mosaic_obs.Json.to_string doc));
  Printf.printf "speed metrics: %s\n\n" speed_json_file;
  last_speed_reg := Some reg

let storage () =
  let rs = Lazy.force parboil_results in
  Table.print
    ~title:
      "Section VI-B: trace storage (control + memory traces, paper-style \
       encoding)"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "dyn instrs";
        Table.column "mem accesses";
        Table.column "control KB";
        Table.column "memory KB";
        Table.column "packed ctl KB";
        Table.column "packed mem KB";
      ]
    (List.map
       (fun r ->
         [
           r.pname;
           icell r.dyn;
           icell r.mem_accesses;
           icell (r.control_bytes / 1024);
           icell (r.memory_bytes / 1024);
           icell (r.comp_control / 1024);
           icell (r.comp_memory / 1024);
         ])
       rs)

(* ------------------------------------------------------------------ *)
(* Trace-based locality characterization (extends Fig 6's story)       *)
(* ------------------------------------------------------------------ *)

let characterize () =
  let rows =
    List.map
      (fun name ->
        let inst = W.Registry.instance name in
        let trace = W.Runner.trace_cached inst ~ntiles:1 in
        let a = Mosaic_trace.Analysis.whole inst.W.Runner.program trace in
        let hit kb =
          Printf.sprintf "%.0f%%"
            (100.0
            *. Mosaic_trace.Analysis.capacity_hit_rate a ~lines:(kb * 1024 / 64))
        in
        [
          name;
          fcell ~decimals:3 a.Mosaic_trace.Analysis.mem_ratio;
          icell (a.Mosaic_trace.Analysis.footprint_lines * 64 / 1024);
          Printf.sprintf "%.0f%%" (100.0 *. a.Mosaic_trace.Analysis.stride_regular);
          hit 32;
          hit 2048;
        ])
      W.Registry.parboil_names
  in
  Table.print
    ~title:
      "Characterization: memory intensity, footprint, stride regularity and        LRU capacity hit rates (from traces alone)"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "mem ratio";
        Table.column "footprint KB";
        Table.column "regular strides";
        Table.column "hit@32KB";
        Table.column "hit@2MB";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  let open Bechamel in
  let mk_soc_bench () =
    let inst = W.Sgemm.instance ~m:12 ~n:12 ~k:12 () in
    let trace = W.Runner.trace_cached inst ~ntiles:1 in
    fun () ->
      ignore
        (Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program
           ~trace ~tile_config:TC.out_of_order)
  in
  (* Deliberately uncached: this one measures the interpreter itself. *)
  let mk_interp_bench () =
    let inst = W.Sgemm.instance ~m:12 ~n:12 ~k:12 () in
    fun () -> ignore (W.Runner.trace inst ~ntiles:1)
  in
  let mk_hierarchy_bench () =
    let h = Mosaic_memory.Hierarchy.create ~ntiles:1 Presets.dae_hierarchy in
    let cycle = ref 0 in
    fun () ->
      for i = 0 to 99 do
        cycle :=
          Mosaic_memory.Hierarchy.access h ~tile:0 ~cycle:!cycle
            ~addr:(i * 64 mod 65536) ~is_write:false
      done
  in
  let mk_pqueue_bench () =
    let q = Mosaic_util.Pqueue.create () in
    fun () ->
      for i = 0 to 99 do
        Mosaic_util.Pqueue.add q ~prio:(i * 37 mod 100) i
      done;
      while Mosaic_util.Pqueue.pop q <> None do
        ()
      done
  in
  let tests =
    [
      Test.make ~name:"soc.run sgemm-12" (Staged.stage (mk_soc_bench ()));
      Test.make ~name:"interp.trace sgemm-12" (Staged.stage (mk_interp_bench ()));
      Test.make ~name:"hierarchy.access x100" (Staged.stage (mk_hierarchy_bench ()));
      Test.make ~name:"pqueue add/pop x100" (Staged.stage (mk_pqueue_bench ()));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  let rows =
    List.concat_map
      (fun t ->
        List.map (fun (name, ns) -> [ name; fcell (ns /. 1e6) ]) (benchmark t))
      tests
  in
  Table.print ~title:"Bechamel microbenchmarks (host time per run)"
    ~columns:[ Table.column ~align:Table.Left "benchmark"; Table.column "ms/run" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

let run_with ?(bench = "spmv") ?hier core =
  let inst = W.Registry.instance bench in
  let trace = W.Runner.trace_cached inst ~ntiles:1 in
  let cfg =
    match hier with
    | Some h -> Soc.with_hierarchy Presets.dae_soc h
    | None -> Presets.dae_soc
  in
  (Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace
     ~tile_config:core)
    .Soc.cycles

let ablation () =
  (* Branch policies on a loop+branch heavy kernel. *)
  let policies =
    [
      ("no speculation", Mosaic_tile.Branch.No_speculation);
      ("static", Mosaic_tile.Branch.Static { penalty = 12 });
      ( "gshare",
        Mosaic_tile.Branch.Dynamic
          { kind = Mosaic_tile.Predictor.Gshare { history_bits = 8 }; penalty = 12 } );
      ("perfect", Mosaic_tile.Branch.Perfect);
    ]
  in
  Table.print ~title:"Ablation: branch speculation policy (cutcp, 1 OoO)"
    ~columns:[ Table.column ~align:Table.Left "policy"; Table.column "cycles" ]
    (List.map
       (fun (name, policy) ->
         [
           name;
           icell
             (run_with ~bench:"cutcp"
                { TC.out_of_order with TC.branch = policy; name });
         ])
       policies);
  (* Instruction window. *)
  Table.print ~title:"Ablation: instruction window (spmv, 1 OoO)"
    ~columns:[ Table.column "window"; Table.column "cycles" ]
    (List.map
       (fun w ->
         [
           icell w;
           icell
             (run_with
                { TC.out_of_order with TC.window_size = w; name = "w" });
         ])
       [ 16; 32; 64; 128; 256 ]);
  (* MSHR size. *)
  let with_mshr m =
    let h = Presets.dae_hierarchy in
    {
      h with
      Mosaic_memory.Hierarchy.l1 =
        { h.Mosaic_memory.Hierarchy.l1 with Mosaic_memory.Cache.mshr_size = m };
    }
  in
  Table.print ~title:"Ablation: L1 MSHR entries (spmv, 1 OoO)"
    ~columns:[ Table.column "mshr"; Table.column "cycles" ]
    (List.map
       (fun m -> [ icell m; icell (run_with ~hier:(with_mshr m) TC.out_of_order) ])
       [ 2; 4; 8; 16; 32 ]);
  (* Prefetcher. *)
  let with_pf pf =
    let h = Presets.dae_hierarchy in
    {
      h with
      Mosaic_memory.Hierarchy.l1 =
        { h.Mosaic_memory.Hierarchy.l1 with Mosaic_memory.Cache.prefetch = pf };
    }
  in
  Table.print ~title:"Ablation: L1 stream prefetcher (stencil, 1 OoO)"
    ~columns:[ Table.column ~align:Table.Left "prefetcher"; Table.column "cycles" ]
    [
      [ "off"; icell (run_with ~bench:"stencil" ~hier:(with_pf None) TC.out_of_order) ];
      [
        "on";
        icell
          (run_with ~bench:"stencil"
             ~hier:(with_pf (Some Mosaic_memory.Prefetcher.default_config))
             TC.out_of_order);
      ];
    ];
  (* Perfect memory-alias speculation. *)
  Table.print ~title:"Ablation: perfect alias speculation (projection, 1 OoO)"
    ~columns:[ Table.column ~align:Table.Left "alias model"; Table.column "cycles" ]
    [
      [ "MAO (no speculation)"; icell (run_with ~bench:"projection" TC.out_of_order) ];
      [
        "perfect alias";
        icell
          (run_with ~bench:"projection"
             { TC.out_of_order with TC.perfect_alias = true; name = "pa" });
      ];
    ];
  (* Directory coherence (extension; off in the paper). *)
  let run_bfs4 coherence =
    let inst = W.Bfs.instance ~n:4096 ~degree:8 () in
    let trace = W.Runner.trace_cached inst ~ntiles:4 in
    let hier = { Presets.dae_hierarchy with Mosaic_memory.Hierarchy.coherence } in
    (Soc.run_homogeneous
       (Soc.with_hierarchy Presets.dae_soc hier)
       ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order)
      .Soc.cycles
  in
  Table.print
    ~title:"Ablation: directory coherence extension (bfs, 4 OoO tiles)"
    ~columns:[ Table.column ~align:Table.Left "coherence"; Table.column "cycles" ]
    [
      [ "off (paper default)"; icell (run_bfs4 None) ];
      [
        "directory, 20-cycle latency";
        icell
          (run_bfs4 (Some { Mosaic_memory.Hierarchy.directory_latency = 20 }));
      ];
    ];
  (* DRAM models. *)
  let with_dram d =
    { Presets.dae_hierarchy with Mosaic_memory.Hierarchy.dram = d }
  in
  Table.print ~title:"Ablation: DRAM model (spmv, 1 OoO)"
    ~columns:[ Table.column ~align:Table.Left "model"; Table.column "cycles" ]
    [
      [
        "SimpleDRAM";
        icell
          (run_with
             ~hier:(with_dram (Mosaic_memory.Hierarchy.Simple Mosaic_memory.Dram.default_simple))
             TC.out_of_order);
      ];
      [
        "detailed (banks/rows)";
        icell
          (run_with
             ~hier:
               (with_dram
                  (Mosaic_memory.Hierarchy.Detailed Mosaic_memory.Dram.default_detailed))
             TC.out_of_order);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("motivation", motivation);
    ("characterize", characterize);
    ("speed", speed);
    ("storage", storage);
    ("ablation", ablation);
    ("bechamel", bechamel_section);
  ]

module Metrics = Mosaic_obs.Metrics

let bench_metrics = Metrics.create ()

(* Tolerates a section being requested twice (gauges register once). *)
let record_phase name seconds =
  let mname = Printf.sprintf "bench.%s.host_seconds" name in
  let g =
    match Metrics.find bench_metrics mname with
    | Some (Metrics.Gauge g) -> g
    | Some _ -> assert false
    | None -> Metrics.gauge bench_metrics mname
  in
  Metrics.set g seconds

let phase_summary () =
  let rows = Metrics.rows bench_metrics in
  if rows <> [] then
    Table.print ~title:"per-phase host time (from the metrics registry)"
      ~columns:
        [ Table.column ~align:Table.Left "phase"; Table.column "seconds" ]
      (List.map (fun (n, _, v) -> [ n; fcell ~decimals:2 v ]) rows)

let manifest_file : string option ref = ref None

(* Self-describing record of this bench invocation: host info, format
   versions, every gauge of the speed registry (or the phase registry if
   the speed section did not run), and the host-side spans. *)
let write_bench_manifest file requested =
  let metrics =
    match !last_speed_reg with Some reg -> reg | None -> bench_metrics
  in
  let m =
    Mosaic.Telemetry.manifest ~kind:"bench"
      ~name:(String.concat "," requested)
      ~metrics ()
  in
  Mosaic_obs.Manifest.write file m;
  Printf.printf "manifest: %s\n" file

let dump_metrics file =
  let data =
    if Filename.check_suffix file ".json" then
      Mosaic_obs.Json.to_string (Metrics.to_json bench_metrics)
    else Metrics.to_csv bench_metrics
  in
  Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc data);
  Printf.printf "metrics: %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if String.starts_with ~prefix:"--jobs=" a then begin
          (match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
          | Some n when n >= 1 -> jobs := n
          | _ -> failwith (Printf.sprintf "bad --jobs value: %s" a));
          false
        end
        else if String.starts_with ~prefix:"--shards=" a then begin
          (match int_of_string_opt (String.sub a 9 (String.length a - 9)) with
          | Some n when n >= 1 -> shards := n
          | _ -> failwith (Printf.sprintf "bad --shards value: %s" a));
          false
        end
        else if String.starts_with ~prefix:"--manifest=" a then begin
          (match String.sub a 11 (String.length a - 11) with
          | "" -> failwith "bad --manifest value: empty path"
          | f ->
              manifest_file := Some f;
              (* Spans must be recording before any section runs. *)
              Mosaic_obs.Span.set_enabled true);
          false
        end
        else if String.starts_with ~prefix:"--trace-cache=" a then begin
          (match String.sub a 14 (String.length a - 14) with
          | "" | "off" | "none" ->
              Mosaic_trace.Store.set_cache_dir `Disabled
          | dir -> Mosaic_trace.Store.set_cache_dir (`Dir dir));
          false
        end
        else true)
      args
  in
  let outs, names =
    List.partition_map
      (fun a ->
        if String.starts_with ~prefix:"--metrics-out=" a then
          Either.Left (String.sub a 14 (String.length a - 14))
        else Either.Right a)
      args
  in
  if !jobs > 1 && !shards > 1 then
    failwith
      (Printf.sprintf
         "--jobs=%d and --shards=%d both parallelize (jobs*shards domains \
          would oversubscribe the host); pass --shards=1 to keep the batch \
          pool, or --jobs=1 to measure intra-run sharding"
         !jobs !shards);
  let requested =
    match names with [] -> List.map fst sections | ns -> ns
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          Printf.printf ">> %s\n%!" name;
          let t0 = Sys.time () in
          f ();
          let dt = Sys.time () -. t0 in
          record_phase name dt;
          Printf.printf "[%s took %.1fs host time]\n\n%!" name dt
      | None ->
          Printf.eprintf "unknown section %s; available: %s\n" name
            (String.concat " " (List.map fst sections)))
    requested;
  phase_summary ();
  List.iter dump_metrics outs;
  Option.iter (fun f -> write_bench_manifest f requested) !manifest_file
