(** Binary min-heap priority queue keyed by integer priority.

    Used throughout the simulator for event scheduling: DRAM request
    completion times, per-tile fixed-latency completion events, and the
    accelerator pipeline simulator all order work by cycle number. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** Number of elements currently stored. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [add q ~prio x] inserts [x] with priority [prio]. O(log n) and
    allocation-free (entries live in parallel arrays). *)
val add : 'a t -> prio:int -> 'a -> unit

(** {1 Allocation-free head access}

    The option-returning accessors below allocate a [Some] per call; on
    the simulator's per-cycle paths use these instead, guarded by
    {!is_empty}. They raise [Invalid_argument] on an empty queue. *)

(** Smallest priority, without removing. *)
val min_prio : 'a t -> int

(** Element with the smallest priority, without removing. *)
val min_elt : 'a t -> 'a

(** Remove the minimum entry (FIFO on ties). *)
val drop_min : 'a t -> unit

(** Smallest priority and its element, without removing. *)
val peek : 'a t -> (int * 'a) option

(** Smallest priority alone, without removing — the next-event view used by
    the cycle-skipping scheduler. *)
val peek_prio : 'a t -> int option

(** Remove and return the entry with the smallest priority. Ties are broken
    by insertion order (FIFO), which keeps simulations deterministic. *)
val pop : 'a t -> (int * 'a) option

(** [pop_until q ~prio] removes and returns, in order, every entry whose
    priority is [<= prio]. *)
val pop_until : 'a t -> prio:int -> (int * 'a) list

(** Remove all elements. *)
val clear : 'a t -> unit

(** Elements in an unspecified order (for statistics and debugging). *)
val to_list : 'a t -> (int * 'a) list

(** {1 Snapshots}

    A {!dump} is a pure-data image of the queue: the live heap slots in
    array (= heap) order plus the FIFO tie-break counter. [of_dump]
    rebuilds a queue that behaves identically to the dumped one — heap
    order and tie-breaking do not depend on spare capacity. [map_dump]
    converts payloads (e.g. node pointers to stable ids and back). *)

type 'a dump = {
  d_prios : int array;
  d_seqs : int array;
  d_payloads : 'a array;
  d_next_seq : int;
}

val dump : 'a t -> 'a dump
val of_dump : 'a dump -> 'a t
val map_dump : ('a -> 'b) -> 'a dump -> 'b dump

(** [restore q d] overwrites [q] in place with [d]'s contents. *)
val restore : 'a t -> 'a dump -> unit
