(* Bounded FIFO queue of ints backed by a circular buffer. Replaces
   [message Bounded_queue.t] in the interleaver: the payload (an arrival
   cycle) lives unboxed in the buffer, so sends allocate nothing. Storage
   grows geometrically up to [capacity], so idle channels stay small. *)

type t = {
  capacity : int;  (** hard bound on occupancy *)
  mutable data : int array;
  mutable head : int;  (** index of the oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Int_ring.create: capacity must be positive";
  { capacity; data = Array.make (Stdlib.min capacity 8) 0; head = 0; len = 0 }

let length q = q.len
let is_empty q = q.len = 0
let is_full q = q.len >= q.capacity
let capacity q = q.capacity

let grow q =
  let cap = Array.length q.data in
  let fresh = Array.make (Stdlib.min q.capacity (2 * cap)) 0 in
  for i = 0 to q.len - 1 do
    fresh.(i) <- q.data.((q.head + i) mod cap)
  done;
  q.data <- fresh;
  q.head <- 0

let push q x =
  if is_full q then false
  else begin
    if q.len = Array.length q.data then grow q;
    q.data.((q.head + q.len) mod Array.length q.data) <- x;
    q.len <- q.len + 1;
    true
  end

let peek_exn q =
  if q.len = 0 then invalid_arg "Int_ring.peek_exn: empty";
  q.data.(q.head)

let pop_exn q =
  if q.len = 0 then invalid_arg "Int_ring.pop_exn: empty";
  let x = q.data.(q.head) in
  q.head <- (q.head + 1) mod Array.length q.data;
  q.len <- q.len - 1;
  x

let clear q =
  q.head <- 0;
  q.len <- 0

(* Snapshot: contents in FIFO order. Push/pop behaviour depends only on
   element order and the occupancy bound, never on the backing array's
   rotation, so restore re-pushes into a fresh ring. *)

type dump = { d_capacity : int; d_contents : int array }

let dump q =
  let cap = Array.length q.data in
  {
    d_capacity = q.capacity;
    d_contents = Array.init q.len (fun i -> q.data.((q.head + i) mod cap));
  }

let of_dump d =
  let q = create ~capacity:d.d_capacity in
  Array.iter (fun x -> ignore (push q x)) d.d_contents;
  q

(* Peek the [i]-th oldest element (0 = head) without popping: the
   fast-forward executor reads channel occupancy in place. *)
let peek_at_exn q i =
  if i < 0 || i >= q.len then invalid_arg "Int_ring.peek_at_exn: out of range";
  q.data.((q.head + i) mod Array.length q.data)
