(* Binary min-heap over (priority, sequence, payload). The sequence number
   makes equal-priority pops FIFO, so event processing is deterministic. *)

type 'a entry = { prio : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let cap = Array.length q.heap in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let dummy = q.heap.(0) in
  let fresh = Array.make new_cap dummy in
  Array.blit q.heap 0 fresh 0 q.size;
  q.heap <- fresh

let add q ~prio payload =
  let e = { prio; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 16 e
  else if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.prio, e.payload)

let peek_prio q = if q.size = 0 then None else Some q.heap.(0).prio

let pop q =
  if q.size = 0 then None
  else begin
    let e = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (e.prio, e.payload)
  end

let pop_until q ~prio =
  let rec loop acc =
    match peek q with
    | Some (p, _) when p <= prio -> (
        match pop q with
        | Some entry -> loop (entry :: acc)
        | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let clear q = q.size <- 0

let to_list q =
  let rec loop i acc =
    if i >= q.size then acc
    else
      let e = q.heap.(i) in
      loop (i + 1) ((e.prio, e.payload) :: acc)
  in
  loop 0 []
