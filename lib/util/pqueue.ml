(* Binary min-heap over (priority, sequence, payload). The sequence number
   makes equal-priority pops FIFO, so event processing is deterministic.

   Stored as three parallel arrays (struct-of-arrays) so pushes allocate
   nothing: the per-entry record of the previous implementation cost an
   allocation per event on the simulator's hottest path. The option-free
   accessors ([min_prio]/[min_elt]/[drop_min]) exist for the same reason —
   [peek]/[pop] allocate a [Some (prio, payload)] per call and survive only
   for cold call sites. *)

type 'a t = {
  mutable prios : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let less q i j =
  q.prios.(i) < q.prios.(j)
  || (q.prios.(i) = q.prios.(j) && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let p = q.prios.(i) and s = q.seqs.(i) and x = q.payloads.(i) in
  q.prios.(i) <- q.prios.(j);
  q.seqs.(i) <- q.seqs.(j);
  q.payloads.(i) <- q.payloads.(j);
  q.prios.(j) <- p;
  q.seqs.(j) <- s;
  q.payloads.(j) <- x

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && less q l !smallest then smallest := l;
  if r < q.size && less q r !smallest then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q payload =
  let cap = Array.length q.prios in
  if cap = 0 then begin
    q.prios <- Array.make 16 0;
    q.seqs <- Array.make 16 0;
    q.payloads <- Array.make 16 payload
  end
  else begin
    let new_cap = 2 * cap in
    let ps = Array.make new_cap 0
    and ss = Array.make new_cap 0
    and xs = Array.make new_cap q.payloads.(0) in
    Array.blit q.prios 0 ps 0 q.size;
    Array.blit q.seqs 0 ss 0 q.size;
    Array.blit q.payloads 0 xs 0 q.size;
    q.prios <- ps;
    q.seqs <- ss;
    q.payloads <- xs
  end

let add q ~prio payload =
  if q.size = Array.length q.prios then grow q payload;
  q.prios.(q.size) <- prio;
  q.seqs.(q.size) <- q.next_seq;
  q.payloads.(q.size) <- payload;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

(* --- Allocation-free head access (hot paths) --- *)

let min_prio q =
  if q.size = 0 then invalid_arg "Pqueue.min_prio: empty";
  q.prios.(0)

let min_elt q =
  if q.size = 0 then invalid_arg "Pqueue.min_elt: empty";
  q.payloads.(0)

let drop_min q =
  if q.size = 0 then invalid_arg "Pqueue.drop_min: empty";
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.prios.(0) <- q.prios.(q.size);
    q.seqs.(0) <- q.seqs.(q.size);
    q.payloads.(0) <- q.payloads.(q.size);
    sift_down q 0
  end

(* --- Option-returning API (cold call sites, tests) --- *)

let peek q = if q.size = 0 then None else Some (q.prios.(0), q.payloads.(0))

let peek_prio q = if q.size = 0 then None else Some q.prios.(0)

let pop q =
  if q.size = 0 then None
  else begin
    let p = q.prios.(0) and x = q.payloads.(0) in
    drop_min q;
    Some (p, x)
  end

let pop_until q ~prio =
  let rec loop acc =
    if q.size > 0 && q.prios.(0) <= prio then begin
      let entry = (q.prios.(0), q.payloads.(0)) in
      drop_min q;
      loop (entry :: acc)
    end
    else List.rev acc
  in
  loop []

let clear q = q.size <- 0

(* --- Snapshot support ---

   A dump records the live heap slots verbatim (array layout = heap
   layout) plus the tie-break counter. Restoring with capacity = size is
   behaviourally identical to the original queue: pushes append at [size]
   and sift up, pops swap from [size - 1] and sift down — neither depends
   on the backing arrays' spare capacity, and FIFO tie-breaking is carried
   entirely by [seqs]/[next_seq]. *)

type 'a dump = {
  d_prios : int array;
  d_seqs : int array;
  d_payloads : 'a array;
  d_next_seq : int;
}

let dump q =
  {
    d_prios = Array.sub q.prios 0 q.size;
    d_seqs = Array.sub q.seqs 0 q.size;
    d_payloads = Array.sub q.payloads 0 q.size;
    d_next_seq = q.next_seq;
  }

let of_dump d =
  {
    prios = Array.copy d.d_prios;
    seqs = Array.copy d.d_seqs;
    payloads = Array.copy d.d_payloads;
    size = Array.length d.d_prios;
    next_seq = d.d_next_seq;
  }

let map_dump f d = { d with d_payloads = Array.map f d.d_payloads }

let restore q d =
  q.prios <- Array.copy d.d_prios;
  q.seqs <- Array.copy d.d_seqs;
  q.payloads <- Array.copy d.d_payloads;
  q.size <- Array.length d.d_prios;
  q.next_seq <- d.d_next_seq

let to_list q =
  let rec loop i acc =
    if i >= q.size then acc
    else loop (i + 1) ((q.prios.(i), q.payloads.(i)) :: acc)
  in
  loop 0 []
