(* Open-addressing hash table from int keys to int values.

   The simulator's per-access bookkeeping (MSHR line -> ready cycle,
   directory line -> sharer mask, interleaver (dst, chan) -> debt) used
   polymorphic [Hashtbl]s, which allocate on every [find_opt] and hash
   tuple keys with the generic hasher. This table is monomorphic and
   allocation-free on every operation except growth: lookups return a
   caller-supplied default instead of an option, and iteration walks the
   backing arrays directly.

   Linear probing over a power-of-two capacity; deleted slots leave
   tombstones that are squeezed out on the next rehash. *)

(* Reserved key sentinels. Simulator keys (addresses, packed ids) are
   non-negative, so the two most negative ints are safe markers. *)
let empty_key = min_int
let deleted_key = min_int + 1

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable len : int;  (** live entries *)
  mutable tombs : int;  (** deleted slots awaiting rehash *)
}

let check_key k =
  if k = empty_key || k = deleted_key then
    invalid_arg "Int_table: key out of supported range"

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)

let create ?(initial_capacity = 16) () =
  let cap = ceil_pow2 (Stdlib.max initial_capacity 8) 8 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    len = 0;
    tombs = 0;
  }

let length t = t.len

(* Fibonacci-style multiplicative mix; the multiplier is odd so low-entropy
   keys (line addresses, packed ids) still spread across the table. *)
let slot_of t k =
  let h = k * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land t.mask

(* Index of [k]'s slot, or -1 when absent. A while loop rather than a
   local recursive function: the latter costs a closure allocation per
   call (the capture of [t] and [k]), and this is the hottest function in
   the simulator. *)
let probe t k =
  let i = ref (slot_of t k) in
  let res = ref (-2) in
  while !res = -2 do
    let key = t.keys.(!i) in
    if key = k then res := !i
    else if key = empty_key then res := -1
    else i := (!i + 1) land t.mask
  done;
  !res

let value_at t slot = t.vals.(slot)
let set_at t slot v = t.vals.(slot) <- v

let mem t k =
  check_key k;
  probe t k >= 0

let find t k ~default =
  check_key k;
  let i = probe t k in
  if i < 0 then default else t.vals.(i)

let rec grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.len <- 0;
  t.tombs <- 0;
  Array.iteri
    (fun i k -> if k <> empty_key && k <> deleted_key then set t k old_vals.(i))
    old_keys

(* Insert or replace. Single probe: remembers the first tombstone so a
   fresh key reuses it instead of lengthening the cluster. Loop-shaped
   for the same allocation reason as [probe]. *)
and set t k v =
  check_key k;
  let i = ref (slot_of t k) in
  let free = ref (-1) in
  let continue = ref true in
  while !continue do
    let key = t.keys.(!i) in
    if key = k then begin
      t.vals.(!i) <- v;
      continue := false
    end
    else if key = empty_key then begin
      let dest = if !free >= 0 then !free else !i in
      if !free >= 0 then t.tombs <- t.tombs - 1;
      t.keys.(dest) <- k;
      t.vals.(dest) <- v;
      t.len <- t.len + 1;
      if (t.len + t.tombs) * 2 > t.mask + 1 then grow t;
      continue := false
    end
    else begin
      if key = deleted_key && !free < 0 then free := !i;
      i := (!i + 1) land t.mask
    end
  done

(* [add t k delta] adds [delta] to [k]'s value (absent keys count as 0),
   stores and returns the sum. One probe for the read-modify-write that
   previously took a [find_opt] plus a [replace]. *)
let add t k delta =
  check_key k;
  let i = probe t k in
  if i >= 0 then begin
    let v = t.vals.(i) + delta in
    t.vals.(i) <- v;
    v
  end
  else begin
    set t k delta;
    delta
  end

let remove t k =
  check_key k;
  let i = probe t k in
  if i >= 0 then begin
    t.keys.(i) <- deleted_key;
    t.len <- t.len - 1;
    t.tombs <- t.tombs + 1
  end

let iter f t =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let k = keys.(i) in
    if k <> empty_key && k <> deleted_key then f k t.vals.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.len <- 0;
  t.tombs <- 0

(* --- Snapshot support ---

   Probe sequences depend on the exact slot layout (capacity, tombstone
   positions), and [iter] order is slot order, so a dump copies the
   backing arrays verbatim rather than re-inserting live entries: the
   restored table is indistinguishable from the original, including
   iteration order and future growth points. *)

type dump = { d_keys : int array; d_vals : int array; d_len : int; d_tombs : int }

let dump t =
  {
    d_keys = Array.copy t.keys;
    d_vals = Array.copy t.vals;
    d_len = t.len;
    d_tombs = t.tombs;
  }

let of_dump d =
  {
    keys = Array.copy d.d_keys;
    vals = Array.copy d.d_vals;
    mask = Array.length d.d_keys - 1;
    len = d.d_len;
    tombs = d.d_tombs;
  }

let restore t d =
  t.keys <- Array.copy d.d_keys;
  t.vals <- Array.copy d.d_vals;
  t.mask <- Array.length d.d_keys - 1;
  t.len <- d.d_len;
  t.tombs <- d.d_tombs
