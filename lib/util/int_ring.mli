(** Bounded FIFO queue of unboxed ints (circular buffer).

    The interleaver's per-channel message buffers store arrival cycles
    here, replacing a generic queue of heap-allocated records. Pushing
    never allocates once the ring has grown to its working size. *)

type t

(** [create ~capacity] bounds occupancy at [capacity] (> 0); the backing
    array starts small and grows geometrically up to the bound. *)
val create : capacity:int -> t

val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val capacity : t -> int

(** [push q x] is [false] when the ring is at capacity. *)
val push : t -> int -> bool

(** Oldest element; raise [Invalid_argument] when empty — guard with
    {!is_empty}. *)
val peek_exn : t -> int

val pop_exn : t -> int
val clear : t -> unit

(** [peek_at_exn q i] is the [i]-th oldest element ([i = 0] is the head);
    raises [Invalid_argument] out of range. *)
val peek_at_exn : t -> int -> int

(** {1 Snapshots} — contents in FIFO order plus the occupancy bound;
    behaviour does not depend on the backing array's rotation. *)

type dump

val dump : t -> dump
val of_dump : dump -> t
