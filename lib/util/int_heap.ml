(* Binary min-heap over (int priority, int value) pairs, stored as two
   parallel int arrays so pushes and pops never allocate. The MSHR expiry
   wheel keys this by ready cycle; validity against the owning table is
   checked by the caller, so no tie-breaking order is needed. *)

type t = {
  mutable prios : int array;
  mutable values : int array;
  mutable size : int;
}

let create ?(initial_capacity = 16) () =
  let cap = Stdlib.max initial_capacity 4 in
  { prios = Array.make cap 0; values = Array.make cap 0; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  (* [restore]/[of_dump] can leave a zero-capacity backing array; doubling
     zero would stay zero. *)
  let cap = Stdlib.max 4 (2 * Array.length h.prios) in
  let ps = Array.make cap 0 and vs = Array.make cap 0 in
  Array.blit h.prios 0 ps 0 h.size;
  Array.blit h.values 0 vs 0 h.size;
  h.prios <- ps;
  h.values <- vs

let swap h i j =
  let p = h.prios.(i) and v = h.values.(i) in
  h.prios.(i) <- h.prios.(j);
  h.values.(i) <- h.values.(j);
  h.prios.(j) <- p;
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prios.(i) < h.prios.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prios.(l) < h.prios.(!smallest) then smallest := l;
  if r < h.size && h.prios.(r) < h.prios.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~prio value =
  if h.size = Array.length h.prios then grow h;
  h.prios.(h.size) <- prio;
  h.values.(h.size) <- value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_prio h =
  if h.size = 0 then invalid_arg "Int_heap.min_prio: empty";
  h.prios.(0)

let min_value h =
  if h.size = 0 then invalid_arg "Int_heap.min_value: empty";
  h.values.(0)

let drop_min h =
  if h.size = 0 then invalid_arg "Int_heap.drop_min: empty";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.prios.(0) <- h.prios.(h.size);
    h.values.(0) <- h.values.(h.size);
    sift_down h 0
  end

let clear h = h.size <- 0

(* Snapshot: live heap slots verbatim; spare capacity does not affect
   push/pop behaviour, so restoring with capacity = size is exact. *)

type dump = { d_prios : int array; d_values : int array }

let dump h =
  { d_prios = Array.sub h.prios 0 h.size; d_values = Array.sub h.values 0 h.size }

let of_dump d =
  {
    prios = Array.copy d.d_prios;
    values = Array.copy d.d_values;
    size = Array.length d.d_prios;
  }

let restore h d =
  h.prios <- Array.copy d.d_prios;
  h.values <- Array.copy d.d_values;
  h.size <- Array.length d.d_prios
