(** Small statistics helpers used by the benchmark harness and the
    evaluation tables (geomean accuracy, scaling curves, percentiles). *)

(** Arithmetic mean; 0 on the empty list. *)
val mean : float list -> float

(** Geometric mean; 0 on the empty list. Raises [Invalid_argument] if any
    input is non-positive (accuracy factors are ratios of cycle counts and
    must be positive). *)
val geomean : float list -> float

(** Population standard deviation; 0 on lists shorter than 2. *)
val stddev : float list -> float

(** [percentile p xs] with [p] in [\[0, 100\]], by linear interpolation on
    the sorted data. 0 on the empty list and the sole element on a
    singleton, matching [mean]/[geomean]; raises [Invalid_argument] only
    when [p] is outside [\[0, 100\]]. *)
val percentile : float -> float list -> float

val min : float list -> float
val max : float list -> float

(** [ratio a b] is [a /. b]; raises [Invalid_argument] if [b = 0]. *)
val ratio : float -> float -> float

(** [speedup ~baseline t] is [baseline /. t]: how many times faster [t] is
    than [baseline]. *)
val speedup : baseline:float -> float -> float
