(* Summary statistics over float lists.

   Edge-case contract (uniform across the aggregators): [mean], [geomean],
   [stddev] and [percentile] all return 0.0 on the empty list and the sole
   element on a singleton; they never raise on size alone. [min], [max] and
   [ratio] keep raising, since they have no meaningful neutral value.
   Domain errors (non-positive geomean inputs, percentile rank outside
   [0, 100]) still raise [Invalid_argument]. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let sum_logs =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input"
            else acc +. log x)
          0.0 xs
      in
      exp (sum_logs /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match xs with
  | [] -> 0.0
  | [ x ] -> x
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let min = function
  | [] -> invalid_arg "Stats.min: empty list"
  | x :: xs -> List.fold_left Stdlib.min x xs

let max = function
  | [] -> invalid_arg "Stats.max: empty list"
  | x :: xs -> List.fold_left Stdlib.max x xs

let ratio a b =
  if b = 0.0 then invalid_arg "Stats.ratio: zero denominator";
  a /. b

let speedup ~baseline t = ratio baseline t
