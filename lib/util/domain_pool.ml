(* Small fixed-size domain pool for embarrassingly parallel batches.

   Independent simulations (the bench suite, DSE sweeps) share no mutable
   state, so they parallelize across OCaml 5 domains with a single atomic
   work counter. Results land in a per-task slot, so the output order is
   the input order regardless of which domain ran what — callers see
   deterministic, serial-identical results. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let available_cores () = Stdlib.max 1 (Domain.recommended_domain_count ())

let default_jobs () = available_cores ()

(* Observability hook: called on the running domain when a task starts,
   returning the closer called when it finishes (normally or not). The
   host-span tracer installs itself here — this library sits below the
   telemetry layer, so the dependency has to point inward. *)
let task_hook : (unit -> unit -> unit) option ref = ref None
let set_task_hook h = task_hook := h

let call_task f =
  match !task_hook with
  | None -> f ()
  | Some h -> (
      let finish = h () in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt)

let run ~jobs tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map (fun f -> call_task f) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Value (call_task tasks.(i))
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain works too, so [jobs] counts total workers. *)
    let spawned =
      Array.init (Stdlib.min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Value v) -> v
        | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed and joined *))
      results
  end

let map ~jobs f items = run ~jobs (Array.map (fun x () -> f x) items)
