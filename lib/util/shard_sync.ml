(* Ordering kernel for sharded SoC simulation.

   The sharded scheduler in [Soc] partitions tiles into contiguous
   ascending ranges, one per shard (domain), and sweeps them in cycle
   lockstep: every shard visits the same sequence of simulated cycles,
   stepping its own tiles in ascending id order. Tile-private work runs
   freely in parallel; any operation that touches shared simulator state
   (interleaver rings, LLC/DRAM, directory, accelerator manager) is a
   *point* [(seq, tile)] in the global program order that the serial
   scheduler would have executed it at, where [seq] counts visited
   cycles and [tile] is the acting tile's id.

   The protocol makes those shared operations execute one at a time, in
   exactly ascending point order, without a lock:

   - each shard owns an atomic *horizon*: a packed point promising "all
     my shared operations at points < horizon are done, and my next one
     is >= horizon". A shard publishes [(seq, t)] before stepping tile
     [t] and [(seq + 1, first_tile)] when its sweep for [seq] ends, so
     the horizon only ever advances.
   - a shared operation at point [p] first waits until every *other*
     shard's horizon is > [p]. Distinct shards hold distinct tiles, so
     points are unique; of any two shards attempting operations, the
     lower point proceeds and the higher spins on the lower's horizon —
     mutual exclusion and ascending order follow. Waits only ever target
     shards that own lower tile ids (earlier program-order turns), so
     the wait graph is acyclic and the protocol cannot deadlock.

   Sweeps are separated by a combined barrier: the last shard to arrive
   runs the reduction (the serial scheduler's end-of-cycle decision) and
   releases the rest. The barrier's seq_cst counters give the reducer a
   happens-before edge over every shard's plain-field writes from the
   finished sweep, so it may read any tile's state directly.

   Failure anywhere (a stepping shard or the reduction) records the
   exception, raises every shard's horizon to infinity and trips a
   global flag that all spin loops poll; the other shards unwind with
   {!Aborted} and [run] re-raises the original exception after joining. *)

exception Aborted

type t = {
  nshards : int;
  horizons : int Atomic.t array;
  failed : bool Atomic.t;
  failures : (exn * Printexc.raw_backtrace) option array;
      (** slot [k] written only by shard [k] before [failed] is set;
          read only after all domains join *)
  arrived : int Atomic.t;
  phase : int Atomic.t;
  timed : bool;
  waits : float array;
      (** per-shard seconds spent spinning in {!wait_order}/{!barrier};
          slot [k] written only by shard [k], read after [run] joins *)
}

(* Packed the same way the interleaver packs (dst, chan) keys: tile ids
   fit in 20 bits, leaving 42 bits of visited-cycle sequence. *)
let point_shift = 20

let point ~seq ~tile = (seq lsl point_shift) lor tile

let create ?(timed = false) ~nshards () =
  if nshards <= 0 then invalid_arg "Shard_sync.create: nshards must be positive";
  {
    nshards;
    horizons = Array.init nshards (fun _ -> Atomic.make 0);
    failed = Atomic.make false;
    failures = Array.make nshards None;
    arrived = Atomic.make 0;
    phase = Atomic.make 0;
    timed;
    waits = Array.make nshards 0.0;
  }

let nshards t = t.nshards

(* Spin backoff: stay on the core briefly (the typical wait is another
   shard finishing one tile-step), then yield the timeslice so 1-CPU
   hosts make progress at OS-scheduler speed instead of burning a whole
   quantum per handoff. *)
let pause spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 20e-6

let check_failed t = if Atomic.get t.failed then raise Aborted

let record_failure t ~shard e bt =
  t.failures.(shard) <- Some (e, bt);
  (* Infinite horizon: nobody must ever wait on a dead shard. *)
  Atomic.set t.horizons.(shard) max_int;
  Atomic.set t.failed true

let publish t ~shard ~point = Atomic.set t.horizons.(shard) point

(* Wait-time accounting reads the clock only on the slow path (an actual
   spin), so untimed fast-path cost is unchanged and timed fast-path cost
   is one extra branch per horizon check. *)
let spin_until t ~shard pred =
  let spins = ref 0 in
  let t0 = if t.timed then Unix.gettimeofday () else 0.0 in
  while not (pred ()) do
    check_failed t;
    pause !spins;
    incr spins
  done;
  if t.timed then t.waits.(shard) <- t.waits.(shard) +. (Unix.gettimeofday () -. t0)

let wait_order t ~shard ~point =
  for j = 0 to t.nshards - 1 do
    if j <> shard then
      if Atomic.get t.horizons.(j) <= point then
        spin_until t ~shard (fun () -> Atomic.get t.horizons.(j) > point)
  done

let barrier t ~shard ~reduce =
  let gen = Atomic.get t.phase in
  let n = 1 + Atomic.fetch_and_add t.arrived 1 in
  if n = t.nshards then begin
    (try reduce ()
     with e ->
       (* The reducer is whichever shard arrived last; the slot index
          only picks which exception [run] re-raises, and on a reduce
          failure exactly one slot is ever set. *)
       record_failure t ~shard:0 e (Printexc.get_raw_backtrace ()));
    Atomic.set t.arrived 0;
    Atomic.incr t.phase
  end
  else spin_until t ~shard (fun () -> Atomic.get t.phase <> gen);
  check_failed t

let wait_seconds t shard = t.waits.(shard)

let run t body =
  let wrap shard =
    try body shard with
    | Aborted -> ()
    | e -> record_failure t ~shard e (Printexc.get_raw_backtrace ())
  in
  let spawned =
    Array.init (t.nshards - 1) (fun i -> Domain.spawn (fun () -> wrap (i + 1)))
  in
  wrap 0;
  Array.iter Domain.join spawned;
  if Atomic.get t.failed then
    let rec first k =
      if k >= t.nshards then assert false
      else
        match t.failures.(k) with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> first (k + 1)
    in
    first 0
