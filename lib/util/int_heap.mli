(** Allocation-free binary min-heap over (int priority, int value) pairs.

    Backs lazily-expired structures like the cache MSHR table: entries are
    pushed with their expiry cycle and drained from the minimum, with
    validity against the owning table checked by the caller. Equal
    priorities pop in unspecified order. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> prio:int -> int -> unit

(** Smallest priority / its value. Raise [Invalid_argument] when empty;
    guard with {!is_empty} on hot paths. *)
val min_prio : t -> int

val min_value : t -> int
val drop_min : t -> unit
val clear : t -> unit

(** {1 Snapshots} — live slots verbatim; the restored heap behaves
    identically (heap order does not depend on spare capacity). *)

type dump

val dump : t -> dump
val of_dump : dump -> t
val restore : t -> dump -> unit
