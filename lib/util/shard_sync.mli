(** Lock-free ordering kernel for sharded (multi-domain) simulation.

    Shards sweep disjoint, contiguous, ascending tile ranges in cycle
    lockstep. Tile-private work runs in parallel; operations on shared
    simulator state are serialized in exactly the order the serial
    scheduler would execute them, identified by a *point*
    [(seq, tile)] — [seq] the visited-cycle index, [tile] the acting
    tile. Each shard publishes a monotonically increasing atomic
    {e horizon} ("all my shared ops below this point are done; my next
    is at or above it"); an op at point [p] proceeds once every other
    shard's horizon exceeds [p]. Waits only target shards owning lower
    tile ids, so the wait graph is acyclic and deadlock-free, and at
    most one shared op runs at any instant.

    Any failure (in a shard body or a barrier reduction) aborts all
    shards promptly: spin loops poll a global flag and unwind with
    {!Aborted}; {!run} re-raises the original exception (lowest failing
    shard) after every domain joins. *)

type t

exception Aborted

(** [create ~nshards ()] makes a coordinator for [nshards] workers.
    [timed] additionally accounts per-shard wall-clock spent spinning in
    {!wait_order}/{!barrier} (clock reads happen only on actual waits, so
    the no-contention fast path is one extra branch). *)
val create : ?timed:bool -> nshards:int -> unit -> t

val nshards : t -> int

(** Pack a global-order point. [tile] must fit in 20 bits. *)
val point : seq:int -> tile:int -> int

(** Advance the calling shard's horizon (must be monotone). *)
val publish : t -> shard:int -> point:int -> unit

(** Block until every other shard's horizon is strictly above [point].
    On return the caller holds the exclusive right to perform shared
    operations at [point] until it next advances its horizon.
    @raise Aborted if another shard failed. *)
val wait_order : t -> shard:int -> point:int -> unit

(** Combined barrier: blocks until all shards arrive; the last arriver
    runs [reduce] before anyone is released. The reducer has a
    happens-before edge over all pre-barrier writes, so it may read any
    shard's plain state. @raise Aborted if any shard or [reduce]
    failed. *)
val barrier : t -> shard:int -> reduce:(unit -> unit) -> unit

(** [run t body] runs [body shard] for shards [0 .. nshards-1], shard 0
    on the calling domain, the rest on fresh domains; joins them all and
    re-raises the first recorded failure, if any. *)
val run : t -> (int -> unit) -> unit

(** Seconds shard [k] has spent spinning (always [0.] unless created
    with [~timed:true]). Read after {!run} returns — slots are plain
    fields owned by their shard while running. *)
val wait_seconds : t -> int -> float
