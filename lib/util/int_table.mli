(** Open-addressing int-to-int hash table for the simulator's hot paths.

    Monomorphic and allocation-free on every operation except growth:
    lookups return a caller-supplied default instead of allocating an
    option, [add] performs read-modify-write in a single probe, and
    [iter]/[fold] walk the backing arrays without building lists.

    Keys must not be [min_int] or [min_int + 1] (reserved slot markers);
    all operations raise [Invalid_argument] on them. *)

type t

val create : ?initial_capacity:int -> unit -> t

(** Number of live entries. *)
val length : t -> int

val mem : t -> int -> bool

(** [find t k ~default] is [k]'s value, or [default] when absent. *)
val find : t -> int -> default:int -> int

(** Insert or replace, in a single probe sequence. *)
val set : t -> int -> int -> unit

(** [add t k delta] adds [delta] to [k]'s value (absent keys count as 0),
    stores the sum and returns it. A single probe. *)
val add : t -> int -> int -> int

(** Remove [k] if present (leaves a tombstone reclaimed at the next
    growth). *)
val remove : t -> int -> unit

(** {1 Slot-level access}

    For call sites that must branch on presence and then update without a
    second probe: [probe] returns the slot index of a present key (or -1),
    and [value_at]/[set_at] read and write that slot. Slots are invalidated
    by any insertion or removal. *)

val probe : t -> int -> int
val value_at : t -> int -> int
val set_at : t -> int -> int -> unit

(** Iterate over live entries in unspecified order, without allocating. *)
val iter : (int -> int -> unit) -> t -> unit

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val clear : t -> unit

(** {1 Snapshots}

    Verbatim images of the backing arrays. Probe sequences and iteration
    order depend on slot layout, so dumps preserve it exactly: a restored
    table behaves identically to the original, including iteration order
    and growth points. *)

type dump

val dump : t -> dump
val of_dump : dump -> t

(** [restore t d] overwrites [t] in place with [d]'s contents. *)
val restore : t -> dump -> unit
