(** Domain-parallel execution of independent tasks with deterministic
    result ordering.

    Tasks must not share mutable state (every simulator run builds its own
    state, so whole-simulation thunks qualify). Result slot [i] always
    holds task [i]'s outcome, whatever domain ran it; with [jobs <= 1] the
    tasks run serially on the calling domain, so parallel and serial runs
    are bit-identical for deterministic tasks. The first raising task (by
    index) has its exception re-raised with its original backtrace after
    all domains join. *)

(** Cores the runtime recommends using on this machine (at least 1).
    Callers deciding whether parallelism can pay off — nested pools, the
    bench suite on 1-CPU hosts — should consult this rather than
    spawning unconditionally. *)
val available_cores : unit -> int

(** A sensible default worker count for this machine. *)
val default_jobs : unit -> int

(** [run ~jobs tasks] executes every task and returns their results in
    task order. At most [jobs] domains run concurrently (the calling
    domain counts as one). *)
val run : jobs:int -> (unit -> 'a) array -> 'a array

(** [map ~jobs f items] is [run] over [f] applied to each item. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Observability hook, called on the executing domain as each task
    starts; the returned closure runs when the task finishes (normal or
    raising exit alike). [None] (the default) costs one ref read per
    task. Installed by the host-span tracer — ordinary callers should
    not touch this. *)
val set_task_hook : (unit -> unit -> unit) option -> unit
