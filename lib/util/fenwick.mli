(** Fenwick (binary indexed) tree over integer counts.

    Backs the O(n log n) LRU stack-distance algorithm in trace analysis:
    point updates and prefix sums over access positions. *)

type t

(** [create n] covers indices [0 .. n-1], all zero. *)
val create : int -> t

(** [add t i delta]; raises [Invalid_argument] out of bounds. *)
val add : t -> int -> int -> unit

(** Sum of entries [0 .. i] ([i = -1] gives 0). *)
val prefix_sum : t -> int -> int

(** Sum over the inclusive range. *)
val range_sum : t -> lo:int -> hi:int -> int

val size : t -> int

(** {1 Snapshots} — verbatim copy of the tree array. [restore] raises
    [Invalid_argument] if the sizes differ. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
