(** Generic analytic performance model for loosely-coupled, fixed-function
    accelerators (§IV-B).

    An accelerator is abstracted as concurrent load / compute / store
    processes pipelined over a double-buffered private local memory (PLM):
    input is consumed in PLM-sized chunks, computation overlaps DMA, and a
    maximum memory bandwidth scales execution when instances run in
    parallel. The model is closed-form — invoking it costs nearly no
    simulation time (the paper's "several orders of magnitude faster than
    RTL simulation"). *)

type sys_params = {
  freq_ghz : float;
  mem_bw_bytes_per_cycle : float;
      (** memory bandwidth available to this invocation *)
  noc_hops : int;  (** average hops between accelerator and memory *)
  noc_hop_latency : int;
  invocation_overhead : int;  (** device-driver cost in cycles *)
}

val default_sys : sys_params

type design_point = {
  plm_bytes : int;  (** private local memory (total, double-buffered) *)
  par_lanes : int;  (** compute parallelism from HLS knobs *)
}

(** Design point used for kinds without an entry in the SoC config's
    [accel_designs] (64 KB PLM, 16 lanes). *)
val default_design : design_point

(** The workload of one invocation, already reduced to its resource
    demands by {!Accel_kinds}. *)
type workload = {
  ops : int;  (** total compute operations *)
  bytes_in : int;
  bytes_out : int;
}

type estimate = {
  cycles : int;
  bytes : int;  (** total memory traffic *)
  avg_power_w : float;
  energy_j : float;
}

(** Closed-form pipelined estimate. Raises [Invalid_argument] on empty
    workloads or non-positive design parameters. *)
val estimate : sys_params -> design_point -> workload -> estimate

(** Area of a design point (µm²): PLM SRAM plus datapath lanes plus fixed
    control. *)
val area_um2 : design_point -> float

(** Average power (W) of a design point while active. *)
val power_w : design_point -> float

(** Number of PLM-sized chunks the input is streamed in. *)
val chunks : design_point -> workload -> int

(** [estimate] plus an [Accel_invoke] trace event emitted into [sink]
    (default: disabled). [tile] is the invoking tile, [kind] the kernel
    name, [cycle] the invocation cycle. *)
val estimate_traced :
  ?sink:Mosaic_obs.Sink.t ->
  tile:int ->
  kind:string ->
  cycle:int ->
  sys_params ->
  design_point ->
  workload ->
  estimate
