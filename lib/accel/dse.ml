type point = {
  kind : string;
  plm_bytes : int;
  workload_bytes : int;
  model_cycles : int;
  rtl_cycles : int;
  fpga_cycles : int;
  area_um2 : float;
  avg_power_w : float;
}

let accuracy ~model ~golden =
  if model <= 0 || golden <= 0 then invalid_arg "Dse.accuracy";
  let a = float_of_int model and b = float_of_int golden in
  Stdlib.min a b /. Stdlib.max a b

let lanes_of_kind = function
  | "gemm" -> 64
  | "histo" -> 4
  | "elementwise" -> 8
  | _ -> 8

(* Derive a workload whose input footprint is [footprint] bytes. For GEMM
   the memory traffic depends on the blocking the PLM allows: tiles of
   dimension T (two T x T f32 operands per half-PLM) mean each input matrix
   is streamed n/T times. *)
let workload_for ~kind ~plm ~footprint =
  let open Accel_model in
  match kind with
  | "gemm" ->
      let n =
        int_of_float (Float.sqrt (float_of_int footprint /. 8.0))
      in
      let n = Stdlib.max 8 n in
      let tile =
        Stdlib.max 4 (int_of_float (Float.sqrt (float_of_int plm /. 16.0)))
      in
      let passes = Stdlib.max 1 ((n + tile - 1) / tile) in
      {
        ops = n * n * n;
        bytes_in = 8 * n * n * passes;
        bytes_out = 4 * n * n;
      }
  | "histo" ->
      let n = Stdlib.max 64 (footprint / 4) in
      { ops = n; bytes_in = 4 * n; bytes_out = 4 * 256 }
  | "elementwise" ->
      let n = Stdlib.max 64 (footprint / 8) in
      { ops = n; bytes_in = 8 * n; bytes_out = 4 * n }
  | _ -> invalid_arg (Printf.sprintf "Dse.workload_for: unknown %s" kind)

let sweep ?(jobs = 1) ~kind ~plm_sizes ~workload_bytes sys =
  let points =
    List.concat_map
      (fun plm -> List.map (fun footprint -> (plm, footprint)) workload_bytes)
      plm_sizes
  in
  let eval (plm, footprint) =
    let dp = { Accel_model.plm_bytes = plm; par_lanes = lanes_of_kind kind } in
    let w = workload_for ~kind ~plm ~footprint in
    let est = Accel_model.estimate sys dp w in
    {
      kind;
      plm_bytes = plm;
      workload_bytes = footprint;
      model_cycles = est.Accel_model.cycles;
      rtl_cycles = Accel_rtl.rtl_cycles sys dp w;
      fpga_cycles = Accel_rtl.fpga_cycles sys dp w;
      area_um2 = Accel_model.area_um2 dp;
      avg_power_w = est.Accel_model.avg_power_w;
    }
  in
  (* Each design point is independent; the pool keeps input order, so the
     sweep's output is identical at any [jobs]. *)
  if jobs <= 1 then List.map eval points
  else
    Array.to_list
      (Mosaic_util.Domain_pool.map ~jobs eval (Array.of_list points))

let mean_accuracy points =
  let accs golden_of =
    Mosaic_util.Stats.mean
      (List.map
         (fun pt -> accuracy ~model:pt.model_cycles ~golden:(golden_of pt))
         points)
  in
  (accs (fun pt -> pt.rtl_cycles), accs (fun pt -> pt.fpga_cycles))

let paper_plm_sizes = [ 4 * 1024; 16 * 1024; 64 * 1024; 256 * 1024 ]

let paper_workload_bytes =
  [ 256 * 1024; 1024 * 1024; 4 * 1024 * 1024; 16 * 1024 * 1024 ]
