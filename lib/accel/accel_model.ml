type sys_params = {
  freq_ghz : float;
  mem_bw_bytes_per_cycle : float;
  noc_hops : int;
  noc_hop_latency : int;
  invocation_overhead : int;
}

let default_sys =
  {
    freq_ghz = 2.0;
    mem_bw_bytes_per_cycle = 12.0;
    noc_hops = 2;
    noc_hop_latency = 4;
    invocation_overhead = 2000;
  }

type design_point = { plm_bytes : int; par_lanes : int }

(* Fallback for accelerator kinds the SoC config names no explicit design
   point for; shared by the SoC driver and the DSE re-timer so both price
   an unconfigured kind identically. *)
let default_design = { plm_bytes = 64 * 1024; par_lanes = 16 }

type workload = { ops : int; bytes_in : int; bytes_out : int }

type estimate = {
  cycles : int;
  bytes : int;
  avg_power_w : float;
  energy_j : float;
}

let chunks dp w =
  if dp.plm_bytes <= 0 then invalid_arg "Accel_model: plm_bytes";
  let chunk = Stdlib.max 1 (dp.plm_bytes / 2) in
  Stdlib.max 1 ((w.bytes_in + chunk - 1) / chunk)

let power_w dp =
  (* Control plus datapath plus SRAM leakage+dynamic; ballpark 22nm ASIC
     (a few pJ per MAC). *)
  0.003
  +. (0.0008 *. float_of_int dp.par_lanes)
  +. (0.06e-6 *. float_of_int dp.plm_bytes)

let area_um2 dp =
  (* ~0.9 um^2 per PLM byte (6T SRAM + periphery), ~3500 um^2 per lane. *)
  60_000.0
  +. (0.9 *. float_of_int dp.plm_bytes)
  +. (3_500.0 *. float_of_int dp.par_lanes)

let estimate sys dp w =
  if w.bytes_in <= 0 && w.ops <= 0 then
    invalid_arg "Accel_model.estimate: empty workload";
  if dp.par_lanes <= 0 then invalid_arg "Accel_model.estimate: par_lanes";
  if sys.mem_bw_bytes_per_cycle <= 0.0 then
    invalid_arg "Accel_model.estimate: bandwidth";
  let n = chunks dp w in
  let fn = float_of_int n in
  let noc = float_of_int (sys.noc_hops * sys.noc_hop_latency) in
  let t_load = (float_of_int w.bytes_in /. fn /. sys.mem_bw_bytes_per_cycle) +. noc in
  let t_store =
    if w.bytes_out = 0 then 0.0
    else (float_of_int w.bytes_out /. fn /. sys.mem_bw_bytes_per_cycle) +. noc
  in
  let t_compute = float_of_int w.ops /. fn /. float_of_int dp.par_lanes in
  let stage = Stdlib.max t_load (Stdlib.max t_compute t_store) in
  let total =
    t_load +. t_compute +. t_store
    +. ((fn -. 1.0) *. stage)
    +. float_of_int sys.invocation_overhead
  in
  let cycles = int_of_float (Float.ceil total) in
  let avg_power_w = power_w dp in
  let seconds = float_of_int cycles /. (sys.freq_ghz *. 1e9) in
  {
    cycles;
    bytes = w.bytes_in + w.bytes_out;
    avg_power_w;
    energy_j = avg_power_w *. seconds;
  }

(* [estimate] plus an [Accel_invoke] trace event; the SoC's invocation path
   goes through here so accelerator activity shows up as spans on the
   exported trace. *)
let estimate_traced ?(sink = Mosaic_obs.Sink.null) ~tile ~kind ~cycle sys dp w =
  let est = estimate sys dp w in
  if Mosaic_obs.Sink.enabled sink then
    Mosaic_obs.Sink.emit sink ~cycle
      (Mosaic_obs.Event.Accel_invoke { tile; kind; cycles = est.cycles });
  est
