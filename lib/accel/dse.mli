(** Design-space exploration driver (§IV-B, Fig 10).

    HLS lets one SystemC specification yield many RTL design points; this
    sweeps PLM sizes against workload sizes for an accelerator kind and
    reports execution time, area, and the analytic model's accuracy against
    the RTL-simulation and FPGA-emulation goldens. *)

type point = {
  kind : string;
  plm_bytes : int;
  workload_bytes : int;  (** total input footprint of the swept workload *)
  model_cycles : int;
  rtl_cycles : int;
  fpga_cycles : int;
  area_um2 : float;
  avg_power_w : float;
}

(** Accuracy as the paper reports it: how close the model is to a golden,
    in (0, 1]. *)
val accuracy : model:int -> golden:int -> float

(** [sweep ~kind ~plm_sizes ~workload_bytes sys] crosses design points with
    workload sizes. Workload parameters are derived per kind so that the
    input footprint matches [workload_bytes]. [jobs] (default 1) evaluates
    points across that many domains; output order — and every simulated
    number — is identical at any job count. *)
val sweep :
  ?jobs:int ->
  kind:string ->
  plm_sizes:int list ->
  workload_bytes:int list ->
  Accel_model.sys_params ->
  point list

(** Mean model accuracy over a sweep, versus (rtl, fpga). *)
val mean_accuracy : point list -> float * float

(** The paper's sweep: PLM {4, 16, 64, 256} KB x workloads
    {256 KB, 1 MB, 4 MB, 16 MB}. *)
val paper_plm_sizes : int list

val paper_workload_bytes : int list
