(** Runtime values of the MosaicSim IR.

    The IR is timing-oriented: values exist so the trace-generating
    interpreter can execute kernels for real (resolving control flow and
    memory addresses), not for a full type system. Integers, booleans and
    pointers share [Int]; floating point uses [Float]. *)

type t = Int of int64 | Float of float

val zero : t
val of_int : int -> t
val of_float : float -> t
val of_bool : bool -> t

(** Coercions used by the interpreter. [to_int64]/[to_float] convert across
    representations ([Float 3.5] → [3L]); [to_bool] is C-style truthiness. *)
val to_int64 : t -> int64

val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Source-form literal for the textual IR. Unlike {!pp} (display-oriented,
    lossy for floats), [literal] round-trips: parsing the string yields the
    same constructor and the same bits. Floats always carry a float marker
    (['.'], ['e'], ["nan"], ["inf"]) so the parser cannot mistake them for
    integers; [-0.0] prints as ["-0.0"], not ["0"]. *)
val literal : t -> string

(** [literal] specialized to floats; shortest decimal form whose bits
    round-trip exactly. *)
val float_literal : float -> string

val pp_literal : Format.formatter -> t -> unit
