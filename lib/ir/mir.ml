(* Workload metadata carried by `.mir` files.

   A bare program body (globals + kernels) is not a runnable workload: it
   still needs a launch spec and datasets. `.mir` files carry those as
   `;`-directive headers, parsed by [Parse] into the [meta] record here.
   Dataset initializers name the seeded generators of
   [Mosaic_workloads.Datasets] rather than inlining megabytes of values,
   so a file stays small and its memory image stays bit-identical to the
   builder-DSL twin that uses the same generator and seed. *)

type dataset_field = Row_ptr | Cols | Values

type init =
  | Floats of { seed : int; offset : float }
      (** uniform [0,1) floats, plus [offset] (the lbm "0.5 +." shift) *)
  | Ints of { seed : int; bound : int }  (** uniform ints in [0, bound) *)
  | Points of { seed : int }  (** x,y,z triples; elems must divide by 3 *)
  | Const of Value.t  (** fill every element with one value *)
  | Values of Value.t list  (** explicit leading elements *)
  | Graph of { seed : int; n : int; degree : int; field : dataset_field }
  | Bipartite of {
      seed : int;
      n_left : int;
      n_right : int;
      degree : int;
      field : dataset_field;
    }
  | Sparse of {
      seed : int;
      rows : int;
      cols : int;
      per_row : int;
      field : dataset_field;
    }

type launch = { kernel : string; args : Value.t list }

type meta = {
  workload : string option;
  launch : launch option;
  inits : (string * init) list;  (** global name -> initializer, in order *)
  sets : (string * int * Value.t) list  (** point pokes: global, index, value *)
}

let empty = { workload = None; launch = None; inits = []; sets = [] }

type t = { meta : meta; program : Program.t }

let field_name = function
  | Row_ptr -> "rowptr"
  | Cols -> "cols"
  | Values -> "values"

let init_to_string = function
  | Floats { seed; offset } ->
      if offset = 0.0 then Printf.sprintf "floats seed=%d" seed
      else Printf.sprintf "floats seed=%d offset=%s" seed (Value.float_literal offset)
  | Ints { seed; bound } -> Printf.sprintf "ints seed=%d bound=%d" seed bound
  | Points { seed } -> Printf.sprintf "points seed=%d" seed
  | Const v -> Printf.sprintf "const %s" (Value.literal v)
  | Values vs ->
      "values " ^ String.concat " " (List.map Value.literal vs)
  | Graph { seed; n; degree; field } ->
      Printf.sprintf "graph.%s seed=%d n=%d degree=%d" (field_name field) seed
        n degree
  | Bipartite { seed; n_left; n_right; degree; field } ->
      Printf.sprintf "bipartite.%s seed=%d left=%d right=%d degree=%d"
        (field_name field) seed n_left n_right degree
  | Sparse { seed; rows; cols; per_row; field } ->
      Printf.sprintf "sparse.%s seed=%d rows=%d cols=%d per_row=%d"
        (field_name field) seed rows cols per_row

let pp_meta ppf m =
  Option.iter (fun w -> Format.fprintf ppf "; workload: %s@." w) m.workload;
  Option.iter
    (fun { kernel; args } ->
      Format.fprintf ppf "; launch: @%s(%s)@." kernel
        (String.concat ", " (List.map Value.literal args)))
    m.launch;
  List.iter
    (fun (g, init) ->
      Format.fprintf ppf "; init: @%s %s@." g (init_to_string init))
    m.inits;
  List.iter
    (fun (g, i, v) ->
      Format.fprintf ppf "; set: @%s %d %s@." g i (Value.literal v))
    m.sets

(* The canonical serialized form `mosaicsim fmt` emits: directive headers,
   then the program in the pretty-printer's surface syntax. *)
let pp_file ppf { meta; program } =
  pp_meta ppf meta;
  if meta <> empty then Format.pp_print_newline ppf ();
  Pretty.pp_program ppf program

let to_string t = Format.asprintf "%a" pp_file t
