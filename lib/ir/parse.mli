(** Parser for the `.mir` surface syntax (the {!Pretty} output format,
    plus comments and workload-metadata directives).

    The grammar is line-oriented:

    - [; ...] — comment, unless the first word is a directive key
      ([workload:], [launch:], [init:], [set:]; see {!Mir});
    - [global @name : N x SB at 0xADDR] — global declaration (the [at]
      clause is ignored: bases are reassigned deterministically);
    - [kernel @name(params=N, regs=M) {] ... [}] — kernel definition;
    - [bbN:] — basic-block label;
    - [[ 12] %r3 = add %r1 %r2] — instruction, with an optional explicit
      [[id]] prefix as emitted by the printer. Explicit ids are preserved
      (they must form a dense permutation per kernel); files without them
      get sequential ids. Mixing styles in one kernel is an error.

    Parse errors carry a 1-based line/column. [mir] collects every
    diagnostic it can recover to — including IR validation failures,
    located at the offending kernel or instruction — instead of stopping
    at the first. *)

exception Parse_error of { line : int; col : int; message : string }

(** A located parse or validation failure. [len] is the width of the
    offending token (>= 1), used for caret underlining. *)
type diagnostic = { line : int; col : int; len : int; message : string }

(** Parse a complete `.mir` file: metadata directives plus program body.
    The result's program is validated; on any failure returns every
    diagnostic collected, in source order. [path] is only used in
    rendered messages. *)
val mir : ?path:string -> string -> (Mir.t, diagnostic list) result

(** Like {!mir} but raises {!Parse_error} with the first diagnostic. *)
val mir_exn : ?path:string -> string -> Mir.t

(** Parse a program body (metadata directives are allowed and checked, but
    discarded). Raises {!Parse_error} on the first failure — including
    validation failures, which earlier versions leaked as
    [Invalid_argument]. *)
val program : string -> Program.t

(** [kernel prog text] parses [text] (which must define exactly one
    kernel, possibly referencing globals already allocated in [prog]),
    adds it to [prog] and returns it. *)
val kernel : Program.t -> string -> Func.t

(** Render one diagnostic human-readably: a [file:line:col: error: ...]
    header, the offending source line, and a caret marking the column. *)
val render_diagnostic : ?path:string -> source:string -> diagnostic -> string

(** {!render_diagnostic} over a list, concatenated. *)
val render : ?path:string -> source:string -> diagnostic list -> string
