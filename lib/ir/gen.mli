(** Seeded random program generator for differential fuzzing.

    [generate ~seed ()] produces a well-typed, validated program with a
    single kernel that is guaranteed to terminate (counted loops only,
    constant trip counts) and to stay inside its globals (power-of-two
    masking of every index). Immediates include the adversarial literals
    — NaN, infinities, [-0.0], [Int64.max_int]/[min_int] — that stress
    the textual round-trip and the evaluator's guards.

    The same seed always yields the same case, so a fuzz divergence is
    reproducible from its seed alone. *)

type case = {
  seed : int;
  program : Program.t;
  kernel : string;  (** always defined in [program] *)
  args : Value.t list;  (** matches the kernel's parameter count *)
  ntiles : int;  (** suggested tile count, 1..4 *)
}

val generate : seed:int -> ?size:int -> unit -> case
