(* Random well-formed program generator for differential fuzzing.

   Programs are built through [Builder] (so they are structurally valid by
   construction), then checked with [Validate] as a belt-and-braces
   assertion. Three properties are guaranteed so every generated case can
   be traced and simulated safely:

   - termination: the only loops are counted [for_] loops with constant
     trip counts (<= 4) nested at most [max_depth] deep;
   - memory safety: every address is [elem g (x land (elems-1))] with
     power-of-two element counts, so indices stay in bounds;
   - evaluation safety: [Eval] already guards zero divisors and masks
     shift amounts, and unwritten registers/memory read as zero, so no
     operand combination can crash the interpreter.

   Immediates deliberately include the literals that are hardest to
   round-trip through the textual syntax: NaN, infinities, [-0.0],
   subnormal-ish magnitudes and both [Int64] extremes. *)

module Rng = Mosaic_util.Rng

type case = {
  seed : int;
  program : Program.t;
  kernel : string;
  args : Value.t list;
  ntiles : int;
}

let int_imms =
  [|
    0L; 1L; -1L; 2L; 3L; 7L; 63L; 255L; 4096L; -37L;
    Int64.max_int; Int64.min_int;
  |]

let float_imms =
  [|
    0.0; -0.0; 1.0; -1.0; 0.5; -2.75; 3.14159265358979312;
    1e300; 1e-300; -6.25e-2;
    Float.nan; Float.infinity; Float.neg_infinity;
  |]

type st = {
  rng : Rng.t;
  b : Builder.t;
  globals : (Program.global * int) array;  (* global, index mask *)
  mutable ints : Instr.operand list;  (* int-typed operand pool *)
  mutable floats : Instr.operand list;  (* float-typed operand pool *)
  mutable budget : int;  (* approximate instructions left to emit *)
}

let pick rng l = List.nth l (Rng.int rng (List.length l))
let pick_int st = pick st.rng st.ints
let pick_float st = pick st.rng st.floats
let push_int st o = st.ints <- o :: st.ints
let push_float st o = st.floats <- o :: st.floats

(* In-bounds address of a random element of a random global. *)
let address st =
  let g, mask = st.globals.(Rng.int st.rng (Array.length st.globals)) in
  let idx = Builder.and_ st.b (pick_int st) (Builder.imm mask) in
  (Builder.elem st.b g idx, g)

let ibinops =
  [| Builder.add; Builder.sub; Builder.mul; Builder.sdiv; Builder.srem;
     Builder.and_; Builder.or_; Builder.xor; Builder.shl; Builder.lshr;
     Builder.ashr |]

let fbinops = [| Builder.fadd; Builder.fsub; Builder.fmul; Builder.fdiv |]

let preds = [| Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge |]
let math1s = [| Op.Sqrt; Op.Sin; Op.Cos; Op.Exp; Op.Log; Op.Fabs; Op.Floor |]
let math2s = [| Op.Pow; Op.Atan2 |]
let rmws = [| Op.Rmw_add; Op.Rmw_min; Op.Rmw_max; Op.Rmw_xchg |]

let choose st a = a.(Rng.int st.rng (Array.length a))

let max_depth = 3

let rec stmt st ~depth =
  st.budget <- st.budget - 1;
  match Rng.int st.rng 14 with
  | 0 | 1 ->
      push_int st ((choose st ibinops) st.b (pick_int st) (pick_int st))
  | 2 | 3 ->
      push_float st ((choose st fbinops) st.b (pick_float st) (pick_float st))
  | 4 ->
      if Rng.bool st.rng then
        push_int st
          (Builder.icmp st.b (choose st preds) (pick_int st) (pick_int st))
      else
        push_int st
          (Builder.fcmp st.b (choose st preds) (pick_float st) (pick_float st))
  | 5 ->
      let cond = Builder.icmp st.b Op.Ne (pick_int st) (Builder.imm 0) in
      push_int st (Builder.select st.b cond (pick_int st) (pick_int st))
  | 6 ->
      if Rng.bool st.rng then push_float st (Builder.sitofp st.b (pick_int st))
      else push_int st (Builder.fptosi st.b (pick_float st))
  | 7 ->
      if Rng.bool st.rng then
        push_float st (Builder.math1 st.b (choose st math1s) (pick_float st))
      else
        push_float st
          (Builder.math2 st.b (choose st math2s) (pick_float st)
             (pick_float st))
  | 8 ->
      let addr, g = address st in
      let v = Builder.load st.b ~size:g.Program.elem_size addr in
      if Rng.bool st.rng then push_int st v else push_float st v
  | 9 ->
      let addr, g = address st in
      let v = if Rng.bool st.rng then pick_int st else pick_float st in
      Builder.store st.b ~size:g.Program.elem_size ~addr v
  | 10 ->
      let addr, g = address st in
      push_int st
        (Builder.atomic st.b (choose st rmws) ~size:g.Program.elem_size ~addr
           (pick_int st))
  | 11 when depth < max_depth ->
      let cond =
        Builder.icmp st.b (choose st preds) (pick_int st) (pick_int st)
      in
      let saved_i = st.ints and saved_f = st.floats in
      if Rng.bool st.rng then
        Builder.if_ st.b cond (fun () -> block st ~depth:(depth + 1))
      else
        Builder.if_else st.b cond
          (fun () -> block st ~depth:(depth + 1))
          (fun () -> block st ~depth:(depth + 1));
      (* Operands defined under a branch may be skipped at runtime; keep
         them out of the pools so later code never reads a maybe-unwritten
         register. *)
      st.ints <- saved_i;
      st.floats <- saved_f
  | 12 when depth < max_depth ->
      let trip = 1 + Rng.int st.rng 4 in
      let acc = Builder.var st.b (pick_int st) in
      let saved_i = st.ints and saved_f = st.floats in
      Builder.for_ st.b ~from:(Builder.imm 0) ~to_:(Builder.imm trip)
        (fun i ->
          push_int st i;
          block st ~depth:(depth + 1);
          Builder.assign st.b ~var:acc (Builder.add st.b acc (pick_int st)));
      st.ints <- saved_i;
      st.floats <- saved_f;
      (* The accumulator register is written before the loop, so it is
         safe to use afterwards. *)
      push_int st acc
  | _ ->
      let v = Builder.var st.b (pick_int st) in
      Builder.assign st.b ~var:v ((choose st ibinops) st.b v (pick_int st));
      push_int st v

and block st ~depth =
  let n = 1 + Rng.int st.rng 3 in
  for _ = 1 to n do
    if st.budget > 0 then stmt st ~depth
  done

let generate ~seed ?(size = 40) () =
  let rng = Rng.create seed in
  let prog = Program.create () in
  let nglobals = 1 + Rng.int rng 3 in
  let globals =
    Array.init nglobals (fun i ->
        let elems = 8 lsl Rng.int rng 4 (* 8..64, power of two *) in
        let elem_size = if Rng.bool rng then 4 else 8 in
        let g =
          Program.alloc prog (Printf.sprintf "g%d" i) ~elems ~elem_size
        in
        (g, elems - 1))
  in
  let nparams = Rng.int rng 3 in
  let args =
    List.init nparams (fun _ ->
        if Rng.bool rng then Value.Int (Int64.of_int (Rng.int rng 1024))
        else Value.of_float (Rng.unit_float rng))
  in
  let kernel = "fuzz" in
  ignore
    (Builder.define prog kernel ~nparams (fun b ->
         let st =
           {
             rng;
             b;
             globals;
             ints =
               Builder.tid :: Builder.ntiles
               :: List.init nparams (Builder.param b)
               @ Array.to_list (Array.map (fun i -> Instr.Imm (Value.Int i)) int_imms);
             floats =
               Array.to_list
                 (Array.map (fun f -> Instr.Imm (Value.of_float f)) float_imms);
             budget = size;
           }
         in
         while st.budget > 0 do
           stmt st ~depth:0
         done;
         (* Make sure memory is always touched so cached-vs-uncached runs
            exercise the trace store with a non-trivial footprint. *)
         let addr, g = address st in
         Builder.store st.b ~size:g.Program.elem_size ~addr (pick_int st);
         Builder.ret b ()));
  (match Validate.check_program prog with
  | [] -> ()
  | e :: _ ->
      failwith
        (Printf.sprintf "Gen.generate: seed %d produced invalid IR: %s: %s"
           seed e.Validate.where e.Validate.what));
  let ntiles = 1 + Rng.int rng 4 in
  { seed; program = prog; kernel; args; ntiles }
