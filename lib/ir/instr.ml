type operand =
  | Reg of int
  | Imm of Value.t
  | Glob of string
  | Tid
  | Ntiles

type t = { id : int; op : Op.t; args : operand array; dst : int option }

let make ~id ~op ~args ~dst = { id; op; args; dst }

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%r%d" r
  | Imm v -> Value.pp_literal ppf v
  | Glob g -> Format.fprintf ppf "@%s" g
  | Tid -> Format.pp_print_string ppf "%tid"
  | Ntiles -> Format.pp_print_string ppf "%ntiles"

let pp ppf i =
  (match i.dst with
  | Some d -> Format.fprintf ppf "%%r%d = " d
  | None -> ());
  Op.pp ppf i.op;
  Array.iter (fun a -> Format.fprintf ppf " %a" pp_operand a) i.args

let uses i =
  Array.fold_left
    (fun acc operand ->
      match operand with
      | Reg r -> if List.mem r acc then acc else r :: acc
      | Imm _ | Glob _ | Tid | Ntiles -> acc)
    [] i.args
  |> List.rev

let equal_operand a b =
  match (a, b) with
  | Reg x, Reg y -> x = y
  | Imm x, Imm y -> Value.equal x y
  | Glob x, Glob y -> String.equal x y
  | Tid, Tid | Ntiles, Ntiles -> true
  | (Reg _ | Imm _ | Glob _ | Tid | Ntiles), _ -> false
