type t = Int of int64 | Float of float

let zero = Int 0L

let of_int i = Int (Int64.of_int i)

let of_float f = Float f

let of_bool b = Int (if b then 1L else 0L)

let to_int64 = function Int i -> i | Float f -> Int64.of_float f

let to_int v = Int64.to_int (to_int64 v)

let to_float = function Int i -> Int64.to_float i | Float f -> f

let to_bool = function Int i -> i <> 0L | Float f -> f <> 0.0

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Int _, Float _ | Float _, Int _ -> false

let pp ppf = function
  | Int i -> Format.fprintf ppf "%Ld" i
  | Float f -> Format.fprintf ppf "%g" f

let to_string v = Format.asprintf "%a" pp v

(* A float literal must survive print -> parse -> print byte-identically:
   it has to read back as the same bits AND keep a marker ('.', 'e', "nan",
   "inf") so the parser classifies it as a float, never an int. "%g" is
   tried first for readability and upgraded to "%.17g" (always exact for
   binary64) when it loses bits. *)
let float_literal f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let exact s = Int64.bits_of_float (float_of_string s) = Int64.bits_of_float f in
    let short = Printf.sprintf "%g" f in
    let s = if exact short then short else Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let literal = function
  | Int i -> Int64.to_string i
  | Float f -> float_literal f

let pp_literal ppf v = Format.pp_print_string ppf (literal v)
