(** Workload metadata of `.mir` files.

    A `.mir` file is a complete, runnable workload: a program body in the
    {!Pretty} surface syntax plus `;`-directive headers giving it a name,
    a kernel launch, and dataset initializers:

    {v
    ; workload: stream
    ; launch: @stream(1024)
    ; init: @data floats seed=59
    global @data : 1024 x 8B at 0x1000
    kernel @stream(params=1, regs=8) { ... }
    v}

    Initializers reference the seeded generators of
    [Mosaic_workloads.Datasets] by name, so the post-setup memory image is
    bit-identical to a builder-DSL workload using the same generator and
    seed — which makes trace-store digests, and therefore simulated
    cycles, bit-identical too. This module only defines and prints the
    metadata; {!Parse} produces it and [Mosaic_workloads.Mir_workload]
    applies it. *)

type dataset_field = Row_ptr | Cols | Values

type init =
  | Floats of { seed : int; offset : float }
  | Ints of { seed : int; bound : int }
  | Points of { seed : int }
  | Const of Value.t
  | Values of Value.t list
  | Graph of { seed : int; n : int; degree : int; field : dataset_field }
  | Bipartite of {
      seed : int;
      n_left : int;
      n_right : int;
      degree : int;
      field : dataset_field;
    }
  | Sparse of {
      seed : int;
      rows : int;
      cols : int;
      per_row : int;
      field : dataset_field;
    }

type launch = { kernel : string; args : Value.t list }

type meta = {
  workload : string option;
  launch : launch option;
  inits : (string * init) list;
  sets : (string * int * Value.t) list;
}

val empty : meta

(** A parsed `.mir` file: metadata plus the validated program. *)
type t = { meta : meta; program : Program.t }

val init_to_string : init -> string

val pp_meta : Format.formatter -> meta -> unit

(** Canonical serialized form (directive headers, blank line, program
    text); [Parse.mir] of this output reproduces [t] exactly, so it is the
    formatter `mosaicsim fmt` emits. *)
val pp_file : Format.formatter -> t -> unit

val to_string : t -> string
