(* Located parser for the `.mir` surface syntax.

   Line-oriented, like the printer's output, but hardened into a real file
   frontend: every token knows its line/column, errors are collected into
   a recoverable diagnostic list instead of aborting at the first problem,
   `;` comments and `; key: ...` metadata directives are understood, and
   validation failures come back located at the offending kernel or
   instruction rather than as a bare [Invalid_argument].

   Instruction ids: the printer emits `[ 12]` prefixes recording each
   instruction's function-wide id (builder emission order, which is not
   block order). When a file carries them they are preserved — so
   print -> parse is the identity on programs and trace-store digests
   survive the round trip. Files written by hand can omit them; ids are
   then assigned sequentially in block order. Mixing the two styles inside
   one kernel is an error. *)

exception Parse_error of { line : int; col : int; message : string }

type diagnostic = { line : int; col : int; len : int; message : string }

(* Internal per-line abort: recorded and recovered from. *)
exception Located of diagnostic

let error ?(len = 1) ~line ~col fmt =
  Format.kasprintf
    (fun message -> raise (Located { line; col; len; message }))
    fmt

(* ---- rendering ---- *)

let render_diagnostic ?path ~source d =
  let buf = Buffer.create 256 in
  let file = match path with Some p -> p | None -> "<input>" in
  Buffer.add_string buf
    (Printf.sprintf "%s:%d:%d: error: %s\n" file d.line d.col d.message);
  let lines = String.split_on_char '\n' source in
  (match List.nth_opt lines (d.line - 1) with
  | Some text ->
      let gutter = Printf.sprintf "%4d | " d.line in
      Buffer.add_string buf gutter;
      Buffer.add_string buf text;
      Buffer.add_char buf '\n';
      Buffer.add_string buf "     | ";
      let col = min d.col (String.length text + 1) in
      for i = 0 to col - 2 do
        (* Keep tabs so the caret lines up under tab-indented sources. *)
        Buffer.add_char buf (if i < String.length text && text.[i] = '\t' then '\t' else ' ')
      done;
      Buffer.add_char buf '^';
      for _ = 2 to d.len do
        Buffer.add_char buf '~'
      done;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.contents buf

let render ?path ~source diags =
  String.concat "" (List.map (render_diagnostic ?path ~source) diags)

(* ---- tokenizer ---- *)

type tok = { text : string; col : int }

let is_space c = c = ' ' || c = '\t' || c = '\r'

let is_punct c =
  c = ':' || c = '=' || c = '{' || c = '}' || c = '[' || c = ']'

(* Words separated by whitespace; '(' ')' ',' are silent separators so
   headers and launch specs split cleanly; ':' '=' '{' '}' '[' ']' are
   single-character tokens. [offset] shifts reported columns (directive
   bodies are sub-strings of their line). *)
let tokens ?(offset = 0) s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let start = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := { text = Buffer.contents buf; col = offset + !start + 1 } :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_space c || c = '(' || c = ')' || c = ',' then flush ()
    else if is_punct c then begin
      flush ();
      out := { text = String.make 1 c; col = offset + i + 1 } :: !out
    end
    else begin
      if Buffer.length buf = 0 then start := i;
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !out

let cut_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

(* ---- leaf parsers ---- *)

let int_of ~line (t : tok) =
  match int_of_string_opt t.text with
  | Some i -> i
  | None ->
      error ~line ~col:t.col ~len:(String.length t.text)
        "expected an integer, got '%s'" t.text

let value_of ~line (t : tok) =
  match Int64.of_string_opt t.text with
  | Some i -> Value.Int i
  | None -> (
      match float_of_string_opt t.text with
      | Some f -> Value.of_float f
      | None ->
          error ~line ~col:t.col ~len:(String.length t.text)
            "expected a literal, got '%s'" t.text)

let glob_of ~line (t : tok) =
  if String.length t.text > 1 && t.text.[0] = '@' then
    String.sub t.text 1 (String.length t.text - 1)
  else
    error ~line ~col:t.col ~len:(String.length t.text)
      "expected a global (@name), got '%s'" t.text

let parse_operand ~line (t : tok) =
  let tok = t.text in
  let bad () =
    error ~line ~col:t.col ~len:(String.length tok)
      "bad operand '%s' (expected %%rN, @global, %%tid, %%ntiles or a \
       literal)"
      tok
  in
  if tok = "%tid" then Instr.Tid
  else if tok = "%ntiles" then Instr.Ntiles
  else if tok = "true" then Instr.Imm (Value.of_bool true)
  else if tok = "false" then Instr.Imm (Value.of_bool false)
  else if String.length tok > 2 && tok.[0] = '%' && tok.[1] = 'r' then
    match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
    | Some r when r >= 0 -> Instr.Reg r
    | _ -> bad ()
  else if String.length tok > 1 && tok.[0] = '@' then
    Instr.Glob (String.sub tok 1 (String.length tok - 1))
  else
    match Int64.of_string_opt tok with
    | Some i -> Instr.Imm (Value.Int i)
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Instr.Imm (Value.of_float f)
        | None -> bad ())

let pred_of ~line ~col = function
  | "eq" -> Op.Eq
  | "ne" -> Op.Ne
  | "lt" -> Op.Lt
  | "le" -> Op.Le
  | "gt" -> Op.Gt
  | "ge" -> Op.Ge
  | p -> error ~line ~col "bad predicate '%s' (eq|ne|lt|le|gt|ge)" p

let math_of = function
  | "sqrt" -> Some Op.Sqrt
  | "sin" -> Some Op.Sin
  | "cos" -> Some Op.Cos
  | "exp" -> Some Op.Exp
  | "log" -> Some Op.Log
  | "fabs" -> Some Op.Fabs
  | "floor" -> Some Op.Floor
  | "pow" -> Some Op.Pow
  | "atan2" -> Some Op.Atan2
  | _ -> None

let rmw_of ~line ~col = function
  | "add" -> Op.Rmw_add
  | "min" -> Op.Rmw_min
  | "max" -> Op.Rmw_max
  | "xchg" -> Op.Rmw_xchg
  | r -> error ~line ~col "bad rmw kind '%s' (add|min|max|xchg)" r

let subint ~line ~col s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> error ~line ~col "expected an integer, got '%s'" s

let bb_of ~line (t : tok) =
  if
    String.length t.text > 2
    && String.sub t.text 0 2 = "bb"
    && int_of_string_opt (String.sub t.text 2 (String.length t.text - 2))
       <> None
  then int_of_string (String.sub t.text 2 (String.length t.text - 2))
  else
    error ~line ~col:t.col ~len:(String.length t.text)
      "expected a block label (bbN), got '%s'" t.text

let split_on_char_nonempty c s =
  List.filter (fun x -> x <> "") (String.split_on_char c s)

let parse_op ~line (m : tok) rest_tokens =
  let col = m.col in
  let parts = split_on_char_nonempty '.' m.text in
  match parts with
  | [ "add" ] -> Op.Binop Op.Add
  | [ "sub" ] -> Op.Binop Op.Sub
  | [ "mul" ] -> Op.Binop Op.Mul
  | [ "sdiv" ] -> Op.Binop Op.Sdiv
  | [ "srem" ] -> Op.Binop Op.Srem
  | [ "and" ] -> Op.Binop Op.And
  | [ "or" ] -> Op.Binop Op.Or
  | [ "xor" ] -> Op.Binop Op.Xor
  | [ "shl" ] -> Op.Binop Op.Shl
  | [ "lshr" ] -> Op.Binop Op.Lshr
  | [ "ashr" ] -> Op.Binop Op.Ashr
  | [ "fadd" ] -> Op.Fbinop Op.Fadd
  | [ "fsub" ] -> Op.Fbinop Op.Fsub
  | [ "fmul" ] -> Op.Fbinop Op.Fmul
  | [ "fdiv" ] -> Op.Fbinop Op.Fdiv
  | [ "icmp"; p ] -> Op.Icmp (pred_of ~line ~col p)
  | [ "fcmp"; p ] -> Op.Fcmp (pred_of ~line ~col p)
  | [ "select" ] -> Op.Select
  | [ "sitofp" ] -> Op.Cast Op.Sitofp
  | [ "fptosi" ] -> Op.Cast Op.Fptosi
  | [ "zext" ] -> Op.Cast Op.Zext
  | [ "trunc" ] -> Op.Cast Op.Trunc
  | [ "call"; m ] -> (
      match math_of m with
      | Some m -> Op.Math m
      | None -> error ~line ~col "unknown math call '%s'" m)
  | [ "gep"; scale ] -> Op.Gep (subint ~line ~col scale)
  | [ "load"; size ] -> Op.Load (subint ~line ~col size)
  | [ "store"; size ] -> Op.Store (subint ~line ~col size)
  | [ "atomicrmw"; r; size ] ->
      Op.Atomic_rmw (rmw_of ~line ~col r, subint ~line ~col size)
  | [ "send"; chan ] -> Op.Send (subint ~line ~col chan)
  | [ "recv"; chan ] -> Op.Recv (subint ~line ~col chan)
  | [ "loadsend"; chan; size ] ->
      Op.Load_send (subint ~line ~col chan, subint ~line ~col size)
  | [ "storerecv"; chan; size ] ->
      Op.Store_recv (subint ~line ~col chan, subint ~line ~col size, None)
  | [ "storerecv"; r; chan; size ] ->
      Op.Store_recv
        ( subint ~line ~col chan,
          subint ~line ~col size,
          Some (rmw_of ~line ~col r) )
  | [ "accel"; kind ] -> Op.Accel kind
  | [ "br" ] -> (
      match rest_tokens with
      | [ target ] -> Op.Br (bb_of ~line target)
      | _ -> error ~line ~col "br expects exactly one target block"
  )
  | [ "condbr" ] -> (
      (* printer order: condbr <taken> <not-taken> <cond> *)
      match rest_tokens with
      | [ t; e; _cond ] -> Op.Cond_br (bb_of ~line t, bb_of ~line e)
      | _ -> error ~line ~col "condbr expects two targets and a condition")
  | [ "ret" ] -> Op.Ret
  | _ -> (
      match math_of m.text with
      | Some m -> Op.Math m
      | None ->
          error ~line ~col ~len:(String.length m.text)
            "unknown instruction '%s'" m.text)

type raw_instr = {
  r_op : Op.t;
  r_args : Instr.operand list;
  r_dst : int option;
  r_id : int option;  (** explicit [n] id prefix, when present *)
  r_line : int;
  r_col : int;
}

let parse_instr ~line toks =
  (* Optional explicit id: "[" n "]" *)
  let r_id, toks =
    match toks with
    | { text = "["; _ } :: n :: { text = "]"; _ } :: rest ->
        (Some (int_of ~line n), rest)
    | { text = "["; col; _ } :: _ ->
        error ~line ~col "malformed instruction id (expected [N])"
    | _ -> (None, toks)
  in
  let r_dst, toks =
    match toks with
    | d :: { text = "="; _ } :: rest
      when String.length d.text > 2 && d.text.[0] = '%' && d.text.[1] = 'r'
      -> (
        match
          int_of_string_opt (String.sub d.text 2 (String.length d.text - 2))
        with
        | Some r when r >= 0 -> (Some r, rest)
        | _ ->
            error ~line ~col:d.col ~len:(String.length d.text)
              "bad destination register '%s'" d.text)
    | _ -> (None, toks)
  in
  match toks with
  | [] -> error ~line ~col:1 "empty instruction"
  | mnemonic :: args ->
      let op = parse_op ~line mnemonic args in
      let operands =
        match op with
        | Op.Br _ -> []
        | Op.Cond_br _ -> (
            match List.rev args with
            | cond :: _ -> [ parse_operand ~line cond ]
            | [] ->
                error ~line ~col:mnemonic.col "condbr expects a condition")
        | _ -> List.map (parse_operand ~line) args
      in
      { r_op = op; r_args = operands; r_dst; r_id; r_line = line;
        r_col = mnemonic.col }

(* ---- directives ---- *)

(* A line whose first non-blank char is ';' is a comment, unless the first
   word is a known directive key followed by ':'. Unknown keys stay
   comments, so prose headers never clash with the directive namespace. *)
let directive_keys = [ "workload"; "launch"; "init"; "set" ]

let directive line_text =
  let n = String.length line_text in
  let i = ref 0 in
  while !i < n && is_space line_text.[!i] do incr i done;
  if !i >= n || line_text.[!i] <> ';' then None
  else begin
    let j = ref (!i + 1) in
    while !j < n && is_space line_text.[!j] do incr j done;
    let k = ref !j in
    while
      !k < n && (line_text.[!k] = '-' ||
                 (line_text.[!k] >= 'a' && line_text.[!k] <= 'z'))
    do incr k done;
    let key = String.sub line_text !j (!k - !j) in
    let k2 = ref !k in
    while !k2 < n && is_space line_text.[!k2] do incr k2 done;
    if !k2 < n && line_text.[!k2] = ':' && List.mem key directive_keys then
      Some (key, !j + 1, String.sub line_text (!k2 + 1) (n - !k2 - 1), !k2 + 1)
    else None
  end

(* key=value tails: ident '=' value triples. *)
let rec kv_list ~line = function
  | [] -> []
  | k :: { text = "="; _ } :: v :: rest -> (k, v) :: kv_list ~line rest
  | (t : tok) :: _ ->
      error ~line ~col:t.col ~len:(String.length t.text)
        "expected key=value, got '%s'" t.text

let kv_int ~line ~col kvs key =
  match List.find_opt (fun ((k : tok), _) -> k.text = key) kvs with
  | Some (_, v) -> int_of ~line v
  | None -> error ~line ~col "missing %s=N" key

let kv_int_opt ~line kvs key =
  Option.map
    (fun (_, v) -> int_of ~line v)
    (List.find_opt (fun ((k : tok), _) -> k.text = key) kvs)

let kv_float_opt ~line kvs key =
  Option.map
    (fun (_, (v : tok)) ->
      match float_of_string_opt v.text with
      | Some f -> f
      | None ->
          error ~line ~col:v.col ~len:(String.length v.text)
            "expected a float, got '%s'" v.text)
    (List.find_opt (fun ((k : tok), _) -> k.text = key) kvs)

let check_kv_keys ~line kvs allowed =
  List.iter
    (fun ((k : tok), _) ->
      if not (List.mem k.text allowed) then
        error ~line ~col:k.col ~len:(String.length k.text)
          "unknown key '%s' (expected one of: %s)" k.text
          (String.concat ", " allowed))
    kvs

let dataset_field ~line ~col = function
  | "rowptr" -> Mir.Row_ptr
  | "cols" -> Mir.Cols
  | "values" -> Mir.Values
  | f -> error ~line ~col "unknown dataset field '%s' (rowptr|cols|values)" f

let parse_init_spec ~line (spec : tok) rest =
  let col = spec.col in
  (* const/values take raw literals; everything else takes key=value. *)
  let kvs = lazy (kv_list ~line rest) in
  match split_on_char_nonempty '.' spec.text with
  | [ "floats" ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed"; "offset" ];
      Mir.Floats
        {
          seed = kv_int ~line ~col (Lazy.force kvs) "seed";
          offset = Option.value ~default:0.0 (kv_float_opt ~line (Lazy.force kvs) "offset");
        }
  | [ "ints" ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed"; "bound" ];
      Mir.Ints
        {
          seed = kv_int ~line ~col (Lazy.force kvs) "seed";
          bound = kv_int ~line ~col (Lazy.force kvs) "bound";
        }
  | [ "points" ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed" ];
      Mir.Points { seed = kv_int ~line ~col (Lazy.force kvs) "seed" }
  | [ "const" ] -> (
      match rest with
      | [ v ] -> Mir.Const (value_of ~line v)
      | _ -> error ~line ~col "const expects exactly one value")
  | [ "values" ] ->
      if rest = [] then error ~line ~col "values expects at least one value";
      Mir.Values (List.map (value_of ~line) rest)
  | [ "graph"; f ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed"; "n"; "degree" ];
      Mir.Graph
        {
          seed = kv_int ~line ~col (Lazy.force kvs) "seed";
          n = kv_int ~line ~col (Lazy.force kvs) "n";
          degree = kv_int ~line ~col (Lazy.force kvs) "degree";
          field = dataset_field ~line ~col f;
        }
  | [ "bipartite"; f ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed"; "left"; "right"; "degree" ];
      Mir.Bipartite
        {
          seed = kv_int ~line ~col (Lazy.force kvs) "seed";
          n_left = kv_int ~line ~col (Lazy.force kvs) "left";
          n_right = kv_int ~line ~col (Lazy.force kvs) "right";
          degree = kv_int ~line ~col (Lazy.force kvs) "degree";
          field = dataset_field ~line ~col f;
        }
  | [ "sparse"; f ] ->
      check_kv_keys ~line (Lazy.force kvs) [ "seed"; "rows"; "cols"; "per_row" ];
      Mir.Sparse
        {
          seed = kv_int ~line ~col (Lazy.force kvs) "seed";
          rows = kv_int ~line ~col (Lazy.force kvs) "rows";
          cols = kv_int ~line ~col (Lazy.force kvs) "cols";
          per_row = kv_int ~line ~col (Lazy.force kvs) "per_row";
          field = dataset_field ~line ~col f;
        }
  | _ ->
      error ~line ~col ~len:(String.length spec.text)
        "unknown initializer '%s' (floats|ints|points|const|values|graph.*|\
         bipartite.*|sparse.*)"
        spec.text

(* ---- line classification ---- *)

type line_kind =
  | L_workload of string
  | L_launch of Mir.launch
  | L_init of { glob : string; col : int; init : Mir.init }
  | L_set of { glob : string; col : int; index : int; value : Value.t }
  | L_global of { name : string; elems : int; elem_size : int }
  | L_kernel of { name : string; nparams : int; nregs : int option }
  | L_label of int
  | L_close
  | L_instr of raw_instr
  | L_blank

let classify_directive ~line key off rest col0 =
  let toks = tokens ~offset:off rest in
  match key with
  | "workload" -> (
      match toks with
      | [ t ] -> L_workload t.text
      | _ -> error ~line ~col:col0 "workload directive expects a single name")
  | "launch" -> (
      match toks with
      | k :: args when String.length k.text > 1 && k.text.[0] = '@' ->
          L_launch
            {
              Mir.kernel = String.sub k.text 1 (String.length k.text - 1);
              args = List.map (value_of ~line) args;
            }
      | _ ->
          error ~line ~col:col0
            "launch directive expects @kernel(arg, ...)")
  | "init" -> (
      match toks with
      | g :: spec :: rest ->
          L_init
            {
              glob = glob_of ~line g;
              col = g.col;
              init = parse_init_spec ~line spec rest;
            }
      | _ -> error ~line ~col:col0 "init directive expects @global <spec>")
  | "set" -> (
      match toks with
      | [ g; i; v ] ->
          L_set
            {
              glob = glob_of ~line g;
              col = g.col;
              index = int_of ~line i;
              value = value_of ~line v;
            }
      | _ -> error ~line ~col:col0 "set directive expects @global <index> <value>")
  | _ -> assert false

let is_label (t : tok) =
  String.length t.text > 2
  && String.sub t.text 0 2 = "bb"
  && int_of_string_opt (String.sub t.text 2 (String.length t.text - 2)) <> None

let classify_line ~line raw =
  match directive raw with
  | Some (key, key_col, rest, off) ->
      classify_directive ~line key off rest key_col
  | None -> (
      let toks = tokens (cut_comment raw) in
      match toks with
      | [] -> L_blank
      | { text = "global"; _ } :: g :: rest ->
          let name = glob_of ~line g in
          let rest =
            match rest with { text = ":"; _ } :: r -> r | r -> r
          in
          (match rest with
          | elems :: { text = "x"; _ } :: size :: _ ->
              let elem_size =
                let s = size.text in
                if String.length s > 1 && s.[String.length s - 1] = 'B' then
                  subint ~line ~col:size.col (String.sub s 0 (String.length s - 1))
                else subint ~line ~col:size.col s
              in
              L_global { name; elems = int_of ~line elems; elem_size }
          | _ ->
              error ~line ~col:g.col
                "malformed global (expected: global @name : N x SB)")
      | { text = "kernel"; col } :: g :: rest ->
          let name = glob_of ~line g in
          let rest =
            List.filter (fun t -> t.text <> "{") rest
          in
          let kvs = kv_list ~line rest in
          check_kv_keys ~line kvs [ "params"; "regs" ];
          (match kv_int_opt ~line kvs "params" with
          | Some nparams ->
              L_kernel { name; nparams; nregs = kv_int_opt ~line kvs "regs" }
          | None -> error ~line ~col "kernel header missing params=N")
      | [ l; { text = ":"; _ } ] when is_label l ->
          L_label (int_of_string (String.sub l.text 2 (String.length l.text - 2)))
      | [ { text = "}"; _ } ] -> L_close
      | _ -> L_instr (parse_instr ~line toks))

(* ---- function assembly ---- *)

(* Maps the validator's "<func>/bbN[k]" location strings back to source
   lines, so validation failures surface as located diagnostics. *)
type line_map = (string, int) Hashtbl.t

let build_func ~push_error ~(where_lines : line_map) ~header_line ~name
    ~nparams ~nregs_decl body_blocks =
  (* body_blocks: (bid, label_line, raw_instr list) in appearance order. *)
  let ok = ref true in
  let explicit = ref 0 and implicit = ref 0 and total = ref 0 in
  List.iter
    (fun (_, _, raws) ->
      List.iter
        (fun r ->
          incr total;
          match r.r_id with
          | Some _ -> incr explicit
          | None -> incr implicit)
        raws)
    body_blocks;
  if !explicit > 0 && !implicit > 0 then begin
    ok := false;
    push_error
      {
        line = header_line;
        col = 1;
        len = 1;
        message =
          Printf.sprintf
            "kernel @%s mixes explicit [N] instruction ids with bare \
             instructions; use one style throughout"
            name;
      }
  end;
  let use_explicit = !explicit > 0 && !implicit = 0 in
  if use_explicit then begin
    (* Explicit ids must be a permutation of 0..n-1: Func.make indexes an
       array by id, and dependence analysis relies on density. *)
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (_, _, raws) ->
        List.iter
          (fun r ->
            match r.r_id with
            | Some id ->
                if id < 0 || id >= !total then begin
                  ok := false;
                  push_error
                    {
                      line = r.r_line;
                      col = r.r_col;
                      len = 1;
                      message =
                        Printf.sprintf
                          "instruction id %d out of range (kernel @%s has %d \
                           instructions)"
                          id name !total;
                    }
                end
                else if Hashtbl.mem seen id then begin
                  ok := false;
                  push_error
                    {
                      line = r.r_line;
                      col = r.r_col;
                      len = 1;
                      message =
                        Printf.sprintf "duplicate instruction id %d in kernel @%s"
                          id name;
                    }
                end
                else Hashtbl.replace seen id ()
            | None -> ())
          raws)
      body_blocks
  end;
  let next_id = ref 0 in
  let nregs = ref nparams in
  let note_reg r = if r + 1 > !nregs then nregs := r + 1 in
  let blocks =
    List.mapi
      (fun bi (bid, label_line, raws) ->
        Hashtbl.replace where_lines
          (Printf.sprintf "%s/bb%d" name bi)
          label_line;
        let instrs =
          List.mapi
            (fun k r ->
              Hashtbl.replace where_lines
                (Printf.sprintf "%s/bb%d[%d]" name bi k)
                r.r_line;
              (match r.r_dst with Some d -> note_reg d | None -> ());
              List.iter
                (function Instr.Reg x -> note_reg x | _ -> ())
                r.r_args;
              (match (Op.has_result r.r_op, r.r_dst) with
              | true, None ->
                  ok := false;
                  push_error
                    {
                      line = r.r_line;
                      col = r.r_col;
                      len = 1;
                      message =
                        Format.asprintf
                          "'%a' produces a result and needs a destination \
                           (%%rN = ...)"
                          Op.pp r.r_op;
                    }
              | false, Some _ ->
                  ok := false;
                  push_error
                    {
                      line = r.r_line;
                      col = r.r_col;
                      len = 1;
                      message =
                        Format.asprintf "'%a' takes no destination register"
                          Op.pp r.r_op;
                    }
              | _ -> ());
              let id =
                if use_explicit then Option.value ~default:0 r.r_id
                else begin
                  let id = !next_id in
                  incr next_id;
                  id
                end
              in
              Instr.make ~id ~op:r.r_op ~args:(Array.of_list r.r_args)
                ~dst:r.r_dst)
            raws
        in
        { Func.bid; instrs = Array.of_list instrs })
      body_blocks
  in
  if !ok then begin
    let nregs =
      match nregs_decl with Some d -> Stdlib.max d !nregs | None -> !nregs
    in
    Hashtbl.replace where_lines name header_line;
    Some (Func.make ~name ~nparams ~nregs ~blocks:(Array.of_list blocks))
  end
  else None

(* ---- whole-file parsing ---- *)

type kernel_state = {
  k_name : string;
  k_nparams : int;
  k_nregs : int option;
  k_header_line : int;
  k_bad : bool;  (* header failed to parse; body is checked but discarded *)
  mutable k_blocks : (int * int * raw_instr list ref) list;  (* reversed *)
}

let mir ?path:_ text =
  let errors = ref [] in
  let push_error d = errors := d :: !errors in
  let prog = Program.create () in
  let where_lines : line_map = Hashtbl.create 256 in
  let workload = ref None in
  let launch = ref None in
  (* directives kept with their source locations for the meta checks *)
  let inits = ref [] and sets = ref [] in
  let state = ref `Top in
  let funcs = ref [] in
  let lines = String.split_on_char '\n' text in
  let close_kernel ks =
    if not ks.k_bad then begin
      let body =
        List.rev_map (fun (bid, l, is) -> (bid, l, List.rev !is)) ks.k_blocks
      in
      match
        build_func ~push_error ~where_lines ~header_line:ks.k_header_line
          ~name:ks.k_name ~nparams:ks.k_nparams ~nregs_decl:ks.k_nregs body
      with
      | Some f -> funcs := (f, ks.k_header_line) :: !funcs
      | None -> ()
    end
  in
  List.iteri
    (fun idx raw_line ->
      let line = idx + 1 in
      try
        match classify_line ~line raw_line with
        | L_blank -> ()
        | L_workload w -> (
            match !workload with
            | None -> workload := Some w
            | Some _ -> error ~line ~col:1 "duplicate workload directive")
        | L_launch l -> (
            match !launch with
            | None -> launch := Some (l, line)
            | Some _ -> error ~line ~col:1 "duplicate launch directive")
        | L_init { glob; col; init } -> inits := (glob, init, line, col) :: !inits
        | L_set { glob; col; index; value } ->
            sets := (glob, index, value, line, col) :: !sets
        | L_global { name; elems; elem_size } ->
            if !state <> `Top then
              error ~line ~col:1 "global declared inside a kernel";
            (try ignore (Program.alloc prog name ~elems ~elem_size)
             with Invalid_argument m -> error ~line ~col:1 "%s" m)
        | L_kernel { name; nparams; nregs } ->
            (match !state with
            | `Top -> ()
            | `In_kernel _ ->
                error ~line ~col:1
                  "nested kernel (missing '}' before kernel @%s?)" name);
            state :=
              `In_kernel
                {
                  k_name = name;
                  k_nparams = nparams;
                  k_nregs = nregs;
                  k_header_line = line;
                  k_bad = false;
                  k_blocks = [];
                }
        | L_label bid -> (
            match !state with
            | `In_kernel ks -> ks.k_blocks <- (bid, line, ref []) :: ks.k_blocks
            | `Top -> error ~line ~col:1 "block label outside a kernel")
        | L_instr raw -> (
            match !state with
            | `In_kernel ks -> (
                match ks.k_blocks with
                | (_, _, instrs) :: _ -> instrs := raw :: !instrs
                | [] ->
                    error ~line ~col:raw.r_col
                      "instruction before the first block label")
            | `Top -> error ~line ~col:raw.r_col "instruction outside a kernel")
        | L_close -> (
            match !state with
            | `In_kernel ks ->
                close_kernel ks;
                state := `Top
            | `Top -> error ~line ~col:1 "unmatched '}'")
      with Located d -> push_error d)
    lines;
  (match !state with
  | `In_kernel ks ->
      push_error
        {
          line = List.length lines;
          col = 1;
          len = 1;
          message =
            Printf.sprintf "kernel @%s is never closed (missing '}')"
              ks.k_name;
        }
  | `Top -> ());
  List.iter
    (fun (f, header_line) ->
      try Program.add_func prog f
      with Invalid_argument m ->
        push_error { line = header_line; col = 1; len = 1; message = m })
    (List.rev !funcs);
  (* Validation and metadata cross-checks only make sense on a program that
     assembled cleanly. *)
  if !errors = [] then begin
    List.iter
      (fun (e : Validate.error) ->
        let line =
          match Hashtbl.find_opt where_lines e.Validate.where with
          | Some l -> l
          | None -> (
              (* "<func>[id]" (unresolved-global errors) falls back to the
                 kernel header. *)
              match String.index_opt e.Validate.where '[' with
              | Some i -> (
                  match
                    Hashtbl.find_opt where_lines
                      (String.sub e.Validate.where 0 i)
                  with
                  | Some l -> l
                  | None -> 1)
              | None -> 1)
        in
        push_error
          {
            line;
            col = 1;
            len = 1;
            message =
              Printf.sprintf "invalid IR at %s: %s" e.Validate.where
                e.Validate.what;
          })
      (Validate.check_program prog);
    List.iter
      (fun (glob, _, line, col) ->
        if Program.find_global prog glob = None then
          push_error
            {
              line;
              col;
              len = String.length glob + 1;
              message = Printf.sprintf "init of unknown global @%s" glob;
            })
      (List.rev !inits);
    List.iter
      (fun (glob, index, _, line, col) ->
        match Program.find_global prog glob with
        | None ->
            push_error
              {
                line;
                col;
                len = String.length glob + 1;
                message = Printf.sprintf "set of unknown global @%s" glob;
              }
        | Some g ->
            if index < 0 || index >= g.Program.elems then
              push_error
                {
                  line;
                  col;
                  len = String.length glob + 1;
                  message =
                    Printf.sprintf
                      "set index %d out of range for @%s (%d elements)" index
                      glob g.Program.elems;
                })
      (List.rev !sets);
    (* one init per global *)
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (glob, _, line, col) ->
        if Hashtbl.mem seen glob then
          push_error
            {
              line;
              col;
              len = String.length glob + 1;
              message = Printf.sprintf "duplicate init for global @%s" glob;
            }
        else Hashtbl.replace seen glob ())
      (List.rev !inits);
    (match !launch with
    | Some ({ Mir.kernel; args }, line) -> (
        match Program.find_func prog kernel with
        | None ->
            push_error
              {
                line;
                col = 1;
                len = 1;
                message = Printf.sprintf "launch of unknown kernel @%s" kernel;
              }
        | Some f ->
            if List.length args <> f.Func.nparams then
              push_error
                {
                  line;
                  col = 1;
                  len = 1;
                  message =
                    Printf.sprintf
                      "launch passes %d argument(s) but kernel @%s takes %d"
                      (List.length args) kernel f.Func.nparams;
                })
    | None -> ())
  end;
  let dedup ds =
    (* The validator can report the same defect once per operand use; exact
       duplicates add no information. *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun d ->
        if Hashtbl.mem seen d then false
        else begin
          Hashtbl.add seen d ();
          true
        end)
      ds
  in
  match dedup (List.rev !errors) with
  | [] ->
      Ok
        {
          Mir.meta =
            {
              Mir.workload = !workload;
              launch = Option.map fst !launch;
              inits = List.rev_map (fun (g, i, _, _) -> (g, i)) !inits;
              sets = List.rev_map (fun (g, i, v, _, _) -> (g, i, v)) !sets;
            };
          program = prog;
        }
  | diags -> Error diags

let mir_exn ?path text =
  match mir ?path text with
  | Ok m -> m
  | Error (d :: _) ->
      raise (Parse_error { line = d.line; col = d.col; message = d.message })
  | Error [] -> assert false

let program text = (mir_exn text).Mir.program

let kernel prog text =
  let sub = program text in
  match Program.funcs sub with
  | [ f ] ->
      Program.add_func prog f;
      f
  | fs ->
      invalid_arg
        (Printf.sprintf "Parse.kernel: expected exactly one kernel, got %d"
           (List.length fs))
