(* Chrome trace-event exporter: turns a recorded event stream into JSON
   loadable in chrome://tracing or Perfetto. Tracks (trace "threads") are
   one per tile plus one per cache level, DRAM, interleaver, NoC and
   accelerator; everything lives in a single process 0. Timestamps are
   simulation cycles. *)

let args_of_event (e : Event.t) =
  match e.Event.payload with
  | Event.Instr_issue { seq; cls; _ } ->
      [ ("seq", Json.Int seq); ("class", Json.String cls) ]
  | Event.Instr_retire { seq; _ } -> [ ("seq", Json.Int seq) ]
  | Event.Cache_access { cache; _ } -> [ ("cache", Json.String cache) ]
  | Event.Dram_row_activate { bank; row } ->
      [ ("bank", Json.Int bank); ("row", Json.Int row) ]
  | Event.Interleaver_handoff { src; dst; chan } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("chan", Json.Int chan) ]
  | Event.Noc_hop { src; dst; hops } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("hops", Json.Int hops) ]
  | Event.Accel_invoke { tile; kind; cycles } ->
      [
        ("tile", Json.Int tile);
        ("kind", Json.String kind);
        ("cycles", Json.Int cycles);
      ]

(* Accelerator invocations know their duration, so they render as complete
   ("X") spans; everything else is an instant ("i"). *)
let phase_and_extra (e : Event.t) =
  match e.Event.payload with
  | Event.Accel_invoke { cycles; _ } -> ("X", [ ("dur", Json.Int cycles) ])
  | _ -> ("i", [ ("s", Json.String "t") ])

let to_json events =
  (* Stable sort keeps same-cycle events in emission order while making the
     exported ts column monotonic. *)
  let events =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.cycle b.Event.cycle)
      events
  in
  let tracks = Hashtbl.create 16 in
  let track_order = ref [] in
  let tid_of e =
    let tr = Event.track e in
    match Hashtbl.find_opt tracks tr with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tracks in
        Hashtbl.replace tracks tr tid;
        track_order := (tr, tid) :: !track_order;
        tid
  in
  let rows =
    List.map
      (fun (e : Event.t) ->
        let ph, extra = phase_and_extra e in
        Json.Obj
          ([
             ("name", Json.String (Event.name e));
             ("ph", Json.String ph);
             ("ts", Json.Int e.Event.cycle);
             ("pid", Json.Int 0);
             ("tid", Json.Int (tid_of e));
           ]
          @ extra
          @ [ ("args", Json.Obj (args_of_event e)) ]))
      events
  in
  let metadata =
    List.rev_map
      (fun (name, tid) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String name) ]);
          ])
      !track_order
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ rows));
      ("displayTimeUnit", Json.String "ns");
    ]

let to_string events = Json.to_string (to_json events)

let write_file path events =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string events))
