(* Chrome trace-event exporter: turns a recorded event stream into JSON
   loadable in chrome://tracing or Perfetto. Tracks (trace "threads") are
   one per tile plus one per cache level, DRAM, interleaver, NoC and
   accelerator; everything lives in a single process 0. Timestamps are
   simulation cycles. *)

(* Counter samples carry one args entry per stall cause; Chrome renders
   each key as a series of the counter track. Extra (unnamed) slots can
   only come from hand-built events, not the profiler; label them c<i>
   instead of raising so exports never fail mid-run. *)
let stall_args counts =
  List.init (Array.length counts) (fun i ->
      let key =
        if i < Stall.ncauses then Stall.names.(i) else Printf.sprintf "c%d" i
      in
      (key, Json.Int counts.(i)))

let args_of_event (e : Event.t) =
  match e.Event.payload with
  | Event.Instr_issue { seq; cls; _ } ->
      [ ("seq", Json.Int seq); ("class", Json.String cls) ]
  | Event.Instr_retire { seq; _ } -> [ ("seq", Json.Int seq) ]
  | Event.Cache_access { cache; _ } -> [ ("cache", Json.String cache) ]
  | Event.Dram_row_activate { bank; row } ->
      [ ("bank", Json.Int bank); ("row", Json.Int row) ]
  | Event.Interleaver_handoff { src; dst; chan } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("chan", Json.Int chan) ]
  | Event.Noc_hop { src; dst; hops } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("hops", Json.Int hops) ]
  | Event.Accel_invoke { tile; kind; cycles } ->
      [
        ("tile", Json.Int tile);
        ("kind", Json.String kind);
        ("cycles", Json.Int cycles);
      ]
  | Event.Stall_sample { counts; _ } -> stall_args counts

(* Accelerator invocations know their duration, so they render as complete
   ("X") spans; stall samples are counter ("C") points; everything else is
   an instant ("i"). *)
let phase_and_extra (e : Event.t) =
  match e.Event.payload with
  | Event.Accel_invoke { cycles; _ } -> ("X", [ ("dur", Json.Int cycles) ])
  | Event.Stall_sample _ -> ("C", [])
  | _ -> ("i", [ ("s", Json.String "t") ])

(* Host spans live in their own Chrome process (pid 1, one "thread" per
   OCaml domain) so simulator wall-clock sits beside — not interleaved
   with — the simulated-hardware timeline in pid 0. Their ts/dur are
   microseconds of wall-clock since the tracer epoch, which Chrome
   renders on the same axis as pid 0's cycles; the tracks are separate,
   so mixed units only affect relative lengths, not correctness. *)
let host_rows spans =
  let tids =
    List.sort_uniq Stdlib.compare
      (List.map (fun (s : Span.completed) -> s.Span.domain) spans)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "host (simulator)") ]);
      ]
    :: List.map
         (fun tid ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args",
                Json.Obj
                  [ ("name", Json.String (Printf.sprintf "domain %d" tid)) ]);
             ])
         tids
  in
  let rows =
    List.map
      (fun (s : Span.completed) ->
        Json.Obj
          [
            ("name", Json.String s.Span.name);
            ("ph", Json.String "X");
            ("ts", Json.Float (s.Span.start_s *. 1e6));
            ("dur", Json.Float (s.Span.dur_s *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.Span.domain);
            ("args",
             Json.Obj
               [
                 ("depth", Json.Int s.Span.depth);
                 ("minor_words", Json.Float s.Span.minor_words);
                 ("major_collections", Json.Int s.Span.major_collections);
               ]);
          ])
      spans
  in
  metadata @ rows

let to_json ?(host_spans = []) events =
  (* Stable sort keeps same-cycle events in emission order while making the
     exported ts column monotonic. *)
  let events =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.cycle b.Event.cycle)
      events
  in
  let tracks = Hashtbl.create 16 in
  let track_order = ref [] in
  let tid_of e =
    let tr = Event.track e in
    match Hashtbl.find_opt tracks tr with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tracks in
        Hashtbl.replace tracks tr tid;
        track_order := (tr, tid) :: !track_order;
        tid
  in
  let rows =
    List.map
      (fun (e : Event.t) ->
        let ph, extra = phase_and_extra e in
        Json.Obj
          ([
             ("name", Json.String (Event.name e));
             ("ph", Json.String ph);
             ("ts", Json.Int e.Event.cycle);
             ("pid", Json.Int 0);
             ("tid", Json.Int (tid_of e));
           ]
          @ extra
          @ [ ("args", Json.Obj (args_of_event e)) ]))
      events
  in
  let metadata =
    List.rev_map
      (fun (name, tid) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String name) ]);
          ])
      !track_order
  in
  let host = if host_spans = [] then [] else host_rows host_spans in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ rows @ host));
      ("displayTimeUnit", Json.String "ns");
    ]

let to_string ?host_spans events = Json.to_string (to_json ?host_spans events)

let write_file ?host_spans path events =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?host_spans events))

(* Flat schema for stall-attribution samples, independent of the Chrome
   format: one row per (cycle, tile, cause) with the cumulative cycle
   count. Non-sample events in the stream are ignored, so the whole sink
   contents can be passed through unfiltered. *)

let stall_rows events =
  let events =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.cycle b.Event.cycle)
      events
  in
  List.concat_map
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Stall_sample { tile; counts } ->
          List.init (Array.length counts) (fun i ->
              let cause =
                if i < Stall.ncauses then Stall.names.(i)
                else Printf.sprintf "c%d" i
              in
              (e.Event.cycle, tile, cause, counts.(i)))
      | _ -> [])
    events

let stalls_to_csv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "cycle,tile,cause,cycles\n";
  List.iter
    (fun (cycle, tile, cause, v) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%s,%d\n" cycle tile cause v))
    (stall_rows events);
  Buffer.contents buf

let stalls_to_json events =
  Json.List
    (List.map
       (fun (cycle, tile, cause, v) ->
         Json.Obj
           [
             ("cycle", Json.Int cycle);
             ("tile", Json.Int tile);
             ("cause", Json.String cause);
             ("cycles", Json.Int v);
           ])
       (stall_rows events))
