(** Structured comparison of two run artifacts.

    Accepts either {!Manifest} JSON or a raw metrics dump (any JSON
    object, e.g. [BENCH_speed.json]); both flatten to dotted-key leaves
    ({!flatten}) which are then matched up and classified per key:

    - [Identical] — bit-equal values;
    - [Close] — numeric values differing by a relative delta within the
      threshold;
    - [Drifted] — beyond the threshold (string leaves that differ at all
      drift);
    - [Added] / [Removed] — present on only one side.

    Keys ending in [cycles] are the simulator's determinism contract, so
    they are always compared exactly — any difference is [Drifted]
    regardless of threshold, and {!cycle_drift} collects them for
    non-zero-exit decisions. *)

type value = Num of float | Str of string

type cls = Identical | Close | Drifted | Added | Removed

type entry = {
  key : string;
  a : value option;  (** baseline side *)
  b : value option;  (** candidate side *)
  cls : cls;
  rel : float;  (** relative numeric delta; [0.] for non-numeric pairs *)
}

val flatten : Json.t -> (string * value) list
(** Dotted-key leaves in document order: numbers, strings and bools
    ([Str "true"/"false"]); nulls and empty containers are dropped.
    Raises [Invalid_argument] if the document is not an object. *)

val flatten_file : string -> (string * value) list
(** Load a file and {!flatten} it. A manifest (object containing
    [manifest_version]) contributes its [metrics] plus [digest.*],
    [version.*] and [host.info.*] keys; any other object flattens
    whole. Raises [Sys_error] / {!Json.Parse_error}. *)

val is_cycles_key : string -> bool
(** Key ends in [cycles] (exact-match contract keys). *)

val compare :
  ?threshold:float ->
  (string * value) list ->
  (string * value) list ->
  entry list
(** One entry per key present on either side, sorted by key. [threshold]
    (default [0.]) is the relative-delta tolerance separating [Close]
    from [Drifted] for non-cycles numeric keys. Duplicate keys keep the
    first occurrence. *)

val cycle_drift : entry list -> entry list
(** Entries on cycles keys that are not [Identical] (including one-sided
    ones) — the non-zero-exit condition. *)

val render : ?show_identical:bool -> entry list -> string
(** Sorted table: class, key, baseline, candidate, delta. Identical and
    within-threshold rows are summarized in a trailing count line unless
    [show_identical]. *)
