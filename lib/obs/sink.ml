(* Low-overhead event sink: a fixed-capacity ring buffer of the most recent
   events plus emit/drop counters. The [null] sink is disabled: [emit] is a
   no-op and instrumentation sites guard payload construction with
   [enabled], so a simulation without tracing allocates nothing. *)

type t = {
  enabled : bool;
  buf : Event.t array;  (** ring storage; meaningful only when enabled *)
  capacity : int;
  mutable head : int;  (** next write position *)
  mutable emitted : int;  (** total events offered to the sink *)
  mutable dropped : int;  (** events overwritten by wraparound *)
}

let dummy_event = { Event.cycle = 0; payload = Event.Instr_retire { tile = 0; seq = 0 } }

let create ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    enabled = true;
    buf = Array.make capacity dummy_event;
    capacity;
    head = 0;
    emitted = 0;
    dropped = 0;
  }

(* The disabled sink: shared, never records. *)
let null =
  { enabled = false; buf = [||]; capacity = 0; head = 0; emitted = 0; dropped = 0 }

let enabled t = t.enabled

let emit t ~cycle payload =
  if t.enabled then begin
    if t.emitted >= t.capacity then t.dropped <- t.dropped + 1;
    t.buf.(t.head) <- { Event.cycle; payload };
    t.head <- (t.head + 1) mod t.capacity;
    t.emitted <- t.emitted + 1
  end

let length t = Stdlib.min t.emitted t.capacity
let emitted t = t.emitted
let dropped t = t.dropped

(* Events in emission order (oldest retained first). *)
let to_list t =
  if not t.enabled then []
  else
    let n = length t in
    let start = if t.emitted <= t.capacity then 0 else t.head in
    List.init n (fun i -> t.buf.((start + i) mod t.capacity))

let clear t =
  t.head <- 0;
  t.emitted <- 0;
  t.dropped <- 0
