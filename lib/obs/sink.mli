(** Low-overhead event sink: a fixed-capacity ring buffer of the most
    recent events plus emit/drop counters.

    Contract for instrumentation sites: guard payload construction with
    {!enabled} (e.g.
    [if Sink.enabled sink then Sink.emit sink ~cycle (Event.Instr_issue ...)])
    so a simulation wired to {!null} allocates nothing on the hot path.
    [emit] on a disabled sink is a no-op either way. *)

type t

val create : ?capacity:int -> unit -> t
(** Enabled sink retaining the last [capacity] events (default [2^20]).
    Raises [Invalid_argument] if [capacity <= 0]. *)

val null : t
(** The disabled sink: shared, never records, costs nothing. *)

val enabled : t -> bool

val emit : t -> cycle:int -> Event.payload -> unit
(** Record an event; once full, overwrites the oldest (counted in
    {!dropped}). No-op on a disabled sink. *)

val length : t -> int
(** Events currently retained. *)

val emitted : t -> int
(** Total events offered, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring wraparound. *)

val to_list : t -> Event.t list
(** Retained events in emission order (oldest first). *)

val clear : t -> unit
(** Reset to empty; capacity and enabledness unchanged. *)
