type t = {
  interval_s : float;
  print : string -> unit;
  label : string;
  total_instrs : int option;
  start : float;
  mutable last : float;
  mutable lines : int;
}

let default_print s =
  prerr_string s;
  flush stderr

let create ?(interval_s = 1.0) ?(print = default_print) ~label ~total_instrs ()
    =
  let now = Unix.gettimeofday () in
  {
    interval_s;
    print;
    label;
    total_instrs;
    start = now;
    (* First line appears one full interval in, so short runs print
       nothing at all. *)
    last = now;
    lines = 0;
  }

let human n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else string_of_int n

let line t ~now ~cycle ~instrs ~final =
  let elapsed = Stdlib.max 1e-9 (now -. t.start) in
  let mips = float_of_int instrs /. elapsed /. 1e6 in
  let tail =
    match t.total_instrs with
    | Some total when total > 0 && instrs > 0 && not final ->
        let pct = 100.0 *. float_of_int instrs /. float_of_int total in
        let eta =
          elapsed *. float_of_int (Stdlib.max 0 (total - instrs))
          /. float_of_int instrs
        in
        Printf.sprintf "  %4.1f%%  eta %.0fs" (Stdlib.min 100.0 pct) eta
    | _ when final -> Printf.sprintf "  done in %.1fs" elapsed
    | _ -> ""
  in
  Printf.sprintf "progress[%s]: cycle %s  instrs %s  %.2f MIPS%s\n" t.label
    (human cycle) (human instrs) mips tail

let tick t ~cycle ~instrs =
  let now = Unix.gettimeofday () in
  if now -. t.last >= t.interval_s then begin
    t.last <- now;
    t.lines <- t.lines + 1;
    t.print (line t ~now ~cycle ~instrs ~final:false)
  end

let finish t ~cycle ~instrs =
  if t.lines > 0 then begin
    t.lines <- t.lines + 1;
    t.print (line t ~now:(Unix.gettimeofday ()) ~cycle ~instrs ~final:true)
  end

let lines_printed t = t.lines
