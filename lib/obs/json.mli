(** Minimal JSON tree, printer and parser.

    Enough for the trace/metrics exporters and for tests that re-read
    exporter output; not a standards-lawyer implementation (the parser
    keeps only the low byte of [\u] escapes, and the printer does no
    scientific-notation canonicalization). Printing escapes quotes,
    backslashes and all control characters, so arbitrary workload/label
    strings round-trip through [to_string]/[of_string]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_string : t -> string
(** Compact (single-line) rendering. Integral floats print as ["x.0"]. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete document; raises {!Parse_error} on malformed input
    or trailing garbage. *)

(** {1 Accessors} — [_exn] variants raise {!Parse_error} on shape
    mismatch. *)

val member : string -> t -> t option
val member_exn : string -> t -> t
val to_list_exn : t -> t list
val to_number_exn : t -> float
val to_string_exn : t -> string
