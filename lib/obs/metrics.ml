(* Named-metric registry: counters, gauges and histograms that simulator
   components publish into, replacing ad-hoc result-record plumbing as the
   source of truth for reports and exporters. Histogram bucket counts sit
   in a Fenwick tree so quantile queries are prefix-sum searches. *)

module Fenwick = Mosaic_util.Fenwick

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = {
  bounds : float array;
      (** strictly increasing inclusive upper bounds; values above the last
          bound land in an implicit overflow bucket *)
  buckets : Fenwick.t;  (** one slot per bound plus the overflow bucket *)
  mutable hcount : int;
  fstate : float array;
      (** [| sum; min; max |] — a flat float array so the per-observation
          updates store unboxed floats instead of reboxing record fields *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (** reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let register t name m =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %s" name);
  Hashtbl.replace t.tbl name m;
  t.order <- name :: t.order

let counter t name =
  let c = { count = 0 } in
  register t name (Counter c);
  c

let gauge t name =
  let g = { value = 0.0 } in
  register t name (Gauge g);
  g

let default_latency_bounds =
  [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 4096.; 16384. |]

let histogram ?(bounds = default_latency_bounds) t name =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds;
  let h =
    {
      bounds;
      buckets = Fenwick.create (Array.length bounds + 1);
      hcount = 0;
      fstate = [| 0.0; Float.infinity; Float.neg_infinity |];
    }
  in
  register t name (Histogram h);
  h

(* --- Updates --- *)

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let set g v = g.value <- v
let gauge_value g = g.value

let bucket_index h v =
  (* First bound >= v, else the overflow bucket. *)
  let n = Array.length h.bounds in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then search lo mid else search (mid + 1) hi
  in
  search 0 n

let observe h v =
  Fenwick.add h.buckets (bucket_index h v) 1;
  h.hcount <- h.hcount + 1;
  h.fstate.(0) <- h.fstate.(0) +. v;
  if v < h.fstate.(1) then h.fstate.(1) <- v;
  if v > h.fstate.(2) then h.fstate.(2) <- v

let hist_count h = h.hcount
let hist_sum h = h.fstate.(0)
let hist_mean h =
  if h.hcount = 0 then 0.0 else h.fstate.(0) /. float_of_int h.hcount
let hist_min h = if h.hcount = 0 then 0.0 else h.fstate.(1)
let hist_max h = if h.hcount = 0 then 0.0 else h.fstate.(2)

(* Quantile estimate: the upper bound of the first bucket whose cumulative
   count reaches q of the total (overflow bucket reports the observed max).
   Empty histograms report 0 rather than raising, matching Stats. *)
let hist_quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.hist_quantile: q out of range";
  if h.hcount = 0 then 0.0
  else begin
    let target =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount)))
    in
    let n = Array.length h.bounds in
    let rec find i =
      if i > n then hist_max h
      else if Fenwick.prefix_sum h.buckets i >= target then
        if i < n then h.bounds.(i) else hist_max h
      else find (i + 1)
    in
    find 0
  end

(* --- Snapshots ---

   Only histograms mutate *during* a run (components publish counters at
   the end), so the snapshot layer dumps and restores individual histogram
   state: bucket tree, count and the sum/min/max scratch. *)

type hist_dump = { hd_buckets : Fenwick.dump; hd_count : int; hd_fstate : float array }

let hist_dump h =
  {
    hd_buckets = Fenwick.dump h.buckets;
    hd_count = h.hcount;
    hd_fstate = Array.copy h.fstate;
  }

let hist_restore h d =
  Fenwick.restore h.buckets d.hd_buckets;
  h.hcount <- d.hd_count;
  Array.blit d.hd_fstate 0 h.fstate 0 3

(* --- Lookup --- *)

let find t name = Hashtbl.find_opt t.tbl name
let mem t name = Hashtbl.mem t.tbl name

let get_counter t name =
  match find t name with
  | Some (Counter c) -> c.count
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a counter" name)
  | None -> invalid_arg (Printf.sprintf "Metrics: no metric %s" name)

let get_gauge t name =
  match find t name with
  | Some (Gauge g) -> g.value
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" name)
  | None -> invalid_arg (Printf.sprintf "Metrics: no metric %s" name)

(* Metrics in registration order. *)
let to_list t =
  List.rev_map (fun name -> (name, Hashtbl.find t.tbl name)) t.order

(* --- Export --- *)

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let hist_rows name h =
  [
    (name ^ ".count", "histogram", float_of_int h.hcount);
    (name ^ ".sum", "histogram", hist_sum h);
    (name ^ ".min", "histogram", hist_min h);
    (name ^ ".max", "histogram", hist_max h);
    (name ^ ".p50", "histogram", hist_quantile h 0.5);
    (name ^ ".p95", "histogram", hist_quantile h 0.95);
    (name ^ ".p99", "histogram", hist_quantile h 0.99);
  ]

(* Flat (name, kind, value) view used by both exporters and tests. *)
let rows t =
  List.concat_map
    (fun (name, m) ->
      match m with
      | Counter c -> [ (name, "counter", float_of_int c.count) ]
      | Gauge g -> [ (name, "gauge", g.value) ]
      | Histogram h -> hist_rows name h)
    (to_list t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,kind,value\n";
  List.iter
    (fun (name, kind, v) ->
      Buffer.add_string buf name;
      Buffer.add_char buf ',';
      Buffer.add_string buf kind;
      Buffer.add_char buf ',';
      Buffer.add_string buf (float_repr v);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

(* Parse [to_csv] output back into rows; the round-trip partner used by
   tests and downstream tooling. *)
let of_csv text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> invalid_arg "Metrics.of_csv: empty input"
  | header :: data ->
      if header <> "name,kind,value" then
        invalid_arg "Metrics.of_csv: bad header";
      List.map
        (fun line ->
          match String.split_on_char ',' line with
          | [ name; kind; v ] -> (
              match float_of_string_opt v with
              | Some f -> (name, kind, f)
              | None ->
                  invalid_arg
                    (Printf.sprintf "Metrics.of_csv: bad value %s" v))
          | _ -> invalid_arg (Printf.sprintf "Metrics.of_csv: bad row %s" line))
        data

let to_json t =
  Json.Obj
    (List.map
       (fun (name, m) ->
         match m with
         | Counter c -> (name, Json.Int c.count)
         | Gauge g -> (name, Json.Float g.value)
         | Histogram h ->
             ( name,
               Json.Obj
                 [
                   ("count", Json.Int h.hcount);
                   ("sum", Json.Float (hist_sum h));
                   ("min", Json.Float (hist_min h));
                   ("max", Json.Float (hist_max h));
                   ("p50", Json.Float (hist_quantile h 0.5));
                   ("p95", Json.Float (hist_quantile h 0.95));
                   ("p99", Json.Float (hist_quantile h 0.99));
                 ] ))
       (to_list t))
