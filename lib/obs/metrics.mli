(** Named-metric registry: counters, gauges and histograms that simulator
    components publish into — the source of truth for reports and
    exporters.

    Registration returns the mutable cell, so hot paths update through the
    cell directly ([incr]/[set]/[observe]) without a name lookup. Names
    must be unique per registry; [to_list]/[rows] preserve registration
    order. Histogram bucket counts sit in a Fenwick tree so quantile
    queries are prefix-sum searches. *)

type counter
type gauge
type histogram

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t

val create : unit -> t

(** {1 Registration} — raises [Invalid_argument] on duplicate names. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val default_latency_bounds : float array
(** Power-of-two-ish latency buckets [1 .. 16384] cycles. *)

val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are strictly increasing inclusive upper bounds; values above
    the last bound land in an implicit overflow bucket. *)

(** {1 Updates and reads} *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

val hist_quantile : histogram -> float -> float
(** Quantile estimate: the upper bound of the first bucket whose
    cumulative count reaches [q] of the total; the overflow bucket reports
    the observed max. Empty histograms report [0.] rather than raising.
    Raises [Invalid_argument] unless [0. <= q <= 1.]. *)

(** {1 Snapshots}

    Only histograms mutate during a run (components publish counters at the
    end), so checkpointing dumps and restores individual histogram state. *)

type hist_dump

val hist_dump : histogram -> hist_dump
val hist_restore : histogram -> hist_dump -> unit

(** {1 Lookup} *)

val find : t -> string -> metric option
val mem : t -> string -> bool

val get_counter : t -> string -> int
(** Raises [Invalid_argument] if absent or not a counter. *)

val get_gauge : t -> string -> float
(** Raises [Invalid_argument] if absent or not a gauge. *)

val to_list : t -> (string * metric) list
(** Metrics in registration order. *)

(** {1 Export} *)

val hist_rows : string -> histogram -> (string * string * float) list
(** Flat rows [name.count/.sum/.min/.max/.p50/.p95/.p99] for one
    histogram, kind ["histogram"]. *)

val rows : t -> (string * string * float) list
(** Flat [(name, kind, value)] view used by exporters and tests;
    histograms expand via {!hist_rows}. *)

val to_csv : t -> string
(** {!rows} as CSV with header [name,kind,value]. *)

val of_csv : string -> (string * string * float) list
(** Parse {!to_csv} output back into rows; raises [Invalid_argument] on
    malformed input. *)

val to_json : t -> Json.t
(** One object keyed by metric name; histograms become sub-objects with
    count/sum/min/max/p50/p95/p99. *)
