(** Chrome trace-event exporter.

    Turns a recorded {!Event.t} stream into JSON loadable in
    chrome://tracing or Perfetto, plus a flat CSV/JSON schema for the
    cycle-accounting profiler's stall samples.

    Exporter contract:
    - events are stable-sorted by [cycle], so the emitted [ts] column is
      monotone while same-cycle events keep their emission order;
    - tracks (Chrome "threads") are allocated in first-appearance order
      and described with ["thread_name"] metadata records; everything
      lives in a single process 0;
    - timestamps are simulation cycles (1 cycle = 1 "ns" for display);
    - {!Event.Accel_invoke} renders as a complete ("X") span,
      {!Event.Stall_sample} as a counter ("C") point whose args hold one
      cumulative cycle count per {!Stall.cause}, everything else as an
      instant ("i");
    - all strings pass through {!Json.to_string} escaping, so workload
      and label names may contain quotes, control characters, etc.;
    - [?host_spans] adds the simulator's own {!Span.completed} scopes as
      a second Chrome process (pid 1, one thread per OCaml domain,
      complete "X" events with wall-clock microsecond ts/dur), so host
      time appears on its own track beside the simulated hardware. *)

val to_json : ?host_spans:Span.completed list -> Event.t list -> Json.t
(** Full trace document: [{"traceEvents": [...], "displayTimeUnit": ...}]. *)

val to_string : ?host_spans:Span.completed list -> Event.t list -> string
(** [Json.to_string] of {!to_json}. *)

val write_file : ?host_spans:Span.completed list -> string -> Event.t list -> unit
(** Write {!to_string} to a file (truncating). *)

val stall_rows : Event.t list -> (int * int * string * int) list
(** Flattened stall-attribution samples [(cycle, tile, cause, cycles)],
    sorted by cycle; [cycles] is cumulative since cycle 0. Events other
    than {!Event.Stall_sample} are ignored. *)

val stalls_to_csv : Event.t list -> string
(** {!stall_rows} as CSV with header [cycle,tile,cause,cycles]. *)

val stalls_to_json : Event.t list -> Json.t
(** {!stall_rows} as a JSON list of objects with keys [cycle], [tile],
    [cause], [cycles]. *)
