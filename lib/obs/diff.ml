type value = Num of float | Str of string

type cls = Identical | Close | Drifted | Added | Removed

type entry = {
  key : string;
  a : value option;
  b : value option;
  cls : cls;
  rel : float;
}

let leaf_of = function
  | Json.Int i -> Some (Num (float_of_int i))
  | Json.Float f -> Some (Num f)
  | Json.String s -> Some (Str s)
  | Json.Bool b -> Some (Str (string_of_bool b))
  | Json.Null | Json.List _ | Json.Obj _ -> None

let flatten j =
  let out = ref [] in
  let rec walk prefix j =
    match j with
    | Json.Obj kvs ->
        List.iter
          (fun (k, v) ->
            let key = if prefix = "" then k else prefix ^ "." ^ k in
            walk key v)
          kvs
    | Json.List l ->
        List.iteri (fun i v -> walk (Printf.sprintf "%s.%d" prefix i) v) l
    | _ -> (
        match leaf_of j with
        | Some v -> out := (prefix, v) :: !out
        | None -> ())
  in
  (match j with
  | Json.Obj _ -> walk "" j
  | _ -> invalid_arg "Diff.flatten: expected a JSON object");
  List.rev !out

let is_manifest j =
  match Json.member "manifest_version" j with Some _ -> true | None -> false

let flatten_file path =
  let j = Json.of_string (In_channel.with_open_text path In_channel.input_all) in
  if not (is_manifest j) then flatten j
  else
    (* Identity keys ride along under reserved prefixes so a version or
       digest change shows up in the diff like any other drift; spans and
       timestamps are run-unique noise and stay out. *)
    let prefixed prefix field =
      match Json.member field j with
      | Some (Json.Obj _ as o) ->
          List.map (fun (k, v) -> (prefix ^ "." ^ k, v)) (flatten o)
      | _ -> []
    in
    flatten (Json.member_exn "metrics" j)
    @ prefixed "digest" "digests"
    @ prefixed "version" "versions"
    @ prefixed "host.info" "host"

let is_cycles_key key =
  let suf = "cycles" in
  let lk = String.length key and ls = String.length suf in
  lk >= ls && String.sub key (lk - ls) ls = suf

let rel_delta x y =
  if x = y then 0.0
  else
    let scale = Stdlib.max (Float.abs x) (Float.abs y) in
    if scale <= 0.0 then 0.0 else Float.abs (x -. y) /. scale

let classify ~threshold key a b =
  match (a, b) with
  | None, None -> (Identical, 0.0) (* unreachable: key came from a side *)
  | Some _, None -> (Removed, 0.0)
  | None, Some _ -> (Added, 0.0)
  | Some (Num x), Some (Num y) ->
      let rel = rel_delta x y in
      if x = y then (Identical, 0.0)
      else if (not (is_cycles_key key)) && rel <= threshold then (Close, rel)
      else (Drifted, rel)
  | Some (Str x), Some (Str y) when String.equal x y -> (Identical, 0.0)
  | Some _, Some _ -> (Drifted, 0.0)

let dedup kvs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    kvs

let compare ?(threshold = 0.0) a b =
  let a = dedup a and b = dedup b in
  let tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) b;
  let ta = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) a;
  let keys =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun key ->
      let va = Hashtbl.find_opt ta key and vb = Hashtbl.find_opt tb key in
      let cls, rel = classify ~threshold key va vb in
      { key; a = va; b = vb; cls; rel })
    keys

let cycle_drift entries =
  List.filter
    (fun e -> is_cycles_key e.key && e.cls <> Identical && e.cls <> Close)
    entries

let cls_name = function
  | Identical -> "same"
  | Close -> "close"
  | Drifted -> "DRIFT"
  | Added -> "added"
  | Removed -> "removed"

let value_str = function
  | None -> "-"
  | Some (Num f) ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.6g" f
  | Some (Str s) -> s

let render ?(show_identical = false) entries =
  let buf = Buffer.create 1024 in
  let shown =
    List.filter
      (fun e ->
        show_identical || (e.cls <> Identical && e.cls <> Close))
      entries
  in
  let quiet = List.length entries - List.length shown in
  if shown = [] then Buffer.add_string buf "no differences\n"
  else begin
    let kw =
      List.fold_left (fun w e -> Stdlib.max w (String.length e.key)) 8 shown
    in
    Buffer.add_string buf
      (Printf.sprintf "%-8s %-*s %20s %20s %10s\n" "class" kw "key" "baseline"
         "candidate" "delta");
    List.iter
      (fun e ->
        let delta =
          match (e.a, e.b) with
          | Some (Num _), Some (Num _) when e.cls <> Identical ->
              Printf.sprintf "%+.3f%%" (100.0 *. e.rel)
          | _ -> "-"
        in
        Buffer.add_string buf
          (Printf.sprintf "%-8s %-*s %20s %20s %10s\n" (cls_name e.cls) kw
             e.key (value_str e.a) (value_str e.b) delta))
      shown
  end;
  if quiet > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d key%s identical or within threshold\n" quiet
         (if quiet = 1 then "" else "s"));
  Buffer.contents buf
