(* Closed stall-cause taxonomy for the cycle-accounting profiler.

   Every simulated tile-cycle is attributed to exactly one cause (see
   DESIGN.md "Cycle accounting" for the priority order used when several
   conditions hold at once).  The taxonomy lives in [Mosaic_obs] so the
   exporters ([Trace_export]) can name counter tracks without depending on
   the tile layer; [Mosaic_tile.Profile] stores dense arrays indexed by
   [index]. *)

type cause =
  | Busy (* issued at full width this cycle: not a stall *)
  | Dependency (* RAW: no ready instruction, head still computing *)
  | Structural (* FU class saturated or instruction window full *)
  | Memory (* outstanding load/store at head, or L1 MSHRs full *)
  | Mao (* memory-atomic-ordering constraint blocks issue *)
  | Supply (* interleaver supply/consume: buffer full/empty, debt cap *)
  | Branch_redirect (* control gate: terminator unresolved or mispredict penalty *)
  | Idle (* nothing in flight and nothing fetchable *)
  | Finished (* tile already drained; cycles burned waiting for peers *)

let ncauses = 9

let index = function
  | Busy -> 0
  | Dependency -> 1
  | Structural -> 2
  | Memory -> 3
  | Mao -> 4
  | Supply -> 5
  | Branch_redirect -> 6
  | Idle -> 7
  | Finished -> 8

let of_index = function
  | 0 -> Busy
  | 1 -> Dependency
  | 2 -> Structural
  | 3 -> Memory
  | 4 -> Mao
  | 5 -> Supply
  | 6 -> Branch_redirect
  | 7 -> Idle
  | 8 -> Finished
  | i -> invalid_arg (Printf.sprintf "Stall.of_index: %d" i)

let name = function
  | Busy -> "busy"
  | Dependency -> "dependency"
  | Structural -> "structural"
  | Memory -> "memory"
  | Mao -> "mao"
  | Supply -> "supply"
  | Branch_redirect -> "branch"
  | Idle -> "idle"
  | Finished -> "finished"

let all =
  [| Busy; Dependency; Structural; Memory; Mao; Supply; Branch_redirect;
     Idle; Finished |]

let names = Array.map name all
