(** Host-side span tracer: where does the *simulator's* wall-clock go?

    Scopes ([begin_span]/[end_span] or {!with_span}) record monotonic
    wall-clock duration, nesting depth, the domain that ran them, and the
    GC allocation delta across the scope ([Gc.quick_stat] minor words and
    major collections, both domain-local). The tracer is process-global
    and off by default: a disabled [begin_span] is one atomic load and a
    shared immutable token, so instrumented hot paths cost ~nothing until
    {!set_enabled}[ true].

    Completed spans feed three consumers:
    - {!publish} sums them into a metrics registry as [host.*] gauges;
    - {!Trace_export.to_json}'s [?host_spans] renders them as a separate
      Chrome-trace process beside the simulated-hardware events;
    - manifests embed the raw list ({!to_json}/{!of_json}).

    Enabling also times {!Mosaic_util.Domain_pool} tasks (as
    ["pool.task"] spans) via its task hook. *)

type completed = {
  name : string;
  domain : int;  (** [Domain.self] of the domain that ran the scope *)
  depth : int;  (** nesting depth at entry; 0 = outermost *)
  start_s : float;  (** seconds since the tracer was enabled *)
  dur_s : float;  (** wall-clock duration, clamped to [>= 0.] *)
  minor_words : float;  (** minor-heap words allocated during the scope *)
  major_collections : int;  (** major GC cycles completed during the scope *)
}

val set_enabled : bool -> unit
(** Turning the tracer on resets the epoch and installs the
    {!Mosaic_util.Domain_pool} task hook; turning it off removes the hook.
    Already-open spans complete normally either way. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all completed spans and restart the epoch (keeps enablement). *)

type token
(** Returned by {!begin_span}; passing it to {!end_span} completes the
    scope. Tokens from a disabled tracer are inert. *)

val begin_span : string -> token

val end_span : token -> unit
(** Completing a token twice records the span twice — use {!with_span}
    unless early/multiple exits make the scoped form awkward. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Scoped form; the span completes even if [f] raises. *)

val spans : unit -> completed list
(** Completed spans in completion order (inner scopes precede outer). *)

val total_seconds : string -> float
(** Summed duration of all completed spans with that name. *)

val publish : Metrics.t -> unit
(** Find-or-create a [host.<name>_seconds] gauge per span name (dots in
    span names kept as-is: span ["sample.ff"] → [host.sample.ff_seconds])
    holding the summed duration, plus [host.gc.minor_words] /
    [host.gc.major_collections] / [host.gc.promoted_words] deltas since
    the tracer epoch. Safe to call repeatedly; gauges are overwritten. *)

val gauge_set : Metrics.t -> string -> float -> unit
(** Find-or-create gauge helper shared by the host-telemetry publishers
    (raises [Invalid_argument] if the name exists as a non-gauge). *)

val to_json : completed list -> Json.t
val of_json : Json.t -> completed list
(** Raises {!Json.Parse_error} on shape mismatch. *)
