(** Closed stall-cause taxonomy for the cycle-accounting profiler.

    Every simulated tile-cycle is attributed to exactly one [cause].  The
    classification itself happens in [Mosaic_tile.Core_tile] (see DESIGN.md
    for the priority order); this module only fixes the vocabulary, the
    dense index mapping used by per-tile counter arrays, and the canonical
    names used by exporters and the metrics registry
    ([tile.<i>.stall.<name>] counters, Chrome-trace counter tracks, and the
    profile CSV/JSON schema). *)

type cause =
  | Busy  (** issued at full width this cycle: not a stall *)
  | Dependency  (** RAW: no ready instruction, producer still computing *)
  | Structural  (** FU class saturated or instruction window full *)
  | Memory  (** outstanding load/store at head, or L1 MSHRs full *)
  | Mao  (** memory-atomic-ordering constraint blocks issue *)
  | Supply
      (** interleaver supply/consume stall: send buffer full, recv buffer
          empty, or produce/consume debt at ceiling *)
  | Branch_redirect
      (** control gate closed: terminator unresolved or mispredict penalty *)
  | Idle  (** nothing in flight and nothing fetchable *)
  | Finished  (** tile already drained; cycles burned waiting for peers *)

val ncauses : int
(** Number of causes; dense indices are [0 .. ncauses-1]. *)

val index : cause -> int
(** Dense index of a cause, for counter arrays. *)

val of_index : int -> cause
(** Inverse of [index]. Raises [Invalid_argument] out of range. *)

val name : cause -> string
(** Stable lowercase name used in metrics keys, exports and reports. *)

val all : cause array
(** All causes in index order. *)

val names : string array
(** [Array.map name all]. *)
