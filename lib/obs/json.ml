(* Minimal JSON tree, printer and parser. Enough for the trace/metrics
   exporters and for the tests that re-read exporter output; not a general
   standards-lawyer implementation (no \u escapes beyond pass-through, no
   scientific-notation canonicalization). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* --- Parsing --- *)

exception Parse_error of string

type parser_state = { text : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.text
    && (match st.text.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.text
    && String.sub st.text st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'u' ->
            (* Keep the code point's low byte; sufficient for our ASCII
               escapes. *)
            if st.pos + 4 >= String.length st.text then error st "bad \\u";
            let hex = String.sub st.text (st.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
            | None -> error st "bad \\u");
            st.pos <- st.pos + 4
        | _ -> error st "bad escape");
        st.pos <- st.pos + 1;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.text && is_num_char st.text.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.text start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '"' -> String (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then error st "trailing garbage";
  v

(* --- Accessors --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "missing key %s" key))

let to_list_exn = function
  | List xs -> xs
  | _ -> raise (Parse_error "expected array")

let to_number_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected number")

let to_string_exn = function
  | String s -> s
  | _ -> raise (Parse_error "expected string")
