(* Global span tracer. Disabled-path cost is one [Atomic.get] plus a
   shared [Off] token; the enabled path reads the clock and [Gc.quick_stat]
   twice per scope, which is microseconds — negligible against the
   second-scale phases being measured.

   Per-domain nesting depth lives in DLS so concurrent shard/pool domains
   nest independently; completed spans funnel into one mutex-protected
   list (spans complete at phase granularity, thousands per run at most,
   so the lock is never contended in any hot path). *)

type completed = {
  name : string;
  domain : int;
  depth : int;
  start_s : float;
  dur_s : float;
  minor_words : float;
  major_collections : int;
}

type open_span = {
  o_name : string;
  o_domain : int;
  o_depth : int;
  o_t0 : float;
  o_minor : float;
  o_major : int;
}

type token = Off | On of open_span

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0

(* GC stats at the epoch, for whole-process deltas in [publish]. *)
let epoch_minor = Atomic.make 0.0
let epoch_promoted = Atomic.make 0.0
let epoch_major = Atomic.make 0

let lock = Mutex.create ()
let completed_rev : completed list ref = ref []
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let enabled () = Atomic.get enabled_flag
let now () = Unix.gettimeofday ()

let mark_epoch () =
  let g = Gc.quick_stat () in
  Atomic.set epoch (now ());
  Atomic.set epoch_minor g.Gc.minor_words;
  Atomic.set epoch_promoted g.Gc.promoted_words;
  Atomic.set epoch_major g.Gc.major_collections

let begin_span name =
  if not (Atomic.get enabled_flag) then Off
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    let g = Gc.quick_stat () in
    On
      {
        o_name = name;
        o_domain = (Domain.self () :> int);
        o_depth = d;
        o_t0 = now ();
        o_minor = g.Gc.minor_words;
        o_major = g.Gc.major_collections;
      }
  end

let end_span = function
  | Off -> ()
  | On o ->
      let t1 = now () in
      let g = Gc.quick_stat () in
      let depth = Domain.DLS.get depth_key in
      if !depth > 0 then decr depth;
      let c =
        {
          name = o.o_name;
          domain = o.o_domain;
          depth = o.o_depth;
          start_s = Stdlib.max 0.0 (o.o_t0 -. Atomic.get epoch);
          dur_s = Stdlib.max 0.0 (t1 -. o.o_t0);
          minor_words = Stdlib.max 0.0 (g.Gc.minor_words -. o.o_minor);
          major_collections =
            Stdlib.max 0 (g.Gc.major_collections - o.o_major);
        }
      in
      Mutex.lock lock;
      completed_rev := c :: !completed_rev;
      Mutex.unlock lock

let with_span name f =
  let tok = begin_span name in
  match f () with
  | v ->
      end_span tok;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      end_span tok;
      Printexc.raise_with_backtrace e bt

let pool_hook () =
  let tok = begin_span "pool.task" in
  fun () -> end_span tok

let set_enabled b =
  Atomic.set enabled_flag b;
  if b then begin
    mark_epoch ();
    Mosaic_util.Domain_pool.set_task_hook (Some pool_hook)
  end
  else Mosaic_util.Domain_pool.set_task_hook None

let reset () =
  Mutex.lock lock;
  completed_rev := [];
  Mutex.unlock lock;
  mark_epoch ()

let spans () =
  Mutex.lock lock;
  let l = List.rev !completed_rev in
  Mutex.unlock lock;
  l

let total_seconds name =
  List.fold_left
    (fun acc c -> if String.equal c.name name then acc +. c.dur_s else acc)
    0.0 (spans ())

let gauge_set reg name v =
  let g =
    match Metrics.find reg name with
    | Some (Metrics.Gauge g) -> g
    | Some _ -> invalid_arg (Printf.sprintf "Span.gauge_set: %s not a gauge" name)
    | None -> Metrics.gauge reg name
  in
  Metrics.set g v

let publish reg =
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun c ->
      (match Hashtbl.find_opt totals c.name with
      | None ->
          order := c.name :: !order;
          Hashtbl.replace totals c.name c.dur_s
      | Some s -> Hashtbl.replace totals c.name (s +. c.dur_s)))
    (spans ());
  List.iter
    (fun name ->
      gauge_set reg
        (Printf.sprintf "host.%s_seconds" name)
        (Hashtbl.find totals name))
    (List.rev !order);
  let g = Gc.quick_stat () in
  gauge_set reg "host.gc.minor_words"
    (Stdlib.max 0.0 (g.Gc.minor_words -. Atomic.get epoch_minor));
  gauge_set reg "host.gc.promoted_words"
    (Stdlib.max 0.0 (g.Gc.promoted_words -. Atomic.get epoch_promoted));
  gauge_set reg "host.gc.major_collections"
    (float_of_int
       (Stdlib.max 0 (g.Gc.major_collections - Atomic.get epoch_major)))

let to_json l =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("name", Json.String c.name);
             ("domain", Json.Int c.domain);
             ("depth", Json.Int c.depth);
             ("start_s", Json.Float c.start_s);
             ("dur_s", Json.Float c.dur_s);
             ("minor_words", Json.Float c.minor_words);
             ("major_collections", Json.Int c.major_collections);
           ])
       l)

let of_json j =
  List.map
    (fun o ->
      {
        name = Json.to_string_exn (Json.member_exn "name" o);
        domain = int_of_float (Json.to_number_exn (Json.member_exn "domain" o));
        depth = int_of_float (Json.to_number_exn (Json.member_exn "depth" o));
        start_s = Json.to_number_exn (Json.member_exn "start_s" o);
        dur_s = Json.to_number_exn (Json.member_exn "dur_s" o);
        minor_words = Json.to_number_exn (Json.member_exn "minor_words" o);
        major_collections =
          int_of_float
            (Json.to_number_exn (Json.member_exn "major_collections" o));
      })
    (Json.to_list_exn j)
