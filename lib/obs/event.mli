(** Typed, timestamped simulation events.

    Components emit these into a {!Sink.t}; exporters ({!Trace_export})
    turn the recorded stream into Chrome trace-event JSON or CSV.
    Payloads are plain immutable data so event streams can be compared
    structurally in determinism tests.

    Contract for emitters: [cycle] is the simulated cycle at emission
    time and must be non-decreasing per component (the exporter re-sorts
    with a stable sort, so intra-cycle emission order is preserved). *)

type cache_outcome = Hit | Miss | Evict | Writeback

type payload =
  | Instr_issue of { tile : int; seq : int; cls : string }
      (** A tile issued dynamic instruction [seq] of opcode class [cls]. *)
  | Instr_retire of { tile : int; seq : int }
      (** Dynamic instruction [seq] completed on [tile]. *)
  | Cache_access of { cache : string; outcome : cache_outcome }
      (** Access to cache [cache] (e.g. ["l1.0"], ["llc"]). *)
  | Dram_row_activate of { bank : int; row : int }
  | Interleaver_handoff of { src : int; dst : int; chan : int }
  | Noc_hop of { src : int; dst : int; hops : int }
  | Accel_invoke of { tile : int; kind : string; cycles : int }
      (** Accelerator invocation with a known duration in [cycles]. *)
  | Stall_sample of { tile : int; counts : int array }
      (** Cycle-accounting profiler sample: cumulative per-cause stall
          counters for [tile], indexed by {!Stall.index} (length
          {!Stall.ncauses}).  Counts are cumulative since cycle 0, so for a
          fixed tile each cause is non-negative and monotone in [cycle] —
          exporters render them as Chrome counter ("C") tracks. *)

type t = { cycle : int; payload : payload }

val name : t -> string
(** Short human-readable event name, used as the Chrome trace ["name"]. *)

val track : t -> string
(** Track (Chrome trace thread) the event belongs to: one per tile
    ("tile.N"), one per cache level, and one each for DRAM, the
    interleaver, the NoC and accelerators. *)
