(* Typed, timestamped simulation events. Components emit these into a
   [Sink.t]; exporters turn the recorded stream into Chrome trace-event
   JSON (see Trace_export). Payloads are plain immutable data so event
   streams can be compared structurally for determinism tests. *)

type cache_outcome = Hit | Miss | Evict | Writeback

type payload =
  | Instr_issue of { tile : int; seq : int; cls : string }
  | Instr_retire of { tile : int; seq : int }
  | Cache_access of { cache : string; outcome : cache_outcome }
  | Dram_row_activate of { bank : int; row : int }
  | Interleaver_handoff of { src : int; dst : int; chan : int }
  | Noc_hop of { src : int; dst : int; hops : int }
  | Accel_invoke of { tile : int; kind : string; cycles : int }
  | Stall_sample of { tile : int; counts : int array }

type t = { cycle : int; payload : payload }

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Evict -> "evict"
  | Writeback -> "writeback"

(* Short human-readable event name, used as the Chrome trace "name". *)
let name e =
  match e.payload with
  | Instr_issue _ -> "issue"
  | Instr_retire _ -> "retire"
  | Cache_access { outcome; _ } -> outcome_to_string outcome
  | Dram_row_activate _ -> "row_activate"
  | Interleaver_handoff _ -> "handoff"
  | Noc_hop _ -> "hop"
  | Accel_invoke { kind; _ } -> kind
  | Stall_sample _ -> "stalls"

(* Track (Chrome trace thread) the event belongs to: one per tile, one per
   cache level, and one each for DRAM, the interleaver and the NoC. *)
let track e =
  match e.payload with
  | Instr_issue { tile; _ } | Instr_retire { tile; _ } | Stall_sample { tile; _ }
    ->
      Printf.sprintf "tile.%d" tile
  | Cache_access { cache; _ } -> (
      (* Per-tile caches are named "l1.0", "l2.3", ...; the track is the
         level alone so all tiles' L1 events share one row. *)
      match String.index_opt cache '.' with
      | Some i -> String.sub cache 0 i
      | None -> cache)
  | Dram_row_activate _ -> "dram"
  | Interleaver_handoff _ -> "interleaver"
  | Noc_hop _ -> "noc"
  | Accel_invoke _ -> "accel"
