type t = {
  version : int;
  kind : string;
  name : string;
  created : string;
  host : (string * Json.t) list;
  versions : (string * string) list;
  digests : (string * string) list;
  metrics : Json.t;
  spans : Span.completed list;
}

let manifest_version = 1

let git_rev () =
  match Sys.getenv_opt "MOSAICSIM_GIT_REV" with
  | Some r when r <> "" -> Some r
  | _ -> (
      (* Best effort only: no git, not a checkout, or a sandbox that
         forbids subprocesses must all degrade to [None]. *)
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> Some line
        | _ -> None
      with _ -> None)

let timestamp () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let host_info () =
  [
    ("cores", Json.Int (Mosaic_util.Domain_pool.available_cores ()));
    ("ocaml", Json.String Sys.ocaml_version);
    ("os_type", Json.String Sys.os_type);
    ("word_size", Json.Int Sys.word_size);
  ]
  @ match git_rev () with Some r -> [ ("git_rev", Json.String r) ] | None -> []

let make ~kind ~name ?(versions = []) ?(digests = []) ?spans ~metrics () =
  {
    version = manifest_version;
    kind;
    name;
    created = timestamp ();
    host = host_info ();
    versions;
    digests;
    metrics = Metrics.to_json metrics;
    spans = (match spans with Some s -> s | None -> Span.spans ());
  }

let strings_obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)

let to_json m =
  Json.Obj
    [
      ("manifest_version", Json.Int m.version);
      ("kind", Json.String m.kind);
      ("name", Json.String m.name);
      ("created", Json.String m.created);
      ("host", Json.Obj m.host);
      ("versions", strings_obj m.versions);
      ("digests", strings_obj m.digests);
      ("metrics", m.metrics);
      ("spans", Span.to_json m.spans);
    ]

let strings_of_obj field j =
  match Json.member_exn field j with
  | Json.Obj kvs -> List.map (fun (k, v) -> (k, Json.to_string_exn v)) kvs
  | _ -> raise (Json.Parse_error (field ^ ": expected object"))

let of_json j =
  let version =
    int_of_float (Json.to_number_exn (Json.member_exn "manifest_version" j))
  in
  if version <> manifest_version then
    raise
      (Json.Parse_error
         (Printf.sprintf "unsupported manifest_version %d (expected %d)"
            version manifest_version));
  let host =
    match Json.member_exn "host" j with
    | Json.Obj kvs -> kvs
    | _ -> raise (Json.Parse_error "host: expected object")
  in
  {
    version;
    kind = Json.to_string_exn (Json.member_exn "kind" j);
    name = Json.to_string_exn (Json.member_exn "name" j);
    created = Json.to_string_exn (Json.member_exn "created" j);
    host;
    versions = strings_of_obj "versions" j;
    digests = strings_of_obj "digests" j;
    metrics = Json.member_exn "metrics" j;
    spans = Span.of_json (Json.member_exn "spans" j);
  }

let write path m =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json m));
      Out_channel.output_char oc '\n')

let load path = of_json (Json.of_string (In_channel.with_open_text path In_channel.input_all))
