(** Opt-in live progress heartbeat for long simulations.

    A rate-limited line writer (default: stderr, one line per
    [interval_s]) reporting simulated cycle, instructions retired, MIPS
    since start, percent complete and an ETA when the trace's total
    dynamic instruction count is known. {!tick} is designed to sit on a
    sampled hot path: callers gate it with a cheap counter mask and the
    tick itself is one clock read when the interval has not elapsed.

    Progress is read-only over simulator state — it never changes
    simulated cycles. *)

type t

val create :
  ?interval_s:float ->
  ?print:(string -> unit) ->
  label:string ->
  total_instrs:int option ->
  unit ->
  t
(** [interval_s] defaults to 1 s; [print] defaults to a
    line-to-stderr-and-flush writer (tests inject a buffer). *)

val tick : t -> cycle:int -> instrs:int -> unit
(** Report state; prints at most once per interval. *)

val finish : t -> cycle:int -> instrs:int -> unit
(** Print a final summary line — only if at least one tick printed, so
    short runs stay silent. *)

val lines_printed : t -> int
