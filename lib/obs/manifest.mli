(** Self-describing run artifacts.

    A manifest captures everything needed to interpret (and later
    compare) one run/bench/sweep: what was run ([kind]/[name]), on what
    ([host] info, format [versions], config/trace [digests]), what came
    out (the full metrics registry as JSON) and where the wall-clock went
    (host spans). It is the unit a future [mosaicsim serve] daemon
    returns per job, and one of the two inputs {!Diff} understands.

    The JSON layout is versioned ({!manifest_version}, stored under
    ["manifest_version"]) so [diff] can recognize manifests vs raw metric
    dumps like [BENCH_speed.json]. *)

type t = {
  version : int;
  kind : string;  (** ["run"] / ["bench"] / ["sweep"] *)
  name : string;  (** workload or suite label *)
  created : string;  (** local time, [YYYY-MM-DDThh:mm:ss] *)
  host : (string * Json.t) list;
  versions : (string * string) list;
  digests : (string * string) list;
  metrics : Json.t;  (** {!Metrics.to_json} object *)
  spans : Span.completed list;
}

val manifest_version : int

val host_info : unit -> (string * Json.t) list
(** [cores], [ocaml], [os_type], [word_size], and [git_rev] when known. *)

val git_rev : unit -> string option
(** [MOSAICSIM_GIT_REV] if set, else a best-effort
    [git rev-parse --short HEAD]; [None] when neither works. *)

val timestamp : unit -> string

val make :
  kind:string ->
  name:string ->
  ?versions:(string * string) list ->
  ?digests:(string * string) list ->
  ?spans:Span.completed list ->
  metrics:Metrics.t ->
  unit ->
  t
(** Snapshot [metrics] and fill in host info/timestamp now. [spans]
    defaults to {!Span.spans}[ ()]. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** Raises {!Json.Parse_error} on shape mismatch or unknown version. *)

val write : string -> t -> unit
val load : string -> t
