(** Graph-based tile model (§II-A, §III).

    Simulates one tile executing its kernel's dynamic instruction graph:
    DBBs are launched along the control-flow trace, nodes issue when their
    data dependencies resolve subject to microarchitectural limits (issue
    width, instruction window, MAO/LSQ, functional units, live-DBB caps),
    memory operations query the shared hierarchy, and sends/receives go
    through the Interleaver callbacks. Covers in-order cores, out-of-order
    cores and pre-RTL accelerator tiles purely through {!Tile_config}. *)

(** Result handed back by an accelerator model invocation (§IV-A). *)
type accel_result = { finish_cycle : int; energy_pj : float }

(** Callbacks provided by the Interleaver / SoC. [send] returns [false]
    when the destination buffer is full (the send retries); [try_recv]
    returns the completion cycle once a matching message is available. *)
type comm = {
  send :
    src:int -> dst:int -> chan:int -> cycle:int -> available:int -> bool;
      (** [available] is when the payload exists ([cycle] for plain sends;
          memory completion for terminal loads) *)
  try_recv : tile:int -> chan:int -> cycle:int -> int option;
  take_or_owe : tile:int -> chan:int -> bool;
      (** consume-or-commit for store-value-buffer drains *)
  accel :
    tile:int ->
    kind:string ->
    params:Mosaic_ir.Value.t array ->
    cycle:int ->
    accel_result;
  mem_access : tile:int -> cycle:int -> addr:int -> is_write:bool -> int;
      (** demand access into the memory hierarchy; routed through the SoC
          so the sharded scheduler can order cross-tile memory traffic
          (plain runs pass straight through to {!Mosaic_memory.Hierarchy.access}) *)
}

type stats = {
  mutable completed_instrs : int;
  mutable finish_cycle : int;  (** -1 while running *)
  mutable energy_pj : float;
  mutable dbbs_launched : int;
  mutable mem_accesses : int;
  issued_by_class : int array;  (** indexed by [Tile_config.class_index] *)
  branch : Branch.stats;
}

type t

(** An enabled [sink] receives [Instr_issue]/[Instr_retire] events; a
    [lat_hist] records the completion latency of every memory operation the
    tile issues; an enabled [profile] makes {!step} attribute every
    tile-cycle to a {!Mosaic_obs.Stall.cause} (see {!Profile}). All default
    to off and cost nothing when absent. *)
val create :
  ?sink:Mosaic_obs.Sink.t ->
  ?lat_hist:Mosaic_obs.Metrics.histogram ->
  ?profile:Profile.t ->
  id:int ->
  config:Tile_config.t ->
  func:Mosaic_ir.Func.t ->
  ddg:Mosaic_compiler.Ddg.t ->
  tile_trace:Mosaic_trace.Trace.tile_trace ->
  hierarchy:Mosaic_memory.Hierarchy.t ->
  comm:comm ->
  unit ->
  t

val id : t -> int
val config : t -> Tile_config.t

(** Advance the tile through global cycle [cycle]. Honors the tile's clock
    divider internally. Returns whether the tile made progress: processed a
    completion event, released a MAO slot, launched a DBB, issued a node,
    or transitioned to finished. The SoC scheduler uses this to detect
    globally quiescent cycles it may skip over. *)
val step : t -> cycle:int -> bool

(** [next_event_cycle t ~cycle] is the earliest cycle after [cycle] at
    which the tile's state can change by time alone: the head of its
    completion-event or MAO-release queues, the end of a branch
    misprediction penalty, an L1 MSHR slot freeing, or the next clock edge
    when work is pending but [cycle] is unaligned with the tile's clock
    divider. [None] means the tile is either finished or blocked solely on
    another component's progress. Only meaningful on cycles where {!step}
    reported no progress for any tile; the scheduler jumps to the minimum
    across components. *)
val next_event_cycle : t -> cycle:int -> int option

val finished : t -> bool
val stats : t -> stats

val profile : t -> Profile.t
(** The cycle-accounting store passed at creation ([Profile.null] when
    profiling is off). *)

(** MAO issue-rejection count (ordering or capacity), for reports. *)
val mao_stalls : t -> int

(** Instructions per cycle; meaningful once finished. *)
val ipc : t -> float

(** {1 Fast-forward}

    Hooks for the sampling driver: drain the pipeline with launching
    disabled, replay trace blocks functionally against {!cursor}, then
    commit the skipped work. *)

(** Enable/disable DBB launching; disabled while draining to a quiescent
    point. Always re-enabled by [restore]. *)
val set_launch_enabled : t -> bool -> unit

(** No in-flight nodes, completion events, or deferred MAO releases — the
    pipeline state a functional skip can start from. *)
val quiescent : t -> bool

(** The tile's trace cursor, advanced directly by the functional
    executor. *)
val cursor : t -> Mosaic_trace.Trace.Cursor.cursor

(** Whether the control-path trace has been fully consumed. *)
val trace_done : t -> bool

(** Train the dynamic branch predictor on a fast-forwarded terminator
    (counters and history move; nothing is counted as a prediction). *)
val ff_observe_branch : t -> Mosaic_ir.Instr.t -> actual:int -> unit

(** Absorb functionally executed work into the architectural counters
    ([by_class] is indexed like [issued_by_class]; non-accelerator energy
    is derived from it) and drop cross-boundary register/control
    dependencies. *)
val ff_commit :
  t ->
  instrs:int ->
  dbbs:int ->
  mem_accesses:int ->
  by_class:int array ->
  accel_energy_pj:float ->
  unit

(** {1 Snapshots} — the full timing state of the tile: the dynamic node
    graph keyed by sequence number, scheduler queues, MAO, predictor,
    profile and counters. The static program is rebuilt from the workload
    on restore, never serialized. [restore] raises [Invalid_argument] when
    the dump does not match the tile's program or configuration shape. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
