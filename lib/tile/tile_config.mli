(** Microarchitectural resource parameters of a tile (§III-A) and
    per-instruction costs (§III-B).

    The same graph-based model covers in-order cores, out-of-order cores and
    pre-RTL accelerator tiles; only these knobs change. *)

type t = {
  name : string;
  issue_width : int;  (** superscalar width W *)
  window_size : int;  (** instruction window / ROB slots *)
  lsq_size : int;  (** MAO capacity *)
  in_order : bool;  (** issue strictly in program order *)
  fu_limits : (Mosaic_ir.Op.op_class * int) list;
      (** functional units per class; unlisted classes are unlimited *)
  latencies : (Mosaic_ir.Op.op_class * int) list;
      (** fixed latencies; unlisted classes use defaults *)
  energies_pj : (Mosaic_ir.Op.op_class * float) list;
      (** per-instruction energy; unlisted classes use defaults *)
  live_dbb_limit : int option;
      (** max concurrent DBBs per static basic block (accelerator loop
          replication knob); [None] = unlimited *)
  max_live_dbbs : int;  (** global fetch run-ahead bound *)
  branch : Branch.policy;
  perfect_alias : bool;  (** perfect memory-alias speculation *)
  clock_divider : int;  (** 1 = full speed; 2 = half the global clock *)
  atomic_extra_latency : int;
  comm_latency : int;  (** send/recv local pipeline latency *)
  fetch_per_cycle : int;  (** DBB launches allowed per cycle *)
  area_mm2 : float;  (** for area-equivalent comparisons (McPAT, Table II) *)
  static_power_w : float;
      (** leakage + clock power while the tile is active; tiles are treated
          as clock-gated while an accelerator they invoked runs *)
}

(** Fixed latency of an opcode class under this configuration. *)
val latency : t -> Mosaic_ir.Op.op_class -> int

(** Energy (pJ) charged when an instruction of this class completes. *)
val energy_pj : t -> Mosaic_ir.Op.op_class -> float

(** FU count for a class; [max_int] when unlimited. *)
val fu_limit : t -> Mosaic_ir.Op.op_class -> int

(** Stable dense index of an opcode class (for stats arrays). *)
val class_index : Mosaic_ir.Op.op_class -> int

val nclasses : int

(** Dense per-class cost tables indexed by [class_index]; compiled from
    the association lists once so hot paths avoid [List.assoc_opt]. *)
val latency_table : t -> int array

val energy_table : t -> float array
val fu_limit_table : t -> int array

(** Default latency/energy tables (22 nm-flavoured). *)
val default_latencies : (Mosaic_ir.Op.op_class * int) list

val default_energies_pj : (Mosaic_ir.Op.op_class * float) list

(** A 4-wide out-of-order core (Table II). *)
val out_of_order : t

(** A single-issue in-order core (Table II). *)
val in_order : t

(** A pre-RTL accelerator tile (§IV): relaxed window, configurable loop
    replication. *)
val pre_rtl_accelerator : ?live_dbb_limit:int -> ?fus:int -> unit -> t
