(** Dynamic branch predictors — the paper's stated future work ("future
    work will support more realistic dynamic branch predictors"), provided
    here as additional speculation policies.

    Trace-driven operation: at each DBB launch the tile asks for a
    prediction for the previous terminator and immediately trains the
    predictor with the actual next block from the trace. Two families:

    - [Two_bit]: per-branch 2-bit saturating counters (taken/not-taken),
      indexed by instruction id.
    - [Gshare]: global-history XOR branch-id indexed 2-bit counters. *)

type kind = Two_bit | Gshare of { history_bits : int }

type t

val create : ?table_bits:int -> kind -> t

(** [predict t ~branch_id term] is the predicted successor block id, or
    [None] for returns. Unconditional branches predict their target. *)
val predict : t -> branch_id:int -> Mosaic_ir.Instr.t -> int option

(** [train t ~branch_id term ~actual] updates counters and history with the
    resolved outcome. *)
val train : t -> branch_id:int -> Mosaic_ir.Instr.t -> actual:int -> unit

(** Accuracy so far: (predictions, mispredictions). *)
val stats : t -> int * int

(** [observe t ~branch_id term ~actual] trains counters/history on a
    fast-forwarded branch without counting it as a prediction. *)
val observe : t -> branch_id:int -> Mosaic_ir.Instr.t -> actual:int -> unit

(** {1 Snapshots} — counter table, history and accuracy counts. [restore]
    raises [Invalid_argument] when table sizes differ (config mismatch). *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
