type policy =
  | No_speculation
  | Static of { penalty : int }
  | Dynamic of { kind : Predictor.kind; penalty : int }
  | Perfect

let penalty = function
  | No_speculation | Perfect -> 0
  | Static { penalty } | Dynamic { penalty; _ } -> penalty

let predict ~policy ~bid (term : Mosaic_ir.Instr.t) =
  match policy with
  | No_speculation -> None
  | Perfect -> None (* perfect prediction never needs a concrete guess *)
  | Dynamic _ -> None (* handled by the tile's stateful predictor *)
  | Static _ -> (
      match term.Mosaic_ir.Instr.op with
      | Mosaic_ir.Op.Br target -> Some target
      | Mosaic_ir.Op.Cond_br (taken, not_taken) ->
          (* Back edges are loops: predict them. Otherwise predict the
             taken target — the front-end places loop bodies and likely
             paths there (Ball–Larus-style heuristic). *)
          if not_taken <= bid && taken > bid then Some not_taken
          else Some taken
      | _ -> None)

(* [predict] without the option: -1 for "no guess". Block ids are
   non-negative. The launch gate queries this every attempt, so the [Some]
   per call adds up. *)
let predict_id ~policy ~bid (term : Mosaic_ir.Instr.t) =
  match policy with
  | No_speculation | Perfect | Dynamic _ -> -1
  | Static _ -> (
      match term.Mosaic_ir.Instr.op with
      | Mosaic_ir.Op.Br target -> target
      | Mosaic_ir.Op.Cond_br (taken, not_taken) ->
          if not_taken <= bid && taken > bid then not_taken else taken
      | _ -> -1)

type stats = { mutable predictions : int; mutable mispredictions : int }

let fresh_stats () = { predictions = 0; mispredictions = 0 }
