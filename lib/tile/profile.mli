(** Per-tile cycle-accounting store for the stall profiler.

    [Core_tile.step] attributes every simulated tile-cycle to exactly one
    {!Mosaic_obs.Stall.cause} (see DESIGN.md for the priority order) and
    records it here, allocation-free, with per-basic-block and per-static-
    instruction roll-ups. A disabled profile ({!null}) makes every
    operation a no-op so the unprofiled path keeps its speed.

    Invariant (tested, and enforced in CI): after a run,
    [total p = Soc result cycles] for every tile, with and without cycle
    skipping — the scheduler replays the frozen attribution over
    fast-forwarded quiescent stretches via {!book_repeat}. *)

module Stall = Mosaic_obs.Stall

type t = {
  enabled : bool;
  label : string;  (** kernel name, for hot-spot reports *)
  causes : int array;  (** cycles per cause, length [Stall.ncauses] *)
  by_bb : int array;  (** [nblocks * ncauses] roll-up *)
  by_instr : int array;  (** [ninstrs * ncauses] roll-up *)
  nblocks : int;
  ninstrs : int;
  mutable fail_cause : int;  (** first blocked candidate this cycle; -1 none *)
  mutable fail_iid : int;
  mutable fail_bid : int;
  mutable last_cause : int;  (** frozen attribution for replay *)
  mutable last_iid : int;
  mutable last_bid : int;
}
(** Exposed for the tile's hot path ([enabled]/[fail_cause] field loads);
    treat as read-only outside [lib/tile] and [lib/core]. *)

val null : t
(** Shared disabled profile: never records. *)

val create : label:string -> nblocks:int -> ninstrs:int -> t

val enabled : t -> bool
val label : t -> string

(** {1 Recording} (driven by [Core_tile.step]) *)

val reset_scan : t -> unit
(** Clear the per-cycle first-blocked-candidate note. *)

val note_fail : t -> cause:Stall.cause -> iid:int -> bid:int -> unit
(** Record an issue-scan failure; the first note per cycle wins (the scan
    visits candidates in seq order, so that is the oldest blocked
    instruction). *)

val book : t -> cause:Stall.cause -> iid:int -> bid:int -> unit
(** Attribute one cycle; [iid]/[bid] may be [-1] (totals only, no
    roll-up row). Also freezes the attribution for {!book_repeat}. *)

val book_cause : t -> Stall.cause -> unit
(** [book] with no culprit. *)

val book_fail : t -> bool
(** Book the noted scan failure if any; false when none was recorded. *)

val book_repeat : t -> int -> unit
(** Replay the frozen attribution for [n] more cycles (fast-forwarded
    quiescent stretches). *)

val book_last : t -> unit
(** [book_repeat t 1]: sub-clock-edge cycles of divided tiles. *)

(** {1 Read-out} *)

val count : t -> Stall.cause -> int
val counts : t -> int array
(** Fresh copy, length [Stall.ncauses], zeros when disabled. *)

val total : t -> int
(** Sum over causes = attributed cycles. *)

val bb_count : t -> bid:int -> Stall.cause -> int
val instr_count : t -> iid:int -> Stall.cause -> int
val nblocks : t -> int
val ninstrs : t -> int

(** {1 Snapshots} — counters plus the scratch/frozen attribution. The
    [null] profile dumps an empty image and restores as a no-op. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
