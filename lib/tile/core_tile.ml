open Mosaic_ir
module Pqueue = Mosaic_util.Pqueue
module Trace = Mosaic_trace.Trace
module Ddg = Mosaic_compiler.Ddg
module Hierarchy = Mosaic_memory.Hierarchy

type accel_result = { finish_cycle : int; energy_pj : float }

type comm = {
  send :
    src:int -> dst:int -> chan:int -> cycle:int -> available:int -> bool;
  try_recv : tile:int -> chan:int -> cycle:int -> int option;
  take_or_owe : tile:int -> chan:int -> bool;
  accel :
    tile:int -> kind:string -> params:Value.t array -> cycle:int ->
    accel_result;
}

type stats = {
  mutable completed_instrs : int;
  mutable finish_cycle : int;
  mutable energy_pj : float;
  mutable dbbs_launched : int;
  mutable mem_accesses : int;
  issued_by_class : int array;
  branch : Branch.stats;
}

type node_state = Waiting | Ready | Issued | Completed

type node = {
  seq : int;
  instr : Instr.t;
  dbb : dbb;
  mutable parents_left : int;
  mutable state : node_state;
  mutable dependents : node list;
  mutable addr : int;  (** -1 when not a memory op *)
  mutable accel_params : Value.t array;
  mutable send_dst : int;  (** destination tile of a send, from the trace *)
  mutable complete_cycle : int;
}

and dbb = { dbb_seq : int; dbb_bid : int; mutable incomplete : int }

type t = {
  id : int;
  cfg : Tile_config.t;
  func : Func.t;
  ddg : Ddg.t;
  cursor : Trace.Cursor.cursor;
  hier : Hierarchy.t;
  comm : comm;
  ready : node Pqueue.t;  (** priority = seq *)
  events : node Pqueue.t;  (** priority = completion cycle *)
  inflight : node Queue.t;  (** creation order; completed prefix popped *)
  order : node Queue.t;  (** unissued nodes in program order (in-order) *)
  mao : Mao.t;
  mao_release : int Pqueue.t;
      (** deferred LSQ frees for fire-and-forget memory ops: the core
          retires them immediately but the entry pins the LSQ until the
          access completes in memory *)
  last_writer : node option array;
  fu_busy : int array;
  mutable next_seq : int;
  mutable live_dbbs : int;
  live_per_bb : int array;
  mutable last_term : node option;
  predictor : Predictor.t option;
  mutable pending_mispredict : bool;
  mutable trace_done : bool;
  mutable done_ : bool;
  stats : stats;
  sink : Mosaic_obs.Sink.t;
  lat_hist : Mosaic_obs.Metrics.histogram option;
      (** live memory-completion-latency histogram, when observability is on *)
}

let fresh_stats () =
  {
    completed_instrs = 0;
    finish_cycle = -1;
    energy_pj = 0.0;
    dbbs_launched = 0;
    mem_accesses = 0;
    issued_by_class = Array.make Tile_config.nclasses 0;
    branch = Branch.fresh_stats ();
  }

let create ?(sink = Mosaic_obs.Sink.null) ?lat_hist ~id ~config ~func ~ddg
    ~tile_trace ~hierarchy ~comm () =
  if ddg.Ddg.func != func then
    invalid_arg "Core_tile.create: DDG built for a different function";
  {
    id;
    cfg = config;
    func;
    ddg;
    cursor = Trace.Cursor.create tile_trace;
    hier = hierarchy;
    comm;
    ready = Pqueue.create ();
    events = Pqueue.create ();
    inflight = Queue.create ();
    order = Queue.create ();
    mao =
      Mao.create ~capacity:config.Tile_config.lsq_size
        ~perfect_alias:config.Tile_config.perfect_alias;
    mao_release = Pqueue.create ();
    last_writer = Array.make (Stdlib.max func.Func.nregs 1) None;
    fu_busy = Array.make Tile_config.nclasses 0;
    next_seq = 0;
    live_dbbs = 0;
    live_per_bb = Array.make (Array.length func.Func.blocks) 0;
    last_term = None;
    predictor =
      (match config.Tile_config.branch with
      | Branch.Dynamic { kind; _ } -> Some (Predictor.create kind)
      | _ -> None);
    pending_mispredict = false;
    trace_done = false;
    done_ = false;
    stats = fresh_stats ();
    sink;
    lat_hist;
  }

let id t = t.id
let config t = t.cfg
let stats t = t.stats
let finished t = t.done_
let mao_stalls t = Mao.stalls t.mao

let ipc t =
  if t.stats.finish_cycle <= 0 then 0.0
  else float_of_int t.stats.completed_instrs /. float_of_int t.stats.finish_cycle

let window_start t =
  match Queue.peek_opt t.inflight with
  | Some n -> n.seq
  | None -> t.next_seq

let is_mem_node n = Op.is_mem n.instr.Instr.op

let mark_ready t n =
  n.state <- Ready;
  if is_mem_node n then Mao.resolve t.mao ~seq:n.seq;
  if not t.cfg.Tile_config.in_order then Pqueue.add t.ready ~prio:n.seq n

(* --- Completion --- *)

let complete_node t n ~cycle =
  n.state <- Completed;
  n.complete_cycle <- cycle;
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Instr_retire { tile = t.id; seq = n.seq });
  let cls = Op.classify n.instr.Instr.op in
  t.stats.completed_instrs <- t.stats.completed_instrs + 1;
  t.stats.energy_pj <- t.stats.energy_pj +. Tile_config.energy_pj t.cfg cls;
  (* Fire-and-forget ops free their MAO entry when memory completes, not
     when the core retires them. *)
  (match n.instr.Instr.op with
  | Op.Load_send _ | Op.Store_recv _ -> ()
  | _ -> if is_mem_node n then Mao.complete t.mao ~seq:n.seq);
  n.dbb.incomplete <- n.dbb.incomplete - 1;
  if n.dbb.incomplete = 0 then begin
    t.live_dbbs <- t.live_dbbs - 1;
    t.live_per_bb.(n.dbb.dbb_bid) <- t.live_per_bb.(n.dbb.dbb_bid) - 1
  end;
  List.iter
    (fun dep ->
      dep.parents_left <- dep.parents_left - 1;
      if dep.parents_left = 0 && dep.state = Waiting then mark_ready t dep)
    n.dependents;
  n.dependents <- [];
  (* Retire: advance the window past the completed prefix. *)
  let rec pop () =
    match Queue.peek_opt t.inflight with
    | Some front when front.state = Completed ->
        ignore (Queue.pop t.inflight);
        pop ()
    | _ -> ()
  in
  pop ()

(* Returns whether anything matured: the scheduler must not skip cycles
   where a completion (or deferred LSQ free) changes tile state. *)
let process_events t ~cycle =
  let progressed = ref false in
  let rec release () =
    match Pqueue.peek t.mao_release with
    | Some (c, _) when c <= cycle -> (
        match Pqueue.pop t.mao_release with
        | Some (_, seq) ->
            Mao.complete t.mao ~seq;
            progressed := true;
            release ()
        | None -> ())
    | Some _ | None -> ()
  in
  release ();
  let rec loop () =
    match Pqueue.peek t.events with
    | Some (c, _) when c <= cycle -> (
        match Pqueue.pop t.events with
        | Some (c, n) ->
            complete_node t n ~cycle:c;
            progressed := true;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  !progressed

(* --- DBB launching --- *)

let position_in_block (blk : Func.block) iid =
  (* Blocks are small; a linear scan is fine and avoids an extra index. *)
  let rec find k =
    if k >= Array.length blk.Func.instrs then
      invalid_arg "Core_tile: instruction not in block"
    else if blk.Func.instrs.(k).Instr.id = iid then k
    else find (k + 1)
  in
  find 0

let launch_dbb t bid =
  let blk = Func.block t.func bid in
  let n_instrs = Array.length blk.Func.instrs in
  let dbb = { dbb_seq = t.stats.dbbs_launched; dbb_bid = bid; incomplete = n_instrs } in
  t.stats.dbbs_launched <- t.stats.dbbs_launched + 1;
  t.live_dbbs <- t.live_dbbs + 1;
  t.live_per_bb.(bid) <- t.live_per_bb.(bid) + 1;
  let nodes = Array.make n_instrs None in
  Array.iteri
    (fun k (instr : Instr.t) ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let n =
        {
          seq;
          instr;
          dbb;
          parents_left = 0;
          state = Waiting;
          dependents = [];
          addr = -1;
          accel_params = [||];
          send_dst = -1;
          complete_cycle = -1;
        }
      in
      nodes.(k) <- Some n;
      let deps = t.ddg.Ddg.deps.(instr.Instr.id) in
      let add_parent (p : node) =
        if p.state <> Completed then begin
          n.parents_left <- n.parents_left + 1;
          p.dependents <- n :: p.dependents
        end
      in
      Array.iter
        (fun pid ->
          match nodes.(position_in_block blk pid) with
          | Some p -> add_parent p
          | None -> invalid_arg "Core_tile: forward intra-block dependence")
        deps.Ddg.intra;
      Array.iter
        (fun r ->
          match t.last_writer.(r) with
          | Some p -> add_parent p
          | None -> ())
        deps.Ddg.extern_regs;
      (* Memory nodes take their address from the trace and enter the MAO
         in program order. *)
      (match Op.mem_size instr.Instr.op with
      | Some size ->
          let addr = Trace.Cursor.next_addr t.cursor ~instr_id:instr.Instr.id in
          n.addr <- addr;
          let kind =
            match instr.Instr.op with
            | Op.Load _ | Op.Load_send _ -> Mao.K_load
            | Op.Store _ | Op.Atomic_rmw _ | Op.Store_recv _ | _ ->
                Mao.K_store
          in
          Mao.insert t.mao ~seq ~kind ~addr ~size
      | None -> ());
      (match instr.Instr.op with
      | Op.Accel _ ->
          n.accel_params <-
            Trace.Cursor.next_accel_params t.cursor ~instr_id:instr.Instr.id
      | Op.Send _ | Op.Load_send _ ->
          n.send_dst <-
            Trace.Cursor.next_send_dst t.cursor ~instr_id:instr.Instr.id
      | _ -> ());
      (match instr.Instr.dst with
      | Some d -> t.last_writer.(d) <- Some n
      | None -> ());
      Queue.add n t.inflight;
      if t.cfg.Tile_config.in_order then Queue.add n t.order;
      if n.parents_left = 0 then mark_ready t n)
    blk.Func.instrs;
  (match nodes.(n_instrs - 1) with
  | Some term when Op.is_terminator term.instr.Instr.op ->
      t.last_term <- Some term;
      (* A dynamic predictor guesses (and trains on) the next block at
         fetch; the verdict is stable until that block launches. *)
      (match (t.predictor, Trace.Cursor.peek_block t.cursor 0) with
      | Some pred, Some actual ->
          let predicted =
            Predictor.predict pred ~branch_id:term.instr.Instr.id term.instr
          in
          Predictor.train pred ~branch_id:term.instr.Instr.id term.instr
            ~actual;
          t.pending_mispredict <- predicted <> Some actual
      | _ -> t.pending_mispredict <- false)
  | _ -> t.last_term <- None)

(* Whether the next DBB may launch now: [`Launch gated] with [gated = true]
   when a prior terminator gated this launch (counts as a prediction) and
   [`Mispredict] when that prediction was wrong. *)
let control_gate t ~cycle ~next_bid =
  match t.last_term with
  | None -> `Launch `First
  | Some term -> (
      match t.cfg.Tile_config.branch with
      | Branch.Perfect -> `Launch `Predicted
      | Branch.No_speculation ->
          if term.state = Completed then `Launch `Predicted else `Wait
      | Branch.Dynamic { penalty; _ } ->
          if not t.pending_mispredict then `Launch `Predicted
          else if term.state = Completed && cycle >= term.complete_cycle + penalty
          then `Launch `Mispredicted
          else `Wait
      | Branch.Static { penalty } -> (
          let bid = term.dbb.dbb_bid in
          match
            Branch.predict ~policy:t.cfg.Tile_config.branch ~bid term.instr
          with
          | Some predicted when predicted = next_bid -> `Launch `Predicted
          | Some _ | None ->
              (* Mispredicted (or unpredictable): wait for resolution plus
                 the misprediction penalty. *)
              if term.state = Completed && cycle >= term.complete_cycle + penalty
              then `Launch `Mispredicted
              else `Wait))

let try_launches t ~cycle =
  let launched = ref 0 in
  let continue = ref true in
  while !continue && !launched < t.cfg.Tile_config.fetch_per_cycle do
    match Trace.Cursor.peek_block t.cursor 0 with
    | None ->
        t.trace_done <- true;
        continue := false
    | Some next_bid ->
        let live_ok =
          (match t.cfg.Tile_config.live_dbb_limit with
          | Some limit -> t.live_per_bb.(next_bid) < limit
          | None -> true)
          && t.live_dbbs < t.cfg.Tile_config.max_live_dbbs
          && t.next_seq - window_start t < t.cfg.Tile_config.window_size
        in
        if not live_ok then continue := false
        else begin
          match control_gate t ~cycle ~next_bid with
          | `Wait -> continue := false
          | `Launch how ->
              (match how with
              | `First -> ()
              | `Predicted ->
                  t.stats.branch.Branch.predictions <-
                    t.stats.branch.Branch.predictions + 1
              | `Mispredicted ->
                  t.stats.branch.Branch.predictions <-
                    t.stats.branch.Branch.predictions + 1;
                  t.stats.branch.Branch.mispredictions <-
                    t.stats.branch.Branch.mispredictions + 1);
              ignore (Trace.Cursor.next_block t.cursor);
              launch_dbb t next_bid;
              incr launched
        end
  done;
  !launched > 0

(* --- Issue --- *)

(* Attempt to issue [n] at [cycle]; true on success. *)
(* Functional units are pipelined: the limit is per-cycle issue
   throughput, tracked in [fu_busy] which resets every cycle. *)
let try_issue t n ~cycle =
  let cls = Op.classify n.instr.Instr.op in
  let ci = Tile_config.class_index cls in
  if t.fu_busy.(ci) >= Tile_config.fu_limit t.cfg cls then false
  else begin
    let div = t.cfg.Tile_config.clock_divider in
    let fixed lat = Some (cycle + Stdlib.max 1 (lat * div)) in
    let completion =
      match n.instr.Instr.op with
      | Op.Load _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            Some
              (Hierarchy.access t.hier ~tile:t.id ~cycle ~addr:n.addr
                 ~is_write:false)
          end
          else None
      | Op.Store _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            Some
              (Hierarchy.access t.hier ~tile:t.id ~cycle ~addr:n.addr
                 ~is_write:true)
          end
          else None
      | Op.Atomic_rmw _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            let base =
              Hierarchy.access t.hier ~tile:t.id ~cycle ~addr:n.addr
                ~is_write:true
            in
            Some (base + t.cfg.Tile_config.atomic_extra_latency)
          end
          else None
      | Op.Send chan ->
          if t.comm.send ~src:t.id ~dst:n.send_dst ~chan ~cycle ~available:cycle
          then fixed t.cfg.Tile_config.comm_latency
          else None
      | Op.Load_send (chan, _) ->
          (* Terminal load: needs an MAO slot, a buffer slot and a free
             miss slot; the core moves on while memory fills the message
             in. *)
          if
            Mao.can_issue t.mao ~seq:n.seq
            && Hierarchy.can_accept t.hier ~tile:t.id ~cycle
          then begin
            let completion =
              Hierarchy.access t.hier ~tile:t.id ~cycle ~addr:n.addr
                ~is_write:false
            in
            if
              t.comm.send ~src:t.id ~dst:n.send_dst ~chan ~cycle
                ~available:completion
            then begin
              t.stats.mem_accesses <- t.stats.mem_accesses + 1;
              (* The core retires the push at once; the LSQ entry drains
                 when memory answers. *)
              Pqueue.add t.mao_release ~prio:completion n.seq;
              fixed 1
            end
            else None
          end
          else None
      | Op.Recv chan -> t.comm.try_recv ~tile:t.id ~chan ~cycle
      | Op.Store_recv (chan, _, rmw) ->
          (* Retire into the store value buffer: commit the channel slot,
             charge the memory write, and move on. Gated on a free miss
             slot so drains respect memory bandwidth. *)
          if
            Mao.can_issue t.mao ~seq:n.seq
            && Hierarchy.can_accept t.hier ~tile:t.id ~cycle
          then
            if t.comm.take_or_owe ~tile:t.id ~chan then begin
              t.stats.mem_accesses <- t.stats.mem_accesses + 1;
              let completion =
                Hierarchy.access t.hier ~tile:t.id ~cycle ~addr:n.addr
                  ~is_write:true
              in
              Pqueue.add t.mao_release ~prio:completion n.seq;
              fixed (match rmw with Some _ -> 2 | None -> 1)
            end
            else None
          else None
      | Op.Accel kind ->
          let r = t.comm.accel ~tile:t.id ~kind ~params:n.accel_params ~cycle in
          t.stats.energy_pj <- t.stats.energy_pj +. r.energy_pj;
          Some (Stdlib.max (cycle + 1) r.finish_cycle)
      | _ -> fixed (Tile_config.latency t.cfg cls)
    in
    match completion with
    | None -> false
    | Some c ->
        n.state <- Issued;
        if Mosaic_obs.Sink.enabled t.sink then
          Mosaic_obs.Sink.emit t.sink ~cycle
            (Mosaic_obs.Event.Instr_issue
               { tile = t.id; seq = n.seq; cls = Op.class_to_string cls });
        (match t.lat_hist with
        | Some h when is_mem_node n ->
            Mosaic_obs.Metrics.observe h (float_of_int (c - cycle))
        | _ -> ());
        t.fu_busy.(ci) <- t.fu_busy.(ci) + 1;
        t.stats.issued_by_class.(ci) <- t.stats.issued_by_class.(ci) + 1;
        Pqueue.add t.events ~prio:(Stdlib.max (cycle + 1) c) n;
        true
  end

let issue_out_of_order t ~cycle =
  let budget = ref t.cfg.Tile_config.issue_width in
  let window_end = window_start t + t.cfg.Tile_config.window_size in
  let stash = ref [] in
  let scans = ref 0 in
  (* Scan the whole window's worth of ready nodes: blocked older entries
     must not starve issuable younger ones. *)
  let scan_budget = Stdlib.min 256 t.cfg.Tile_config.window_size in
  let continue = ref true in
  while !continue && !budget > 0 && !scans < scan_budget do
    match Pqueue.pop t.ready with
    | None -> continue := false
    | Some (_, n) ->
        incr scans;
        if n.seq >= window_end then begin
          (* Ordered by seq: nothing further fits the window either. *)
          stash := n :: !stash;
          continue := false
        end
        else if try_issue t n ~cycle then decr budget
        else stash := n :: !stash
  done;
  List.iter (fun n -> Pqueue.add t.ready ~prio:n.seq n) !stash;
  !budget < t.cfg.Tile_config.issue_width

let issue_in_order t ~cycle =
  let budget = ref t.cfg.Tile_config.issue_width in
  let window_end = window_start t + t.cfg.Tile_config.window_size in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Queue.peek_opt t.order with
    | None -> continue := false
    | Some n ->
        if n.state = Ready && n.seq < window_end && try_issue t n ~cycle then begin
          ignore (Queue.pop t.order);
          decr budget
        end
        else continue := false
  done;
  !budget < t.cfg.Tile_config.issue_width

let step t ~cycle =
  if t.done_ then false
  else if cycle mod t.cfg.Tile_config.clock_divider = 0 then begin
    let progress = ref (process_events t ~cycle) in
    Array.fill t.fu_busy 0 (Array.length t.fu_busy) 0;
    if try_launches t ~cycle then progress := true;
    if
      (if t.cfg.Tile_config.in_order then issue_in_order t ~cycle
       else issue_out_of_order t ~cycle)
    then progress := true;
    if t.trace_done && Queue.is_empty t.inflight && Pqueue.is_empty t.events
    then begin
      t.done_ <- true;
      t.stats.finish_cycle <- cycle;
      progress := true
    end;
    !progress
  end
  else process_events t ~cycle

(* --- Next-event view (event-driven cycle skipping) --- *)

let round_up_to ~div c = if div <= 1 then c else (c + div - 1) / div * div

(* Whether the tile holds work the issue stage would look at on its next
   clock edge: any ready node out of order, the head of the program-order
   queue when in order. *)
let has_issue_candidate t =
  if t.cfg.Tile_config.in_order then
    match Queue.peek_opt t.order with
    | Some n -> n.state = Ready
    | None -> false
  else not (Pqueue.is_empty t.ready)

(* The earliest cycle after [cycle] at which this tile's state can change
   by time alone, or [None] when only another component's progress can
   unblock it (a full destination buffer, an empty receive channel, a debt
   ceiling). The SoC scheduler consults this only on globally quiescent
   cycles — no tile processed an event, launched, issued, or retired — so a
   blocked tile is genuinely blocked and everything that can wake it is
   either queued here with a known cycle or will itself wake the system. *)
let next_event_cycle t ~cycle =
  if t.done_ then None
  else begin
    let div = t.cfg.Tile_config.clock_divider in
    let best = ref max_int in
    let add c = if c > cycle && c < !best then best := c in
    (match Pqueue.peek_prio t.events with Some c -> add c | None -> ());
    (match Pqueue.peek_prio t.mao_release with Some c -> add c | None -> ());
    let next_edge = round_up_to ~div (cycle + 1) in
    if cycle mod div <> 0 then begin
      (* The tile had no launch/issue opportunity at [cycle], so failing to
         progress proves nothing: retry pending work at the next edge. *)
      if
        has_issue_candidate t
        || (not t.trace_done)
        || not (Queue.is_empty t.inflight)
      then add next_edge
    end
    else begin
      (* The tile took a full step at [cycle] and did nothing, so its work
         is blocked; the only blockers that clear by time alone are the
         branch-misprediction penalty and MSHR miss bandwidth. *)
      (match (t.last_term, Trace.Cursor.peek_block t.cursor 0) with
      | Some term, Some next_bid when term.state = Completed -> (
          match control_gate t ~cycle ~next_bid with
          | `Wait ->
              let penalty =
                match t.cfg.Tile_config.branch with
                | Branch.Dynamic { penalty; _ } | Branch.Static { penalty } ->
                    penalty
                | Branch.Perfect | Branch.No_speculation -> 0
              in
              add (round_up_to ~div (term.complete_cycle + penalty))
          | `Launch _ -> ())
      | _ -> ());
      if
        has_issue_candidate t
        && not (Hierarchy.can_accept t.hier ~tile:t.id ~cycle)
      then
        match Hierarchy.next_accept t.hier ~tile:t.id ~cycle with
        | Some free -> add (round_up_to ~div free)
        | None -> ()
    end;
    (* A drained tile flips [done_] only at a clock edge; give it one even
       when no event remains to trigger a wake-up. *)
    if t.trace_done && Queue.is_empty t.inflight && Pqueue.is_empty t.events
    then add next_edge;
    if !best = max_int then None else Some !best
  end
