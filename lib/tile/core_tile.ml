open Mosaic_ir
module Pqueue = Mosaic_util.Pqueue
module Trace = Mosaic_trace.Trace
module Ddg = Mosaic_compiler.Ddg
module Hierarchy = Mosaic_memory.Hierarchy
module Stall = Mosaic_obs.Stall

type accel_result = { finish_cycle : int; energy_pj : float }

type comm = {
  send :
    src:int -> dst:int -> chan:int -> cycle:int -> available:int -> bool;
  try_recv : tile:int -> chan:int -> cycle:int -> int option;
  take_or_owe : tile:int -> chan:int -> bool;
  accel :
    tile:int -> kind:string -> params:Value.t array -> cycle:int ->
    accel_result;
  mem_access : tile:int -> cycle:int -> addr:int -> is_write:bool -> int;
}

type stats = {
  mutable completed_instrs : int;
  mutable finish_cycle : int;
  mutable energy_pj : float;
  mutable dbbs_launched : int;
  mutable mem_accesses : int;
  issued_by_class : int array;
  branch : Branch.stats;
}

type node_state = Waiting | Ready | Issued | Completed

type node = {
  seq : int;
  instr : Instr.t;
  dbb : dbb;
  mutable parents_left : int;
  mutable state : node_state;
  mutable dependents : node list;
  mutable addr : int;  (** -1 when not a memory op *)
  mutable accel_params : Value.t array;
  mutable send_dst : int;  (** destination tile of a send, from the trace *)
  mutable complete_cycle : int;
}

and dbb = { dbb_seq : int; dbb_bid : int; mutable incomplete : int }

type t = {
  id : int;
  cfg : Tile_config.t;
  func : Func.t;
  ddg : Ddg.t;
  cursor : Trace.Cursor.cursor;
  hier : Hierarchy.t;
  comm : comm;
  mutable ready_arr : node array;
      (** out-of-order ready list, sorted by seq and scanned in place; the
          previous heap popped and re-pushed every blocked node every cycle
          (two O(log n) sifts each), which dominated the issue stage *)
  mutable ready_len : int;
  events : node Pqueue.t;  (** priority = completion cycle *)
  inflight : node Queue.t;  (** creation order; completed prefix popped *)
  order : node Queue.t;  (** unissued nodes in program order (in-order) *)
  mao : Mao.t;
  mao_release : int Pqueue.t;
      (** deferred LSQ frees for fire-and-forget memory ops: the core
          retires them immediately but the entry pins the LSQ until the
          access completes in memory *)
  mutable stash : node array;
      (** nodes that became ready since the last issue scan; sorted and
          merged into [ready_arr] at the top of the next scan *)
  mutable stash_len : int;
  last_writer : node option array;
  pos_of_id : int array;
      (** instruction id -> position within its block, precomputed so DBB
          wiring never rescans the block per dependence edge *)
  fu_busy : int array;
  fu_limit_ci : int array;  (** dense per-class cost tables, see below *)
  latency_ci : int array;
  energy_ci : float array;
  mutable next_seq : int;
  mutable live_dbbs : int;
  live_per_bb : int array;
  mutable last_term : node option;
  predictor : Predictor.t option;
  mutable pending_mispredict : bool;
  mutable launch_enabled : bool;
      (** cleared while the sampling driver drains the pipeline to a
          snapshot-able quiescent point; never part of a snapshot *)
  mutable trace_done : bool;
  mutable done_ : bool;
  stats : stats;
  sink : Mosaic_obs.Sink.t;
  lat_hist : Mosaic_obs.Metrics.histogram option;
      (** live memory-completion-latency histogram, when observability is on *)
  prof : Profile.t;
      (** cycle-accounting store; [Profile.null] when not profiling *)
}

let fresh_stats () =
  {
    completed_instrs = 0;
    finish_cycle = -1;
    energy_pj = 0.0;
    dbbs_launched = 0;
    mem_accesses = 0;
    issued_by_class = Array.make Tile_config.nclasses 0;
    branch = Branch.fresh_stats ();
  }

let create ?(sink = Mosaic_obs.Sink.null) ?lat_hist ?(profile = Profile.null)
    ~id ~config ~func ~ddg ~tile_trace ~hierarchy ~comm () =
  if ddg.Ddg.func != func then
    invalid_arg "Core_tile.create: DDG built for a different function";
  {
    id;
    cfg = config;
    func;
    ddg;
    cursor = Trace.Cursor.create tile_trace;
    hier = hierarchy;
    comm;
    ready_arr = [||];
    ready_len = 0;
    events = Pqueue.create ();
    inflight = Queue.create ();
    order = Queue.create ();
    mao =
      Mao.create ~capacity:config.Tile_config.lsq_size
        ~perfect_alias:config.Tile_config.perfect_alias;
    mao_release = Pqueue.create ();
    stash = [||];
    stash_len = 0;
    last_writer = Array.make (Stdlib.max func.Func.nregs 1) None;
    pos_of_id =
      (let pos = Array.make (Stdlib.max func.Func.ninstrs 1) (-1) in
       Array.iter
         (fun (b : Func.block) ->
           Array.iteri
             (fun k (i : Instr.t) -> pos.(i.Instr.id) <- k)
             b.Func.instrs)
         func.Func.blocks;
       pos);
    fu_busy = Array.make Tile_config.nclasses 0;
    (* The issue path consults these once per issue attempt; compiling
       the config's association lists into dense arrays here keeps those
       lookups allocation-free and O(1). *)
    fu_limit_ci = Tile_config.fu_limit_table config;
    latency_ci = Tile_config.latency_table config;
    energy_ci = Tile_config.energy_table config;
    next_seq = 0;
    live_dbbs = 0;
    live_per_bb = Array.make (Array.length func.Func.blocks) 0;
    last_term = None;
    predictor =
      (match config.Tile_config.branch with
      | Branch.Dynamic { kind; _ } -> Some (Predictor.create kind)
      | _ -> None);
    pending_mispredict = false;
    launch_enabled = true;
    trace_done = false;
    done_ = false;
    stats = fresh_stats ();
    sink;
    lat_hist;
    prof = profile;
  }

let id t = t.id
let config t = t.cfg
let stats t = t.stats
let profile t = t.prof
let finished t = t.done_
let mao_stalls t = Mao.stalls t.mao

let ipc t =
  if t.stats.finish_cycle <= 0 then 0.0
  else float_of_int t.stats.completed_instrs /. float_of_int t.stats.finish_cycle

let window_start t =
  if Queue.is_empty t.inflight then t.next_seq else (Queue.peek t.inflight).seq

let is_mem_node n = Op.is_mem n.instr.Instr.op

let push_stash t n =
  if t.stash_len = Array.length t.stash then begin
    let grown = Array.make (Stdlib.max 8 (2 * t.stash_len)) n in
    Array.blit t.stash 0 grown 0 t.stash_len;
    t.stash <- grown
  end;
  t.stash.(t.stash_len) <- n;
  t.stash_len <- t.stash_len + 1

let mark_ready t n =
  n.state <- Ready;
  if is_mem_node n then Mao.resolve t.mao ~seq:n.seq;
  if not t.cfg.Tile_config.in_order then push_stash t n

(* --- Completion --- *)

let complete_node t n ~cycle =
  n.state <- Completed;
  n.complete_cycle <- cycle;
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Instr_retire { tile = t.id; seq = n.seq });
  let cls = Op.classify n.instr.Instr.op in
  t.stats.completed_instrs <- t.stats.completed_instrs + 1;
  t.stats.energy_pj <-
    t.stats.energy_pj +. t.energy_ci.(Tile_config.class_index cls);
  (* Fire-and-forget ops free their MAO entry when memory completes, not
     when the core retires them. *)
  (match n.instr.Instr.op with
  | Op.Load_send _ | Op.Store_recv _ -> ()
  | _ -> if is_mem_node n then Mao.complete t.mao ~seq:n.seq);
  n.dbb.incomplete <- n.dbb.incomplete - 1;
  if n.dbb.incomplete = 0 then begin
    t.live_dbbs <- t.live_dbbs - 1;
    t.live_per_bb.(n.dbb.dbb_bid) <- t.live_per_bb.(n.dbb.dbb_bid) - 1
  end;
  (* Manual list walk: [List.iter] with an inline function allocates the
     closure per completion. *)
  let deps = ref n.dependents in
  let continue = ref true in
  while !continue do
    match !deps with
    | [] -> continue := false
    | dep :: rest ->
        dep.parents_left <- dep.parents_left - 1;
        if dep.parents_left = 0 && dep.state = Waiting then mark_ready t dep;
        deps := rest
  done;
  n.dependents <- [];
  (* Retire: advance the window past the completed prefix. *)
  while
    (not (Queue.is_empty t.inflight))
    && (Queue.peek t.inflight).state = Completed
  do
    ignore (Queue.pop t.inflight)
  done

(* Returns whether anything matured: the scheduler must not skip cycles
   where a completion (or deferred LSQ free) changes tile state. *)
let process_events t ~cycle =
  let progressed = ref false in
  while
    (not (Pqueue.is_empty t.mao_release))
    && Pqueue.min_prio t.mao_release <= cycle
  do
    Mao.complete t.mao ~seq:(Pqueue.min_elt t.mao_release);
    Pqueue.drop_min t.mao_release;
    progressed := true
  done;
  while
    (not (Pqueue.is_empty t.events)) && Pqueue.min_prio t.events <= cycle
  do
    let c = Pqueue.min_prio t.events and n = Pqueue.min_elt t.events in
    Pqueue.drop_min t.events;
    complete_node t n ~cycle:c;
    progressed := true
  done;
  !progressed

(* --- DBB launching --- *)

(* Record [p] as a parent [n] must wait for. Top-level (not a closure in
   the wiring loop) so launching allocates nothing beyond the nodes and
   dependence conses themselves. *)
let add_parent n (p : node) =
  if p.state <> Completed then begin
    n.parents_left <- n.parents_left + 1;
    p.dependents <- n :: p.dependents
  end

let launch_dbb t bid =
  let blk = Func.block t.func bid in
  let n_instrs = Array.length blk.Func.instrs in
  let dbb = { dbb_seq = t.stats.dbbs_launched; dbb_bid = bid; incomplete = n_instrs } in
  t.stats.dbbs_launched <- t.stats.dbbs_launched + 1;
  t.live_dbbs <- t.live_dbbs + 1;
  t.live_per_bb.(bid) <- t.live_per_bb.(bid) + 1;
  (* Allocate all the block's nodes up front (sequence numbers in program
     order); the wiring pass below then never needs an option per slot. *)
  let mk_node (instr : Instr.t) =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    {
      seq;
      instr;
      dbb;
      parents_left = 0;
      state = Waiting;
      dependents = [];
      addr = -1;
      accel_params = [||];
      send_dst = -1;
      complete_cycle = -1;
    }
  in
  let first = mk_node blk.Func.instrs.(0) in
  let nodes = Array.make n_instrs first in
  for k = 1 to n_instrs - 1 do
    nodes.(k) <- mk_node blk.Func.instrs.(k)
  done;
  for k = 0 to n_instrs - 1 do
    let instr = blk.Func.instrs.(k) in
    let n = nodes.(k) in
    let seq = n.seq in
    let deps = t.ddg.Ddg.deps.(instr.Instr.id) in
    let intra = deps.Ddg.intra in
    for di = 0 to Array.length intra - 1 do
      let pos = t.pos_of_id.(intra.(di)) in
      if pos >= k then
        invalid_arg "Core_tile: forward intra-block dependence";
      add_parent n nodes.(pos)
    done;
    let ext = deps.Ddg.extern_regs in
    for ri = 0 to Array.length ext - 1 do
      match t.last_writer.(ext.(ri)) with
      | Some p -> add_parent n p
      | None -> ()
    done;
    (* Memory nodes take their address from the trace and enter the MAO
       in program order. *)
    (match Op.mem_size instr.Instr.op with
    | Some size ->
        let addr = Trace.Cursor.next_addr t.cursor ~instr_id:instr.Instr.id in
        n.addr <- addr;
        let kind =
          match instr.Instr.op with
          | Op.Load _ | Op.Load_send _ -> Mao.K_load
          | Op.Store _ | Op.Atomic_rmw _ | Op.Store_recv _ | _ ->
              Mao.K_store
        in
        Mao.insert t.mao ~seq ~kind ~addr ~size
    | None -> ());
    (match instr.Instr.op with
    | Op.Accel _ ->
        n.accel_params <-
          Trace.Cursor.next_accel_params t.cursor ~instr_id:instr.Instr.id
    | Op.Send _ | Op.Load_send _ ->
        n.send_dst <-
          Trace.Cursor.next_send_dst t.cursor ~instr_id:instr.Instr.id
    | _ -> ());
    (match instr.Instr.dst with
    | Some d -> t.last_writer.(d) <- Some n
    | None -> ());
    Queue.add n t.inflight;
    if t.cfg.Tile_config.in_order then Queue.add n t.order;
    if n.parents_left = 0 then mark_ready t n
  done;
  let term = nodes.(n_instrs - 1) in
  if Op.is_terminator term.instr.Instr.op then begin
    t.last_term <- Some term;
    (* A dynamic predictor guesses (and trains on) the next block at
       fetch; the verdict is stable until that block launches. *)
    match t.predictor with
    | Some pred ->
        let actual = Trace.Cursor.peek_block_id t.cursor 0 in
        if actual >= 0 then begin
          let predicted =
            Predictor.predict pred ~branch_id:term.instr.Instr.id term.instr
          in
          Predictor.train pred ~branch_id:term.instr.Instr.id term.instr
            ~actual;
          t.pending_mispredict <- predicted <> Some actual
        end
        else t.pending_mispredict <- false
    | None -> t.pending_mispredict <- false
  end
  else t.last_term <- None

(* Whether the next DBB may launch now, as an int code — the gate runs for
   every launch attempt and every next-event probe, so the old polymorphic
   variant result (`Launch carrying its payload) allocated on each call. *)
let gate_wait = 0
let gate_first = 1 (* ungated: no prior terminator *)
let gate_predicted = 2
let gate_mispredicted = 3

let control_gate t ~cycle ~next_bid =
  match t.last_term with
  | None -> gate_first
  | Some term -> (
      match t.cfg.Tile_config.branch with
      | Branch.Perfect -> gate_predicted
      | Branch.No_speculation ->
          if term.state = Completed then gate_predicted else gate_wait
      | Branch.Dynamic { penalty; _ } ->
          if not t.pending_mispredict then gate_predicted
          else if term.state = Completed && cycle >= term.complete_cycle + penalty
          then gate_mispredicted
          else gate_wait
      | Branch.Static { penalty } ->
          let bid = term.dbb.dbb_bid in
          let predicted =
            Branch.predict_id ~policy:t.cfg.Tile_config.branch ~bid term.instr
          in
          if predicted >= 0 && predicted = next_bid then gate_predicted
            (* Mispredicted (or unpredictable): wait for resolution plus
               the misprediction penalty. *)
          else if term.state = Completed && cycle >= term.complete_cycle + penalty
          then gate_mispredicted
          else gate_wait)

let try_launches t ~cycle =
  let launched = ref 0 in
  let continue = ref true in
  while !continue && !launched < t.cfg.Tile_config.fetch_per_cycle do
    let next_bid = Trace.Cursor.peek_block_id t.cursor 0 in
    if next_bid < 0 then begin
      t.trace_done <- true;
      continue := false
    end
    else begin
      let live_ok =
        (match t.cfg.Tile_config.live_dbb_limit with
        | Some limit -> t.live_per_bb.(next_bid) < limit
        | None -> true)
        && t.live_dbbs < t.cfg.Tile_config.max_live_dbbs
        && t.next_seq - window_start t < t.cfg.Tile_config.window_size
      in
      if not live_ok then continue := false
      else begin
        let gate = control_gate t ~cycle ~next_bid in
        if gate = gate_wait then continue := false
        else begin
          if gate = gate_predicted || gate = gate_mispredicted then
            t.stats.branch.Branch.predictions <-
              t.stats.branch.Branch.predictions + 1;
          if gate = gate_mispredicted then
            t.stats.branch.Branch.mispredictions <-
              t.stats.branch.Branch.mispredictions + 1;
          ignore (Trace.Cursor.next_block t.cursor);
          launch_dbb t next_bid;
          incr launched
        end
      end
    end
  done;
  !launched > 0

(* --- Issue --- *)

let fixed_completion ~cycle ~div lat = cycle + Stdlib.max 1 (lat * div)

(* Profiler hook for issue-scan failures; [blocked] doubles as the -1
   "cannot issue" completion code so the failure paths below stay
   one-liners. *)
let note_fail t n cause =
  if t.prof.Profile.enabled then
    Profile.note_fail t.prof ~cause ~iid:n.instr.Instr.id ~bid:n.dbb.dbb_bid

let blocked t n cause =
  note_fail t n cause;
  -1

(* Attempt to issue [n] at [cycle]; true on success. *)
(* Functional units are pipelined: the limit is per-cycle issue
   throughput, tracked in [fu_busy] which resets every cycle.

   The completion cycle flows as a plain int with -1 for "cannot issue" —
   this path runs once per instruction, so an option per attempt would be
   a steady allocation drip. *)
let try_issue t n ~cycle =
  let cls = Op.classify n.instr.Instr.op in
  let ci = Tile_config.class_index cls in
  if t.fu_busy.(ci) >= t.fu_limit_ci.(ci) then begin
    note_fail t n Stall.Structural;
    false
  end
  else begin
    let div = t.cfg.Tile_config.clock_divider in
    let completion =
      match n.instr.Instr.op with
      | Op.Load _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            t.comm.mem_access ~tile:t.id ~cycle ~addr:n.addr ~is_write:false
          end
          else blocked t n Stall.Mao
      | Op.Store _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            t.comm.mem_access ~tile:t.id ~cycle ~addr:n.addr ~is_write:true
          end
          else blocked t n Stall.Mao
      | Op.Atomic_rmw _ ->
          if Mao.can_issue t.mao ~seq:n.seq then begin
            t.stats.mem_accesses <- t.stats.mem_accesses + 1;
            let base =
              t.comm.mem_access ~tile:t.id ~cycle ~addr:n.addr ~is_write:true
            in
            base + t.cfg.Tile_config.atomic_extra_latency
          end
          else blocked t n Stall.Mao
      | Op.Send chan ->
          if t.comm.send ~src:t.id ~dst:n.send_dst ~chan ~cycle ~available:cycle
          then fixed_completion ~cycle ~div t.cfg.Tile_config.comm_latency
          else blocked t n Stall.Supply
      | Op.Load_send (chan, _) ->
          (* Terminal load: needs an MAO slot, a buffer slot and a free
             miss slot; the core moves on while memory fills the message
             in. *)
          if Mao.can_issue t.mao ~seq:n.seq then
            if Hierarchy.can_accept t.hier ~tile:t.id ~cycle then begin
              let completion =
                t.comm.mem_access ~tile:t.id ~cycle ~addr:n.addr
                  ~is_write:false
              in
              if
                t.comm.send ~src:t.id ~dst:n.send_dst ~chan ~cycle
                  ~available:completion
              then begin
                t.stats.mem_accesses <- t.stats.mem_accesses + 1;
                (* The core retires the push at once; the LSQ entry drains
                   when memory answers. *)
                Pqueue.add t.mao_release ~prio:completion n.seq;
                fixed_completion ~cycle ~div 1
              end
              else blocked t n Stall.Supply
            end
            else blocked t n Stall.Memory
          else blocked t n Stall.Mao
      | Op.Recv chan -> (
          match t.comm.try_recv ~tile:t.id ~chan ~cycle with
          | Some c -> c
          | None -> blocked t n Stall.Supply)
      | Op.Store_recv (chan, _, rmw) ->
          (* Retire into the store value buffer: commit the channel slot,
             charge the memory write, and move on. Gated on a free miss
             slot so drains respect memory bandwidth. *)
          if Mao.can_issue t.mao ~seq:n.seq then
            if Hierarchy.can_accept t.hier ~tile:t.id ~cycle then
              if t.comm.take_or_owe ~tile:t.id ~chan then begin
                t.stats.mem_accesses <- t.stats.mem_accesses + 1;
                let completion =
                  t.comm.mem_access ~tile:t.id ~cycle ~addr:n.addr
                    ~is_write:true
                in
                Pqueue.add t.mao_release ~prio:completion n.seq;
                fixed_completion ~cycle ~div
                  (match rmw with Some _ -> 2 | None -> 1)
              end
              else blocked t n Stall.Supply
            else blocked t n Stall.Memory
          else blocked t n Stall.Mao
      | Op.Accel kind ->
          let r = t.comm.accel ~tile:t.id ~kind ~params:n.accel_params ~cycle in
          t.stats.energy_pj <- t.stats.energy_pj +. r.energy_pj;
          Stdlib.max (cycle + 1) r.finish_cycle
      | _ -> fixed_completion ~cycle ~div t.latency_ci.(ci)
    in
    if completion < 0 then false
    else begin
      let c = completion in
      n.state <- Issued;
      if Mosaic_obs.Sink.enabled t.sink then
        Mosaic_obs.Sink.emit t.sink ~cycle
          (Mosaic_obs.Event.Instr_issue
             { tile = t.id; seq = n.seq; cls = Op.class_to_string cls });
      (match t.lat_hist with
      | Some h when is_mem_node n ->
          Mosaic_obs.Metrics.observe h (float_of_int (c - cycle))
      | _ -> ());
      t.fu_busy.(ci) <- t.fu_busy.(ci) + 1;
      t.stats.issued_by_class.(ci) <- t.stats.issued_by_class.(ci) + 1;
      Pqueue.add t.events ~prio:(Stdlib.max (cycle + 1) c) n;
      true
    end
  end

(* Fold the nodes that became ready since the last scan into the sorted
   ready list: insertion-sort the (typically tiny) batch, then a single
   back-to-front in-place merge. *)
let merge_new_ready t =
  if t.stash_len > 0 then begin
    for i = 1 to t.stash_len - 1 do
      let n = t.stash.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.stash.(!j).seq > n.seq do
        t.stash.(!j + 1) <- t.stash.(!j);
        decr j
      done;
      t.stash.(!j + 1) <- n
    done;
    let total = t.ready_len + t.stash_len in
    if total > Array.length t.ready_arr then begin
      let cap = ref (Stdlib.max 8 (Array.length t.ready_arr)) in
      while !cap < total do cap := !cap * 2 done;
      let grown = Array.make !cap t.stash.(0) in
      Array.blit t.ready_arr 0 grown 0 t.ready_len;
      t.ready_arr <- grown
    end;
    let i = ref (t.ready_len - 1) in
    let j = ref (t.stash_len - 1) in
    let k = ref (total - 1) in
    while !j >= 0 do
      if !i >= 0 && t.ready_arr.(!i).seq > t.stash.(!j).seq then begin
        t.ready_arr.(!k) <- t.ready_arr.(!i);
        decr i
      end
      else begin
        t.ready_arr.(!k) <- t.stash.(!j);
        decr j
      end;
      decr k
    done;
    t.ready_len <- total;
    t.stash_len <- 0
  end

let issue_out_of_order t ~cycle =
  merge_new_ready t;
  let budget = ref t.cfg.Tile_config.issue_width in
  let window_end = window_start t + t.cfg.Tile_config.window_size in
  let scans = ref 0 in
  (* Scan the whole window's worth of ready nodes in seq order: blocked
     older entries must not starve issuable younger ones. Issued nodes are
     squeezed out in place as the scan advances; blocked ones stay put. *)
  let scan_budget = Stdlib.min 256 t.cfg.Tile_config.window_size in
  let r = ref 0 in
  let w = ref 0 in
  let continue = ref true in
  while !continue && !r < t.ready_len && !budget > 0 && !scans < scan_budget do
    let n = t.ready_arr.(!r) in
    incr scans;
    if n.seq >= window_end then begin
      (* Ordered by seq: nothing further fits the window either. *)
      note_fail t n Stall.Structural;
      continue := false
    end
    else begin
      incr r;
      if try_issue t n ~cycle then decr budget
      else begin
        if !w < !r - 1 then t.ready_arr.(!w) <- n;
        incr w
      end
    end
  done;
  if !w < !r then begin
    let tail = t.ready_len - !r in
    if tail > 0 then Array.blit t.ready_arr !r t.ready_arr !w tail;
    t.ready_len <- !w + tail
  end;
  t.cfg.Tile_config.issue_width - !budget

let issue_in_order t ~cycle =
  let budget = ref t.cfg.Tile_config.issue_width in
  let window_end = window_start t + t.cfg.Tile_config.window_size in
  let continue = ref true in
  while !continue && !budget > 0 do
    if Queue.is_empty t.order then continue := false
    else begin
      let n = Queue.peek t.order in
      if n.state <> Ready then continue := false
      else if n.seq >= window_end then begin
        note_fail t n Stall.Structural;
        continue := false
      end
      else if try_issue t n ~cycle then begin
        ignore (Queue.pop t.order);
        decr budget
      end
      else continue := false
    end
  done;
  t.cfg.Tile_config.issue_width - !budget

(* End-of-cycle attribution (profiling only). Priority when several
   conditions hold at once: finished > full-width busy > outstanding
   memory access at the window head (top-down style — an in-flight load
   at the head is what the whole window is draining behind, even when a
   younger candidate was also turned away this cycle) > first blocked
   issue candidate noted during the scan > dependency (head is an
   uncompleted non-memory producer) > branch redirect > idle. One cause
   per tile-cycle; see DESIGN.md "Cycle accounting". *)
let classify t ~issued =
  let p = t.prof in
  if t.done_ then Profile.book_cause p Stall.Finished
  else if issued >= t.cfg.Tile_config.issue_width then
    Profile.book_cause p Stall.Busy
  else if
    (not (Queue.is_empty t.inflight))
    &&
    let n = Queue.peek t.inflight in
    n.state = Issued && is_mem_node n
  then begin
    let n = Queue.peek t.inflight in
    Profile.book p ~cause:Stall.Memory ~iid:n.instr.Instr.id
      ~bid:n.dbb.dbb_bid
  end
  else if Profile.book_fail p then ()
  else if not (Queue.is_empty t.inflight) then begin
    (* Nothing ready and no candidate was turned away: the window head is
       an uncompleted producer somebody is waiting on. *)
    let n = Queue.peek t.inflight in
    Profile.book p ~cause:Stall.Dependency ~iid:n.instr.Instr.id
      ~bid:n.dbb.dbb_bid
  end
  else if not t.trace_done then begin
    (* Empty pipeline with trace remaining: the control gate is closed
       (unresolved terminator or misprediction penalty). *)
    match t.last_term with
    | Some term ->
        Profile.book p ~cause:Stall.Branch_redirect ~iid:term.instr.Instr.id
          ~bid:term.dbb.dbb_bid
    | None -> Profile.book_cause p Stall.Branch_redirect
  end
  else Profile.book_cause p Stall.Idle

let step t ~cycle =
  if t.done_ then begin
    if t.prof.Profile.enabled then Profile.book_cause t.prof Stall.Finished;
    false
  end
  else if cycle mod t.cfg.Tile_config.clock_divider = 0 then begin
    if t.prof.Profile.enabled then Profile.reset_scan t.prof;
    let progress = ref (process_events t ~cycle) in
    Array.fill t.fu_busy 0 (Array.length t.fu_busy) 0;
    if t.launch_enabled && try_launches t ~cycle then progress := true;
    let issued =
      if t.cfg.Tile_config.in_order then issue_in_order t ~cycle
      else issue_out_of_order t ~cycle
    in
    if issued > 0 then progress := true;

    if t.trace_done && Queue.is_empty t.inflight && Pqueue.is_empty t.events
    then begin
      t.done_ <- true;
      t.stats.finish_cycle <- cycle;
      progress := true
    end;
    if t.prof.Profile.enabled then classify t ~issued;
    !progress
  end
  else begin
    let progressed = process_events t ~cycle in
    (* Below the clock edge there is no launch/issue opportunity: re-book
       the last edge's attribution so every cycle is accounted. *)
    if t.prof.Profile.enabled then Profile.book_last t.prof;
    progressed
  end

(* --- Next-event view (event-driven cycle skipping) --- *)

let round_up_to ~div c = if div <= 1 then c else (c + div - 1) / div * div

(* Whether the tile holds work the issue stage would look at on its next
   clock edge: any ready node out of order, the head of the program-order
   queue when in order. *)
let has_issue_candidate t =
  if t.cfg.Tile_config.in_order then
    (not (Queue.is_empty t.order)) && (Queue.peek t.order).state = Ready
  else t.ready_len > 0 || t.stash_len > 0

(* The earliest cycle after [cycle] at which this tile's state can change
   by time alone, or [None] when only another component's progress can
   unblock it (a full destination buffer, an empty receive channel, a debt
   ceiling). The SoC scheduler consults this only on globally quiescent
   cycles — no tile processed an event, launched, issued, or retired — so a
   blocked tile is genuinely blocked and everything that can wake it is
   either queued here with a known cycle or will itself wake the system. *)
let next_event_cycle t ~cycle =
  if t.done_ then None
  else begin
    let div = t.cfg.Tile_config.clock_divider in
    let best = ref max_int in
    let add c = if c > cycle && c < !best then best := c in
    if not (Pqueue.is_empty t.events) then add (Pqueue.min_prio t.events);
    if not (Pqueue.is_empty t.mao_release) then
      add (Pqueue.min_prio t.mao_release);
    let next_edge = round_up_to ~div (cycle + 1) in
    if cycle mod div <> 0 then begin
      (* The tile had no launch/issue opportunity at [cycle], so failing to
         progress proves nothing: retry pending work at the next edge. *)
      if
        has_issue_candidate t
        || (t.launch_enabled && not t.trace_done)
        || not (Queue.is_empty t.inflight)
      then add next_edge
    end
    else begin
      (* The tile took a full step at [cycle] and did nothing, so its work
         is blocked; the only blockers that clear by time alone are the
         branch-misprediction penalty and MSHR miss bandwidth. *)
      (match t.last_term with
      | Some term when term.state = Completed ->
          let next_bid = Trace.Cursor.peek_block_id t.cursor 0 in
          if next_bid >= 0 && control_gate t ~cycle ~next_bid = gate_wait
          then begin
            let penalty =
              match t.cfg.Tile_config.branch with
              | Branch.Dynamic { penalty; _ } | Branch.Static { penalty } ->
                  penalty
              | Branch.Perfect | Branch.No_speculation -> 0
            in
            add (round_up_to ~div (term.complete_cycle + penalty))
          end
      | _ -> ());
      if
        has_issue_candidate t
        && not (Hierarchy.can_accept t.hier ~tile:t.id ~cycle)
      then
        match Hierarchy.next_accept t.hier ~tile:t.id ~cycle with
        | Some free -> add (round_up_to ~div free)
        | None -> ()
    end;
    (* A drained tile flips [done_] only at a clock edge; give it one even
       when no event remains to trigger a wake-up. *)
    if t.trace_done && Queue.is_empty t.inflight && Pqueue.is_empty t.events
    then add next_edge;
    if !best = max_int then None else Some !best
  end

(* --- Fast-forward support ---

   The sampling driver drains the pipeline (launching disabled, detailed
   stepping) to a quiescent point, then the functional executor replays
   trace blocks against the cursor directly. [ff_commit] absorbs the
   skipped work into the architectural counters and resets the
   cross-boundary frontier: register and control dependencies into the
   fast-forwarded region are dropped, which is the sampling approximation
   (the exact path never calls this). *)

let set_launch_enabled t v = t.launch_enabled <- v

let quiescent t =
  Queue.is_empty t.inflight
  && Pqueue.is_empty t.events
  && Pqueue.is_empty t.mao_release

let cursor t = t.cursor
let trace_done t = t.trace_done

let ff_observe_branch t (term : Instr.t) ~actual =
  match t.predictor with
  | Some p -> Predictor.observe p ~branch_id:term.Instr.id term ~actual
  | None -> ()

let ff_commit t ~instrs ~dbbs ~mem_accesses ~by_class ~accel_energy_pj =
  t.stats.completed_instrs <- t.stats.completed_instrs + instrs;
  t.stats.dbbs_launched <- t.stats.dbbs_launched + dbbs;
  t.stats.mem_accesses <- t.stats.mem_accesses + mem_accesses;
  let energy = ref accel_energy_pj in
  Array.iteri
    (fun ci k ->
      t.stats.issued_by_class.(ci) <- t.stats.issued_by_class.(ci) + k;
      energy := !energy +. (float_of_int k *. t.energy_ci.(ci)))
    by_class;
  t.stats.energy_pj <- t.stats.energy_pj +. !energy;
  Array.fill t.last_writer 0 (Array.length t.last_writer) None;
  t.last_term <- None;
  t.pending_mispredict <- false

(* --- Snapshots ---

   Nodes are serialized by sequence number: the live set is everything in
   the instruction window plus the completed frontier nodes still referenced
   as register writers or the last terminator (their dependents are cleared
   at completion, so they dump as leaves). Instruction identity is
   (block id, position in block) — the static program is rebuilt from the
   workload on restore, never serialized. *)

type node_dump = {
  nd_seq : int;
  nd_dbb : int;  (** dbb_seq of the owning dynamic block *)
  nd_idx : int;  (** position within the block *)
  nd_parents_left : int;
  nd_state : int;
  nd_dependents : int array;
  nd_addr : int;
  nd_accel_params : Value.t array;
  nd_send_dst : int;
  nd_complete_cycle : int;
}

type dbb_dump = { bd_seq : int; bd_bid : int; bd_incomplete : int }

type dump = {
  d_cursor : Trace.Cursor.dump;
  d_nodes : node_dump array;
  d_dbbs : dbb_dump array;
  d_inflight : int array;
  d_order : int array;
  d_ready : int array;
  d_stash : int array;
  d_events : int Pqueue.dump;
  d_mao : Mao.dump;
  d_mao_release : int Pqueue.dump;
  d_last_writer : int array;  (** per register: writer seq or -1 *)
  d_fu_busy : int array;
  d_next_seq : int;
  d_live_dbbs : int;
  d_live_per_bb : int array;
  d_last_term : int;  (** seq or -1 *)
  d_predictor : Predictor.dump option;
  d_pending_mispredict : bool;
  d_trace_done : bool;
  d_done : bool;
  d_stats : int array;
      (** completed_instrs, finish_cycle, dbbs_launched, mem_accesses,
          branch predictions, branch mispredictions *)
  d_energy_pj : float;
  d_issued_by_class : int array;
  d_prof : Profile.dump;
  d_lat_hist : Mosaic_obs.Metrics.hist_dump option;
}

let state_code = function Waiting -> 0 | Ready -> 1 | Issued -> 2 | Completed -> 3

let state_of_code = function
  | 0 -> Waiting
  | 1 -> Ready
  | 2 -> Issued
  | 3 -> Completed
  | c -> invalid_arg (Printf.sprintf "Core_tile: bad node state code %d" c)

let dump t =
  let tbl : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let add n = if not (Hashtbl.mem tbl n.seq) then Hashtbl.replace tbl n.seq n in
  Queue.iter add t.inflight;
  Queue.iter add t.order;
  for i = 0 to t.ready_len - 1 do add t.ready_arr.(i) done;
  for i = 0 to t.stash_len - 1 do add t.stash.(i) done;
  Array.iter (function Some n -> add n | None -> ()) t.last_writer;
  (match t.last_term with Some n -> add n | None -> ());
  let events = Pqueue.map_dump (fun n -> add n; n.seq) (Pqueue.dump t.events) in
  let nodes =
    Hashtbl.fold (fun _ n acc -> n :: acc) tbl []
    |> List.sort (fun a b -> compare a.seq b.seq)
    |> Array.of_list
  in
  let dbbs : (int, dbb) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun n ->
      if not (Hashtbl.mem dbbs n.dbb.dbb_seq) then
        Hashtbl.replace dbbs n.dbb.dbb_seq n.dbb)
    nodes;
  let queue_seqs q =
    let out = Array.make (Queue.length q) 0 in
    let i = ref 0 in
    Queue.iter (fun n -> out.(!i) <- n.seq; incr i) q;
    out
  in
  {
    d_cursor = Trace.Cursor.dump t.cursor;
    d_nodes =
      Array.map
        (fun n ->
          {
            nd_seq = n.seq;
            nd_dbb = n.dbb.dbb_seq;
            nd_idx = t.pos_of_id.(n.instr.Instr.id);
            nd_parents_left = n.parents_left;
            nd_state = state_code n.state;
            nd_dependents =
              Array.of_list (List.map (fun d -> d.seq) n.dependents);
            nd_addr = n.addr;
            nd_accel_params = Array.copy n.accel_params;
            nd_send_dst = n.send_dst;
            nd_complete_cycle = n.complete_cycle;
          })
        nodes;
    d_dbbs =
      Hashtbl.fold
        (fun _ b acc ->
          { bd_seq = b.dbb_seq; bd_bid = b.dbb_bid; bd_incomplete = b.incomplete }
          :: acc)
        dbbs []
      |> List.sort (fun a b -> compare a.bd_seq b.bd_seq)
      |> Array.of_list;
    d_inflight = queue_seqs t.inflight;
    d_order = queue_seqs t.order;
    d_ready = Array.init t.ready_len (fun i -> t.ready_arr.(i).seq);
    d_stash = Array.init t.stash_len (fun i -> t.stash.(i).seq);
    d_events = events;
    d_mao = Mao.dump t.mao;
    d_mao_release = Pqueue.dump t.mao_release;
    d_last_writer =
      Array.map (function Some n -> n.seq | None -> -1) t.last_writer;
    d_fu_busy = Array.copy t.fu_busy;
    d_next_seq = t.next_seq;
    d_live_dbbs = t.live_dbbs;
    d_live_per_bb = Array.copy t.live_per_bb;
    d_last_term = (match t.last_term with Some n -> n.seq | None -> -1);
    d_predictor = Option.map Predictor.dump t.predictor;
    d_pending_mispredict = t.pending_mispredict;
    d_trace_done = t.trace_done;
    d_done = t.done_;
    d_stats =
      [|
        t.stats.completed_instrs; t.stats.finish_cycle; t.stats.dbbs_launched;
        t.stats.mem_accesses; t.stats.branch.Branch.predictions;
        t.stats.branch.Branch.mispredictions;
      |];
    d_energy_pj = t.stats.energy_pj;
    d_issued_by_class = Array.copy t.stats.issued_by_class;
    d_prof = Profile.dump t.prof;
    d_lat_hist = Option.map Mosaic_obs.Metrics.hist_dump t.lat_hist;
  }

let restore t d =
  if Array.length d.d_last_writer <> Array.length t.last_writer then
    invalid_arg "Core_tile.restore: register-file size mismatch";
  if Array.length d.d_live_per_bb <> Array.length t.live_per_bb then
    invalid_arg "Core_tile.restore: block count mismatch";
  Trace.Cursor.restore t.cursor d.d_cursor;
  let dbbs : (int, dbb) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun b ->
      Hashtbl.replace dbbs b.bd_seq
        { dbb_seq = b.bd_seq; dbb_bid = b.bd_bid; incomplete = b.bd_incomplete })
    d.d_dbbs;
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun nd ->
      let dbb =
        match Hashtbl.find_opt dbbs nd.nd_dbb with
        | Some b -> b
        | None -> invalid_arg "Core_tile.restore: node references unknown DBB"
      in
      let blk = Func.block t.func dbb.dbb_bid in
      if nd.nd_idx < 0 || nd.nd_idx >= Array.length blk.Func.instrs then
        invalid_arg "Core_tile.restore: node index out of block range";
      Hashtbl.replace nodes nd.nd_seq
        {
          seq = nd.nd_seq;
          instr = blk.Func.instrs.(nd.nd_idx);
          dbb;
          parents_left = nd.nd_parents_left;
          state = state_of_code nd.nd_state;
          dependents = [];
          addr = nd.nd_addr;
          accel_params = Array.copy nd.nd_accel_params;
          send_dst = nd.nd_send_dst;
          complete_cycle = nd.nd_complete_cycle;
        })
    d.d_nodes;
  let node seq =
    match Hashtbl.find_opt nodes seq with
    | Some n -> n
    | None ->
        invalid_arg (Printf.sprintf "Core_tile.restore: unknown node %d" seq)
  in
  Array.iter
    (fun nd ->
      let n = node nd.nd_seq in
      n.dependents <- Array.to_list (Array.map node nd.nd_dependents))
    d.d_nodes;
  Queue.clear t.inflight;
  Array.iter (fun s -> Queue.add (node s) t.inflight) d.d_inflight;
  Queue.clear t.order;
  Array.iter (fun s -> Queue.add (node s) t.order) d.d_order;
  t.ready_arr <- Array.map node d.d_ready;
  t.ready_len <- Array.length d.d_ready;
  t.stash <- Array.map node d.d_stash;
  t.stash_len <- Array.length d.d_stash;
  Pqueue.restore t.events (Pqueue.map_dump node d.d_events);
  Mao.restore t.mao d.d_mao;
  Pqueue.restore t.mao_release d.d_mao_release;
  Array.iteri
    (fun r s -> t.last_writer.(r) <- (if s < 0 then None else Some (node s)))
    d.d_last_writer;
  Array.blit d.d_fu_busy 0 t.fu_busy 0 (Array.length t.fu_busy);
  t.next_seq <- d.d_next_seq;
  t.live_dbbs <- d.d_live_dbbs;
  Array.blit d.d_live_per_bb 0 t.live_per_bb 0 (Array.length t.live_per_bb);
  t.last_term <- (if d.d_last_term < 0 then None else Some (node d.d_last_term));
  (match (t.predictor, d.d_predictor) with
  | Some p, Some pd -> Predictor.restore p pd
  | None, None -> ()
  | _ -> invalid_arg "Core_tile.restore: branch-predictor mismatch");
  t.pending_mispredict <- d.d_pending_mispredict;
  t.launch_enabled <- true;
  t.trace_done <- d.d_trace_done;
  t.done_ <- d.d_done;
  t.stats.completed_instrs <- d.d_stats.(0);
  t.stats.finish_cycle <- d.d_stats.(1);
  t.stats.dbbs_launched <- d.d_stats.(2);
  t.stats.mem_accesses <- d.d_stats.(3);
  t.stats.branch.Branch.predictions <- d.d_stats.(4);
  t.stats.branch.Branch.mispredictions <- d.d_stats.(5);
  t.stats.energy_pj <- d.d_energy_pj;
  Array.blit d.d_issued_by_class 0 t.stats.issued_by_class 0
    (Array.length t.stats.issued_by_class);
  Profile.restore t.prof d.d_prof;
  match (t.lat_hist, d.d_lat_hist) with
  | Some h, Some hd -> Mosaic_obs.Metrics.hist_restore h hd
  | None, None -> ()
  | _ -> invalid_arg "Core_tile.restore: latency-histogram mismatch"
