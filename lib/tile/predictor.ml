open Mosaic_ir

type kind = Two_bit | Gshare of { history_bits : int }

type t = {
  kind : kind;
  counters : int array;  (** 2-bit saturating: 0,1 not-taken; 2,3 taken *)
  mask : int;
  mutable history : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create ?(table_bits = 10) kind =
  if table_bits <= 0 || table_bits > 20 then
    invalid_arg "Predictor.create: table_bits out of range";
  let size = 1 lsl table_bits in
  {
    kind;
    counters = Array.make size 2 (* weakly taken *);
    mask = size - 1;
    history = 0;
    predictions = 0;
    mispredictions = 0;
  }

let index t ~branch_id =
  match t.kind with
  | Two_bit -> branch_id land t.mask
  | Gshare { history_bits } ->
      let hist_mask = (1 lsl history_bits) - 1 in
      (branch_id lxor (t.history land hist_mask)) land t.mask

let predict t ~branch_id (term : Instr.t) =
  match term.Instr.op with
  | Op.Br target -> Some target
  | Op.Cond_br (taken, not_taken) ->
      let c = t.counters.(index t ~branch_id) in
      Some (if c >= 2 then taken else not_taken)
  | _ -> None

let train t ~branch_id (term : Instr.t) ~actual =
  match term.Instr.op with
  | Op.Cond_br (taken, _) ->
      t.predictions <- t.predictions + 1;
      let idx = index t ~branch_id in
      let was_taken = actual = taken in
      let c = t.counters.(idx) in
      let predicted_taken = c >= 2 in
      if predicted_taken <> was_taken then
        t.mispredictions <- t.mispredictions + 1;
      t.counters.(idx) <-
        (if was_taken then Stdlib.min 3 (c + 1) else Stdlib.max 0 (c - 1));
      (match t.kind with
      | Gshare _ ->
          t.history <- (t.history lsl 1) lor (if was_taken then 1 else 0)
      | Two_bit -> ())
  | Op.Br _ ->
      (* Unconditional: always right, still counted for accuracy. *)
      t.predictions <- t.predictions + 1
  | _ -> ()

let stats t = (t.predictions, t.mispredictions)

(* Snapshot: counters plus history and accuracy counts ([kind]/[mask] are
   configuration, re-supplied by the restored tile's config). *)

type dump = {
  d_counters : int array;
  d_history : int;
  d_predictions : int;
  d_mispredictions : int;
}

let dump t =
  {
    d_counters = Array.copy t.counters;
    d_history = t.history;
    d_predictions = t.predictions;
    d_mispredictions = t.mispredictions;
  }

let restore t d =
  if Array.length d.d_counters <> Array.length t.counters then
    invalid_arg "Predictor.restore: table size mismatch";
  Array.blit d.d_counters 0 t.counters 0 (Array.length t.counters);
  t.history <- d.d_history;
  t.predictions <- d.d_predictions;
  t.mispredictions <- d.d_mispredictions

(* Functional training for the fast-forward path: observe the outcome of
   [term] at [branch_id] going to [actual], updating counters/history but
   not the accuracy counts (fast-forwarded branches are not predictions —
   they keep the tables warm for the next detailed interval). *)
let observe t ~branch_id (term : Instr.t) ~actual =
  match term.Instr.op with
  | Op.Cond_br (taken, _) -> (
      let idx = index t ~branch_id in
      let was_taken = actual = taken in
      let c = t.counters.(idx) in
      t.counters.(idx) <-
        (if was_taken then Stdlib.min 3 (c + 1) else Stdlib.max 0 (c - 1));
      match t.kind with
      | Gshare _ ->
          t.history <- (t.history lsl 1) lor (if was_taken then 1 else 0)
      | Two_bit -> ())
  | _ -> ()
