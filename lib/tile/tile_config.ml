open Mosaic_ir

type t = {
  name : string;
  issue_width : int;
  window_size : int;
  lsq_size : int;
  in_order : bool;
  fu_limits : (Op.op_class * int) list;
  latencies : (Op.op_class * int) list;
  energies_pj : (Op.op_class * float) list;
  live_dbb_limit : int option;
  max_live_dbbs : int;
  branch : Branch.policy;
  perfect_alias : bool;
  clock_divider : int;
  atomic_extra_latency : int;
  comm_latency : int;
  fetch_per_cycle : int;
  area_mm2 : float;
  static_power_w : float;
}

let default_latencies =
  [
    (Op.C_ialu, 1);
    (Op.C_imul, 3);
    (Op.C_idiv, 18);
    (Op.C_falu, 3);
    (Op.C_fmul, 4);
    (Op.C_fdiv, 12);
    (Op.C_fmath, 12);
    (Op.C_agu, 1);
    (Op.C_branch, 1);
    (Op.C_send, 1);
    (Op.C_recv, 1);
    (* load/store/atomic latencies come from the memory hierarchy; the
       values here are only used if a model bypasses it. *)
    (Op.C_load, 1);
    (Op.C_store, 1);
    (Op.C_atomic, 4);
    (Op.C_accel, 1);
  ]

let default_energies_pj =
  [
    (Op.C_ialu, 0.5);
    (Op.C_imul, 2.0);
    (Op.C_idiv, 10.0);
    (Op.C_falu, 1.5);
    (Op.C_fmul, 2.5);
    (Op.C_fdiv, 12.0);
    (Op.C_fmath, 15.0);
    (Op.C_agu, 0.5);
    (Op.C_branch, 0.3);
    (Op.C_send, 1.0);
    (Op.C_recv, 1.0);
    (Op.C_load, 2.0);
    (Op.C_store, 2.0);
    (Op.C_atomic, 4.0);
    (Op.C_accel, 0.0);
  ]

let lookup table ~default cls =
  match List.assoc_opt cls table with Some v -> v | None -> default

let latency cfg cls =
  match List.assoc_opt cls cfg.latencies with
  | Some v -> v
  | None -> lookup default_latencies ~default:1 cls

let energy_pj cfg cls =
  match List.assoc_opt cls cfg.energies_pj with
  | Some v -> v
  | None -> lookup default_energies_pj ~default:1.0 cls

let fu_limit cfg cls =
  match List.assoc_opt cls cfg.fu_limits with
  | Some v -> v
  | None -> max_int

(* Dense index matching the order of [Op.all_classes]. A direct match
   rather than a list scan: the issue path consults this (and the cost
   tables below) for every issue attempt, and the generic-equality walk
   over the class list dominated that path's profile. *)
let class_index = function
  | Op.C_ialu -> 0
  | Op.C_imul -> 1
  | Op.C_idiv -> 2
  | Op.C_falu -> 3
  | Op.C_fmul -> 4
  | Op.C_fdiv -> 5
  | Op.C_fmath -> 6
  | Op.C_agu -> 7
  | Op.C_load -> 8
  | Op.C_store -> 9
  | Op.C_atomic -> 10
  | Op.C_branch -> 11
  | Op.C_send -> 12
  | Op.C_recv -> 13
  | Op.C_accel -> 14

let nclasses = List.length Op.all_classes

(* Dense per-class cost tables, indexed by [class_index]. Tiles compile
   their association-list config into these once at creation so the hot
   paths never run [List.assoc_opt] (which also allocates an option per
   query). *)
let table_of ~f =
  let a = Array.make nclasses (f Op.C_ialu) in
  List.iteri (fun i c -> a.(i) <- f c) Op.all_classes;
  a

let latency_table cfg = table_of ~f:(latency cfg)
let energy_table cfg = table_of ~f:(energy_pj cfg)
let fu_limit_table cfg = table_of ~f:(fu_limit cfg)

let out_of_order =
  {
    name = "ooo";
    issue_width = 4;
    window_size = 128;
    lsq_size = 128;
    in_order = false;
    fu_limits =
      [
        (Op.C_ialu, 4);
        (Op.C_imul, 2);
        (Op.C_idiv, 1);
        (Op.C_falu, 2);
        (Op.C_fmul, 2);
        (Op.C_fdiv, 1);
        (Op.C_fmath, 2);
        (Op.C_agu, 2);
        (Op.C_load, 2);
        (Op.C_store, 1);
        (Op.C_atomic, 1);
      ];
    latencies = [];
    energies_pj = [];
    live_dbb_limit = None;
    max_live_dbbs = 64;
    branch = Branch.Static { penalty = 12 };
    perfect_alias = false;
    clock_divider = 1;
    atomic_extra_latency = 10;
    comm_latency = 1;
    fetch_per_cycle = 4;
    area_mm2 = 8.44;
    static_power_w = 4.0;
  }

(* In-order issue with a small scoreboard: issue strictly in program order
   at width 1, but let issued operations complete out of order (decoupled
   stores/pushes drain in the background). Table II's "window 1" means the
   issue window; a literal one-entry completion window would serialize
   every L1 hit and no in-order core behaves that way. *)
let in_order =
  {
    name = "ino";
    issue_width = 1;
    window_size = 16;
    lsq_size = 4;
    in_order = true;
    fu_limits = [];
    latencies = [];
    energies_pj = [];
    live_dbb_limit = None;
    max_live_dbbs = 4;
    branch = Branch.No_speculation;
    perfect_alias = false;
    clock_divider = 1;
    atomic_extra_latency = 8;
    comm_latency = 1;
    fetch_per_cycle = 1;
    area_mm2 = 1.01;
    static_power_w = 0.5;
  }

let pre_rtl_accelerator ?(live_dbb_limit = 8) ?(fus = 16) () =
  {
    name = "pre-rtl-accel";
    issue_width = 16;
    window_size = 1024;
    lsq_size = 256;
    in_order = false;
    fu_limits =
      List.map (fun c -> (c, fus)) [ Op.C_falu; Op.C_fmul; Op.C_ialu; Op.C_agu ];
    latencies = [];
    energies_pj =
      (* Specialized datapaths spend less per operation than a core. *)
      List.map (fun (c, e) -> (c, e *. 0.2)) default_energies_pj;
    live_dbb_limit = Some live_dbb_limit;
    max_live_dbbs = 4 * live_dbb_limit;
    branch = Branch.Perfect;
    perfect_alias = true;
    clock_divider = 1;
    atomic_extra_latency = 4;
    comm_latency = 1;
    fetch_per_cycle = 8;
    area_mm2 = 2.0;
    static_power_w = 0.2;
  }
