module Int_table = Mosaic_util.Int_table

type kind = K_load | K_store

(* Entries live in a struct-of-arrays ring indexed by absolute position
   (monotonically increasing; slot = position land mask). The previous
   implementation kept an [entry list] with an O(n) append per insert and a
   list rebuild per prune — on the issue path of every memory node. The
   ring appends in O(1), prunes by advancing [head], and [can_issue] scans
   the live window over flat arrays. *)
type t = {
  capacity : int;
  perfect_alias : bool;
  mutable seqs : int array;
  mutable stores : bool array;  (** kind, unpacked: true = store *)
  mutable addrs : int array;
  mutable sizes : int array;
  mutable resolved : bool array;
  mutable completed : bool array;
  mutable head : int;  (** absolute index of the oldest retained entry *)
  mutable tail : int;  (** absolute index one past the newest *)
  index : Int_table.t;  (** seq -> absolute index, pruned entries removed *)
  mutable stall_count : int;
  (* Snapshot of the live window for [can_issue]: ascending absolute
     positions of live (non-completed) entries, and of the live stores
     alone. Rebuilt lazily when membership changed ([snap_dirty]); between
     changes — typically many issue attempts, often whole stalled cycles —
     queries reuse it, turning the O(window) per-attempt scan into a walk
     of just the entries that can actually block. *)
  mutable snap_live : int array;
  mutable snap_nlive : int;
  mutable snap_stores : int array;
  mutable snap_nstores : int;
  mutable snap_dirty : bool;
}

let initial_ring = 64

let create ~capacity ~perfect_alias =
  if capacity <= 0 then invalid_arg "Mao.create: capacity must be positive";
  {
    capacity;
    perfect_alias;
    seqs = Array.make initial_ring 0;
    stores = Array.make initial_ring false;
    addrs = Array.make initial_ring 0;
    sizes = Array.make initial_ring 0;
    resolved = Array.make initial_ring false;
    completed = Array.make initial_ring false;
    head = 0;
    tail = 0;
    index = Int_table.create ~initial_capacity:initial_ring ();
    stall_count = 0;
    snap_live = Array.make initial_ring 0;
    snap_nlive = 0;
    snap_stores = Array.make initial_ring 0;
    snap_nstores = 0;
    snap_dirty = true;
  }

let mask t = Array.length t.seqs - 1

let prune t =
  let m = mask t in
  while t.head < t.tail && t.completed.(t.head land m) do
    Int_table.remove t.index t.seqs.(t.head land m);
    t.head <- t.head + 1
  done

let grow t =
  let old_len = Array.length t.seqs in
  let old_mask = old_len - 1 in
  let len = old_len * 2 in
  let m = len - 1 in
  let seqs = Array.make len 0
  and stores = Array.make len false
  and addrs = Array.make len 0
  and sizes = Array.make len 0
  and resolved = Array.make len false
  and completed = Array.make len false in
  for a = t.head to t.tail - 1 do
    let src = a land old_mask and dst = a land m in
    seqs.(dst) <- t.seqs.(src);
    stores.(dst) <- t.stores.(src);
    addrs.(dst) <- t.addrs.(src);
    sizes.(dst) <- t.sizes.(src);
    resolved.(dst) <- t.resolved.(src);
    completed.(dst) <- t.completed.(src)
  done;
  t.seqs <- seqs;
  t.stores <- stores;
  t.addrs <- addrs;
  t.sizes <- sizes;
  t.resolved <- resolved;
  t.completed <- completed

let insert t ~seq ~kind ~addr ~size =
  if Int_table.mem t.index seq then
    invalid_arg (Printf.sprintf "Mao.insert: duplicate seq %d" seq);
  if t.tail - t.head = Array.length t.seqs then grow t;
  let s = t.tail land mask t in
  t.seqs.(s) <- seq;
  t.stores.(s) <- (kind = K_store);
  t.addrs.(s) <- addr;
  t.sizes.(s) <- size;
  t.resolved.(s) <- t.perfect_alias;
  t.completed.(s) <- false;
  Int_table.set t.index seq t.tail;
  t.tail <- t.tail + 1;
  t.snap_dirty <- true

let find t seq =
  let a = Int_table.find t.index seq ~default:min_int in
  if a = min_int then invalid_arg (Printf.sprintf "Mao: unknown seq %d" seq);
  a

let resolve t ~seq = t.resolved.(find t seq land mask t) <- true

let overlaps t i j =
  t.addrs.(i) < t.addrs.(j) + t.sizes.(j)
  && t.addrs.(j) < t.addrs.(i) + t.sizes.(i)

(* [me] and [older] are slots of live (non-completed) entries. *)
let conflicts t ~me older =
  if not t.resolved.(older) then true
  else if not t.resolved.(me) then true
  else overlaps t me older

let rebuild_snapshot t =
  let m = mask t in
  let need = t.tail - t.head in
  if Array.length t.snap_live < need then begin
    let cap = ref (Array.length t.snap_live * 2) in
    while !cap < need do cap := !cap * 2 done;
    t.snap_live <- Array.make !cap 0;
    t.snap_stores <- Array.make !cap 0
  end;
  let nl = ref 0 in
  let ns = ref 0 in
  for a = t.head to t.tail - 1 do
    let s = a land m in
    if not t.completed.(s) then begin
      t.snap_live.(!nl) <- a;
      incr nl;
      if t.stores.(s) then begin
        t.snap_stores.(!ns) <- a;
        incr ns
      end
    end
  done;
  t.snap_nlive <- !nl;
  t.snap_nstores <- !ns;
  t.snap_dirty <- false

let can_issue t ~seq =
  prune t;
  if t.snap_dirty then rebuild_snapshot t;
  let me_abs = find t seq in
  let m = mask t in
  let me = me_abs land m in
  let me_load = not t.stores.(me) in
  (* Rank of [me] among live entries = its index in the ascending
     snapshot (binary search; [me] is live, so it is present). *)
  let lo = ref 0 in
  let hi = ref t.snap_nlive in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.snap_live.(mid) <= me_abs then lo := mid else hi := mid
  done;
  let rank = !lo in
  let ok =
    (* Inside the capacity window of oldest in-flight entries? *)
    if rank >= t.capacity then false
    else begin
      (* Only stores can block a load; anything older can block a store. *)
      let arr = if me_load then t.snap_stores else t.snap_live in
      let n = if me_load then t.snap_nstores else t.snap_nlive in
      let i = ref 0 in
      let blocked = ref false in
      while (not !blocked) && !i < n && arr.(!i) < me_abs do
        if conflicts t ~me (arr.(!i) land m) then blocked := true else incr i
      done;
      not !blocked
    end
  in
  if not ok then t.stall_count <- t.stall_count + 1;
  ok

let complete t ~seq =
  t.completed.(find t seq land mask t) <- true;
  t.snap_dirty <- true;
  prune t

let occupancy t =
  prune t;
  let m = mask t in
  let n = ref 0 in
  for a = t.head to t.tail - 1 do
    if not t.completed.(a land m) then incr n
  done;
  !n

let stalls t = t.stall_count

(* --- Snapshot support ---

   Ring arrays verbatim (slot = abs land mask, so layout is fixed by
   [head]/[tail] and array length) plus the seq index table. The lazy
   [can_issue] snapshot is not dumped: restore marks it dirty and it is
   rebuilt deterministically on first use. *)

type dump = {
  d_seqs : int array;
  d_stores : bool array;
  d_addrs : int array;
  d_sizes : int array;
  d_resolved : bool array;
  d_completed : bool array;
  d_head : int;
  d_tail : int;
  d_index : Int_table.dump;
  d_stall_count : int;
}

let dump t =
  {
    d_seqs = Array.copy t.seqs;
    d_stores = Array.copy t.stores;
    d_addrs = Array.copy t.addrs;
    d_sizes = Array.copy t.sizes;
    d_resolved = Array.copy t.resolved;
    d_completed = Array.copy t.completed;
    d_head = t.head;
    d_tail = t.tail;
    d_index = Int_table.dump t.index;
    d_stall_count = t.stall_count;
  }

let restore t d =
  t.seqs <- Array.copy d.d_seqs;
  t.stores <- Array.copy d.d_stores;
  t.addrs <- Array.copy d.d_addrs;
  t.sizes <- Array.copy d.d_sizes;
  t.resolved <- Array.copy d.d_resolved;
  t.completed <- Array.copy d.d_completed;
  t.head <- d.d_head;
  t.tail <- d.d_tail;
  Int_table.restore t.index d.d_index;
  t.stall_count <- d.d_stall_count;
  t.snap_dirty <- true
