(** Memory Address Orderer (§II-A) — the structure that enforces true memory
    dependencies, instantiable as a traditional LSQ (§III-A).

    Entries are inserted in program order at node creation. Before a store
    issues it must see no incomplete older memory access with a matching or
    unresolved address; a load only checks older stores. With perfect
    address-alias speculation (§III-C) all addresses are resolved up front
    from the trace, so only true (same-address) conflicts stall.

    Capacity models the LSQ: an operation may issue only while it sits
    within the [capacity] oldest in-flight entries. *)

type kind = K_load | K_store

type t

val create : capacity:int -> perfect_alias:bool -> t

(** [insert t ~seq ~kind ~addr ~size] adds the entry for node [seq]
    (program order; [seq]s must be strictly increasing). With perfect alias
    speculation the entry starts resolved. *)
val insert : t -> seq:int -> kind:kind -> addr:int -> size:int -> unit

(** Mark the node's address as resolved (its operands completed). *)
val resolve : t -> seq:int -> unit

(** Whether the memory node [seq] may issue now: inside the capacity window
    and no conflicting older entry. Raises [Invalid_argument] for an
    unknown [seq]. *)
val can_issue : t -> seq:int -> bool

(** Remove the entry once the access completes. *)
val complete : t -> seq:int -> unit

(** In-flight (incomplete) entries. *)
val occupancy : t -> int

(** Number of issue rejections due to ordering or capacity (for stats). *)
val stalls : t -> int

(** {1 Snapshots} — ring contents and seq index verbatim; the lazy issue
    snapshot is rebuilt on first use after [restore]. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
