(* Per-tile cycle-accounting store for the stall profiler.

   Dense int-array counters (same idiom as the tile's per-class cost
   tables): one slot per Stall cause, plus per-basic-block and
   per-static-instruction roll-up matrices indexed [bid * ncauses + cause]
   / [iid * ncauses + cause]. All recording is allocation-free; the
   disabled [null] profile shares empty arrays and every operation guards
   on [enabled], so the unprofiled hot path pays one load+branch per
   tile-cycle.

   Scratch protocol (driven by Core_tile.step): [reset_scan] clears the
   per-cycle "first blocked candidate" note; [note_fail] records the first
   issue-scan failure of the cycle; the end-of-cycle classifier books
   exactly one cause per tile-cycle via [book]/[book_cause]. [book_last]
   re-books the previous attribution (sub-clock-edge cycles and
   fast-forwarded quiescent stretches replay the frozen cause — see
   DESIGN.md "Cycle accounting"). *)

module Stall = Mosaic_obs.Stall

type t = {
  enabled : bool;
  label : string;  (** kernel name, for hot-spot reports *)
  causes : int array;  (** cycles per cause, length [Stall.ncauses] *)
  by_bb : int array;  (** [nblocks * ncauses] roll-up *)
  by_instr : int array;  (** [ninstrs * ncauses] roll-up *)
  nblocks : int;
  ninstrs : int;
  mutable fail_cause : int;  (** first blocked candidate this cycle; -1 none *)
  mutable fail_iid : int;
  mutable fail_bid : int;
  mutable last_cause : int;  (** frozen attribution for replay *)
  mutable last_iid : int;
  mutable last_bid : int;
}

let null =
  {
    enabled = false;
    label = "";
    causes = [||];
    by_bb = [||];
    by_instr = [||];
    nblocks = 0;
    ninstrs = 0;
    fail_cause = -1;
    fail_iid = -1;
    fail_bid = -1;
    last_cause = Stall.index Stall.Idle;
    last_iid = -1;
    last_bid = -1;
  }

let create ~label ~nblocks ~ninstrs =
  {
    enabled = true;
    label;
    causes = Array.make Stall.ncauses 0;
    by_bb = Array.make (Stdlib.max 1 nblocks * Stall.ncauses) 0;
    by_instr = Array.make (Stdlib.max 1 ninstrs * Stall.ncauses) 0;
    nblocks;
    ninstrs;
    fail_cause = -1;
    fail_iid = -1;
    fail_bid = -1;
    last_cause = Stall.index Stall.Idle;
    last_iid = -1;
    last_bid = -1;
  }

let enabled t = t.enabled
let label t = t.label

let reset_scan t = if t.enabled then t.fail_cause <- -1

(* First failure of the cycle wins: the issue scan visits candidates in
   seq order, and the oldest blocked instruction is the one actually
   holding the window back. *)
let note_fail t ~cause ~iid ~bid =
  if t.enabled && t.fail_cause < 0 then begin
    t.fail_cause <- Stall.index cause;
    t.fail_iid <- iid;
    t.fail_bid <- bid
  end

(* Attribute one cycle. [iid]/[bid] may be -1 (no culprit: the cycle
   lands in the per-tile totals but no roll-up row). *)
let book_idx t ~cause ~iid ~bid =
  if t.enabled then begin
    t.causes.(cause) <- t.causes.(cause) + 1;
    if bid >= 0 then begin
      let o = (bid * Stall.ncauses) + cause in
      t.by_bb.(o) <- t.by_bb.(o) + 1
    end;
    if iid >= 0 then begin
      let o = (iid * Stall.ncauses) + cause in
      t.by_instr.(o) <- t.by_instr.(o) + 1
    end;
    t.last_cause <- cause;
    t.last_iid <- iid;
    t.last_bid <- bid
  end

let book t ~cause ~iid ~bid = book_idx t ~cause:(Stall.index cause) ~iid ~bid
let book_cause t cause = book t ~cause ~iid:(-1) ~bid:(-1)

(* Book the noted scan failure, if any; returns false when none was
   recorded this cycle. *)
let book_fail t =
  if t.enabled && t.fail_cause >= 0 then begin
    book_idx t ~cause:t.fail_cause ~iid:t.fail_iid ~bid:t.fail_bid;
    true
  end
  else false

(* Replay the frozen attribution for [n] more cycles: sub-edge cycles of
   divided clocks (n = 1) and fast-forwarded quiescent stretches. The
   scheduler only skips cycles where tile state is provably frozen, so
   this books exactly what a cycle-by-cycle sweep would. *)
let book_repeat t n =
  if t.enabled && n > 0 then begin
    let cause = t.last_cause in
    t.causes.(cause) <- t.causes.(cause) + n;
    if t.last_bid >= 0 then begin
      let o = (t.last_bid * Stall.ncauses) + cause in
      t.by_bb.(o) <- t.by_bb.(o) + n
    end;
    if t.last_iid >= 0 then begin
      let o = (t.last_iid * Stall.ncauses) + cause in
      t.by_instr.(o) <- t.by_instr.(o) + n
    end
  end

let book_last t = book_repeat t 1

(* --- Read-out --- *)

let count t cause = if t.enabled then t.causes.(Stall.index cause) else 0
let counts t = if t.enabled then Array.copy t.causes else Array.make Stall.ncauses 0
let total t = Array.fold_left ( + ) 0 t.causes

let bb_count t ~bid cause =
  if t.enabled && bid >= 0 && bid < t.nblocks then
    t.by_bb.((bid * Stall.ncauses) + Stall.index cause)
  else 0

let instr_count t ~iid cause =
  if t.enabled && iid >= 0 && iid < t.ninstrs then
    t.by_instr.((iid * Stall.ncauses) + Stall.index cause)
  else 0

let nblocks t = t.nblocks
let ninstrs t = t.ninstrs

(* --- Snapshot support ---

   Counter arrays plus the scratch/frozen attribution fields; the [null]
   profile dumps (and restores from) an empty image so plain runs
   round-trip for free. *)

type dump = {
  d_causes : int array;
  d_by_bb : int array;
  d_by_instr : int array;
  d_scratch : int array;  (** fail/last cause-iid-bid, 6 slots *)
}

let dump t =
  {
    d_causes = Array.copy t.causes;
    d_by_bb = Array.copy t.by_bb;
    d_by_instr = Array.copy t.by_instr;
    d_scratch =
      [|
        t.fail_cause; t.fail_iid; t.fail_bid; t.last_cause; t.last_iid;
        t.last_bid;
      |];
  }

let restore t d =
  if
    Array.length d.d_causes <> Array.length t.causes
    || Array.length d.d_by_bb <> Array.length t.by_bb
    || Array.length d.d_by_instr <> Array.length t.by_instr
  then invalid_arg "Profile.restore: shape mismatch";
  Array.blit d.d_causes 0 t.causes 0 (Array.length t.causes);
  Array.blit d.d_by_bb 0 t.by_bb 0 (Array.length t.by_bb);
  Array.blit d.d_by_instr 0 t.by_instr 0 (Array.length t.by_instr);
  if t.enabled then begin
    t.fail_cause <- d.d_scratch.(0);
    t.fail_iid <- d.d_scratch.(1);
    t.fail_bid <- d.d_scratch.(2);
    t.last_cause <- d.d_scratch.(3);
    t.last_iid <- d.d_scratch.(4);
    t.last_bid <- d.d_scratch.(5)
  end
