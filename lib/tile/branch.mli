(** Control-flow speculation policies (§III-C).

    Without speculation a new DBB launches only once the previous DBB's
    terminator completes. With speculation the launch happens immediately
    when the modeled predictor agrees with the trace; a misprediction
    charges the penalty after the terminator resolves. MosaicSim supports
    static and perfect prediction (dynamic predictors are the paper's future
    work). *)

type policy =
  | No_speculation
  | Static of { penalty : int }
      (** backward-taken / forward-not-taken heuristic *)
  | Dynamic of { kind : Predictor.kind; penalty : int }
      (** trace-trained dynamic predictor (see {!Predictor}) *)
  | Perfect

(** Misprediction penalty knob of a policy; 0 for policies without one
    ([No_speculation] stalls on terminator resolution instead,
    [Perfect] never redirects). *)
val penalty : policy -> int

(** [predict ~policy ~bid term] is the block id a static predictor picks for
    the terminator [term] of block [bid]; [None] when the policy never
    predicts (no speculation) or the terminator is a return. *)
val predict :
  policy:policy -> bid:int -> Mosaic_ir.Instr.t -> int option

(** [predict] without the option: -1 when the policy never predicts.
    Allocation-free, for the per-launch gate. *)
val predict_id : policy:policy -> bid:int -> Mosaic_ir.Instr.t -> int

type stats = { mutable predictions : int; mutable mispredictions : int }

val fresh_stats : unit -> stats
