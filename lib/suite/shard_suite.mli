(** The multi-tile workload suite that measures and guards the sharded
    scheduler. Shared by the bench suite (publishes [speed.shard.*]) and
    [tools/check_cycle_drift --sharded] (asserts bit-identical cycles
    against the committed baseline), so both always run exactly the same
    simulations. *)

type entry = {
  name : string;
  ntiles : int;
  run : shards:int -> Mosaic.Soc.result;
      (** builds (or fetches from the trace store) the workload's trace
          and simulates it with the given shard count; [shards:1] is the
          serial scheduler *)
}

val entries : entry list
