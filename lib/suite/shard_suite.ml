(* The multi-tile workloads that the sharded scheduler is measured and
   guarded on. Bench publishes their serial/sharded timings and cycles as
   [speed.shard.*]; [tools/check_cycle_drift --sharded] re-runs them
   against the committed baseline. One definition here keeps the two in
   exact agreement — a guard that ran different workloads than the bench
   published would guard nothing. *)

module W = Mosaic_workloads
module TC = Mosaic_tile.Tile_config
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets

type entry = { name : string; ntiles : int; run : shards:int -> Soc.result }

let with_shards cfg shards = { cfg with Soc.shards }

(* DAE pairs: [pairs] access tiles feeding [pairs] execute tiles over the
   interleaver — the heaviest cross-shard traffic in the repertoire. *)
let dae_run inst ~pairs ~shards =
  let access = inst.W.Runner.kernel ^ "_access"
  and execute = inst.W.Runner.kernel ^ "_execute" in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then access else execute), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero_cached inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then access else execute);
          tile_config = TC.in_order;
        })
  in
  Soc.run
    (with_shards Presets.dae_soc shards)
    ~program:inst.W.Runner.program ~trace ~tiles

let homog_run inst ~ntiles ~tile_config ~cfg ~shards =
  let trace = W.Runner.trace_cached inst ~ntiles in
  Soc.run_homogeneous (with_shards cfg shards)
    ~program:inst.W.Runner.program ~trace ~tile_config

(* Dataset parameters match the bench suite's figures so warm trace
   caches are shared with it. The mix covers both sharded fast paths:
   the DAE/projection entries run on [dae_soc] (no coherence, no L1
   prefetch — L1 hits parallelize), spmv on [xeon_soc] (L1 prefetcher
   on — every access is globally ordered). *)
let entries =
  [
    {
      name = "projection-dae";
      ntiles = 4;
      run =
        (fun ~shards ->
          let inst, _ =
            W.Projection.dae_instance ~n_left:512 ~n_right:1024 ~degree:8 ()
          in
          dae_run inst ~pairs:2 ~shards);
    };
    {
      name = "ewsd-dae";
      ntiles = 4;
      run =
        (fun ~shards ->
          let inst, _ =
            W.Ewsd.dae_instance ~rows:2048 ~cols:2048 ~per_row:16 ()
          in
          dae_run inst ~pairs:2 ~shards);
    };
    {
      name = "projection-homog";
      ntiles = 4;
      run =
        (fun ~shards ->
          let inst =
            W.Projection.instance ~n_left:512 ~n_right:1024 ~degree:8 ()
          in
          homog_run inst ~ntiles:4 ~tile_config:TC.in_order
            ~cfg:Presets.dae_soc ~shards);
    };
    {
      name = "spmv-xeon";
      ntiles = 2;
      run =
        (fun ~shards ->
          let inst = W.Registry.instance "spmv" in
          homog_run inst ~ntiles:2 ~tile_config:TC.out_of_order
            ~cfg:Presets.xeon_soc ~shards);
    };
  ]
