(** `.mir` files as runnable workload instances.

    Turns a parsed {!Mosaic_ir.Mir.t} into a {!Runner.t}: the launch
    directive picks the kernel and arguments, and init/set directives
    become the dataset [setup], applied through the same seeded
    {!Datasets} generators the builder-DSL workloads use — so a faithful
    `.mir` port has a bit-identical post-setup memory image, trace-store
    digest, and cycle count to its OCaml twin. *)

(** Build an instance from parsed metadata + program. [name] overrides
    the `; workload:` directive. Without a `; launch:` directive the
    program must contain exactly one parameterless kernel. Raises
    [Failure] on inconsistent metadata (unknown globals, generator/size
    mismatches, missing launch). *)
val of_mir : ?name:string -> Mosaic_ir.Mir.t -> Runner.t

(** Parse source text and build the instance. Raises [Failure] carrying
    rendered diagnostics on parse errors. *)
val of_source : ?path:string -> string -> Runner.t

val load_file : string -> Runner.t

(** {1 Corpus}

    The repo ships reference workloads in `corpus/*.mir`; these locate it
    by walking up from the current directory (tests run under `_build`). *)

val corpus_dir : unit -> string option
val corpus_dir_exn : unit -> string
val corpus_names : unit -> string list

(** [corpus_path name] is the path of `corpus/<name>.mir`. *)
val corpus_path : string -> string

val load_corpus : string -> Runner.t
