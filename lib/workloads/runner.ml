module Interp = Mosaic_trace.Interp
module Store = Mosaic_trace.Store
module Validate = Mosaic_ir.Validate
module Span = Mosaic_obs.Span

type t = {
  name : string;
  program : Mosaic_ir.Program.t;
  kernel : string;
  args : Mosaic_ir.Value.t list;
  setup : Interp.t -> unit;
  check : Interp.t -> bool;
}

let run_checked ~check inst it =
  let trace = Interp.run it in
  if check && not (inst.check it) then
    failwith (Printf.sprintf "workload %s: wrong answer" inst.name);
  trace

(* "trace_gen" spans cover the whole acquisition — dataset setup plus
   interpretation on a miss, or setup plus decode on a cache hit — so
   host.trace_gen_seconds is the wall-clock a run spent obtaining its
   trace, whatever the source. *)
let run_interp ?(check = true) inst it =
  Span.with_span "trace_gen" (fun () ->
      Mosaic_accel.Accel_kinds.register_functional it;
      inst.setup it;
      run_checked ~check inst it)

let trace ?check inst ~ntiles =
  Validate.check_exn inst.program;
  let it =
    Interp.create inst.program ~kernel:inst.kernel ~ntiles ~args:inst.args
  in
  run_interp ?check inst it

let trace_hetero ?check inst ~tiles =
  Validate.check_exn inst.program;
  let it = Interp.create_hetero inst.program ~label:inst.name ~tiles in
  run_interp ?check inst it

(* The cached path still creates the interpreter and runs dataset setup
   (cheap, and the post-setup memory image is part of the cache key); only
   the expensive [Interp.run] is skipped on a hit. On a miss the prepared
   interpreter is consumed by [Store.fetch]'s generate thunk, so the trace
   a hit returns is bit-identical to the one a miss would have produced. *)
let cached ?(check = true) inst ~label ~tiles it =
  Span.with_span "trace_gen" (fun () ->
      Mosaic_accel.Accel_kinds.register_functional it;
      inst.setup it;
      let digest =
        Store.workload_digest ~program:inst.program ~label ~tiles
          ~mem:(Interp.memory_contents it)
      in
      Store.fetch ~digest ~generate:(fun () -> run_checked ~check inst it))

let trace_cached_full ?check inst ~ntiles =
  Validate.check_exn inst.program;
  let it =
    Interp.create inst.program ~kernel:inst.kernel ~ntiles ~args:inst.args
  in
  cached ?check inst ~label:inst.kernel
    ~tiles:(Array.make ntiles (inst.kernel, inst.args))
    it

let trace_cached ?check inst ~ntiles =
  fst (trace_cached_full ?check inst ~ntiles)

let trace_hetero_cached_full ?check inst ~tiles =
  Validate.check_exn inst.program;
  let it = Interp.create_hetero inst.program ~label:inst.name ~tiles in
  cached ?check inst ~label:inst.name ~tiles it

let trace_hetero_cached ?check inst ~tiles =
  fst (trace_hetero_cached_full ?check inst ~tiles)

let execute inst ~ntiles =
  Validate.check_exn inst.program;
  let it =
    Interp.create inst.program ~kernel:inst.kernel ~ntiles ~args:inst.args
  in
  let tr = run_interp ~check:true inst it in
  (it, tr)

(* Independent simulations share no mutable state (every Soc/Interp run owns
   its own records), so a batch parallelizes across OCaml 5 domains. The
   domain pool writes each task's result into its input-order slot, so the
   output is identical to [List.map (fun f -> f ()) tasks] regardless of
   [jobs] — callers can flip parallelism on without re-validating output. *)
let run_batch ~jobs tasks =
  Array.to_list (Mosaic_util.Domain_pool.run ~jobs (Array.of_list tasks))
