module Interp = Mosaic_trace.Interp
module Validate = Mosaic_ir.Validate

type t = {
  name : string;
  program : Mosaic_ir.Program.t;
  kernel : string;
  args : Mosaic_ir.Value.t list;
  setup : Interp.t -> unit;
  check : Interp.t -> bool;
}

let run_interp ?(check = true) inst it =
  Mosaic_accel.Accel_kinds.register_functional it;
  inst.setup it;
  let trace = Interp.run it in
  if check && not (inst.check it) then
    failwith (Printf.sprintf "workload %s: wrong answer" inst.name);
  trace

let trace ?check inst ~ntiles =
  Validate.check_exn inst.program;
  let it =
    Interp.create inst.program ~kernel:inst.kernel ~ntiles ~args:inst.args
  in
  run_interp ?check inst it

let trace_hetero ?check inst ~tiles =
  Validate.check_exn inst.program;
  let it = Interp.create_hetero inst.program ~label:inst.name ~tiles in
  run_interp ?check inst it

let execute inst ~ntiles =
  Validate.check_exn inst.program;
  let it =
    Interp.create inst.program ~kernel:inst.kernel ~ntiles ~args:inst.args
  in
  let tr = run_interp ~check:true inst it in
  (it, tr)

(* Independent simulations share no mutable state (every Soc/Interp run owns
   its own records), so a batch parallelizes across OCaml 5 domains. The
   domain pool writes each task's result into its input-order slot, so the
   output is identical to [List.map (fun f -> f ()) tasks] regardless of
   [jobs] — callers can flip parallelism on without re-validating output. *)
let run_batch ~jobs tasks =
  Array.to_list (Mosaic_util.Domain_pool.run ~jobs (Array.of_list tasks))
