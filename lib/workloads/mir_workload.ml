(* `.mir` files as runnable workload instances.

   Bridges the textual frontend to the Runner flow: the file's directive
   headers name the kernel launch and the seeded dataset generators, and
   this module applies them so a `.mir` port of a builder-DSL workload
   produces the exact same post-setup memory image — and therefore the
   same trace-store digest and the same simulated cycles. *)

module Ir = Mosaic_ir
module Interp = Mosaic_trace.Interp

let fill_floats inst (g : Ir.Program.global) a ~offset =
  if Array.length a <> g.elems then
    failwith
      (Printf.sprintf "init @%s: generator yields %d values, global has %d"
         g.gname (Array.length a) g.elems);
  Array.iteri
    (fun i x -> Interp.poke_global inst g i (Ir.Value.of_float (x +. offset)))
    a

let fill_ints inst (g : Ir.Program.global) a =
  if Array.length a <> g.elems then
    failwith
      (Printf.sprintf "init @%s: generator yields %d values, global has %d"
         g.gname (Array.length a) g.elems);
  Array.iteri (fun i x -> Interp.poke_global inst g i (Ir.Value.of_int x)) a

let csr_field (csr : Datasets.csr) = function
  | Ir.Mir.Row_ptr -> csr.row_ptr
  | Ir.Mir.Cols -> csr.cols
  | Ir.Mir.Values -> failwith "graph/bipartite datasets have no values field"

let apply_init inst (g : Ir.Program.global) (init : Ir.Mir.init) =
  match init with
  | Floats { seed; offset } ->
      fill_floats inst g (Datasets.random_floats ~seed g.elems) ~offset
  | Ints { seed; bound } ->
      fill_ints inst g (Datasets.random_ints ~seed ~bound g.elems)
  | Points { seed } ->
      if g.elems mod 3 <> 0 then
        failwith
          (Printf.sprintf
             "init @%s: points needs a multiple-of-3 element count, got %d"
             g.gname g.elems);
      fill_floats inst g (Datasets.random_points ~seed (g.elems / 3)) ~offset:0.0
  | Const v ->
      for i = 0 to g.elems - 1 do
        Interp.poke_global inst g i v
      done
  | Values vs ->
      if List.length vs > g.elems then
        failwith
          (Printf.sprintf "init @%s: %d values but only %d elements" g.gname
             (List.length vs) g.elems);
      List.iteri (fun i v -> Interp.poke_global inst g i v) vs
  | Graph { seed; n; degree; field } ->
      fill_ints inst g
        (csr_field (Datasets.random_graph ~seed ~n ~degree) field)
  | Bipartite { seed; n_left; n_right; degree; field } ->
      fill_ints inst g
        (csr_field (Datasets.random_bipartite ~seed ~n_left ~n_right ~degree)
           field)
  | Sparse { seed; rows; cols; per_row; field } -> (
      let s = Datasets.random_sparse ~seed ~rows ~cols ~per_row in
      match field with
      | Values ->
          fill_floats inst g s.values ~offset:0.0
      | (Row_ptr | Cols) as f -> fill_ints inst g (csr_field s.shape f))

let global_exn prog name =
  match Ir.Program.find_global prog name with
  | Some g -> g
  | None -> failwith (Printf.sprintf "unknown global @%s" name)

let setup_of_meta prog (meta : Ir.Mir.meta) inst =
  List.iter
    (fun (gname, init) -> apply_init inst (global_exn prog gname) init)
    meta.inits;
  List.iter
    (fun (gname, i, v) -> Interp.poke_global inst (global_exn prog gname) i v)
    meta.sets

let launch_of prog (meta : Ir.Mir.meta) ~what =
  match meta.launch with
  | Some l -> l
  | None -> (
      match Ir.Program.funcs prog with
      | [ f ] when f.Ir.Func.nparams = 0 ->
          { Ir.Mir.kernel = f.Ir.Func.name; args = [] }
      | _ ->
          failwith
            (Printf.sprintf
               "%s: no '; launch:' directive and no unique parameterless \
                kernel to default to"
               what))

let of_mir ?name (mir : Ir.Mir.t) =
  let what =
    match (name, mir.meta.workload) with
    | Some n, _ | None, Some n -> n
    | None, None -> "mir"
  in
  let launch = launch_of mir.program mir.meta ~what in
  {
    Runner.name = what;
    program = mir.program;
    kernel = launch.kernel;
    args = launch.args;
    setup = setup_of_meta mir.program mir.meta;
    check = (fun _ -> true);
  }

let of_source ?path text =
  match Ir.Parse.mir ?path text with
  | Ok mir ->
      let name =
        match (mir.meta.workload, path) with
        | Some _, _ -> None
        | None, Some p -> Some Filename.(remove_extension (basename p))
        | None, None -> None
      in
      of_mir ?name mir
  | Error diags ->
      failwith (Ir.Parse.render ?path ~source:text diags)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path = of_source ~path (read_file path)

(* ---- corpus discovery ----

   The corpus lives in `corpus/` at the repo root. Tests and tools run
   from `_build/...`, so walk upwards from the working directory until a
   `corpus/` with `.mir` files appears. *)

let is_corpus_dir d =
  Sys.file_exists d && Sys.is_directory d
  && Array.exists (fun f -> Filename.check_suffix f ".mir") (Sys.readdir d)

let corpus_dir () =
  let rec search dir depth =
    if depth > 8 then None
    else
      let cand = Filename.concat dir "corpus" in
      if is_corpus_dir cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else search parent (depth + 1)
  in
  search (Sys.getcwd ()) 0

let corpus_dir_exn () =
  match corpus_dir () with
  | Some d -> d
  | None -> failwith "corpus/ directory not found above the working directory"

let corpus_names () =
  let d = corpus_dir_exn () in
  Sys.readdir d |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mir")
  |> List.map Filename.remove_extension
  |> List.sort compare

let corpus_path name =
  Filename.concat (corpus_dir_exn ()) (name ^ ".mir")

let load_corpus name = load_file (corpus_path name)
