let parboil_names =
  [
    "bfs";
    "cutcp";
    "histo";
    "lbm";
    "mri-gridding";
    "mri-q";
    "sad";
    "sgemm";
    "spmv";
    "stencil";
    "tpacf";
  ]

(* sgemm-accel offloads the multiply to the gemm accelerator model — the
   same instance the bench speed section and the PLM sweep guards use. *)
let all_names =
  parboil_names @ [ "projection"; "ewsd"; "sinkhorn"; "sgemm-accel" ]

let instance = function
  | "bfs" -> Bfs.instance ~n:8192 ~degree:8 ()
  | "cutcp" -> Cutcp.instance ~grid_points:256 ~atoms:256 ~cutoff:0.5 ()
  | "histo" -> Histo.instance ~n:(64 * 1024) ~bins:256 ()
  | "lbm" -> Lbm.instance ~h:64 ~w:64 ()
  | "mri-gridding" -> Mri_gridding.instance ~samples:(32 * 1024) ~grid:1024 ()
  | "mri-q" -> Mriq.instance ~voxels:256 ~samples:256 ()
  | "sad" -> Sad.instance ~blocks:256 ~block_size:16 ~offsets:8 ()
  | "sgemm" -> Sgemm.instance ~m:40 ~n:40 ~k:40 ()
  | "sgemm-accel" -> Sgemm.instance ~accel:true ~m:64 ~n:64 ~k:64 ()
  | "spmv" -> Spmv.instance ~rows:4096 ~cols:4096 ~per_row:12 ()
  | "stencil" -> Stencil.instance ~h:128 ~w:128 ()
  | "tpacf" -> Tpacf.instance ~points:192 ~bins:8 ()
  | "projection" -> Projection.instance ~n_left:512 ~n_right:512 ~degree:8 ()
  | "ewsd" -> Ewsd.instance ~rows:1024 ~cols:1024 ~per_row:16 ()
  | "sinkhorn" ->
      Sinkhorn.instance ~dim:32 ~rows:512 ~cols:512 ~per_row:12 ~reps:2 ()
  | name -> invalid_arg (Printf.sprintf "Registry.instance: unknown %s" name)
