(** Workload instances and the host-side flow that turns them into traces.

    An instance bundles everything the toolchain needs: the program (IR +
    globals), the kernel entry point and its arguments, dataset setup, and a
    correctness check run against the interpreter's final memory — so every
    benchmark is verified functionally before its trace is trusted. *)

type t = {
  name : string;
  program : Mosaic_ir.Program.t;
  kernel : string;
  args : Mosaic_ir.Value.t list;
  setup : Mosaic_trace.Interp.t -> unit;
  check : Mosaic_trace.Interp.t -> bool;
}

(** [trace ?check instance ~ntiles] validates the program, executes it on
    [ntiles] SPMD tiles with accelerator functional models registered,
    optionally verifies the result (default [true]; raises [Failure] on a
    wrong answer), and returns the dynamic traces. *)
val trace : ?check:bool -> t -> ntiles:int -> Mosaic_trace.Trace.t

(** Like {!trace} but for heterogeneous tile/kernel assignments (DAE
    pairs). [tiles] gives (kernel, args) per tile; setup/check come from the
    instance. *)
val trace_hetero :
  ?check:bool ->
  t ->
  tiles:(string * Mosaic_ir.Value.t list) array ->
  Mosaic_trace.Trace.t

(** {1 Cached tracing}

    Same results as {!trace}/{!trace_hetero}, but routed through the
    {!Mosaic_trace.Store} trace store: the workload is interpreted at most
    once per process (domain-safe — concurrent {!run_batch} tasks
    requesting the same workload share one interpretation) and at most
    once per cache directory across processes. Dataset setup still runs
    (its memory image is part of the cache key); only interpretation is
    skipped, and the functional [check] with it — a cached trace was
    checked when it was generated. The [_full] variants also return where
    the trace came from and how long it took. *)

val trace_cached : ?check:bool -> t -> ntiles:int -> Mosaic_trace.Trace.t

val trace_cached_full :
  ?check:bool ->
  t ->
  ntiles:int ->
  Mosaic_trace.Trace.t * Mosaic_trace.Store.info

val trace_hetero_cached :
  ?check:bool ->
  t ->
  tiles:(string * Mosaic_ir.Value.t list) array ->
  Mosaic_trace.Trace.t

val trace_hetero_cached_full :
  ?check:bool ->
  t ->
  tiles:(string * Mosaic_ir.Value.t list) array ->
  Mosaic_trace.Trace.t * Mosaic_trace.Store.info

(** Run the interpreter and return it (for tests that inspect memory). *)
val execute : t -> ntiles:int -> Mosaic_trace.Interp.t * Mosaic_trace.Trace.t

(** [run_batch ~jobs tasks] runs independent simulation thunks across
    [jobs] domains (serially when [jobs <= 1]) and returns their results in
    input order. Simulated results are bit-identical to a serial
    [List.map]; only host-time observations (wall seconds, MIPS) differ
    under contention. *)
val run_batch : jobs:int -> (unit -> 'a) list -> 'a list
