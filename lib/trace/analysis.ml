open Mosaic_ir
module Fenwick = Mosaic_util.Fenwick

type t = {
  dyn_instrs : int;
  mem_accesses : int;
  mem_ratio : float;
  footprint_lines : int;
  reuse_hist : (int * int) list;
  stride_regular : float;
}

let line_size = 64

let bucket_bounds =
  (* powers of two up to 2^24 lines (1 GB of 64B lines), then cold *)
  List.init 25 (fun i -> 1 lsl i) @ [ max_int ]

(* Replay the control path popping each memory instruction's address
   stream, yielding the true dynamic access order. *)
let dynamic_addresses (func : Func.t) (tt : Trace.tile_trace) =
  let cursor = Trace.Cursor.create tt in
  let out = Mosaic_util.Int_vec.create ~initial_capacity:1024 () in
  let rec walk () =
    match Trace.Cursor.next_block cursor with
    | None -> ()
    | Some bid ->
        let blk = Func.block func bid in
        Array.iter
          (fun (i : Instr.t) ->
            if Op.is_mem i.Instr.op then
              Mosaic_util.Int_vec.push out
                (Trace.Cursor.next_addr cursor ~instr_id:i.Instr.id))
          blk.Func.instrs;
        walk ()
  in
  walk ();
  Mosaic_util.Int_vec.to_array out

(* LRU stack distances via the classic Fenwick-tree algorithm: for access i
   to a line last touched at j, the stack distance is the number of
   distinct lines touched in (j, i). *)
let reuse_histogram addrs =
  let n = Array.length addrs in
  let bit = Fenwick.create (Stdlib.max n 1) in
  let last = Hashtbl.create 4096 in
  let buckets = Array.make (List.length bucket_bounds) 0 in
  let bucket_of d =
    let rec find k = function
      | [] -> k - 1
      | bound :: rest -> if d < bound then k else find (k + 1) rest
    in
    find 0 bucket_bounds
  in
  Array.iteri
    (fun i addr ->
      let line = addr / line_size in
      (match Hashtbl.find_opt last line with
      | Some j ->
          let distance = Fenwick.range_sum bit ~lo:(j + 1) ~hi:(i - 1) in
          buckets.(bucket_of distance) <- buckets.(bucket_of distance) + 1;
          Fenwick.add bit j (-1)
      | None ->
          (* cold miss: infinite distance *)
          let cold = Array.length buckets - 1 in
          buckets.(cold) <- buckets.(cold) + 1);
      Hashtbl.replace last line i;
      Fenwick.add bit i 1)
    addrs;
  (List.map2 (fun bound count -> (bound, count)) bucket_bounds
     (Array.to_list buckets),
   Hashtbl.length last)

(* Per static instruction: does the stride repeat? *)
let stride_regularity (tt : Trace.tile_trace) =
  let regular = ref 0 and total = ref 0 in
  Array.iter
    (fun addrs ->
      let n = Array.length addrs in
      for i = 2 to n - 1 do
        incr total;
        if addrs.(i) - addrs.(i - 1) = addrs.(i - 1) - addrs.(i - 2) then
          incr regular
      done)
    tt.Trace.mem_addrs;
  if !total = 0 then 0.0 else float_of_int !regular /. float_of_int !total

let tile func (tt : Trace.tile_trace) =
  let addrs = dynamic_addresses func tt in
  let reuse_hist, footprint_lines = reuse_histogram addrs in
  let mem_accesses = Array.length addrs in
  {
    dyn_instrs = tt.Trace.dyn_instrs;
    mem_accesses;
    mem_ratio =
      (if tt.Trace.dyn_instrs = 0 then 0.0
       else float_of_int mem_accesses /. float_of_int tt.Trace.dyn_instrs);
    footprint_lines;
    reuse_hist;
    stride_regular = stride_regularity tt;
  }

let whole prog (trace : Trace.t) =
  let parts =
    Array.to_list
      (Array.map
         (fun (tt : Trace.tile_trace) ->
           tile (Program.func_exn prog tt.Trace.kernel) tt)
         trace.Trace.tiles)
  in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 parts in
  let dyn_instrs = sum (fun p -> p.dyn_instrs) in
  let mem_accesses = sum (fun p -> p.mem_accesses) in
  let reuse_hist =
    List.map
      (fun bound ->
        ( bound,
          List.fold_left
            (fun acc p -> acc + List.assoc bound p.reuse_hist)
            0 parts ))
      bucket_bounds
  in
  let weighted_stride =
    let total = float_of_int (Stdlib.max mem_accesses 1) in
    List.fold_left
      (fun acc p ->
        acc +. (p.stride_regular *. float_of_int p.mem_accesses /. total))
      0.0 parts
  in
  {
    dyn_instrs;
    mem_accesses;
    mem_ratio =
      (if dyn_instrs = 0 then 0.0
       else float_of_int mem_accesses /. float_of_int dyn_instrs);
    footprint_lines = sum (fun p -> p.footprint_lines);
    reuse_hist;
    stride_regular = weighted_stride;
  }

let capacity_hit_rate t ~lines =
  if t.mem_accesses = 0 then 0.0
  else
    let hits =
      List.fold_left
        (fun acc (bound, count) -> if bound <= lines then acc + count else acc)
        0 t.reuse_hist
    in
    float_of_int hits /. float_of_int t.mem_accesses

(* ------------------------------------------------------------------ *)
(* Config-independent trace skeleton (incremental DSE)                 *)
(* ------------------------------------------------------------------ *)

let nclasses = List.length Op.all_classes
let classes = Array.of_list Op.all_classes

let class_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i c -> Hashtbl.replace tbl c i) Op.all_classes;
  fun c -> Hashtbl.find tbl c

(* Baseline weights for picking the longest dependence chain. They only
   decide *which* chain is the argmax; the re-timer prices the winning
   chain's composition under each candidate config, so these stay
   config-independent by construction. Memory ops get a mid-hierarchy
   estimate, accelerator calls are priced separately (additive model). *)
let chain_weight = function
  | Op.C_ialu | Op.C_agu | Op.C_branch -> 1
  | Op.C_imul | Op.C_falu -> 3
  | Op.C_fmul -> 4
  | Op.C_fdiv -> 15
  | Op.C_idiv -> 18
  | Op.C_fmath -> 20
  | Op.C_load | Op.C_store -> 30
  | Op.C_atomic -> 40
  | Op.C_send | Op.C_recv -> 5
  | Op.C_accel -> 0

type tile_skeleton = {
  tile : int;
  kernel : string;
  locality : t;
  class_counts : int array;
  cp_classes : int array;
  cp_mem : int;
  cp_atomics : int;
  cp_nodes : int;
  sends : int;
  recvs : int;
  accel_calls : (string * Value.t array) array;
}

type skeleton = {
  label : string;
  ntiles : int;
  tiles : tile_skeleton array;
  total_dyn_instrs : int;
}

(* One pass over the control path recovering dynamic def-use chains by
   last-writer tracking (exactly how the tile model wires DBBs at launch).
   Per register we keep the chain depth plus the chain's composition — a
   per-class node count with memory and atomic ops broken out — so the
   argmax chain can be re-priced under any config without re-walking. *)
let dependence_chain (func : Func.t) (tt : Trace.tile_trace) =
  let nregs = Stdlib.max func.Func.nregs 1 in
  let k = nclasses + 2 in
  let mem_slot = nclasses and atomic_slot = nclasses + 1 in
  let reg_depth = Array.make nregs 0 in
  let comp = Array.make (nregs * k) 0 in
  let scratch = Array.make k 0 in
  let best = Array.make k 0 in
  let best_depth = ref 0 in
  let class_counts = Array.make nclasses 0 in
  let sends = ref 0 and recvs = ref 0 in
  Array.iter
    (fun bid ->
      let blk = Func.block func bid in
      Array.iter
        (fun (i : Instr.t) ->
          let cls = Op.classify i.Instr.op in
          let ci = class_index cls in
          class_counts.(ci) <- class_counts.(ci) + 1;
          (match i.Instr.op with
          | Op.Send _ | Op.Load_send _ -> incr sends
          | Op.Recv _ | Op.Store_recv _ -> incr recvs
          | _ -> ());
          (* deepest producer among the registers read *)
          let pd = ref 0 and pr = ref (-1) in
          List.iter
            (fun r ->
              if r < nregs && reg_depth.(r) > !pd then begin
                pd := reg_depth.(r);
                pr := r
              end)
            (Instr.uses i);
          if !pr >= 0 then Array.blit comp (!pr * k) scratch 0 k
          else Array.fill scratch 0 k 0;
          if Op.is_mem i.Instr.op then begin
            scratch.(mem_slot) <- scratch.(mem_slot) + 1;
            if cls = Op.C_atomic then
              scratch.(atomic_slot) <- scratch.(atomic_slot) + 1
          end
          else scratch.(ci) <- scratch.(ci) + 1;
          let nd = !pd + chain_weight cls in
          (match i.Instr.dst with
          | Some r when r < nregs ->
              reg_depth.(r) <- nd;
              Array.blit scratch 0 comp (r * k) k
          | _ -> ());
          if nd > !best_depth then begin
            best_depth := nd;
            Array.blit scratch 0 best 0 k
          end)
        blk.Func.instrs)
    tt.Trace.bb_path;
  let cp_classes = Array.sub best 0 nclasses in
  let cp_nodes = Array.fold_left ( + ) 0 best in
  (class_counts, cp_classes, best.(mem_slot), best.(atomic_slot), cp_nodes,
   !sends, !recvs)

let tile_skeleton (func : Func.t) (tt : Trace.tile_trace) =
  let class_counts, cp_classes, cp_mem, cp_atomics, cp_nodes, sends, recvs =
    dependence_chain func tt
  in
  let accel_calls =
    let acc = ref [] in
    Array.iter
      (fun ((i : Instr.t), _) ->
        match i.Instr.op with
        | Op.Accel kind ->
            Array.iter
              (fun params -> acc := (kind, params) :: !acc)
              tt.Trace.accel_params.(i.Instr.id)
        | _ -> ())
      func.Func.index;
    Array.of_list (List.rev !acc)
  in
  {
    tile = tt.Trace.tile;
    kernel = tt.Trace.kernel;
    locality = tile func tt;
    class_counts;
    cp_classes;
    cp_mem;
    cp_atomics;
    cp_nodes;
    sends;
    recvs;
    accel_calls;
  }

let skeleton prog (trace : Trace.t) =
  {
    label = trace.Trace.kernel;
    ntiles = trace.Trace.ntiles;
    tiles =
      Array.map
        (fun (tt : Trace.tile_trace) ->
          tile_skeleton (Program.func_exn prog tt.Trace.kernel) tt)
        trace.Trace.tiles;
    total_dyn_instrs = Trace.total_dyn_instrs trace;
  }

let pp_skeleton ppf (s : skeleton) =
  Format.fprintf ppf "@[<v>skeleton: %s (%d tiles, %d dyn instrs)@ " s.label
    s.ntiles s.total_dyn_instrs;
  Array.iter
    (fun ts ->
      Format.fprintf ppf
        "tile %d (%s): %d instrs, chain %d nodes (%d mem, %d atomic), %d \
         sends, %d recvs, %d accel calls@ "
        ts.tile ts.kernel ts.locality.dyn_instrs ts.cp_nodes ts.cp_mem
        ts.cp_atomics ts.sends ts.recvs
        (Array.length ts.accel_calls);
      Format.fprintf ppf "  mix:";
      Array.iteri
        (fun i cls ->
          if ts.class_counts.(i) > 0 then
            Format.fprintf ppf " %s=%d" (Op.class_to_string cls)
              ts.class_counts.(i))
        classes;
      Format.fprintf ppf "@ ")
    s.tiles;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>dyn instrs: %d@ mem accesses: %d (ratio %.3f)@ footprint: %d lines \
     (%d KB)@ stride regularity: %.1f%%@ reuse hist (lines <= bound: \
     accesses):@ "
    t.dyn_instrs t.mem_accesses t.mem_ratio t.footprint_lines
    (t.footprint_lines * line_size / 1024)
    (100.0 *. t.stride_regular);
  List.iter
    (fun (bound, count) ->
      if count > 0 then
        if bound = max_int then Format.fprintf ppf "  cold: %d@ " count
        else Format.fprintf ppf "  <=%d: %d@ " bound count)
    t.reuse_hist;
  Format.fprintf ppf "@]"
