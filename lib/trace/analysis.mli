(** Trace-based workload characterization.

    Beyond the IPC characterization of Fig 6, the traces support the
    deeper locality analyses an early-stage designer wants when sizing
    caches and choosing accelerators: LRU reuse distances (what capacity
    would each level need), footprints, and stride profiles (would a
    stream prefetcher help). Used by the CLI's [characterize] command and
    the bench harness. *)

type t = {
  dyn_instrs : int;
  mem_accesses : int;
  mem_ratio : float;  (** memory accesses / dynamic instructions *)
  footprint_lines : int;  (** distinct 64B lines touched *)
  reuse_hist : (int * int) list;
      (** (log2 bucket upper bound in lines, accesses) — LRU stack
          distances; the final bucket with bound [max_int] is cold misses *)
  stride_regular : float;
      (** fraction of accesses whose per-instruction stride repeats the
          previous one (prefetcher-friendliness) *)
}

(** Analyze one tile's access stream in true dynamic order (reconstructed
    by replaying the control path of its kernel). *)
val tile : Mosaic_ir.Func.t -> Trace.tile_trace -> t

(** Aggregate over all tiles of a trace. *)
val whole : Mosaic_ir.Program.t -> Trace.t -> t

(** [capacity_hit_rate t ~lines] estimates the hit rate of a fully
    associative LRU cache with [lines] lines from the reuse histogram
    (upper bound on set-associative behaviour). *)
val capacity_hit_rate : t -> lines:int -> float

val pp : Format.formatter -> t -> unit

(** {1 Config-independent trace skeleton}

    One extra pass over a cached trace extracts everything the incremental
    DSE re-timer ([Mosaic.Retime]) needs to price a design point without
    re-simulating: the dynamic instruction mix, the composition of the
    longest dynamic dependence chain (recovered by last-writer tracking,
    the same def-use wiring the tile model builds at DBB launch), the LRU
    reuse/footprint summary ({!t}), inter-tile communication counts, and
    the accelerator invocation list. All of it depends only on the trace —
    which is config-independent by construction — never on cache sizes,
    latencies, widths or PLM parameters. *)

val nclasses : int
(** Number of opcode classes ([Op.all_classes]). *)

val classes : Mosaic_ir.Op.op_class array
(** Opcode classes in the dense index order used by the skeleton arrays. *)

val class_index : Mosaic_ir.Op.op_class -> int

type tile_skeleton = {
  tile : int;
  kernel : string;
  locality : t;  (** the reuse/footprint characterization above *)
  class_counts : int array;
      (** dynamic instructions per opcode class, indexed like {!classes} *)
  cp_classes : int array;
      (** non-memory nodes on the longest dependence chain, per class *)
  cp_mem : int;  (** loads/stores/atomics on that chain *)
  cp_atomics : int;  (** atomics among [cp_mem] *)
  cp_nodes : int;  (** total chain length in instructions *)
  sends : int;  (** dynamic send/load_send occurrences *)
  recvs : int;  (** dynamic recv/store_recv occurrences *)
  accel_calls : (string * Mosaic_ir.Value.t array) array;
      (** accelerator invocations (kind, parameters), config-independent *)
}

type skeleton = {
  label : string;
  ntiles : int;
  tiles : tile_skeleton array;
  total_dyn_instrs : int;
}

val tile_skeleton : Mosaic_ir.Func.t -> Trace.tile_trace -> tile_skeleton

(** Extract the skeleton of a whole trace (one pass per tile). *)
val skeleton : Mosaic_ir.Program.t -> Trace.t -> skeleton

val pp_skeleton : Format.formatter -> skeleton -> unit
