(** The step-based IR interpreter — native execution substitute.

    Plays the role of the paper's instrumented x86 run: it executes the
    kernel for real (so control flow and memory addresses are the true
    ones), while recording the control-flow and memory traces the simulator
    consumes. SPMD execution runs [ntiles] logical tiles round-robin over a
    shared memory; [send]/[recv] channels block like their hardware
    counterparts, so decoupled (DAE) slices interleave correctly. *)

type t

(** [create prog ~kernel ~ntiles ~args] readies an execution of
    [kernel] on [ntiles] tiles, each receiving [args] in its parameter
    registers. Raises [Invalid_argument] if the kernel does not exist or
    [args] does not match its parameter count. *)
val create :
  Mosaic_ir.Program.t ->
  kernel:string ->
  ntiles:int ->
  args:Mosaic_ir.Value.t list ->
  t

(** Heterogeneous execution: tile [i] runs [fst tiles.(i)] with the given
    arguments. This is how sliced DAE pairs (access kernel on one tile,
    execute kernel on another) are launched. *)
val create_hetero :
  Mosaic_ir.Program.t ->
  label:string ->
  tiles:(string * Mosaic_ir.Value.t list) array ->
  t

(** Register the functional behaviour of an accelerator kind (what the
    hardware would compute), so kernels that off-load work still produce
    correct memory contents. Unregistered kinds are traced but compute
    nothing. *)
val register_accel :
  t -> string -> (t -> Mosaic_ir.Value.t array -> unit) -> unit

(** {1 Memory access (dataset setup and result checking)} *)

val poke : t -> int -> Mosaic_ir.Value.t -> unit
val peek : t -> int -> Mosaic_ir.Value.t

(** Index-based access to a global array's elements. *)
val poke_global :
  t -> Mosaic_ir.Program.global -> int -> Mosaic_ir.Value.t -> unit

val peek_global : t -> Mosaic_ir.Program.global -> int -> Mosaic_ir.Value.t

(** Snapshot of every memory binding, sorted by address. Taken after
    [setup] and before [run], this is the dataset the kernel will read —
    the part of a workload's identity that lives outside the program text,
    digested by {!Store.workload_digest} for trace-cache keying. *)
val memory_contents : t -> (int * Mosaic_ir.Value.t) array

(** {1 Execution} *)

exception Deadlock of string
exception Step_limit of int

(** [run t] executes all tiles to completion and returns the traces.
    Raises [Deadlock] when every unfinished tile is blocked on [recv], and
    [Step_limit] when the dynamic instruction budget (default 200M) is
    exceeded. Can only be called once per handle. *)
val run : ?max_steps:int -> t -> Trace.t

(** Dynamic instructions executed so far (all tiles). *)
val steps : t -> int
