open Mosaic_ir
module Int_vec = Mosaic_util.Int_vec

type status = Running | Blocked | Finished

type tile_state = {
  tile : int;
  kernel : Func.t;
  regs : Value.t array;
  mutable bid : int;
  mutable ip : int;
  mutable status : status;
  bb_path : Int_vec.t;
  mem_accs : Int_vec.t array;
  accel_accs : Value.t array list ref array;
  send_accs : Int_vec.t array;
  mutable dyn : int;
}

type t = {
  prog : Program.t;
  label : string;
  ntiles : int;
  mem : (int, Value.t) Hashtbl.t;
  channels : (int * int, Value.t Queue.t) Hashtbl.t;
  tiles : tile_state array;
  accel_fns : (string, t -> Value.t array -> unit) Hashtbl.t;
  mutable total_steps : int;
  mutable ran : bool;
}

exception Deadlock of string
exception Step_limit of int

let make_tile prog tile (kernel_name, args) =
  let f = Program.func_exn prog kernel_name in
  if List.length args <> f.Func.nparams then
    invalid_arg
      (Printf.sprintf "Interp: %s expects %d args, got %d" kernel_name
         f.Func.nparams (List.length args));
  let regs = Array.make (Stdlib.max f.Func.nregs 1) Value.zero in
  List.iteri (fun i v -> regs.(i) <- v) args;
  {
    tile;
    kernel = f;
    regs;
    bid = 0;
    ip = 0;
    status = Running;
    bb_path = Int_vec.create ();
    mem_accs = Array.init f.Func.ninstrs (fun _ -> Int_vec.create ());
    accel_accs = Array.init f.Func.ninstrs (fun _ -> ref []);
    send_accs = Array.init f.Func.ninstrs (fun _ -> Int_vec.create ());
    dyn = 0;
  }

let create_hetero prog ~label ~tiles =
  let ntiles = Array.length tiles in
  if ntiles <= 0 then invalid_arg "Interp.create_hetero: no tiles";
  let tiles = Array.mapi (fun i spec -> make_tile prog i spec) tiles in
  Array.iter (fun ts -> Int_vec.push ts.bb_path 0) tiles;
  {
    prog;
    label;
    ntiles;
    mem = Hashtbl.create 4096;
    channels = Hashtbl.create 16;
    tiles;
    accel_fns = Hashtbl.create 4;
    total_steps = 0;
    ran = false;
  }

let create prog ~kernel ~ntiles ~args =
  if ntiles <= 0 then invalid_arg "Interp.create: ntiles must be positive";
  create_hetero prog ~label:kernel
    ~tiles:(Array.make ntiles (kernel, args))

let register_accel t name fn = Hashtbl.replace t.accel_fns name fn

let poke t addr v = Hashtbl.replace t.mem addr v

let peek t addr =
  match Hashtbl.find_opt t.mem addr with Some v -> v | None -> Value.zero

let global_addr (g : Program.global) i =
  if i < 0 || i >= g.Program.elems then
    invalid_arg
      (Printf.sprintf "Interp: index %d out of bounds for @%s" i
         g.Program.gname);
  g.Program.base + (i * g.Program.elem_size)

let poke_global t g i v = poke t (global_addr g i) v

let peek_global t g i = peek t (global_addr g i)

(* [poke] only ever [Hashtbl.replace]s, so each address has one binding;
   sorting makes the snapshot independent of hash order. *)
let memory_contents t =
  let arr = Array.make (Hashtbl.length t.mem) (0, Value.zero) in
  let i = ref 0 in
  Hashtbl.iter
    (fun addr v ->
      arr.(!i) <- (addr, v);
      incr i)
    t.mem;
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) arr;
  arr

let channel_queue t ~dst ~chan =
  let key = (dst, chan) in
  match Hashtbl.find_opt t.channels key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.channels key q;
      q

let eval ts operand =
  match operand with
  | Instr.Reg r -> ts.regs.(r)
  | Instr.Imm v -> v
  | Instr.Glob _ -> assert false (* resolved in [eval_full] *)
  | Instr.Tid -> Value.of_int ts.tile
  | Instr.Ntiles -> assert false

let eval_full t ts operand =
  match operand with
  | Instr.Glob g -> Value.of_int (Program.global_exn t.prog g).Program.base
  | Instr.Ntiles -> Value.of_int t.ntiles
  | Instr.Reg _ | Instr.Imm _ | Instr.Tid -> eval ts operand

let set_dst ts (i : Instr.t) v =
  match i.Instr.dst with
  | Some d -> ts.regs.(d) <- v
  | None -> ()

(* Execute the instruction at [ts.ip]; returns [false] when the tile must
   block (recv on an empty channel) without advancing. *)
let exec_instr t ts (i : Instr.t) =
  let arg n = eval_full t ts i.Instr.args.(n) in
  let goto target =
    ts.bid <- target;
    ts.ip <- 0;
    Int_vec.push ts.bb_path target
  in
  let advance () = ts.ip <- ts.ip + 1 in
  match i.Instr.op with
  | Op.Binop op ->
      set_dst ts i
        (Value.Int (Eval.ibinop op (Value.to_int64 (arg 0)) (Value.to_int64 (arg 1))));
      advance ();
      true
  | Op.Fbinop op ->
      set_dst ts i
        (Value.Float (Eval.fbinop op (Value.to_float (arg 0)) (Value.to_float (arg 1))));
      advance ();
      true
  | Op.Icmp p ->
      set_dst ts i
        (Value.of_bool (Eval.pred_int p (Value.to_int64 (arg 0)) (Value.to_int64 (arg 1))));
      advance ();
      true
  | Op.Fcmp p ->
      set_dst ts i
        (Value.of_bool (Eval.pred_float p (Value.to_float (arg 0)) (Value.to_float (arg 1))));
      advance ();
      true
  | Op.Select ->
      set_dst ts i (if Value.to_bool (arg 0) then arg 1 else arg 2);
      advance ();
      true
  | Op.Cast c ->
      let v = arg 0 in
      let result =
        match c with
        | Op.Sitofp -> Value.Float (Value.to_float v)
        | Op.Fptosi -> Value.Int (Int64.of_float (Value.to_float v))
        | Op.Zext -> Value.Int (Value.to_int64 v)
        | Op.Trunc ->
            Value.Int (Int64.of_int32 (Int64.to_int32 (Value.to_int64 v)))
      in
      set_dst ts i result;
      advance ();
      true
  | Op.Math m ->
      let args = Array.map (fun a -> Value.to_float (eval_full t ts a)) i.Instr.args in
      set_dst ts i (Value.Float (Eval.math m args));
      advance ();
      true
  | Op.Gep scale ->
      let base = Value.to_int (arg 0) and idx = Value.to_int (arg 1) in
      set_dst ts i (Value.of_int (base + (idx * scale)));
      advance ();
      true
  | Op.Load _ ->
      let addr = Value.to_int (arg 0) in
      Int_vec.push ts.mem_accs.(i.Instr.id) addr;
      set_dst ts i (peek t addr);
      advance ();
      true
  | Op.Store _ ->
      let addr = Value.to_int (arg 0) in
      Int_vec.push ts.mem_accs.(i.Instr.id) addr;
      poke t addr (arg 1);
      advance ();
      true
  | Op.Atomic_rmw (rmw, _) ->
      let addr = Value.to_int (arg 0) in
      Int_vec.push ts.mem_accs.(i.Instr.id) addr;
      let old = peek t addr in
      poke t addr (Eval.rmw rmw old (arg 1));
      set_dst ts i old;
      advance ();
      true
  | Op.Send chan ->
      let dst = Value.to_int (arg 0) in
      if dst < 0 || dst >= t.ntiles then
        invalid_arg (Printf.sprintf "Interp: send to bad tile %d" dst);
      Int_vec.push ts.send_accs.(i.Instr.id) dst;
      Queue.add (arg 1) (channel_queue t ~dst ~chan);
      advance ();
      true
  | Op.Load_send (chan, _) ->
      let dst = Value.to_int (arg 0) in
      if dst < 0 || dst >= t.ntiles then
        invalid_arg (Printf.sprintf "Interp: load_send to bad tile %d" dst);
      let addr = Value.to_int (arg 1) in
      Int_vec.push ts.mem_accs.(i.Instr.id) addr;
      Int_vec.push ts.send_accs.(i.Instr.id) dst;
      Queue.add (peek t addr) (channel_queue t ~dst ~chan);
      advance ();
      true
  | Op.Recv chan -> (
      let q = channel_queue t ~dst:ts.tile ~chan in
      match Queue.take_opt q with
      | Some v ->
          set_dst ts i v;
          advance ();
          true
      | None ->
          ts.status <- Blocked;
          false)
  | Op.Store_recv (chan, _, rmw) -> (
      let q = channel_queue t ~dst:ts.tile ~chan in
      match Queue.take_opt q with
      | Some v ->
          let addr = Value.to_int (arg 0) in
          Int_vec.push ts.mem_accs.(i.Instr.id) addr;
          (match rmw with
          | Some r -> poke t addr (Eval.rmw r (peek t addr) v)
          | None -> poke t addr v);
          advance ();
          true
      | None ->
          ts.status <- Blocked;
          false)
  | Op.Accel kind ->
      let params = Array.map (eval_full t ts) i.Instr.args in
      let cell = ts.accel_accs.(i.Instr.id) in
      cell := params :: !cell;
      (match Hashtbl.find_opt t.accel_fns kind with
      | Some fn -> fn t params
      | None -> ());
      advance ();
      true
  | Op.Br target ->
      goto target;
      true
  | Op.Cond_br (taken, not_taken) ->
      goto (if Value.to_bool (arg 0) then taken else not_taken);
      true
  | Op.Ret ->
      ts.status <- Finished;
      true

let step_tile t ts ~quantum ~max_steps =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && ts.status = Running && !executed < quantum do
    if t.total_steps >= max_steps then raise (Step_limit t.total_steps);
    let blk = Func.block ts.kernel ts.bid in
    let i = blk.Func.instrs.(ts.ip) in
    if exec_instr t ts i then begin
      ts.dyn <- ts.dyn + 1;
      t.total_steps <- t.total_steps + 1;
      incr executed
    end
    else continue := false
  done;
  !executed

let steps t = t.total_steps

let finalize_trace t =
  let tiles =
    Array.map
      (fun ts ->
        {
          Trace.tile = ts.tile;
          kernel = ts.kernel.Func.name;
          bb_path = Int_vec.to_array ts.bb_path;
          mem_addrs = Array.map Int_vec.to_array ts.mem_accs;
          accel_params =
            Array.map (fun cell -> Array.of_list (List.rev !cell)) ts.accel_accs;
          send_dsts = Array.map Int_vec.to_array ts.send_accs;
          dyn_instrs = ts.dyn;
        })
      t.tiles
  in
  { Trace.kernel = t.label; ntiles = t.ntiles; tiles }

let run ?(max_steps = 200_000_000) t =
  if t.ran then invalid_arg "Interp.run: handle already consumed";
  t.ran <- true;
  let quantum = 10_000 in
  let all_finished () =
    Array.for_all (fun ts -> ts.status = Finished) t.tiles
  in
  let round () =
    let progressed = ref 0 in
    Array.iter
      (fun ts ->
        if ts.status = Blocked then ts.status <- Running;
        if ts.status = Running then
          progressed := !progressed + step_tile t ts ~quantum ~max_steps)
      t.tiles;
    !progressed
  in
  let rec loop () =
    if not (all_finished ()) then begin
      let progressed = round () in
      if progressed = 0 && not (all_finished ()) then
        raise
          (Deadlock
             (Printf.sprintf "kernel %s: all unfinished tiles blocked on recv"
                t.label));
      loop ()
    end
  in
  loop ();
  finalize_trace t
