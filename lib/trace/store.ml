(* Trace store: generate a dynamic trace once, reuse it everywhere.

   Two layers sit in front of the interpreter:

   - a domain-safe in-process memo (mutex + condition, because
     [Runner.run_batch] fans identical requests across OCaml 5 domains),
     guaranteeing each workload is interpreted at most once per process;
   - a content-addressed on-disk cache of [Trace.save] containers keyed by
     the workload digest, so separate invocations (warm bench runs, CI
     re-runs) skip interpretation entirely.

   The digest covers everything the trace is a function of: the program
   text, the run label, the per-tile kernel/argument spec, and the
   post-setup memory image (datasets are poked into interpreter memory by
   workload setup closures, so program + args alone would under-key).
   Cache files self-describe via the digest recorded in their header;
   [Trace.load ~expect_digest] rejects collisions from renamed or stale
   files, and any unreadable entry is treated as a miss and rewritten. *)

module Value = Mosaic_ir.Value

(* Bumping this string invalidates every cached trace; do so whenever the
   interpreter's observable semantics change. *)
let semantics_version = "mosaicsim-trace-v1"

let add_value buf v =
  match v with
  | Value.Int i ->
      Buffer.add_char buf 'i';
      Buffer.add_int64_le buf i
  | Value.Float f ->
      Buffer.add_char buf 'f';
      Buffer.add_int64_le buf (Int64.bits_of_float f)

let workload_digest ~program ~label ~tiles ~mem =
  let b = Buffer.create (4096 + (17 * Array.length mem)) in
  Buffer.add_string b semantics_version;
  Buffer.add_char b '\n';
  Buffer.add_string b (Format.asprintf "%a" Mosaic_ir.Pretty.pp_program program);
  Buffer.add_char b '\000';
  Buffer.add_string b label;
  Buffer.add_char b '\000';
  Encode.put_varint b (Array.length tiles);
  Array.iter
    (fun (kernel, args) ->
      Buffer.add_string b kernel;
      Buffer.add_char b '\000';
      Encode.put_varint b (List.length args);
      List.iter (add_value b) args)
    tiles;
  Array.iter
    (fun (addr, v) ->
      Buffer.add_int64_le b (Int64.of_int addr);
      add_value b v)
    mem;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- cache directory resolution ---- *)

let override = ref `Default

let set_cache_dir o = override := o

let default_dir () =
  match Sys.getenv_opt "MOSAICSIM_TRACE_CACHE" with
  | Some "" | Some "off" | Some "none" -> None
  | Some dir -> Some dir
  | None -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some dir when dir <> "" -> Some (Filename.concat dir "mosaicsim")
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some home when home <> "" ->
              Some (Filename.concat (Filename.concat home ".cache") "mosaicsim")
          | _ -> None))

let cache_dir () =
  match !override with
  | `Disabled -> None
  | `Dir dir -> Some dir
  | `Default -> default_dir ()

let cache_file digest =
  Option.map (fun dir -> Filename.concat dir (digest ^ ".mstr")) (cache_dir ())

(* Bytes moved to or from the disk layer, for host.store.* telemetry. *)
let n_disk_bytes = Atomic.make 0

let count_disk_bytes path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> ignore (Atomic.fetch_and_add n_disk_bytes st_size)
  | exception Unix.Unix_error _ -> ()

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The cache is best-effort: an unwritable directory or a lost race must
   never fail the run that produced the trace. *)
let store_to_disk ~digest trace =
  match cache_dir () with
  | None -> ()
  | Some dir -> (
      try
        mkdir_p dir;
        let path = Filename.concat dir (digest ^ ".mstr") in
        let tmp = Filename.temp_file ~temp_dir:dir "trace-" ".tmp" in
        Trace.save ~digest trace tmp;
        Sys.rename tmp path;
        count_disk_bytes path
      with Sys_error _ | Unix.Unix_error _ -> ())

let load_from_disk ~digest =
  match cache_file digest with
  | None -> None
  | Some path when not (Sys.file_exists path) -> None
  | Some path -> (
      try
        let t = Trace.load ~expect_digest:digest path in
        count_disk_bytes path;
        Some t
      with Trace.Format_error _ | Sys_error _ -> None)

(* ---- garbage collection ----

   The cache is append-only in normal operation, so long-lived machines
   accumulate traces for workloads nobody runs anymore. [gc] provides the
   size accounting and an LRU-by-mtime pruning pass: the store is
   content-addressed, so deleting any entry is always safe — the next run
   that needs it regenerates and re-caches it. *)

type gc_report = {
  scanned : int;
  scanned_bytes : int;
  deleted : int;
  deleted_bytes : int;
}

let gc ?max_bytes () =
  match cache_dir () with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        Some { scanned = 0; scanned_bytes = 0; deleted = 0; deleted_bytes = 0 }
      else begin
        let entries =
          Sys.readdir dir |> Array.to_list
          |> List.filter_map (fun name ->
                 if not (Filename.check_suffix name ".mstr") then None
                 else
                   let path = Filename.concat dir name in
                   match Unix.stat path with
                   | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                       Some (path, st_size, st_mtime)
                   | _ -> None
                   | exception Unix.Unix_error _ -> None)
        in
        let scanned = List.length entries in
        let scanned_bytes =
          List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries
        in
        let deleted = ref 0 in
        let deleted_bytes = ref 0 in
        (match max_bytes with
        | None -> ()
        | Some cap ->
            let by_age =
              List.sort (fun (_, _, a) (_, _, b) -> compare a b) entries
            in
            let total = ref scanned_bytes in
            List.iter
              (fun (path, size, _) ->
                if !total > cap then
                  try
                    Sys.remove path;
                    incr deleted;
                    deleted_bytes := !deleted_bytes + size;
                    total := !total - size
                  with Sys_error _ -> ())
              by_age);
        Some
          {
            scanned;
            scanned_bytes;
            deleted = !deleted;
            deleted_bytes = !deleted_bytes;
          }
      end

(* ---- domain-safe memo + single-flight generation ---- *)

type source = Interpreted | Memo_hit | Disk_hit

type info = {
  digest : string;
  source : source;
  cache_file : string option;
  gen_seconds : float;
}

type state = Pending | Ready of Trace.t | Failed of exn

let lock = Mutex.create ()

let cond = Condition.create ()

let memo : (string, state ref) Hashtbl.t = Hashtbl.create 64

let n_interpreted = Atomic.make 0

let n_memo_hits = Atomic.make 0

let n_disk_hits = Atomic.make 0

type stats = {
  interpreted : int;
  memo_hits : int;
  disk_hits : int;
  disk_bytes : int;
}

let stats () =
  {
    interpreted = Atomic.get n_interpreted;
    memo_hits = Atomic.get n_memo_hits;
    disk_hits = Atomic.get n_disk_hits;
    disk_bytes = Atomic.get n_disk_bytes;
  }

let reset () =
  Mutex.lock lock;
  Hashtbl.reset memo;
  Mutex.unlock lock;
  Atomic.set n_interpreted 0;
  Atomic.set n_memo_hits 0;
  Atomic.set n_disk_hits 0;
  Atomic.set n_disk_bytes 0

(* Wait (lock held) until [cell] leaves Pending; unlocks before returning. *)
let rec await cell =
  match !cell with
  | Ready trace ->
      Mutex.unlock lock;
      trace
  | Failed e ->
      Mutex.unlock lock;
      raise e
  | Pending ->
      Condition.wait cond lock;
      await cell

let resolve ~digest cell outcome =
  Mutex.lock lock;
  cell := outcome;
  (* A failed generation is forgotten so a later request retries; waiters
     that already hold [cell] still observe the failure. *)
  (match outcome with Failed _ -> Hashtbl.remove memo digest | _ -> ());
  Condition.broadcast cond;
  Mutex.unlock lock

let fetch ~digest ~generate =
  let t0 = Unix.gettimeofday () in
  let info source =
    {
      digest;
      source;
      cache_file = cache_file digest;
      gen_seconds = Unix.gettimeofday () -. t0;
    }
  in
  Mutex.lock lock;
  match Hashtbl.find_opt memo digest with
  | Some cell ->
      let trace = await cell in
      Atomic.incr n_memo_hits;
      (trace, info Memo_hit)
  | None ->
      let cell = ref Pending in
      Hashtbl.replace memo digest cell;
      Mutex.unlock lock;
      (match load_from_disk ~digest with
      | Some trace ->
          Atomic.incr n_disk_hits;
          resolve ~digest cell (Ready trace);
          (trace, info Disk_hit)
      | None -> (
          match generate () with
          | trace ->
              Atomic.incr n_interpreted;
              store_to_disk ~digest trace;
              resolve ~digest cell (Ready trace);
              (trace, info Interpreted)
          | exception e ->
              resolve ~digest cell (Failed e);
              raise e))
