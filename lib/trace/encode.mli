(** Compact on-disk encodings for traces (§VI-B).

    The paper reports multi-GB memory traces and ~1 GB control traces as the
    cost of accurate dynamic modeling. Two domain-specific encoders recover
    most of that space:

    - control-flow paths are dominated by loop repetition: a period-aware
      run-length code stores [(period, repetitions)] instead of every block
      id;
    - address streams are dominated by strides: zig-zag delta varints store
      a few bytes per access instead of eight.

    Both are exact (lossless) and covered by round-trip tests. The
    whole-trace binary container built on these encoders lives in
    {!Trace.save}/{!Trace.load}; the compressed-footprint accounting is
    {!Trace.compressed_bytes}. *)

(** {1 Varint primitives}

    LEB128 varints plus zig-zag folding for signed deltas, exposed so the
    trace container ({!Trace}) and the cache digest ({!Store}) frame their
    records with the same plumbing. Only non-negative values are written at
    existing call sites; [zigzag] maps a signed value to a non-negative one
    first. *)

val put_varint : Buffer.t -> int -> unit

(** [get_varint bytes pos] returns [(value, next_pos)]. No bounds checking
    beyond [Bytes.get]; callers validating untrusted input should check
    lengths themselves. *)
val get_varint : Bytes.t -> int -> int * int

val zigzag : int -> int
val unzigzag : int -> int

(** {1 Stream encoders} *)

(** Encode a control-flow path (block ids). *)
val encode_control : int array -> Bytes.t

val decode_control : Bytes.t -> int array

(** Encode one instruction's address stream. *)
val encode_addrs : int array -> Bytes.t

val decode_addrs : Bytes.t -> int array
