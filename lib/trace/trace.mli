(** Dynamic traces — the output of the Dynamic Trace Generator (DTG).

    The paper's instrumented native run writes two files per kernel: the
    taken control-flow path (a sequence of basic-block ids) and the address
    stream of every load/store. MosaicSim's accelerator extension adds the
    parameters of each accelerator invocation. Traces here carry exactly
    that, per SPMD tile. *)

type tile_trace = {
  tile : int;
  kernel : string;  (** the kernel this tile executed (tiles may differ) *)
  bb_path : int array;  (** basic-block ids in execution order *)
  mem_addrs : int array array;
      (** indexed by static instruction id; the byte addresses touched by
          that load/store/atomic, in occurrence order *)
  accel_params : Mosaic_ir.Value.t array array array;
      (** indexed by static instruction id; one parameter vector per
          dynamic invocation of that accelerator-call instruction *)
  send_dsts : int array array;
      (** indexed by static instruction id; destination tile of each
          dynamic occurrence of that send instruction *)
  dyn_instrs : int;  (** total dynamic instructions executed by this tile *)
}

type t = {
  kernel : string;  (** label for the run (the user-facing kernel name) *)
  ntiles : int;
  tiles : tile_trace array;
}

(** Total dynamic instructions across all tiles. *)
val total_dyn_instrs : t -> int

(** Total dynamic memory accesses across all tiles. *)
val total_mem_accesses : t -> int

(** On-disk footprint estimate using the paper's encoding: 4 bytes per
    control-flow entry, 8 bytes per memory-trace entry (address), 8 bytes
    per accelerator parameter. Returns (control_bytes, memory_bytes). *)
val storage_bytes : t -> int * int

(** Compressed footprint under the {!Encode} stream encoders:
    (control_bytes, memory_bytes). The §VI-B counterpart of
    {!storage_bytes}. *)
val compressed_bytes : t -> int * int

(** Structural equality, exact on accelerator parameters (NaN floats
    compare equal to themselves, per [Value.equal]). *)
val equal : t -> t -> bool

(** {1 Serialization}

    A versioned binary container built on the {!Encode} stream encoders:
    a ["MSTR"] magic, a format version, an optional workload digest (used
    by {!Store} to detect stale cache entries), an MD5 checksum of the
    payload, then the per-tile streams. Exact and build-independent —
    unlike the Marshal encoding it replaced, a file written by one build
    loads in any other or fails loudly. *)

(** Raised by {!load}/{!of_bytes} on a bad magic, an unsupported format
    version, a truncated or corrupted payload, or a workload-digest
    mismatch. The message says which. *)
exception Format_error of string

(** Container identity, for [mosaicsim version] and run manifests. *)
val magic : string

val format_version : int

(** [to_bytes ?digest t] serializes [t], tagging the container with
    [digest] (default [""]). *)
val to_bytes : ?digest:string -> t -> Bytes.t

(** Inverse of {!to_bytes}: returns the stored digest and the trace.
    Raises {!Format_error} on malformed input. *)
val of_bytes : Bytes.t -> string * t

val save : ?digest:string -> t -> string -> unit

(** [load ?expect_digest path] reads a trace container. When
    [expect_digest] is given, a file whose recorded workload digest
    differs raises {!Format_error} — that is how the cache rejects stale
    entries. *)
val load : ?expect_digest:string -> string -> t

val load_with_digest : string -> string * t

(** A cursor over one tile's trace, consumed by tile models: DBB launches
    pop block ids; each memory instruction pops its next address at DBB
    creation; accelerator calls pop parameter vectors. *)
module Cursor : sig
  type cursor

  val create : tile_trace -> cursor

  (** Next block id on the control path, advancing; [None] at the end. *)
  val next_block : cursor -> int option

  (** Block id [k] entries ahead of the cursor without advancing
      ([lookahead 0] = what [next_block] would return). *)
  val peek_block : cursor -> int -> int option

  (** [peek_block] without the option: -1 at the end of the trace.
      Allocation-free, for per-cycle call sites. *)
  val peek_block_id : cursor -> int -> int

  (** Number of control-path entries already consumed. *)
  val blocks_consumed : cursor -> int

  (** [next_addr c ~instr_id] pops the next address recorded for that
      static memory instruction. Raises [Invalid_argument] if exhausted —
      that means simulator and trace disagree, a bug. *)
  val next_addr : cursor -> instr_id:int -> int

  val next_accel_params : cursor -> instr_id:int -> Mosaic_ir.Value.t array

  (** Destination tile of the next dynamic occurrence of a send. *)
  val next_send_dst : cursor -> instr_id:int -> int

  (** {1 Snapshots} — stream positions only; the trace data is rebuilt
      from the workload on restore. *)

  type dump

  val dump : cursor -> dump

  (** Raises [Invalid_argument] when the dump's stream counts do not match
      the cursor's trace. *)
  val restore : cursor -> dump -> unit
end
