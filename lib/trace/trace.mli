(** Dynamic traces — the output of the Dynamic Trace Generator (DTG).

    The paper's instrumented native run writes two files per kernel: the
    taken control-flow path (a sequence of basic-block ids) and the address
    stream of every load/store. MosaicSim's accelerator extension adds the
    parameters of each accelerator invocation. Traces here carry exactly
    that, per SPMD tile. *)

type tile_trace = {
  tile : int;
  kernel : string;  (** the kernel this tile executed (tiles may differ) *)
  bb_path : int array;  (** basic-block ids in execution order *)
  mem_addrs : int array array;
      (** indexed by static instruction id; the byte addresses touched by
          that load/store/atomic, in occurrence order *)
  accel_params : Mosaic_ir.Value.t array array array;
      (** indexed by static instruction id; one parameter vector per
          dynamic invocation of that accelerator-call instruction *)
  send_dsts : int array array;
      (** indexed by static instruction id; destination tile of each
          dynamic occurrence of that send instruction *)
  dyn_instrs : int;  (** total dynamic instructions executed by this tile *)
}

type t = {
  kernel : string;  (** label for the run (the user-facing kernel name) *)
  ntiles : int;
  tiles : tile_trace array;
}

(** Total dynamic instructions across all tiles. *)
val total_dyn_instrs : t -> int

(** Total dynamic memory accesses across all tiles. *)
val total_mem_accesses : t -> int

(** On-disk footprint estimate using the paper's encoding: 4 bytes per
    control-flow entry, 8 bytes per memory-trace entry (address), 8 bytes
    per accelerator parameter. Returns (control_bytes, memory_bytes). *)
val storage_bytes : t -> int * int

(** Serialize to / from a file (Marshal-based; same build only). *)
val save : t -> string -> unit

val load : string -> t

(** A cursor over one tile's trace, consumed by tile models: DBB launches
    pop block ids; each memory instruction pops its next address at DBB
    creation; accelerator calls pop parameter vectors. *)
module Cursor : sig
  type cursor

  val create : tile_trace -> cursor

  (** Next block id on the control path, advancing; [None] at the end. *)
  val next_block : cursor -> int option

  (** Block id [k] entries ahead of the cursor without advancing
      ([lookahead 0] = what [next_block] would return). *)
  val peek_block : cursor -> int -> int option

  (** [peek_block] without the option: -1 at the end of the trace.
      Allocation-free, for per-cycle call sites. *)
  val peek_block_id : cursor -> int -> int

  (** Number of control-path entries already consumed. *)
  val blocks_consumed : cursor -> int

  (** [next_addr c ~instr_id] pops the next address recorded for that
      static memory instruction. Raises [Invalid_argument] if exhausted —
      that means simulator and trace disagree, a bug. *)
  val next_addr : cursor -> instr_id:int -> int

  val next_accel_params : cursor -> instr_id:int -> Mosaic_ir.Value.t array

  (** Destination tile of the next dynamic occurrence of a send. *)
  val next_send_dst : cursor -> instr_id:int -> int
end
