type tile_trace = {
  tile : int;
  kernel : string;
  bb_path : int array;
  mem_addrs : int array array;
  accel_params : Mosaic_ir.Value.t array array array;
  send_dsts : int array array;
  dyn_instrs : int;
}

type t = { kernel : string; ntiles : int; tiles : tile_trace array }

let total_dyn_instrs t =
  Array.fold_left (fun acc tt -> acc + tt.dyn_instrs) 0 t.tiles

let total_mem_accesses t =
  Array.fold_left
    (fun acc tt ->
      acc
      + Array.fold_left (fun a addrs -> a + Array.length addrs) 0 tt.mem_addrs)
    0 t.tiles

let storage_bytes t =
  let control =
    Array.fold_left (fun acc tt -> acc + (4 * Array.length tt.bb_path)) 0 t.tiles
  in
  let memory =
    8 * total_mem_accesses t
    + Array.fold_left
        (fun acc tt ->
          acc
          + Array.fold_left
              (fun a invocations ->
                a
                + Array.fold_left
                    (fun b params -> b + (8 * Array.length params))
                    0 invocations)
              0 tt.accel_params)
        0 t.tiles
  in
  (control, memory)

let compressed_bytes t =
  Array.fold_left
    (fun (control, memory) tt ->
      let control = control + Bytes.length (Encode.encode_control tt.bb_path) in
      let memory =
        Array.fold_left
          (fun acc addrs ->
            if Array.length addrs = 0 then acc
            else acc + Bytes.length (Encode.encode_addrs addrs))
          memory tt.mem_addrs
      in
      (control, memory))
    (0, 0) t.tiles

let equal_tile a b =
  let arr2 eq x y =
    Array.length x = Array.length y && Array.for_all2 eq x y
  in
  a.tile = b.tile && a.kernel = b.kernel && a.dyn_instrs = b.dyn_instrs
  && a.bb_path = b.bb_path
  && arr2 (fun x y -> x = (y : int array)) a.mem_addrs b.mem_addrs
  && arr2 (fun x y -> x = (y : int array)) a.send_dsts b.send_dsts
  && arr2
       (arr2 (arr2 Mosaic_ir.Value.equal))
       a.accel_params b.accel_params

let equal a b =
  a.kernel = b.kernel && a.ntiles = b.ntiles
  && Array.length a.tiles = Array.length b.tiles
  && Array.for_all2 equal_tile a.tiles b.tiles

(* --- on-disk container ---

   Layout (all integers LEB128 varints unless noted):

     magic   "MSTR" (4 raw bytes)
     version varint (currently 1)
     digest  varint length + bytes (workload digest; "" when untagged)
     md5     16 raw bytes, MD5 of the payload that follows
     payload:
       label str, ntiles, tile-record count, then per tile:
         tile id, kernel str, dyn_instrs,
         framed Encode.encode_control of bb_path,
         mem-stream count,  framed Encode.encode_addrs per stream,
         accel-instr count, per instr: invocation count, per invocation:
           param count, per param: 1 tag byte (0 = Int, 1 = Float) +
           8 bytes little-endian (the int64 / IEEE-754 bits — exact),
         send-instr count,  framed Encode.encode_addrs per stream.

   The checksum makes truncation and bit rot a clean [Format_error]
   instead of an out-of-bounds decode; the version gate does the same for
   files written by a different layout. *)

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let magic = "MSTR"

let format_version = 1

let add_string buf s =
  Encode.put_varint buf (String.length s);
  Buffer.add_string buf s

let add_framed buf bytes =
  Encode.put_varint buf (Bytes.length bytes);
  Buffer.add_bytes buf bytes

let add_value buf v =
  match v with
  | Mosaic_ir.Value.Int i ->
      Buffer.add_char buf '\000';
      Buffer.add_int64_le buf i
  | Mosaic_ir.Value.Float f ->
      Buffer.add_char buf '\001';
      Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_tile buf tt =
  Encode.put_varint buf tt.tile;
  add_string buf tt.kernel;
  Encode.put_varint buf tt.dyn_instrs;
  add_framed buf (Encode.encode_control tt.bb_path);
  Encode.put_varint buf (Array.length tt.mem_addrs);
  Array.iter (fun addrs -> add_framed buf (Encode.encode_addrs addrs)) tt.mem_addrs;
  Encode.put_varint buf (Array.length tt.accel_params);
  Array.iter
    (fun invocations ->
      Encode.put_varint buf (Array.length invocations);
      Array.iter
        (fun params ->
          Encode.put_varint buf (Array.length params);
          Array.iter (add_value buf) params)
        invocations)
    tt.accel_params;
  Encode.put_varint buf (Array.length tt.send_dsts);
  Array.iter (fun ds -> add_framed buf (Encode.encode_addrs ds)) tt.send_dsts

let to_bytes ?(digest = "") t =
  let payload = Buffer.create 4096 in
  add_string payload t.kernel;
  Encode.put_varint payload t.ntiles;
  Encode.put_varint payload (Array.length t.tiles);
  Array.iter (add_tile payload) t.tiles;
  let payload = Buffer.to_bytes payload in
  let buf = Buffer.create (Bytes.length payload + 64) in
  Buffer.add_string buf magic;
  Encode.put_varint buf format_version;
  add_string buf digest;
  Buffer.add_string buf (Digest.bytes payload);
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

(* Bounds-checked reader: any overrun is a [Format_error], never an
   [Invalid_argument] escaping from [Bytes]. *)
type reader = { data : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.data then fail "truncated trace data"

let read_varint r =
  let v = ref 0 and shift = ref 0 in
  let continue = ref true in
  while !continue do
    need r 1;
    let byte = Char.code (Bytes.get r.data r.pos) in
    r.pos <- r.pos + 1;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !v

let read_string r =
  let n = read_varint r in
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_framed r =
  let n = read_varint r in
  need r n;
  let b = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  b

let read_value r =
  need r 9;
  let tag = Bytes.get r.data r.pos in
  let bits = Bytes.get_int64_le r.data (r.pos + 1) in
  r.pos <- r.pos + 9;
  match tag with
  | '\000' -> Mosaic_ir.Value.Int bits
  | '\001' -> Mosaic_ir.Value.Float (Int64.float_of_bits bits)
  | c -> fail "bad value tag %C" c

(* Counts drive [Array.make] + explicit loops (not [Array.init], whose
   evaluation order is unspecified) because decode order is the wire
   order. *)
let read_tile r =
  let tile = read_varint r in
  let kernel = read_string r in
  let dyn_instrs = read_varint r in
  let bb_path = Encode.decode_control (read_framed r) in
  let nmem = read_varint r in
  let mem_addrs = Array.make nmem [||] in
  for i = 0 to nmem - 1 do
    mem_addrs.(i) <- Encode.decode_addrs (read_framed r)
  done;
  let naccel = read_varint r in
  let accel_params = Array.make naccel [||] in
  for i = 0 to naccel - 1 do
    let ninvoc = read_varint r in
    let invocations = Array.make ninvoc [||] in
    for j = 0 to ninvoc - 1 do
      let nparams = read_varint r in
      let params = Array.make nparams Mosaic_ir.Value.zero in
      for k = 0 to nparams - 1 do
        params.(k) <- read_value r
      done;
      invocations.(j) <- params
    done;
    accel_params.(i) <- invocations
  done;
  let nsend = read_varint r in
  let send_dsts = Array.make nsend [||] in
  for i = 0 to nsend - 1 do
    send_dsts.(i) <- Encode.decode_addrs (read_framed r)
  done;
  { tile; kernel; bb_path; mem_addrs; accel_params; send_dsts; dyn_instrs }

let of_bytes data =
  let r = { data; pos = 0 } in
  if Bytes.length data < String.length magic then
    fail "not a MosaicSim trace (file too short)";
  let got_magic = Bytes.sub_string data 0 (String.length magic) in
  if got_magic <> magic then
    fail "not a MosaicSim trace (bad magic %S)" got_magic;
  r.pos <- String.length magic;
  let version = read_varint r in
  if version <> format_version then
    fail "unsupported trace format version %d (this build reads version %d)"
      version format_version;
  let digest = read_string r in
  need r 16;
  let md5 = Bytes.sub_string data r.pos 16 in
  r.pos <- r.pos + 16;
  let payload = Bytes.sub data r.pos (Bytes.length data - r.pos) in
  if Digest.bytes payload <> md5 then
    fail "corrupt trace (payload checksum mismatch)";
  (* The checksum vouches for the payload, so decode errors past this point
     would be encoder bugs — still surfaced as Format_error, not a crash. *)
  let trace =
    try
      let r = { data = payload; pos = 0 } in
      let kernel = read_string r in
      let ntiles = read_varint r in
      let n = read_varint r in
      let tiles = ref [] in
      for _ = 1 to n do
        tiles := read_tile r :: !tiles
      done;
      { kernel; ntiles; tiles = Array.of_list (List.rev !tiles) }
    with
    | Format_error _ as e -> raise e
    | Invalid_argument m | Failure m -> fail "malformed trace payload (%s)" m
  in
  (digest, trace)

let save ?digest t path =
  let bytes = to_bytes ?digest t in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc bytes)

let load_with_digest path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  in
  of_bytes data

let load ?expect_digest path =
  let digest, t = load_with_digest path in
  (match expect_digest with
  | Some d when d <> digest ->
      fail "stale trace %s: workload digest %s, expected %s" path digest d
  | _ -> ());
  t

module Cursor = struct
  type cursor = {
    tt : tile_trace;
    mutable bb_pos : int;
    mem_pos : int array;  (** per static instruction id *)
    accel_pos : int array;
    send_pos : int array;
  }

  let create tt =
    {
      tt;
      bb_pos = 0;
      mem_pos = Array.make (Array.length tt.mem_addrs) 0;
      accel_pos = Array.make (Array.length tt.accel_params) 0;
      send_pos = Array.make (Array.length tt.send_dsts) 0;
    }

  let next_block c =
    if c.bb_pos >= Array.length c.tt.bb_path then None
    else begin
      let b = c.tt.bb_path.(c.bb_pos) in
      c.bb_pos <- c.bb_pos + 1;
      Some b
    end

  let peek_block c k =
    let pos = c.bb_pos + k in
    if pos >= Array.length c.tt.bb_path then None else Some c.tt.bb_path.(pos)

  (* Allocation-free peek for the per-cycle launch path: block ids are
     non-negative, so -1 signals an exhausted trace without the [Some]. *)
  let peek_block_id c k =
    let pos = c.bb_pos + k in
    if pos >= Array.length c.tt.bb_path then -1 else c.tt.bb_path.(pos)

  let blocks_consumed c = c.bb_pos

  let next_addr c ~instr_id =
    let addrs = c.tt.mem_addrs.(instr_id) in
    let pos = c.mem_pos.(instr_id) in
    if pos >= Array.length addrs then
      invalid_arg
        (Printf.sprintf "Trace.Cursor.next_addr: instr %d trace exhausted"
           instr_id);
    c.mem_pos.(instr_id) <- pos + 1;
    addrs.(pos)

  let next_accel_params c ~instr_id =
    let ps = c.tt.accel_params.(instr_id) in
    let pos = c.accel_pos.(instr_id) in
    if pos >= Array.length ps then
      invalid_arg
        (Printf.sprintf
           "Trace.Cursor.next_accel_params: instr %d trace exhausted" instr_id);
    c.accel_pos.(instr_id) <- pos + 1;
    ps.(pos)

  let next_send_dst c ~instr_id =
    let ds = c.tt.send_dsts.(instr_id) in
    let pos = c.send_pos.(instr_id) in
    if pos >= Array.length ds then
      invalid_arg
        (Printf.sprintf "Trace.Cursor.next_send_dst: instr %d trace exhausted"
           instr_id);
    c.send_pos.(instr_id) <- pos + 1;
    ds.(pos)

  (* Snapshot: the cursor is positions only — the trace data itself is
     rebuilt from the workload on restore, so a dump is four position
     vectors. *)

  type dump = {
    d_bb_pos : int;
    d_mem_pos : int array;
    d_accel_pos : int array;
    d_send_pos : int array;
  }

  let dump c =
    {
      d_bb_pos = c.bb_pos;
      d_mem_pos = Array.copy c.mem_pos;
      d_accel_pos = Array.copy c.accel_pos;
      d_send_pos = Array.copy c.send_pos;
    }

  let restore c d =
    if
      Array.length d.d_mem_pos <> Array.length c.mem_pos
      || Array.length d.d_accel_pos <> Array.length c.accel_pos
      || Array.length d.d_send_pos <> Array.length c.send_pos
    then invalid_arg "Trace.Cursor.restore: stream count mismatch";
    c.bb_pos <- d.d_bb_pos;
    Array.blit d.d_mem_pos 0 c.mem_pos 0 (Array.length c.mem_pos);
    Array.blit d.d_accel_pos 0 c.accel_pos 0 (Array.length c.accel_pos);
    Array.blit d.d_send_pos 0 c.send_pos 0 (Array.length c.send_pos)
end
