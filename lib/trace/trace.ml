type tile_trace = {
  tile : int;
  kernel : string;
  bb_path : int array;
  mem_addrs : int array array;
  accel_params : Mosaic_ir.Value.t array array array;
  send_dsts : int array array;
  dyn_instrs : int;
}

type t = { kernel : string; ntiles : int; tiles : tile_trace array }

let total_dyn_instrs t =
  Array.fold_left (fun acc tt -> acc + tt.dyn_instrs) 0 t.tiles

let total_mem_accesses t =
  Array.fold_left
    (fun acc tt ->
      acc
      + Array.fold_left (fun a addrs -> a + Array.length addrs) 0 tt.mem_addrs)
    0 t.tiles

let storage_bytes t =
  let control =
    Array.fold_left (fun acc tt -> acc + (4 * Array.length tt.bb_path)) 0 t.tiles
  in
  let memory =
    8 * total_mem_accesses t
    + Array.fold_left
        (fun acc tt ->
          acc
          + Array.fold_left
              (fun a invocations ->
                a
                + Array.fold_left
                    (fun b params -> b + (8 * Array.length params))
                    0 invocations)
              0 tt.accel_params)
        0 t.tiles
  in
  (control, memory)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc t [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> (Marshal.from_channel ic : t))

module Cursor = struct
  type cursor = {
    tt : tile_trace;
    mutable bb_pos : int;
    mem_pos : int array;  (** per static instruction id *)
    accel_pos : int array;
    send_pos : int array;
  }

  let create tt =
    {
      tt;
      bb_pos = 0;
      mem_pos = Array.make (Array.length tt.mem_addrs) 0;
      accel_pos = Array.make (Array.length tt.accel_params) 0;
      send_pos = Array.make (Array.length tt.send_dsts) 0;
    }

  let next_block c =
    if c.bb_pos >= Array.length c.tt.bb_path then None
    else begin
      let b = c.tt.bb_path.(c.bb_pos) in
      c.bb_pos <- c.bb_pos + 1;
      Some b
    end

  let peek_block c k =
    let pos = c.bb_pos + k in
    if pos >= Array.length c.tt.bb_path then None else Some c.tt.bb_path.(pos)

  (* Allocation-free peek for the per-cycle launch path: block ids are
     non-negative, so -1 signals an exhausted trace without the [Some]. *)
  let peek_block_id c k =
    let pos = c.bb_pos + k in
    if pos >= Array.length c.tt.bb_path then -1 else c.tt.bb_path.(pos)

  let blocks_consumed c = c.bb_pos

  let next_addr c ~instr_id =
    let addrs = c.tt.mem_addrs.(instr_id) in
    let pos = c.mem_pos.(instr_id) in
    if pos >= Array.length addrs then
      invalid_arg
        (Printf.sprintf "Trace.Cursor.next_addr: instr %d trace exhausted"
           instr_id);
    c.mem_pos.(instr_id) <- pos + 1;
    addrs.(pos)

  let next_accel_params c ~instr_id =
    let ps = c.tt.accel_params.(instr_id) in
    let pos = c.accel_pos.(instr_id) in
    if pos >= Array.length ps then
      invalid_arg
        (Printf.sprintf
           "Trace.Cursor.next_accel_params: instr %d trace exhausted" instr_id);
    c.accel_pos.(instr_id) <- pos + 1;
    ps.(pos)

  let next_send_dst c ~instr_id =
    let ds = c.tt.send_dsts.(instr_id) in
    let pos = c.send_pos.(instr_id) in
    if pos >= Array.length ds then
      invalid_arg
        (Printf.sprintf "Trace.Cursor.next_send_dst: instr %d trace exhausted"
           instr_id);
    c.send_pos.(instr_id) <- pos + 1;
    ds.(pos)
end
