(** Trace store: generate a dynamic trace once, reuse it everywhere.

    MosaicSim's premise (§III) is that the instrumented run happens once
    and the timing model replays it cheaply. This module delivers that for
    the whole toolchain: a content-addressed on-disk cache of
    {!Trace.save} containers plus a domain-safe in-process memo, both
    keyed by {!workload_digest}. Cold runs populate the cache; warm runs
    (later bench sections, [--jobs] siblings, or whole re-invocations)
    skip interpretation entirely. Cache hits are bit-identical to fresh
    interpretation — the container format is exact and the digest covers
    every input the trace depends on. *)

(** Digest of everything a trace is a function of: the program text, the
    run label, each tile's (kernel, args) assignment, and the post-setup
    memory image ({!Interp.memory_contents} — datasets live there, not in
    the program). Hex MD5; also salted with an internal semantics-version
    string so interpreter changes invalidate old caches. *)
val workload_digest :
  program:Mosaic_ir.Program.t ->
  label:string ->
  tiles:(string * Mosaic_ir.Value.t list) array ->
  mem:(int * Mosaic_ir.Value.t) array ->
  string

(** {1 Cache directory}

    Resolution order: {!set_cache_dir} override, then the
    [MOSAICSIM_TRACE_CACHE] environment variable (["off"], ["none"] or
    empty disables), then [$XDG_CACHE_HOME/mosaicsim], then
    [~/.cache/mosaicsim]. [None] means the disk layer is off — the
    in-process memo still works. *)

val set_cache_dir : [ `Default | `Dir of string | `Disabled ] -> unit

val cache_dir : unit -> string option

(** Path the given digest would be stored at, if the disk cache is on. *)
val cache_file : string -> string option

(** {1 Fetch} *)

type source =
  | Interpreted  (** miss: [generate] ran *)
  | Memo_hit  (** in-process memo (includes waiting on another domain) *)
  | Disk_hit  (** loaded from the cache directory *)

type info = {
  digest : string;
  source : source;
  cache_file : string option;
  gen_seconds : float;
      (** wall time to obtain the trace: full interpretation on a miss,
          ~milliseconds of decode on a hit *)
}

(** [fetch ~digest ~generate] returns the trace for [digest], trying the
    memo, then the disk cache, then running [generate] (which populates
    both). Safe to call concurrently from any number of domains:
    concurrent requests for one digest block on a single flight of
    [generate], so each workload is interpreted at most once per process.
    Stale or unreadable cache files count as misses and are overwritten;
    disk failures never fail the run. If [generate] raises, the exception
    propagates to every waiter and the next fetch retries. *)
val fetch : digest:string -> generate:(unit -> Trace.t) -> Trace.t * info

(** {1 Garbage collection} *)

type gc_report = {
  scanned : int;  (** [.mstr] entries found in the cache directory *)
  scanned_bytes : int;  (** their total size before any deletion *)
  deleted : int;
  deleted_bytes : int;
}

(** [gc ?max_bytes ()] scans the cache directory and, when [max_bytes] is
    given, deletes least-recently-modified entries until the remainder
    fits under the cap (LRU by mtime). Without [max_bytes] it only
    reports sizes. [None] when the disk cache is disabled. Deleting is
    always safe — the store is content-addressed, so evicted traces are
    regenerated on next use; unreadable or vanished entries are skipped
    best-effort. *)
val gc : ?max_bytes:int -> unit -> gc_report option

(** {1 Introspection (tests, CLI)} *)

(** Semantics-version salt baked into {!workload_digest}; bump it and
    every cached trace is invalidated. Exposed for [mosaicsim version]
    and run manifests. *)
val semantics_version : string

type stats = {
  interpreted : int;
  memo_hits : int;
  disk_hits : int;
  disk_bytes : int;  (** container bytes read from or written to disk *)
}

val stats : unit -> stats

(** Clear the memo and zero {!stats} (tests). Does not touch the disk. *)
val reset : unit -> unit
