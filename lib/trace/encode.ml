(* Varint plumbing (LEB128) with zig-zag for signed deltas. *)

let put_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let get_varint bytes pos =
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let byte = Char.code (Bytes.get bytes !p) in
    incr p;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  (!v, !p)

let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1

let unzigzag v = if v land 1 = 0 then v / 2 else -((v + 1) / 2)

(* --- control-flow paths ---

   Format: varint count, then tokens. Token kinds:
   - 0, varint bid              : literal block id
   - 1, varint period, varint n : repeat the previous [period] symbols
                                  [n] more times *)

let max_period = 8

let encode_control path =
  let buf = Buffer.create 256 in
  let n = Array.length path in
  put_varint buf n;
  let i = ref 0 in
  while !i < n do
    (* Longest immediate repetition of a short period ending here. *)
    let best = ref None in
    for period = 1 to Stdlib.min max_period !i do
      (* count how many symbols from !i onward repeat the last [period] *)
      let reps = ref 0 in
      let j = ref !i in
      while !j < n && path.(!j) = path.(!j - period) do
        incr j;
        incr reps
      done;
      let full = !reps / period in
      if full >= 1 then
        match !best with
        | Some (_, best_cover) when full * period <= best_cover -> ()
        | _ -> best := Some (period, full * period)
    done;
    match !best with
    | Some (period, cover) when cover >= 2 ->
        Buffer.add_char buf '\001';
        put_varint buf period;
        put_varint buf (cover / period);
        i := !i + cover
    | _ ->
        Buffer.add_char buf '\000';
        put_varint buf path.(!i);
        incr i
  done;
  Buffer.to_bytes buf

let decode_control bytes =
  let total, pos = get_varint bytes 0 in
  let out = Array.make total 0 in
  let filled = ref 0 and pos = ref pos in
  while !filled < total do
    let tag = Bytes.get bytes !pos in
    incr pos;
    match tag with
    | '\000' ->
        let v, p = get_varint bytes !pos in
        pos := p;
        out.(!filled) <- v;
        incr filled
    | '\001' ->
        let period, p = get_varint bytes !pos in
        let reps, p = get_varint bytes p in
        pos := p;
        for _ = 1 to reps * period do
          out.(!filled) <- out.(!filled - period);
          incr filled
        done
    | c -> invalid_arg (Printf.sprintf "Encode.decode_control: bad tag %C" c)
  done;
  out

(* --- address streams: zig-zag deltas --- *)

let encode_addrs addrs =
  let buf = Buffer.create 256 in
  put_varint buf (Array.length addrs);
  let prev = ref 0 in
  Array.iter
    (fun a ->
      put_varint buf (zigzag (a - !prev));
      prev := a)
    addrs;
  Buffer.to_bytes buf

let decode_addrs bytes =
  let total, pos = get_varint bytes 0 in
  let out = Array.make total 0 in
  let prev = ref 0 and pos = ref pos in
  for i = 0 to total - 1 do
    let d, p = get_varint bytes !pos in
    pos := p;
    prev := !prev + unzigzag d;
    out.(i) <- !prev
  done;
  out
