(** Human-readable reports over simulation results: the per-tile, per-class
    and memory-system breakdowns behind the headline numbers (the
    McPAT-flavoured reporting the CLI's [run] command prints). *)

(** Headline metrics table. *)
val summary : Soc.result -> string

(** Per-tile cycles/instructions/IPC/energy and branch accuracy. *)
val per_tile : Soc.result -> string

(** Instruction mix by functional-unit class, aggregated over tiles. *)
val instruction_mix : Soc.result -> string

(** Memory-system counters (per-level totals and DRAM behaviour). *)
val memory : Soc.result -> string

(** Whether the run carried an enabled cycle-accounting profile. *)
val profiled : Soc.result -> bool

(** Per-tile stacked stall attribution (one cause per cycle, percentages
    summing to 100 per row). Meaningful only when {!profiled}. *)
val stalls : Soc.result -> string

(** Ranked hot-spot table: stall cycles attributed to each static basic
    block (kernel#bid), aggregated over tiles, worst first; [top] rows
    (default 10). *)
val hot_spots : ?top:int -> Soc.result -> string

(** Per-tile memory-request completion-latency histogram summary
    (count/mean/p50/p95/p99/max). *)
val latency : Soc.result -> string

(** The three profiler sections concatenated. *)
val profile : ?top:int -> Soc.result -> string

(** All the non-profiler sections concatenated; appends {!profile} when
    the run was profiled. *)
val full : Soc.result -> string
