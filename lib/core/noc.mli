(** Mesh network-on-chip model.

    The paper leaves NoC modeling as future work and sketches the path:
    "ports can be added to the abstract tile model to create a message
    module in order to model NoCs". This module is that message substrate: a
    2D mesh with XY routing, per-hop latency, and per-link bandwidth
    accounted in epochs (the SimpleDRAM scheme applied to links). The
    Interleaver consults it, when configured, to time inter-tile messages
    instead of using a flat wire latency. *)

type config = {
  width : int;  (** mesh columns; rows = ceil(ntiles / width) *)
  hop_latency : int;  (** router + link traversal per hop *)
  link_capacity : int;  (** messages per link per epoch *)
  epoch_cycles : int;
}

val default_config : ntiles:int -> config

type stats = {
  mutable messages : int;
  mutable total_hops : int;
  mutable contended : int;  (** messages delayed by link bandwidth *)
}

type t

(** An enabled [sink] receives a [Noc_hop] event per routed message. *)
val create : ?sink:Mosaic_obs.Sink.t -> ntiles:int -> config -> t

(** Manhattan hop count between two tiles under XY routing. *)
val hops : t -> src:int -> dst:int -> int

(** [delay t ~src ~dst ~cycle] is the arrival cycle of a message injected
    at [cycle], walking the XY path and consuming per-link bandwidth.
    Raises [Invalid_argument] on bad tile ids. *)
val delay : t -> src:int -> dst:int -> cycle:int -> int

(** Next-event view for the cycle-skipping scheduler. The mesh reserves all
    link bandwidth eagerly at injection time ({!delay} returns a final
    arrival), so it has no autonomous future events and always answers
    [None]; in-flight arrivals are reported by the Interleaver, which owns
    the message buffers. A future reactive NoC model (per-cycle router
    occupancy) would report its earliest pending hop here. *)
val next_event : t -> cycle:int -> int option

val stats : t -> stats

(** Publish the message counters under "noc.*" into a metrics registry. *)
val publish : t -> Mosaic_obs.Metrics.t -> unit

(** {1 Snapshots} — link-epoch reservations and stats. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
