module Table = Mosaic_util.Table
module Metrics = Mosaic_obs.Metrics
module Op = Mosaic_ir.Op
module Stall = Mosaic_obs.Stall
module Profile = Mosaic_tile.Profile

(* Every table reads from the metrics registry the run published into
   ([r.metrics]), not from the result-record fields: the registry is the
   single source of truth shared with the CSV/JSON exporters, and the
   rendered tables are identical to what the record-based reporting
   produced. *)

let kv = [ Table.column ~align:Table.Left "metric"; Table.column "value" ]

let summary (r : Soc.result) =
  let m = r.Soc.metrics in
  let c = Metrics.get_counter m and g = Metrics.get_gauge m in
  Table.render ~columns:kv
    [
      [ "cycles"; Table.icell (c "sim.cycles") ];
      [ "stepped cycles"; Table.icell (c "sim.stepped_cycles") ];
      [ "instructions"; Table.icell (c "sim.instrs") ];
      [ "IPC"; Table.fcell ~decimals:3 (g "sim.ipc") ];
      [ "simulated time (ms)"; Table.fcell ~decimals:3 (g "sim.seconds" *. 1e3) ];
      [ "energy (J)"; Printf.sprintf "%.3e" (g "sim.energy_j") ];
      [ "EDP (J*s)"; Printf.sprintf "%.3e" (g "sim.edp") ];
      [ "simulation speed (MIPS)"; Table.fcell (g "sim.mips") ];
      [ "accelerator invocations"; Table.icell (c "soc.accel_invocations") ];
    ]

let per_tile (r : Soc.result) =
  let m = r.Soc.metrics in
  let c = Metrics.get_counter m and g = Metrics.get_gauge m in
  let ntiles = int_of_float (g "soc.tiles") in
  let rows =
    List.init ntiles (fun i ->
        let p suffix = Printf.sprintf "tile.%d.%s" i suffix in
        let instrs = c (p "instrs") in
        let finish = c (p "finish_cycle") in
        let predictions = c (p "branch.predictions") in
        let mispredictions = c (p "branch.mispredictions") in
        [
          Table.icell i;
          Table.icell instrs;
          Table.icell finish;
          Table.fcell
            (if finish > 0 then float_of_int instrs /. float_of_int finish
             else 0.0);
          Table.icell (c (p "dbbs"));
          Table.icell (c (p "mem_accesses"));
          (if predictions = 0 then "-"
           else
             Printf.sprintf "%.1f%%"
               (100.0
               *. (1.0
                  -. float_of_int mispredictions /. float_of_int predictions)));
          Printf.sprintf "%.2e" (g (p "energy_pj") *. 1e-12);
        ])
  in
  Table.render
    ~columns:
      [
        Table.column "tile";
        Table.column "instrs";
        Table.column "finish cyc";
        Table.column "IPC";
        Table.column "DBBs";
        Table.column "mem ops";
        Table.column "branch acc";
        Table.column "energy J";
      ]
    rows

let instruction_mix (r : Soc.result) =
  let c = Metrics.get_counter r.Soc.metrics in
  let counts =
    List.map
      (fun cls ->
        let name = Op.class_to_string cls in
        (name, c ("mix." ^ name)))
      Op.all_classes
  in
  let all = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  let rows =
    List.filter_map
      (fun (name, n) ->
        if n = 0 then None
        else
          Some
            [
              name;
              Table.icell n;
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int n /. float_of_int (Stdlib.max all 1));
            ])
      counts
  in
  Table.render
    ~columns:
      [
        Table.column ~align:Table.Left "class";
        Table.column "issued";
        Table.column "share";
      ]
    rows

let memory (r : Soc.result) =
  let c = Metrics.get_counter r.Soc.metrics in
  Table.render ~columns:kv
    [
      [ "L1 accesses"; Table.icell (c "mem.l1_accesses") ];
      [ "L2 accesses"; Table.icell (c "mem.l2_accesses") ];
      [ "LLC accesses"; Table.icell (c "mem.llc_accesses") ];
      [ "DRAM line reads"; Table.icell (c "dram.reads") ];
      [ "DRAM line writes"; Table.icell (c "dram.writes") ];
      [ "DRAM busy returns"; Table.icell (c "dram.busy_returns") ];
      [ "DRAM row hits"; Table.icell (c "dram.row_hits") ];
      [ "MAO issue rejections"; Table.icell (c "soc.mao_stalls") ];
      [ "interleaver sends"; Table.icell (c "inter.sends") ];
      [ "interleaver stalls"; Table.icell (c "inter.send_stalls") ];
    ]

(* --- Cycle-accounting profiler sections --- *)

let profiled (r : Soc.result) = Array.exists Profile.enabled r.Soc.profiles

(* Per-tile stacked attribution: every simulated cycle lands in exactly
   one cause, so each row's percentages sum to 100. *)
let stalls (r : Soc.result) =
  let rows =
    Array.to_list
      (Array.mapi
         (fun i p ->
           let total = Profile.total p in
           let denom = float_of_int (Stdlib.max 1 total) in
           Table.icell i :: Profile.label p :: Table.icell total
           :: (Array.to_list Stall.all
              |> List.map (fun cause ->
                     let n = Profile.count p cause in
                     if n = 0 then "-"
                     else
                       Printf.sprintf "%.1f%%"
                         (100.0 *. float_of_int n /. denom))))
         r.Soc.profiles)
  in
  Table.render
    ~columns:
      (Table.column "tile"
      :: Table.column ~align:Table.Left "kernel"
      :: Table.column "cycles"
      :: (Array.to_list Stall.names |> List.map Table.column))
    rows

(* Causes that can carry a basic-block culprit (busy/idle/finished cycles
   book no roll-up row, so their columns would always be zero). *)
let bb_causes =
  [
    Stall.Dependency; Stall.Structural; Stall.Memory; Stall.Mao; Stall.Supply;
    Stall.Branch_redirect;
  ]

(* Ranked hot spots: stall cycles attributed to each static basic block
   (aggregated over tiles running the same kernel), worst first. *)
let hot_spot_rows (r : Soc.result) =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun p ->
      if Profile.enabled p then
        for bid = 0 to Profile.nblocks p - 1 do
          let key = (Profile.label p, bid) in
          let acc =
            match Hashtbl.find_opt tbl key with
            | Some a -> a
            | None ->
                let a = Array.make (List.length bb_causes) 0 in
                Hashtbl.replace tbl key a;
                a
          in
          List.iteri
            (fun ci cause -> acc.(ci) <- acc.(ci) + Profile.bb_count p ~bid cause)
            bb_causes
        done)
    r.Soc.profiles;
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.filter (fun (_, v) -> Array.exists (fun n -> n > 0) v)
  |> List.sort (fun ((ka, ba), va) ((kb, bb), vb) ->
         let ta = Array.fold_left ( + ) 0 va
         and tb = Array.fold_left ( + ) 0 vb in
         if ta <> tb then compare tb ta else compare (ka, ba) (kb, bb))

let hot_spots ?(top = 10) (r : Soc.result) =
  let rows =
    hot_spot_rows r
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun ((kernel, bid), v) ->
           Printf.sprintf "%s#%d" kernel bid
           :: Table.icell (Array.fold_left ( + ) 0 v)
           :: Array.to_list (Array.map Table.icell v))
  in
  Table.render
    ~columns:
      (Table.column ~align:Table.Left "block"
      :: Table.column "stall cyc"
      :: List.map (fun c -> Table.column (Stall.name c)) bb_causes)
    rows

(* Memory-request completion latency per tile, from the live histograms
   the tiles observe into ([tile.<i>.load_latency]). *)
let latency (r : Soc.result) =
  let m = r.Soc.metrics in
  let rows =
    List.init (Array.length r.Soc.tile_stats) (fun i ->
        match Metrics.find m (Printf.sprintf "tile.%d.load_latency" i) with
        | Some (Metrics.Histogram h) when Metrics.hist_count h > 0 ->
            Some
              [
                Table.icell i;
                Table.icell (Metrics.hist_count h);
                Table.fcell ~decimals:1 (Metrics.hist_mean h);
                Table.fcell ~decimals:0 (Metrics.hist_quantile h 0.5);
                Table.fcell ~decimals:0 (Metrics.hist_quantile h 0.95);
                Table.fcell ~decimals:0 (Metrics.hist_quantile h 0.99);
                Table.fcell ~decimals:0 (Metrics.hist_max h);
              ]
        | _ -> None)
    |> List.filter_map Fun.id
  in
  Table.render
    ~columns:
      [
        Table.column "tile";
        Table.column "mem ops";
        Table.column "mean";
        Table.column "p50";
        Table.column "p95";
        Table.column "p99";
        Table.column "max";
      ]
    rows

let profile ?top r =
  String.concat "\n"
    [
      "== stall attribution (% of cycles) ==";
      stalls r;
      "== hot spots (top basic blocks by stall cycles) ==";
      hot_spots ?top r;
      "== memory latency (cycles) ==";
      latency r;
    ]

let full r =
  String.concat "\n"
    ([
       "== summary ==";
       summary r;
       "== per tile ==";
       per_tile r;
       "== instruction mix ==";
       instruction_mix r;
       "== memory system ==";
       memory r;
     ]
    @ if profiled r then [ profile r ] else [])
