module Table = Mosaic_util.Table
module Metrics = Mosaic_obs.Metrics
module Op = Mosaic_ir.Op

(* Every table reads from the metrics registry the run published into
   ([r.metrics]), not from the result-record fields: the registry is the
   single source of truth shared with the CSV/JSON exporters, and the
   rendered tables are identical to what the record-based reporting
   produced. *)

let kv = [ Table.column ~align:Table.Left "metric"; Table.column "value" ]

let summary (r : Soc.result) =
  let m = r.Soc.metrics in
  let c = Metrics.get_counter m and g = Metrics.get_gauge m in
  Table.render ~columns:kv
    [
      [ "cycles"; Table.icell (c "sim.cycles") ];
      [ "stepped cycles"; Table.icell (c "sim.stepped_cycles") ];
      [ "instructions"; Table.icell (c "sim.instrs") ];
      [ "IPC"; Table.fcell ~decimals:3 (g "sim.ipc") ];
      [ "simulated time (ms)"; Table.fcell ~decimals:3 (g "sim.seconds" *. 1e3) ];
      [ "energy (J)"; Printf.sprintf "%.3e" (g "sim.energy_j") ];
      [ "EDP (J*s)"; Printf.sprintf "%.3e" (g "sim.edp") ];
      [ "simulation speed (MIPS)"; Table.fcell (g "sim.mips") ];
      [ "accelerator invocations"; Table.icell (c "soc.accel_invocations") ];
    ]

let per_tile (r : Soc.result) =
  let m = r.Soc.metrics in
  let c = Metrics.get_counter m and g = Metrics.get_gauge m in
  let ntiles = int_of_float (g "soc.tiles") in
  let rows =
    List.init ntiles (fun i ->
        let p suffix = Printf.sprintf "tile.%d.%s" i suffix in
        let instrs = c (p "instrs") in
        let finish = c (p "finish_cycle") in
        let predictions = c (p "branch.predictions") in
        let mispredictions = c (p "branch.mispredictions") in
        [
          Table.icell i;
          Table.icell instrs;
          Table.icell finish;
          Table.fcell
            (if finish > 0 then float_of_int instrs /. float_of_int finish
             else 0.0);
          Table.icell (c (p "dbbs"));
          Table.icell (c (p "mem_accesses"));
          (if predictions = 0 then "-"
           else
             Printf.sprintf "%.1f%%"
               (100.0
               *. (1.0
                  -. float_of_int mispredictions /. float_of_int predictions)));
          Printf.sprintf "%.2e" (g (p "energy_pj") *. 1e-12);
        ])
  in
  Table.render
    ~columns:
      [
        Table.column "tile";
        Table.column "instrs";
        Table.column "finish cyc";
        Table.column "IPC";
        Table.column "DBBs";
        Table.column "mem ops";
        Table.column "branch acc";
        Table.column "energy J";
      ]
    rows

let instruction_mix (r : Soc.result) =
  let c = Metrics.get_counter r.Soc.metrics in
  let counts =
    List.map
      (fun cls ->
        let name = Op.class_to_string cls in
        (name, c ("mix." ^ name)))
      Op.all_classes
  in
  let all = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  let rows =
    List.filter_map
      (fun (name, n) ->
        if n = 0 then None
        else
          Some
            [
              name;
              Table.icell n;
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int n /. float_of_int (Stdlib.max all 1));
            ])
      counts
  in
  Table.render
    ~columns:
      [
        Table.column ~align:Table.Left "class";
        Table.column "issued";
        Table.column "share";
      ]
    rows

let memory (r : Soc.result) =
  let c = Metrics.get_counter r.Soc.metrics in
  Table.render ~columns:kv
    [
      [ "L1 accesses"; Table.icell (c "mem.l1_accesses") ];
      [ "L2 accesses"; Table.icell (c "mem.l2_accesses") ];
      [ "LLC accesses"; Table.icell (c "mem.llc_accesses") ];
      [ "DRAM line reads"; Table.icell (c "dram.reads") ];
      [ "DRAM line writes"; Table.icell (c "dram.writes") ];
      [ "DRAM busy returns"; Table.icell (c "dram.busy_returns") ];
      [ "DRAM row hits"; Table.icell (c "dram.row_hits") ];
      [ "MAO issue rejections"; Table.icell (c "soc.mao_stalls") ];
      [ "interleaver sends"; Table.icell (c "inter.sends") ];
      [ "interleaver stalls"; Table.icell (c "inter.send_stalls") ];
    ]

let full r =
  String.concat "\n"
    [
      "== summary ==";
      summary r;
      "== per tile ==";
      per_tile r;
      "== instruction mix ==";
      instruction_mix r;
      "== memory system ==";
      memory r;
    ]
