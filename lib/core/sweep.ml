(* Incremental design-space sweep driver: one exact profiled simulation
   plus N cheap re-timings (Retime), with the full simulator kept as the
   oracle behind [exact:true] so every point's cycle error is measured,
   never assumed. *)

module Trace = Mosaic_trace.Trace
module Analysis = Mosaic_trace.Analysis
module TC = Mosaic_tile.Tile_config
module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module Dram = Mosaic_memory.Dram
module Accel_model = Mosaic_accel.Accel_model
module Domain_pool = Mosaic_util.Domain_pool
module Span = Mosaic_obs.Span

type edit = Soc.config * TC.t -> Soc.config * TC.t
type axis = { axis : string; points : (string * edit) list }

(* ------------------------------------------------------------------ *)
(* Axis vocabulary                                                     *)
(* ------------------------------------------------------------------ *)

let with_l1 cfg (f : Cache.config -> Cache.config) =
  let h = cfg.Soc.hierarchy in
  { cfg with Soc.hierarchy = { h with Hierarchy.l1 = f h.Hierarchy.l1 } }

let with_level name cfg (sel : Hierarchy.config -> Cache.config option)
    (put : Hierarchy.config -> Cache.config -> Hierarchy.config)
    (f : Cache.config -> Cache.config) =
  let h = cfg.Soc.hierarchy in
  match sel h with
  | None -> failwith (Printf.sprintf "sweep axis %s: system has no %s" name name)
  | Some c -> { cfg with Soc.hierarchy = put h (f c) }

let cache_size kb (c : Cache.config) =
  { c with Cache.size_bytes = kb * 1024 }

let int_edit name (v : int) : edit =
 fun (cfg, tc) ->
  match name with
  | "l1" -> (with_l1 cfg (cache_size v), tc)
  | "l2" ->
      ( with_level "l2" cfg
          (fun h -> h.Hierarchy.l2)
          (fun h c -> { h with Hierarchy.l2 = Some c })
          (cache_size v),
        tc )
  | "llc" ->
      ( with_level "llc" cfg
          (fun h -> h.Hierarchy.llc)
          (fun h c -> { h with Hierarchy.llc = Some c })
          (cache_size v),
        tc )
  | "dramlat" ->
      let h = cfg.Soc.hierarchy in
      let dram =
        match h.Hierarchy.dram with
        | Hierarchy.Simple s -> Hierarchy.Simple { s with Dram.min_latency = v }
        | Hierarchy.Detailed _ ->
            failwith "sweep axis dramlat: detailed DRAM has no min_latency"
      in
      ({ cfg with Soc.hierarchy = { h with Hierarchy.dram } }, tc)
  | "wire" -> ({ cfg with Soc.wire_latency = v }, tc)
  | "plm" ->
      ( {
          cfg with
          Soc.accel_designs =
            List.map
              (fun (k, (d : Accel_model.design_point)) ->
                (k, { d with Accel_model.plm_bytes = v * 1024 }))
              cfg.Soc.accel_designs;
        },
        tc )
  | "lanes" ->
      ( {
          cfg with
          Soc.accel_designs =
            List.map
              (fun (k, (d : Accel_model.design_point)) ->
                (k, { d with Accel_model.par_lanes = v }))
              cfg.Soc.accel_designs;
        },
        tc )
  | "width" -> (cfg, { tc with TC.issue_width = v })
  | "window" -> (cfg, { tc with TC.window_size = v })
  | "lsq" -> (cfg, { tc with TC.lsq_size = v })
  | "div" -> (cfg, { tc with TC.clock_divider = v })
  | "freq" -> ({ cfg with Soc.freq_ghz = float_of_int v }, tc)
  | _ ->
      failwith
        (Printf.sprintf
           "unknown sweep axis %s \
            (l1|l2|llc|dramlat|wire|plm|lanes|width|window|lsq|div|freq)"
           name)

let float_edit name v : edit =
 fun (cfg, tc) ->
  match name with
  | "freq" -> ({ cfg with Soc.freq_ghz = v }, tc)
  | _ -> int_edit name (int_of_float v) (cfg, tc)

(* "l1=8,16,32,64" -> an axis of four labelled edits. Cache and PLM sizes
   are in KB, latencies in cycles, freq in GHz. *)
let axis_of_spec spec =
  match String.index_opt spec '=' with
  | None ->
      failwith
        (Printf.sprintf "bad axis spec %S (expected name=v1,v2,...)" spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let values = String.split_on_char ',' rest in
      if values = [] || rest = "" then
        failwith (Printf.sprintf "axis %s: no values" name);
      let points =
        List.map
          (fun v ->
            let label = Printf.sprintf "%s=%s" name v in
            match int_of_string_opt v with
            | Some n -> (label, int_edit name n)
            | None -> (
                match float_of_string_opt v with
                | Some f -> (label, float_edit name f)
                | None ->
                    failwith
                      (Printf.sprintf "axis %s: bad value %S" name v)))
          values
      in
      (* Validate the axis name eagerly; level presence and geometry are
         checked against the real config when the edit runs. *)
      let known =
        [ "l1"; "l2"; "llc"; "dramlat"; "wire"; "plm"; "lanes"; "width";
          "window"; "lsq"; "div"; "freq" ]
      in
      if not (List.mem name known) then
        failwith
          (Printf.sprintf "unknown sweep axis %s (%s)" name
             (String.concat "|" known));
      { axis = name; points }

(* Cartesian product of axes, first axis slowest. *)
let grid axes =
  List.fold_left
    (fun acc { points; _ } ->
      List.concat_map
        (fun (label, edit) ->
          List.map
            (fun (l, e) ->
              ((if label = "" then l else label ^ " " ^ l), fun p -> e (edit p)))
            points)
        acc)
    [ ("", fun p -> p) ]
    axes

(* L1 x private-L2 sizes: 16 points, all geometrically valid on both
   system presets' associativities. *)
let default_axes = [ "l1=8,16,32,64"; "l2=256,512,1024,2048" ]

(* ------------------------------------------------------------------ *)
(* Sweep execution                                                     *)
(* ------------------------------------------------------------------ *)

type point = {
  label : string;
  retimed : Retime.point;
  exact_cycles : int option;
  err_pct : float option;
}

type t = {
  base : Soc.result;
  prep : Retime.prep;
  points : point array;
  base_seconds : float;  (** wall clock of the one profiled simulation *)
  analyze_seconds : float;  (** skeleton extraction *)
  retime_seconds : float;  (** all re-timings together *)
  exact_seconds : float;  (** all oracle simulations (0 when not run) *)
}

let err_pct ~retimed ~exact =
  100.0
  *. Float.abs (float_of_int (retimed - exact))
  /. float_of_int (Stdlib.max exact 1)

let run ?(jobs = 1) ?(exact = false) cfg ~tile_config ~program ~trace points =
  let tiles =
    Array.map
      (fun (tt : Trace.tile_trace) ->
        { Soc.kernel = tt.Trace.kernel; tile_config })
      trace.Trace.tiles
  in
  let pts = Array.of_list points in
  let t0 = Unix.gettimeofday () in
  let base =
    Span.with_span "sweep.base" (fun () ->
        Soc.run ~profile:true cfg ~program ~trace ~tiles)
  in
  let t1 = Unix.gettimeofday () in
  let prep =
    Span.with_span "sweep.analyze" (fun () ->
        let skeleton = Analysis.skeleton program trace in
        Retime.of_result ~cfg ~tiles skeleton base)
  in
  let t2 = Unix.gettimeofday () in
  let point_spec (_, edit) =
    let cfg', tc' = edit (cfg, tile_config) in
    let tiles' =
      Array.map (fun (s : Soc.tile_spec) -> { s with Soc.tile_config = tc' })
        tiles
    in
    (cfg', tiles')
  in
  let retimed =
    Span.with_span "retime" (fun () ->
        Domain_pool.map ~jobs
          (fun p ->
            let cfg', tiles' = point_spec p in
            Retime.run prep cfg' tiles')
          pts)
  in
  let t3 = Unix.gettimeofday () in
  let exacts =
    if not exact then Array.map (fun _ -> None) pts
    else
      Span.with_span "sweep.exact" (fun () ->
          Domain_pool.map ~jobs
            (fun p ->
              let cfg', tiles' = point_spec p in
              Some (Soc.run cfg' ~program ~trace ~tiles:tiles').Soc.cycles)
            pts)
  in
  let t4 = Unix.gettimeofday () in
  let points =
    Array.mapi
      (fun i (label, _) ->
        let retimed = retimed.(i) in
        {
          label;
          retimed;
          exact_cycles = exacts.(i);
          err_pct =
            Option.map
              (fun e -> err_pct ~retimed:retimed.Retime.cycles ~exact:e)
              exacts.(i);
        })
      pts
  in
  {
    base;
    prep;
    points;
    base_seconds = t1 -. t0;
    analyze_seconds = t2 -. t1;
    retime_seconds = t3 -. t2;
    exact_seconds = t4 -. t3;
  }

(* Wall cost of the sweep vs re-simulating every point (only meaningful
   when the oracle ran). *)
let incremental_seconds t =
  t.base_seconds +. t.analyze_seconds +. t.retime_seconds

let speedup t =
  if t.exact_seconds <= 0.0 then None
  else Some (t.exact_seconds /. Float.max (incremental_seconds t) 1e-9)

let max_err_pct t =
  Array.fold_left
    (fun acc p -> match p.err_pct with Some e -> Float.max acc e | None -> acc)
    0.0 t.points
