(* Incremental re-timing for one-trace-many-configs DSE.

   A design-space sweep re-simulating every point wastes almost all of its
   work: the dynamic trace — and therefore the instruction mix, dependence
   chains, reuse distances and accelerator invocations — is identical
   across points. Following LightningSim's split, we run the exact
   simulator once with the cycle-accounting profiler on, keep each tile's
   stall-cause decomposition (which sums exactly to its finish cycle), and
   re-time a candidate config by scaling every cause with a ratio derived
   from the config-independent skeleton:

     Busy            x issue-width ratio (and clock divider)
     Dependency      x critical-chain latency ratio (chain composition
                       priced per config; memory nodes via the AMAT below)
     Structural      x FU/window pressure ratio
     Memory          x AMAT ratio, where AMAT comes from the skeleton's
                       LRU reuse histogram and the candidate hierarchy
     Mao             x inverse LSQ-capacity ratio
     Supply          x inter-tile communication latency ratio
     Branch_redirect x misprediction-penalty ratio (when both have one)
     Idle            unscaled
     Finished        dropped (re-derived from the new per-tile times)

   plus an additive accelerator term: the closed-form model priced under
   the candidate PLM/lanes minus the same under the base design. SoC
   cycles are rebuilt as 1 + max over tiles, the same identity the exact
   scheduler satisfies.

   At the base config every ratio is computed from identical inputs on
   both sides, so each is exactly 1.0 and the additive term is exactly
   0.0: re-timing reproduces the exact simulator's cycle count
   bit-for-bit (fuzzed in tools/fuzz_differential, oracle 4). On axes
   that cannot change simulated timing at all (frequency, energy) every
   ratio is likewise exactly 1.0, so those points stay bit-identical too;
   elsewhere the result is an estimate whose error the sweep driver
   measures against the --exact oracle. *)

module Trace = Mosaic_trace.Trace
module Analysis = Mosaic_trace.Analysis
module TC = Mosaic_tile.Tile_config
module Branch = Mosaic_tile.Branch
module Profile = Mosaic_tile.Profile
module Stall = Mosaic_obs.Stall
module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module Dram = Mosaic_memory.Dram
module Accel_model = Mosaic_accel.Accel_model
module Accel_kinds = Mosaic_accel.Accel_kinds
module Op = Mosaic_ir.Op

type prep = {
  base_cfg : Soc.config;
  base_tiles : Soc.tile_spec array;
  skeleton : Analysis.skeleton;
  stalls : int array array;  (* per tile, per Stall cause *)
  base_cycles : int;
}

type point = {
  cycles : int;
  instrs : int;
  seconds : float;
  ipc : float;
  tile_cycles : float array;  (* per-tile estimates before rounding *)
}

let of_result ~cfg ~(tiles : Soc.tile_spec array) skeleton (r : Soc.result) =
  if
    Array.length r.Soc.profiles = 0
    || not (Array.for_all Profile.enabled r.Soc.profiles)
  then
    invalid_arg "Retime.of_result: base run must be profiled (profile:true)";
  if Array.length tiles <> Array.length skeleton.Analysis.tiles then
    invalid_arg "Retime.of_result: tiles/skeleton mismatch";
  {
    base_cfg = cfg;
    base_tiles = tiles;
    skeleton;
    stalls = Array.map Profile.counts r.Soc.profiles;
    base_cycles = r.Soc.cycles;
  }

(* [prepare] is the one full-price step of a sweep: an exact profiled
   simulation plus the skeleton extraction. Returns the base result too —
   it doubles as the sweep's anchor point. *)
let prepare ?sink ?metrics cfg ~program ~trace ~tiles =
  let r = Soc.run ?sink ?metrics ~profile:true cfg ~program ~trace ~tiles in
  let skeleton = Analysis.skeleton program trace in
  (of_result ~cfg ~tiles skeleton r, r)

(* Average memory access time of the candidate hierarchy under the tile's
   reuse histogram: stack-distance capacity hit rates per level (inclusive
   hierarchy, so the miss stream of level i is the access stream filtered
   by stack distance >= capacity_i). *)
let dram_latency = function
  | Hierarchy.Simple (s : Dram.simple_config) ->
      float_of_int s.Dram.min_latency
  | Hierarchy.Detailed (d : Dram.detailed_config) ->
      float_of_int (d.Dram.base_latency + d.Dram.t_rcd + d.Dram.t_cas)

let amat (h : Hierarchy.config) (loc : Analysis.t) =
  let t = ref 0.0 and miss = ref 1.0 in
  let level (c : Cache.config) =
    t := !t +. (!miss *. float_of_int c.Cache.latency);
    let lines = c.Cache.size_bytes / c.Cache.line_size in
    miss := 1.0 -. Analysis.capacity_hit_rate loc ~lines
  in
  level h.Hierarchy.l1;
  (match h.Hierarchy.l2 with Some c -> level c | None -> ());
  (match h.Hierarchy.llc with Some c -> level c | None -> ());
  !t +. (!miss *. dram_latency h.Hierarchy.dram)

(* Price the skeleton's longest dependence chain under a config: fixed
   per-class latencies for compute nodes, AMAT for memory nodes, the
   atomic surcharge for atomics. Accelerator nodes cost nothing here —
   their time is the additive term below. *)
let chain_latency (cfg : Soc.config) (tc : TC.t) (ts : Analysis.tile_skeleton)
    =
  let lat = ref 0.0 in
  Array.iteri
    (fun i cls ->
      let n = ts.Analysis.cp_classes.(i) in
      if n > 0 then
        let l =
          match cls with
          | Op.C_accel -> 0
          | Op.C_send | Op.C_recv -> tc.TC.comm_latency
          | c -> TC.latency tc c
        in
        lat := !lat +. float_of_int (n * l))
    Analysis.classes;
  !lat
  +. (float_of_int ts.Analysis.cp_mem
     *. amat cfg.Soc.hierarchy ts.Analysis.locality)
  +. float_of_int (ts.Analysis.cp_atomics * tc.TC.atomic_extra_latency)

(* Structural pressure: the most oversubscribed FU class (dynamic count
   over FU count) or the window, whichever binds harder. Only the ratio
   between two configs matters. *)
let pressure (tc : TC.t) (ts : Analysis.tile_skeleton) =
  let p = ref 0.0 in
  Array.iteri
    (fun i cls ->
      let n = ts.Analysis.class_counts.(i) in
      if n > 0 then
        let fu = TC.fu_limit tc cls in
        if fu < max_int && fu > 0 then
          p := Float.max !p (float_of_int n /. float_of_int fu))
    Analysis.classes;
  Float.max !p
    (float_of_int ts.Analysis.locality.Analysis.dyn_instrs
    /. float_of_int (Stdlib.max tc.TC.window_size 1))

let comm_latency (cfg : Soc.config) (tc : TC.t) =
  let net =
    match cfg.Soc.noc with
    | Some n -> n.Noc.hop_latency
    | None -> cfg.Soc.wire_latency
  in
  float_of_int (net + tc.TC.comm_latency)

let accel_cycles (cfg : Soc.config) (ts : Analysis.tile_skeleton) =
  Array.fold_left
    (fun acc (kind, params) ->
      let design =
        match List.assoc_opt kind cfg.Soc.accel_designs with
        | Some d -> d
        | None -> Accel_model.default_design
      in
      let w = Accel_kinds.workload kind params in
      let est = Accel_model.estimate cfg.Soc.accel_sys design w in
      acc +. float_of_int est.Accel_model.cycles)
    0.0 ts.Analysis.accel_calls

(* Equal inputs give bit-equal numerators and denominators, and IEEE
   x /. x = 1.0 exactly for finite nonzero x — that is what makes
   re-timing exact at the base config with no special-casing. *)
let ratio num den = if den <= 0.0 then 1.0 else num /. den

let run prep (cfg : Soc.config) (tiles : Soc.tile_spec array) =
  let n = Array.length prep.base_tiles in
  if Array.length tiles <> n then
    invalid_arg "Retime.run: tile count differs from the base run";
  let tile_cycles = Array.make n 0.0 in
  let worst = ref 0.0 in
  Array.iteri
    (fun t (ts : Analysis.tile_skeleton) ->
      let tc0 = prep.base_tiles.(t).Soc.tile_config
      and tc1 = tiles.(t).Soc.tile_config in
      let counts = prep.stalls.(t) in
      let div =
        ratio
          (float_of_int tc1.TC.clock_divider)
          (float_of_int tc0.TC.clock_divider)
      in
      let scale cause =
        match cause with
        | Stall.Busy ->
            ratio
              (float_of_int tc0.TC.issue_width)
              (float_of_int tc1.TC.issue_width)
            *. div
        | Stall.Dependency ->
            ratio (chain_latency cfg tc1 ts)
              (chain_latency prep.base_cfg tc0 ts)
            *. div
        | Stall.Structural -> ratio (pressure tc1 ts) (pressure tc0 ts) *. div
        | Stall.Memory ->
            ratio
              (amat cfg.Soc.hierarchy ts.Analysis.locality)
              (amat prep.base_cfg.Soc.hierarchy ts.Analysis.locality)
        | Stall.Mao ->
            ratio (float_of_int tc0.TC.lsq_size) (float_of_int tc1.TC.lsq_size)
        | Stall.Supply ->
            ratio (comm_latency cfg tc1) (comm_latency prep.base_cfg tc0)
        | Stall.Branch_redirect ->
            let p0 = Branch.penalty tc0.TC.branch
            and p1 = Branch.penalty tc1.TC.branch in
            (if p0 > 0 && p1 > 0 then ratio (float_of_int p1) (float_of_int p0)
             else 1.0)
            *. div
        | Stall.Idle | Stall.Finished -> 1.0
      in
      let total = ref 0.0 in
      Array.iter
        (fun cause ->
          if cause <> Stall.Finished then
            let c = counts.(Stall.index cause) in
            if c > 0 then total := !total +. (float_of_int c *. scale cause))
        Stall.all;
      let delta = accel_cycles cfg ts -. accel_cycles prep.base_cfg ts in
      let total = Float.max 0.0 (!total +. delta) in
      tile_cycles.(t) <- total;
      if total > !worst then worst := total)
    prep.skeleton.Analysis.tiles;
  let cycles = 1 + int_of_float (Float.round !worst) in
  let instrs = prep.skeleton.Analysis.total_dyn_instrs in
  {
    cycles;
    instrs;
    seconds = float_of_int cycles /. (cfg.Soc.freq_ghz *. 1e9);
    ipc =
      (if cycles = 0 then 0.0
       else float_of_int instrs /. float_of_int cycles);
    tile_cycles;
  }

let run_homogeneous prep cfg ~tile_config =
  let tiles =
    Array.map
      (fun (ts : Analysis.tile_skeleton) ->
        { Soc.kernel = ts.Analysis.kernel; tile_config })
      prep.skeleton.Analysis.tiles
  in
  run prep cfg tiles
