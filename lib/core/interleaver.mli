(** The Interleaver (§II): coordinates tile timing and inter-tile messages.

    Tiles create inter-tile events and enqueue them here; the Interleaver is
    responsible for delivering each message to its destination tile at the
    right time. Buffers are bounded — a full destination buffer back-pressures
    the sender (its [send] node cannot issue), which is what makes DAE
    pairs throttle correctly. *)

type stats = {
  mutable sends : int;
  mutable recvs : int;
  mutable send_stalls : int;  (** sends rejected because a buffer was full *)
  mutable max_occupancy : int;
}

type t

(** [create ~buffer_capacity ~wire_latency ?noc ()]. Capacity is per
    (destination, channel) buffer; Table II uses 512 entries. When a
    {!Noc} is supplied, message arrival times come from mesh routing and
    link contention instead of the flat [wire_latency]. *)
val create :
  ?buffer_capacity:int ->
  ?wire_latency:int ->
  ?noc:Noc.t ->
  ?sink:Mosaic_obs.Sink.t ->
  unit ->
  t

(** [send t ~src ~dst ~chan ~cycle ~available] reserves a buffer slot now
    and delivers the message at [available + wire_latency] ([available =
    cycle] for plain sends; the memory-completion cycle for terminal
    loads); [false] when the buffer is full. *)
val send :
  t -> src:int -> dst:int -> chan:int -> cycle:int -> available:int -> bool

(** [try_recv t ~tile ~chan ~cycle] consumes the oldest message for
    [(tile, chan)] and returns the receive completion cycle, or [None] when
    no message has been sent yet. *)
val try_recv : t -> tile:int -> chan:int -> cycle:int -> int option

(** [take_or_owe t ~tile ~chan] consumes a message if one is buffered, or
    records a debt that cancels the next send to [(tile, chan)] — the
    store-value-buffer behaviour where the consumer has already committed
    the slot. Returns [false] when the debt ceiling (buffer capacity) is
    reached and the caller must stall. *)
val take_or_owe : t -> tile:int -> chan:int -> bool

val stats : t -> stats

(** Messages currently buffered across all channels. O(1): maintained as a
    running counter on enqueue/dequeue. *)
val occupancy : t -> int

(** The per-(destination, channel) buffer capacity passed at creation. *)
val capacity : t -> int

(** [next_arrival t ~cycle] is the earliest in-flight message arrival
    strictly after [cycle], or [None] when nothing is in flight. Buffered
    messages are consumable before their arrival cycle (arrival only bounds
    receive completion), so this is a conservative wake-up hint for the
    cycle-skipping scheduler, never a gate. *)
val next_arrival : t -> cycle:int -> int option

(** Publish the messaging counters under "inter.*" (and the NoC's under
    "noc.*", when one is attached) into a metrics registry. *)
val publish : t -> Mosaic_obs.Metrics.t -> unit

(** {1 Fast-forward}

    The functional fast-forward executor models each (dst, chan) channel as
    counters seeded from, and committed back to, the live buffers. *)

(** [(buffered, owed)] for the channel: messages waiting and consumptions
    committed ahead of their send. *)
val ff_channel : t -> dst:int -> chan:int -> int * int

(** Commit a channel's post-fast-forward state: [buffered]/[owed] become
    the live counts (new tokens arrive at [cycle]; surplus old tokens are
    consumed oldest-first) and [sends]/[recvs] are added to the stats. *)
val ff_set_channel :
  t ->
  dst:int ->
  chan:int ->
  buffered:int ->
  owed:int ->
  sends:int ->
  recvs:int ->
  cycle:int ->
  unit

(** {1 Snapshots} — buffers, owed counters, in-flight arrivals and stats,
    layout-exact. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
