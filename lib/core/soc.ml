open Mosaic_ir
module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module Dram = Mosaic_memory.Dram
module Tile_config = Mosaic_tile.Tile_config
module Core_tile = Mosaic_tile.Core_tile
module Ddg = Mosaic_compiler.Ddg
module Trace = Mosaic_trace.Trace
module Accel_model = Mosaic_accel.Accel_model
module Accel_kinds = Mosaic_accel.Accel_kinds
module Branch = Mosaic_tile.Branch
module Metrics = Mosaic_obs.Metrics
module Sink = Mosaic_obs.Sink
module Stall = Mosaic_obs.Stall
module Profile = Mosaic_tile.Profile
module Span = Mosaic_obs.Span
module Progress = Mosaic_obs.Progress

type tile_spec = { kernel : string; tile_config : Tile_config.t }

type mem_energy = {
  l1_pj : float;
  l2_pj : float;
  llc_pj : float;
  dram_line_pj : float;
}

type config = {
  hierarchy : Hierarchy.config;
  buffer_capacity : int;
  wire_latency : int;
  noc : Noc.config option;
  accel_sys : Accel_model.sys_params;
  accel_designs : (string * Accel_model.design_point) list;
  freq_ghz : float;
  mem_energy : mem_energy;
  max_cycles : int;
  cycle_skip : bool;
  shards : int;
}

let default_mem_energy =
  { l1_pj = 10.0; l2_pj = 30.0; llc_pj = 100.0; dram_line_pj = 2000.0 }

let default_hierarchy : Hierarchy.config =
  {
    Hierarchy.l1 =
      {
        Cache.size_bytes = 32 * 1024;
        line_size = 64;
        assoc = 8;
        latency = 1;
        mshr_size = 16;
        prefetch = None;
      };
    l2 = None;
    llc =
      Some
        {
          Cache.size_bytes = 2 * 1024 * 1024;
          line_size = 64;
          assoc = 8;
          latency = 6;
          mshr_size = 32;
          prefetch = None;
        };
    dram = Hierarchy.Simple Dram.default_simple;
    coherence = None;
  }

let default_config =
  {
    hierarchy = default_hierarchy;
    buffer_capacity = 512;
    wire_latency = 1;
    noc = None;
    accel_sys = Accel_model.default_sys;
    accel_designs =
      (* Modest design points for the SoC-integrated instances; wider
         configurations are explored in the DSE harness. *)
      List.map
        (fun kind ->
          let par_lanes = if kind = "gemm" then 4 else 8 in
          (kind, { Accel_model.plm_bytes = 64 * 1024; par_lanes }))
        Accel_kinds.known_kinds;
    freq_ghz = 2.0;
    mem_energy = default_mem_energy;
    max_cycles = 2_000_000_000;
    cycle_skip = true;
    shards = 1;
  }

let with_hierarchy cfg hierarchy = { cfg with hierarchy }

type result = {
  cycles : int;
  stepped_cycles : int;
  seconds : float;
  instrs : int;
  ipc : float;
  energy_j : float;
  edp : float;
  host_seconds : float;
  mips : float;
  tile_stats : Core_tile.stats array;
  interleaver : Interleaver.stats;
  mem_totals : Hierarchy.totals;
  dram : Dram.stats;
  mao_stalls : int;
  accel_invocations : int;
  metrics : Metrics.t;
  profiles : Profile.t array;
  sample : Sample.report option;
}

(* Tracks concurrent accelerator invocations so memory bandwidth is divided
   among active instances (§IV-B's parallel-invocation scaling). *)
type accel_manager = {
  mutable active : int list;  (** finish cycles of in-flight invocations *)
  mutable invocations : int;
  mutable energy_pj_total : float;
  busy_by_tile : int array;
      (** cycles each tile spent waiting on its accelerator invocations
          (treated as clock-gated for static power) *)
}

let accel_invoke mgr cfg hier ~sink ~tile ~kind ~params ~cycle =
  mgr.active <- List.filter (fun f -> f > cycle) mgr.active;
  let concurrent = 1 + List.length mgr.active in
  let sys = cfg.accel_sys in
  let sys =
    {
      sys with
      Accel_model.mem_bw_bytes_per_cycle =
        sys.Accel_model.mem_bw_bytes_per_cycle /. float_of_int concurrent;
    }
  in
  let design =
    match List.assoc_opt kind cfg.accel_designs with
    | Some d -> d
    | None -> Accel_model.default_design
  in
  let w = Accel_kinds.workload kind params in
  let est = Accel_model.estimate_traced ~sink ~tile ~kind ~cycle sys design w in
  (* Non-coherent DMA: traffic goes straight to DRAM, contending with the
     cores' misses. Charged at invocation time. *)
  ignore
    (Hierarchy.dram_burst hier ~cycle ~addr:0 ~bytes:est.Accel_model.bytes
       ~is_write:false);
  let finish = cycle + est.Accel_model.cycles in
  mgr.active <- finish :: mgr.active;
  mgr.invocations <- mgr.invocations + 1;
  mgr.busy_by_tile.(tile) <- mgr.busy_by_tile.(tile) + est.Accel_model.cycles;
  let energy_pj = est.Accel_model.energy_j *. 1e12 in
  mgr.energy_pj_total <- mgr.energy_pj_total +. energy_pj;
  { Core_tile.finish_cycle = finish; energy_pj }

(* Register the run-level numbers into the metrics registry. Components
   (hierarchy, interleaver, NoC) publish their own counters separately;
   together these are the registry view that [Report] renders from. *)
let publish_result reg (r : result) =
  let c name v = Metrics.incr ~by:v (Metrics.counter reg name) in
  let g name v = Metrics.set (Metrics.gauge reg name) v in
  c "sim.cycles" r.cycles;
  c "sim.stepped_cycles" r.stepped_cycles;
  c "sim.instrs" r.instrs;
  g "sim.ipc" r.ipc;
  g "sim.seconds" r.seconds;
  g "sim.energy_j" r.energy_j;
  g "sim.edp" r.edp;
  g "sim.host_seconds" r.host_seconds;
  g "sim.mips" r.mips;
  g "soc.tiles" (float_of_int (Array.length r.tile_stats));
  c "soc.accel_invocations" r.accel_invocations;
  c "soc.mao_stalls" r.mao_stalls;
  Array.iteri
    (fun i (s : Core_tile.stats) ->
      let p suffix = Printf.sprintf "tile.%d.%s" i suffix in
      c (p "instrs") s.Core_tile.completed_instrs;
      c (p "finish_cycle") s.Core_tile.finish_cycle;
      c (p "dbbs") s.Core_tile.dbbs_launched;
      c (p "mem_accesses") s.Core_tile.mem_accesses;
      c (p "branch.predictions") s.Core_tile.branch.Branch.predictions;
      c (p "branch.mispredictions") s.Core_tile.branch.Branch.mispredictions;
      g (p "energy_pj") s.Core_tile.energy_pj)
    r.tile_stats;
  Array.iteri
    (fun i prof ->
      if Profile.enabled prof then
        Array.iter
          (fun cause ->
            c
              (Printf.sprintf "tile.%d.stall.%s" i (Stall.name cause))
              (Profile.count prof cause))
          Stall.all)
    r.profiles;
  if Array.exists Profile.enabled r.profiles then
    Array.iter
      (fun cause ->
        let n =
          Array.fold_left
            (fun acc prof -> acc + Profile.count prof cause)
            0 r.profiles
        in
        c ("stall." ^ Stall.name cause) n)
      Stall.all;
  List.iter
    (fun cls ->
      let idx = Tile_config.class_index cls in
      let n =
        Array.fold_left
          (fun acc (s : Core_tile.stats) ->
            acc + s.Core_tile.issued_by_class.(idx))
          0 r.tile_stats
      in
      c ("mix." ^ Op.class_to_string cls) n)
    Op.all_classes

let run ?(sink = Sink.null) ?metrics ?(profile = false) ?checkpoint_at
    ?on_checkpoint ?resume ?sample ?progress cfg ~program ~trace ~tiles =
  let ntiles = Array.length tiles in
  if ntiles = 0 then invalid_arg "Soc.run: no tiles";
  if sample <> None && (checkpoint_at <> None || resume <> None) then
    invalid_arg "Soc.run: sampling cannot be combined with checkpoints";
  if ntiles <> trace.Trace.ntiles then
    invalid_arg
      (Printf.sprintf "Soc.run: %d tiles but trace has %d" ntiles
         trace.Trace.ntiles);
  Array.iteri
    (fun i spec ->
      let traced = trace.Trace.tiles.(i).Trace.kernel in
      if not (String.equal spec.kernel traced) then
        invalid_arg
          (Printf.sprintf "Soc.run: tile %d runs %s but trace has %s" i
             spec.kernel traced))
    tiles;
  let reg =
    match metrics with Some r -> r | None -> Metrics.create ()
  in
  let hier = Hierarchy.create ~sink ~ntiles cfg.hierarchy in
  let noc = Option.map (fun c -> Noc.create ~sink ~ntiles c) cfg.noc in
  let inter =
    Interleaver.create ~buffer_capacity:cfg.buffer_capacity
      ~wire_latency:cfg.wire_latency ?noc ~sink ()
  in
  let mgr =
    {
      active = [];
      invocations = 0;
      energy_pj_total = 0.0;
      busy_by_tile = Array.make ntiles 0;
    }
  in
  let ddg_cache = Hashtbl.create 4 in
  let ddg_of name =
    match Hashtbl.find_opt ddg_cache name with
    | Some d -> d
    | None ->
        let d = Ddg.build (Program.func_exn program name) in
        Hashtbl.replace ddg_cache name d;
        d
  in
  (* Sharded execution: [shards > 1] partitions the tiles into contiguous
     ascending ranges, one OCaml domain each, swept in cycle lockstep.
     Tile-private work (core pipelines, L1 hits under a private-only
     hierarchy) runs in parallel; every operation on shared state — the
     interleaver, shared cache levels, DRAM, the directory, the
     accelerator manager — is funneled through [Shard_sync] at the exact
     point (visited cycle, tile id) the serial scheduler would have
     executed it, so all counters come out bit-identical. Event streams
     would interleave nondeterministically across domains, so an enabled
     sink forces the serial scheduler. *)
  let nshards =
    let s = Stdlib.min cfg.shards ntiles in
    (* Sampling drives drains, fast-forwards and phase transitions from
       the serial scheduler's loop top; force serial when sampling. *)
    if s > 1 && (not (Sink.enabled sink)) && sample = None then s else 1
  in
  let sync =
    if nshards > 1 then
      Some (Mosaic_util.Shard_sync.create ~timed:(Span.enabled ()) ~nshards ())
    else None
  in
  let bounds = Array.init (nshards + 1) (fun k -> k * ntiles / nshards) in
  let shard_of = Array.make ntiles 0 in
  for k = 0 to nshards - 1 do
    for t = bounds.(k) to bounds.(k + 1) - 1 do
      shard_of.(t) <- k
    done
  done;
  (* Each slot is written only by its owning domain; comm callbacks read
     the caller's own slot, so there is no cross-domain access. *)
  let cur_seq = Array.make nshards 0 in
  let comm =
    let direct_mem ~tile ~cycle ~addr ~is_write =
      Hierarchy.access hier ~tile ~cycle ~addr ~is_write
    in
    match sync with
    | None ->
        {
          Core_tile.send =
            (fun ~src ~dst ~chan ~cycle ~available ->
              Interleaver.send inter ~src ~dst ~chan ~cycle ~available);
          try_recv =
            (fun ~tile ~chan ~cycle ->
              Interleaver.try_recv inter ~tile ~chan ~cycle);
          take_or_owe =
            (fun ~tile ~chan -> Interleaver.take_or_owe inter ~tile ~chan);
          accel =
            (fun ~tile ~kind ~params ~cycle ->
              accel_invoke mgr cfg hier ~sink ~tile ~kind ~params ~cycle);
          mem_access = direct_mem;
        }
    | Some sync ->
        let module Sync = Mosaic_util.Shard_sync in
        (* Take the acting tile's turn in the global shared-state order:
           returns once every other shard has swept past this point. *)
        let order tile =
          let shard = shard_of.(tile) in
          Sync.wait_order sync ~shard
            ~point:(Sync.point ~seq:cur_seq.(shard) ~tile)
        in
        let fast_private = Hierarchy.private_only_config hier in
        {
          Core_tile.send =
            (fun ~src ~dst ~chan ~cycle ~available ->
              order src;
              Interleaver.send inter ~src ~dst ~chan ~cycle ~available);
          try_recv =
            (fun ~tile ~chan ~cycle ->
              order tile;
              Interleaver.try_recv inter ~tile ~chan ~cycle);
          take_or_owe =
            (fun ~tile ~chan ->
              order tile;
              Interleaver.take_or_owe inter ~tile ~chan);
          accel =
            (fun ~tile ~kind ~params ~cycle ->
              order tile;
              accel_invoke mgr cfg hier ~sink ~tile ~kind ~params ~cycle);
          mem_access =
            (fun ~tile ~cycle ~addr ~is_write ->
              (* An L1 hit under a private-only hierarchy touches only the
                 tile's own cache state and commutes with every shared
                 operation — the common case, and the whole source of
                 parallelism on memory-bound workloads. *)
              if not (fast_private && Hierarchy.hits_private hier ~tile ~addr)
              then order tile;
              Hierarchy.access hier ~tile ~cycle ~addr ~is_write);
        }
  in
  let profiles =
    Array.map
      (fun spec ->
        if profile then
          let func = Program.func_exn program spec.kernel in
          Profile.create ~label:spec.kernel
            ~nblocks:(Array.length func.Func.blocks)
            ~ninstrs:func.Func.ninstrs
        else Profile.null)
      tiles
  in
  let cores =
    Array.mapi
      (fun i spec ->
        let lat_hist =
          Metrics.histogram reg (Printf.sprintf "tile.%d.load_latency" i)
        in
        Core_tile.create ~sink ~lat_hist ~profile:profiles.(i) ~id:i
          ~config:spec.tile_config
          ~func:(Program.func_exn program spec.kernel)
          ~ddg:(ddg_of spec.kernel) ~tile_trace:trace.Trace.tiles.(i)
          ~hierarchy:hier ~comm ())
      tiles
  in
  (* Wall clock, not [Sys.time]: process CPU time aggregates across all
     domains in OCaml 5, which would misreport per-run speed under the
     domain-parallel batch runner. *)
  let host_start = Unix.gettimeofday () in
  let sim_span = Span.begin_span "sim" in
  (* Progress reads only run state (cycle, per-tile retired counts), so it
     can never perturb simulated cycles; the tick sits behind a stepped-
     counter mask and is rate-limited inside [Progress.tick]. *)
  let progress_instrs () =
    let n = ref 0 in
    for i = 0 to ntiles - 1 do
      n := !n + (Core_tile.stats cores.(i)).Core_tile.completed_instrs
    done;
    !n
  in
  let progress_tick stepped cycle =
    match progress with
    | Some p when stepped land 1023 = 0 ->
        Progress.tick p ~cycle ~instrs:(progress_instrs ())
    | _ -> ()
  in
  let cycle = ref 0 in
  let stepped = ref 0 in
  (* Running finished count: each tile transitions to finished exactly
     once, so a per-step O(ntiles) [Array.for_all] rescan is unnecessary. *)
  let finished_count = ref 0 in
  let finished_flags = Array.make ntiles false in
  (* --- Checkpoints --- *)
  let capture () =
    {
      Snapshot.cycle = !cycle;
      stepped = !stepped;
      finished = Array.copy finished_flags;
      kernels = Array.map (fun (s : tile_spec) -> s.kernel) tiles;
      dyn_instrs =
        Array.map (fun (tt : Trace.tile_trace) -> tt.Trace.dyn_instrs)
          trace.Trace.tiles;
      profiled = profile;
      tiles = Array.map Core_tile.dump cores;
      hier = Hierarchy.dump hier;
      inter = Interleaver.dump inter;
      noc = Option.map Noc.dump noc;
      accel_active = Array.of_list mgr.active;
      accel_invocations = mgr.invocations;
      accel_energy_pj = mgr.energy_pj_total;
      accel_busy = Array.copy mgr.busy_by_tile;
    }
  in
  (match resume with
  | None -> ()
  | Some (s : Snapshot.t) ->
      if Array.length s.Snapshot.tiles <> ntiles then
        invalid_arg "Soc.run: snapshot tile count mismatch";
      Array.iteri
        (fun i (spec : tile_spec) ->
          if not (String.equal s.Snapshot.kernels.(i) spec.kernel) then
            invalid_arg "Soc.run: snapshot kernel mismatch")
        tiles;
      Array.iteri
        (fun i (tt : Trace.tile_trace) ->
          if s.Snapshot.dyn_instrs.(i) <> tt.Trace.dyn_instrs then
            invalid_arg "Soc.run: snapshot taken from a different trace")
        trace.Trace.tiles;
      if s.Snapshot.profiled <> profile then
        invalid_arg "Soc.run: snapshot profiling mode mismatch";
      Array.iteri (fun i d -> Core_tile.restore cores.(i) d) s.Snapshot.tiles;
      Hierarchy.restore hier s.Snapshot.hier;
      Interleaver.restore inter s.Snapshot.inter;
      (match (noc, s.Snapshot.noc) with
      | Some n, Some d -> Noc.restore n d
      | None, None -> ()
      | _ -> invalid_arg "Soc.run: snapshot NoC presence mismatch");
      mgr.active <- Array.to_list s.Snapshot.accel_active;
      mgr.invocations <- s.Snapshot.accel_invocations;
      mgr.energy_pj_total <- s.Snapshot.accel_energy_pj;
      Array.blit s.Snapshot.accel_busy 0 mgr.busy_by_tile 0 ntiles;
      Array.blit s.Snapshot.finished 0 finished_flags 0 ntiles;
      finished_count :=
        Array.fold_left (fun n f -> if f then n + 1 else n) 0 finished_flags;
      cycle := s.Snapshot.cycle;
      stepped := s.Snapshot.stepped);
  let snapped = ref false in
  let maybe_checkpoint ?(force = false) () =
    match checkpoint_at with
    | Some at when (not !snapped) && (force || !cycle >= at) ->
        snapped := true;
        (match on_checkpoint with Some f -> f (capture ()) | None -> ())
    | _ -> ()
  in
  (* --- Sampling --- *)
  let sampler =
    Option.map
      (fun spec ->
        let funcs =
          Array.map
            (fun (s : tile_spec) -> Program.func_exn program s.kernel)
            tiles
        in
        let on_accel ~tile:_ ~kind ~params =
          (* Functional invocation: count it and charge its closed-form
             energy, but no DMA burst, busy accounting or bandwidth
             sharing — timing in fast-forwarded stretches is extrapolated,
             not simulated. *)
          let design =
            match List.assoc_opt kind cfg.accel_designs with
            | Some d -> d
            | None -> Accel_model.default_design
          in
          let w = Accel_kinds.workload kind params in
          let est = Accel_model.estimate cfg.accel_sys design w in
          mgr.invocations <- mgr.invocations + 1;
          let pj = est.Accel_model.energy_j *. 1e12 in
          mgr.energy_pj_total <- mgr.energy_pj_total +. pj;
          pj
        in
        Sample.make_driver ~spec ~cores ~funcs ~profiles ~inter ~hier
          ~dyn_instrs:
            (Array.map
               (fun (tt : Trace.tile_trace) -> tt.Trace.dyn_instrs)
               trace.Trace.tiles)
          ~on_accel ~profiled:profile)
      sample
  in
  (* Periodic cumulative stall samples for Chrome counter tracks; only
     when both profiling and an enabled sink are wired up. *)
  let sampling = profile && Sink.enabled sink in
  let sample_interval = 1024 in
  let next_sample = ref 0 in
  let emit_samples () =
    for i = 0 to ntiles - 1 do
      Sink.emit sink ~cycle:!cycle
        (Mosaic_obs.Event.Stall_sample
           { tile = i; counts = Profile.counts profiles.(i) })
    done
  in
  (* Minimum next-event view across every component, evaluated at a
     globally quiescent [cycle]; [max_int] means nothing can ever wake (a
     true deadlock). Shared verbatim by both schedulers so the sharded
     reducer takes exactly the serial skip decisions. *)
  let min_next_event at =
    let next = ref max_int in
    let consider = function
      | Some c when c > at && c < !next -> next := c
      | Some _ | None -> ()
    in
    for i = 0 to ntiles - 1 do
      consider (Core_tile.next_event_cycle cores.(i) ~cycle:at)
    done;
    consider (Interleaver.next_arrival inter ~cycle:at);
    List.iter (fun finish -> consider (Some finish)) mgr.active;
    !next
  in
  let max_cycles_failure () =
    failwith
      (Printf.sprintf "Soc.run: exceeded max_cycles=%d (deadlock?)"
         cfg.max_cycles)
  in
  (match sync with
  | None ->
      while !finished_count < ntiles do
        if !cycle >= cfg.max_cycles then max_cycles_failure ();
        maybe_checkpoint ();
        (match sampler with
        | Some d -> Sample.tick d ~cycle:!cycle
        | None -> ());
        let progress = ref false in
        for i = 0 to ntiles - 1 do
          let c = cores.(i) in
          if Core_tile.step c ~cycle:!cycle then progress := true;
          if (not finished_flags.(i)) && Core_tile.finished c then begin
            finished_flags.(i) <- true;
            incr finished_count
          end
        done;
        incr stepped;
        progress_tick !stepped !cycle;
        if sampling && !cycle >= !next_sample then begin
          emit_samples ();
          next_sample := !cycle + sample_interval
        end;
        if !progress || not cfg.cycle_skip then incr cycle
        else begin
          (* Globally quiescent cycle: no tile processed an event, launched,
             issued or retired anything. Whatever each tile is blocked on is
             either a queued future event (reported below) or another
             component's progress — and nothing progressed, so the earliest
             possible state change is the minimum over all next-event views.
             Jump straight there; the intervening cycles are provably
             identical no-ops, so the simulated cycle count is unchanged. *)
          let next = min_next_event !cycle in
          let target =
            if next = max_int then
              (* Jump to the cap so a deadlock surfaces with the same
                 max_cycles failure as the naive sweep. *)
              cfg.max_cycles
            else Stdlib.min next cfg.max_cycles
          in
          let target =
            match sampler with
            | Some d -> Stdlib.min target (Sample.skip_cap d ~cycle:!cycle)
            | None -> target
          in
          (* Skipped cycles are provably identical no-ops, so each tile's
             attribution over the stretch is its frozen last-swept-cycle
             cause; booking it keeps per-tile attribution bit-identical with
             and without cycle skipping (and summing to [cycles]). *)
          if profile then begin
            let skipped = target - !cycle - 1 in
            if skipped > 0 then
              for i = 0 to ntiles - 1 do
                Profile.book_repeat profiles.(i) skipped
              done
          end;
          cycle := target
        end
      done
  | Some sync when !finished_count < ntiles ->
      let module Sync = Mosaic_util.Shard_sync in
      (* The serial loop fails at the top of its first iteration when the
         cap is non-positive; replicate before spawning any domain. *)
      if !cycle >= cfg.max_cycles then max_cycles_failure ();
      (* Same capture point as the serial loop top: before sweeping the
         first visited cycle (later cycles are handled by the reducer). *)
      maybe_checkpoint ();
      (* Per-shard sweep outcomes (each slot written by its owner before
         the barrier, read by the reducer) and the reducer's decisions
         (written under the barrier, read by every shard after it). *)
      let progress_of = Array.make nshards false in
      let newly_finished = Array.make nshards 0 in
      let next_cycle = ref 0 in
      let book = ref 0 in
      let stop = ref false in
      (* End-of-cycle decision, run once per visited cycle by whichever
         shard reaches the barrier last — the exact serial sequence:
         count progress, advance or skip, then stop or cap-check. The
         interleaver's next-arrival view drains its pqueue, so only the
         reducer may evaluate it. *)
      let reduce () =
        incr stepped;
        progress_tick !stepped !cycle;
        let progress = ref false in
        for k = 0 to nshards - 1 do
          if progress_of.(k) then progress := true;
          finished_count := !finished_count + newly_finished.(k)
        done;
        book := 0;
        let c = !cycle in
        (if !progress || not cfg.cycle_skip then next_cycle := c + 1
         else begin
           let next = min_next_event c in
           let target =
             if next = max_int then cfg.max_cycles
             else Stdlib.min next cfg.max_cycles
           in
           book := target - c - 1;
           next_cycle := target
         end);
        cycle := !next_cycle;
        (* Under the barrier every shard is parked, so reading all tiles
           here matches the serial loop-top capture point exactly. *)
        maybe_checkpoint ();
        if !finished_count >= ntiles then stop := true
        else if !cycle >= cfg.max_cycles then max_cycles_failure ()
      in
      Sync.run sync (fun k ->
          let lo = bounds.(k) and hi = bounds.(k + 1) in
          let seq = ref 0 in
          let my_cycle = ref !cycle in
          let running = ref true in
          while !running do
            let c = !my_cycle in
            let prog = ref false in
            let fin = ref 0 in
            for t = lo to hi - 1 do
              (* Announce the turn before stepping: shared ops by tiles
                 above [t] (on any shard) now wait for us. *)
              Sync.publish sync ~shard:k ~point:(Sync.point ~seq:!seq ~tile:t);
              let core = cores.(t) in
              if Core_tile.step core ~cycle:c then prog := true;
              if (not finished_flags.(t)) && Core_tile.finished core then begin
                finished_flags.(t) <- true;
                incr fin
              end
            done;
            incr seq;
            cur_seq.(k) <- !seq;
            (* Sweep done: release every tile of this visited cycle. *)
            Sync.publish sync ~shard:k ~point:(Sync.point ~seq:!seq ~tile:lo);
            progress_of.(k) <- !prog;
            newly_finished.(k) <- !fin;
            Sync.barrier sync ~shard:k ~reduce;
            if !stop then running := false
            else begin
              (* Book the skipped stretch into our own tiles' attribution
                 (same commutative per-tile booking the serial loop does
                 before advancing). *)
              if profile && !book > 0 then
                for t = lo to hi - 1 do
                  Profile.book_repeat profiles.(t) !book
                done;
              my_cycle := !next_cycle
            end
          done)
  | Some _ ->
      (* Resumed from a snapshot taken after every tile finished: there is
         no cycle left to sweep, and running one would book extra stepped
         cycles the straight run never saw. *)
      ());
  (* A checkpoint requested at or past the final cycle captures the
     end-of-run state (the serial loop top is never reached again), even
     when the requested cycle lies beyond the run's last cycle. *)
  maybe_checkpoint ~force:true ();
  if sampling then emit_samples ();
  Span.end_span sim_span;
  (match (sync, Span.enabled ()) with
  | Some sync, true ->
      let module Sync = Mosaic_util.Shard_sync in
      for k = 0 to nshards - 1 do
        Span.gauge_set reg
          (Printf.sprintf "host.shard.%d.barrier_wait_seconds" k)
          (Sync.wait_seconds sync k)
      done
  | _ -> ());
  let host_seconds = Unix.gettimeofday () -. host_start in
  let cycles = !cycle in
  let stepped_cycles = !stepped in
  let tile_stats = Array.map Core_tile.stats cores in
  let instrs =
    Array.fold_left
      (fun acc s -> acc + s.Core_tile.completed_instrs)
      0 tile_stats
  in
  let core_energy_pj =
    Array.fold_left (fun acc s -> acc +. s.Core_tile.energy_pj) 0.0 tile_stats
  in
  let totals = Hierarchy.totals hier in
  let me = cfg.mem_energy in
  let mem_energy_pj =
    (float_of_int totals.Hierarchy.l1_accesses *. me.l1_pj)
    +. (float_of_int totals.Hierarchy.l2_accesses *. me.l2_pj)
    +. (float_of_int totals.Hierarchy.llc_accesses *. me.llc_pj)
    +. (float_of_int totals.Hierarchy.dram_lines *. me.dram_line_pj)
  in
  (* Static (leakage + clock) energy per tile. While a tile waits on an
     accelerator it invoked, clock gating saves ~75% of its power (leakage
     and uncore remain). *)
  let static_j =
    Array.to_list
      (Array.mapi
         (fun i spec ->
           let finish =
             let f = tile_stats.(i).Core_tile.finish_cycle in
             if f >= 0 then f else cycles
           in
           let gated = Stdlib.min finish mgr.busy_by_tile.(i) in
           let powered =
             float_of_int (finish - gated) +. (0.25 *. float_of_int gated)
           in
           spec.tile_config.Tile_config.static_power_w
           *. (powered /. (cfg.freq_ghz *. 1e9)))
         tiles)
    |> List.fold_left ( +. ) 0.0
  in
  let energy_j = ((core_energy_pj +. mem_energy_pj) *. 1e-12) +. static_j in
  let seconds = float_of_int cycles /. (cfg.freq_ghz *. 1e9) in
  let r =
    {
      cycles;
      stepped_cycles;
      seconds;
      instrs;
      ipc =
        (if cycles = 0 then 0.0
         else float_of_int instrs /. float_of_int cycles);
      energy_j;
      edp = energy_j *. seconds;
      host_seconds;
      mips =
        (if host_seconds <= 0.0 then Float.infinity
         else float_of_int instrs /. host_seconds /. 1e6);
      tile_stats;
      interleaver = Interleaver.stats inter;
      mem_totals = totals;
      dram = Hierarchy.dram_stats hier;
      mao_stalls =
        Array.fold_left (fun acc c -> acc + Core_tile.mao_stalls c) 0 cores;
      accel_invocations = mgr.invocations;
      metrics = reg;
      profiles;
      sample = Option.map (fun d -> Sample.finish d ~cycle:cycles) sampler;
    }
  in
  (match progress with
  | Some p -> Progress.finish p ~cycle:cycles ~instrs
  | None -> ());
  publish_result reg r;
  (match r.sample with
  | Some (s : Sample.report) ->
      let c name v = Metrics.incr ~by:v (Metrics.counter reg name) in
      c "sample.est_cycles" s.Sample.est_cycles;
      c "sample.detailed_cycles" s.Sample.detailed_cycles;
      c "sample.detailed_instrs" s.Sample.detailed_instrs;
      c "sample.ff_instrs" s.Sample.ff_instrs;
      c "sample.periods" s.Sample.periods;
      c "sample.degraded" s.Sample.degraded
  | None -> ());
  Hierarchy.publish hier reg;
  Interleaver.publish inter reg;
  r

let run_homogeneous ?sink ?metrics ?profile ?checkpoint_at ?on_checkpoint
    ?resume ?sample ?progress cfg ~program ~trace ~tile_config =
  let tiles =
    Array.map
      (fun (tt : Trace.tile_trace) -> { kernel = tt.Trace.kernel; tile_config })
      trace.Trace.tiles
  in
  run ?sink ?metrics ?profile ?checkpoint_at ?on_checkpoint ?resume ?sample
    ?progress cfg ~program ~trace ~tiles
