(** SoC composition and simulation driver — "plug-and-play" heterogeneous
    systems (§II, §VII).

    A run takes a program, its dynamic traces, and one {!tile_spec} per
    tile; it instantiates the shared memory hierarchy, the Interleaver, and
    a graph-based tile model per tile, then steps everything cycle by cycle
    until all tiles drain. Accelerator instructions are served by the
    analytic models of [Mosaic_accel], with memory bandwidth shared among
    concurrent invocations and DMA traffic charged to DRAM. *)

type tile_spec = {
  kernel : string;  (** function this tile executes *)
  tile_config : Mosaic_tile.Tile_config.t;
}

type mem_energy = {
  l1_pj : float;
  l2_pj : float;
  llc_pj : float;
  dram_line_pj : float;
}

type config = {
  hierarchy : Mosaic_memory.Hierarchy.config;
  buffer_capacity : int;  (** inter-tile communication buffers *)
  wire_latency : int;
  noc : Noc.config option;
      (** when set, inter-tile messages ride the mesh NoC model *)
  accel_sys : Mosaic_accel.Accel_model.sys_params;
  accel_designs : (string * Mosaic_accel.Accel_model.design_point) list;
      (** design point instantiated per accelerator kind *)
  freq_ghz : float;
  mem_energy : mem_energy;
  max_cycles : int;
  cycle_skip : bool;
      (** event-driven cycle skipping (on by default): when every tile
          reports a quiescent step, the scheduler jumps straight to the
          earliest next-event cycle instead of sweeping the intervening
          no-op cycles. Results are cycle-exact either way; disable (the
          CLI's [--no-skip]) to force the naive per-cycle sweep when
          debugging the scheduler itself. *)
  shards : int;
      (** simulate one SoC across this many OCaml domains (default 1 =
          serial). Tiles are partitioned into contiguous ranges swept in
          cycle lockstep; tile-private work (pipelines, L1 hits without
          coherence or L1 prefetching) parallelizes, while operations on
          shared state (interleaver, shared caches, DRAM, directory,
          accelerators) are re-serialized in exact serial program order,
          so every result field and registry counter is bit-identical to
          [shards = 1]. Clamped to the tile count; an enabled event sink
          forces serial execution (event streams would otherwise
          interleave nondeterministically). Speedup requires free host
          cores — see {!Mosaic_util.Domain_pool.available_cores}. *)
}

val default_config : config

(** Replace the hierarchy of a config (builders often share the rest). *)
val with_hierarchy : config -> Mosaic_memory.Hierarchy.config -> config

type result = {
  cycles : int;
  stepped_cycles : int;
      (** scheduler iterations actually executed; equals [cycles] under
          the naive sweep and drops below it when cycle skipping
          fast-forwards over quiescent stretches *)
  seconds : float;  (** simulated time at [freq_ghz] *)
  instrs : int;  (** dynamic instructions completed across tiles *)
  ipc : float;
  energy_j : float;  (** cores + memory + accelerators *)
  edp : float;  (** energy-delay product, J*s *)
  host_seconds : float;  (** simulator wall-clock *)
  mips : float;  (** simulation speed in simulated MIPS *)
  tile_stats : Mosaic_tile.Core_tile.stats array;
  interleaver : Interleaver.stats;
  mem_totals : Mosaic_memory.Hierarchy.totals;
  dram : Mosaic_memory.Dram.stats;
  mao_stalls : int;
  accel_invocations : int;
  metrics : Mosaic_obs.Metrics.t;
      (** registry all components published into; source of truth for
          {!Report} and the metrics exporters *)
  profiles : Mosaic_tile.Profile.t array;
      (** per-tile cycle-accounting stores when the run was profiled
          ([Profile.null] per tile otherwise). Invariant: for every tile,
          [Profile.total] equals [cycles], with and without cycle
          skipping. *)
  sample : Sample.report option;
      (** present iff the run was sampled; [report.est_cycles] is the
          extrapolated whole-run cycle estimate ([cycles] holds only the
          detailed clock of the measured portions) *)
}

(** Raises [Invalid_argument] when tiles and trace disagree (count or
    kernels), and [Failure] if [max_cycles] elapses before all tiles
    finish.

    An enabled [sink] receives the full event stream (instruction
    issue/retire, cache hits/misses/evictions, DRAM row activations,
    interleaver handoffs, NoC hops, accelerator invocations); the default
    null sink costs nothing. [metrics] supplies the registry that tiles and
    memory publish into (a fresh one is created when absent); pass a fresh
    registry per run — metric names are registered once and duplicates
    raise.

    [profile] (default off) turns on the cycle-accounting profiler: every
    tile-cycle is attributed to one {!Mosaic_obs.Stall.cause}, per-tile
    and per-basic-block, surfaced in [result.profiles], as
    [tile.<i>.stall.<cause>] / [stall.<cause>] registry counters, and —
    when [sink] is also enabled — as periodic cumulative
    [Event.Stall_sample] counter-track events. Simulated cycle counts are
    bit-identical with profiling on or off.

    {b Checkpoints.} [checkpoint_at:n] captures a {!Snapshot.t} at the
    first visited cycle [>= n] (or at end of run when [n] is past it) and
    hands it to [on_checkpoint]; capture happens before that cycle is
    swept, so resuming reproduces the remainder bit-identically. [resume]
    restores a snapshot before the first cycle: the run continues from
    [Snapshot.cycle] and every final counter matches the straight run.
    Resume validates tile count, kernels, trace identity (dynamic
    instruction counts), profiling mode and NoC presence, raising
    [Invalid_argument] on mismatch. Snapshots work under sharded execution
    too (capture points coincide with the serial scheduler's).

    {b Sampling.} [sample:spec] turns on interval sampling
    ({!Sample.spec}): detailed measurement alternates with functional
    fast-forward, and [result.sample] carries the extrapolated cycle and
    stall estimates. Sampled runs force [shards = 1] and cannot be
    combined with checkpoints ([Invalid_argument]). *)
val run :
  ?sink:Mosaic_obs.Sink.t ->
  ?metrics:Mosaic_obs.Metrics.t ->
  ?profile:bool ->
  ?checkpoint_at:int ->
  ?on_checkpoint:(Snapshot.t -> unit) ->
  ?resume:Snapshot.t ->
  ?sample:Sample.spec ->
  ?progress:Mosaic_obs.Progress.t ->
  config ->
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  tiles:tile_spec array ->
  result

(** Convenience: homogeneous system of [n] identical tiles running the
    trace's kernel. *)
val run_homogeneous :
  ?sink:Mosaic_obs.Sink.t ->
  ?metrics:Mosaic_obs.Metrics.t ->
  ?profile:bool ->
  ?checkpoint_at:int ->
  ?on_checkpoint:(Snapshot.t -> unit) ->
  ?resume:Snapshot.t ->
  ?sample:Sample.spec ->
  ?progress:Mosaic_obs.Progress.t ->
  config ->
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  tile_config:Mosaic_tile.Tile_config.t ->
  result
