module Bounded_queue = Mosaic_util.Bounded_queue
module Pqueue = Mosaic_util.Pqueue

type message = { arrival : int }

type stats = {
  mutable sends : int;
  mutable recvs : int;
  mutable send_stalls : int;
  mutable max_occupancy : int;
}

type t = {
  capacity : int;
  wire_latency : int;
  noc : Noc.t option;
  buffers : (int * int, message Bounded_queue.t) Hashtbl.t;
  owed : (int * int, int) Hashtbl.t;
      (** per (dst, chan): consumptions committed before the message *)
  mutable occupancy : int;
      (** running total of buffered messages across all channels *)
  arrivals : unit Pqueue.t;
      (** arrival cycles of buffered sends, drained lazily; its head is the
          conservative next-event view for the cycle-skipping scheduler *)
  stats : stats;
  sink : Mosaic_obs.Sink.t;
}

let create ?(buffer_capacity = 512) ?(wire_latency = 1) ?noc
    ?(sink = Mosaic_obs.Sink.null) () =
  if buffer_capacity <= 0 then
    invalid_arg "Interleaver.create: buffer_capacity must be positive";
  {
    capacity = buffer_capacity;
    wire_latency;
    noc;
    buffers = Hashtbl.create 16;
    owed = Hashtbl.create 16;
    occupancy = 0;
    arrivals = Pqueue.create ();
    stats = { sends = 0; recvs = 0; send_stalls = 0; max_occupancy = 0 };
    sink;
  }

let buffer t ~dst ~chan =
  let key = (dst, chan) in
  match Hashtbl.find_opt t.buffers key with
  | Some q -> q
  | None ->
      let q = Bounded_queue.create ~capacity:t.capacity () in
      Hashtbl.replace t.buffers key q;
      q

let occupancy t = t.occupancy

let owed_count t key =
  Option.value ~default:0 (Hashtbl.find_opt t.owed key)

let emit_handoff t ~src ~dst ~chan ~cycle =
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Interleaver_handoff { src; dst; chan })

let send t ~src ~dst ~chan ~cycle ~available =
  let key = (dst, chan) in
  if owed_count t key > 0 then begin
    (* The consumer already committed this slot; the message is absorbed. *)
    Hashtbl.replace t.owed key (owed_count t key - 1);
    t.stats.sends <- t.stats.sends + 1;
    emit_handoff t ~src ~dst ~chan ~cycle;
    true
  end
  else
  let q = buffer t ~dst ~chan in
  let arrival =
    match t.noc with
    | Some noc -> Noc.delay noc ~src ~dst ~cycle:available
    | None -> available + t.wire_latency
  in
  if Bounded_queue.push q { arrival } then begin
    t.stats.sends <- t.stats.sends + 1;
    emit_handoff t ~src ~dst ~chan ~cycle;
    t.occupancy <- t.occupancy + 1;
    Pqueue.add t.arrivals ~prio:arrival ();
    if t.occupancy > t.stats.max_occupancy then
      t.stats.max_occupancy <- t.occupancy;
    true
  end
  else begin
    t.stats.send_stalls <- t.stats.send_stalls + 1;
    false
  end

let take_or_owe t ~tile ~chan =
  let q = buffer t ~dst:tile ~chan in
  match Bounded_queue.pop q with
  | Some _ ->
      t.occupancy <- t.occupancy - 1;
      t.stats.recvs <- t.stats.recvs + 1;
      true
  | None ->
      let key = (tile, chan) in
      let owed = owed_count t key in
      if owed >= t.capacity then false
      else begin
        Hashtbl.replace t.owed key (owed + 1);
        t.stats.recvs <- t.stats.recvs + 1;
        true
      end

let try_recv t ~tile ~chan ~cycle =
  let q = buffer t ~dst:tile ~chan in
  match Bounded_queue.pop q with
  | Some msg ->
      t.occupancy <- t.occupancy - 1;
      t.stats.recvs <- t.stats.recvs + 1;
      Some (Stdlib.max (cycle + 1) msg.arrival)
  | None -> None

(* Buffered messages are consumable as soon as they are enqueued (arrival
   only bounds the receive-completion cycle), so this is a conservative
   wake-up hint, not a gate: the scheduler may wake at an arrival and find
   nothing to do. Entries for already-consumed or already-arrived messages
   are drained lazily here. *)
let next_arrival t ~cycle =
  let rec drain () =
    match Pqueue.peek_prio t.arrivals with
    | Some c when c <= cycle ->
        ignore (Pqueue.pop t.arrivals);
        drain ()
    | other -> other
  in
  drain ()

let stats t = t.stats

(* Publish the messaging counters under "inter.*" into a metrics
   registry; the report's memory table reads these. *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c name v = M.incr ~by:v (M.counter reg name) in
  c "inter.sends" t.stats.sends;
  c "inter.recvs" t.stats.recvs;
  c "inter.send_stalls" t.stats.send_stalls;
  c "inter.max_occupancy" t.stats.max_occupancy;
  Option.iter (fun noc -> Noc.publish noc reg) t.noc
