module Int_ring = Mosaic_util.Int_ring
module Int_table = Mosaic_util.Int_table
module Pqueue = Mosaic_util.Pqueue

type stats = {
  mutable sends : int;
  mutable recvs : int;
  mutable send_stalls : int;
  mutable max_occupancy : int;
}

(* (dst, chan) pairs key both the message buffers and the owed counters.
   Packing them into one int keeps the lookups in monomorphic int tables:
   the previous tuple-keyed [Hashtbl]s allocated a key per send/receive and
   probed twice (find then replace). Channel ids are small enumerations, so
   20 bits is far beyond any configuration. *)
let pack ~dst ~chan = (dst lsl 20) lor chan

type t = {
  capacity : int;
  wire_latency : int;
  noc : Noc.t option;
  buffers : Int_table.t;  (** packed key -> index into [rings] *)
  mutable rings : Int_ring.t array;
  mutable nrings : int;
  owed : Int_table.t;
      (** per packed (dst, chan): consumptions committed before the message *)
  mutable occupancy : int;
      (** running total of buffered messages across all channels *)
  arrivals : unit Pqueue.t;
      (** arrival cycles of buffered sends, drained lazily; its head is the
          conservative next-event view for the cycle-skipping scheduler *)
  stats : stats;
  sink : Mosaic_obs.Sink.t;
}

let create ?(buffer_capacity = 512) ?(wire_latency = 1) ?noc
    ?(sink = Mosaic_obs.Sink.null) () =
  if buffer_capacity <= 0 then
    invalid_arg "Interleaver.create: buffer_capacity must be positive";
  {
    capacity = buffer_capacity;
    wire_latency;
    noc;
    buffers = Int_table.create ~initial_capacity:16 ();
    rings = [||];
    nrings = 0;
    owed = Int_table.create ~initial_capacity:16 ();
    occupancy = 0;
    arrivals = Pqueue.create ();
    stats = { sends = 0; recvs = 0; send_stalls = 0; max_occupancy = 0 };
    sink;
  }

let buffer t ~dst ~chan =
  let key = pack ~dst ~chan in
  let i = Int_table.find t.buffers key ~default:(-1) in
  if i >= 0 then t.rings.(i)
  else begin
    let q = Int_ring.create ~capacity:t.capacity in
    if t.nrings = Array.length t.rings then begin
      let grown = Array.make (Stdlib.max 8 (2 * t.nrings)) q in
      Array.blit t.rings 0 grown 0 t.nrings;
      t.rings <- grown
    end;
    t.rings.(t.nrings) <- q;
    Int_table.set t.buffers key t.nrings;
    t.nrings <- t.nrings + 1;
    q
  end

let occupancy t = t.occupancy
let capacity t = t.capacity

let emit_handoff t ~src ~dst ~chan ~cycle =
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Interleaver_handoff { src; dst; chan })

let send t ~src ~dst ~chan ~cycle ~available =
  let owed_slot = Int_table.probe t.owed (pack ~dst ~chan) in
  if owed_slot >= 0 && Int_table.value_at t.owed owed_slot > 0 then begin
    (* The consumer already committed this slot; the message is absorbed. *)
    Int_table.set_at t.owed owed_slot (Int_table.value_at t.owed owed_slot - 1);
    t.stats.sends <- t.stats.sends + 1;
    emit_handoff t ~src ~dst ~chan ~cycle;
    true
  end
  else
    let q = buffer t ~dst ~chan in
    let arrival =
      match t.noc with
      | Some noc -> Noc.delay noc ~src ~dst ~cycle:available
      | None -> available + t.wire_latency
    in
    if Int_ring.push q arrival then begin
      t.stats.sends <- t.stats.sends + 1;
      emit_handoff t ~src ~dst ~chan ~cycle;
      t.occupancy <- t.occupancy + 1;
      Pqueue.add t.arrivals ~prio:arrival ();
      if t.occupancy > t.stats.max_occupancy then
        t.stats.max_occupancy <- t.occupancy;
      true
    end
    else begin
      t.stats.send_stalls <- t.stats.send_stalls + 1;
      false
    end

let take_or_owe t ~tile ~chan =
  let q = buffer t ~dst:tile ~chan in
  if not (Int_ring.is_empty q) then begin
    ignore (Int_ring.pop_exn q);
    t.occupancy <- t.occupancy - 1;
    t.stats.recvs <- t.stats.recvs + 1;
    true
  end
  else begin
    let key = pack ~dst:tile ~chan in
    let slot = Int_table.probe t.owed key in
    let owed = if slot >= 0 then Int_table.value_at t.owed slot else 0 in
    if owed >= t.capacity then false
    else begin
      if slot >= 0 then Int_table.set_at t.owed slot (owed + 1)
      else Int_table.set t.owed key 1;
      t.stats.recvs <- t.stats.recvs + 1;
      true
    end
  end

let try_recv t ~tile ~chan ~cycle =
  let q = buffer t ~dst:tile ~chan in
  if Int_ring.is_empty q then None
  else begin
    let arrival = Int_ring.pop_exn q in
    t.occupancy <- t.occupancy - 1;
    t.stats.recvs <- t.stats.recvs + 1;
    Some (Stdlib.max (cycle + 1) arrival)
  end

(* Buffered messages are consumable as soon as they are enqueued (arrival
   only bounds the receive-completion cycle), so this is a conservative
   wake-up hint, not a gate: the scheduler may wake at an arrival and find
   nothing to do. Entries for already-consumed or already-arrived messages
   are drained lazily here. *)
let next_arrival t ~cycle =
  while
    (not (Pqueue.is_empty t.arrivals)) && Pqueue.min_prio t.arrivals <= cycle
  do
    Pqueue.drop_min t.arrivals
  done;
  if Pqueue.is_empty t.arrivals then None else Some (Pqueue.min_prio t.arrivals)

let stats t = t.stats

(* --- Fast-forward support ---

   The functional fast-forward executor models each (dst, chan) channel as
   a pair of counters — buffered messages and owed consumptions — seeded
   from the live state here, replayed against the trace, and committed
   back when detailed simulation resumes. *)

let ff_channel t ~dst ~chan =
  let key = pack ~dst ~chan in
  let i = Int_table.find t.buffers key ~default:(-1) in
  let buffered = if i >= 0 then Int_ring.length t.rings.(i) else 0 in
  (buffered, Int_table.find t.owed key ~default:0)

let ff_set_channel t ~dst ~chan ~buffered ~owed ~sends ~recvs ~cycle =
  let q = buffer t ~dst ~chan in
  (* Oldest tokens were consumed first; tokens minted during fast-forward
     are available at the resume cycle. *)
  let net = buffered - Int_ring.length q in
  if net < 0 then
    for _ = 1 to -net do
      ignore (Int_ring.pop_exn q)
    done
  else
    for _ = 1 to net do
      if not (Int_ring.push q cycle) then
        invalid_arg "Interleaver.ff_set_channel: buffered beyond capacity";
      Pqueue.add t.arrivals ~prio:cycle ()
    done;
  Int_table.set t.owed (pack ~dst ~chan) owed;
  t.occupancy <- t.occupancy + net;
  t.stats.sends <- t.stats.sends + sends;
  t.stats.recvs <- t.stats.recvs + recvs;
  if t.occupancy > t.stats.max_occupancy then
    t.stats.max_occupancy <- t.occupancy

(* --- Snapshot support ---

   Ring indices are assigned in channel-creation order, so [buffers] and
   [rings] are dumped together, slot for slot; [arrivals] keeps its exact
   heap layout so post-restore wake-up hints match the straight run. *)

type dump = {
  d_buffers : Int_table.dump;
  d_rings : Int_ring.dump array;
  d_owed : Int_table.dump;
  d_occupancy : int;
  d_arrivals : unit Pqueue.dump;
  d_stats : int array;
}

let dump t =
  {
    d_buffers = Int_table.dump t.buffers;
    d_rings = Array.init t.nrings (fun i -> Int_ring.dump t.rings.(i));
    d_owed = Int_table.dump t.owed;
    d_occupancy = t.occupancy;
    d_arrivals = Pqueue.dump t.arrivals;
    d_stats =
      [| t.stats.sends; t.stats.recvs; t.stats.send_stalls;
         t.stats.max_occupancy |];
  }

let restore t d =
  Int_table.restore t.buffers d.d_buffers;
  let rings = Array.map Int_ring.of_dump d.d_rings in
  t.rings <- rings;
  t.nrings <- Array.length rings;
  Int_table.restore t.owed d.d_owed;
  t.occupancy <- d.d_occupancy;
  Pqueue.restore t.arrivals d.d_arrivals;
  t.stats.sends <- d.d_stats.(0);
  t.stats.recvs <- d.d_stats.(1);
  t.stats.send_stalls <- d.d_stats.(2);
  t.stats.max_occupancy <- d.d_stats.(3)

(* Publish the messaging counters under "inter.*" into a metrics
   registry; the report's memory table reads these. *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c name v = M.incr ~by:v (M.counter reg name) in
  c "inter.sends" t.stats.sends;
  c "inter.recvs" t.stats.recvs;
  c "inter.send_stalls" t.stats.send_stalls;
  c "inter.max_occupancy" t.stats.max_occupancy;
  Option.iter (fun noc -> Noc.publish noc reg) t.noc
