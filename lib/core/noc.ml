type config = {
  width : int;
  hop_latency : int;
  link_capacity : int;
  epoch_cycles : int;
}

let default_config ~ntiles =
  let width =
    Stdlib.max 1 (int_of_float (Float.ceil (sqrt (float_of_int ntiles))))
  in
  { width; hop_latency = 4; link_capacity = 8; epoch_cycles = 32 }

type stats = {
  mutable messages : int;
  mutable total_hops : int;
  mutable contended : int;
}

type t = {
  cfg : config;
  ntiles : int;
  (* (link id, epoch) -> messages in flight on that link that epoch *)
  link_load : (int * int, int) Hashtbl.t;
  stats : stats;
  sink : Mosaic_obs.Sink.t;
}

let create ?(sink = Mosaic_obs.Sink.null) ~ntiles cfg =
  if ntiles <= 0 then invalid_arg "Noc.create: ntiles must be positive";
  if cfg.width <= 0 || cfg.hop_latency < 0 || cfg.link_capacity <= 0 then
    invalid_arg "Noc.create: bad configuration";
  {
    cfg;
    ntiles;
    link_load = Hashtbl.create 256;
    stats = { messages = 0; total_hops = 0; contended = 0 };
    sink;
  }

let coords t tile = (tile mod t.cfg.width, tile / t.cfg.width)

let check_tile t name tile =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Noc.%s: bad tile %d" name tile)

let hops t ~src ~dst =
  check_tile t "hops" src;
  check_tile t "hops" dst;
  let x1, y1 = coords t src and x2, y2 = coords t dst in
  abs (x1 - x2) + abs (y1 - y2)

(* XY routing: move along x first, then y. Links are identified by the
   node left behind and a direction code. *)
let path t ~src ~dst =
  let x2, y2 = coords t dst in
  let rec walk x y acc =
    if x < x2 then walk (x + 1) y (((4 * ((y * t.cfg.width) + x)) + 0) :: acc)
    else if x > x2 then walk (x - 1) y (((4 * ((y * t.cfg.width) + x)) + 1) :: acc)
    else if y < y2 then walk x (y + 1) (((4 * ((y * t.cfg.width) + x)) + 2) :: acc)
    else if y > y2 then walk x (y - 1) (((4 * ((y * t.cfg.width) + x)) + 3) :: acc)
    else List.rev acc
  in
  let x1, y1 = coords t src in
  walk x1 y1 []

let reserve_link t link ~earliest =
  let rec find epoch =
    let used = Option.value ~default:0 (Hashtbl.find_opt t.link_load (link, epoch)) in
    if used < t.cfg.link_capacity then begin
      Hashtbl.replace t.link_load (link, epoch) (used + 1);
      epoch
    end
    else find (epoch + 1)
  in
  let epoch = find (earliest / t.cfg.epoch_cycles) in
  Stdlib.max earliest (epoch * t.cfg.epoch_cycles)

let delay t ~src ~dst ~cycle =
  check_tile t "delay" src;
  check_tile t "delay" dst;
  t.stats.messages <- t.stats.messages + 1;
  let links = path t ~src ~dst in
  t.stats.total_hops <- t.stats.total_hops + List.length links;
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Noc_hop { src; dst; hops = List.length links });
  (* Local delivery still crosses the router once. *)
  let arrival = ref (cycle + t.cfg.hop_latency) in
  List.iter
    (fun link ->
      let start = reserve_link t link ~earliest:!arrival in
      if start > !arrival then t.stats.contended <- t.stats.contended + 1;
      arrival := start + t.cfg.hop_latency)
    links;
  !arrival

(* Link bandwidth is reserved eagerly: [delay] walks the whole path and
   books every epoch at injection time, so a routed message's arrival is
   final the moment it is sent and the mesh holds no state that matures on
   its own. In-flight arrivals are therefore tracked by the Interleaver
   (which buffers the messages); the NoC itself never constrains a skip. *)
let next_event _t ~cycle:_ = None

let stats t = t.stats

(* Snapshot: link reservations as explicit bindings (Hashtbl internal
   layout never affects behaviour — only keyed find/replace is used) plus
   the stats. *)

type dump = { d_links : (int * int * int) array; d_stats : int array }

let dump t =
  let links =
    Hashtbl.fold (fun (link, epoch) used acc -> (link, epoch, used) :: acc)
      t.link_load []
  in
  {
    d_links = Array.of_list links;
    d_stats = [| t.stats.messages; t.stats.total_hops; t.stats.contended |];
  }

let restore t d =
  Hashtbl.reset t.link_load;
  Array.iter
    (fun (link, epoch, used) -> Hashtbl.replace t.link_load (link, epoch) used)
    d.d_links;
  t.stats.messages <- d.d_stats.(0);
  t.stats.total_hops <- d.d_stats.(1);
  t.stats.contended <- d.d_stats.(2)

(* Publish the message counters under "noc.*" into a metrics registry. *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c name v = M.incr ~by:v (M.counter reg name) in
  c "noc.messages" t.stats.messages;
  c "noc.total_hops" t.stats.total_hops;
  c "noc.contended" t.stats.contended
