(** Interval sampling (SMARTS-style, by instruction count) and the
    functional fast-forward between measured intervals.

    [Soc.run ?sample] alternates detailed measurement → pipeline drain →
    functional fast-forward (trace position, cache/directory image, branch
    counters and channel occupancy advance; no timing) → detailed warmup
    (timing discarded) → measurement, then extrapolates total cycles and
    stall attribution from the measured intervals. The full simulator
    remains the exact oracle; sampled runs report their own error against
    it in the bench suite. *)

open Mosaic_ir

type spec = {
  period : int;  (** instructions (all tiles) per sampling period *)
  interval : int;  (** detailed-measurement instructions per period *)
  warmup : int;  (** detailed warmup instructions before each measurement *)
}

(** Raises [Invalid_argument] unless [period > interval + warmup > 0]. *)
val validate_spec : spec -> unit

(** A reasonable default: ~10 periods across the run, 1/8 of each measured
    in detail, a short warmup ahead of each measurement. *)
val auto : total_instrs:int -> spec

type report = {
  est_cycles : int;
      (** detailed clock plus the extrapolated fast-forwarded stretches *)
  detailed_cycles : int;
  detailed_instrs : int;
  ff_instrs : int;  (** instructions executed functionally *)
  periods : int;  (** completed fast-forward stretches *)
  degraded : int;  (** drains that missed their deadline (ran exact) *)
  est_stalls : int array;
      (** estimated per-cause cycle totals across tiles; [[||]] when
          unprofiled *)
}

(** {1 Internal driver} — owned by [Soc.run]; exposed for tests. *)

type driver

val make_driver :
  spec:spec ->
  cores:Mosaic_tile.Core_tile.t array ->
  funcs:Func.t array ->
  profiles:Mosaic_tile.Profile.t array ->
  inter:Interleaver.t ->
  hier:Mosaic_memory.Hierarchy.t ->
  dyn_instrs:int array ->
  on_accel:(tile:int -> kind:string -> params:Value.t array -> float) ->
  profiled:bool ->
  driver

(** Run at the top of every visited cycle, before the tiles step. *)
val tick : driver -> cycle:int -> unit

(** Highest cycle the event-driven scheduler may skip to from [cycle]
    ([max_int] outside drains — during a drain the driver must observe
    quiescence promptly). *)
val skip_cap : driver -> cycle:int -> int

(** Build the report once the run completes at [cycle]. *)
val finish : driver -> cycle:int -> report

(** {1 Fast-forward executor} — exposed for tests; [Soc.run] drives it via
    the driver. [targets] are per-tile instruction counts to advance
    (block-granular, soft); returns the instructions actually skipped per
    tile. *)
val fast_forward :
  cores:Mosaic_tile.Core_tile.t array ->
  funcs:Func.t array ->
  inter:Interleaver.t ->
  hier:Mosaic_memory.Hierarchy.t ->
  on_accel:(tile:int -> kind:string -> params:Value.t array -> float) ->
  cycle:int ->
  targets:int array ->
  int array
