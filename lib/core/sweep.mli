(** Incremental design-space sweeps: one exact profiled simulation plus N
    cheap re-timings ({!Retime}), with the full simulator available as
    the per-point oracle ([exact:true]) so cycle error is measured, never
    assumed.

    A sweep is described by axes over the SoC config and the tile config.
    Axis specs are strings like ["l1=8,16,32,64"]; supported axes:
    [l1]/[l2]/[llc] (cache KB), [dramlat] (SimpleDRAM min latency),
    [wire] (flat wire latency), [plm] (accelerator PLM KB), [lanes]
    (accelerator parallel lanes), [width]/[window]/[lsq]/[div] (core
    knobs), [freq] (GHz — timing-invariant by design, useful as a
    bit-exactness probe). *)

type edit = Soc.config * Mosaic_tile.Tile_config.t ->
  Soc.config * Mosaic_tile.Tile_config.t

type axis = { axis : string; points : (string * edit) list }

(** Parse ["name=v1,v2,..."]. Raises [Failure] on unknown axes or bad
    values (validated eagerly). *)
val axis_of_spec : string -> axis

(** Cartesian product of axes; labels join as ["l1=8 llc=512"], first
    axis slowest. *)
val grid : axis list -> (string * edit) list

(** The 16-point default: [l1=8,16,32,64] x [l2=256,512,1024,2048]. *)
val default_axes : string list

type point = {
  label : string;
  retimed : Retime.point;
  exact_cycles : int option;  (** oracle cycles when [exact] was set *)
  err_pct : float option;  (** |retimed - exact| / exact, percent *)
}

type t = {
  base : Soc.result;  (** the one exact profiled anchor run *)
  prep : Retime.prep;
  points : point array;
  base_seconds : float;  (** wall clock of the profiled base simulation *)
  analyze_seconds : float;  (** skeleton extraction *)
  retime_seconds : float;  (** all re-timings together *)
  exact_seconds : float;  (** all oracle simulations (0 when not run) *)
}

(** Run a sweep over [points] (see {!grid}). The base simulation runs
    once at [cfg]/[tile_config]; every point re-times its edited config.
    With [exact:true] each point is also fully simulated and its error
    recorded. [jobs] distributes re-timings and oracle runs across
    domains; results are bit-identical at any job count. *)
val run :
  ?jobs:int ->
  ?exact:bool ->
  Soc.config ->
  tile_config:Mosaic_tile.Tile_config.t ->
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  (string * edit) list ->
  t

(** Wall cost of the incremental sweep: base + analysis + re-timings. *)
val incremental_seconds : t -> float

(** [exact_seconds / incremental_seconds]; [None] unless the oracle ran. *)
val speedup : t -> float option

(** Largest per-point error (0 when the oracle did not run). *)
val max_err_pct : t -> float

val err_pct : retimed:int -> exact:int -> float
