(** Host-telemetry wiring shared by the CLI and the bench suite.

    {!Mosaic_obs.Span} knows nothing about the trace store or container
    formats; this module assembles the full host picture for one
    process: span gauges + [host.store.*] counters into a registry,
    format-version identity for [mosaicsim version] and manifests, and
    config digests for run identity. *)

val versions : unit -> (string * string) list
(** [semantics], [trace_format] (["MSTR v1"]), [snapshot_format]
    (["MSNP v1"]). *)

val config_digest : Soc.config -> tiles:Soc.tile_spec array -> string
(** Hex MD5 of the structural (Marshal, no-sharing) image of the design
    point — equal configs digest equal, independent of construction. *)

val publish_host : Mosaic_obs.Metrics.t -> unit
(** {!Mosaic_obs.Span.publish} plus [host.store.{hits,misses,bytes}]
    from {!Mosaic_trace.Store.stats}. Find-or-create; safe to call more
    than once. *)

val manifest :
  kind:string ->
  name:string ->
  ?digests:(string * string) list ->
  metrics:Mosaic_obs.Metrics.t ->
  unit ->
  Mosaic_obs.Manifest.t
(** {!publish_host} into [metrics], then {!Mosaic_obs.Manifest.make}
    with {!versions} filled in. *)
