(** Incremental re-timing: one exact profiled simulation, then cheap
    config re-pricing for design-space sweeps (the LightningSim split).

    {!prepare} runs the exact simulator once with the cycle-accounting
    profiler and extracts the config-independent trace skeleton
    ([Mosaic_trace.Analysis.skeleton]). {!run} then prices any candidate
    config in microseconds by scaling each tile's measured stall-cause
    decomposition: memory stalls by an AMAT ratio derived from the reuse
    histogram, dependency stalls by the critical-chain latency ratio,
    issue/structural/LSQ/communication/branch stalls by their resource
    ratios, plus an additive closed-form accelerator term; SoC cycles are
    rebuilt as [1 + max] over tiles, the identity the exact scheduler
    satisfies.

    Guarantees (fuzzed and CI-guarded):
    - At the base config, {!run} reproduces the exact simulator's cycle
      and instruction counts bit-for-bit (every scale is exactly 1.0).
    - On config axes that cannot change simulated timing (frequency,
      energy parameters), results stay bit-identical to the exact oracle.
    - Elsewhere {!run} is an estimate; [Sweep] measures its error
      against the [--exact] oracle, and [tools/check_sweep] bounds it. *)

type prep = {
  base_cfg : Soc.config;
  base_tiles : Soc.tile_spec array;
  skeleton : Mosaic_trace.Analysis.skeleton;
  stalls : int array array;
      (** per-tile stall-cause counts from the profiled base run; each
          row sums to the base cycle count *)
  base_cycles : int;
}

type point = {
  cycles : int;
  instrs : int;
  seconds : float;  (** simulated time at the candidate's frequency *)
  ipc : float;
  tile_cycles : float array;  (** per-tile estimates before rounding *)
}

(** Build a [prep] from an already-run profiled base simulation. Raises
    [Invalid_argument] when the result was not profiled or the tile
    count disagrees with the skeleton. *)
val of_result :
  cfg:Soc.config ->
  tiles:Soc.tile_spec array ->
  Mosaic_trace.Analysis.skeleton ->
  Soc.result ->
  prep

(** One full-price step: exact profiled simulation + skeleton extraction.
    Also returns the base result (the sweep's anchor point). *)
val prepare :
  ?sink:Mosaic_obs.Sink.t ->
  ?metrics:Mosaic_obs.Metrics.t ->
  Soc.config ->
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  tiles:Soc.tile_spec array ->
  prep * Soc.result

(** Price a candidate config. Pure and allocation-light — safe to call
    from concurrent domains on a shared [prep]. Raises
    [Invalid_argument] when the tile count differs from the base run. *)
val run : prep -> Soc.config -> Soc.tile_spec array -> point

(** [run] with every tile given the same core config. *)
val run_homogeneous :
  prep -> Soc.config -> tile_config:Mosaic_tile.Tile_config.t -> point
