(* Interval sampling (SMARTS-style, by instruction count) and the
   functional fast-forward executor between measured intervals.

   The driver alternates: detailed measurement (timing recorded) → drain
   (launching disabled, detailed stepping until the pipelines are empty) →
   functional fast-forward (trace position, cache/directory image and
   channel occupancy advance; no timing) → detailed warmup (timing
   simulated but discarded from the extrapolation basis) → measurement.
   Every fast-forwarded stretch is extrapolated from the per-tile IPC of
   the measurement that preceded it, and — when profiling — its stall
   attribution is scaled per cause from the same interval. A drain that
   cannot reach quiescence within its deadline degrades gracefully: the
   period is simulated in detail instead (counted in [report.degraded]). *)

open Mosaic_ir
module Trace = Mosaic_trace.Trace
module Core_tile = Mosaic_tile.Core_tile
module Tile_config = Mosaic_tile.Tile_config
module Profile = Mosaic_tile.Profile
module Hierarchy = Mosaic_memory.Hierarchy
module Stall = Mosaic_obs.Stall

type spec = {
  period : int;  (** instructions (all tiles) per sampling period *)
  interval : int;  (** detailed-measurement instructions per period *)
  warmup : int;  (** detailed warmup instructions before each measurement *)
}

let validate_spec s =
  if s.period <= 0 || s.interval <= 0 || s.warmup < 0 then
    invalid_arg "Sample: period/interval must be positive, warmup >= 0";
  if s.interval + s.warmup >= s.period then
    invalid_arg "Sample: interval + warmup must be smaller than period"

(* Defaults in the spirit of SMARTS: ~10 periods across the run, 1/8 of
   each measured in detail, a short warmup ahead of each measurement. *)
let auto ~total_instrs =
  let period = Stdlib.max 400 (total_instrs / 10) in
  { period; interval = Stdlib.max 50 (period / 8); warmup = Stdlib.max 10 (period / 40) }

type report = {
  est_cycles : int;
      (** detailed clock plus the extrapolated fast-forwarded stretches *)
  detailed_cycles : int;
  detailed_instrs : int;
  ff_instrs : int;  (** instructions executed functionally *)
  periods : int;  (** completed fast-forward stretches *)
  degraded : int;  (** drains that missed their deadline (period ran exact) *)
  est_stalls : int array;
      (** estimated per-cause cycle totals across tiles (detailed counts
          plus scaled stretch attribution); [[||]] when unprofiled *)
}

(* --- Functional fast-forward ---

   Replays whole trace blocks against each tile's cursor: memory
   instructions pop their addresses and warm the hierarchy (fills, LRU,
   dirtiness, directory — no stats or timing), terminators train the
   branch predictor, sends/receives move tokens between per-channel
   counters seeded from and committed back to the interleaver. Tiles run
   round-robin; a receive with no token stalls its tile until a producer
   supplies one (plain [Recv] never goes into debt — only [Store_recv]
   may, mirroring [take_or_owe]). Tiles that reach their target are
   reactivated, one block at a time, while another tile is stalled
   mid-block on their output — targets are soft, trace alignment is not. *)

type channel = {
  mutable buffered : int;
  mutable owed : int;
  mutable sends : int;
  mutable recvs : int;
}

type tile_ff = {
  mutable blk : Func.block option;  (** block being walked, if mid-block *)
  mutable idx : int;
  mutable pend_dst : int;  (** popped send destination awaiting a slot; -1 *)
  mutable instrs : int;
  mutable dbbs : int;
  mutable mem : int;
  by_class : int array;
  mutable accel_pj : float;
  mutable active : bool;
  mutable target : int;
}

(* [targets] are per-tile instruction counts to advance (block-granular,
   soft). Returns the instructions actually skipped per tile. Raises
   [Failure] if the channels deadlock mid-block, which for a trace the
   detailed simulator can execute means a simulator bug. *)
let fast_forward ~cores ~funcs ~inter ~hier
    ~(on_accel : tile:int -> kind:string -> params:Value.t array -> float)
    ~cycle ~targets =
  let ntiles = Array.length cores in
  let cap = Interleaver.capacity inter in
  let channels : (int * int, channel) Hashtbl.t = Hashtbl.create 16 in
  let channel ~dst ~chan =
    match Hashtbl.find_opt channels (dst, chan) with
    | Some c -> c
    | None ->
        let buffered, owed = Interleaver.ff_channel inter ~dst ~chan in
        let c = { buffered; owed; sends = 0; recvs = 0 } in
        Hashtbl.replace channels (dst, chan) c;
        c
  in
  let states =
    Array.init ntiles (fun i ->
        {
          blk = None;
          idx = 0;
          pend_dst = -1;
          instrs = 0;
          dbbs = 0;
          mem = 0;
          by_class = Array.make Tile_config.nclasses 0;
          accel_pj = 0.0;
          active = targets.(i) > 0;
          target = targets.(i);
        })
  in
  (* Execute one instruction; false = blocked on a channel (retry after
     other tiles progress). Trace streams are popped only on success —
     except a send's destination, which decides success and is stashed in
     [pend_dst] across retries. *)
  let exec i st (instr : Instr.t) =
    let c = Core_tile.cursor cores.(i) in
    let iid = instr.Instr.id in
    let warm_mem ~is_write =
      let addr = Trace.Cursor.next_addr c ~instr_id:iid in
      Hierarchy.warm hier ~tile:i ~addr ~is_write;
      st.mem <- st.mem + 1
    in
    let try_send ~chan =
      let dst =
        if st.pend_dst >= 0 then st.pend_dst
        else begin
          let d = Trace.Cursor.next_send_dst c ~instr_id:iid in
          st.pend_dst <- d;
          d
        end
      in
      let ch = channel ~dst ~chan in
      if ch.owed > 0 then begin
        ch.owed <- ch.owed - 1;
        ch.sends <- ch.sends + 1;
        st.pend_dst <- -1;
        true
      end
      else if ch.buffered < cap then begin
        ch.buffered <- ch.buffered + 1;
        ch.sends <- ch.sends + 1;
        st.pend_dst <- -1;
        true
      end
      else false
    in
    match instr.Instr.op with
    | Op.Load _ ->
        warm_mem ~is_write:false;
        true
    | Op.Store _ | Op.Atomic_rmw _ ->
        warm_mem ~is_write:true;
        true
    | Op.Send chan -> try_send ~chan
    | Op.Load_send (chan, _) ->
        if try_send ~chan then begin
          warm_mem ~is_write:false;
          true
        end
        else false
    | Op.Recv chan ->
        (* Plain receives never go into debt: a committed debt would
           absorb a send the resumed detailed receive still waits for. *)
        let ch = channel ~dst:i ~chan in
        if ch.buffered > 0 then begin
          ch.buffered <- ch.buffered - 1;
          ch.recvs <- ch.recvs + 1;
          true
        end
        else false
    | Op.Store_recv (chan, _, _) ->
        let ch = channel ~dst:i ~chan in
        if ch.buffered > 0 then begin
          ch.buffered <- ch.buffered - 1;
          ch.recvs <- ch.recvs + 1;
          warm_mem ~is_write:true;
          true
        end
        else if ch.owed < cap then begin
          ch.owed <- ch.owed + 1;
          ch.recvs <- ch.recvs + 1;
          warm_mem ~is_write:true;
          true
        end
        else false
    | Op.Accel kind ->
        let params = Trace.Cursor.next_accel_params c ~instr_id:iid in
        st.accel_pj <- st.accel_pj +. on_accel ~tile:i ~kind ~params;
        true
    | _ -> true
  in
  (* Run tile [i] until it stalls on a channel or completes its target at a
     block boundary. *)
  let run_tile i =
    let st = states.(i) in
    let core = cores.(i) in
    let c = Core_tile.cursor core in
    let progressed = ref false in
    let stalled = ref false in
    while st.active && not !stalled do
      match st.blk with
      | None ->
          if st.instrs >= st.target then st.active <- false
          else begin
            match Trace.Cursor.next_block c with
            | None -> st.active <- false
            | Some bid ->
                st.blk <- Some (Func.block funcs.(i) bid);
                st.idx <- 0;
                st.dbbs <- st.dbbs + 1
          end
      | Some blk ->
          let instr = blk.Func.instrs.(st.idx) in
          if exec i st instr then begin
            progressed := true;
            st.instrs <- st.instrs + 1;
            st.by_class.(Tile_config.class_index (Op.classify instr.Instr.op)) <-
              st.by_class.(Tile_config.class_index (Op.classify instr.Instr.op))
              + 1;
            st.idx <- st.idx + 1;
            if st.idx >= Array.length blk.Func.instrs then begin
              if Op.is_terminator instr.Instr.op then begin
                let actual = Trace.Cursor.peek_block_id c 0 in
                if actual >= 0 then
                  Core_tile.ff_observe_branch core instr ~actual
              end;
              st.blk <- None
            end
          end
          else stalled := true
    done;
    !progressed
  in
  let running = ref true in
  while !running do
    let progressed = ref false in
    for i = 0 to ntiles - 1 do
      if run_tile i then progressed := true
    done;
    if not !progressed then begin
      let mid_block = Array.exists (fun st -> st.blk <> None) states in
      if not mid_block then running := false
      else begin
        (* A consumer is stalled inside a block; push every tile with
           trace remaining one more block so its producer can supply the
           missing tokens. No reactivation candidate means the trace
           itself deadlocks — the detailed simulator could not execute it
           either. *)
        let reactivated = ref false in
        Array.iteri
          (fun i st ->
            if
              (not st.active) && st.blk = None
              && Trace.Cursor.peek_block_id (Core_tile.cursor cores.(i)) 0 >= 0
            then begin
              st.active <- true;
              st.target <- st.instrs + 1;
              reactivated := true
            end)
          states;
        if not !reactivated then
          failwith "Sample.fast_forward: inter-tile channel deadlock"
      end
    end
  done;
  Array.iteri
    (fun i st ->
      Core_tile.ff_commit cores.(i) ~instrs:st.instrs ~dbbs:st.dbbs
        ~mem_accesses:st.mem ~by_class:st.by_class ~accel_energy_pj:st.accel_pj)
    states;
  Hashtbl.iter
    (fun (dst, chan) ch ->
      Interleaver.ff_set_channel inter ~dst ~chan ~buffered:ch.buffered
        ~owed:ch.owed ~sends:ch.sends ~recvs:ch.recvs ~cycle)
    channels;
  Array.map (fun st -> st.instrs) states

(* --- Sampling driver ---

   Owned by [Soc.run]; [tick] runs at the top of every visited cycle,
   before the tiles step. *)

type measurement = {
  m_cycles : int;
  m_instrs : int array;  (** per-tile committed-instruction delta *)
  m_stalls : int array array;  (** per tile, per cause; [[||]] unprofiled *)
}

type stretch = {
  f_instrs : int array;
  f_basis : measurement;
  mutable f_after : measurement option;
      (** the measurement on the far side of the stretch; pooled with
          [f_basis] so a biased interval (notably the cold-cache one at
          cycle 0) cannot dominate the extrapolation *)
}

type phase = Measure | Drain | Warmup

type driver = {
  spec : spec;
  cores : Core_tile.t array;
  funcs : Func.t array;
  profiles : Profile.t array;
  inter : Interleaver.t;
  hier : Hierarchy.t;
  dyn_instrs : int array;
  on_accel : tile:int -> kind:string -> params:Value.t array -> float;
  profiled : bool;
  drain_bound : int;  (** cycles a drain may take before degrading *)
  mutable phase : phase;
  mutable meas_c0 : int;
  mutable meas_i0 : int array;
  mutable meas_t0 : int;
  mutable meas_s0 : int array array;
  mutable pending : (measurement * int) option;
      (** completed measurement and the skip budget, across the drain *)
  mutable warm_t0 : int;
  mutable drain_deadline : int;
  mutable stretches : stretch list;  (** newest first *)
  mutable ff_total : int;
  mutable degraded : int;
  mutable exhausted : bool;  (** too little trace left; run exact to the end *)
}

let committed d i =
  (Core_tile.stats d.cores.(i)).Core_tile.completed_instrs

let total d =
  let t = ref 0 in
  for i = 0 to Array.length d.cores - 1 do
    t := !t + committed d i
  done;
  !t

let stall_counts d =
  if d.profiled then Array.map Profile.counts d.profiles else [||]

let begin_measurement d ~cycle =
  d.meas_c0 <- cycle;
  d.meas_i0 <- Array.init (Array.length d.cores) (committed d);
  d.meas_t0 <- Array.fold_left ( + ) 0 d.meas_i0;
  d.meas_s0 <- stall_counts d

let make_driver ~spec ~cores ~funcs ~profiles ~inter ~hier ~dyn_instrs
    ~on_accel ~profiled =
  validate_spec spec;
  let d =
    {
      spec;
      cores;
      funcs;
      profiles;
      inter;
      hier;
      dyn_instrs;
      on_accel;
      profiled;
      drain_bound = 100_000;
      phase = Measure;
      meas_c0 = 0;
      meas_i0 = [||];
      meas_t0 = 0;
      meas_s0 = [||];
      pending = None;
      warm_t0 = 0;
      drain_deadline = 0;
      stretches = [];
      ff_total = 0;
      degraded = 0;
      exhausted = false;
    }
  in
  begin_measurement d ~cycle:0;
  d

let close_measurement d ~cycle =
  let n = Array.length d.cores in
  let instrs = Array.init n (fun i -> committed d i - d.meas_i0.(i)) in
  let stalls =
    if d.profiled then
      Array.init n (fun i ->
          let now = Profile.counts d.profiles.(i) in
          Array.mapi (fun c v -> v - d.meas_s0.(i).(c)) now)
    else [||]
  in
  { m_cycles = cycle - d.meas_c0; m_instrs = instrs; m_stalls = stalls }

(* During a drain the scheduler must not fast-forward over the quiescence
   point (or the deadline); elsewhere it skips freely. *)
let skip_cap d ~cycle =
  match d.phase with Drain -> cycle + 1 | Measure | Warmup -> max_int

let set_launching d v =
  Array.iter (fun c -> Core_tile.set_launch_enabled c v) d.cores

let tick d ~cycle =
  if not d.exhausted then
    match d.phase with
    | Measure ->
        if total d - d.meas_t0 >= d.spec.interval then begin
          let m = close_measurement d ~cycle in
          (match d.stretches with
          | s :: _ when s.f_after = None -> s.f_after <- Some m
          | _ -> ());
          let remaining =
            let r = ref 0 in
            Array.iteri
              (fun i di -> r := !r + Stdlib.max 0 (di - committed d i))
              d.dyn_instrs;
            !r
          in
          let skip = d.spec.period - d.spec.interval - d.spec.warmup in
          let skip =
            Stdlib.min skip (remaining - d.spec.interval - d.spec.warmup)
          in
          if skip <= 0 || m.m_cycles <= 0 then d.exhausted <- true
          else begin
            d.pending <- Some (m, skip);
            set_launching d false;
            d.drain_deadline <- cycle + d.drain_bound;
            d.phase <- Drain
          end
        end
    | Drain ->
        if Array.for_all Core_tile.quiescent d.cores then begin
          let m, skip = Option.get d.pending in
          d.pending <- None;
          let remaining =
            Array.mapi
              (fun i di -> Stdlib.max 0 (di - committed d i))
              d.dyn_instrs
          in
          let rem_total = Array.fold_left ( + ) 0 remaining in
          let targets =
            Array.map
              (fun r ->
                if rem_total = 0 then 0 else skip * r / rem_total)
              remaining
          in
          let skipped =
            Mosaic_obs.Span.with_span "sample.ff" (fun () ->
                fast_forward ~cores:d.cores ~funcs:d.funcs ~inter:d.inter
                  ~hier:d.hier ~on_accel:d.on_accel ~cycle ~targets)
          in
          d.stretches <-
            { f_instrs = skipped; f_basis = m; f_after = None } :: d.stretches;
          d.ff_total <- d.ff_total + Array.fold_left ( + ) 0 skipped;
          set_launching d true;
          d.warm_t0 <- total d;
          d.phase <- Warmup
        end
        else if cycle >= d.drain_deadline then begin
          d.pending <- None;
          d.degraded <- d.degraded + 1;
          set_launching d true;
          d.phase <- Measure;
          begin_measurement d ~cycle
        end
    | Warmup ->
        if total d - d.warm_t0 >= d.spec.warmup then begin
          d.phase <- Measure;
          begin_measurement d ~cycle
        end

(* Extrapolation basis: the stretch's bracketing measurements pooled into
   one (cycles summed, per-tile instrs and stalls summed). A stretch is
   timed under conditions between its two endpoints, so pooling both is a
   strictly better estimator than the preceding interval alone — and it
   stops the cold-cache interval at cycle 0 (whose CPI can be several
   times steady state) from single-handedly pricing the first stretch. *)
let basis s =
  match s.f_after with
  | None -> s.f_basis
  | Some a ->
      let n = Array.length s.f_basis.m_instrs in
      {
        m_cycles = s.f_basis.m_cycles + a.m_cycles;
        m_instrs =
          Array.init n (fun i ->
              s.f_basis.m_instrs.(i)
              + if Array.length a.m_instrs > i then a.m_instrs.(i) else 0);
        m_stalls =
          (if Array.length s.f_basis.m_stalls = 0 then [||]
           else
             Array.init n (fun i ->
                 Array.mapi
                   (fun c v ->
                     v
                     +
                     if Array.length a.m_stalls > i then a.m_stalls.(i).(c)
                     else 0)
                   s.f_basis.m_stalls.(i)));
      }

(* Tiles run in parallel, so a stretch's cycle estimate is the slowest
   tile's [skipped / ipc] under the pooled basis; stall attribution scales
   each tile's pooled per-cause counts by the same ratio. *)
let stretch_cycles ?basis:b s =
  let m = match b with Some m -> m | None -> basis s in
  let mc = float_of_int m.m_cycles in
  let best = ref 0.0 in
  let any = ref false in
  Array.iteri
    (fun i skipped ->
      if skipped > 0 && m.m_instrs.(i) > 0 then begin
        any := true;
        let est = float_of_int skipped *. mc /. float_of_int m.m_instrs.(i) in
        if est > !best then best := est
      end)
    s.f_instrs;
  if !any then !best
  else begin
    (* No per-tile basis (measured tiles differ from skipped tiles): fall
       back to the aggregate IPC of the interval, then to IPC 1. *)
    let ti = Array.fold_left ( + ) 0 m.m_instrs in
    let tf = Array.fold_left ( + ) 0 s.f_instrs in
    if ti > 0 then float_of_int tf *. mc /. float_of_int ti else float_of_int tf
  end

let finish d ~cycle =
  (* The tail after the last stretch ran detailed but may never have
     closed as a measurement (exhaustion, or end of trace mid-interval);
     it is still that stretch's far-side bracket. *)
  (match d.stretches with
  | s :: _ when s.f_after = None && d.phase = Measure ->
      (* Only in Measure is [meas_*] fresh — ending inside a drain or a
         warmup would pool fast-forwarded instructions into the basis. *)
      let m = close_measurement d ~cycle in
      if m.m_cycles > 0 && Array.fold_left ( + ) 0 m.m_instrs > 0 then
        s.f_after <- Some m
  | _ -> ());
  let extra =
    List.fold_left (fun acc s -> acc +. stretch_cycles s) 0.0 d.stretches
  in
  let est_stalls =
    if not d.profiled then [||]
    else begin
      let n = Array.length d.cores in
      let acc = Array.make Stall.ncauses 0.0 in
      for i = 0 to n - 1 do
        let counts = Profile.counts d.profiles.(i) in
        Array.iteri (fun c v -> acc.(c) <- acc.(c) +. float_of_int v) counts
      done;
      List.iter
        (fun s ->
          let m = basis s in
          let est = stretch_cycles ~basis:m s in
          let mc = float_of_int m.m_cycles in
          if mc > 0.0 then
            for i = 0 to n - 1 do
              if Array.length m.m_stalls > i then
                Array.iteri
                  (fun c v ->
                    acc.(c) <- acc.(c) +. (float_of_int v /. mc *. est))
                  m.m_stalls.(i)
            done)
        d.stretches;
      Array.map (fun v -> int_of_float (Float.round v)) acc
    end
  in
  {
    est_cycles = cycle + int_of_float (Float.round extra);
    detailed_cycles = cycle;
    detailed_instrs = total d - d.ff_total;
    ff_instrs = d.ff_total;
    periods = List.length d.stretches;
    degraded = d.degraded;
    est_stalls;
  }
