(** Checkpoints: the full timing state of a run at a visited cycle.

    Captured by [Soc.run ?checkpoint_at] and consumed by
    [Soc.run ?resume]; a resumed run is bit-identical to the straight run
    (differential-tested and fuzzed). The record is pure data — component
    dumps plus identity fields a resume validates against its own workload
    — and the disk container adds a magic, a format version and an MD5
    checksum so corrupt or truncated files fail loudly. *)

type t = {
  cycle : int;  (** visited cycle the state was captured before sweeping *)
  stepped : int;  (** scheduler iterations executed so far *)
  finished : bool array;
  kernels : string array;  (** per-tile kernel names, for validation *)
  dyn_instrs : int array;  (** per-tile trace lengths, for validation *)
  profiled : bool;
  tiles : Mosaic_tile.Core_tile.dump array;
  hier : Mosaic_memory.Hierarchy.dump;
  inter : Interleaver.dump;
  noc : Noc.dump option;
  accel_active : int array;  (** finish cycles of in-flight invocations *)
  accel_invocations : int;
  accel_energy_pj : float;
  accel_busy : int array;
}

val ntiles : t -> int
val cycle : t -> int

(** Raised by the readers on a bad magic, an unsupported version, or a
    truncated/corrupted payload. The message says which. *)
exception Format_error of string

(** Container identity, for [mosaicsim version] and run manifests. *)
val magic : string

val format_version : int

val to_bytes : t -> Bytes.t

(** Inverse of {!to_bytes}; raises {!Format_error} on malformed input. *)
val of_bytes : Bytes.t -> t

val save : t -> string -> unit

(** Raises {!Format_error} on malformed input. *)
val load : string -> t
