(* Host-telemetry wiring shared by the CLI and the bench suite: publish
   every host.* gauge into a run's registry, name the format versions,
   digest configs, and assemble manifests. Lives in mosaic (not
   mosaic_obs) because it reaches across layers — Span/Manifest from obs,
   Store from trace, Soc/Snapshot from core. *)

module Metrics = Mosaic_obs.Metrics
module Span = Mosaic_obs.Span
module Manifest = Mosaic_obs.Manifest
module Store = Mosaic_trace.Store
module Trace = Mosaic_trace.Trace

let versions () =
  [
    ("semantics", Store.semantics_version);
    ( "trace_format",
      Printf.sprintf "%s v%d" Trace.magic Trace.format_version );
    ( "snapshot_format",
      Printf.sprintf "%s v%d" Snapshot.magic Snapshot.format_version );
  ]

(* Soc.config and tile specs are plain data (records, variants, arrays —
   no closures), so a structural Marshal digest identifies the design
   point exactly. NO_SHARING keeps the bytes a function of the value
   alone, not of sharing in how it was built. *)
let config_digest (cfg : Soc.config) ~(tiles : Soc.tile_spec array) =
  Digest.to_hex
    (Digest.string (Marshal.to_string (cfg, tiles) [ Marshal.No_sharing ]))

let publish_host reg =
  Span.publish reg;
  let s = Store.stats () in
  Span.gauge_set reg "host.store.hits"
    (float_of_int (s.Store.memo_hits + s.Store.disk_hits));
  Span.gauge_set reg "host.store.misses" (float_of_int s.Store.interpreted);
  Span.gauge_set reg "host.store.bytes" (float_of_int s.Store.disk_bytes)

let manifest ~kind ~name ?digests ~metrics () =
  publish_host metrics;
  Manifest.make ~kind ~name ~versions:(versions ()) ?digests ~metrics ()
