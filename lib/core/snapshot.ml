(* A snapshot is the full timing state of a run at a visited cycle:
   per-tile core dumps, the memory hierarchy (tags/LRU/MSHR, directory,
   DRAM), the interleaver and NoC, and the accelerator manager — everything
   [Soc.run] mutates. All fields are pure data (no closures), so the disk
   container can Marshal the record; identity fields (kernels, dynamic
   instruction counts, profiling flag) let a resume reject a snapshot taken
   from a different workload or configuration shape. *)

module Core_tile = Mosaic_tile.Core_tile
module Hierarchy = Mosaic_memory.Hierarchy

type t = {
  cycle : int;
  stepped : int;
  finished : bool array;
  kernels : string array;  (** per-tile kernel names, for validation *)
  dyn_instrs : int array;  (** per-tile trace lengths, for validation *)
  profiled : bool;
  tiles : Core_tile.dump array;
  hier : Hierarchy.dump;
  inter : Interleaver.dump;
  noc : Noc.dump option;
  accel_active : int array;  (** finish cycles of in-flight invocations *)
  accel_invocations : int;
  accel_energy_pj : float;
  accel_busy : int array;
}

let ntiles s = Array.length s.tiles
let cycle s = s.cycle

(* --- On-disk container ---

   Layout: "MSNP" magic (4 raw bytes), one version byte, 16 raw bytes of
   MD5 over the payload, then the Marshal-encoded record. The checksum
   turns truncation and bit rot into a clean [Format_error]; the version
   byte does the same for files written by a different layout. Marshal is
   build-dependent, which is acceptable for checkpoints (they pair a run
   with its resume); the exchange format remains the trace container. *)

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let magic = "MSNP"
let format_version = 1

let to_bytes s =
  let payload = Marshal.to_bytes s [] in
  let buf = Buffer.create (Bytes.length payload + 24) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr format_version);
  Buffer.add_string buf (Digest.bytes payload);
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let of_bytes data =
  let header = String.length magic + 1 + 16 in
  if Bytes.length data < String.length magic then
    fail "not a MosaicSim snapshot (file too short)";
  let got_magic = Bytes.sub_string data 0 (String.length magic) in
  if got_magic <> magic then
    fail "not a MosaicSim snapshot (bad magic %S)" got_magic;
  if Bytes.length data < header then fail "truncated snapshot header";
  let version = Char.code (Bytes.get data (String.length magic)) in
  if version <> format_version then
    fail "unsupported snapshot format version %d (this build reads version %d)"
      version format_version;
  let md5 = Bytes.sub_string data (String.length magic + 1) 16 in
  let payload = Bytes.sub data header (Bytes.length data - header) in
  if Digest.bytes payload <> md5 then
    fail "corrupt snapshot (payload checksum mismatch)";
  try (Marshal.from_bytes payload 0 : t)
  with Failure m | Invalid_argument m -> fail "malformed snapshot payload (%s)" m

let save s path =
  let bytes = to_bytes s in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc bytes)

let load path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  in
  of_bytes data
