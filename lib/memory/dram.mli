(** DRAM models (§V-B).

    Two models behind one interface, as in the paper: [SimpleDRAM] enforces
    a minimum latency and a maximum bandwidth in epochs; [Detailed] is the
    DRAMSim2-class model with banks, row buffers and refresh.

    The interface is latency-oriented: [access] is told when a line request
    arrives and answers when its data returns, updating internal contention
    state. Calls must have non-decreasing arrival cycles per channel (the
    hierarchy guarantees this within a cycle-driven run). *)

type kind = Dram_read | Dram_write

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable busy_returns : int;
      (** requests delayed past min latency by bandwidth or bank conflicts *)
  mutable row_hits : int;  (** detailed model only *)
  mutable row_misses : int;  (** detailed model only *)
}

type t

(** Configuration of the in-house SimpleDRAM model. *)
type simple_config = {
  min_latency : int;  (** cycles from request to earliest return *)
  lines_per_epoch : int;  (** bandwidth cap: line returns per epoch *)
  epoch_cycles : int;
}

(** Configuration of the detailed (DRAMSim2-substitute) model. *)
type detailed_config = {
  nbanks : int;
  row_bytes : int;
  t_cas : int;  (** column access, row already open *)
  t_rcd : int;  (** row activate *)
  t_rp : int;  (** precharge *)
  t_bus : int;  (** data burst occupancy per access *)
  base_latency : int;  (** controller + channel overhead *)
  t_refi : int;  (** refresh interval; 0 disables refresh *)
  t_rfc : int;  (** refresh duration *)
}

(** Constructors; an enabled [sink] receives a [Dram_row_activate] event
    per row-buffer miss (detailed model only). *)
val simple : ?sink:Mosaic_obs.Sink.t -> simple_config -> t

val detailed : ?sink:Mosaic_obs.Sink.t -> detailed_config -> t

(** Defaults tuned for the paper's evaluation systems: DDR4-ish SimpleDRAM
    with [min_latency] 200 cycles. *)
val default_simple : simple_config

val default_detailed : detailed_config

(** [access t ~cycle ~addr kind] is the cycle at which the request's data is
    available at the DRAM pins. *)
val access : t -> cycle:int -> addr:int -> kind -> int

val stats : t -> stats

(** Human-readable model name ("simple" or "detailed"). *)
val name : t -> string

(** Publish end-of-run counters under "dram.*" into a metrics registry. *)
val publish : t -> Mosaic_obs.Metrics.t -> unit

(** {1 Snapshots} — contention state (epoch table / bank timings) and
    stats. [restore] raises [Invalid_argument] on a model mismatch. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
