(** The composed memory hierarchy (§V): per-tile private L1 (and optional
    private L2), an optional shared LLC, and a DRAM model.

    The hierarchy is conventionally write-back, write-allocate and
    fully-inclusive. Requests enter at the front of a tile's cache queue and
    are forwarded level to level on misses; the LLC forwards to DRAM.
    Coalescing uses each cache's MSHR; dirty evictions generate writeback
    traffic toward DRAM. Timing is resolved synchronously: [access] returns
    the cycle at which the data reaches the requesting tile, after updating
    all contention state. *)

type dram_config =
  | Simple of Dram.simple_config
  | Detailed of Dram.detailed_config

(** Directory coherence (the paper's sketched extension: "a directory
    protocol can easily be implemented by treating the Interleaver as the
    directory"). When enabled, the directory tracks sharers per line: a
    write invalidates other tiles' private copies and a read of a line
    another tile holds modified forces a flush — both charging
    [directory_latency]. Off by default, as in the paper. *)
type coherence_config = { directory_latency : int }

type config = {
  l1 : Cache.config;
  l2 : Cache.config option;  (** private per tile *)
  llc : Cache.config option;  (** shared *)
  dram : dram_config;
  coherence : coherence_config option;
}

type t

(** An enabled [sink] receives per-level [Cache_access] events (hit, miss,
    evict, writeback) and the DRAM model's row-activate events. *)
val create : ?sink:Mosaic_obs.Sink.t -> ntiles:int -> config -> t

val line_size : t -> int
val ntiles : t -> int

(** [access t ~tile ~cycle ~addr ~is_write] returns the completion cycle of
    a demand access. Raises [Invalid_argument] on a bad tile id. *)
val access : t -> tile:int -> cycle:int -> addr:int -> is_write:bool -> int

(** Whether this configuration confines L1-hit accesses to tile-private
    state: no coherence directory (writes would invalidate other tiles'
    private caches) and no L1 prefetcher (hits would issue prefetches
    into shared levels). When true, an access for which {!hits_private}
    holds commutes with all shared-state operations — the sharded
    scheduler uses this pair to run L1 hits without global ordering. *)
val private_only_config : t -> bool

(** [hits_private t ~tile ~addr] is true when the line is resident in the
    tile's L1, i.e. a demand access now would be an L1 hit touching only
    that tile's private state (under {!private_only_config}). Probes
    without updating replacement or statistics state. *)
val hits_private : t -> tile:int -> addr:int -> bool

(** Whether tile's L1 can accept a new miss right now (MSHR not full).
    Fire-and-forget operations (terminal loads, store-value-buffer drains)
    gate their issue on this, which is what throttles a decoupled access
    core to the memory system's actual miss bandwidth. *)
val can_accept : t -> tile:int -> cycle:int -> bool

(** [next_accept t ~tile ~cycle] is the earliest cycle after [cycle] at
    which {!can_accept} flips back to true when the tile's L1 MSHR is
    currently full ([None] when it can accept now). During a quiescent
    stretch MSHR slots free only by time passing, so this is the exact wake
    cycle the event-driven scheduler needs for a tile whose fire-and-forget
    memory ops are throttled by miss bandwidth. *)
val next_accept : t -> tile:int -> cycle:int -> int option

(** [warm t ~tile ~addr ~is_write] replays the architectural effects of a
    demand access — fills at every level an access would install into, LRU
    refreshes, dirty bits, and directory sharer/owner transitions with the
    invalidations they imply — without timing, MSHR traffic or statistics.
    The fast-forward touch stream uses it so detailed intervals resume
    against warmed caches while demand counters keep measuring only
    detailed work. *)
val warm : t -> tile:int -> addr:int -> is_write:bool -> unit

(** Direct DRAM transfer for non-coherent accelerators (§IV-B): [bytes]
    are moved as line-sized bursts, bypassing the caches. Returns the cycle
    at which the last line completes. *)
val dram_burst :
  t -> cycle:int -> addr:int -> bytes:int -> is_write:bool -> int

(** Per-cache statistics, front to back ("l1.0", "l2.0", ..., "llc"). *)
val cache_stats : t -> (string * Cache.stats) list

val dram_stats : t -> Dram.stats

(** Directory-initiated invalidation messages sent (0 when coherence is
    disabled). *)
val coherence_invalidations : t -> int

(** Aggregate counters used by the energy model. *)
type totals = {
  l1_accesses : int;
  l2_accesses : int;
  llc_accesses : int;
  dram_lines : int;
}

val totals : t -> totals

(** Aggregate hit rates per level; 0 when the level is absent or idle. *)
val l1_hit_rate : t -> float

val l2_hit_rate : t -> float
val llc_hit_rate : t -> float

(** Publish every cache ("cache.<name>.*"), the DRAM model ("dram.*") and
    the level totals ("mem.*") into a metrics registry. *)
val publish : t -> Mosaic_obs.Metrics.t -> unit

(** {1 Snapshots} — every cache level, the DRAM model and the directory.
    [restore] raises [Invalid_argument] on a topology mismatch. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
