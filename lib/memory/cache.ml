type config = {
  size_bytes : int;
  line_size : int;
  assoc : int;
  latency : int;
  mshr_size : int;
  prefetch : Prefetcher.config option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_config cfg =
  if not (is_pow2 cfg.line_size) then
    invalid_arg "Cache: line_size must be a power of two";
  if cfg.assoc <= 0 then invalid_arg "Cache: assoc must be positive";
  if cfg.size_bytes mod (cfg.line_size * cfg.assoc) <> 0 then
    invalid_arg "Cache: size must divide into line_size * assoc sets";
  if cfg.latency < 0 then invalid_arg "Cache: negative latency";
  if cfg.mshr_size <= 0 then invalid_arg "Cache: mshr_size must be positive";
  cfg

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable prefetches_issued : int;
  mutable mshr_merges : int;
  mutable mshr_stalls : int;
  mutable invalidations : int;
}

let fresh_stats () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    prefetches_issued = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    invalidations = 0;
  }

module Int_table = Mosaic_util.Int_table
module Int_heap = Mosaic_util.Int_heap

type t = {
  cname : string;
  cfg : config;
  nsets : int;
  tags : int array;  (** [set * assoc + way]; -1 = invalid *)
  dirty : bool array;
  lru : int array;  (** higher = more recent *)
  mutable clock : int;
  mshr : Int_table.t;  (** line address -> ready cycle *)
  mshr_expiry : Int_heap.t;
      (** (ready, line) pairs mirroring [mshr] inserts; drained lazily so
          stale-entry expiry never traverses the table. An entry is live
          only while the table still maps its line to its ready cycle —
          re-inserting a line orphans the old heap pair, which validation
          against the table discards on contact. *)
  stats : stats;
  pf : Prefetcher.t option;
}

let create ~name cfg =
  let cfg = validate_config cfg in
  let nsets = cfg.size_bytes / (cfg.line_size * cfg.assoc) in
  {
    cname = name;
    cfg;
    nsets;
    tags = Array.make (nsets * cfg.assoc) (-1);
    dirty = Array.make (nsets * cfg.assoc) false;
    lru = Array.make (nsets * cfg.assoc) 0;
    clock = 0;
    mshr = Int_table.create ~initial_capacity:(2 * cfg.mshr_size) ();
    mshr_expiry = Int_heap.create ();
    stats = fresh_stats ();
    pf = Option.map Prefetcher.create cfg.prefetch;
  }

let name t = t.cname
let config t = t.cfg
let stats t = t.stats
let nsets t = t.nsets
let prefetcher t = t.pf

let line_of t addr = addr / t.cfg.line_size

let set_of t line = line mod t.nsets

(* Slot holding [line], or -1. Runs for every lookup/fill/probe; the int
   sentinel and while shape keep it allocation-free (an option return plus
   a local recursive scan cost two small allocations per call). *)
let find_way t line =
  let set = set_of t line in
  let base = set * t.cfg.assoc in
  let way = ref 0 in
  let res = ref (-1) in
  while !res < 0 && !way < t.cfg.assoc do
    if t.tags.(base + !way) = line then res := base + !way else incr way
  done;
  !res

let touch t slot =
  t.clock <- t.clock + 1;
  t.lru.(slot) <- t.clock

let lookup t ~addr ~is_write =
  t.stats.accesses <- t.stats.accesses + 1;
  let line = line_of t addr in
  let slot = find_way t line in
  if slot >= 0 then begin
    t.stats.hits <- t.stats.hits + 1;
    touch t slot;
    if is_write then t.dirty.(slot) <- true;
    `Hit
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    `Miss
  end

let probe t ~addr = find_way t (line_of t addr) >= 0

let fill t ~addr ~dirty =
  let line = line_of t addr in
  let slot = find_way t line in
  if slot >= 0 then begin
    (* Already present (e.g. filled by a coalesced miss): refresh. *)
    touch t slot;
    if dirty then t.dirty.(slot) <- true;
    `None
  end
  else begin
      let set = set_of t line in
      let base = set * t.cfg.assoc in
      (* Choose an invalid way, else the LRU way. *)
      let victim = ref base in
      let found_invalid = ref false in
      for way = 0 to t.cfg.assoc - 1 do
        let slot = base + way in
        if (not !found_invalid) && t.tags.(slot) = -1 then begin
          victim := slot;
          found_invalid := true
        end
        else if (not !found_invalid) && t.lru.(slot) < t.lru.(!victim) then
          victim := slot
      done;
      let slot = !victim in
      let result =
        if t.tags.(slot) = -1 then `None
        else begin
          t.stats.evictions <- t.stats.evictions + 1;
          let evicted_addr = t.tags.(slot) * t.cfg.line_size in
          if t.dirty.(slot) then begin
            t.stats.writebacks <- t.stats.writebacks + 1;
            `Dirty evicted_addr
          end
          else `Clean evicted_addr
        end
      in
      t.tags.(slot) <- line;
      t.dirty.(slot) <- dirty;
      touch t slot;
      result
  end

let invalidate t ~addr =
  let slot = find_way t (line_of t addr) in
  if slot < 0 then `Absent
  else begin
    t.stats.invalidations <- t.stats.invalidations + 1;
    t.tags.(slot) <- -1;
    let was_dirty = t.dirty.(slot) in
    t.dirty.(slot) <- false;
    if was_dirty then `Dirty else `Clean
  end

(* MSHR entries are cleaned lazily: an entry whose ready cycle has passed no
   longer occupies a slot. The expiry heap makes this O(stale log n) instead
   of a full-table fold per access: pop orphaned pairs (their line was
   re-registered with a newer ready cycle) and expired live pairs until the
   head is a live entry strictly in the future. Heap order guarantees that
   once the head is in the future, no stale table entry remains. *)
let mshr_sweep t ~cycle =
  let continue = ref true in
  while !continue && not (Int_heap.is_empty t.mshr_expiry) do
    let ready = Int_heap.min_prio t.mshr_expiry in
    let line = Int_heap.min_value t.mshr_expiry in
    if Int_table.find t.mshr line ~default:min_int <> ready then
      Int_heap.drop_min t.mshr_expiry
    else if ready <= cycle then begin
      Int_table.remove t.mshr line;
      Int_heap.drop_min t.mshr_expiry
    end
    else continue := false
  done

let mshr_pending t ~addr ~cycle =
  let line = line_of t addr in
  let ready = Int_table.find t.mshr line ~default:min_int in
  if ready = min_int then -1
  else if ready > cycle then ready
  else begin
    (* Expired: free the slot; its heap pair dies as an orphan later. *)
    Int_table.remove t.mshr line;
    -1
  end

let mshr_insert t ~addr ~ready =
  let line = line_of t addr in
  Int_table.set t.mshr line ready;
  Int_heap.push t.mshr_expiry ~prio:ready line

let mshr_full t ~cycle =
  mshr_sweep t ~cycle;
  Int_table.length t.mshr >= t.cfg.mshr_size

let mshr_earliest t ~cycle =
  mshr_sweep t ~cycle;
  (* After the sweep every table entry is in the future and the heap head,
     if any, is live — so it is exactly the earliest retirement. *)
  if Int_heap.is_empty t.mshr_expiry then -1
  else Int_heap.min_prio t.mshr_expiry

let hit_rate t =
  if t.stats.accesses = 0 then 0.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

(* Warm [addr] into the cache without touching stats or MSHRs: the
   fast-forward touch stream maintains tags/LRU/dirty architecturally so
   the next detailed interval starts from a warmed cache, while demand
   counters keep counting only detailed accesses. Returns the same
   eviction view as [fill] so the hierarchy can propagate writebacks. *)
let warm t ~addr ~is_write =
  let line = line_of t addr in
  let slot = find_way t line in
  if slot >= 0 then begin
    touch t slot;
    if is_write then t.dirty.(slot) <- true;
    `Hit
  end
  else begin
    let set = set_of t line in
    let base = set * t.cfg.assoc in
    let victim = ref base in
    let found_invalid = ref false in
    for way = 0 to t.cfg.assoc - 1 do
      let slot = base + way in
      if (not !found_invalid) && t.tags.(slot) = -1 then begin
        victim := slot;
        found_invalid := true
      end
      else if (not !found_invalid) && t.lru.(slot) < t.lru.(!victim) then
        victim := slot
    done;
    let slot = !victim in
    let result =
      if t.tags.(slot) = -1 then `Filled `None
      else begin
        let evicted_addr = t.tags.(slot) * t.cfg.line_size in
        if t.dirty.(slot) then `Filled (`Dirty evicted_addr)
        else `Filled (`Clean evicted_addr)
      end
    in
    t.tags.(slot) <- line;
    t.dirty.(slot) <- is_write;
    touch t slot;
    result
  end

(* [invalidate] minus the stats bump: directory bookkeeping during
   fast-forward drops lines architecturally without counting them as
   demand-path invalidations. *)
let drop t ~addr =
  let slot = find_way t (line_of t addr) in
  if slot < 0 then `Absent
  else begin
    t.tags.(slot) <- -1;
    let was_dirty = t.dirty.(slot) in
    t.dirty.(slot) <- false;
    if was_dirty then `Dirty else `Clean
  end

(* --- Snapshot support --- *)

type dump = {
  d_tags : int array;
  d_dirty : bool array;
  d_lru : int array;
  d_clock : int;
  d_mshr : Int_table.dump;
  d_mshr_expiry : Int_heap.dump;
  d_stats : int array;  (** the 9 counters, field order of [stats] *)
  d_pf : Prefetcher.dump option;
}

let dump t =
  {
    d_tags = Array.copy t.tags;
    d_dirty = Array.copy t.dirty;
    d_lru = Array.copy t.lru;
    d_clock = t.clock;
    d_mshr = Int_table.dump t.mshr;
    d_mshr_expiry = Int_heap.dump t.mshr_expiry;
    d_stats =
      [|
        t.stats.accesses; t.stats.hits; t.stats.misses; t.stats.evictions;
        t.stats.writebacks; t.stats.prefetches_issued; t.stats.mshr_merges;
        t.stats.mshr_stalls; t.stats.invalidations;
      |];
    d_pf = Option.map Prefetcher.dump t.pf;
  }

let restore t d =
  if Array.length d.d_tags <> Array.length t.tags then
    invalid_arg (Printf.sprintf "Cache.restore(%s): geometry mismatch" t.cname);
  Array.blit d.d_tags 0 t.tags 0 (Array.length t.tags);
  Array.blit d.d_dirty 0 t.dirty 0 (Array.length t.dirty);
  Array.blit d.d_lru 0 t.lru 0 (Array.length t.lru);
  t.clock <- d.d_clock;
  Int_table.restore t.mshr d.d_mshr;
  Int_heap.restore t.mshr_expiry d.d_mshr_expiry;
  t.stats.accesses <- d.d_stats.(0);
  t.stats.hits <- d.d_stats.(1);
  t.stats.misses <- d.d_stats.(2);
  t.stats.evictions <- d.d_stats.(3);
  t.stats.writebacks <- d.d_stats.(4);
  t.stats.prefetches_issued <- d.d_stats.(5);
  t.stats.mshr_merges <- d.d_stats.(6);
  t.stats.mshr_stalls <- d.d_stats.(7);
  t.stats.invalidations <- d.d_stats.(8);
  match (t.pf, d.d_pf) with
  | Some pf, Some pd -> Prefetcher.restore pf pd
  | None, None -> ()
  | _ -> invalid_arg (Printf.sprintf "Cache.restore(%s): prefetcher mismatch" t.cname)

(* Publish this cache's counters into a metrics registry under
   "cache.<name>.*" (e.g. cache.l1.0.hits). *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c field v =
    M.incr ~by:v (M.counter reg (Printf.sprintf "cache.%s.%s" t.cname field))
  in
  c "accesses" t.stats.accesses;
  c "hits" t.stats.hits;
  c "misses" t.stats.misses;
  c "evictions" t.stats.evictions;
  c "writebacks" t.stats.writebacks;
  c "prefetches_issued" t.stats.prefetches_issued;
  c "mshr_merges" t.stats.mshr_merges;
  c "mshr_stalls" t.stats.mshr_stalls;
  c "invalidations" t.stats.invalidations
