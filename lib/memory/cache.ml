type config = {
  size_bytes : int;
  line_size : int;
  assoc : int;
  latency : int;
  mshr_size : int;
  prefetch : Prefetcher.config option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_config cfg =
  if not (is_pow2 cfg.line_size) then
    invalid_arg "Cache: line_size must be a power of two";
  if cfg.assoc <= 0 then invalid_arg "Cache: assoc must be positive";
  if cfg.size_bytes mod (cfg.line_size * cfg.assoc) <> 0 then
    invalid_arg "Cache: size must divide into line_size * assoc sets";
  if cfg.latency < 0 then invalid_arg "Cache: negative latency";
  if cfg.mshr_size <= 0 then invalid_arg "Cache: mshr_size must be positive";
  cfg

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable prefetches_issued : int;
  mutable mshr_merges : int;
  mutable mshr_stalls : int;
  mutable invalidations : int;
}

let fresh_stats () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    prefetches_issued = 0;
    mshr_merges = 0;
    mshr_stalls = 0;
    invalidations = 0;
  }

type t = {
  cname : string;
  cfg : config;
  nsets : int;
  tags : int array;  (** [set * assoc + way]; -1 = invalid *)
  dirty : bool array;
  lru : int array;  (** higher = more recent *)
  mutable clock : int;
  mshr : (int, int) Hashtbl.t;  (** line address -> ready cycle *)
  stats : stats;
  pf : Prefetcher.t option;
}

let create ~name cfg =
  let cfg = validate_config cfg in
  let nsets = cfg.size_bytes / (cfg.line_size * cfg.assoc) in
  {
    cname = name;
    cfg;
    nsets;
    tags = Array.make (nsets * cfg.assoc) (-1);
    dirty = Array.make (nsets * cfg.assoc) false;
    lru = Array.make (nsets * cfg.assoc) 0;
    clock = 0;
    mshr = Hashtbl.create 64;
    stats = fresh_stats ();
    pf = Option.map Prefetcher.create cfg.prefetch;
  }

let name t = t.cname
let config t = t.cfg
let stats t = t.stats
let nsets t = t.nsets
let prefetcher t = t.pf

let line_of t addr = addr / t.cfg.line_size

let set_of t line = line mod t.nsets

let find_way t line =
  let set = set_of t line in
  let base = set * t.cfg.assoc in
  let rec scan way =
    if way >= t.cfg.assoc then None
    else if t.tags.(base + way) = line then Some (base + way)
    else scan (way + 1)
  in
  scan 0

let touch t slot =
  t.clock <- t.clock + 1;
  t.lru.(slot) <- t.clock

let lookup t ~addr ~is_write =
  t.stats.accesses <- t.stats.accesses + 1;
  let line = line_of t addr in
  match find_way t line with
  | Some slot ->
      t.stats.hits <- t.stats.hits + 1;
      touch t slot;
      if is_write then t.dirty.(slot) <- true;
      `Hit
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      `Miss

let probe t ~addr = find_way t (line_of t addr) <> None

let fill t ~addr ~dirty =
  let line = line_of t addr in
  match find_way t line with
  | Some slot ->
      (* Already present (e.g. filled by a coalesced miss): refresh. *)
      touch t slot;
      if dirty then t.dirty.(slot) <- true;
      `None
  | None ->
      let set = set_of t line in
      let base = set * t.cfg.assoc in
      (* Choose an invalid way, else the LRU way. *)
      let victim = ref base in
      let found_invalid = ref false in
      for way = 0 to t.cfg.assoc - 1 do
        let slot = base + way in
        if (not !found_invalid) && t.tags.(slot) = -1 then begin
          victim := slot;
          found_invalid := true
        end
        else if (not !found_invalid) && t.lru.(slot) < t.lru.(!victim) then
          victim := slot
      done;
      let slot = !victim in
      let result =
        if t.tags.(slot) = -1 then `None
        else begin
          t.stats.evictions <- t.stats.evictions + 1;
          let evicted_addr = t.tags.(slot) * t.cfg.line_size in
          if t.dirty.(slot) then begin
            t.stats.writebacks <- t.stats.writebacks + 1;
            `Dirty evicted_addr
          end
          else `Clean evicted_addr
        end
      in
      t.tags.(slot) <- line;
      t.dirty.(slot) <- dirty;
      touch t slot;
      result

let invalidate t ~addr =
  match find_way t (line_of t addr) with
  | None -> `Absent
  | Some slot ->
      t.stats.invalidations <- t.stats.invalidations + 1;
      t.tags.(slot) <- -1;
      let was_dirty = t.dirty.(slot) in
      t.dirty.(slot) <- false;
      if was_dirty then `Dirty else `Clean

(* MSHR entries are cleaned lazily: an entry whose ready cycle has passed no
   longer occupies a slot. *)
let mshr_sweep t ~cycle =
  let stale =
    Hashtbl.fold
      (fun line ready acc -> if ready <= cycle then line :: acc else acc)
      t.mshr []
  in
  List.iter (Hashtbl.remove t.mshr) stale

let mshr_pending t ~addr ~cycle =
  let line = line_of t addr in
  match Hashtbl.find_opt t.mshr line with
  | Some ready when ready > cycle -> Some ready
  | Some _ ->
      Hashtbl.remove t.mshr line;
      None
  | None -> None

let mshr_insert t ~addr ~ready =
  Hashtbl.replace t.mshr (line_of t addr) ready

let mshr_full t ~cycle =
  mshr_sweep t ~cycle;
  Hashtbl.length t.mshr >= t.cfg.mshr_size

let mshr_earliest t ~cycle =
  Hashtbl.fold
    (fun _ ready acc ->
      if ready > cycle then
        match acc with
        | None -> Some ready
        | Some best -> Some (Stdlib.min best ready)
      else acc)
    t.mshr None

let hit_rate t =
  if t.stats.accesses = 0 then 0.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

(* Publish this cache's counters into a metrics registry under
   "cache.<name>.*" (e.g. cache.l1.0.hits). *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c field v =
    M.incr ~by:v (M.counter reg (Printf.sprintf "cache.%s.%s" t.cname field))
  in
  c "accesses" t.stats.accesses;
  c "hits" t.stats.hits;
  c "misses" t.stats.misses;
  c "evictions" t.stats.evictions;
  c "writebacks" t.stats.writebacks;
  c "prefetches_issued" t.stats.prefetches_issued;
  c "mshr_merges" t.stats.mshr_merges;
  c "mshr_stalls" t.stats.mshr_stalls;
  c "invalidations" t.stats.invalidations
