(** Set-associative cache model (§V-A).

    Timing-only: tags, valid/dirty bits and LRU state, no data (the paper:
    "MosaicSim is a timing simulator and therefore need not hold actual data
    in the caches; the address tags suffice"). Write-back, write-allocate.
    The miss path and MSHR bookkeeping are orchestrated by
    {!Hierarchy}, which owns the level-to-level recursion. *)

type config = {
  size_bytes : int;
  line_size : int;
  assoc : int;
  latency : int;  (** access latency in cycles *)
  mshr_size : int;  (** outstanding distinct-line misses *)
  prefetch : Prefetcher.config option;
}

(** [config] with sanity checks applied; raises [Invalid_argument] when
    geometry is inconsistent (sizes not divisible, non-power-of-two line). *)
val validate_config : config -> config

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;  (** dirty evictions *)
  mutable prefetches_issued : int;
  mutable mshr_merges : int;  (** misses coalesced onto an in-flight line *)
  mutable mshr_stalls : int;  (** misses delayed by a full MSHR *)
  mutable invalidations : int;  (** directory-initiated line drops *)
}

type t

val create : name:string -> config -> t

val name : t -> string
val config : t -> config
val stats : t -> stats

(** Number of sets (for tests). *)
val nsets : t -> int

(** [lookup t ~addr] probes the cache; on a hit the line's LRU state is
    refreshed and, when [is_write], the line is marked dirty. *)
val lookup : t -> addr:int -> is_write:bool -> [ `Hit | `Miss ]

(** Probe without updating any state (for tests and inclusive checks). *)
val probe : t -> addr:int -> bool

(** [fill t ~addr ~dirty] installs the line containing [addr], evicting the
    LRU way if the set is full. Returns what was evicted. *)
val fill :
  t -> addr:int -> dirty:bool -> [ `None | `Clean of int | `Dirty of int ]

(** [invalidate t ~addr] drops the line containing [addr] if present
    (directory-initiated invalidation); returns whether it was dirty. *)
val invalidate : t -> addr:int -> [ `Absent | `Clean | `Dirty ]

(** {1 MSHR}

    These sit on the per-access hot path, so "absent" is signalled with a
    [-1] sentinel rather than an allocated option. Stale entries (ready
    cycle already passed) are expired lazily via a min-heap of retirement
    times — no operation traverses the whole table. *)

(** Completion cycle of an in-flight miss on this line, or [-1] if none. *)
val mshr_pending : t -> addr:int -> cycle:int -> int

val mshr_insert : t -> addr:int -> ready:int -> unit

(** True when no new distinct-line miss can be accepted at [cycle]. *)
val mshr_full : t -> cycle:int -> bool

(** Earliest completion among outstanding entries (to model stalling until
    an MSHR frees up), or [-1] when none are outstanding. *)
val mshr_earliest : t -> cycle:int -> int

val prefetcher : t -> Prefetcher.t option

(** Hits over accesses; 0 before the first access. *)
val hit_rate : t -> float

(** [warm t ~addr ~is_write] installs or refreshes the line like a demand
    access but without touching stats, MSHRs or the prefetcher — the
    fast-forward touch stream uses it to keep tags/LRU/dirty architecturally
    current between detailed intervals. Returns the eviction, like
    {!fill}. *)
val warm :
  t ->
  addr:int ->
  is_write:bool ->
  [ `Hit | `Filled of [ `None | `Clean of int | `Dirty of int ] ]

(** [invalidate] without the stats bump, for architectural bookkeeping on
    the fast-forward path. *)
val drop : t -> addr:int -> [ `Absent | `Clean | `Dirty ]

(** Publish this cache's counters under "cache.<name>.*" into a metrics
    registry. *)
val publish : t -> Mosaic_obs.Metrics.t -> unit

(** {1 Snapshots} — tags/dirty/LRU, MSHR table and expiry heap, stats and
    prefetcher state. [restore] raises [Invalid_argument] on a geometry or
    prefetcher-presence mismatch. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
