(** Stream prefetcher (§V-A).

    Tracks memory requests to detect chains of accesses [k] words apart;
    once a stream is confirmed it emits prefetches for subsequent cache
    lines. Both the number of lines prefetched ([degree]) and how far ahead
    of the triggering access they sit ([distance]) are configurable, as in
    the paper. *)

type config = {
  table_size : int;  (** concurrently tracked streams *)
  degree : int;  (** prefetches emitted per trigger *)
  distance : int;  (** lines ahead of the triggering access *)
  min_confidence : int;  (** stride repetitions required to confirm *)
}

val default_config : config

type t

val create : config -> t

(** [observe t ~addr ~line_size] records a demand access and returns the
    line-aligned addresses to prefetch (empty until a stream is
    confirmed). The returned vector is scratch storage owned by [t]: read
    it before the next [observe] call, and do not retain it. *)
val observe : t -> addr:int -> line_size:int -> Mosaic_util.Int_vec.t

(** Streams currently confirmed (for tests/inspection). *)
val active_streams : t -> int

(** {1 Snapshots} — stream table and LRU tick. [restore] raises
    [Invalid_argument] when the table sizes differ. *)

type dump

val dump : t -> dump
val restore : t -> dump -> unit
