type kind = Dram_read | Dram_write

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable busy_returns : int;
  mutable row_hits : int;
  mutable row_misses : int;
}

let fresh_stats () =
  { reads = 0; writes = 0; busy_returns = 0; row_hits = 0; row_misses = 0 }

type simple_config = {
  min_latency : int;
  lines_per_epoch : int;
  epoch_cycles : int;
}

type detailed_config = {
  nbanks : int;
  row_bytes : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  t_bus : int;
  base_latency : int;
  t_refi : int;
  t_rfc : int;
}

module Int_table = Mosaic_util.Int_table

(* SimpleDRAM tracks per-epoch return counts; a request returns in the first
   epoch at or after (arrival + min latency) with spare bandwidth. *)
type simple_state = {
  s_cfg : simple_config;
  epoch_used : Int_table.t;
  mutable oldest_epoch : int;
}

type detailed_state = {
  d_cfg : detailed_config;
  bank_avail : int array;  (** earliest cycle each bank can start *)
  bank_open_row : int array;  (** -1 = closed *)
}

type model = Simple of simple_state | Detailed of detailed_state

type t = { model : model; stats : stats; sink : Mosaic_obs.Sink.t }

let default_simple =
  (* 200-cycle latency, ~24 GB/s at 2 GHz: 12 B/cycle = one 64B line per
     ~5.3 cycles; with 64-cycle epochs that is 12 lines per epoch. *)
  { min_latency = 200; lines_per_epoch = 12; epoch_cycles = 64 }

let default_detailed =
  {
    nbanks = 8;
    row_bytes = 2048;
    t_cas = 28;
    t_rcd = 28;
    t_rp = 28;
    t_bus = 8;
    base_latency = 120;
    t_refi = 15_600;
    t_rfc = 700;
  }

let simple ?(sink = Mosaic_obs.Sink.null) cfg =
  if cfg.min_latency < 0 || cfg.lines_per_epoch <= 0 || cfg.epoch_cycles <= 0
  then invalid_arg "Dram.simple: bad configuration";
  {
    model =
      Simple
        {
          s_cfg = cfg;
          epoch_used = Int_table.create ~initial_capacity:64 ();
          oldest_epoch = 0;
        };
    stats = fresh_stats ();
    sink;
  }

let detailed ?(sink = Mosaic_obs.Sink.null) cfg =
  if cfg.nbanks <= 0 || cfg.row_bytes <= 0 then
    invalid_arg "Dram.detailed: bad configuration";
  {
    model =
      Detailed
        {
          d_cfg = cfg;
          bank_avail = Array.make cfg.nbanks 0;
          bank_open_row = Array.make cfg.nbanks (-1);
        };
    stats = fresh_stats ();
    sink;
  }

let simple_access st stats ~cycle =
  let cfg = st.s_cfg in
  let earliest = cycle + cfg.min_latency in
  (* While-shaped scan for the first epoch with spare bandwidth (a local
     recursive function would allocate its closure on every access). *)
  let epoch = ref (earliest / cfg.epoch_cycles) in
  let continue = ref true in
  while !continue do
    let slot = Int_table.probe st.epoch_used !epoch in
    if slot < 0 then begin
      Int_table.set st.epoch_used !epoch 1;
      continue := false
    end
    else begin
      let used = Int_table.value_at st.epoch_used slot in
      if used < cfg.lines_per_epoch then begin
        Int_table.set_at st.epoch_used slot (used + 1);
        continue := false
      end
      else incr epoch
    end
  done;
  let epoch = !epoch in
  (* Drop bookkeeping for epochs long past to bound memory. *)
  if epoch > st.oldest_epoch + 4096 then begin
    Int_table.clear st.epoch_used;
    st.oldest_epoch <- epoch
  end;
  let completion = Stdlib.max earliest (epoch * cfg.epoch_cycles) in
  if completion > earliest then stats.busy_returns <- stats.busy_returns + 1;
  completion

let detailed_access st stats ~sink ~cycle ~addr =
  let cfg = st.d_cfg in
  let row = addr / cfg.row_bytes in
  let bank = row mod cfg.nbanks in
  (* Refresh: the bank is unavailable for t_rfc at each refresh interval. *)
  let refresh_adjust c =
    if cfg.t_refi <= 0 then c
    else
      let phase = c mod cfg.t_refi in
      if phase < cfg.t_rfc then c + (cfg.t_rfc - phase) else c
  in
  let start = refresh_adjust (Stdlib.max cycle st.bank_avail.(bank)) in
  let array_latency =
    if st.bank_open_row.(bank) = row then begin
      stats.row_hits <- stats.row_hits + 1;
      cfg.t_cas
    end
    else begin
      stats.row_misses <- stats.row_misses + 1;
      if Mosaic_obs.Sink.enabled sink then
        Mosaic_obs.Sink.emit sink ~cycle
          (Mosaic_obs.Event.Dram_row_activate { bank; row });
      let closed = st.bank_open_row.(bank) = -1 in
      st.bank_open_row.(bank) <- row;
      (if closed then 0 else cfg.t_rp) + cfg.t_rcd + cfg.t_cas
    end
  in
  st.bank_avail.(bank) <- start + array_latency + cfg.t_bus;
  if start > cycle then stats.busy_returns <- stats.busy_returns + 1;
  start + cfg.base_latency + array_latency

let access t ~cycle ~addr kind =
  (match kind with
  | Dram_read -> t.stats.reads <- t.stats.reads + 1
  | Dram_write -> t.stats.writes <- t.stats.writes + 1);
  match t.model with
  | Simple st -> simple_access st t.stats ~cycle
  | Detailed st -> detailed_access st t.stats ~sink:t.sink ~cycle ~addr

let stats t = t.stats

let name t = match t.model with Simple _ -> "simple" | Detailed _ -> "detailed"

(* --- Snapshot support --- *)

type model_dump =
  | D_simple of Mosaic_util.Int_table.dump * int  (** epoch table, oldest *)
  | D_detailed of int array * int array  (** bank_avail, bank_open_row *)

type dump = { d_model : model_dump; d_stats : int array }

let dump t =
  {
    d_model =
      (match t.model with
      | Simple st -> D_simple (Int_table.dump st.epoch_used, st.oldest_epoch)
      | Detailed st ->
          D_detailed (Array.copy st.bank_avail, Array.copy st.bank_open_row));
    d_stats =
      [|
        t.stats.reads; t.stats.writes; t.stats.busy_returns; t.stats.row_hits;
        t.stats.row_misses;
      |];
  }

let restore t d =
  (match (t.model, d.d_model) with
  | Simple st, D_simple (tbl, oldest) ->
      Int_table.restore st.epoch_used tbl;
      st.oldest_epoch <- oldest
  | Detailed st, D_detailed (avail, rows) ->
      if Array.length avail <> Array.length st.bank_avail then
        invalid_arg "Dram.restore: bank count mismatch";
      Array.blit avail 0 st.bank_avail 0 (Array.length avail);
      Array.blit rows 0 st.bank_open_row 0 (Array.length rows)
  | _ -> invalid_arg "Dram.restore: model mismatch");
  t.stats.reads <- d.d_stats.(0);
  t.stats.writes <- d.d_stats.(1);
  t.stats.busy_returns <- d.d_stats.(2);
  t.stats.row_hits <- d.d_stats.(3);
  t.stats.row_misses <- d.d_stats.(4)

(* Publish the end-of-run counters into a metrics registry; the report and
   the CSV/JSON exporters read these rather than the raw record. *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  let c name v = M.incr ~by:v (M.counter reg name) in
  c "dram.reads" t.stats.reads;
  c "dram.writes" t.stats.writes;
  c "dram.busy_returns" t.stats.busy_returns;
  c "dram.row_hits" t.stats.row_hits;
  c "dram.row_misses" t.stats.row_misses
