module Int_vec = Mosaic_util.Int_vec

type config = {
  table_size : int;
  degree : int;
  distance : int;
  min_confidence : int;
}

let default_config =
  { table_size = 16; degree = 4; distance = 4; min_confidence = 2 }

type stream = {
  mutable last : int;
  mutable stride : int;
  mutable confidence : int;
  mutable lru : int;
}

type t = {
  cfg : config;
  streams : stream array;
  mutable tick : int;
  scratch : Int_vec.t;
      (* prefetch candidates for the current observe call; reused so the
         per-access path allocates nothing *)
}

let create cfg =
  {
    cfg;
    streams =
      Array.init (Stdlib.max cfg.table_size 1) (fun _ ->
          { last = -1; stride = 0; confidence = 0; lru = 0 });
    tick = 0;
    scratch = Int_vec.create ~initial_capacity:8 ();
  }

let active_streams t =
  Array.fold_left
    (fun acc s -> if s.confidence >= t.cfg.min_confidence then acc + 1 else acc)
    0 t.streams

(* A stream matches when the new access continues its stride, or is a
   plausible restart near its last address. Both searches take the first
   candidate in table order, as the original Seq-based scan did. *)
let observe t ~addr ~line_size =
  t.tick <- t.tick + 1;
  let cfg = t.cfg in
  Int_vec.clear t.scratch;
  let n = Array.length t.streams in
  let matching = ref (-1) in
  let i = ref 0 in
  while !matching < 0 && !i < n do
    let s = t.streams.(!i) in
    if s.last >= 0 && s.stride <> 0 && addr = s.last + s.stride then
      matching := !i;
    incr i
  done;
  if !matching >= 0 then begin
    let s = t.streams.(!matching) in
    s.last <- addr;
    s.confidence <- s.confidence + 1;
    s.lru <- t.tick;
    if s.confidence >= cfg.min_confidence then
      for k = 0 to cfg.degree - 1 do
        let target = addr + (s.stride * (cfg.distance + k)) in
        Int_vec.push t.scratch (target land lnot (line_size - 1))
      done
  end
  else begin
    (* Try to pair with a stream whose last access is close: learn the
       stride. Otherwise steal the LRU entry. *)
    let near = ref (-1) in
    let j = ref 0 in
    while !near < 0 && !j < n do
      let s = t.streams.(!j) in
      if s.last >= 0 && addr <> s.last && abs (addr - s.last) <= 8 * line_size
      then near := !j;
      incr j
    done;
    if !near >= 0 then begin
      let s = t.streams.(!near) in
      s.stride <- addr - s.last;
      s.last <- addr;
      s.confidence <- 1;
      s.lru <- t.tick
    end
    else begin
      let victim = ref t.streams.(0) in
      for k = 1 to n - 1 do
        if t.streams.(k).lru < !victim.lru then victim := t.streams.(k)
      done;
      let v = !victim in
      v.last <- addr;
      v.stride <- 0;
      v.confidence <- 0;
      v.lru <- t.tick
    end
  end;
  t.scratch

(* Snapshot: stream table (4 ints per entry, flattened) plus the LRU tick.
   [scratch] is per-call state and starts empty. *)

type dump = { d_streams : int array; d_tick : int }

let dump t =
  let n = Array.length t.streams in
  let flat = Array.make (4 * n) 0 in
  Array.iteri
    (fun i s ->
      flat.(4 * i) <- s.last;
      flat.((4 * i) + 1) <- s.stride;
      flat.((4 * i) + 2) <- s.confidence;
      flat.((4 * i) + 3) <- s.lru)
    t.streams;
  { d_streams = flat; d_tick = t.tick }

let restore t d =
  let n = Array.length t.streams in
  if Array.length d.d_streams <> 4 * n then
    invalid_arg "Prefetcher.restore: table size mismatch";
  Array.iteri
    (fun i s ->
      s.last <- d.d_streams.(4 * i);
      s.stride <- d.d_streams.((4 * i) + 1);
      s.confidence <- d.d_streams.((4 * i) + 2);
      s.lru <- d.d_streams.((4 * i) + 3))
    t.streams;
  t.tick <- d.d_tick
