module Int_table = Mosaic_util.Int_table
module Int_vec = Mosaic_util.Int_vec

type dram_config =
  | Simple of Dram.simple_config
  | Detailed of Dram.detailed_config

type coherence_config = { directory_latency : int }

type config = {
  l1 : Cache.config;
  l2 : Cache.config option;
  llc : Cache.config option;
  dram : dram_config;
  coherence : coherence_config option;
}

type t = {
  cfg : config;
  ntiles : int;
  l1s : Cache.t array;
  l2s : Cache.t array;  (** empty when no private L2 *)
  llc : Cache.t option;
  chains : Cache.t array array;
      (** per tile, the levels a demand access walks, front to back —
          precomputed so the per-access path builds no lists *)
  shared_chain : Cache.t array;  (** the LLC alone (or empty) *)
  dram : Dram.t;
  (* directory state: per line, a sharer bitmask and the modifying tile *)
  sharers : Int_table.t;
  modified : Int_table.t;
  mutable inval_msgs : int;
  sink : Mosaic_obs.Sink.t;
}

let create ?(sink = Mosaic_obs.Sink.null) ~ntiles cfg =
  if ntiles <= 0 then invalid_arg "Hierarchy.create: ntiles must be positive";
  let mk name c = Cache.create ~name c in
  let l1s = Array.init ntiles (fun i -> mk (Printf.sprintf "l1.%d" i) cfg.l1) in
  let l2s =
    match cfg.l2 with
    | Some c -> Array.init ntiles (fun i -> mk (Printf.sprintf "l2.%d" i) c)
    | None -> [||]
  in
  let llc = Option.map (mk "llc") cfg.llc in
  let shared_chain = match llc with Some c -> [| c |] | None -> [||] in
  let chains =
    Array.init ntiles (fun i ->
        Array.concat
          [
            [| l1s.(i) |];
            (if Array.length l2s > 0 then [| l2s.(i) |] else [||]);
            shared_chain;
          ])
  in
  {
    cfg;
    ntiles;
    l1s;
    l2s;
    llc;
    chains;
    shared_chain;
    dram =
      (match cfg.dram with
      | Simple c -> Dram.simple ~sink c
      | Detailed c -> Dram.detailed ~sink c);
    sharers = Int_table.create ~initial_capacity:1024 ();
    modified = Int_table.create ~initial_capacity:256 ();
    inval_msgs = 0;
    sink;
  }

let emit_cache t ~cycle c outcome =
  if Mosaic_obs.Sink.enabled t.sink then
    Mosaic_obs.Sink.emit t.sink ~cycle
      (Mosaic_obs.Event.Cache_access { cache = Cache.name c; outcome })

let line_size t = t.cfg.l1.Cache.line_size

let ntiles t = t.ntiles

(* The per-access walkers below recurse over a precomputed [Cache.t array]
   plus a level index instead of consing a list per access. [i] past the
   end of the array means DRAM. *)

(* Push a dirty line toward DRAM: it lands in the next level (inclusive
   hierarchy), which may itself evict. *)
let rec writeback t caches i ~cycle ~addr =
  if i >= Array.length caches then
    ignore (Dram.access t.dram ~cycle ~addr Dram.Dram_write)
  else
    let c = caches.(i) in
    match Cache.lookup c ~addr ~is_write:true with
    | `Hit -> ()
    | `Miss -> (
        match Cache.fill c ~addr ~dirty:true with
        | `Dirty evicted -> writeback t caches (i + 1) ~cycle ~addr:evicted
        | `Clean _ | `None -> ())

(* Demand access walking the cache chain; [dirty_first] marks/installs the
   line dirty at the first level only (write-back). Returns the completion
   cycle. *)
let rec demand t caches i ~cycle ~addr ~dirty_first =
  if i >= Array.length caches then Dram.access t.dram ~cycle ~addr Dram.Dram_read
  else begin
    let c = caches.(i) in
    let lat = (Cache.config c).Cache.latency in
    let completion =
      match Cache.lookup c ~addr ~is_write:dirty_first with
      | `Hit ->
          emit_cache t ~cycle c Mosaic_obs.Event.Hit;
          let base = cycle + lat in
          (* A hit on a line whose fill is still in flight completes when
             the outstanding miss returns (MSHR coalescing). *)
          let ready = Cache.mshr_pending c ~addr ~cycle in
          if ready >= 0 then begin
            (Cache.stats c).Cache.mshr_merges <-
              (Cache.stats c).Cache.mshr_merges + 1;
            Stdlib.max base ready
          end
          else base
      | `Miss ->
          emit_cache t ~cycle c Mosaic_obs.Event.Miss;
          let start =
            if Cache.mshr_full c ~cycle then begin
              (Cache.stats c).Cache.mshr_stalls <-
                (Cache.stats c).Cache.mshr_stalls + 1;
              let ready = Cache.mshr_earliest c ~cycle in
              if ready >= 0 then ready else cycle
            end
            else cycle
          in
          let below =
            demand t caches (i + 1) ~cycle:(start + lat) ~addr
              ~dirty_first:false
          in
          (match Cache.fill c ~addr ~dirty:dirty_first with
          | `Dirty evicted ->
              emit_cache t ~cycle:below c Mosaic_obs.Event.Evict;
              emit_cache t ~cycle:below c Mosaic_obs.Event.Writeback;
              writeback t caches (i + 1) ~cycle:below ~addr:evicted
          | `Clean _ -> emit_cache t ~cycle:below c Mosaic_obs.Event.Evict
          | `None -> ());
          Cache.mshr_insert c ~addr ~ready:below;
          below
    in
    maybe_prefetch t c caches i ~cycle ~addr;
    completion
  end

and maybe_prefetch t c caches i ~cycle ~addr =
  match Cache.prefetcher c with
  | None -> ()
  | Some pf ->
      let lat = (Cache.config c).Cache.latency in
      let lines =
        Prefetcher.observe pf ~addr ~line_size:(Cache.config c).Cache.line_size
      in
      for k = 0 to Int_vec.length lines - 1 do
        let pa = Int_vec.get lines k in
        if
          (not (Cache.probe c ~addr:pa))
          && (not (Cache.mshr_full c ~cycle))
          && Cache.mshr_pending c ~addr:pa ~cycle < 0
        then begin
          (Cache.stats c).Cache.prefetches_issued <-
            (Cache.stats c).Cache.prefetches_issued + 1;
          let below =
            demand t caches (i + 1) ~cycle:(cycle + lat) ~addr:pa
              ~dirty_first:false
          in
          (match Cache.fill c ~addr:pa ~dirty:false with
          | `Dirty evicted -> writeback t caches (i + 1) ~cycle:below ~addr:evicted
          | `Clean _ | `None -> ());
          Cache.mshr_insert c ~addr:pa ~ready:below
        end
      done

(* Drop a line from another tile's private caches; its dirty data merges at
   the shared level (or DRAM), which the writeback path accounts. *)
let invalidate_private t other ~addr ~cycle =
  t.inval_msgs <- t.inval_msgs + 1;
  let dirty1 = Cache.invalidate t.l1s.(other) ~addr in
  let dirty2 =
    if Array.length t.l2s > 0 then Cache.invalidate t.l2s.(other) ~addr
    else `Absent
  in
  if dirty1 = `Dirty || dirty2 = `Dirty then
    writeback t t.shared_chain 0 ~cycle ~addr

let directory_penalty t ~tile ~cycle ~addr ~is_write =
  match t.cfg.coherence with
  | None -> 0
  | Some { directory_latency } when t.ntiles > 1 ->
      let line = addr / line_size t in
      let bit = 1 lsl tile in
      let sharer_mask = Int_table.find t.sharers line ~default:0 in
      let penalty = ref 0 in
      if is_write then begin
        let others = sharer_mask land lnot bit in
        if others <> 0 then begin
          penalty := directory_latency;
          for other = 0 to t.ntiles - 1 do
            if others land (1 lsl other) <> 0 then
              invalidate_private t other ~addr ~cycle
          done
        end;
        Int_table.set t.sharers line bit;
        Int_table.set t.modified line tile
      end
      else begin
        let owner = Int_table.find t.modified line ~default:(-1) in
        if owner >= 0 && owner <> tile then begin
          penalty := directory_latency;
          invalidate_private t owner ~addr ~cycle;
          Int_table.remove t.modified line
        end;
        Int_table.set t.sharers line (sharer_mask lor bit)
      end;
      !penalty
  | Some _ -> 0

let access t ~tile ~cycle ~addr ~is_write =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Hierarchy.access: bad tile %d" tile);
  let penalty = directory_penalty t ~tile ~cycle ~addr ~is_write in
  demand t t.chains.(tile) 0 ~cycle:(cycle + penalty) ~addr
    ~dirty_first:is_write

(* --- Fast-forward cache warming ---

   Mirror of the demand path's *architectural* effects — fills, LRU
   refreshes, dirty bits, directory sharers/owners and the invalidations
   they imply — with no timing, no MSHR traffic and no stats, so the
   demand counters keep measuring only detailed intervals. *)

let rec warm_writeback caches i ~addr =
  if i < Array.length caches then
    match Cache.warm caches.(i) ~addr ~is_write:true with
    | `Hit | `Filled `None | `Filled (`Clean _) -> ()
    | `Filled (`Dirty evicted) -> warm_writeback caches (i + 1) ~addr:evicted

let rec warm_chain caches i ~addr ~is_write =
  if i < Array.length caches then
    match
      Cache.warm caches.(i) ~addr ~is_write:(if i = 0 then is_write else false)
    with
    | `Hit -> ()
    | `Filled ev ->
        (match ev with
        | `Dirty evicted -> warm_writeback caches (i + 1) ~addr:evicted
        | `Clean _ | `None -> ());
        warm_chain caches (i + 1) ~addr ~is_write

(* Directory effects without latency accounting: lines dropped from other
   tiles' private caches merge their dirty data at the shared level. *)
let warm_drop_private t other ~addr =
  let merge = function
    | `Dirty -> warm_writeback t.shared_chain 0 ~addr
    | `Clean | `Absent -> ()
  in
  merge (Cache.drop t.l1s.(other) ~addr);
  if Array.length t.l2s > 0 then merge (Cache.drop t.l2s.(other) ~addr)

let warm_directory t ~tile ~addr ~is_write =
  match t.cfg.coherence with
  | Some _ when t.ntiles > 1 ->
      let line = addr / line_size t in
      let bit = 1 lsl tile in
      let sharer_mask = Int_table.find t.sharers line ~default:0 in
      if is_write then begin
        let others = sharer_mask land lnot bit in
        if others <> 0 then
          for other = 0 to t.ntiles - 1 do
            if others land (1 lsl other) <> 0 then
              warm_drop_private t other ~addr
          done;
        Int_table.set t.sharers line bit;
        Int_table.set t.modified line tile
      end
      else begin
        let owner = Int_table.find t.modified line ~default:(-1) in
        if owner >= 0 && owner <> tile then begin
          warm_drop_private t owner ~addr;
          Int_table.remove t.modified line
        end;
        Int_table.set t.sharers line (sharer_mask lor bit)
      end
  | _ -> ()

let warm t ~tile ~addr ~is_write =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Hierarchy.warm: bad tile %d" tile);
  warm_directory t ~tile ~addr ~is_write;
  warm_chain t.chains.(tile) 0 ~addr ~is_write

(* Sharded-execution support: an access whose line is already resident in
   the tile's L1 reads and writes only that tile's private state (tags,
   LRU, stats, MSHR merge bookkeeping), provided nothing can reach across
   tiles — no directory (coherence invalidates *other* tiles' private
   caches) and no L1 prefetcher (prefetches walk into shared levels even
   on a hit). Under those two conditions the sharded scheduler may run
   L1-hit accesses without global ordering: they commute with every
   shared-state operation. *)
let private_only_config t =
  t.cfg.coherence = None && t.cfg.l1.Cache.prefetch = None

let hits_private t ~tile ~addr =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Hierarchy.hits_private: bad tile %d" tile);
  Cache.probe t.l1s.(tile) ~addr

let can_accept t ~tile ~cycle =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Hierarchy.can_accept: bad tile %d" tile);
  not (Cache.mshr_full t.l1s.(tile) ~cycle)

let next_accept t ~tile ~cycle =
  if tile < 0 || tile >= t.ntiles then
    invalid_arg (Printf.sprintf "Hierarchy.next_accept: bad tile %d" tile);
  if not (Cache.mshr_full t.l1s.(tile) ~cycle) then None
  else
    let ready = Cache.mshr_earliest t.l1s.(tile) ~cycle in
    if ready >= 0 then Some ready else None

let dram_burst t ~cycle ~addr ~bytes ~is_write =
  if bytes <= 0 then cycle
  else begin
    let line = line_size t in
    let nlines = (bytes + line - 1) / line in
    let kind = if is_write then Dram.Dram_write else Dram.Dram_read in
    let completion = ref cycle in
    for i = 0 to nlines - 1 do
      completion :=
        Stdlib.max !completion
          (Dram.access t.dram ~cycle ~addr:(addr + (i * line)) kind)
    done;
    !completion
  end

let cache_stats t =
  let l1 = Array.to_list (Array.map (fun c -> (Cache.name c, Cache.stats c)) t.l1s) in
  let l2 = Array.to_list (Array.map (fun c -> (Cache.name c, Cache.stats c)) t.l2s) in
  let llc =
    match t.llc with Some c -> [ (Cache.name c, Cache.stats c) ] | None -> []
  in
  l1 @ l2 @ llc

let dram_stats t = Dram.stats t.dram

let coherence_invalidations t = t.inval_msgs

type totals = {
  l1_accesses : int;
  l2_accesses : int;
  llc_accesses : int;
  dram_lines : int;
}

let totals t =
  let sum arr = Array.fold_left (fun acc c -> acc + (Cache.stats c).Cache.accesses) 0 arr in
  {
    l1_accesses = sum t.l1s;
    l2_accesses = sum t.l2s;
    llc_accesses =
      (match t.llc with Some c -> (Cache.stats c).Cache.accesses | None -> 0);
    dram_lines =
      (let s = Dram.stats t.dram in
       s.Dram.reads + s.Dram.writes);
  }

(* Aggregate hit rate across an array of same-level private caches. *)
let level_hit_rate caches =
  let acc, hits =
    Array.fold_left
      (fun (a, h) c ->
        let s = Cache.stats c in
        (a + s.Cache.accesses, h + s.Cache.hits))
      (0, 0) caches
  in
  if acc = 0 then 0.0 else float_of_int hits /. float_of_int acc

let l1_hit_rate t = level_hit_rate t.l1s
let l2_hit_rate t = level_hit_rate t.l2s

let llc_hit_rate t =
  match t.llc with Some c -> Cache.hit_rate c | None -> 0.0

(* --- Snapshot support --- *)

type dump = {
  d_l1s : Cache.dump array;
  d_l2s : Cache.dump array;
  d_llc : Cache.dump option;
  d_dram : Dram.dump;
  d_sharers : Int_table.dump;
  d_modified : Int_table.dump;
  d_inval_msgs : int;
}

let dump t =
  {
    d_l1s = Array.map Cache.dump t.l1s;
    d_l2s = Array.map Cache.dump t.l2s;
    d_llc = Option.map Cache.dump t.llc;
    d_dram = Dram.dump t.dram;
    d_sharers = Int_table.dump t.sharers;
    d_modified = Int_table.dump t.modified;
    d_inval_msgs = t.inval_msgs;
  }

let restore t d =
  if
    Array.length d.d_l1s <> Array.length t.l1s
    || Array.length d.d_l2s <> Array.length t.l2s
    || Option.is_some d.d_llc <> Option.is_some t.llc
  then invalid_arg "Hierarchy.restore: topology mismatch";
  Array.iteri (fun i c -> Cache.restore c d.d_l1s.(i)) t.l1s;
  Array.iteri (fun i c -> Cache.restore c d.d_l2s.(i)) t.l2s;
  (match (t.llc, d.d_llc) with
  | Some c, Some cd -> Cache.restore c cd
  | _ -> ());
  Dram.restore t.dram d.d_dram;
  Int_table.restore t.sharers d.d_sharers;
  Int_table.restore t.modified d.d_modified;
  t.inval_msgs <- d.d_inval_msgs

(* Publish every cache, the DRAM model and the level totals into a metrics
   registry. *)
let publish t reg =
  let module M = Mosaic_obs.Metrics in
  Array.iter (fun c -> Cache.publish c reg) t.l1s;
  Array.iter (fun c -> Cache.publish c reg) t.l2s;
  Option.iter (fun c -> Cache.publish c reg) t.llc;
  Dram.publish t.dram reg;
  let tt = totals t in
  let c name v = M.incr ~by:v (M.counter reg name) in
  c "mem.l1_accesses" tt.l1_accesses;
  c "mem.l2_accesses" tt.l2_accesses;
  c "mem.llc_accesses" tt.llc_accesses;
  c "mem.dram_lines" tt.dram_lines;
  c "mem.coherence_invalidations" t.inval_msgs;
  M.set (M.gauge reg "mem.l1_hit_rate") (l1_hit_rate t);
  M.set (M.gauge reg "mem.l2_hit_rate") (l2_hit_rate t);
  M.set (M.gauge reg "mem.llc_hit_rate") (llc_hit_rate t)
