(* MosaicSim command-line driver: run benchmarks on configurable systems,
   inspect IR and traces, and sweep accelerator design spaces. *)

open Cmdliner
module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets
module Tile_config = Mosaic_tile.Tile_config
module Table = Mosaic_util.Table

let benchmark_arg =
  let doc =
    "Benchmark name (see the list command), or a path to a $(b,.mir) \
     workload file (see corpus/ and the fmt command)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

(* BENCH is either a registry name or a `.mir` workload file. Parse
   failures print located caret diagnostics, not a backtrace. *)
let resolve_instance bench =
  if Filename.check_suffix bench ".mir" then (
    try W.Mir_workload.load_file bench
    with Failure msg ->
      prerr_string msg;
      if msg <> "" && msg.[String.length msg - 1] <> '\n' then
        prerr_newline ();
      exit 1)
  else W.Registry.instance bench

let tiles_arg =
  let doc = "Number of SPMD tiles." in
  Arg.(value & opt int 1 & info [ "tiles"; "t" ] ~docv:"N" ~doc)

let core_arg =
  let doc = "Core model: ooo or ino." in
  Arg.(value & opt string "ooo" & info [ "core"; "c" ] ~docv:"CORE" ~doc)

let system_arg =
  let doc = "System preset: xeon (Table I) or dae (Table II)." in
  Arg.(value & opt string "xeon" & info [ "system"; "s" ] ~docv:"SYS" ~doc)

let core_of_string = function
  | "ooo" -> Tile_config.out_of_order
  | "ino" -> Tile_config.in_order
  | s -> failwith (Printf.sprintf "unknown core model %s (ooo|ino)" s)

let system_of_string = function
  | "xeon" -> Presets.xeon_soc
  | "dae" -> Presets.dae_soc
  | s -> failwith (Printf.sprintf "unknown system preset %s (xeon|dae)" s)

let jobs_arg =
  let doc =
    "Run independent simulations across $(docv) domains. Simulated results \
     (cycles, IPC, every counter) are identical at any job count; only \
     host-time readings wobble under contention."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Simulate one SoC across $(docv) domains: tiles are partitioned into \
     contiguous shards swept in cycle lockstep, with cross-shard traffic \
     re-serialized in exact program order. Every result and counter is \
     bit-identical to --shards 1; speedup needs free host cores and more \
     than one tile."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let apply_shards shards cfg =
  if shards <> 1 then { cfg with Soc.shards } else cfg

let no_skip_arg =
  let doc =
    "Disable event-driven cycle skipping and sweep every simulated cycle. \
     Results are identical either way; this is an escape hatch for \
     debugging the scheduler."
  in
  Arg.(value & flag & info [ "no-skip" ] ~doc)

let trace_cache_arg =
  let doc =
    "Trace-cache directory (default: \\$MOSAICSIM_TRACE_CACHE, else \
     ~/.cache/mosaicsim). Dynamic traces are generated once per workload \
     and reused from here on later runs; cached traces are bit-identical \
     to fresh interpretation. Pass $(b,off) or $(b,none) to disable the \
     disk cache."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-cache" ] ~docv:"DIR" ~doc)

let apply_trace_cache = function
  | None -> ()
  | Some "off" | Some "none" -> Mosaic_trace.Store.set_cache_dir `Disabled
  | Some dir -> Mosaic_trace.Store.set_cache_dir (`Dir dir)

let apply_no_skip no_skip cfg =
  if no_skip then { cfg with Soc.cycle_skip = false } else cfg

let profile_arg =
  let doc =
    "Enable the cycle-accounting profiler: attribute every tile-cycle to a \
     stall cause and report per-tile attribution, per-basic-block hot spots \
     and memory-latency quantiles. Simulated cycles are identical with or \
     without profiling."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Dominant cause across tiles, as "cause share%" — the one-cell profile
   summary the bench table shows per benchmark. *)
let top_stall (r : Soc.result) =
  let module Stall = Mosaic_obs.Stall in
  let module Profile = Mosaic_tile.Profile in
  let totals = Array.make Stall.ncauses 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun cause ->
          let i = Stall.index cause in
          totals.(i) <- totals.(i) + Profile.count p cause)
        Stall.all)
    r.Soc.profiles;
  let all = Array.fold_left ( + ) 0 totals in
  if all = 0 then "-"
  else begin
    let best = ref 0 in
    Array.iteri (fun i n -> if n > totals.(!best) then best := i) totals;
    Printf.sprintf "%s %.0f%%"
      (Stall.name (Stall.of_index !best))
      (100.0 *. float_of_int totals.(!best) /. float_of_int all)
  end

let list_cmd =
  let run () =
    print_endline "Benchmarks:";
    List.iter (fun n -> Printf.printf "  %s\n" n) W.Registry.all_names;
    print_endline "DNN case studies (use dnn command):";
    List.iter (fun m -> Printf.printf "  %s\n" (W.Dnn.name m)) W.Dnn.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const run $ const ())

let print_result name (r : Soc.result) =
  Printf.printf "results: %s\n%s\n" name (Mosaic.Report.full r)

let trace_out_arg =
  let doc =
    "Write a Chrome trace_event JSON of the run to $(docv); load it in \
     Perfetto (ui.perfetto.dev) or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Dump the metrics registry to $(docv): CSV by default, JSON when the \
     file ends in .json."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Event collection is enabled only when a trace file was requested, so
   plain runs keep the zero-cost null sink. *)
let sink_for trace_out =
  match trace_out with
  | None -> Mosaic_obs.Sink.null
  | Some _ -> Mosaic_obs.Sink.create ()

let write_observability ~trace_out ~metrics_out ~sink (r : Soc.result) =
  Option.iter
    (fun file ->
      (* When host telemetry is on (--manifest), the simulator's own spans
         ride along on a separate Chrome process track. *)
      let host_spans =
        if Mosaic_obs.Span.enabled () then Mosaic_obs.Span.spans () else []
      in
      Mosaic_obs.Trace_export.write_file ~host_spans file
        (Mosaic_obs.Sink.to_list sink);
      Printf.printf "trace: %s (%d events, %d dropped)\n" file
        (Mosaic_obs.Sink.length sink)
        (Mosaic_obs.Sink.dropped sink))
    trace_out;
  Option.iter
    (fun file ->
      let data =
        if Filename.check_suffix file ".json" then
          Mosaic_obs.Json.to_string (Mosaic_obs.Metrics.to_json r.Soc.metrics)
        else Mosaic_obs.Metrics.to_csv r.Soc.metrics
      in
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc data);
      Printf.printf "metrics: %s\n" file)
    metrics_out

(* "auto", "PERIOD", "PERIOD:INTERVAL" or "PERIOD:INTERVAL:WARMUP", all in
   instructions across tiles; unspecified fields follow [Sample.auto]'s
   proportions. *)
let sample_spec_of_string ~trace s =
  if s = "auto" then
    Mosaic.Sample.auto
      ~total_instrs:(Mosaic_trace.Trace.total_dyn_instrs trace)
  else
    let fields =
      try List.map int_of_string (String.split_on_char ':' s)
      with Failure _ ->
        failwith
          (Printf.sprintf
             "bad --sample spec %S (auto | PERIOD[:INTERVAL[:WARMUP]])" s)
    in
    let spec =
      match fields with
      | [ period ] ->
          {
            Mosaic.Sample.period;
            interval = Stdlib.max 1 (period / 8);
            warmup = Stdlib.max 1 (period / 40);
          }
      | [ period; interval ] ->
          {
            Mosaic.Sample.period;
            interval;
            warmup = Stdlib.max 1 (period / 40);
          }
      | [ period; interval; warmup ] ->
          { Mosaic.Sample.period; interval; warmup }
      | _ ->
          failwith
            (Printf.sprintf
               "bad --sample spec %S (auto | PERIOD[:INTERVAL[:WARMUP]])" s)
    in
    Mosaic.Sample.validate_spec spec;
    spec

let print_sample_report (r : Soc.result) =
  Option.iter
    (fun (s : Mosaic.Sample.report) ->
      Printf.printf
        "sampled: %d cycles estimated (%d measured in detail over %d \
         instrs; %d instrs fast-forwarded across %d periods%s)\n"
        s.Mosaic.Sample.est_cycles s.Mosaic.Sample.detailed_cycles
        s.Mosaic.Sample.detailed_instrs s.Mosaic.Sample.ff_instrs
        s.Mosaic.Sample.periods
        (if s.Mosaic.Sample.degraded > 0 then
           Printf.sprintf "; %d drains degraded to exact"
             s.Mosaic.Sample.degraded
         else ""))
    r.Soc.sample

let sample_arg =
  let doc =
    "Interval sampling: alternate detailed measurement with functional \
     fast-forward and report extrapolated cycles. $(docv) is $(b,auto) or \
     $(b,PERIOD[:INTERVAL[:WARMUP]]) in instructions. Without this flag \
     the full (exact) simulator runs every cycle."
  in
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"SPEC" ~doc)

let checkpoint_arg =
  let doc = "Write a snapshot of the full timing state to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_at_arg =
  let doc =
    "Cycle to capture the --checkpoint snapshot at (first visited cycle >= \
     $(docv); default 0)."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-at" ] ~docv:"CYCLE" ~doc)

let resume_arg =
  let doc =
    "Resume from a snapshot file instead of cycle 0; the remainder of the \
     run is bit-identical to the straight run."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let manifest_arg =
  let doc =
    "Write a self-describing run manifest to $(docv): config/trace digests, \
     host info, format versions, every registry metric and the host-side \
     span trace. Enables host telemetry (spans) for the run. Compare \
     manifests with the diff command."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Report live progress on stderr (cycle, instructions retired, MIPS, \
     ETA), at most one line per second. Simulated results are unchanged."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* --manifest turns the span tracer on for the whole invocation; do it
   before any trace generation so trace_gen spans are captured too. *)
let apply_manifest manifest =
  if manifest <> None then Mosaic_obs.Span.set_enabled true

let progress_for ~enabled ~label ~trace =
  if not enabled then None
  else
    Some
      (Mosaic_obs.Progress.create ~label
         ~total_instrs:(Some (Mosaic_trace.Trace.total_dyn_instrs trace))
         ())

let write_manifest ~kind ~name ?digests ~metrics = function
  | None -> ()
  | Some file ->
      let m = Mosaic.Telemetry.manifest ~kind ~name ?digests ~metrics () in
      Mosaic_obs.Manifest.write file m;
      Printf.printf "manifest: %s\n" file

let run_cmd =
  let run bench tiles core system no_skip shards profile trace_out metrics_out
      cache sample checkpoint checkpoint_at resume manifest progress =
    apply_manifest manifest;
    apply_trace_cache cache;
    let inst = resolve_instance bench in
    let trace, tinfo = W.Runner.trace_cached_full inst ~ntiles:tiles in
    let cfg =
      apply_shards shards (apply_no_skip no_skip (system_of_string system))
    in
    let sink = sink_for trace_out in
    let sample = Option.map (sample_spec_of_string ~trace) sample in
    let progress = progress_for ~enabled:progress ~label:bench ~trace in
    let checkpoint_at, on_checkpoint =
      match checkpoint with
      | None -> (None, None)
      | Some file ->
          ( Some checkpoint_at,
            Some
              (fun s ->
                Mosaic.Snapshot.save s file;
                Printf.printf "checkpoint: %s (cycle %d)\n" file
                  (Mosaic.Snapshot.cycle s)) )
    in
    let resume =
      Option.map
        (fun file ->
          try Mosaic.Snapshot.load file
          with Mosaic.Snapshot.Format_error msg ->
            failwith (Printf.sprintf "%s: %s" file msg))
        resume
    in
    let r =
      Soc.run_homogeneous ~sink ~profile ?checkpoint_at ?on_checkpoint
        ?resume ?sample ?progress cfg ~program:inst.W.Runner.program ~trace
        ~tile_config:(core_of_string core)
    in
    print_result bench r;
    print_sample_report r;
    write_observability ~trace_out ~metrics_out ~sink r;
    let digests =
      let tiles =
        Array.map
          (fun (tt : Mosaic_trace.Trace.tile_trace) ->
            {
              Soc.kernel = tt.Mosaic_trace.Trace.kernel;
              tile_config = core_of_string core;
            })
          trace.Mosaic_trace.Trace.tiles
      in
      [
        ("config", Mosaic.Telemetry.config_digest cfg ~tiles);
        ("trace", tinfo.Mosaic_trace.Store.digest);
      ]
    in
    write_manifest ~kind:"run" ~name:bench ~digests ~metrics:r.Soc.metrics
      manifest
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark on a simulated system")
    Term.(
      const run $ benchmark_arg $ tiles_arg $ core_arg $ system_arg
      $ no_skip_arg $ shards_arg $ profile_arg $ trace_out_arg
      $ metrics_out_arg $ trace_cache_arg $ sample_arg $ checkpoint_arg
      $ checkpoint_at_arg $ resume_arg $ manifest_arg $ progress_arg)

let bench_cmd =
  let benches_arg =
    let doc = "Benchmarks to run (default: the Parboil suite)." in
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH" ~doc)
  in
  let run benches tiles core system no_skip shards profile jobs cache manifest
      =
    apply_manifest manifest;
    apply_trace_cache cache;
    (* Nested domain pools oversubscribe: a batch of sharded runs would
       spawn jobs*shards domains. Pick one axis of parallelism. *)
    if jobs > 1 && shards > 1 then
      failwith
        (Printf.sprintf
           "--jobs %d and --shards %d both parallelize; use --jobs to run \
            workloads concurrently or --shards to parallelize within one \
            SoC, not both"
           jobs shards);
    let names =
      match benches with [] -> W.Registry.parboil_names | ns -> ns
    in
    let cfg =
      apply_shards shards (apply_no_skip no_skip (system_of_string system))
    in
    let tc = core_of_string core in
    let results =
      W.Runner.run_batch ~jobs
        (List.map
           (fun name () ->
             let inst = resolve_instance name in
             let trace = W.Runner.trace_cached inst ~ntiles:tiles in
             let r =
               Soc.run_homogeneous ~profile cfg ~program:inst.W.Runner.program
                 ~trace ~tile_config:tc
             in
             (name, r))
           names)
    in
    Table.print
      ~title:(Printf.sprintf "bench: %s, %s (%d jobs)" system core jobs)
      ~columns:
        ([
           Table.column ~align:Table.Left "benchmark";
           Table.column "cycles";
           Table.column "IPC";
           Table.column "MIPS";
           Table.column "host s";
         ]
        @ if profile then [ Table.column ~align:Table.Left "top stall" ] else [])
      (List.map
         (fun (name, (r : Soc.result)) ->
           [
             name;
             Table.icell r.Soc.cycles;
             Printf.sprintf "%.2f" r.Soc.ipc;
             Printf.sprintf "%.2f" r.Soc.mips;
             Printf.sprintf "%.2f" r.Soc.host_seconds;
           ]
           @ if profile then [ top_stall r ] else [])
         results);
    match manifest with
    | None -> ()
    | Some _ ->
        let reg = Mosaic_obs.Metrics.create () in
        List.iter
          (fun (name, (r : Soc.result)) ->
            let g k v =
              Mosaic_obs.Span.gauge_set reg
                (Printf.sprintf "bench.%s.%s" name k)
                v
            in
            g "cycles" (float_of_int r.Soc.cycles);
            g "instrs" (float_of_int r.Soc.instrs);
            g "ipc" r.Soc.ipc;
            g "mips" r.Soc.mips;
            g "host_seconds" r.Soc.host_seconds)
          results;
        write_manifest ~kind:"bench"
          ~name:(String.concat "," names)
          ~metrics:reg manifest
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run a batch of benchmarks, optionally across parallel domains \
          (--jobs)")
    Term.(
      const run $ benches_arg $ tiles_arg $ core_arg $ system_arg
      $ no_skip_arg $ shards_arg $ profile_arg $ jobs_arg $ trace_cache_arg
      $ manifest_arg)

(* Cycle-accounting profiler front-end: run one workload with attribution
   on and print where the cycles went — per-tile stacked stall shares, the
   ranked per-basic-block hot-spot table, and memory-latency quantiles. *)
let profile_cmd =
  let top_arg =
    let doc = "Rows in the hot-spot ranking." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc =
      "Export stall-attribution samples to $(docv): CSV by default \
       (cycle,tile,cause,cycles with cumulative counts), JSON when the file \
       ends in .json. With --trace-out the export carries the periodic \
       samples of the run; otherwise a single end-of-run snapshot."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run bench tiles core system no_skip shards top out trace_out metrics_out
      cache =
    apply_trace_cache cache;
    let inst = resolve_instance bench in
    let trace = W.Runner.trace_cached inst ~ntiles:tiles in
    let cfg =
      apply_shards shards (apply_no_skip no_skip (system_of_string system))
    in
    let sink = sink_for trace_out in
    let r =
      Soc.run_homogeneous ~sink ~profile:true cfg
        ~program:inst.W.Runner.program ~trace
        ~tile_config:(core_of_string core)
    in
    Printf.printf "profile: %s\n== summary ==\n%s\n%s\n" bench
      (Mosaic.Report.summary r)
      (Mosaic.Report.profile ~top r);
    Option.iter
      (fun file ->
        let events =
          if Mosaic_obs.Sink.enabled sink then Mosaic_obs.Sink.to_list sink
          else
            Array.to_list
              (Array.mapi
                 (fun i p ->
                   {
                     Mosaic_obs.Event.cycle = r.Soc.cycles;
                     payload =
                       Mosaic_obs.Event.Stall_sample
                         { tile = i; counts = Mosaic_tile.Profile.counts p };
                   })
                 r.Soc.profiles)
        in
        let data =
          if Filename.check_suffix file ".json" then
            Mosaic_obs.Json.to_string
              (Mosaic_obs.Trace_export.stalls_to_json events)
          else Mosaic_obs.Trace_export.stalls_to_csv events
        in
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc data);
        Printf.printf "stalls: %s\n" file)
      out;
    write_observability ~trace_out ~metrics_out ~sink r
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a benchmark with cycle accounting and print the stall \
          attribution, hot-spot ranking and memory-latency histogram")
    Term.(
      const run $ benchmark_arg $ tiles_arg $ core_arg $ system_arg
      $ no_skip_arg $ shards_arg $ top_arg $ out_arg $ trace_out_arg
      $ metrics_out_arg $ trace_cache_arg)

let dump_cmd =
  let run bench =
    let inst = resolve_instance bench in
    Format.printf "%a@." Mosaic_ir.Pretty.pp_program inst.W.Runner.program
  in
  Cmd.v (Cmd.info "dump" ~doc:"Dump a benchmark's IR")
    Term.(const run $ benchmark_arg)

(* Pre-warm or inspect the trace cache for one workload: where the trace
   came from (fresh interpretation, in-process memo, disk), its cache key
   and file, and the §VI-B storage story (raw vs encoded footprint). *)
let trace_cmd =
  let bench_opt_arg =
    let doc =
      "Benchmark name or $(b,.mir) file (optional with $(b,--gc))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let gc_arg =
    let doc =
      "Garbage-collect the trace cache: report entry count and total size, \
       and with $(b,--max-bytes) prune least-recently-used entries (by \
       mtime) until the rest fit. Evicted traces are regenerated on next \
       use."
    in
    Arg.(value & flag & info [ "gc" ] ~doc)
  in
  let max_bytes_arg =
    let doc = "Size cap for $(b,--gc), in bytes." in
    Arg.(
      value & opt (some int) None & info [ "max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let run_gc max_bytes =
    match Mosaic_trace.Store.gc ?max_bytes () with
    | None -> print_endline "trace cache: disabled; nothing to collect"
    | Some g ->
        let dir =
          Option.value ~default:"?" (Mosaic_trace.Store.cache_dir ())
        in
        let mb n = Printf.sprintf "%.2f" (float_of_int n /. 1048576.0) in
        Table.print ~title:(Printf.sprintf "trace cache gc: %s" dir)
          ~columns:
            [ Table.column ~align:Table.Left "metric"; Table.column "value" ]
          [
            [ "entries scanned"; Table.icell g.Mosaic_trace.Store.scanned ];
            [ "size MB"; mb g.Mosaic_trace.Store.scanned_bytes ];
            [ "entries deleted"; Table.icell g.Mosaic_trace.Store.deleted ];
            [ "deleted MB"; mb g.Mosaic_trace.Store.deleted_bytes ];
            [
              "size after MB";
              mb
                (g.Mosaic_trace.Store.scanned_bytes
                - g.Mosaic_trace.Store.deleted_bytes);
            ];
          ]
  in
  let run_trace_inspect bench tiles =
    let inst = resolve_instance bench in
    let trace, info = W.Runner.trace_cached_full inst ~ntiles:tiles in
    let control, memory = Mosaic_trace.Trace.storage_bytes trace in
    let comp_control, comp_memory = Mosaic_trace.Trace.compressed_bytes trace in
    let status =
      match info.Mosaic_trace.Store.source with
      | Mosaic_trace.Store.Interpreted -> "miss (interpreted and cached)"
      | Mosaic_trace.Store.Memo_hit -> "hit (in-process memo)"
      | Mosaic_trace.Store.Disk_hit -> "hit (disk cache)"
    in
    let kb n = Printf.sprintf "%.1f" (float_of_int n /. 1024.0) in
    Table.print ~title:(Printf.sprintf "trace: %s (%d tiles)" bench tiles)
      ~columns:[ Table.column ~align:Table.Left "metric"; Table.column ~align:Table.Left "value" ]
      [
        [ "workload digest"; info.Mosaic_trace.Store.digest ];
        [ "cache status"; status ];
        [
          "cache file";
          (match info.Mosaic_trace.Store.cache_file with
          | Some path -> path
          | None -> "(disk cache disabled)");
        ];
        [
          "trace obtained in";
          Printf.sprintf "%.3f s" info.Mosaic_trace.Store.gen_seconds;
        ];
        [ "dynamic instructions"; Table.icell (Mosaic_trace.Trace.total_dyn_instrs trace) ];
        [ "memory accesses"; Table.icell (Mosaic_trace.Trace.total_mem_accesses trace) ];
        [ "control trace raw KB"; kb control ];
        [ "control trace packed KB"; kb comp_control ];
        [ "memory trace raw KB"; kb memory ];
        [ "memory trace packed KB"; kb comp_memory ];
      ]
  in
  let run bench tiles cache gc max_bytes =
    apply_trace_cache cache;
    if gc then run_gc max_bytes
    else begin
      let bench =
        match bench with
        | Some b -> b
        | None -> failwith "BENCH is required unless --gc is given"
      in
      run_trace_inspect bench tiles
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Generate a benchmark's trace (or fetch it from the trace cache) \
          and report footprint and cache status; --gc prunes the cache")
    Term.(
      const run $ bench_opt_arg $ tiles_arg $ trace_cache_arg $ gc_arg
      $ max_bytes_arg)

let trace_stats_cmd =
  let run bench tiles =
    let inst = resolve_instance bench in
    let trace = W.Runner.trace_cached inst ~ntiles:tiles in
    let control, memory = Mosaic_trace.Trace.storage_bytes trace in
    Table.print ~title:(Printf.sprintf "trace: %s" bench)
      ~columns:[ Table.column ~align:Table.Left "metric"; Table.column "value" ]
      [
        [ "dynamic instructions"; Table.icell (Mosaic_trace.Trace.total_dyn_instrs trace) ];
        [ "memory accesses"; Table.icell (Mosaic_trace.Trace.total_mem_accesses trace) ];
        [ "control trace (bytes)"; Table.icell control ];
        [ "memory trace (bytes)"; Table.icell memory ];
      ]
  in
  Cmd.v
    (Cmd.info "trace-stats" ~doc:"Generate and measure a benchmark's traces")
    Term.(const run $ benchmark_arg $ tiles_arg)

let dse_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND" ~doc:"Accelerator kind: gemm, histo, elementwise")
  in
  let bench_arg =
    let doc =
      "Also sweep the PLM axis at SoC level for this workload (e.g. \
       $(b,sgemm-accel)) with the incremental re-timer: one profiled \
       simulation, every paper PLM size re-timed, the full simulator as \
       the per-point oracle."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"BENCH" ~doc)
  in
  let soc_plm_sweep bench jobs =
    let inst = resolve_instance bench in
    let trace = W.Runner.trace_cached inst ~ntiles:1 in
    let spec =
      "plm="
      ^ String.concat ","
          (List.map
             (fun b -> string_of_int (b / 1024))
             Mosaic_accel.Dse.paper_plm_sizes)
    in
    let points = Mosaic.Sweep.grid [ Mosaic.Sweep.axis_of_spec spec ] in
    let o =
      Mosaic.Sweep.run ~jobs ~exact:true Presets.dae_soc
        ~tile_config:Tile_config.out_of_order ~program:inst.W.Runner.program
        ~trace points
    in
    Table.print
      ~title:
        (Printf.sprintf "SoC-level PLM sweep: %s (retimed vs exact)" bench)
      ~columns:
        [
          Table.column ~align:Table.Left "point";
          Table.column "retimed cycles";
          Table.column "exact cycles";
          Table.column "err %";
        ]
      (Array.to_list
         (Array.map
            (fun (p : Mosaic.Sweep.point) ->
              [
                p.Mosaic.Sweep.label;
                Table.icell p.Mosaic.Sweep.retimed.Mosaic.Retime.cycles;
                (match p.Mosaic.Sweep.exact_cycles with
                | Some e -> Table.icell e
                | None -> "-");
                (match p.Mosaic.Sweep.err_pct with
                | Some e -> Printf.sprintf "%.2f" e
                | None -> "-");
              ])
            o.Mosaic.Sweep.points));
    Printf.printf
      "incremental: %.3f s vs %.3f s exact (%.1fx); max err %.2f%%\n"
      (Mosaic.Sweep.incremental_seconds o)
      o.Mosaic.Sweep.exact_seconds
      (Option.value ~default:0.0 (Mosaic.Sweep.speedup o))
      (Mosaic.Sweep.max_err_pct o)
  in
  let run kind jobs bench =
    let points =
      Mosaic_accel.Dse.sweep ~jobs ~kind
        ~plm_sizes:Mosaic_accel.Dse.paper_plm_sizes
        ~workload_bytes:Mosaic_accel.Dse.paper_workload_bytes
        Mosaic_accel.Accel_model.default_sys
    in
    let rows =
      List.map
        (fun (p : Mosaic_accel.Dse.point) ->
          [
            Printf.sprintf "%dKB" (p.Mosaic_accel.Dse.plm_bytes / 1024);
            Printf.sprintf "%dKB" (p.Mosaic_accel.Dse.workload_bytes / 1024);
            Table.icell p.Mosaic_accel.Dse.model_cycles;
            Table.icell p.Mosaic_accel.Dse.rtl_cycles;
            Table.icell p.Mosaic_accel.Dse.fpga_cycles;
            Printf.sprintf "%.0f" p.Mosaic_accel.Dse.area_um2;
          ])
        points
    in
    Table.print ~title:(Printf.sprintf "DSE: %s" kind)
      ~columns:
        [
          Table.column "PLM";
          Table.column "workload";
          Table.column "model cyc";
          Table.column "rtl cyc";
          Table.column "fpga cyc";
          Table.column "area um2";
        ]
      rows;
    Option.iter (fun b -> soc_plm_sweep b jobs) bench
  in
  Cmd.v
    (Cmd.info "dse" ~doc:"Accelerator design-space exploration sweep")
    Term.(const run $ kind_arg $ jobs_arg $ bench_arg)

(* Incremental design-space sweep: one exact profiled simulation + N cheap
   re-timings, full simulator as the per-point oracle behind --exact. *)
let sweep_cmd =
  let axis_arg =
    let doc =
      "Sweep axis as $(b,name=v1,v2,...) (repeatable; axes cross into a \
       grid). Axes: l1/l2/llc (cache KB), dramlat (cycles), wire (cycles), \
       plm (accelerator PLM KB), lanes, width, window, lsq, div, freq \
       (GHz). Default: l1=8,16,32,64 crossed with l2=256,512,1024,2048 \
       (16 points)."
    in
    Arg.(value & opt_all string [] & info [ "axis"; "a" ] ~docv:"SPEC" ~doc)
  in
  let exact_arg =
    let doc =
      "Also run the full simulator at every point (the exact oracle) and \
       report the re-timer's measured cycle error per point."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run bench tiles core system axes exact jobs no_skip shards cache
      manifest =
    apply_manifest manifest;
    apply_trace_cache cache;
    if jobs > 1 && shards > 1 then
      failwith
        (Printf.sprintf
           "--jobs %d and --shards %d both parallelize; pick one" jobs shards);
    let inst = resolve_instance bench in
    let trace = W.Runner.trace_cached inst ~ntiles:tiles in
    let cfg =
      apply_shards shards (apply_no_skip no_skip (system_of_string system))
    in
    let specs = match axes with [] -> Mosaic.Sweep.default_axes | a -> a in
    let points =
      Mosaic.Sweep.grid (List.map Mosaic.Sweep.axis_of_spec specs)
    in
    let o =
      Mosaic.Sweep.run ~jobs ~exact cfg ~tile_config:(core_of_string core)
        ~program:inst.W.Runner.program ~trace points
    in
    Table.print
      ~title:
        (Printf.sprintf "sweep: %s, %d points (%s)" bench
           (Array.length o.Mosaic.Sweep.points)
           (String.concat " x " specs))
      ~columns:
        ([
           Table.column ~align:Table.Left "point";
           Table.column "retimed cycles";
           Table.column "IPC";
         ]
        @
        if exact then [ Table.column "exact cycles"; Table.column "err %" ]
        else [])
      (Array.to_list
         (Array.map
            (fun (p : Mosaic.Sweep.point) ->
              [
                p.Mosaic.Sweep.label;
                Table.icell p.Mosaic.Sweep.retimed.Mosaic.Retime.cycles;
                Printf.sprintf "%.2f" p.Mosaic.Sweep.retimed.Mosaic.Retime.ipc;
              ]
              @
              match (p.Mosaic.Sweep.exact_cycles, p.Mosaic.Sweep.err_pct) with
              | Some e, Some err ->
                  [ Table.icell e; Printf.sprintf "%.2f" err ]
              | _ -> [])
            o.Mosaic.Sweep.points));
    let npoints = Array.length o.Mosaic.Sweep.points in
    Printf.printf
      "base: %d cycles; profiled sim %.3f s + analysis %.3f s + %d \
       re-timings %.4f s (%.1f us/point)\n"
      o.Mosaic.Sweep.base.Soc.cycles o.Mosaic.Sweep.base_seconds
      o.Mosaic.Sweep.analyze_seconds npoints o.Mosaic.Sweep.retime_seconds
      (1e6 *. o.Mosaic.Sweep.retime_seconds /. float_of_int (max npoints 1));
    if exact then
      Printf.printf
        "exact oracle: %.3f s for %d full simulations; incremental sweep \
         %.1fx faster; max cycle error %.2f%%\n"
        o.Mosaic.Sweep.exact_seconds npoints
        (Option.value ~default:0.0 (Mosaic.Sweep.speedup o))
        (Mosaic.Sweep.max_err_pct o);
    match manifest with
    | None -> ()
    | Some _ ->
        let reg = Mosaic_obs.Metrics.create () in
        let g k v = Mosaic_obs.Span.gauge_set reg k v in
        g "sweep.base.cycles" (float_of_int o.Mosaic.Sweep.base.Soc.cycles);
        g "sweep.points" (float_of_int npoints);
        g "sweep.base_seconds" o.Mosaic.Sweep.base_seconds;
        g "sweep.analyze_seconds" o.Mosaic.Sweep.analyze_seconds;
        g "sweep.retime_seconds" o.Mosaic.Sweep.retime_seconds;
        g "sweep.exact_seconds" o.Mosaic.Sweep.exact_seconds;
        Array.iter
          (fun (p : Mosaic.Sweep.point) ->
            g
              (Printf.sprintf "sweep.%s.retimed_cycles" p.Mosaic.Sweep.label)
              (float_of_int p.Mosaic.Sweep.retimed.Mosaic.Retime.cycles);
            Option.iter
              (fun e ->
                g
                  (Printf.sprintf "sweep.%s.exact_cycles" p.Mosaic.Sweep.label)
                  (float_of_int e))
              p.Mosaic.Sweep.exact_cycles)
          o.Mosaic.Sweep.points;
        write_manifest ~kind:"sweep" ~name:bench ~metrics:reg manifest
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Incremental design-space sweep: analyze the trace once, re-time \
          every design point (LightningSim-style); --exact keeps the full \
          simulator as the oracle")
    Term.(
      const run $ benchmark_arg $ tiles_arg $ core_arg $ system_arg
      $ axis_arg $ exact_arg $ jobs_arg $ no_skip_arg $ shards_arg
      $ trace_cache_arg $ manifest_arg)

let dnn_cmd =
  let model_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"DNN model: convnet, graphsage, recsys")
  in
  let accel_arg =
    Arg.(value & flag & info [ "accel" ] ~doc:"Use the accelerator SoC")
  in
  let run model accel =
    let m =
      match model with
      | "convnet" -> W.Dnn.Convnet
      | "graphsage" -> W.Dnn.Graphsage
      | "recsys" -> W.Dnn.Recsys
      | s -> failwith (Printf.sprintf "unknown model %s" s)
    in
    let inst = W.Dnn.instance m ~accel in
    let trace = W.Runner.trace_cached inst ~ntiles:1 in
    let r =
      Soc.run_homogeneous Presets.dae_soc ~program:inst.W.Runner.program ~trace
        ~tile_config:Tile_config.out_of_order
    in
    print_result inst.W.Runner.name r
  in
  Cmd.v
    (Cmd.info "dnn" ~doc:"Run a Keras TensorFlow case-study model")
    Term.(const run $ model_arg $ accel_arg)

let characterize_cmd =
  let run bench tiles =
    let inst = resolve_instance bench in
    let trace = W.Runner.trace_cached inst ~ntiles:tiles in
    let a = Mosaic_trace.Analysis.whole inst.W.Runner.program trace in
    Format.printf "characterization: %s@.%a@." bench Mosaic_trace.Analysis.pp a;
    List.iter
      (fun kb ->
        Printf.printf "LRU hit rate at %4d KB: %.1f%%\n" kb
          (100.0
          *. Mosaic_trace.Analysis.capacity_hit_rate a ~lines:(kb * 1024 / 64)))
      [ 16; 32; 256; 2048; 20480 ];
    (* The re-timer's view of the same trace: instruction mix, critical
       dependence chain, communication and accelerator events. *)
    let sk = Mosaic_trace.Analysis.skeleton inst.W.Runner.program trace in
    Format.printf "@.%a@." Mosaic_trace.Analysis.pp_skeleton sk
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Locality and instruction-mix characterization from traces")
    Term.(const run $ benchmark_arg $ tiles_arg)

let asm_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual IR file (see the dump command)")
  in
  let run file tiles core system no_skip =
    let text = In_channel.with_open_text file In_channel.input_all in
    let prog = Mosaic_ir.Parse.program text in
    let kernel =
      match Mosaic_ir.Program.funcs prog with
      | f :: _ -> f.Mosaic_ir.Func.name
      | [] -> failwith "no kernel in file"
    in
    let nparams = (Mosaic_ir.Program.func_exn prog kernel).Mosaic_ir.Func.nparams in
    if nparams > 0 then
      failwith "asm run supports parameterless kernels; bake sizes into the IR";
    let it = Mosaic_trace.Interp.create prog ~kernel ~ntiles:tiles ~args:[] in
    let trace = Mosaic_trace.Interp.run it in
    let r =
      Soc.run_homogeneous
        (apply_no_skip no_skip (system_of_string system))
        ~program:prog ~trace ~tile_config:(core_of_string core)
    in
    print_result (Filename.basename file) r
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble and simulate a textual IR file")
    Term.(
      const run $ file_arg $ tiles_arg $ core_arg $ system_arg $ no_skip_arg)

let cc_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"MiniC source file (see lib/frontend)")
  in
  let kernel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel"; "k" ] ~docv:"NAME" ~doc:"Kernel to run (default: first)")
  in
  let args_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "args" ] ~docv:"N,N,..." ~doc:"Integer kernel arguments")
  in
  let run file kernel kargs tiles core system no_skip =
    let prog = Mosaic_frontend.Minic.compile_file file in
    let kernel =
      match kernel with
      | Some k -> k
      | None -> (
          match Mosaic_ir.Program.funcs prog with
          | f :: _ -> f.Mosaic_ir.Func.name
          | [] -> failwith "no kernel in file")
    in
    let args = List.map Mosaic_ir.Value.of_int kargs in
    let it = Mosaic_trace.Interp.create prog ~kernel ~ntiles:tiles ~args in
    let trace = Mosaic_trace.Interp.run it in
    let r =
      Soc.run_homogeneous
        (apply_no_skip no_skip (system_of_string system))
        ~program:prog ~trace ~tile_config:(core_of_string core)
    in
    print_result (Filename.basename file) r
  in
  Cmd.v
    (Cmd.info "cc"
       ~doc:"Compile a MiniC source file and simulate its kernel")
    Term.(
      const run $ file_arg $ kernel_arg $ args_arg $ tiles_arg $ core_arg
      $ system_arg $ no_skip_arg)

let dae_cmd =
  let run bench pairs no_skip shards profile =
    let inst, info =
      match bench with
      | "ewsd" -> W.Ewsd.dae_instance ~rows:2048 ~cols:2048 ~per_row:16 ()
      | "projection" ->
          W.Projection.dae_instance ~n_left:512 ~n_right:1024 ~degree:8 ()
      | "sgemm" -> W.Sgemm.dae_instance ~m:48 ~n:48 ~k:48 ()
      | s -> failwith (Printf.sprintf "no DAE variant for %s" s)
    in
    Printf.printf
      "slicing: %d terminal loads, %d routed stores, %d duplicated\n"
      info.Mosaic_compiler.Dae.sent_loads info.Mosaic_compiler.Dae.routed_stores
      info.Mosaic_compiler.Dae.duplicated;
    let access = inst.W.Runner.kernel ^ "_access"
    and execute = inst.W.Runner.kernel ^ "_execute" in
    let spec =
      Array.init (2 * pairs) (fun i ->
          ((if i < pairs then access else execute), inst.W.Runner.args))
    in
    let trace = W.Runner.trace_hetero_cached inst ~tiles:spec in
    let tiles =
      Array.init (2 * pairs) (fun i ->
          {
            Soc.kernel = (if i < pairs then access else execute);
            tile_config = Tile_config.in_order;
          })
    in
    let r =
      Soc.run ~profile
        (apply_shards shards (apply_no_skip no_skip Presets.dae_soc))
        ~program:inst.W.Runner.program ~trace ~tiles
    in
    print_result (bench ^ "-dae") r
  in
  let pairs_arg =
    Arg.(value & opt int 1 & info [ "pairs"; "p" ] ~docv:"N" ~doc:"DAE pairs")
  in
  Cmd.v
    (Cmd.info "dae" ~doc:"Slice a kernel into DAE halves and simulate pairs")
    Term.(
      const run $ benchmark_arg $ pairs_arg $ no_skip_arg $ shards_arg
      $ profile_arg)

(* Parse -> pretty-print round trip: the canonical form preserves
   semantics exactly (explicit instruction ids, bit-exact float literals,
   metadata directives), so formatting never changes a trace digest. *)
let fmt_cmd =
  let files_arg =
    let doc = "The $(b,.mir) files to format." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let in_place_arg =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite files in place.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Don't write anything; exit non-zero if any file is not already \
             in canonical form (use in CI).")
  in
  let run files in_place check =
    let dirty = ref false in
    List.iter
      (fun file ->
        let text = In_channel.with_open_text file In_channel.input_all in
        match Mosaic_ir.Parse.mir ~path:file text with
        | Error diags ->
            dirty := true;
            prerr_string (Mosaic_ir.Parse.render ~path:file ~source:text diags)
        | Ok mir ->
            let canonical = Mosaic_ir.Mir.to_string mir in
            if check then begin
              if canonical <> text then begin
                dirty := true;
                Printf.eprintf "%s: not in canonical form (run mosaicsim fmt)\n"
                  file
              end
            end
            else if in_place then begin
              if canonical <> text then begin
                Out_channel.with_open_bin file (fun oc ->
                    Out_channel.output_string oc canonical);
                Printf.printf "reformatted %s\n" file
              end
            end
            else print_string canonical)
      files;
    if !dirty then exit 1
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:
         "Validate and canonically format .mir workload files (parse, \
          re-print; semantics and trace digests are unchanged)")
    Term.(const run $ files_arg $ in_place_arg $ check_arg)

let version_cmd =
  let run () =
    Printf.printf "mosaicsim 0.1.0\n";
    List.iter
      (fun (k, v) -> Printf.printf "%-18s %s\n" (k ^ ":") v)
      (Mosaic.Telemetry.versions ());
    Printf.printf "%-18s %s\n" "git_rev:"
      (match Mosaic_obs.Manifest.git_rev () with
      | Some r -> r
      | None -> "unknown")
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the build's semantics, trace-format and snapshot-format \
          versions, and the git revision when available")
    Term.(const run $ const ())

let diff_cmd =
  let baseline_arg =
    let doc = "Baseline artifact: a manifest or a metrics JSON dump." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc)
  in
  let candidate_arg =
    let doc = "Candidate artifact to compare against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE" ~doc)
  in
  let threshold_arg =
    let doc =
      "Relative tolerance for non-cycle numeric keys (host seconds, MIPS \
       and the like wobble run to run). Keys ending in $(b,cycles) are \
       always compared exactly."
    in
    Arg.(value & opt float 0.05 & info [ "threshold" ] ~docv:"REL" ~doc)
  in
  let all_arg =
    let doc = "Also list identical and within-threshold keys." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let run baseline candidate threshold all =
    let module Diff = Mosaic_obs.Diff in
    let entries =
      Diff.compare ~threshold
        (Diff.flatten_file baseline)
        (Diff.flatten_file candidate)
    in
    print_string (Diff.render ~show_identical:all entries);
    let drift = Diff.cycle_drift entries in
    if drift <> [] then begin
      Printf.printf "cycle drift: %d key%s differ\n" (List.length drift)
        (if List.length drift = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two run artifacts (manifests or metrics JSON) key by key; \
          exits non-zero on any cycle-count drift")
    Term.(
      const run $ baseline_arg $ candidate_arg $ threshold_arg $ all_arg)

let main =
  let doc = "MosaicSim: lightweight modular simulation of heterogeneous systems" in
  Cmd.group (Cmd.info "mosaicsim" ~version:"0.1.0" ~doc)
    [
      list_cmd; run_cmd; bench_cmd; sweep_cmd; profile_cmd; dump_cmd;
      trace_cmd; trace_stats_cmd; dse_cmd; dnn_cmd; asm_cmd; cc_cmd; dae_cmd;
      characterize_cmd; fmt_cmd; version_cmd; diff_cmd;
    ]

let () = exit (Cmd.eval main)
