(* Warm-cache guard: run the speed bench twice against the same trace
   cache directory and compare the two BENCH_speed.json files.

   Two invariants make the trace store safe to trust:
   - a cached trace is bit-identical to a fresh interpretation, so every
     speed.*.cycles entry must be byte-identical between the cold and the
     warm run;
   - the warm run actually hits the cache, so its total
     speed.*.trace_gen_seconds must be near zero (we allow a small floor
     for digesting the dataset plus 10% of the cold total for noise).

   Usage: check_warm_cache COLD.json WARM.json
   Exits 0 when both hold, 1 on a violation, 2 on usage/parse errors. *)

module Json = Mosaic_obs.Json

let read_json file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let speed_entries ~suffix = function
  | Json.Obj kvs ->
      List.filter_map
        (fun (name, v) ->
          if
            String.length name > 6
            && String.sub name 0 6 = "speed."
            && Filename.check_suffix name suffix
          then Some (name, Json.to_number_exn v)
          else None)
        kvs
  | _ -> failwith "expected a metrics object"

let () =
  let cold_file, warm_file =
    match Sys.argv with
    | [| _; c; w |] -> (c, w)
    | _ ->
        prerr_endline "usage: check_warm_cache COLD.json WARM.json";
        exit 2
  in
  let cold, warm =
    try (read_json cold_file, read_json warm_file)
    with e ->
      Printf.eprintf "check_warm_cache: %s\n" (Printexc.to_string e);
      exit 2
  in
  let cold_cycles = speed_entries ~suffix:".cycles" cold in
  let warm_cycles = speed_entries ~suffix:".cycles" warm in
  if cold_cycles = [] then begin
    Printf.eprintf "check_warm_cache: no speed.*.cycles entries in %s\n"
      cold_file;
    exit 2
  end;
  let bad = ref false in
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name warm_cycles with
      | None ->
          bad := true;
          Printf.printf "MISSING %s in warm run\n" name
      | Some got when got <> expected ->
          bad := true;
          Printf.printf
            "DIVERGED %s: cold %.0f, warm %.0f — cached trace is not \
             bit-identical\n"
            name expected got
      | Some _ -> ())
    cold_cycles;
  let sum entries = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 entries in
  let cold_gen = sum (speed_entries ~suffix:".trace_gen_seconds" cold) in
  let warm_gen = sum (speed_entries ~suffix:".trace_gen_seconds" warm) in
  let budget = Float.max 0.05 (0.10 *. cold_gen) in
  if warm_gen > budget then begin
    bad := true;
    Printf.printf
      "COLD CACHE: warm trace_gen total %.3fs exceeds budget %.3fs (cold \
       total %.3fs) — the warm run re-interpreted workloads\n"
      warm_gen budget cold_gen
  end;
  if !bad then exit 1
  else
    Printf.printf
      "warm cache OK: %d cycle entries identical, warm trace_gen %.3fs \
       (cold %.3fs)\n"
      (List.length cold_cycles) warm_gen cold_gen
