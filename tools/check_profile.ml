(* Profiler invariant guard: run every speed-suite workload with cycle
   accounting on and check the two properties the profiler promises:

   1. Attribution is total — for every tile, the per-cause counters sum to
      exactly the simulated cycle count (each cycle lands in one cause).
   2. Observation is free — the simulated cycles of the profiled run match
      the committed baseline's speed.<name>.cycles entry, i.e. turning the
      profiler on cannot perturb the timing model.

   Usage: check_profile BASELINE.json
   Exits 0 when every workload satisfies both, 1 on any violation, 2 on
   usage/parse errors. Runs match the speed section's configuration (xeon
   preset, one OoO tile) so the baseline entries are directly comparable;
   point MOSAICSIM_TRACE_CACHE at the bench cache to skip interpretation. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Json = Mosaic_obs.Json
module Profile = Mosaic_tile.Profile
module Stall = Mosaic_obs.Stall

let read_json file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let () =
  let baseline_file =
    match Sys.argv with
    | [| _; b |] -> b
    | _ ->
        prerr_endline "usage: check_profile BASELINE.json";
        exit 2
  in
  let baseline =
    try read_json baseline_file
    with e ->
      Printf.eprintf "check_profile: %s\n" (Printexc.to_string e);
      exit 2
  in
  let baseline_cycles name =
    match Json.member (Printf.sprintf "speed.%s.cycles" name) baseline with
    | Some v -> Some (int_of_float (Json.to_number_exn v))
    | None -> None
  in
  let failed = ref false in
  List.iter
    (fun name ->
      let inst = W.Registry.instance name in
      let trace = W.Runner.trace_cached inst ~ntiles:1 in
      let r =
        Soc.run_homogeneous ~profile:true Mosaic.Presets.xeon_soc
          ~program:inst.W.Runner.program ~trace
          ~tile_config:Mosaic_tile.Tile_config.out_of_order
      in
      let bad = ref false in
      Array.iteri
        (fun i p ->
          let total = Profile.total p in
          if total <> r.Soc.cycles then begin
            bad := true;
            Printf.printf
              "SUM     %s tile %d: attribution %d <> cycles %d (%s)\n" name i
              total r.Soc.cycles
              (String.concat " "
                 (Array.to_list
                    (Array.map
                       (fun c ->
                         Printf.sprintf "%s=%d" (Stall.name c)
                           (Profile.count p c))
                       Stall.all)))
          end)
        r.Soc.profiles;
      (match baseline_cycles name with
      | Some expected when expected <> r.Soc.cycles ->
          bad := true;
          Printf.printf "DRIFT   %s: baseline %d, profiled run %d\n" name
            expected r.Soc.cycles
      | Some _ -> ()
      | None ->
          bad := true;
          Printf.printf "MISSING speed.%s.cycles in %s\n" name baseline_file);
      if !bad then failed := true
      else
        Printf.printf "ok      %s: %d cycles, attribution total on %d tile(s)\n"
          name r.Soc.cycles
          (Array.length r.Soc.profiles))
    W.Registry.parboil_names;
  if !failed then begin
    Printf.printf
      "profiler invariant violated: attribution must sum to the cycle count \
       and profiling must not change simulated cycles.\n";
    exit 1
  end
  else print_endline "profile check OK: attribution total, cycles unperturbed"
