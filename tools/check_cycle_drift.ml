(* Perf-regression guard: compare every speed.*.cycles entry of a freshly
   generated BENCH_speed.json against the committed baseline.

   Cycle counts are the simulator's deterministic output — any drift means
   the timing model changed, which must be a deliberate, baseline-refreshing
   commit, never a side effect of a performance patch. MIPS and host-time
   gauges are informational and ignored here, as is the "host" provenance
   member. Flattening and classification come from Mosaic_obs.Diff (the
   same library behind `mosaicsim diff`); this tool only restricts the key
   set and phrases the verdict for CI.

   Usage: check_cycle_drift FRESH.json BASELINE.json
          check_cycle_drift --sharded BASELINE.json [SHARDS]

   The --sharded mode is the parallel-determinism guard: it re-simulates
   every Shard_suite workload twice — serially and sharded across SHARDS
   (default 2) domains — and requires (a) the two agree bit-for-bit on
   cycles, and (b) both match the committed speed.shard.<name>.cycles
   baseline. Any disagreement in (a) is a sharded-scheduler bug, never a
   legitimate timing change.

   Exits 0 when all baseline cycle entries match, 1 on drift or a missing
   entry, 2 on usage/parse errors. *)

module Diff = Mosaic_obs.Diff

let load file =
  try Diff.flatten_file file
  with e ->
    Printf.eprintf "check_cycle_drift: %s\n" (Printexc.to_string e);
    exit 2

let is_speed_cycles k =
  String.starts_with ~prefix:"speed." k && Diff.is_cycles_key k

let speed_cycles entries = List.filter (fun (k, _) -> is_speed_cycles k) entries

let num = function Some (Diff.Num v) -> Printf.sprintf "%.0f" v | _ -> "?"

(* --sharded: run the shard suite here and now, serial vs sharded, and
   hold both to the committed baseline. *)
let check_sharded baseline_file nshards =
  let baseline = speed_cycles (load baseline_file) in
  let drift = ref false in
  List.iter
    (fun (e : Mosaic_suite.Shard_suite.entry) ->
      let serial = e.run ~shards:1 in
      let sharded = e.run ~shards:nshards in
      let scy = serial.Mosaic.Soc.cycles and pcy = sharded.Mosaic.Soc.cycles in
      if scy <> pcy then begin
        drift := true;
        Printf.printf
          "NONDETERMINISTIC %s: serial %d cycles, shards:%d %d cycles\n"
          e.name scy nshards pcy
      end;
      let key = Printf.sprintf "speed.shard.%s.cycles" e.name in
      (match List.assoc_opt key baseline with
      | None | Some (Diff.Str _) ->
          drift := true;
          Printf.printf "MISSING baseline key %s (got %d; refresh %s)\n" key
            pcy baseline_file
      | Some (Diff.Num v) ->
          let expected = int_of_float v in
          if expected <> scy then begin
            drift := true;
            Printf.printf "DRIFT   %s: baseline %d, fresh %d\n" key expected
              scy
          end);
      Printf.printf "%-18s serial %9d cycles, shards:%d %9d cycles\n" e.name
        scy nshards pcy)
    Mosaic_suite.Shard_suite.entries;
  if !drift then begin
    Printf.printf
      "sharded cycle check failed: determinism or baseline drift (see \
       above).\n";
    exit 1
  end
  else
    Printf.printf
      "sharded cycle check OK: %d workloads bit-identical (serial = \
       shards:%d = baseline)\n"
      (List.length Mosaic_suite.Shard_suite.entries)
      nshards

let () =
  let fresh_file, baseline_file =
    match Sys.argv with
    | [| _; "--sharded"; b |] ->
        check_sharded b 2;
        exit 0
    | [| _; "--sharded"; b; n |] -> (
        match int_of_string_opt n with
        | Some n when n >= 2 ->
            check_sharded b n;
            exit 0
        | _ ->
            prerr_endline "check_cycle_drift: SHARDS must be an int >= 2";
            exit 2)
    | [| _; f; b |] -> (f, b)
    | _ ->
        prerr_endline
          "usage: check_cycle_drift FRESH.json BASELINE.json\n\
          \       check_cycle_drift --sharded BASELINE.json [SHARDS]";
        exit 2
  in
  let fresh = speed_cycles (load fresh_file) in
  let baseline = speed_cycles (load baseline_file) in
  if baseline = [] then begin
    Printf.eprintf "check_cycle_drift: no speed.*.cycles entries in %s\n"
      baseline_file;
    exit 2
  end;
  (* Baseline on the [a] side, fresh on [b]: Removed = gone from the fresh
     run (drift), Added = new workload awaiting a baseline refresh (noted,
     not failed). Cycles keys classify exactly, so threshold is moot. *)
  let entries = Diff.compare baseline fresh in
  let drift = ref false in
  List.iter
    (fun (e : Diff.entry) ->
      match e.Diff.cls with
      | Diff.Identical -> ()
      | Diff.Removed ->
          drift := true;
          Printf.printf "MISSING %s (baseline %s)\n" e.Diff.key (num e.Diff.a)
      | Diff.Added ->
          Printf.printf "NEW     %s = %s (not in baseline; refresh it)\n"
            e.Diff.key (num e.Diff.b)
      | Diff.Drifted | Diff.Close ->
          drift := true;
          Printf.printf "DRIFT   %s: baseline %s, fresh %s\n" e.Diff.key
            (num e.Diff.a) (num e.Diff.b))
    entries;
  if !drift then begin
    Printf.printf
      "cycle drift detected: the timing model changed. If intentional, \
       refresh BENCH_speed.json in the same commit.\n";
    exit 1
  end
  else
    Printf.printf "cycle check OK: %d speed.*.cycles entries identical\n"
      (List.length baseline)
