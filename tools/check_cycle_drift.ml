(* Perf-regression guard: compare every speed.*.cycles entry of a freshly
   generated BENCH_speed.json against the committed baseline.

   Cycle counts are the simulator's deterministic output — any drift means
   the timing model changed, which must be a deliberate, baseline-refreshing
   commit, never a side effect of a performance patch. MIPS and host-time
   gauges are informational and ignored here.

   Usage: check_cycle_drift FRESH.json BASELINE.json
          check_cycle_drift --sharded BASELINE.json [SHARDS]

   The --sharded mode is the parallel-determinism guard: it re-simulates
   every Shard_suite workload twice — serially and sharded across SHARDS
   (default 2) domains — and requires (a) the two agree bit-for-bit on
   cycles, and (b) both match the committed speed.shard.<name>.cycles
   baseline. Any disagreement in (a) is a sharded-scheduler bug, never a
   legitimate timing change.

   Exits 0 when all baseline cycle entries match, 1 on drift or a missing
   entry, 2 on usage/parse errors. *)

module Json = Mosaic_obs.Json

let read_json file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let is_cycles_key name =
  String.length name > String.length "speed."
  && String.sub name 0 6 = "speed."
  && Filename.check_suffix name ".cycles"

let cycle_entries = function
  | Json.Obj kvs ->
      List.filter_map
        (fun (name, v) ->
          if is_cycles_key name then Some (name, Json.to_number_exn v)
          else None)
        kvs
  | _ -> failwith "expected a metrics object"

(* --sharded: run the shard suite here and now, serial vs sharded, and
   hold both to the committed baseline. *)
let check_sharded baseline_file nshards =
  let baseline =
    try
      match read_json baseline_file with
      | Json.Obj kvs -> kvs
      | _ -> failwith "expected a metrics object"
    with e ->
      Printf.eprintf "check_cycle_drift: %s\n" (Printexc.to_string e);
      exit 2
  in
  let drift = ref false in
  List.iter
    (fun (e : Mosaic_suite.Shard_suite.entry) ->
      let serial = e.run ~shards:1 in
      let sharded = e.run ~shards:nshards in
      let scy = serial.Mosaic.Soc.cycles and pcy = sharded.Mosaic.Soc.cycles in
      if scy <> pcy then begin
        drift := true;
        Printf.printf
          "NONDETERMINISTIC %s: serial %d cycles, shards:%d %d cycles\n"
          e.name scy nshards pcy
      end;
      let key = Printf.sprintf "speed.shard.%s.cycles" e.name in
      (match List.assoc_opt key baseline with
      | None ->
          drift := true;
          Printf.printf "MISSING baseline key %s (got %d; refresh %s)\n" key
            pcy baseline_file
      | Some v ->
          let expected = int_of_float (Json.to_number_exn v) in
          if expected <> scy then begin
            drift := true;
            Printf.printf "DRIFT   %s: baseline %d, fresh %d\n" key expected
              scy
          end);
      Printf.printf "%-18s serial %9d cycles, shards:%d %9d cycles\n" e.name
        scy nshards pcy)
    Mosaic_suite.Shard_suite.entries;
  if !drift then begin
    Printf.printf
      "sharded cycle check failed: determinism or baseline drift (see \
       above).\n";
    exit 1
  end
  else
    Printf.printf
      "sharded cycle check OK: %d workloads bit-identical (serial = \
       shards:%d = baseline)\n"
      (List.length Mosaic_suite.Shard_suite.entries)
      nshards

let () =
  let fresh_file, baseline_file =
    match Sys.argv with
    | [| _; "--sharded"; b |] ->
        check_sharded b 2;
        exit 0
    | [| _; "--sharded"; b; n |] -> (
        match int_of_string_opt n with
        | Some n when n >= 2 ->
            check_sharded b n;
            exit 0
        | _ ->
            prerr_endline "check_cycle_drift: SHARDS must be an int >= 2";
            exit 2)
    | [| _; f; b |] -> (f, b)
    | _ ->
        prerr_endline
          "usage: check_cycle_drift FRESH.json BASELINE.json\n\
          \       check_cycle_drift --sharded BASELINE.json [SHARDS]";
        exit 2
  in
  let fresh, baseline =
    try (cycle_entries (read_json fresh_file), cycle_entries (read_json baseline_file))
    with e ->
      Printf.eprintf "check_cycle_drift: %s\n" (Printexc.to_string e);
      exit 2
  in
  if baseline = [] then begin
    Printf.eprintf "check_cycle_drift: no speed.*.cycles entries in %s\n"
      baseline_file;
    exit 2
  end;
  let drift = ref false in
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name fresh with
      | None ->
          drift := true;
          Printf.printf "MISSING %s (baseline %.0f)\n" name expected
      | Some got when got <> expected ->
          drift := true;
          Printf.printf "DRIFT   %s: baseline %.0f, fresh %.0f\n" name
            expected got
      | Some _ -> ())
    baseline;
  List.iter
    (fun (name, v) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "NEW     %s = %.0f (not in baseline; refresh it)\n" name
          v)
    fresh;
  if !drift then begin
    Printf.printf
      "cycle drift detected: the timing model changed. If intentional, \
       refresh BENCH_speed.json in the same commit.\n";
    exit 1
  end
  else
    Printf.printf "cycle check OK: %d speed.*.cycles entries identical\n"
      (List.length baseline)
