(* Perf-regression guard: compare every speed.*.cycles entry of a freshly
   generated BENCH_speed.json against the committed baseline.

   Cycle counts are the simulator's deterministic output — any drift means
   the timing model changed, which must be a deliberate, baseline-refreshing
   commit, never a side effect of a performance patch. MIPS and host-time
   gauges are informational and ignored here.

   Usage: check_cycle_drift FRESH.json BASELINE.json
   Exits 0 when all baseline cycle entries match, 1 on drift or a missing
   entry, 2 on usage/parse errors. *)

module Json = Mosaic_obs.Json

let read_json file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.of_string s

let is_cycles_key name =
  String.length name > String.length "speed."
  && String.sub name 0 6 = "speed."
  && Filename.check_suffix name ".cycles"

let cycle_entries = function
  | Json.Obj kvs ->
      List.filter_map
        (fun (name, v) ->
          if is_cycles_key name then Some (name, Json.to_number_exn v)
          else None)
        kvs
  | _ -> failwith "expected a metrics object"

let () =
  let fresh_file, baseline_file =
    match Sys.argv with
    | [| _; f; b |] -> (f, b)
    | _ ->
        prerr_endline "usage: check_cycle_drift FRESH.json BASELINE.json";
        exit 2
  in
  let fresh, baseline =
    try (cycle_entries (read_json fresh_file), cycle_entries (read_json baseline_file))
    with e ->
      Printf.eprintf "check_cycle_drift: %s\n" (Printexc.to_string e);
      exit 2
  in
  if baseline = [] then begin
    Printf.eprintf "check_cycle_drift: no speed.*.cycles entries in %s\n"
      baseline_file;
    exit 2
  end;
  let drift = ref false in
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name fresh with
      | None ->
          drift := true;
          Printf.printf "MISSING %s (baseline %.0f)\n" name expected
      | Some got when got <> expected ->
          drift := true;
          Printf.printf "DRIFT   %s: baseline %.0f, fresh %.0f\n" name
            expected got
      | Some _ -> ())
    baseline;
  List.iter
    (fun (name, v) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "NEW     %s = %.0f (not in baseline; refresh it)\n" name
          v)
    fresh;
  if !drift then begin
    Printf.printf
      "cycle drift detected: the timing model changed. If intentional, \
       refresh BENCH_speed.json in the same commit.\n";
    exit 1
  end
  else
    Printf.printf "cycle check OK: %d speed.*.cycles entries identical\n"
      (List.length baseline)
