(* Regenerates the `.mir` ports in corpus/ from their builder-DSL twins.

   Each port is the twin's program text (explicit instruction ids
   preserved) plus directive headers reconstructing its dataset setup
   from the shared seeded generators. Before writing a file the tool
   proves the port faithful: it applies the directive-driven setup and
   the builder setup side by side and requires bit-identical post-setup
   memory images — the property that makes trace-store digests, and
   therefore simulated cycles, identical.

   Usage: gen_corpus [corpus-dir]            (default: corpus/)         *)

module Ir = Mosaic_ir
module Interp = Mosaic_trace.Interp
open Mosaic_workloads

let const_int i = Ir.Mir.Const (Ir.Value.of_int i)

(* Directive table for each ported workload, keyed by registry name.
   Seeds and sizes mirror Registry.instance and each workload's
   defaults; the memory-image check below catches any drift. *)
let inits_for = function
  | "bfs" ->
      let g field = Ir.Mir.Graph { seed = 3; n = 8192; degree = 8; field } in
      [
        ("row_ptr", g Ir.Mir.Row_ptr);
        ("cols", g Ir.Mir.Cols);
        ("dist", const_int (1 lsl 30));
        ("barrier", const_int 0);
      ]
  | "cutcp" ->
      [
        ("grid_xyz", Ir.Mir.Points { seed = 19 });
        ("atom_xyz", Ir.Mir.Points { seed = 20 });
        ("charge", Ir.Mir.Floats { seed = 21; offset = 0.0 });
      ]
  | "histo" -> [ ("img", Ir.Mir.Ints { seed = 5; bound = 320 }) ]
  | "lbm" ->
      let f = Ir.Mir.Floats { seed = 13; offset = 0.5 } in
      [ ("fin", f); ("fout", f) ]
  | "mri-gridding" ->
      [
        ("pos", Ir.Mir.Floats { seed = 29; offset = 0.0 });
        ("sval", Ir.Mir.Floats { seed = 30; offset = 0.0 });
        ("grid", Ir.Mir.Const (Ir.Value.of_float 0.0));
      ]
  | "mri-q" ->
      [
        ("vox_xyz", Ir.Mir.Points { seed = 23 });
        ("k_xyz", Ir.Mir.Points { seed = 24 });
        ("mag", Ir.Mir.Floats { seed = 25; offset = 0.0 });
      ]
  | "sad" ->
      [
        ("cur", Ir.Mir.Ints { seed = 17; bound = 256 });
        ("reff", Ir.Mir.Ints { seed = 18; bound = 256 });
      ]
  | "sgemm" ->
      [
        ("A", Ir.Mir.Floats { seed = 42; offset = 0.0 });
        ("B", Ir.Mir.Floats { seed = 43; offset = 0.0 });
      ]
  | "spmv" ->
      let s field =
        Ir.Mir.Sparse { seed = 7; rows = 4096; cols = 4096; per_row = 12; field }
      in
      [
        ("row_ptr", s Ir.Mir.Row_ptr);
        ("cols", s Ir.Mir.Cols);
        ("vals", s Ir.Mir.Values);
        ("x", Ir.Mir.Floats { seed = 9; offset = 0.0 });
      ]
  | "stencil" -> [ ("grid_in", Ir.Mir.Floats { seed = 11; offset = 0.0 }) ]
  | "ewsd" ->
      let s field =
        Ir.Mir.Sparse
          { seed = 41; rows = 1024; cols = 1024; per_row = 16; field }
      in
      [
        ("row_ptr", s Ir.Mir.Row_ptr);
        ("cols", s Ir.Mir.Cols);
        ("vals", s Ir.Mir.Values);
        ("dense", Ir.Mir.Floats { seed = 43; offset = 0.0 });
      ]
  | name -> invalid_arg ("gen_corpus: no init table for " ^ name)

(* Point pokes applied after the fills (bfs plants its BFS source). *)
let sets_for = function
  | "bfs" -> [ ("dist", 0, Ir.Value.of_int 0) ]
  | _ -> []

let ported =
  [
    "bfs"; "cutcp"; "histo"; "lbm"; "mri-gridding"; "mri-q"; "sad"; "sgemm";
    "spmv"; "stencil"; "ewsd";
  ]

let memory_image (r : Runner.t) =
  let it =
    Interp.create r.program ~kernel:r.kernel ~ntiles:1 ~args:r.args
  in
  r.setup it;
  Interp.memory_contents it

let port name =
  let inst = Registry.instance name in
  let meta =
    {
      Ir.Mir.workload = Some name;
      launch = Some { Ir.Mir.kernel = inst.Runner.kernel; args = inst.args };
      inits = inits_for name;
      sets = sets_for name;
    }
  in
  let mir = { Ir.Mir.meta; program = inst.Runner.program } in
  let twin = Mir_workload.of_mir mir in
  if compare (memory_image inst) (memory_image twin) <> 0 then
    failwith
      (Printf.sprintf
         "%s: directive-driven setup diverges from the builder setup" name);
  let text = Ir.Mir.to_string mir in
  (* The file must parse back to the same bytes (ids, literals, metadata). *)
  (match Ir.Parse.mir text with
  | Ok reparsed ->
      let text' = Ir.Mir.to_string reparsed in
      if text <> text' then
        failwith (Printf.sprintf "%s: corpus text does not round-trip" name)
  | Error diags ->
      failwith
        (Printf.sprintf "%s: corpus text does not parse:\n%s" name
           (Ir.Parse.render ~source:text diags)));
  text

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "corpus" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name ->
      let text = port name in
      let path = Filename.concat dir (name ^ ".mir") in
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n%!" path)
    ported
