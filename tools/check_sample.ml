(* Sampled-simulation accuracy guard over BENCH_speed.json.

   The bench's sampled section runs every speed workload twice — exact
   and interval-sampled — and records, per workload, the sampled cycle
   estimate and its error against the exact oracle. This tool holds those
   numbers to the committed contract:

   - every speed.sample.<name>.err_pct is at or under the error ceiling
     (default 10%), and so is speed.sample.max_err_pct;
   - no sampled run degraded (a drain that misses its deadline falls back
     to exact simulation — correct, but it means the spec is mistuned for
     that workload);
   - sampling actually pays: speed.sample.geomean_speedup clears a loose
     host-independent floor (default 1.5x; the committed baseline is much
     higher, but host-time ratios wobble on shared runners);
   - when a BASELINE.json is given, every speed.sample.<name>.est_cycles
     matches it exactly — the estimator is deterministic, so drift means
     the sampling model changed, which must be a deliberate
     baseline-refreshing commit.

   Usage: check_sample FRESH.json [BASELINE.json] [--max-err PCT]
                       [--min-speedup X]

   Exits 0 when all checks pass, 1 on a violation, 2 on usage/parse
   errors. *)

module Json = Mosaic_obs.Json

let read_json file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Json.Obj kvs -> kvs
  | _ -> failwith (file ^ ": expected a metrics object")

let prefix = "speed.sample."

let sample_entries kvs suffix =
  List.filter_map
    (fun (name, v) ->
      if
        String.length name > String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
        && Filename.check_suffix name ("." ^ suffix)
      then
        let wl =
          String.sub name (String.length prefix)
            (String.length name - String.length prefix - String.length suffix
           - 1)
        in
        Some (wl, Json.to_number_exn v)
      else None)
    kvs

let () =
  let fresh_file = ref None
  and baseline_file = ref None
  and max_err = ref 10.0
  and min_speedup = ref 1.5 in
  let rec parse = function
    | [] -> ()
    | "--max-err" :: v :: rest ->
        max_err := float_of_string v;
        parse rest
    | "--min-speedup" :: v :: rest ->
        min_speedup := float_of_string v;
        parse rest
    | f :: rest when !fresh_file = None ->
        fresh_file := Some f;
        parse rest
    | f :: rest when !baseline_file = None ->
        baseline_file := Some f;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: check_sample FRESH.json [BASELINE.json] [--max-err PCT] \
           [--min-speedup X]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let fresh_file =
    match !fresh_file with
    | Some f -> f
    | None ->
        prerr_endline
          "usage: check_sample FRESH.json [BASELINE.json] [--max-err PCT] \
           [--min-speedup X]";
        exit 2
  in
  let fresh =
    try read_json fresh_file
    with e ->
      Printf.eprintf "check_sample: %s\n" (Printexc.to_string e);
      exit 2
  in
  let errs = sample_entries fresh "err_pct" in
  if errs = [] then begin
    Printf.eprintf "check_sample: no %s<name>.err_pct entries in %s\n" prefix
      fresh_file;
    exit 2
  end;
  let bad = ref false in
  List.iter
    (fun (wl, err) ->
      if err > !max_err then begin
        bad := true;
        Printf.printf "ERROR   %s: sampled error %.2f%% exceeds %.1f%%\n" wl
          err !max_err
      end)
    errs;
  List.iter
    (fun (wl, d) ->
      if d > 0.0 then begin
        bad := true;
        Printf.printf
          "DEGRADE %s: %.0f period(s) fell back to exact simulation\n" wl d
      end)
    (sample_entries fresh "degraded");
  (match List.assoc_opt "speed.sample.max_err_pct" fresh with
  | Some v when Json.to_number_exn v > !max_err ->
      bad := true;
      Printf.printf "ERROR   max_err_pct %.2f%% exceeds %.1f%%\n"
        (Json.to_number_exn v) !max_err
  | Some _ -> ()
  | None ->
      bad := true;
      Printf.printf "MISSING speed.sample.max_err_pct in %s\n" fresh_file);
  (match List.assoc_opt "speed.sample.geomean_speedup" fresh with
  | Some v when Json.to_number_exn v < !min_speedup ->
      bad := true;
      Printf.printf "SLOW    geomean speedup %.2fx is under the %.1fx floor\n"
        (Json.to_number_exn v) !min_speedup
  | Some _ -> ()
  | None ->
      bad := true;
      Printf.printf "MISSING speed.sample.geomean_speedup in %s\n" fresh_file);
  (match !baseline_file with
  | None -> ()
  | Some bfile ->
      let baseline =
        try read_json bfile
        with e ->
          Printf.eprintf "check_sample: %s\n" (Printexc.to_string e);
          exit 2
      in
      let fresh_est = sample_entries fresh "est_cycles" in
      List.iter
        (fun (wl, expected) ->
          match List.assoc_opt wl fresh_est with
          | None ->
              bad := true;
              Printf.printf "MISSING %s.est_cycles (baseline %.0f)\n" wl
                expected
          | Some got when got <> expected ->
              bad := true;
              Printf.printf "DRIFT   %s.est_cycles: baseline %.0f, fresh %.0f\n"
                wl expected got
          | Some _ -> ())
        (sample_entries baseline "est_cycles");
      List.iter
        (fun (wl, v) ->
          if not (List.mem_assoc wl (sample_entries baseline "est_cycles"))
          then
            Printf.printf "NEW     %s.est_cycles = %.0f (refresh %s)\n" wl v
              bfile)
        fresh_est);
  if !bad then begin
    Printf.printf
      "sampled-simulation check failed: error ceiling, determinism or \
       speedup floor violated (see above). A deliberate sampling-model \
       change must refresh BENCH_speed.json in the same commit.\n";
    exit 1
  end
  else
    Printf.printf
      "sampled-simulation check OK: %d workloads within %.1f%% of the exact \
       oracle, none degraded\n"
      (List.length errs) !max_err
