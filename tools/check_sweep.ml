(* Sweep retiming guard: re-run small sweeps with the full simulator as
   the per-point oracle and hold the re-timing engine to its committed
   accuracy contract:

   1. Path-invariant axes are bit-exact — sweeping [freq] changes no
      timing input, so every retimed point must equal both the oracle and
      the base run's cycle count exactly.
   2. Retiming at the generating config reproduces the base simulation's
      cycles exactly (the all-ratios-are-one identity).
   3. Elsewhere the error stays below the committed thresholds: an L1
      capacity sweep (the AMAT model's worst case, since replacement
      behaviour shifts) and an accelerator PLM sweep (analytic, near
      exact by construction).

   Usage: check_sweep
   Exits 0 when every check holds, 1 on any violation. Point
   MOSAICSIM_TRACE_CACHE at the bench cache to skip interpretation. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Sweep = Mosaic.Sweep
module Retime = Mosaic.Retime
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config

(* Committed error ceilings, percent. Measured on today's corpus: spmv L1
   sweep peaks at 8.4% (l1=8, replacement-pattern shift the stack-distance
   model cannot see); PLM retiming is analytically exact (0.0%). The
   headroom absorbs workload-generator changes without masking a broken
   scaling rule, which shows up as tens-of-percent error. *)
let l1_err_ceiling = 15.0
let plm_err_ceiling = 2.0

let failed = ref false

let check name ok detail =
  if ok then Printf.printf "ok      %s\n" name
  else begin
    failed := true;
    Printf.printf "FAIL    %s: %s\n" name detail
  end

let sweep ?(cfg = Presets.xeon_soc) name spec =
  let inst = W.Registry.instance name in
  let trace = W.Runner.trace_cached inst ~ntiles:1 in
  Sweep.run ~exact:true cfg ~tile_config:TC.out_of_order
    ~program:inst.W.Runner.program ~trace
    (Sweep.grid [ Sweep.axis_of_spec spec ])

let () =
  (* 1. freq is timing-invariant: retimed == oracle == base, bit-exact. *)
  let s = sweep "spmv" "freq=1,2,3.2,4" in
  let base = s.Sweep.base.Soc.cycles in
  Array.iter
    (fun (p : Sweep.point) ->
      let r = p.Sweep.retimed.Retime.cycles in
      let e = Option.get p.Sweep.exact_cycles in
      check
        (Printf.sprintf "spmv %s bit-exact" p.Sweep.label)
        (r = e && r = base)
        (Printf.sprintf "retimed %d, oracle %d, base %d" r e base))
    s.Sweep.points;
  (* 2. Retiming at the generating config is the identity. *)
  let at_base = Retime.run s.Sweep.prep Presets.xeon_soc s.Sweep.prep.Retime.base_tiles in
  check "spmv retime-at-base identity"
    (at_base.Retime.cycles = base)
    (Printf.sprintf "retimed %d, base %d" at_base.Retime.cycles base);
  (* 3a. L1 capacity sweep: bounded error, exact at the preset's own size. *)
  let s = sweep "spmv" "l1=8,16,32,64" in
  let worst = Sweep.max_err_pct s in
  check
    (Printf.sprintf "spmv l1 sweep err %.2f%% <= %.1f%%" worst l1_err_ceiling)
    (worst <= l1_err_ceiling)
    "cache-capacity retiming error above committed ceiling";
  Array.iter
    (fun (p : Sweep.point) ->
      if p.Sweep.label = "l1=32" (* the xeon preset's own L1 *) then
        check "spmv l1=32 (base point) bit-exact"
          (p.Sweep.retimed.Retime.cycles = Option.get p.Sweep.exact_cycles)
          (Printf.sprintf "retimed %d, oracle %d" p.Sweep.retimed.Retime.cycles
             (Option.get p.Sweep.exact_cycles)))
    s.Sweep.points;
  (* 3b. Accelerator PLM sweep on the DAE preset (the dse --bench path). *)
  let s = sweep ~cfg:Presets.dae_soc "sgemm-accel" "plm=4,16,64,256" in
  let worst = Sweep.max_err_pct s in
  check
    (Printf.sprintf "sgemm-accel plm sweep err %.2f%% <= %.1f%%" worst
       plm_err_ceiling)
    (worst <= plm_err_ceiling)
    "PLM retiming error above committed ceiling";
  if !failed then begin
    print_endline
      "sweep retiming contract violated: path-invariant axes must be \
       bit-exact and sweep error must stay under the committed ceilings.";
    exit 1
  end
  else print_endline "sweep check OK: bit-exact where promised, error bounded"
