(* Telemetry-overhead guard: the host-side observability layer (span
   tracing + progress heartbeat) must be free where it matters and cheap
   where it runs.

   For a few speed-suite workloads this tool simulates each twice per
   mode — plain, and with spans enabled plus a progress meter ticking
   into a null printer — and checks three properties:

   1. Simulated cycles are byte-identical across modes: telemetry only
      observes the host, never the simulated machine.
   2. Host-time overhead of the instrumented mode is <= 5% (ratio of the
      min-of-reps totals, which damps scheduler noise on small CI hosts).
   3. The recorded "sim" span agrees with a wall clock held around the
      run (within 5%, plus a small absolute allowance for sub-ms phases),
      so the host.* gauges that manifests publish can be trusted.

   Usage: check_host_overhead
   Exits 0 when all three hold, 1 on any violation. Point
   MOSAICSIM_TRACE_CACHE at the bench cache to skip interpretation. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Span = Mosaic_obs.Span
module Progress = Mosaic_obs.Progress
module Trace = Mosaic_trace.Trace

let workloads = [ "spmv"; "histo"; "bfs" ]
let reps = 2
let max_overhead = 1.05
let span_rel_tol = 0.05
let span_abs_tol = 0.02 (* seconds; floors the tolerance for short runs *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let simulate ?progress inst trace =
  Soc.run_homogeneous ?progress Mosaic.Presets.xeon_soc
    ~program:inst.W.Runner.program ~trace
    ~tile_config:Mosaic_tile.Tile_config.out_of_order

let () =
  if Array.length Sys.argv <> 1 then begin
    prerr_endline "usage: check_host_overhead";
    exit 2
  end;
  let failed = ref false in
  let plain_total = ref 0.0 and telem_total = ref 0.0 in
  List.iter
    (fun name ->
      let inst = W.Registry.instance name in
      (* Acquire the trace once, outside all timed regions, so both modes
         measure the timing model alone. *)
      let trace = W.Runner.trace_cached inst ~ntiles:1 in
      let total_instrs = Trace.total_dyn_instrs trace in
      let plain_wall = ref infinity and telem_wall = ref infinity in
      let plain_cycles = ref None and telem_cycles = ref None in
      let check_cycles which store (r : Soc.result) =
        match !store with
        | None -> store := Some r.Soc.cycles
        | Some c when c <> r.Soc.cycles ->
            failed := true;
            Printf.printf "NONDETERMINISTIC %s (%s): %d then %d cycles\n" name
              which c r.Soc.cycles
        | Some _ -> ()
      in
      for _ = 1 to reps do
        (* Alternate modes so drift in host load hits both equally. *)
        Span.set_enabled false;
        let r, wall = time (fun () -> simulate inst trace) in
        check_cycles "plain" plain_cycles r;
        plain_wall := Float.min !plain_wall wall;
        Span.set_enabled true;
        Span.reset ();
        let progress =
          Progress.create ~interval_s:0.01
            ~print:(fun _ -> ())
            ~label:name ~total_instrs:(Some total_instrs) ()
        in
        let r, wall = time (fun () -> simulate ~progress inst trace) in
        check_cycles "telemetry" telem_cycles r;
        telem_wall := Float.min !telem_wall wall;
        (match
           List.find_opt (fun s -> s.Span.name = "sim") (Span.spans ())
         with
        | None ->
            failed := true;
            Printf.printf "NOSPAN  %s: no \"sim\" span recorded\n" name
        | Some s ->
            let err = Float.abs (s.Span.dur_s -. wall) in
            if err > (span_rel_tol *. wall) +. span_abs_tol then begin
              failed := true;
              Printf.printf
                "SPANOFF %s: sim span %.3fs vs wall %.3fs (err %.3fs)\n" name
                s.Span.dur_s wall err
            end);
        Span.set_enabled false
      done;
      (match (!plain_cycles, !telem_cycles) with
      | Some p, Some t when p <> t ->
          failed := true;
          Printf.printf "PERTURBED %s: plain %d cycles, telemetry %d\n" name p
            t
      | _ -> ());
      plain_total := !plain_total +. !plain_wall;
      telem_total := !telem_total +. !telem_wall;
      Printf.printf "%-8s plain %.3fs telemetry %.3fs (%d cycles)\n" name
        !plain_wall !telem_wall
        (Option.value ~default:0 !plain_cycles))
    workloads;
  let ratio =
    if !plain_total > 0.0 then !telem_total /. !plain_total else infinity
  in
  Printf.printf "overhead ratio: %.3f (plain %.3fs, telemetry %.3fs)\n" ratio
    !plain_total !telem_total;
  if ratio > max_overhead then begin
    failed := true;
    Printf.printf "OVERHEAD telemetry costs more than %.0f%%\n"
      ((max_overhead -. 1.0) *. 100.0)
  end;
  if !failed then begin
    print_endline
      "host-overhead check failed: telemetry must not perturb cycles and \
       must stay within the overhead budget.";
    exit 1
  end
  else
    print_endline
      "host-overhead check OK: cycles identical, spans accurate, overhead \
       within budget"
