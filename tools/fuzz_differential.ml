(* Differential fuzzer over generated IR programs.

   Each case is a random, validated, terminating program from
   [Mosaic_ir.Gen]. Its trace is fed through three differential oracles
   that the simulator promises hold for *every* program, not just the
   curated workloads:

   1. skip-vs-noskip  — cycle skipping is an optimization, not a model
      change: cycles, instrs and memory-system counters bit-identical.
   2. profiled-vs-plain — the profiler only observes: cycles identical,
      and every tile's stall attribution sums exactly to the cycle count
      under both schedulers.
   3. cached-vs-uncached — a trace-store round trip (save, decode) is
      exact: the reloaded trace is structurally equal and simulates to
      the same cycle count.
   4. retimed-vs-simulated — re-timing the profiled run at its own
      config (Retime, the incremental-DSE engine) reproduces the exact
      simulator's cycle and instruction counts bit-for-bit: every
      scaling ratio must collapse to exactly 1.0.
   5. sharded-vs-serial — the domain-sharded scheduler (shards:2 and
      shards:ntiles, profiled) is conservative parallel simulation, not
      an approximation: cycles, stepped cycles, instrs and every tile's
      per-cause stall attribution bit-identical to the serial sweep.
   6. snapshot/resume — checkpointing the run at a pseudo-random cycle
      and resuming a fresh run from the snapshot (every third case
      additionally round-tripped through the serialized container)
      reproduces the straight run bit-for-bit: cycles, stepped cycles,
      instrs and every tile's stall attribution.

   Any divergence prints the case's seed (which fully determines it) and
   exits non-zero.

   Usage: fuzz_differential [--seed N] [--count N] [--size N] [--quiet] *)

module Ir = Mosaic_ir
module Interp = Mosaic_trace.Interp
module Trace = Mosaic_trace.Trace
module Store = Mosaic_trace.Store
module Soc = Mosaic.Soc
module TC = Mosaic_tile.Tile_config
module Profile = Mosaic_tile.Profile

let fail case fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "FAIL seed %d: %s\n%!" case.Ir.Gen.seed msg;
      exit 1)
    fmt

let check case what expected got =
  if expected <> got then
    fail case "%s differs: expected %d, got %d" what expected got

let tile_config_for i = if i mod 2 = 0 then TC.out_of_order else TC.in_order

let run_case ~quiet ~size i base_seed =
  let seed = base_seed + i in
  let case = Ir.Gen.generate ~seed ~size () in
  let trace =
    Interp.run
      (Interp.create case.program ~kernel:case.kernel ~ntiles:case.ntiles
         ~args:case.args)
  in
  let tile_config = tile_config_for i in
  let run ?(profile = false) cycle_skip =
    Soc.run_homogeneous ~profile
      { Soc.default_config with Soc.cycle_skip }
      ~program:case.program ~trace ~tile_config
  in
  (* Oracle 1+2: skip/noskip x profiled/plain. *)
  let skip_prof = run ~profile:true true in
  let naive_prof = run ~profile:true false in
  let plain = run true in
  check case "cycles (skip vs noskip, profiled)" naive_prof.Soc.cycles
    skip_prof.Soc.cycles;
  check case "cycles (profiled vs plain)" plain.Soc.cycles
    skip_prof.Soc.cycles;
  check case "instrs (skip vs noskip)" naive_prof.Soc.instrs
    skip_prof.Soc.instrs;
  Array.iteri
    (fun t p ->
      check case
        (Printf.sprintf "tile %d attribution total (skip)" t)
        skip_prof.Soc.cycles (Profile.total p))
    skip_prof.Soc.profiles;
  Array.iteri
    (fun t p ->
      check case
        (Printf.sprintf "tile %d attribution total (noskip)" t)
        naive_prof.Soc.cycles (Profile.total p))
    naive_prof.Soc.profiles;
  (* Oracle 5: the sharded scheduler is bit-identical to the serial one,
     including the profiler's attribution and the visited-cycle count. *)
  List.iter
    (fun shards ->
      let sharded =
        Soc.run_homogeneous ~profile:true
          { Soc.default_config with Soc.shards }
          ~program:case.program ~trace ~tile_config
      in
      let tag = Printf.sprintf "shards:%d vs serial" shards in
      check case (Printf.sprintf "cycles (%s)" tag) skip_prof.Soc.cycles
        sharded.Soc.cycles;
      check case
        (Printf.sprintf "stepped cycles (%s)" tag)
        skip_prof.Soc.stepped_cycles sharded.Soc.stepped_cycles;
      check case (Printf.sprintf "instrs (%s)" tag) skip_prof.Soc.instrs
        sharded.Soc.instrs;
      Array.iteri
        (fun t p ->
          Array.iter
            (fun cause ->
              check case
                (Printf.sprintf "tile %d stall %s (%s)" t
                   (Mosaic_obs.Stall.name cause)
                   tag)
                (Profile.count skip_prof.Soc.profiles.(t) cause)
                (Profile.count p cause))
            Mosaic_obs.Stall.all)
        sharded.Soc.profiles)
    (if case.ntiles > 2 then [ 2; case.ntiles ] else [ 2 ]);
  (* Oracle 3: a store round trip reproduces the trace exactly. *)
  let tiles = Array.make case.ntiles (case.kernel, case.args) in
  let digest =
    Store.workload_digest ~program:case.program ~label:case.kernel ~tiles
      ~mem:[||]
  in
  let stored, info = Store.fetch ~digest ~generate:(fun () -> trace) in
  Store.reset ();
  let reloaded, info2 = Store.fetch ~digest ~generate:(fun () -> trace) in
  if not (Trace.equal trace stored) then
    fail case "stored trace differs from generated trace";
  if not (Trace.equal trace reloaded) then
    fail case "reloaded trace differs from generated trace (%s -> %s)"
      (match info.Store.source with
      | Store.Interpreted -> "interpreted"
      | Store.Memo_hit -> "memo"
      | Store.Disk_hit -> "disk")
      (match info2.Store.source with
      | Store.Interpreted -> "interpreted"
      | Store.Memo_hit -> "memo"
      | Store.Disk_hit -> "disk");
  let from_cache =
    Soc.run_homogeneous Soc.default_config ~program:case.program
      ~trace:reloaded ~tile_config
  in
  check case "cycles (cached vs uncached)" skip_prof.Soc.cycles
    from_cache.Soc.cycles;
  (* Oracle 4: re-timing at the generating config is exact. *)
  let skel = Mosaic_trace.Analysis.skeleton case.program trace in
  let soc_tiles =
    Array.map
      (fun (tt : Trace.tile_trace) ->
        { Soc.kernel = tt.Mosaic_trace.Trace.kernel; Soc.tile_config })
      trace.Mosaic_trace.Trace.tiles
  in
  let base_cfg = { Soc.default_config with Soc.cycle_skip = true } in
  let prep = Mosaic.Retime.of_result ~cfg:base_cfg ~tiles:soc_tiles skel skip_prof in
  let rt = Mosaic.Retime.run prep base_cfg soc_tiles in
  check case "cycles (retimed at base vs simulated)" skip_prof.Soc.cycles
    rt.Mosaic.Retime.cycles;
  check case "instrs (retimed at base vs simulated)" skip_prof.Soc.instrs
    rt.Mosaic.Retime.instrs;
  (* Oracle 6: checkpoint at a pseudo-random cycle, resume a fresh run
     from the snapshot, and demand the straight run back bit-for-bit. *)
  let mid =
    if skip_prof.Soc.cycles <= 1 then 0
    else (seed * 0x9E3779B1) land max_int mod skip_prof.Soc.cycles
  in
  let snap = ref None in
  let capturing =
    Soc.run_homogeneous ~profile:true ~checkpoint_at:mid
      ~on_checkpoint:(fun s -> snap := Some s)
      Soc.default_config ~program:case.program ~trace ~tile_config
  in
  check case "cycles (checkpointing run)" skip_prof.Soc.cycles
    capturing.Soc.cycles;
  let snap =
    match !snap with
    | Some s -> s
    | None -> fail case "no snapshot captured at cycle %d" mid
  in
  let snap =
    (* Every third case also proves the on-disk container is faithful. *)
    if i mod 3 = 0 then
      Mosaic.Snapshot.of_bytes (Mosaic.Snapshot.to_bytes snap)
    else snap
  in
  let resumed =
    Soc.run_homogeneous ~profile:true ~resume:snap Soc.default_config
      ~program:case.program ~trace ~tile_config
  in
  check case "cycles (resumed vs straight)" skip_prof.Soc.cycles
    resumed.Soc.cycles;
  check case "stepped cycles (resumed vs straight)"
    skip_prof.Soc.stepped_cycles resumed.Soc.stepped_cycles;
  check case "instrs (resumed vs straight)" skip_prof.Soc.instrs
    resumed.Soc.instrs;
  Array.iteri
    (fun t p ->
      Array.iter
        (fun cause ->
          check case
            (Printf.sprintf "tile %d stall %s (resumed vs straight)" t
               (Mosaic_obs.Stall.name cause))
            (Profile.count skip_prof.Soc.profiles.(t) cause)
            (Profile.count p cause))
        Mosaic_obs.Stall.all)
    resumed.Soc.profiles;
  if not quiet then
    Printf.printf "seed %d: ok (%d tiles, %d cycles, %d instrs)\n%!" seed
      case.ntiles skip_prof.Soc.cycles skip_prof.Soc.instrs

let () =
  let seed = ref 1 and count = ref 100 and size = ref 40 and quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--count" :: v :: rest ->
        count := int_of_string v;
        parse rest
    | "--size" :: v :: rest ->
        size := int_of_string v;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: fuzz_differential [--seed N] [--count N] [--size N] \
           [--quiet]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* The store oracle must exercise the disk layer without touching the
     user's real cache. *)
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mosaicsim-fuzz-%d" (Unix.getpid ()))
  in
  Store.set_cache_dir (`Dir tmp);
  for i = 0 to !count - 1 do
    Store.reset ();
    run_case ~quiet:!quiet ~size:!size i !seed
  done;
  Printf.printf "fuzz_differential: %d cases, 6 oracles each, 0 divergences\n"
    !count
