(* Aggregated alcotest runner for the whole reproduction. *)

let () =
  Alcotest.run "mosaicsim"
    (Test_util.suite @ Test_ir.suite @ Test_parse.suite @ Test_interp.suite
   @ Test_compiler.suite @ Test_memory.suite @ Test_mao.suite
   @ Test_tile.suite @ Test_soc.suite @ Test_accel.suite
   @ Test_workloads.suite @ Test_baseline.suite @ Test_extensions.suite @ Test_analysis.suite @ Test_validation.suite @ Test_dae_property.suite @ Test_presets.suite @ Test_minic.suite @ Test_obs.suite @ Test_golden.suite @ Test_cycle_skip.suite @ Test_batch.suite @ Test_trace_store.suite @ Test_profile.suite @ Test_mir.suite
   @ Test_retime.suite @ Test_shard.suite @ Test_snapshot.suite
   @ Test_telemetry.suite)
