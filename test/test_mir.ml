(* Tests for the `.mir` workload frontend: corpus files parse, format to a
   fixpoint, and — for the ported benchmarks — are bit-identical twins of
   their builder-DSL originals (same program text, same post-setup memory
   image, same trace-store digest, same simulated cycles). Plus the
   generator round-trip oracle and golden parse-error diagnostics. *)

open Mosaic_ir
module Soc = Mosaic.Soc
module TC = Mosaic_tile.Tile_config
module Interp = Mosaic_trace.Interp
module Store = Mosaic_trace.Store
module W = Mosaic_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* The corpus workloads ported from builder-DSL twins by tools/gen_corpus;
   the rest (gep_chain, atomic_storm, branch_maze) are hand-written shapes
   with no Registry counterpart. *)
let ported =
  [
    "bfs"; "cutcp"; "histo"; "lbm"; "mri-gridding"; "mri-q"; "sad"; "sgemm";
    "spmv"; "stencil"; "ewsd";
  ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_exn ?path text =
  match Parse.mir ?path text with
  | Ok m -> m
  | Error ds ->
      Alcotest.failf "unexpected parse errors:\n%s"
        (Parse.render ?path ~source:text ds)

(* Post-setup memory image of an instance, the thing the trace digest (and
   the interpreter) actually consumes. Compared with [compare] = 0, not
   [=]: datasets contain floats and polymorphic [=] is NaN-hostile. *)
let memory_image (inst : W.Runner.t) =
  let it =
    Interp.create inst.W.Runner.program ~kernel:inst.W.Runner.kernel ~ntiles:1
      ~args:inst.W.Runner.args
  in
  inst.W.Runner.setup it;
  Interp.memory_contents it

let digest_of (inst : W.Runner.t) =
  Store.workload_digest ~program:inst.W.Runner.program ~label:"twin-test"
    ~tiles:[| (inst.W.Runner.kernel, inst.W.Runner.args) |]
    ~mem:(memory_image inst)

let cycles_of (inst : W.Runner.t) =
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst.W.Runner.program
      ~trace ~tile_config:TC.out_of_order
  in
  r.Soc.cycles

(* Every corpus file parses clean, validates, and builds a runnable
   instance; the canonical form is a formatting fixpoint. *)
let test_corpus_parses_and_fmt_fixpoint () =
  let names = W.Mir_workload.corpus_names () in
  checkb "corpus discovered" true (List.length names >= 14);
  List.iter
    (fun name ->
      let path = W.Mir_workload.corpus_path name in
      let text = read_file path in
      let m = parse_exn ~path text in
      ignore (W.Mir_workload.of_mir m);
      let canon = Mir.to_string m in
      let canon2 = Mir.to_string (parse_exn ~path:(name ^ "#canon") canon) in
      checks (name ^ ": fmt is a fixpoint") canon canon2)
    names

(* Ported corpus files are exact twins of their Registry instances: same
   program print, same memory image, same store digest. *)
let test_corpus_twins_identical () =
  List.iter
    (fun name ->
      let mir = W.Mir_workload.load_corpus name in
      let twin = W.Registry.instance name in
      checks
        (name ^ ": program text")
        (Format.asprintf "%a" Pretty.pp_program twin.W.Runner.program)
        (Format.asprintf "%a" Pretty.pp_program mir.W.Runner.program);
      checks (name ^ ": kernel") twin.W.Runner.kernel mir.W.Runner.kernel;
      checkb
        (name ^ ": launch args")
        true
        (compare twin.W.Runner.args mir.W.Runner.args = 0);
      checkb
        (name ^ ": memory image")
        true
        (compare (memory_image twin) (memory_image mir) = 0);
      checks (name ^ ": store digest") (digest_of twin) (digest_of mir))
    ported

(* And the end-to-end regression: running the `.mir` file through the SoC
   gives bit-identical cycles to the builder twin. Two benchmarks keep the
   test quick; digest equality above covers the rest (same digest = same
   trace = same simulation input). *)
let test_corpus_cycles_match_twin () =
  List.iter
    (fun name ->
      let mir = W.Mir_workload.load_corpus name in
      let twin = W.Registry.instance name in
      checki (name ^ ": cycles") (cycles_of twin) (cycles_of mir))
    [ "sgemm"; "histo" ]

(* The hand-written shapes (no builder twin) must still run, and must obey
   the skip/no-skip differential like any other workload. *)
let test_new_shapes_run () =
  List.iter
    (fun name ->
      let inst = W.Mir_workload.load_corpus name in
      let trace = W.Runner.trace inst ~ntiles:1 in
      let run cfg =
        Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace
          ~tile_config:TC.out_of_order
      in
      let skip = run Mosaic.Presets.dae_soc in
      let naive =
        run { Mosaic.Presets.dae_soc with Soc.cycle_skip = false }
      in
      checkb (name ^ ": ran") true (skip.Soc.cycles > 0);
      checki (name ^ ": skip differential") naive.Soc.cycles skip.Soc.cycles)
    [ "gep_chain"; "atomic_storm"; "branch_maze" ]

(* Directive headers land in the parsed metadata verbatim. *)
let test_metadata_parsed () =
  let text =
    {|; workload: demo
; a prose comment that is not a directive
; launch: @k(3, 2.5)
; init: @xs floats seed=7 offset=0.5
; init: @ys ints seed=9 bound=100
; set: @xs 2 -1

global @xs 8 x 8B
global @ys 8 x 8B
kernel @k(params=2) {
bb0:
  ret
}
|}
  in
  let m = parse_exn text in
  checkb "workload name" true (m.Mir.meta.Mir.workload = Some "demo");
  (match m.Mir.meta.Mir.launch with
  | Some { Mir.kernel; args } ->
      checks "launch kernel" "k" kernel;
      checkb "launch args" true
        (compare args [ Value.of_int 3; Value.of_float 2.5 ] = 0)
  | None -> Alcotest.fail "launch directive missing");
  checki "inits" 2 (List.length m.Mir.meta.Mir.inits);
  (match List.assoc_opt "xs" m.Mir.meta.Mir.inits with
  | Some (Mir.Floats { seed; offset }) ->
      checki "floats seed" 7 seed;
      checkb "floats offset" true (offset = 0.5)
  | _ -> Alcotest.fail "xs init should be floats");
  (match m.Mir.meta.Mir.sets with
  | [ ("xs", 2, v) ] -> checkb "set value" true (Value.to_int v = -1)
  | _ -> Alcotest.fail "expected one set directive");
  ignore (W.Mir_workload.of_mir m)

(* Metadata referencing missing globals / out-of-range indices is caught
   at parse time, as located diagnostics. *)
let test_metadata_cross_checks () =
  let expect_error text needle =
    match Parse.mir text with
    | Ok _ -> Alcotest.failf "expected error mentioning %S" needle
    | Error ds ->
        let rendered = Parse.render ~source:text ds in
        checkb
          (Printf.sprintf "diagnostic mentions %S" needle)
          true
          (contains ~needle rendered)
  in
  let body = "global @xs 4 x 8B\nkernel @k(params=0) {\nbb0:\n  ret\n}\n" in
  expect_error ("; init: @nope floats seed=1\n" ^ body) "unknown global";
  expect_error ("; set: @xs 9 0\n" ^ body) "out of range";
  expect_error ("; launch: @ghost()\n" ^ body) "ghost"

(* Golden parse-error corpus: malformed inputs must render exactly the
   diagnostics recorded in the .expected files (line, column, caret). *)
let test_golden_parse_errors () =
  let dir = Filename.concat "golden" "parse_errors" in
  let inputs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mir")
    |> List.sort String.compare
  in
  checkb "golden inputs present" true (List.length inputs >= 8);
  List.iter
    (fun f ->
      let text = read_file (Filename.concat dir f) in
      let expected =
        read_file (Filename.concat dir (Filename.remove_extension f ^ ".expected"))
      in
      match Parse.mir ~path:f text with
      | Ok _ -> Alcotest.failf "%s: expected parse errors, got none" f
      | Error ds ->
          checks (f ^ ": diagnostics") expected
            (Parse.render ~path:f ~source:text ds))
    inputs

(* A malformed kernel must not mask later errors: the parser recovers and
   reports every defective line. *)
let test_error_recovery_collects_all () =
  let text = "kernel @k(params=0) {\nbb0:\n  frobnicate\n  bogus2\n  ret\n}\n" in
  match Parse.mir text with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error ds ->
      checki "both bad lines reported" 2 (List.length ds);
      (match ds with
      | [ d1; d2 ] ->
          checki "first line" 3 d1.Parse.line;
          checki "first col" 3 d1.Parse.col;
          checki "second line" 4 d2.Parse.line
      | _ -> ())

(* Validation failures (not syntax) surface as located Parse_errors too —
   previously they escaped as bare Invalid_argument. *)
let test_validation_failures_are_located () =
  let check_located text ~line =
    (try ignore (Parse.program text) ; Alcotest.fail "expected Parse_error"
     with Parse.Parse_error { line = l; _ } -> checki "error line" line l);
    match Parse.mir text with
    | Ok _ -> Alcotest.fail "expected Error"
    | Error (d :: _) -> checki "diagnostic line" line d.Parse.line
    | Error [] -> Alcotest.fail "empty diagnostics"
  in
  (* Unterminated block: validation flags the fall-through add. *)
  check_located "kernel @k(params=0, regs=2) {\nbb0:\n  %r0 = add 1 2\n}\n"
    ~line:3;
  (* Branch to a block that does not exist. *)
  check_located "kernel @k(params=0) {\nbb0:\n  br bb7\n}\n" ~line:3

let test_empty_basic_block_rejected () =
  let text = "kernel @k(params=0) {\nbb0:\nbb1:\n  ret\n}\n" in
  match Parse.mir text with
  | Ok _ -> Alcotest.fail "empty block should be an error"
  | Error (d :: _) -> checki "points at the empty label" 2 d.Parse.line
  | Error [] -> Alcotest.fail "empty diagnostics"

(* Explicit instruction ids must be all-or-nothing within a kernel. *)
let test_mixed_ids_rejected () =
  let text =
    "kernel @k(params=0, regs=1) {\nbb0:\n  [  0] %r0 = add 1 2\n  ret\n}\n"
  in
  match Parse.mir text with
  | Ok _ -> Alcotest.fail "mixed explicit/implicit ids should be an error"
  | Error (d :: _) ->
      checkb "message says ids are mixed" true
        (contains ~needle:"mixes" d.Parse.message)
  | Error [] -> Alcotest.fail "empty diagnostics"

(* Adversarial literals survive print -> parse byte-exactly: NaN, signed
   zero, infinities, max-width ints. *)
let test_adversarial_literal_round_trip () =
  let module B = Builder in
  let p = Program.create () in
  let xs = Program.alloc p "xs" ~elems:8 ~elem_size:8 in
  let _ =
    B.define p "lits" ~nparams:0 (fun b ->
        let stash v = B.store b ~size:8 ~addr:(B.elem b xs (B.imm 0)) v in
        List.iter
          (fun f -> stash (B.fadd b (B.fimm f) (B.fimm (-0.0))))
          [ nan; -0.0; 0.0; infinity; neg_infinity; 1e300; 4e-324 ];
        stash (B.imm max_int);
        stash (B.imm min_int);
        B.ret b ())
  in
  let printed = Format.asprintf "%a" Pretty.pp_program p in
  let printed2 =
    Format.asprintf "%a" Pretty.pp_program (Parse.program printed)
  in
  checks "adversarial literals print-parse-print identity" printed printed2

(* qcheck oracle: for any generated program, print -> parse -> print is
   the identity (explicit ids make the very first print the fixpoint). *)
let prop_gen_round_trip =
  QCheck.Test.make ~name:"generated programs round-trip byte-identically"
    ~count:50
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let case = Mosaic_ir.Gen.generate ~seed () in
      let printed =
        Format.asprintf "%a" Pretty.pp_program case.Mosaic_ir.Gen.program
      in
      let printed2 =
        Format.asprintf "%a" Pretty.pp_program (Parse.program printed)
      in
      if printed <> printed2 then
        QCheck.Test.fail_reportf "seed %d: round trip diverged" seed;
      true)

(* Mini differential smoke: generated programs agree on cycles and profile
   attribution across skip/no-skip (the full 3-oracle run lives in
   tools/fuzz_differential; CI runs it at --count 50). *)
let test_gen_differential_smoke () =
  for seed = 1 to 4 do
    let case = Mosaic_ir.Gen.generate ~seed ~size:25 () in
    let it =
      Interp.create case.Mosaic_ir.Gen.program
        ~kernel:case.Mosaic_ir.Gen.kernel
        ~ntiles:case.Mosaic_ir.Gen.ntiles ~args:case.Mosaic_ir.Gen.args
    in
    let trace = Interp.run it in
    let run cfg =
      Soc.run_homogeneous cfg ~profile:true
        ~program:case.Mosaic_ir.Gen.program ~trace
        ~tile_config:TC.out_of_order
    in
    let skip = run Mosaic.Presets.dae_soc in
    let naive = run { Mosaic.Presets.dae_soc with Soc.cycle_skip = false } in
    let tag = Printf.sprintf "gen seed %d" seed in
    checki (tag ^ ": cycles") naive.Soc.cycles skip.Soc.cycles;
    checki (tag ^ ": instrs") naive.Soc.instrs skip.Soc.instrs;
    Array.iteri
      (fun i p ->
        checki
          (Printf.sprintf "%s: tile %d attribution" tag i)
          skip.Soc.cycles
          (Mosaic_tile.Profile.total p);
        checki
          (Printf.sprintf "%s: tile %d attribution (naive)" tag i)
          naive.Soc.cycles
          (Mosaic_tile.Profile.total naive.Soc.profiles.(i)))
      skip.Soc.profiles
  done

let suite =
  [
    ( "ir.mir",
      [
        Alcotest.test_case "corpus parses; fmt fixpoint" `Quick
          test_corpus_parses_and_fmt_fixpoint;
        Alcotest.test_case "ported corpus = builder twins" `Quick
          test_corpus_twins_identical;
        Alcotest.test_case "corpus cycles match twins" `Quick
          test_corpus_cycles_match_twin;
        Alcotest.test_case "hand-written shapes run" `Quick
          test_new_shapes_run;
        Alcotest.test_case "metadata directives parsed" `Quick
          test_metadata_parsed;
        Alcotest.test_case "metadata cross-checks" `Quick
          test_metadata_cross_checks;
        Alcotest.test_case "golden parse errors" `Quick
          test_golden_parse_errors;
        Alcotest.test_case "error recovery collects all" `Quick
          test_error_recovery_collects_all;
        Alcotest.test_case "validation failures located" `Quick
          test_validation_failures_are_located;
        Alcotest.test_case "empty basic block rejected" `Quick
          test_empty_basic_block_rejected;
        Alcotest.test_case "mixed instruction ids rejected" `Quick
          test_mixed_ids_rejected;
        Alcotest.test_case "adversarial literal round trip" `Quick
          test_adversarial_literal_round_trip;
        QCheck_alcotest.to_alcotest prop_gen_round_trip;
        Alcotest.test_case "generated differential smoke" `Quick
          test_gen_differential_smoke;
      ] );
  ]
