(* Golden-trace regression tests: three small seeded workloads whose
   headline metrics must exactly match test/golden/*.json, plus the
   determinism guarantees the goldens rely on. *)

module Sink = Mosaic_obs.Sink
module Json = Mosaic_obs.Json
module Soc = Mosaic.Soc

let regen_hint =
  "if this change in simulator behaviour is intentional, regenerate the \
   goldens with `dune exec test/regen_golden.exe` from the repository root \
   and commit the diff of test/golden/*.json"

let load_golden name =
  let path = Filename.concat "golden" (Golden_support.golden_file name) in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden file %s — %s" path regen_hint;
  let text = In_channel.with_open_text path In_channel.input_all in
  Golden_support.of_json (Json.of_string text)

let check_golden name () =
  let expected = load_golden name in
  let actual = Golden_support.headline (Golden_support.run name) in
  let expected_keys = List.map fst expected
  and actual_keys = List.map fst actual in
  if expected_keys <> actual_keys then
    Alcotest.failf "golden %s: metric set changed (%s vs %s) — %s" name
      (String.concat "," expected_keys)
      (String.concat "," actual_keys)
      regen_hint;
  List.iter2
    (fun (key, want) (_, got) ->
      if got <> want then
        Alcotest.failf "golden %s: %s = %.17g, expected %.17g — %s" name key
          got want regen_hint)
    expected actual

(* Same configuration and seed must produce the identical event stream,
   not just the same summary numbers. Event payloads are plain data, so
   structural equality compares the full streams. *)
let test_deterministic_events () =
  let stream () =
    let sink = Sink.create () in
    let r = Golden_support.run ~sink "micro" in
    (Sink.to_list sink, Golden_support.headline r)
  in
  let events1, headline1 = stream () in
  let events2, headline2 = stream () in
  Alcotest.(check int)
    "stream lengths" (List.length events1) (List.length events2);
  Alcotest.(check bool) "identical event streams" true (events1 = events2);
  Alcotest.(check bool) "identical headline" true (headline1 = headline2)

(* A different dataset seed changes timing (different addresses, different
   cache behaviour) but not the amount of work: instructions retired stay
   equal because the kernel structure is seed-independent. *)
let test_seed_variation () =
  let r1 = Golden_support.run ~seed:1 "spmv" in
  let r2 = Golden_support.run ~seed:2 "spmv" in
  Alcotest.(check int) "instructions equal" r1.Soc.instrs r2.Soc.instrs;
  Alcotest.(check bool)
    "memory behaviour differs" true
    (r1.Soc.cycles <> r2.Soc.cycles
    || r1.Soc.mem_totals <> r2.Soc.mem_totals)

let suite =
  [
    ( "golden",
      List.map
        (fun name ->
          Alcotest.test_case ("headline metrics: " ^ name) `Quick
            (check_golden name))
        Golden_support.names
      @ [
          Alcotest.test_case "same seed, identical event stream" `Quick
            test_deterministic_events;
          Alcotest.test_case "different seed, same instruction count" `Quick
            test_seed_variation;
        ] );
  ]
