(* Determinism of the domain-parallel batch runner: running whole
   simulations through [Runner.run_batch ~jobs:4] must produce the same
   reports as the serial runner — same cycles, same instruction counts,
   same energy, same per-component counters. Host-time fields
   (host_seconds, mips) are wall-clock observations and are excluded.

   The comparison serializes each run's metrics registry to CSV, which
   covers every counter the components published (caches, DRAM, tiles,
   interleaver), so any nondeterminism in shared state would show up as a
   diff, not just as a cycle mismatch. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config
module Metrics = Mosaic_obs.Metrics

let workloads () =
  [
    ("pointer_chase", W.Micro.pointer_chase ~seed:3 ~nodes:128 ~steps:512 ());
    ("stream", W.Micro.stream ~seed:5 ~elems:2048 ());
    ("random_access", W.Micro.random_access ~seed:9 ~elems:1024 ~accesses:512 ());
    ("sgemm", W.Sgemm.instance ~m:8 ~n:8 ~k:8 ());
  ]

(* Everything deterministic about a run, as one comparable string. The
   metrics CSV includes host-time gauges (soc.host_seconds and friends,
   plus the host.* rows the span tracer publishes when enabled), so
   those rows are filtered by name. *)
let fingerprint (r : Soc.result) =
  let deterministic_rows =
    List.filter
      (fun (name, _, _) ->
        (not (String.starts_with ~prefix:"host." name))
        && not
             (List.exists
                (fun banned ->
                  String.length name >= String.length banned
                  && String.sub name
                       (String.length name - String.length banned)
                       (String.length banned)
                     = banned)
                [ "host_seconds"; "mips" ]))
      (Metrics.rows r.Soc.metrics)
  in
  let rows =
    List.map
      (fun (name, kind, v) -> Printf.sprintf "%s,%s,%g" name kind v)
      deterministic_rows
  in
  Printf.sprintf "cycles=%d stepped=%d instrs=%d ipc=%.9f energy=%.9f\n%s"
    r.Soc.cycles r.Soc.stepped_cycles r.Soc.instrs r.Soc.ipc r.Soc.energy_j
    (String.concat "\n" rows)

let run_all ~jobs =
  W.Runner.run_batch ~jobs
    (List.map
       (fun (name, inst) () ->
         let trace = W.Runner.trace inst ~ntiles:1 in
         let r =
           Soc.run_homogeneous Presets.xeon_soc ~program:inst.W.Runner.program
             ~trace ~tile_config:TC.out_of_order
         in
         (name, fingerprint r))
       (workloads ()))

let test_parallel_matches_serial () =
  let serial = run_all ~jobs:1 in
  let parallel = run_all ~jobs:4 in
  List.iter2
    (fun (n1, f1) (n2, f2) ->
      Alcotest.(check string) "task order" n1 n2;
      Alcotest.(check string) (Printf.sprintf "%s report" n1) f1 f2)
    serial parallel

(* run_batch must also preserve ordering for wildly unbalanced task
   durations (a fast task finishing before an earlier slow one). *)
let test_unbalanced_ordering () =
  let slow () =
    let inst = W.Micro.pointer_chase ~seed:3 ~nodes:256 ~steps:2048 () in
    let trace = W.Runner.trace inst ~ntiles:1 in
    (Soc.run_homogeneous Presets.xeon_soc ~program:inst.W.Runner.program
       ~trace ~tile_config:TC.out_of_order)
      .Soc.cycles
  in
  let tasks = slow :: List.init 6 (fun i () -> i) in
  match W.Runner.run_batch ~jobs:4 tasks with
  | slow_cycles :: rest ->
      Alcotest.(check bool) "slow task ran" true (slow_cycles > 0);
      Alcotest.(check (list int)) "fast tasks in order" [ 0; 1; 2; 3; 4; 5 ]
        rest
  | [] -> Alcotest.fail "empty batch result"

let suite =
  [
    ( "batch.determinism",
      [
        Alcotest.test_case "jobs:4 identical to serial" `Quick
          test_parallel_matches_serial;
        Alcotest.test_case "ordering under unbalanced tasks" `Quick
          test_unbalanced_ordering;
      ] );
  ]
