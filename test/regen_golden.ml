(* Regenerate the golden headline-metric files used by test_golden.ml.

   Run from the repository root after an intentional behaviour change:

     dune exec test/regen_golden.exe

   then inspect the diff of test/golden/*.json before committing it. An
   alternative output directory can be given as the first argument. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name ->
      let r = Golden_support.run name in
      let path = Filename.concat dir (Golden_support.golden_file name) in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Mosaic_obs.Json.to_string
               (Golden_support.to_json (Golden_support.headline r)));
          Out_channel.output_char oc '\n');
      Printf.printf "wrote %s\n" path)
    Golden_support.names
