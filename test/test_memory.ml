(* Tests for the memory hierarchy: caches, MSHRs, prefetcher, DRAM models. *)

module Cache = Mosaic_memory.Cache
module Prefetcher = Mosaic_memory.Prefetcher
module Dram = Mosaic_memory.Dram
module Hierarchy = Mosaic_memory.Hierarchy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_cache ?(assoc = 2) ?(mshr = 4) ?(latency = 2) ?(size = 1024) () =
  Cache.create ~name:"t"
    {
      Cache.size_bytes = size;
      line_size = 64;
      assoc;
      latency;
      mshr_size = mshr;
      prefetch = None;
    }

(* --- Cache basics --- *)

let test_cache_geometry () =
  let c = small_cache () in
  checki "sets" 8 (Cache.nsets c);
  Alcotest.check_raises "bad line size"
    (Invalid_argument "Cache: line_size must be a power of two") (fun () ->
      ignore
        (Cache.validate_config
           {
             Cache.size_bytes = 1024;
             line_size = 60;
             assoc = 2;
             latency = 1;
             mshr_size = 4;
             prefetch = None;
           }))

let test_cache_hit_after_fill () =
  let c = small_cache () in
  checkb "cold miss" true (Cache.lookup c ~addr:0 ~is_write:false = `Miss);
  ignore (Cache.fill c ~addr:0 ~dirty:false);
  checkb "then hit" true (Cache.lookup c ~addr:32 ~is_write:false = `Hit);
  checki "stats" 1 (Cache.stats c).Cache.hits;
  checki "misses" 1 (Cache.stats c).Cache.misses

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to the same set (stride = nsets * line). *)
  let stride = 8 * 64 in
  ignore (Cache.fill c ~addr:0 ~dirty:false);
  ignore (Cache.fill c ~addr:stride ~dirty:false);
  (* touch line 0 so line stride is LRU *)
  ignore (Cache.lookup c ~addr:0 ~is_write:false);
  (match Cache.fill c ~addr:(2 * stride) ~dirty:false with
  | `Clean evicted -> checki "evicted LRU" stride evicted
  | _ -> Alcotest.fail "expected clean eviction");
  checkb "line 0 survives" true (Cache.probe c ~addr:0);
  checkb "victim gone" false (Cache.probe c ~addr:stride)

let test_cache_dirty_writeback () =
  let c = small_cache ~assoc:1 () in
  (* direct-mapped: 16 sets, so lines 1024 bytes apart collide *)
  ignore (Cache.fill c ~addr:0 ~dirty:true);
  (match Cache.fill c ~addr:(16 * 64) ~dirty:false with
  | `Dirty evicted -> checki "dirty eviction addr" 0 evicted
  | _ -> Alcotest.fail "expected dirty eviction");
  checki "writeback counted" 1 (Cache.stats c).Cache.writebacks

let test_cache_write_marks_dirty () =
  let c = small_cache ~assoc:1 () in
  ignore (Cache.fill c ~addr:0 ~dirty:false);
  ignore (Cache.lookup c ~addr:0 ~is_write:true);
  match Cache.fill c ~addr:(16 * 64) ~dirty:false with
  | `Dirty _ -> ()
  | _ -> Alcotest.fail "write hit should have dirtied the line"

let test_mshr_tracking () =
  let c = small_cache ~mshr:2 () in
  Cache.mshr_insert c ~addr:0 ~ready:100;
  Cache.mshr_insert c ~addr:64 ~ready:50;
  checkb "full at 2" true (Cache.mshr_full c ~cycle:10);
  checki "pending" 100 (Cache.mshr_pending c ~addr:0 ~cycle:10);
  checki "earliest" 50 (Cache.mshr_earliest c ~cycle:10);
  (* entries lazily expire *)
  checkb "not full later" false (Cache.mshr_full c ~cycle:60);
  checki "expired entry gone" (-1) (Cache.mshr_pending c ~addr:64 ~cycle:60)

(* Reference LRU model: per set, a most-recent-first list of lines. *)
module Ref_cache = struct
  type t = { nsets : int; assoc : int; sets : int list array }

  let create ~nsets ~assoc = { nsets; assoc; sets = Array.make nsets [] }

  (* returns hit?, updating recency / filling on miss *)
  let access t line =
    let s = line mod t.nsets in
    let set = t.sets.(s) in
    let hit = List.mem line set in
    let without = List.filter (fun l -> l <> line) set in
    let updated = line :: without in
    let trimmed =
      if List.length updated > t.assoc then
        List.filteri (fun i _ -> i < t.assoc) updated
      else updated
    in
    t.sets.(s) <- trimmed;
    hit
end

let prop_cache_matches_reference =
  QCheck.Test.make ~name:"cache hit/miss decisions match a reference LRU"
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (int_range 0 63))
    (fun lines ->
      (* 2KB, 4-way, 64B lines -> 8 sets *)
      let c =
        Cache.create ~name:"ref"
          {
            Cache.size_bytes = 2048;
            line_size = 64;
            assoc = 4;
            latency = 1;
            mshr_size = 4;
            prefetch = None;
          }
      in
      let r = Ref_cache.create ~nsets:8 ~assoc:4 in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          let model_hit = Cache.lookup c ~addr ~is_write:false = `Hit in
          if not model_hit then ignore (Cache.fill c ~addr ~dirty:false);
          let ref_hit = Ref_cache.access r line in
          model_hit = ref_hit)
        lines)

(* --- Prefetcher --- *)

let test_prefetcher_detects_stream () =
  let pf = Prefetcher.create Prefetcher.default_config in
  let observe_list pf ~addr ~line_size =
    Array.to_list
      (Mosaic_util.Int_vec.to_array (Prefetcher.observe pf ~addr ~line_size))
  in
  let prefetches = ref [] in
  for i = 0 to 9 do
    prefetches := observe_list pf ~addr:(i * 64) ~line_size:64 @ !prefetches
  done;
  checkb "stream confirmed" true (Prefetcher.active_streams pf >= 1);
  checkb "issued prefetches" true (List.length !prefetches > 0);
  List.iter
    (fun a -> checki "line aligned" 0 (a mod 64))
    !prefetches

let test_prefetcher_ignores_random () =
  let pf =
    Prefetcher.create { Prefetcher.default_config with Prefetcher.table_size = 4 }
  in
  let rng = Mosaic_util.Rng.create 9 in
  let total = ref 0 in
  for _ = 0 to 199 do
    let addr = Mosaic_util.Rng.int rng 1_000_000 * 64 in
    total :=
      !total + Mosaic_util.Int_vec.length (Prefetcher.observe pf ~addr ~line_size:64)
  done;
  checkb "few prefetches on random stream" true (!total < 20)

let test_prefetcher_strided () =
  (* k-words-apart chains, as the paper describes. *)
  let pf = Prefetcher.create Prefetcher.default_config in
  let out = ref 0 in
  for i = 0 to 9 do
    out :=
      !out + Mosaic_util.Int_vec.length (Prefetcher.observe pf ~addr:(i * 24) ~line_size:64)
  done;
  checkb "stride 24 detected" true (!out > 0)

(* --- SimpleDRAM --- *)

let test_simple_dram_min_latency () =
  let d = Dram.simple { Dram.min_latency = 100; lines_per_epoch = 4; epoch_cycles = 32 } in
  let c = Dram.access d ~cycle:10 ~addr:0 Dram.Dram_read in
  checkb "at least min latency" true (c >= 110)

let test_simple_dram_bandwidth_throttling () =
  let d = Dram.simple { Dram.min_latency = 10; lines_per_epoch = 2; epoch_cycles = 64 } in
  (* 8 simultaneous requests at 2 per 64-cycle epoch: completions spread. *)
  let completions = List.init 8 (fun i -> Dram.access d ~cycle:0 ~addr:(i * 64) Dram.Dram_read) in
  let last = List.fold_left Stdlib.max 0 completions in
  checkb "throttled past three epochs" true (last >= 3 * 64);
  checkb "busy returns counted" true ((Dram.stats d).Dram.busy_returns > 0)

let test_simple_dram_bandwidth_recovers () =
  let d = Dram.simple { Dram.min_latency = 10; lines_per_epoch = 2; epoch_cycles = 64 } in
  ignore (Dram.access d ~cycle:0 ~addr:0 Dram.Dram_read);
  (* far in the future: no queuing *)
  let c = Dram.access d ~cycle:100_000 ~addr:64 Dram.Dram_read in
  checkb "no residual queueing" true (c <= 100_000 + 10 + 64)

(* --- Detailed DRAM --- *)

let test_detailed_dram_row_hits () =
  let cfg = { Dram.default_detailed with Dram.t_refi = 0 } in
  let d = Dram.detailed cfg in
  let c1 = Dram.access d ~cycle:0 ~addr:0 Dram.Dram_read in
  let c2 = Dram.access d ~cycle:(c1 + 10) ~addr:64 Dram.Dram_read in
  let stats = Dram.stats d in
  checki "one miss one hit" 1 stats.Dram.row_hits;
  checki "misses" 1 stats.Dram.row_misses;
  checkb "hit faster than miss" true (c2 - (c1 + 10) < c1)

let test_detailed_dram_bank_conflict () =
  let cfg = { Dram.default_detailed with Dram.t_refi = 0 } in
  let d = Dram.detailed cfg in
  (* Same bank, different rows: serialized. *)
  let row_bytes = cfg.Dram.row_bytes and nbanks = cfg.Dram.nbanks in
  let a1 = 0 and a2 = row_bytes * nbanks in
  let c1 = Dram.access d ~cycle:0 ~addr:a1 Dram.Dram_read in
  let c2 = Dram.access d ~cycle:0 ~addr:a2 Dram.Dram_read in
  checkb "second delayed by bank busy" true (c2 > c1)

(* --- Hierarchy --- *)

let test_cache_invalidate () =
  let c = small_cache () in
  ignore (Cache.fill c ~addr:0 ~dirty:true);
  checkb "dirty on drop" true (Cache.invalidate c ~addr:0 = `Dirty);
  checkb "absent after" true (Cache.invalidate c ~addr:0 = `Absent);
  checki "counted" 1 (Cache.stats c).Cache.invalidations

let hier_config ?(prefetch = None) () =
  {
    Hierarchy.l1 =
      {
        Cache.size_bytes = 1024;
        line_size = 64;
        assoc = 2;
        latency = 2;
        mshr_size = 4;
        prefetch;
      };
    l2 = None;
    llc =
      Some
        {
          Cache.size_bytes = 8192;
          line_size = 64;
          assoc = 4;
          latency = 10;
          mshr_size = 8;
          prefetch = None;
        };
    dram = Hierarchy.Simple { Dram.min_latency = 100; lines_per_epoch = 8; epoch_cycles = 64 };
    coherence = None;
  }

let test_coherence_invalidation () =
  let cfg =
    {
      (hier_config ()) with
      Hierarchy.coherence = Some { Hierarchy.directory_latency = 25 };
    }
  in
  let h = Hierarchy.create ~ntiles:2 cfg in
  (* tile 0 reads and caches the line *)
  let c0 = Hierarchy.access h ~tile:0 ~cycle:0 ~addr:0 ~is_write:false in
  (* tile 1 writes it: directory must invalidate tile 0's copy and charge
     the directory latency *)
  let t = c0 + 10 in
  ignore (Hierarchy.access h ~tile:1 ~cycle:t ~addr:0 ~is_write:true);
  checkb "invalidation sent" true (Hierarchy.coherence_invalidations h > 0);
  (* tile 0 re-reads: its L1 copy is gone (miss beyond L1 latency) *)
  let t2 = t + 100_000 in
  let reread = Hierarchy.access h ~tile:0 ~cycle:t2 ~addr:0 ~is_write:false in
  checkb "copy was dropped" true (reread - t2 > 2)

let test_coherence_read_of_modified () =
  let cfg =
    {
      (hier_config ()) with
      Hierarchy.coherence = Some { Hierarchy.directory_latency = 25 };
    }
  in
  let h = Hierarchy.create ~ntiles:2 cfg in
  ignore (Hierarchy.access h ~tile:0 ~cycle:0 ~addr:64 ~is_write:true);
  let t = 100_000 in
  let warm_other = Hierarchy.access h ~tile:1 ~cycle:t ~addr:64 ~is_write:false in
  (* reader pays the directory penalty to flush the owner *)
  checkb "flush penalty charged" true (warm_other - t >= 25);
  checkb "owner invalidated" true (Hierarchy.coherence_invalidations h > 0)

let test_coherence_off_by_default () =
  let h = Hierarchy.create ~ntiles:2 (hier_config ()) in
  ignore (Hierarchy.access h ~tile:0 ~cycle:0 ~addr:0 ~is_write:false);
  ignore (Hierarchy.access h ~tile:1 ~cycle:1000 ~addr:0 ~is_write:true);
  checki "no invalidations" 0 (Hierarchy.coherence_invalidations h)

let test_hierarchy_latency_ladder () =
  let h = Hierarchy.create ~ntiles:1 (hier_config ()) in
  let cold = Hierarchy.access h ~tile:0 ~cycle:0 ~addr:0 ~is_write:false in
  checkb "cold miss goes to DRAM" true (cold >= 100);
  let warm = Hierarchy.access h ~tile:0 ~cycle:(cold + 1) ~addr:0 ~is_write:false in
  checki "L1 hit" 2 (warm - (cold + 1));
  (* evict from tiny L1 but stay in LLC *)
  for i = 1 to 40 do
    ignore (Hierarchy.access h ~tile:0 ~cycle:(cold + 100 + i) ~addr:(i * 64) ~is_write:false)
  done;
  let t = cold + 100_000 in
  let llc_hit = Hierarchy.access h ~tile:0 ~cycle:t ~addr:0 ~is_write:false in
  checkb "LLC hit between L1 and DRAM" true
    (llc_hit - t > 2 && llc_hit - t < 100)

let test_hierarchy_mshr_coalescing () =
  let h = Hierarchy.create ~ntiles:1 (hier_config ()) in
  let c1 = Hierarchy.access h ~tile:0 ~cycle:0 ~addr:0 ~is_write:false in
  (* same line shortly after: coalesced onto the in-flight miss *)
  let c2 = Hierarchy.access h ~tile:0 ~cycle:1 ~addr:8 ~is_write:false in
  checki "same completion as the miss" c1 c2;
  let stats = Hierarchy.cache_stats h in
  let l1 = List.assoc "l1.0" stats in
  checki "merge counted" 1 l1.Cache.mshr_merges

let test_hierarchy_private_l1s () =
  let h = Hierarchy.create ~ntiles:2 (hier_config ()) in
  let c = Hierarchy.access h ~tile:0 ~cycle:0 ~addr:0 ~is_write:false in
  (* other tile misses its own L1 but hits shared LLC *)
  let t = c + 10 in
  let other = Hierarchy.access h ~tile:1 ~cycle:t ~addr:0 ~is_write:false in
  checkb "tile 1 missed L1, hit LLC" true (other - t > 2 && other - t < 100)

let test_hierarchy_prefetch_effect () =
  let stream tile_cfg =
    let h = Hierarchy.create ~ntiles:1 tile_cfg in
    let total = ref 0 in
    let cycle = ref 0 in
    for i = 0 to 199 do
      let c = Hierarchy.access h ~tile:0 ~cycle:!cycle ~addr:(i * 64) ~is_write:false in
      total := !total + (c - !cycle);
      cycle := c + 1
    done;
    !total
  in
  let without = stream (hier_config ()) in
  let with_pf = stream (hier_config ~prefetch:(Some Prefetcher.default_config) ()) in
  checkb "prefetching helps a streaming walk" true (with_pf < without)

let test_hierarchy_dram_burst () =
  let h = Hierarchy.create ~ntiles:1 (hier_config ()) in
  let one = Hierarchy.dram_burst h ~cycle:0 ~addr:0 ~bytes:64 ~is_write:false in
  let many = Hierarchy.dram_burst h ~cycle:0 ~addr:4096 ~bytes:(64 * 64) ~is_write:false in
  checkb "bigger burst takes longer" true (many > one);
  checki "zero bytes instant" 0 (Hierarchy.dram_burst h ~cycle:0 ~addr:0 ~bytes:0 ~is_write:false)

let test_hierarchy_can_accept () =
  let h = Hierarchy.create ~ntiles:1 (hier_config ()) in
  checkb "empty accepts" true (Hierarchy.can_accept h ~tile:0 ~cycle:0);
  (* saturate the 4-entry L1 MSHR with distinct-line misses *)
  for i = 0 to 3 do
    ignore (Hierarchy.access h ~tile:0 ~cycle:0 ~addr:(i * 64) ~is_write:false)
  done;
  checkb "full rejects" false (Hierarchy.can_accept h ~tile:0 ~cycle:1);
  checkb "accepts after drain" true (Hierarchy.can_accept h ~tile:0 ~cycle:10_000)

let suite =
  [
    ( "memory.cache",
      [
        Alcotest.test_case "geometry" `Quick test_cache_geometry;
        Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "dirty writeback" `Quick test_cache_dirty_writeback;
        Alcotest.test_case "write marks dirty" `Quick test_cache_write_marks_dirty;
        Alcotest.test_case "mshr tracking" `Quick test_mshr_tracking;
        Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        QCheck_alcotest.to_alcotest prop_cache_matches_reference;
      ] );
    ( "memory.prefetcher",
      [
        Alcotest.test_case "detects streams" `Quick test_prefetcher_detects_stream;
        Alcotest.test_case "ignores random" `Quick test_prefetcher_ignores_random;
        Alcotest.test_case "strided chains" `Quick test_prefetcher_strided;
      ] );
    ( "memory.dram",
      [
        Alcotest.test_case "min latency" `Quick test_simple_dram_min_latency;
        Alcotest.test_case "bandwidth throttling" `Quick test_simple_dram_bandwidth_throttling;
        Alcotest.test_case "bandwidth recovers" `Quick test_simple_dram_bandwidth_recovers;
        Alcotest.test_case "detailed row hits" `Quick test_detailed_dram_row_hits;
        Alcotest.test_case "detailed bank conflicts" `Quick test_detailed_dram_bank_conflict;
      ] );
    ( "memory.hierarchy",
      [
        Alcotest.test_case "latency ladder" `Quick test_hierarchy_latency_ladder;
        Alcotest.test_case "mshr coalescing" `Quick test_hierarchy_mshr_coalescing;
        Alcotest.test_case "private L1s share LLC" `Quick test_hierarchy_private_l1s;
        Alcotest.test_case "prefetching helps streams" `Quick test_hierarchy_prefetch_effect;
        Alcotest.test_case "dram bursts" `Quick test_hierarchy_dram_burst;
        Alcotest.test_case "can_accept backpressure" `Quick test_hierarchy_can_accept;
        Alcotest.test_case "coherence invalidation" `Quick test_coherence_invalidation;
        Alcotest.test_case "coherence read of modified" `Quick
          test_coherence_read_of_modified;
        Alcotest.test_case "coherence off by default" `Quick
          test_coherence_off_by_default;
      ] );
  ]
