(* Re-timing engine invariants.

   The engine's contract has an exact core and a bounded halo; the exact
   core is testable without tolerances and is what these tests pin down:

   1. Identity — re-timing a trace at the config that produced its
      profiled base run reproduces the base cycles and instruction count
      bit-exactly (every scaling ratio is computed from identical inputs,
      so each is exactly 1.0 in IEEE arithmetic). Checked as a qcheck
      property over generated programs, mixing in-order and out-of-order
      tiles, like the fuzzer's oracle 4 but in-tree.
   2. Path invariance — sweeping an axis that changes no timing input
      (clock frequency) re-times every point to the base cycle count.
   3. Determinism — a sweep distributed over 4 domains returns the same
      points in the same order as the serial run ([Retime.run] is pure
      and [Domain_pool.map] is input-order preserving).
   4. Skeleton accounting — per-tile opcode-class counts sum to that
      tile's dynamic instruction count, and the skeleton's total matches
      the trace's. *)

module Soc = Mosaic.Soc
module Retime = Mosaic.Retime
module Sweep = Mosaic.Sweep
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config
module Ir = Mosaic_ir
module Interp = Mosaic_trace.Interp
module Trace = Mosaic_trace.Trace
module Analysis = Mosaic_trace.Analysis

let checki = Alcotest.(check int)

let case_of_seed seed =
  let case = Ir.Gen.generate ~seed ~size:40 () in
  let trace =
    Interp.run
      (Interp.create case.Ir.Gen.program ~kernel:case.Ir.Gen.kernel
         ~ntiles:case.Ir.Gen.ntiles ~args:case.Ir.Gen.args)
  in
  (case, trace)

let prop_identity =
  QCheck.Test.make ~name:"retime at generating config is bit-exact" ~count:30
    (QCheck.make QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let case, trace = case_of_seed seed in
      let tile_config =
        if seed mod 2 = 0 then TC.out_of_order else TC.in_order
      in
      let cfg = Soc.default_config in
      let base =
        Soc.run_homogeneous ~profile:true cfg ~program:case.Ir.Gen.program
          ~trace ~tile_config
      in
      let tiles =
        Array.map
          (fun (tt : Trace.tile_trace) ->
            { Soc.kernel = tt.Trace.kernel; Soc.tile_config })
          trace.Trace.tiles
      in
      let skel = Analysis.skeleton case.Ir.Gen.program trace in
      let prep = Retime.of_result ~cfg ~tiles skel base in
      let rt = Retime.run prep cfg tiles in
      rt.Retime.cycles = base.Soc.cycles && rt.Retime.instrs = base.Soc.instrs)

(* A small fixed workload for the sweep-level tests: fast to simulate,
   still multi-tile when the generator says so. *)
let sweep_fixture =
  lazy
    (let case, trace = case_of_seed 42 in
     (case.Ir.Gen.program, trace))

let sweep_points = [ "l1=8,16,32,64"; "l2=256,512,1024,2048" ]

let run_sweep ?(jobs = 1) axes =
  let program, trace = Lazy.force sweep_fixture in
  Sweep.run ~jobs Presets.xeon_soc ~tile_config:TC.out_of_order ~program
    ~trace
    (Sweep.grid (List.map Sweep.axis_of_spec axes))

let test_freq_invariance () =
  let s = run_sweep [ "freq=1,2,3.2,4" ] in
  Array.iter
    (fun (p : Sweep.point) ->
      checki
        (Printf.sprintf "%s retimes to base cycles" p.Sweep.label)
        s.Sweep.base.Soc.cycles p.Sweep.retimed.Retime.cycles)
    s.Sweep.points

let test_parallel_determinism () =
  let serial = run_sweep sweep_points in
  let par = run_sweep ~jobs:4 sweep_points in
  checki "point count" (Array.length serial.Sweep.points)
    (Array.length par.Sweep.points);
  Array.iteri
    (fun i (sp : Sweep.point) ->
      let pp = par.Sweep.points.(i) in
      Alcotest.(check string)
        (Printf.sprintf "point %d label" i)
        sp.Sweep.label pp.Sweep.label;
      checki
        (Printf.sprintf "point %d cycles (jobs:4 vs serial)" i)
        sp.Sweep.retimed.Retime.cycles pp.Sweep.retimed.Retime.cycles)
    serial.Sweep.points

let test_skeleton_accounting () =
  let program, trace = Lazy.force sweep_fixture in
  let skel = Analysis.skeleton program trace in
  checki "skeleton total matches trace" (Trace.total_dyn_instrs trace)
    skel.Analysis.total_dyn_instrs;
  checki "one tile skeleton per tile trace"
    (Array.length trace.Trace.tiles)
    (Array.length skel.Analysis.tiles);
  Array.iteri
    (fun i (ts : Analysis.tile_skeleton) ->
      let tt = trace.Trace.tiles.(i) in
      checki
        (Printf.sprintf "tile %d class counts sum to dyn instrs" i)
        tt.Trace.dyn_instrs
        (Array.fold_left ( + ) 0 ts.Analysis.class_counts))
    skel.Analysis.tiles

let suite =
  [
    ( "retime",
      [
        QCheck_alcotest.to_alcotest prop_identity;
        Alcotest.test_case "freq axis is timing-invariant" `Quick
          test_freq_invariance;
        Alcotest.test_case "sweep jobs:4 matches serial" `Quick
          test_parallel_determinism;
        Alcotest.test_case "skeleton accounting" `Quick
          test_skeleton_accounting;
      ] );
  ]
