(* Cycle-accounting profiler invariants.

   The profiler promises three things, tested differentially here:
   1. Totality — every simulated tile-cycle lands in exactly one stall
      cause, so each tile's attribution sums to the run's cycle count.
   2. Observation only — enabling the profiler changes no simulated
      observable (cycles are bit-identical profiled vs unprofiled).
   3. Skip-independence — attribution is not merely total but identical
      with and without event-driven cycle skipping: the scheduler replays
      the frozen cause over fast-forwarded stretches, and a skipped
      stretch is by construction a run of cycles that would each have
      re-derived that same cause under the naive sweep. *)

module Soc = Mosaic.Soc
module TC = Mosaic_tile.Tile_config
module Profile = Mosaic_tile.Profile
module Stall = Mosaic_obs.Stall
module Metrics = Mosaic_obs.Metrics
module W = Mosaic_workloads

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let no_skip cfg = { cfg with Soc.cycle_skip = false }

(* The three invariants over an arbitrary pair of profiled runs. *)
let assert_profile_invariants name (skip : Soc.result) (naive : Soc.result) =
  let ck what = checki (Printf.sprintf "%s: %s" name what) in
  ck "cycles agree" naive.Soc.cycles skip.Soc.cycles;
  ck "tile count"
    (Array.length naive.Soc.profiles)
    (Array.length skip.Soc.profiles);
  Array.iteri
    (fun i (np : Profile.t) ->
      let sp = skip.Soc.profiles.(i) in
      ck
        (Printf.sprintf "tile %d attribution sums to cycles (skip)" i)
        skip.Soc.cycles (Profile.total sp);
      ck
        (Printf.sprintf "tile %d attribution sums to cycles (no-skip)" i)
        naive.Soc.cycles (Profile.total np);
      Array.iter
        (fun cause ->
          ck
            (Printf.sprintf "tile %d cause %s identical" i (Stall.name cause))
            (Profile.count np cause) (Profile.count sp cause))
        Stall.all;
      (* Roll-ups must agree too, block by block. *)
      ck (Printf.sprintf "tile %d nblocks" i) (Profile.nblocks np)
        (Profile.nblocks sp);
      for bid = 0 to Profile.nblocks np - 1 do
        Array.iter
          (fun cause ->
            ck
              (Printf.sprintf "tile %d bb %d cause %s" i bid (Stall.name cause))
              (Profile.bb_count np ~bid cause)
              (Profile.bb_count sp ~bid cause))
          Stall.all
      done)
    naive.Soc.profiles

(* Run [inst] profiled with skipping on and off, plus unprofiled, and
   demand all three invariants. Returns the profiled skip run. *)
let differential name cfg ~tile_config inst ~ntiles =
  let run cfg ~profile =
    let trace = W.Runner.trace inst ~ntiles in
    Soc.run_homogeneous ~profile cfg ~program:inst.W.Runner.program ~trace
      ~tile_config
  in
  let skip = run { cfg with Soc.cycle_skip = true } ~profile:true in
  let naive = run (no_skip cfg) ~profile:true in
  let plain = run { cfg with Soc.cycle_skip = true } ~profile:false in
  assert_profile_invariants name skip naive;
  checki
    (Printf.sprintf "%s: profiling does not perturb cycles" name)
    plain.Soc.cycles skip.Soc.cycles;
  checkb
    (Printf.sprintf "%s: unprofiled run carries null profiles" name)
    false
    (Array.exists Profile.enabled plain.Soc.profiles);
  skip

let test_micro_workloads () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun (cname, tc) ->
          ignore
            (differential
               (Printf.sprintf "%s/%s" name cname)
               Mosaic.Presets.dae_soc ~tile_config:tc inst ~ntiles:1))
        [ ("ooo", TC.out_of_order); ("ino", TC.in_order) ])
    [
      ("pointer_chase", W.Micro.pointer_chase ~seed:3 ~nodes:128 ~steps:512 ());
      ("stream", W.Micro.stream ~seed:5 ~elems:2048 ());
      ("random_access", W.Micro.random_access ~seed:9 ~elems:1024 ~accesses:512 ());
    ]

let test_xeon_preset () =
  ignore
    (differential "spmv/xeon" Mosaic.Presets.xeon_soc
       ~tile_config:TC.out_of_order
       (W.Spmv.instance ~seed:17 ~rows:96 ~cols:96 ~per_row:5 ())
       ~ntiles:2)

(* DAE pairs stall on interleaver channels; supply-consume attribution and
   the skip replay must hold across the pipeline. *)
let test_dae_pipeline () =
  let inst, _info =
    W.Projection.dae_instance ~seed:13 ~n_left:64 ~n_right:128 ~degree:4 ()
  in
  let pairs = 2 in
  let access = inst.W.Runner.kernel ^ "_access"
  and execute = inst.W.Runner.kernel ^ "_execute" in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then access else execute), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then access else execute);
          tile_config = TC.in_order;
        })
  in
  let run cfg =
    Soc.run ~profile:true cfg ~program:inst.W.Runner.program ~trace ~tiles
  in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  assert_profile_invariants "projection-dae" skip naive;
  (* The execute tiles actually wait on their access partners. *)
  let supply =
    Array.fold_left
      (fun acc p -> acc + Profile.count p Stall.Supply)
      0 skip.Soc.profiles
  in
  checkb "DAE pipeline books supply-consume stalls" true (supply > 0)

(* Divided clocks exercise the sticky sub-edge booking: the slow tile books
   its last edge attribution on every intermediate fast-clock cycle. *)
let test_clock_dividers () =
  let inst = W.Sgemm.instance ~m:24 ~n:24 ~k:24 () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let tiles =
    [|
      { Soc.kernel = "sgemm"; tile_config = TC.out_of_order };
      {
        Soc.kernel = "sgemm";
        tile_config = { TC.in_order with TC.clock_divider = 3 };
      };
    |]
  in
  let run cfg =
    Soc.run ~profile:true cfg ~program:inst.W.Runner.program ~trace ~tiles
  in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  assert_profile_invariants "mixed dividers" skip naive

(* Registry mirror: soc publishes per-tile and aggregate stall counters
   that must equal the profile stores. *)
let test_metrics_mirror () =
  let inst = W.Micro.pointer_chase ~seed:3 ~nodes:256 ~steps:1024 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous ~profile:true Mosaic.Presets.dae_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let c = Metrics.get_counter r.Soc.metrics in
  Array.iter
    (fun cause ->
      let n = Stall.name cause in
      checki
        (Printf.sprintf "tile.0.stall.%s mirrors profile" n)
        (Profile.count r.Soc.profiles.(0) cause)
        (c (Printf.sprintf "tile.0.stall.%s" n));
      checki
        (Printf.sprintf "stall.%s aggregates tiles" n)
        (Array.fold_left
           (fun acc p -> acc + Profile.count p cause)
           0 r.Soc.profiles)
        (c (Printf.sprintf "stall.%s" n)))
    Stall.all

(* Attribution sanity: a dependent-load chain that spills past the LLC is
   memory-bound, and the profiler must say so. *)
let test_pointer_chase_is_memory_bound () =
  let inst = W.Micro.pointer_chase ~seed:3 ~nodes:4096 ~steps:4096 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous ~profile:true Mosaic.Presets.dae_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let p = r.Soc.profiles.(0) in
  let mem = Profile.count p Stall.Memory + Profile.count p Stall.Dependency in
  let dump =
    String.concat " "
      (Array.to_list
         (Array.map
            (fun c -> Printf.sprintf "%s=%d" (Stall.name c) (Profile.count p c))
            Stall.all))
  in
  checkb
    (Printf.sprintf "memory+dependency dominate (%d of %d: %s)" mem
       r.Soc.cycles dump)
    true
    (2 * mem > r.Soc.cycles)

(* Roll-up consistency: block and instruction roll-ups never exceed the
   per-cause totals (cycles booked without a culprit carry no row). *)
let test_rollup_consistency () =
  let inst = W.Spmv.instance ~seed:17 ~rows:96 ~cols:96 ~per_row:5 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous ~profile:true Mosaic.Presets.xeon_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let p = r.Soc.profiles.(0) in
  Array.iter
    (fun cause ->
      let by_bb = ref 0 and by_instr = ref 0 in
      for bid = 0 to Profile.nblocks p - 1 do
        by_bb := !by_bb + Profile.bb_count p ~bid cause
      done;
      for iid = 0 to Profile.ninstrs p - 1 do
        by_instr := !by_instr + Profile.instr_count p ~iid cause
      done;
      let total = Profile.count p cause in
      checkb
        (Printf.sprintf "bb roll-up of %s bounded (%d <= %d)"
           (Stall.name cause) !by_bb total)
        true (!by_bb <= total);
      checki
        (Printf.sprintf "bb and instr roll-ups of %s agree" (Stall.name cause))
        !by_bb !by_instr)
    Stall.all

let suite =
  [
    ( "tile.profile",
      [
        Alcotest.test_case "micro workloads" `Quick test_micro_workloads;
        Alcotest.test_case "xeon preset" `Quick test_xeon_preset;
        Alcotest.test_case "DAE pipeline" `Quick test_dae_pipeline;
        Alcotest.test_case "mixed clock dividers" `Quick test_clock_dividers;
        Alcotest.test_case "metrics mirror" `Quick test_metrics_mirror;
        Alcotest.test_case "pointer chase is memory bound" `Quick
          test_pointer_chase_is_memory_bound;
        Alcotest.test_case "roll-up consistency" `Quick test_rollup_consistency;
      ] );
  ]
