(* Tests for the mosaic_util substrate. *)

open Mosaic_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* --- Pqueue --- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, x) -> Pqueue.add q ~prio:p x) [ (5, "e"); (1, "a"); (3, "c") ];
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair int string))) "pop1" (Some (1, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop2" (Some (3, "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop3" (Some (5, "e")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun x -> Pqueue.add q ~prio:7 x) [ "first"; "second"; "third" ];
  let order = List.filter_map (fun () -> Option.map snd (Pqueue.pop q)) [ (); (); () ] in
  Alcotest.(check (list string)) "fifo on equal priority"
    [ "first"; "second"; "third" ] order

let test_pqueue_pop_until () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.add q ~prio:p p) [ 10; 2; 7; 4; 20 ];
  let popped = List.map fst (Pqueue.pop_until q ~prio:7) in
  Alcotest.(check (list int)) "popped <= 7" [ 2; 4; 7 ] popped;
  check "remaining" 2 (Pqueue.length q)

let test_pqueue_grows () =
  let q = Pqueue.create () in
  for i = 99 downto 0 do
    Pqueue.add q ~prio:i i
  done;
  check "length" 100 (Pqueue.length q);
  let rec drain last =
    match Pqueue.pop q with
    | None -> ()
    | Some (p, _) ->
        checkb "sorted" true (p >= last);
        drain p
  in
  drain (-1)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q ~prio:1 ();
  Pqueue.clear q;
  checkb "empty after clear" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:100
    QCheck.(list int)
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q ~prio:p p) prios;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* --- Bounded_queue --- *)

let test_bq_capacity () =
  let q = Bounded_queue.create ~capacity:2 () in
  checkb "push1" true (Bounded_queue.push q 1);
  checkb "push2" true (Bounded_queue.push q 2);
  checkb "push3 rejected" false (Bounded_queue.push q 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Bounded_queue.pop q);
  checkb "room again" true (Bounded_queue.push q 3);
  Alcotest.(check (list int)) "contents" [ 2; 3 ] (Bounded_queue.to_list q)

let test_bq_unbounded () =
  let q = Bounded_queue.create () in
  for i = 0 to 999 do
    checkb "push" true (Bounded_queue.push q i)
  done;
  check "length" 1000 (Bounded_queue.length q);
  checkb "never full" false (Bounded_queue.is_full q)

let test_bq_fold_iter () =
  let q = Bounded_queue.create () in
  List.iter (fun x -> ignore (Bounded_queue.push q x)) [ 1; 2; 3 ];
  check "fold sum" 6 (Bounded_queue.fold ( + ) 0 q);
  let seen = ref [] in
  Bounded_queue.iter (fun x -> seen := x :: !seen) q;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !seen

let test_bq_invalid () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Bounded_queue.create: negative capacity") (fun () ->
      ignore (Bounded_queue.create ~capacity:(-1) ()))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 0 to 99 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seeds differ" false (Rng.next a = Rng.next b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 0 to 999 do
    let x = Rng.int r 13 in
    checkb "in range" true (x >= 0 && x < 13)
  done

let test_rng_int_invalid () =
  let r = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_unit_float () =
  let r = Rng.create 11 in
  for _ = 0 to 999 do
    let x = Rng.unit_float r in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_gaussian_moments () =
  let r = Rng.create 5 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  checkb "mean near 0" true (Float.abs mean < 0.05);
  let var = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs /. float_of_int n in
  checkb "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

(* --- Stats --- *)

let test_stats_mean () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  checkf "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive input") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

(* The documented edge-case contract: empty -> 0.0, singleton -> the
   element, for every aggregator that has a neutral value. *)
let test_stats_edge_cases () =
  checkf "geomean empty" 0.0 (Stats.geomean []);
  checkf "geomean singleton" 7.5 (Stats.geomean [ 7.5 ]);
  checkf "mean singleton" 7.5 (Stats.mean [ 7.5 ]);
  checkf "stddev singleton" 0.0 (Stats.stddev [ 7.5 ]);
  checkf "percentile empty" 0.0 (Stats.percentile 50.0 []);
  checkf "percentile singleton p0" 3.0 (Stats.percentile 0.0 [ 3.0 ]);
  checkf "percentile singleton p100" 3.0 (Stats.percentile 100.0 [ 3.0 ]);
  Alcotest.check_raises "p out of range even when empty"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 101.0 []))

let test_stats_stddev () =
  checkf "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  checkf "simple" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "p0" 1.0 (Stats.percentile 0.0 xs);
  checkf "p50" 3.0 (Stats.percentile 50.0 xs);
  checkf "p100" 5.0 (Stats.percentile 100.0 xs);
  checkf "p25" 2.0 (Stats.percentile 25.0 xs)

let test_stats_speedup () =
  checkf "speedup" 4.0 (Stats.speedup ~baseline:8.0 2.0);
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Stats.ratio: zero denominator") (fun () ->
      ignore (Stats.ratio 1.0 0.0))

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile lies within [min,max]" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range 0.0 100.0)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      v >= Stats.min xs -. 1e-9 && v <= Stats.max xs +. 1e-9)

(* --- Int_vec --- *)

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  check "length" 100 (Int_vec.length v);
  check "get" 81 (Int_vec.get v 9);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Int_vec.get: out of bounds")
    (fun () -> ignore (Int_vec.get v 100));
  let arr = Int_vec.to_array v in
  check "array length" 100 (Array.length arr);
  check "array content" 9801 arr.(99);
  Int_vec.clear v;
  check "cleared" 0 (Int_vec.length v)

(* --- Int_table --- *)

let test_int_table_basic () =
  let t = Int_table.create () in
  check "empty" 0 (Int_table.length t);
  Int_table.set t 5 50;
  Int_table.set t 9 90;
  check "find hit" 50 (Int_table.find t 5 ~default:(-1));
  check "find miss" (-1) (Int_table.find t 6 ~default:(-1));
  checkb "mem" true (Int_table.mem t 9);
  Int_table.set t 5 55;
  check "replace" 55 (Int_table.find t 5 ~default:(-1));
  check "length after replace" 2 (Int_table.length t);
  check "add fresh" 3 (Int_table.add t 7 3);
  check "add existing" 58 (Int_table.add t 5 3);
  Int_table.remove t 5;
  checkb "removed" false (Int_table.mem t 5);
  check "length after remove" 2 (Int_table.length t);
  (* Removing an absent key is a no-op. *)
  Int_table.remove t 5;
  check "idempotent remove" 2 (Int_table.length t)

let test_int_table_slots () =
  let t = Int_table.create () in
  Int_table.set t 42 1;
  let s = Int_table.probe t 42 in
  checkb "slot found" true (s >= 0);
  check "value_at" 1 (Int_table.value_at t s);
  Int_table.set_at t s 2;
  check "set_at visible" 2 (Int_table.find t 42 ~default:0);
  check "absent probe" (-1) (Int_table.probe t 43)

let test_int_table_growth () =
  let t = Int_table.create ~initial_capacity:8 () in
  for i = 0 to 999 do
    Int_table.set t (i * 17) i
  done;
  check "length" 1000 (Int_table.length t);
  for i = 0 to 999 do
    check "survives growth" i (Int_table.find t (i * 17) ~default:(-1))
  done

let test_int_table_reserved_keys () =
  let t = Int_table.create () in
  Alcotest.check_raises "min_int"
    (Invalid_argument "Int_table: key out of supported range") (fun () ->
      Int_table.set t min_int 0);
  Alcotest.check_raises "min_int+1"
    (Invalid_argument "Int_table: key out of supported range") (fun () ->
      ignore (Int_table.mem t (min_int + 1)))

(* Model check against Hashtbl: random insert/remove/add streams must leave
   both maps with identical contents (compared via sorted bindings, so
   iteration order never matters). Keys are drawn from a small range to
   force collisions, tombstone reuse, and rehashes with deletions. *)
let prop_int_table_model =
  let op =
    QCheck.(
      oneof
        [
          map (fun (k, v) -> `Set (k, v)) (pair (int_range 0 40) small_int);
          map (fun k -> `Remove k) (int_range 0 40);
          map (fun (k, d) -> `Add (k, d)) (pair (int_range 0 40) small_int);
        ])
  in
  QCheck.Test.make ~name:"int_table agrees with Hashtbl" ~count:500
    QCheck.(list op)
    (fun ops ->
      let t = Int_table.create ~initial_capacity:8 () in
      let h = Hashtbl.create 8 in
      List.iter
        (fun op ->
          match op with
          | `Set (k, v) ->
              Int_table.set t k v;
              Hashtbl.replace h k v
          | `Remove k ->
              Int_table.remove t k;
              Hashtbl.remove h k
          | `Add (k, d) ->
              let model =
                (match Hashtbl.find_opt h k with None -> 0 | Some v -> v) + d
              in
              Hashtbl.replace h k model;
              if Int_table.add t k d <> model then
                QCheck.Test.fail_report "add returned a stale sum")
        ops;
      (* Also exercise the read APIs on every key ever touched. *)
      let agree k =
        Int_table.mem t k = Hashtbl.mem h k
        && Int_table.find t k ~default:(min_int + 2)
           = (match Hashtbl.find_opt h k with
             | None -> min_int + 2
             | Some v -> v)
      in
      let all_agree = List.for_all agree (List.init 41 Fun.id) in
      let bindings m =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [])
      in
      let table_bindings =
        List.sort compare
          (Int_table.fold (fun k v acc -> (k, v) :: acc) t [])
      in
      all_agree
      && Int_table.length t = Hashtbl.length h
      && table_bindings = bindings h)

(* --- Int_heap --- *)

let test_int_heap_order () =
  let h = Int_heap.create () in
  List.iter
    (fun (p, v) -> Int_heap.push h ~prio:p v)
    [ (9, 900); (2, 200); (5, 500); (1, 100) ];
  check "min prio" 1 (Int_heap.min_prio h);
  check "min value" 100 (Int_heap.min_value h);
  Int_heap.drop_min h;
  check "next min" 2 (Int_heap.min_prio h);
  check "length" 3 (Int_heap.length h);
  Int_heap.clear h;
  checkb "cleared" true (Int_heap.is_empty h)

let prop_int_heap_sorted =
  QCheck.Test.make ~name:"int_heap drains in priority order" ~count:200
    QCheck.(list int)
    (fun prios ->
      let h = Int_heap.create () in
      List.iteri (fun i p -> Int_heap.push h ~prio:p i) prios;
      let rec drain acc =
        if Int_heap.is_empty h then List.rev acc
        else begin
          let p = Int_heap.min_prio h in
          Int_heap.drop_min h;
          drain (p :: acc)
        end
      in
      drain [] = List.sort compare prios)

(* --- Domain_pool --- *)

let test_domain_pool_ordering () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  let serial = Domain_pool.run ~jobs:1 tasks in
  let par = Domain_pool.run ~jobs:4 tasks in
  Alcotest.(check (array int)) "parallel = serial" serial par;
  Alcotest.(check (array int)) "input order" (Array.init 37 (fun i -> i * i)) par

let test_domain_pool_more_jobs_than_tasks () =
  let out = Domain_pool.map ~jobs:8 (fun x -> x + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "jobs > tasks" [| 2; 3; 4 |] out

let test_domain_pool_exception () =
  Alcotest.check_raises "task exception resurfaces" (Failure "task 2")
    (fun () ->
      ignore
        (Domain_pool.run ~jobs:4
           (Array.init 8 (fun i () ->
                if i = 2 then failwith "task 2" else i))))

(* --- Table --- *)

let test_table_render () =
  let out =
    Table.render
      ~columns:[ Table.column ~align:Table.Left "name"; Table.column "x" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  checkb "has header" true (String.length out > 0);
  checkb "mentions bb" true
    (String.split_on_char '\n' out |> List.exists (fun l ->
         String.length l >= 2 && String.sub l 0 2 = "bb"))

let test_table_ragged_rows () =
  (* Short rows are padded, long rows truncated; must not raise. *)
  let out =
    Table.render
      ~columns:[ Table.column "a"; Table.column "b" ]
      [ [ "1" ]; [ "1"; "2"; "3" ] ]
  in
  checkb "renders" true (String.length out > 0)

let test_table_cells () =
  Alcotest.(check string) "fcell" "3.14" (Table.fcell 3.14159);
  Alcotest.(check string) "fcell decimals" "3.1" (Table.fcell ~decimals:1 3.14159);
  Alcotest.(check string) "icell" "42" (Table.icell 42)

let suite =
  [
    ( "util.pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_order;
        Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "pop_until" `Quick test_pqueue_pop_until;
        Alcotest.test_case "growth keeps order" `Quick test_pqueue_grows;
        Alcotest.test_case "clear" `Quick test_pqueue_clear;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
      ] );
    ( "util.bounded_queue",
      [
        Alcotest.test_case "capacity backpressure" `Quick test_bq_capacity;
        Alcotest.test_case "unbounded" `Quick test_bq_unbounded;
        Alcotest.test_case "fold and iter" `Quick test_bq_fold_iter;
        Alcotest.test_case "invalid capacity" `Quick test_bq_invalid;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
        Alcotest.test_case "unit_float range" `Quick test_rng_unit_float;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "empty/singleton edge cases" `Quick
          test_stats_edge_cases;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "speedup/ratio" `Quick test_stats_speedup;
        QCheck_alcotest.to_alcotest prop_percentile_within_range;
      ] );
    ("util.int_vec", [ Alcotest.test_case "push/get/clear" `Quick test_int_vec ]);
    ( "util.int_table",
      [
        Alcotest.test_case "set/find/add/remove" `Quick test_int_table_basic;
        Alcotest.test_case "slot access" `Quick test_int_table_slots;
        Alcotest.test_case "growth keeps entries" `Quick test_int_table_growth;
        Alcotest.test_case "reserved keys rejected" `Quick
          test_int_table_reserved_keys;
        QCheck_alcotest.to_alcotest prop_int_table_model;
      ] );
    ( "util.int_heap",
      [
        Alcotest.test_case "min ordering" `Quick test_int_heap_order;
        QCheck_alcotest.to_alcotest prop_int_heap_sorted;
      ] );
    ( "util.domain_pool",
      [
        Alcotest.test_case "deterministic ordering" `Quick
          test_domain_pool_ordering;
        Alcotest.test_case "more jobs than tasks" `Quick
          test_domain_pool_more_jobs_than_tasks;
        Alcotest.test_case "exception propagation" `Quick
          test_domain_pool_exception;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        Alcotest.test_case "cells" `Quick test_table_cells;
      ] );
  ]
