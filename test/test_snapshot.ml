(* Snapshot/resume differential tests: checkpointing a run at some cycle
   and resuming a fresh run from the snapshot must reproduce the straight
   run bit-for-bit — cycles, stepped cycles, instrs, per-tile stats, stall
   attribution, memory totals. The matrix covers cycle skipping on/off,
   profiled/plain, serial and sharded capture, and both system presets;
   the container tests check that corrupt, truncated or mislabeled
   snapshot files fail loudly instead of resuming garbage. *)

module Soc = Mosaic.Soc
module Snapshot = Mosaic.Snapshot
module Sample = Mosaic.Sample
module Interleaver = Mosaic.Interleaver
module Profile = Mosaic_tile.Profile
module Core_tile = Mosaic_tile.Core_tile
module Hierarchy = Mosaic_memory.Hierarchy
module Dram = Mosaic_memory.Dram
module Branch = Mosaic_tile.Branch
module TC = Mosaic_tile.Tile_config
module W = Mosaic_workloads

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let assert_same name (a : Soc.result) (b : Soc.result) =
  let ck what = checki (Printf.sprintf "%s: %s" name what) in
  ck "cycles" a.Soc.cycles b.Soc.cycles;
  ck "stepped cycles" a.Soc.stepped_cycles b.Soc.stepped_cycles;
  ck "instrs" a.Soc.instrs b.Soc.instrs;
  ck "accel invocations" a.Soc.accel_invocations b.Soc.accel_invocations;
  Array.iteri
    (fun i (x : Core_tile.stats) ->
      let y = b.Soc.tile_stats.(i) in
      let ckt what = ck (Printf.sprintf "tile %d %s" i what) in
      ckt "instrs" x.Core_tile.completed_instrs y.Core_tile.completed_instrs;
      ckt "finish cycle" x.Core_tile.finish_cycle y.Core_tile.finish_cycle;
      ckt "dbbs" x.Core_tile.dbbs_launched y.Core_tile.dbbs_launched;
      ckt "mem accesses" x.Core_tile.mem_accesses y.Core_tile.mem_accesses;
      ckt "predictions" x.Core_tile.branch.Branch.predictions
        y.Core_tile.branch.Branch.predictions;
      ckt "mispredictions" x.Core_tile.branch.Branch.mispredictions
        y.Core_tile.branch.Branch.mispredictions;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: tile %d energy" name i)
        x.Core_tile.energy_pj y.Core_tile.energy_pj)
    a.Soc.tile_stats;
  ck "l1 accesses" a.Soc.mem_totals.Hierarchy.l1_accesses
    b.Soc.mem_totals.Hierarchy.l1_accesses;
  ck "llc accesses" a.Soc.mem_totals.Hierarchy.llc_accesses
    b.Soc.mem_totals.Hierarchy.llc_accesses;
  ck "dram lines" a.Soc.mem_totals.Hierarchy.dram_lines
    b.Soc.mem_totals.Hierarchy.dram_lines;
  ck "dram reads" a.Soc.dram.Dram.reads b.Soc.dram.Dram.reads;
  ck "dram writes" a.Soc.dram.Dram.writes b.Soc.dram.Dram.writes;
  ck "sends" a.Soc.interleaver.Interleaver.sends
    b.Soc.interleaver.Interleaver.sends;
  ck "recvs" a.Soc.interleaver.Interleaver.recvs
    b.Soc.interleaver.Interleaver.recvs;
  Array.iteri
    (fun t p ->
      Array.iter
        (fun cause ->
          ck
            (Printf.sprintf "tile %d stall %s" t (Mosaic_obs.Stall.name cause))
            (Profile.count p cause)
            (Profile.count b.Soc.profiles.(t) cause))
        Mosaic_obs.Stall.all)
    a.Soc.profiles

(* Straight run, checkpointing run (same observables), resumed run (same
   observables again), capture at [frac] of the straight run's cycles. *)
let round_trip ?(shards = 1) ?(cycle_skip = true) ?(profile = false)
    ?(marshal = false) ~cfg ~tile_config name inst ~ntiles ~frac =
  let trace = W.Runner.trace inst ~ntiles in
  let cfg = { cfg with Soc.cycle_skip; shards } in
  let run ?checkpoint_at ?on_checkpoint ?resume () =
    Soc.run_homogeneous ~profile ?checkpoint_at ?on_checkpoint ?resume cfg
      ~program:inst.W.Runner.program ~trace ~tile_config
  in
  let straight = run () in
  let at = int_of_float (frac *. float_of_int straight.Soc.cycles) in
  let snap = ref None in
  let capturing =
    run ~checkpoint_at:at ~on_checkpoint:(fun s -> snap := Some s) ()
  in
  assert_same (name ^ " capturing") straight capturing;
  let s =
    match !snap with
    | Some s -> s
    | None -> Alcotest.failf "%s: no snapshot captured at cycle %d" name at
  in
  checkb (name ^ ": captured at or after request") true (Snapshot.cycle s >= at);
  let s = if marshal then Snapshot.of_bytes (Snapshot.to_bytes s) else s in
  let resumed = run ~resume:s () in
  assert_same (name ^ " resumed") straight resumed

let spmv () = W.Spmv.instance ~seed:17 ~rows:96 ~cols:96 ~per_row:5 ()

(* skip/no-skip x profiled/plain on the xeon preset, serial capture. *)
let test_matrix_serial () =
  List.iter
    (fun (cycle_skip, profile) ->
      round_trip ~cycle_skip ~profile ~cfg:Mosaic.Presets.xeon_soc
        ~tile_config:TC.out_of_order
        (Printf.sprintf "spmv/xeon skip:%b profile:%b" cycle_skip profile)
        (spmv ()) ~ntiles:2 ~frac:0.5)
    [ (true, true); (true, false); (false, true); (false, false) ]

(* Sharded capture: the snapshot taken under shards:2 resumes (serially
   and sharded) to the same end state. *)
let test_matrix_sharded () =
  List.iter
    (fun (shards, profile) ->
      round_trip ~shards ~profile ~cfg:Mosaic.Presets.xeon_soc
        ~tile_config:TC.out_of_order
        (Printf.sprintf "spmv/xeon shards:%d profile:%b" shards profile)
        (spmv ()) ~ntiles:2 ~frac:0.4)
    [ (2, false); (2, true) ]

(* DAE preset, accelerator tile in flight, marshal round trip included. *)
let test_dae_preset () =
  round_trip ~profile:true ~marshal:true ~cfg:Mosaic.Presets.dae_soc
    ~tile_config:TC.out_of_order "sgemm-accel/dae"
    (W.Sgemm.instance ~accel:true ~m:24 ~n:24 ~k:24 ())
    ~ntiles:1 ~frac:0.6;
  round_trip ~cfg:Mosaic.Presets.dae_soc ~tile_config:TC.in_order
    "pointer_chase/dae"
    (W.Micro.pointer_chase ~seed:3 ~nodes:128 ~steps:512 ())
    ~ntiles:1 ~frac:0.3

(* A checkpoint requested past the end of the run captures the final
   state; resuming it (serially or sharded) adds zero stepped cycles. *)
let test_checkpoint_past_end () =
  let inst = spmv () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let run ?checkpoint_at ?on_checkpoint ?resume ?(shards = 1) () =
    Soc.run_homogeneous ?checkpoint_at ?on_checkpoint ?resume
      { Mosaic.Presets.xeon_soc with Soc.shards }
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let straight = run () in
  let snap = ref None in
  let _ =
    run
      ~checkpoint_at:(straight.Soc.cycles + 1000)
      ~on_checkpoint:(fun s -> snap := Some s)
      ()
  in
  let s = Option.get !snap in
  checki "end snapshot cycle" straight.Soc.cycles (Snapshot.cycle s);
  List.iter
    (fun shards ->
      let resumed = run ~resume:s ~shards () in
      assert_same
        (Printf.sprintf "resume at end shards:%d" shards)
        straight resumed)
    [ 1; 2 ]

(* Resume validation: a snapshot only resumes into the workload, trace and
   profiling mode it was captured from. *)
let test_resume_validation () =
  let inst = spmv () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let run ?resume ?(profile = false) ?(trace = trace) () =
    Soc.run_homogeneous ~profile ?resume Mosaic.Presets.xeon_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let snap = ref None in
  let straight = run () in
  let _ =
    run () |> ignore;
    Soc.run_homogeneous
      ~checkpoint_at:(straight.Soc.cycles / 2)
      ~on_checkpoint:(fun s -> snap := Some s)
      Mosaic.Presets.xeon_soc ~program:inst.W.Runner.program ~trace
      ~tile_config:TC.out_of_order
  in
  let s = Option.get !snap in
  let expect_invalid what f =
    match f () with
    | (_ : Soc.result) -> Alcotest.failf "%s: resume was accepted" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "profiling mode mismatch" (fun () ->
      run ~resume:s ~profile:true ());
  expect_invalid "different trace" (fun () ->
      let other =
        W.Runner.trace (W.Spmv.instance ~seed:17 ~rows:96 ~cols:96 ~per_row:4 ()) ~ntiles:2
      in
      run ~resume:s ~trace:other ());
  expect_invalid "tile count mismatch" (fun () ->
      let one = W.Runner.trace inst ~ntiles:1 in
      run ~resume:s ~trace:one ())

(* The disk container: save/load round trip, and loud rejection of
   truncation, payload corruption, and a bad magic. *)
let test_container () =
  let inst = W.Micro.stream ~seed:5 ~elems:512 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let snap = ref None in
  let straight =
    Soc.run_homogeneous ~checkpoint_at:50
      ~on_checkpoint:(fun s -> snap := Some s)
      Mosaic.Presets.dae_soc ~program:inst.W.Runner.program ~trace
      ~tile_config:TC.in_order
  in
  let s = Option.get !snap in
  let file = Filename.temp_file "mosaic-snap" ".msnp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Snapshot.save s file;
      let reloaded = Snapshot.load file in
      checki "reloaded cycle" (Snapshot.cycle s) (Snapshot.cycle reloaded);
      let resumed =
        Soc.run_homogeneous ~resume:reloaded Mosaic.Presets.dae_soc
          ~program:inst.W.Runner.program ~trace ~tile_config:TC.in_order
      in
      assert_same "disk round trip" straight resumed;
      let bytes =
        In_channel.with_open_bin file (fun ic ->
            Bytes.of_string (In_channel.input_all ic))
      in
      let expect_format what b =
        match Snapshot.of_bytes b with
        | (_ : Snapshot.t) -> Alcotest.failf "%s: accepted" what
        | exception Snapshot.Format_error _ -> ()
      in
      expect_format "truncated" (Bytes.sub bytes 0 (Bytes.length bytes / 2));
      expect_format "empty" Bytes.empty;
      let corrupt = Bytes.copy bytes in
      let mid = (Bytes.length corrupt / 2) + 3 in
      Bytes.set corrupt mid
        (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x5a));
      expect_format "corrupted payload" corrupt;
      let bad_magic = Bytes.copy bytes in
      Bytes.set bad_magic 0 'X';
      expect_format "bad magic" bad_magic;
      let bad_version = Bytes.copy bytes in
      Bytes.set bad_version 4 '\xff';
      expect_format "unsupported version" bad_version)

(* Interval sampling sanity: the sampled run completes every instruction,
   reports a plausible estimate (deterministically), and rejects malformed
   specs. Accuracy at scale is measured in the bench suite against the
   exact oracle (speed.sample.* in BENCH_speed.json, guarded by
   tools/check_sample). *)
let test_sampling () =
  (* Large enough that the cold-start transient is a small fraction of the
     run — sampling is an asymptotic technique; tiny runs are all
     transient. *)
  let inst = W.Spmv.instance ~seed:17 ~rows:512 ~cols:512 ~per_row:8 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let exact =
    Soc.run_homogeneous Mosaic.Presets.xeon_soc ~program:inst.W.Runner.program
      ~trace ~tile_config:TC.out_of_order
  in
  let total = Mosaic_trace.Trace.total_dyn_instrs trace in
  let spec = Sample.auto ~total_instrs:total in
  let sampled =
    Soc.run_homogeneous ~sample:spec Mosaic.Presets.xeon_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  checki "sampled run commits every instruction" exact.Soc.instrs
    sampled.Soc.instrs;
  let rep =
    match sampled.Soc.sample with
    | Some r -> r
    | None -> Alcotest.fail "sampled run carries no report"
  in
  checkb "estimate is positive" true (rep.Sample.est_cycles > 0);
  let err =
    Float.abs (float_of_int (rep.Sample.est_cycles - exact.Soc.cycles))
    /. float_of_int exact.Soc.cycles
  in
  checkb
    (Printf.sprintf "estimate within 25%% of exact (est %d, exact %d)"
       rep.Sample.est_cycles exact.Soc.cycles)
    true (err <= 0.25);
  checkb "detailed portion is a strict subset" true
    (rep.Sample.detailed_instrs < total && rep.Sample.ff_instrs > 0);
  let expect_invalid spec =
    match Sample.validate_spec spec with
    | () -> Alcotest.fail "bad spec accepted"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { Sample.period = 0; interval = 0; warmup = 0 };
  expect_invalid { Sample.period = 100; interval = 100; warmup = 0 };
  expect_invalid { Sample.period = 100; interval = 0; warmup = 10 };
  expect_invalid { Sample.period = 100; interval = 50; warmup = -1 };
  match
    Soc.run_homogeneous ~sample:spec ~checkpoint_at:10 Mosaic.Presets.xeon_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  with
  | (_ : Soc.result) -> Alcotest.fail "sampling combined with checkpoints"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "snapshot",
      [
        Alcotest.test_case "round trip: skip x profile matrix (serial)" `Quick
          test_matrix_serial;
        Alcotest.test_case "round trip: sharded capture" `Quick
          test_matrix_sharded;
        Alcotest.test_case "round trip: dae preset + accel + marshal" `Quick
          test_dae_preset;
        Alcotest.test_case "checkpoint past end of run" `Quick
          test_checkpoint_past_end;
        Alcotest.test_case "resume validation rejects mismatches" `Quick
          test_resume_validation;
        Alcotest.test_case "container rejects corrupt/truncated" `Quick
          test_container;
        Alcotest.test_case "interval sampling sanity" `Quick test_sampling;
      ] );
  ]
