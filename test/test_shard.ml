(* Differential coverage for the domain-sharded scheduler.

   The sharded scheduler's contract is total: not just cycles, but every
   deterministic output — stepped cycles, instruction counts, stall
   attribution, and the whole metrics registry (caches, DRAM,
   interleaver, per-tile counters) — must be bit-identical to the serial
   sweep for any program, any shard count, with and without cycle
   skipping, profiled or plain. Comparisons reuse
   [Test_batch.fingerprint], which serializes the registry minus
   host-time rows, so a divergence anywhere in shared state fails loudly
   rather than hiding behind a matching cycle count.

   The [Shard_sync] kernel is also tested directly: global ordering of
   cross-shard operations, and prompt failure propagation. *)

module Ir = Mosaic_ir
module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config
module Sync = Mosaic_util.Shard_sync

let fingerprint = Test_batch.fingerprint

(* --- Shard_sync kernel ------------------------------------------------ *)

(* Three shards of two "tiles" each perform an ordered op per tile per
   sweep, mimicking the scheduler's publish discipline. The ops append
   their points to a plain shared list — safe exactly because wait_order
   serializes them — and the trace must come out globally ascending. *)
let test_sync_global_order () =
  let nshards = 3 and tiles_per = 2 and sweeps = 25 in
  let sync = Sync.create ~nshards () in
  let log = ref [] in
  Sync.run sync (fun k ->
      let lo = k * tiles_per in
      for seq = 0 to sweeps - 1 do
        for t = lo to lo + tiles_per - 1 do
          Sync.publish sync ~shard:k ~point:(Sync.point ~seq ~tile:t);
          let point = Sync.point ~seq ~tile:t in
          Sync.wait_order sync ~shard:k ~point;
          log := point :: !log
        done;
        Sync.publish sync ~shard:k ~point:(Sync.point ~seq:(seq + 1) ~tile:lo);
        Sync.barrier sync ~shard:k ~reduce:(fun () -> ())
      done);
  let trace = List.rev !log in
  Alcotest.(check int) "every op ran" (nshards * tiles_per * sweeps)
    (List.length trace);
  Alcotest.(check bool) "globally ascending" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length trace - 1) trace)
       (List.tl trace))

let test_sync_failure_propagates () =
  let sync = Sync.create ~nshards:3 () in
  let raised =
    try
      Sync.run sync (fun k ->
          for seq = 0 to 999 do
            if k = 1 && seq = 3 then failwith "boom";
            Sync.publish sync ~shard:k
              ~point:(Sync.point ~seq:(seq + 1) ~tile:(k * 2));
            Sync.barrier sync ~shard:k ~reduce:(fun () -> ())
          done);
      "no exception"
    with Failure msg -> msg
  in
  Alcotest.(check string) "original failure re-raised" "boom" raised

let test_sync_reduce_failure () =
  let sync = Sync.create ~nshards:2 () in
  let raised =
    try
      Sync.run sync (fun k ->
          for seq = 0 to 999 do
            Sync.publish sync ~shard:k
              ~point:(Sync.point ~seq:(seq + 1) ~tile:k);
            Sync.barrier sync ~shard:k ~reduce:(fun () ->
                if seq = 5 then failwith "reduce boom")
          done);
      "no exception"
    with Failure msg -> msg
  in
  Alcotest.(check string) "reduce failure re-raised" "reduce boom" raised

(* --- Sharded SoC vs serial ------------------------------------------- *)

let run_gen_case ~shards ~cycle_skip ~profile (case : Ir.Gen.case) trace =
  Soc.run_homogeneous ~profile
    { Soc.default_config with Soc.cycle_skip; shards }
    ~program:case.program ~trace
    ~tile_config:(if case.seed mod 2 = 0 then TC.out_of_order else TC.in_order)

(* shards:{1,2,ntiles} x skip/no-skip x profiled/plain over generated
   programs: full registry fingerprints identical within each
   (skip, profile) mode. *)
let prop_gen_differential =
  QCheck.Test.make ~name:"sharded fingerprints identical on generated programs"
    ~count:10
    (QCheck.make QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let case = Ir.Gen.generate ~seed ~size:30 () in
      let trace =
        Mosaic_trace.Interp.run
          (Mosaic_trace.Interp.create case.program ~kernel:case.kernel
             ~ntiles:case.ntiles ~args:case.args)
      in
      let shard_counts =
        List.sort_uniq compare [ 2; case.ntiles ]
        |> List.filter (fun s -> s > 1)
      in
      List.iter
        (fun (cycle_skip, profile) ->
          let reference =
            fingerprint
              (run_gen_case ~shards:1 ~cycle_skip ~profile case trace)
          in
          List.iter
            (fun shards ->
              let got =
                fingerprint
                  (run_gen_case ~shards ~cycle_skip ~profile case trace)
              in
              if got <> reference then
                QCheck.Test.fail_reportf
                  "seed %d: shards:%d diverges (skip=%b profile=%b)" seed
                  shards cycle_skip profile)
            shard_counts)
        [ (true, true); (true, false); (false, true) ];
      true)

(* Heterogeneous DAE pairs: cross-shard interleaver traffic (terminal
   loads, store drains) under every shard count that divides the system
   differently, profiled so attribution is covered too. *)
let test_dae_sharded () =
  let inst, _ = W.Projection.dae_instance ~n_left:64 ~n_right:128 ~degree:4 () in
  let access = inst.W.Runner.kernel ^ "_access"
  and execute = inst.W.Runner.kernel ^ "_execute" in
  let pairs = 2 in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then access else execute), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then access else execute);
          tile_config = TC.in_order;
        })
  in
  let run shards =
    fingerprint
      (Soc.run ~profile:true
         { Presets.dae_soc with Soc.shards }
         ~program:inst.W.Runner.program ~trace ~tiles)
  in
  let reference = run 1 in
  List.iter
    (fun shards ->
      Alcotest.(check string)
        (Printf.sprintf "dae shards:%d" shards)
        reference (run shards))
    [ 2; 3; 4; 8 (* clamps to ntiles *) ]

(* A multi-tile homogeneous run on the xeon preset: L1 prefetchers force
   every access onto the ordered path. *)
let test_prefetch_config_sharded () =
  let inst = W.Micro.stream ~seed:11 ~elems:2048 () in
  let trace = W.Runner.trace inst ~ntiles:3 in
  let run shards =
    fingerprint
      (Soc.run_homogeneous
         { Presets.xeon_soc with Soc.shards }
         ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order)
  in
  Alcotest.(check string) "xeon 3 tiles shards:3" (run 1) (run 3)

(* An enabled event sink forces the serial scheduler; results must be
   untouched and the event stream still deterministic. *)
let test_sink_forces_serial () =
  let inst = W.Micro.stream ~seed:7 ~elems:512 () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let run ~shards ~sink =
    Soc.run_homogeneous ~sink
      { Presets.dae_soc with Soc.shards }
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.in_order
  in
  let serial = run ~shards:1 ~sink:Mosaic_obs.Sink.null in
  let sink = Mosaic_obs.Sink.create () in
  let sharded_sink = run ~shards:4 ~sink in
  Alcotest.(check int) "cycles with sink" serial.Soc.cycles
    sharded_sink.Soc.cycles;
  Alcotest.(check bool) "events collected" true
    (Mosaic_obs.Sink.length sink > 0)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "sync: global op order" `Quick
          test_sync_global_order;
        Alcotest.test_case "sync: shard failure propagates" `Quick
          test_sync_failure_propagates;
        Alcotest.test_case "sync: reduce failure propagates" `Quick
          test_sync_reduce_failure;
        QCheck_alcotest.to_alcotest prop_gen_differential;
        Alcotest.test_case "dae pairs sharded = serial" `Quick
          test_dae_sharded;
        Alcotest.test_case "prefetching hierarchy sharded = serial" `Quick
          test_prefetch_config_sharded;
        Alcotest.test_case "enabled sink forces serial" `Quick
          test_sink_forces_serial;
      ] );
  ]
