(* Trace store tests: the binary container (qcheck round-trip over every
   field, loud rejection of corrupt/truncated/stale files) and the caching
   layers (disk hits bit-identical to fresh interpretation, the in-process
   memo interpreting each workload exactly once across run_batch domains). *)

open Mosaic_ir
module Trace = Mosaic_trace.Trace
module Store = Mosaic_trace.Store
module W = Mosaic_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int (Int64.of_int i)) int;
        map (fun f -> Value.Float f) float;
        (* exercise exact bit preservation on the specials *)
        oneofl
          [
            Value.Float Float.nan;
            Value.Float Float.infinity;
            Value.Float (-0.0);
            Value.Int Int64.min_int;
            Value.Int Int64.max_int;
          ];
      ])

(* Address streams mix ascending and random walks so zig-zag sees both
   signs of delta; empty arrays are common by construction. *)
let addr_stream_gen =
  QCheck.Gen.(
    sized_size (int_bound 40) (fun n ->
        map Array.of_list (list_size (return n) (int_bound 1_000_000))))

let tile_trace_gen tile =
  QCheck.Gen.(
    let* kernel = string_size ~gen:printable (int_bound 12) in
    let* bb_path =
      sized_size (int_bound 60) (fun n ->
          map Array.of_list (list_size (return n) (int_bound 50)))
    in
    let* mem_addrs =
      sized_size (int_bound 6) (fun n ->
          map Array.of_list (list_size (return n) addr_stream_gen))
    in
    let* accel_params =
      sized_size (int_bound 3) (fun n ->
          map Array.of_list
            (list_size (return n)
               (sized_size (int_bound 3) (fun m ->
                    map Array.of_list
                      (list_size (return m)
                         (sized_size (int_bound 4) (fun k ->
                              map Array.of_list
                                (list_size (return k) value_gen))))))))
    in
    let* send_dsts =
      sized_size (int_bound 3) (fun n ->
          map Array.of_list
            (list_size (return n)
               (sized_size (int_bound 10) (fun m ->
                    map Array.of_list (list_size (return m) (int_bound 7))))))
    in
    let* dyn_instrs = int_bound 100_000 in
    return
      {
        Trace.tile;
        kernel;
        bb_path;
        mem_addrs;
        accel_params;
        send_dsts;
        dyn_instrs;
      })

let trace_gen =
  QCheck.Gen.(
    let* ntiles = int_range 1 4 in
    let* tiles = map Array.of_list (flatten_l (List.init ntiles tile_trace_gen)) in
    let* kernel = string_size ~gen:printable (int_bound 16) in
    return { Trace.kernel; ntiles; tiles })

let trace_arb =
  QCheck.make ~print:(fun t -> Printf.sprintf "trace %S" t.Trace.kernel)
    trace_gen

(* ------------------------------------------------------------------ *)
(* Round-trip                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"trace container roundtrips (bytes)" ~count:200
    trace_arb (fun t ->
      let digest = "cafe1234" in
      let digest', t' = Trace.of_bytes (Trace.to_bytes ~digest t) in
      digest' = digest && Trace.equal t t')

let test_file_roundtrip () =
  (* A handcrafted hetero trace covering every field at once: empty
     streams, descending addresses (negative deltas), accel params with
     exact specials, send destinations. *)
  let t =
    {
      Trace.kernel = "dae-pair";
      ntiles = 2;
      tiles =
        [|
          {
            Trace.tile = 0;
            kernel = "access";
            bb_path = [| 0; 1; 1; 1; 2 |];
            mem_addrs = [| [| 4096; 64; 8; 1_000_000 |]; [||] |];
            accel_params = [| [||] |];
            send_dsts = [| [| 1; 1; 0 |]; [||] |];
            dyn_instrs = 42;
          };
          {
            Trace.tile = 1;
            kernel = "execute";
            bb_path = [||];
            mem_addrs = [||];
            accel_params =
              [|
                [|
                  [| Value.Int 7L; Value.Float Float.nan |];
                  [| Value.Float (-0.0) |];
                  [||];
                |];
              |];
            send_dsts = [||];
            dyn_instrs = 0;
          };
        |];
    }
  in
  let path = Filename.temp_file "mosaic" ".mstr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~digest:"feedbeef" t path;
      let digest, t' = Trace.load_with_digest path in
      checks "digest preserved" "feedbeef" digest;
      checkb "trace preserved exactly" true (Trace.equal t t');
      (* and the strict loader accepts the matching digest *)
      let t'' = Trace.load ~expect_digest:"feedbeef" path in
      checkb "strict load matches" true (Trace.equal t t''))

(* ------------------------------------------------------------------ *)
(* Corrupt / truncated / stale rejection                               *)
(* ------------------------------------------------------------------ *)

let expect_format_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Format_error" name
  | exception Trace.Format_error _ -> ()

let with_bytes_file bytes f =
  let path = Filename.temp_file "mosaic" ".mstr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
      f path)

let sample_trace () =
  {
    Trace.kernel = "k";
    ntiles = 1;
    tiles =
      [|
        {
          Trace.tile = 0;
          kernel = "k";
          bb_path = [| 0; 1; 2; 1; 2 |];
          mem_addrs = [| [| 8; 16; 24 |] |];
          accel_params = [| [||] |];
          send_dsts = [| [||] |];
          dyn_instrs = 9;
        };
      |];
  }

let test_load_rejects_garbage () =
  expect_format_error "empty" (fun () -> Trace.of_bytes Bytes.empty);
  with_bytes_file (Bytes.of_string "not a trace at all") (fun path ->
      expect_format_error "bad magic" (fun () -> Trace.load path))

let test_load_rejects_bad_version () =
  let bytes = Trace.to_bytes (sample_trace ()) in
  (* byte 4 is the (single-byte varint) format version *)
  Bytes.set bytes 4 '\099';
  with_bytes_file bytes (fun path ->
      expect_format_error "version" (fun () -> Trace.load path))

let test_load_rejects_truncation () =
  let bytes = Trace.to_bytes (sample_trace ()) in
  let cut = Bytes.sub bytes 0 (Bytes.length bytes - 7) in
  with_bytes_file cut (fun path ->
      expect_format_error "truncated" (fun () -> Trace.load path))

let test_load_rejects_bitflip () =
  let bytes = Trace.to_bytes (sample_trace ()) in
  let pos = Bytes.length bytes - 3 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x40));
  with_bytes_file bytes (fun path ->
      expect_format_error "bitflip" (fun () -> Trace.load path))

let test_load_rejects_stale_digest () =
  let bytes = Trace.to_bytes ~digest:"old-workload" (sample_trace ()) in
  with_bytes_file bytes (fun path ->
      expect_format_error "stale" (fun () ->
          Trace.load ~expect_digest:"new-workload" path);
      (* without an expectation the same file loads fine *)
      checkb "unchecked load ok" true
        (Trace.equal (sample_trace ()) (Trace.load path)))

(* ------------------------------------------------------------------ *)
(* Cache behaviour                                                     *)
(* ------------------------------------------------------------------ *)

let with_temp_cache f =
  let dir = Filename.temp_file "mosaic-cache" "" in
  Sys.remove dir;
  Store.set_cache_dir (`Dir dir);
  Store.reset ();
  Fun.protect
    ~finally:(fun () ->
      Store.set_cache_dir `Disabled;
      Store.reset ();
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let small_instance () = W.Spmv.instance ~rows:96 ~cols:96 ~per_row:4 ()

let source_name = function
  | Store.Interpreted -> "interpreted"
  | Store.Memo_hit -> "memo"
  | Store.Disk_hit -> "disk"

let test_cache_hit_bit_identity () =
  with_temp_cache (fun _dir ->
      let t1, i1 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:2 in
      checks "cold run interprets" "interpreted" (source_name i1.Store.source);
      let t2, i2 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:2 in
      checks "second fetch memo-hits" "memo" (source_name i2.Store.source);
      checkb "memo hit is the same trace" true (Trace.equal t1 t2);
      (* Drop the memo so the next fetch must go to disk. *)
      Store.reset ();
      let t3, i3 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:2 in
      checks "post-reset fetch disk-hits" "disk" (source_name i3.Store.source);
      checks "same digest throughout" i1.Store.digest i3.Store.digest;
      checkb "disk hit bit-identical" true
        (Trace.to_bytes ~digest:i1.Store.digest t1
        = Trace.to_bytes ~digest:i3.Store.digest t3);
      (* A different tile count is a different workload. *)
      let _, i4 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:1 in
      checkb "tile spec keys the digest" true
        (i4.Store.digest <> i1.Store.digest))

let test_stale_cache_file_regenerates () =
  with_temp_cache (fun dir ->
      let _, i1 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:1 in
      let _, i2 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:2 in
      (* Masquerade the ntiles:2 trace as the ntiles:1 entry: the digest
         recorded inside the file disagrees with the file name, so the
         store must treat it as a miss, not serve the wrong trace. *)
      let path d = Filename.concat dir (d ^ ".mstr") in
      Sys.remove (path i1.Store.digest);
      let data =
        In_channel.with_open_bin (path i2.Store.digest) In_channel.input_all
      in
      Out_channel.with_open_bin (path i1.Store.digest) (fun oc ->
          Out_channel.output_string oc data);
      Store.reset ();
      let t, i3 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:1 in
      checks "stale file treated as miss" "interpreted"
        (source_name i3.Store.source);
      checki "regenerated trace has 1 tile" 1 (Array.length t.Trace.tiles))

let test_memo_domain_safe_single_flight () =
  (* Disk off: only the in-process memo can dedup. Eight tasks across four
     domains all want the same workload; exactly one interpretation may
     happen, and everyone must get the identical trace. *)
  Store.set_cache_dir `Disabled;
  Store.reset ();
  Fun.protect
    ~finally:(fun () -> Store.reset ())
    (fun () ->
      let traces =
        W.Runner.run_batch ~jobs:4
          (List.init 8 (fun _ () ->
               W.Runner.trace_cached (small_instance ()) ~ntiles:1))
      in
      let s = Store.stats () in
      checki "interpreted exactly once" 1 s.Store.interpreted;
      checki "everyone else memo-hit" 7 s.Store.memo_hits;
      checki "no disk traffic" 0 s.Store.disk_hits;
      match traces with
      | first :: rest ->
          List.iteri
            (fun i t ->
              checkb
                (Printf.sprintf "trace %d identical" (i + 1))
                true (Trace.equal first t))
            rest
      | [] -> Alcotest.fail "no traces")

let test_different_datasets_different_digests () =
  (* Same program shape, different seeded dataset: the digest must differ
     because the dataset lives in interpreter memory, not the program. *)
  Store.set_cache_dir `Disabled;
  Store.reset ();
  Fun.protect
    ~finally:(fun () -> Store.reset ())
    (fun () ->
      let _, a =
        W.Runner.trace_cached_full
          (W.Spmv.instance ~seed:1 ~rows:64 ~cols:64 ~per_row:4 ())
          ~ntiles:1
      in
      let _, b =
        W.Runner.trace_cached_full
          (W.Spmv.instance ~seed:2 ~rows:64 ~cols:64 ~per_row:4 ())
          ~ntiles:1
      in
      checkb "seeded datasets key differently" true
        (a.Store.digest <> b.Store.digest);
      checki "both interpreted" 2 (Store.stats ()).Store.interpreted)

let test_gc_lru_pruning () =
  with_temp_cache (fun dir ->
      (* Three distinct entries; back-date their mtimes so LRU order is
         deterministic: ntiles:1 oldest, ntiles:4 newest. *)
      let infos =
        List.map
          (fun n ->
            let _, i =
              W.Runner.trace_cached_full (small_instance ()) ~ntiles:n
            in
            i)
          [ 1; 2; 4 ]
      in
      let path (i : Store.info) =
        Filename.concat dir (i.Store.digest ^ ".mstr")
      in
      let now = Unix.gettimeofday () in
      List.iteri
        (fun k i -> Unix.utimes (path i) (now -. 3600.0 +. (60.0 *. float_of_int k)) (now -. 3600.0 +. (60.0 *. float_of_int k)))
        infos;
      let sizes = List.map (fun i -> (Unix.stat (path i)).Unix.st_size) infos in
      let total = List.fold_left ( + ) 0 sizes in
      (* Accounting pass: no cap, nothing deleted. *)
      let r = Option.get (Store.gc ()) in
      checki "scanned all entries" 3 r.Store.scanned;
      checki "scanned every byte" total r.Store.scanned_bytes;
      checki "no cap deletes nothing" 0 r.Store.deleted;
      (* Cap that only the newest entry fits: the two oldest go. *)
      let newest_size = List.nth sizes 2 in
      let r = Option.get (Store.gc ~max_bytes:newest_size ()) in
      checki "pruned the two oldest" 2 r.Store.deleted;
      checki "freed their bytes" (total - newest_size) r.Store.deleted_bytes;
      let survives i = Sys.file_exists (path i) in
      checkb "oldest entry gone" false (survives (List.nth infos 0));
      checkb "middle entry gone" false (survives (List.nth infos 1));
      checkb "newest entry kept" true (survives (List.nth infos 2));
      (* GC is always safe: a pruned entry just regenerates, the kept one
         still disk-hits. *)
      Store.reset ();
      let _, i1 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:1 in
      checks "pruned entry regenerates" "interpreted"
        (source_name i1.Store.source);
      Store.reset ();
      let _, i4 = W.Runner.trace_cached_full (small_instance ()) ~ntiles:4 in
      checks "kept entry disk-hits" "disk" (source_name i4.Store.source));
  (* With the cache disabled there is nothing to collect. *)
  Store.set_cache_dir `Disabled;
  checkb "disabled cache has no report" true (Store.gc () = None)

let suite =
  [
    ( "trace_store.format",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        Alcotest.test_case "file roundtrip (hetero)" `Quick test_file_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
        Alcotest.test_case "rejects bad version" `Quick
          test_load_rejects_bad_version;
        Alcotest.test_case "rejects truncation" `Quick
          test_load_rejects_truncation;
        Alcotest.test_case "rejects bit flips" `Quick test_load_rejects_bitflip;
        Alcotest.test_case "rejects stale digest" `Quick
          test_load_rejects_stale_digest;
      ] );
    ( "trace_store.cache",
      [
        Alcotest.test_case "hit bit-identical to miss" `Quick
          test_cache_hit_bit_identity;
        Alcotest.test_case "stale cache file regenerates" `Quick
          test_stale_cache_file_regenerates;
        Alcotest.test_case "memo single-flight across domains" `Quick
          test_memo_domain_safe_single_flight;
        Alcotest.test_case "datasets key digests" `Quick
          test_different_datasets_different_digests;
        Alcotest.test_case "gc prunes LRU-by-mtime" `Quick test_gc_lru_pruning;
      ] );
  ]
