(* Tests for the textual IR parser and printer round-trips. *)

open Mosaic_ir
module B = Builder
module Interp = Mosaic_trace.Interp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let saxpy_text =
  {|
global @data : 16 x 4B at 0x1000
kernel @scale(params=1, regs=4) {
bb0:
  %r1 = gep.4 @data %r0
  %r2 = load.4 %r1
  %r3 = fmul %r2 2.0
  store.4 %r1 %r3
  ret
}
|}

let test_parse_simple () =
  let p = Parse.program saxpy_text in
  let f = Program.func_exn p "scale" in
  checki "nparams" 1 f.Func.nparams;
  checki "nregs inferred" 4 f.Func.nregs;
  checki "instructions" 5 f.Func.ninstrs;
  let g = Program.global_exn p "data" in
  checki "elems" 16 g.Program.elems;
  checki "elem size" 4 g.Program.elem_size

let test_parsed_kernel_executes () =
  let p = Parse.program saxpy_text in
  let g = Program.global_exn p "data" in
  let it = Interp.create p ~kernel:"scale" ~ntiles:1 ~args:[ Value.of_int 3 ] in
  Interp.poke_global it g 3 (Value.of_float 21.0);
  let _ = Interp.run it in
  Alcotest.(check (float 1e-9)) "scaled in place" 42.0
    (Value.to_float (Interp.peek_global it g 3))

let test_round_trip_builder_program () =
  (* Build with the DSL, print, parse, print again: fixpoint. *)
  let p = Program.create () in
  let xs = Program.alloc p "xs" ~elems:32 ~elem_size:4 in
  let _ =
    B.define p "axpy" ~nparams:1 (fun b ->
        let n = B.param b 0 in
        B.for_ b ~from:(B.imm 0) ~to_:n (fun i ->
            let x = B.load b ~size:4 (B.elem b xs i) in
            B.if_ b
              (B.fcmp b Op.Gt x (B.fimm 0.5))
              (fun () ->
                B.store b ~size:4 ~addr:(B.elem b xs i)
                  (B.fmul b x (B.fimm 2.0))));
        B.ret b ())
  in
  (* The printer emits explicit instruction ids and the parser preserves
     them, so print(parse(x)) is the identity on printed programs. *)
  let printed = Format.asprintf "%a" Pretty.pp_program p in
  let printed2 =
    Format.asprintf "%a" Pretty.pp_program (Parse.program printed)
  in
  checks "print-parse-print identity" printed printed2

let test_round_trip_comm_ops () =
  let p = Program.create () in
  let xs = Program.alloc p "xs" ~elems:8 ~elem_size:8 in
  let _ =
    B.define p "comm" ~nparams:0 (fun b ->
        B.load_send b ~chan:3 ~dst:(B.imm 1) (B.elem b xs (B.imm 0));
        B.store_recv b ~chan:4 ~rmw:Op.Rmw_add ~addr:(B.elem b xs (B.imm 1)) ();
        B.send b ~chan:0 ~dst:(B.imm 1) (B.imm 9);
        let _ = B.recv b ~chan:0 in
        ignore (B.atomic b Op.Rmw_max ~addr:(B.elem b xs (B.imm 2)) (B.imm 5));
        B.accel b "gemm" [ B.imm 4; B.imm 4; B.imm 4 ];
        B.ret b ())
  in
  let printed = Format.asprintf "%a" Pretty.pp_program p in
  let printed2 =
    Format.asprintf "%a" Pretty.pp_program (Parse.program printed)
  in
  checks "comm ops round trip" printed printed2

let test_parse_errors () =
  (* Every failure mode — lexical, structural, or validation — must
     surface as a located Parse_error, never a bare Invalid_argument. *)
  let expect_fail text =
    try
      ignore (Parse.program text);
      false
    with Parse.Parse_error _ -> true
  in
  checkb "unknown op" true
    (expect_fail "kernel @k(params=0, regs=1) {\nbb0:\n  frobnicate\n  ret\n}");
  checkb "missing dest" true
    (expect_fail "kernel @k(params=0, regs=1) {\nbb0:\n  add 1 2\n  ret\n}");
  checkb "unclosed kernel" true
    (expect_fail "kernel @k(params=0, regs=1) {\nbb0:\n  ret\n");
  checkb "instruction outside kernel" true (expect_fail "  ret\n");
  checkb "unterminated block caught by validation" true
    (expect_fail
       "kernel @k(params=0, regs=2) {\nbb0:\n  %r0 = add 1 2\n}");
  checkb "bad branch target caught" true
    (expect_fail "kernel @k(params=0, regs=0) {\nbb0:\n  br bb7\n}")

let test_parse_error_reports_line () =
  try
    ignore
      (Parse.program "kernel @k(params=0, regs=1) {\nbb0:\n  frobnicate\n}")
  with Parse.Parse_error { line; col; _ } ->
    checki "line number" 3 line;
    checki "column" 3 col

(* The surface syntax is forgiving: comments anywhere, flexible
   whitespace/commas, directive headers, and launch arguments. *)
let test_surface_syntax () =
  let text =
    {|; workload: surface
; launch: @scale(3)

; data lives at a fixed base address
global @data : 16 x 4B at 0x1000

kernel @scale( params = 1 , regs = 4 ) {
bb0:   ; entry block
  %r1 = gep.4 @data, %r0   ; commas optional
  %r2 = load.4 %r1
  %r3 = fmul %r2, 2.0
  store.4 %r1 %r3
  ret
}
|}
  in
  let m = Parse.mir_exn text in
  checkb "workload" true (m.Mir.meta.Mir.workload = Some "surface");
  (match m.Mir.meta.Mir.launch with
  | Some { Mir.kernel; args } ->
      checks "launch kernel" "scale" kernel;
      checkb "launch arg" true (compare args [ Value.of_int 3 ] = 0)
  | None -> Alcotest.fail "missing launch");
  let f = Program.func_exn m.Mir.program "scale" in
  checki "instructions survive comments" 5 f.Func.ninstrs;
  (* Comment-laden source still parses to the same canonical program as
     the comment-free original. *)
  checks "comments do not change the program"
    (Format.asprintf "%a" Pretty.pp_program (Parse.program saxpy_text))
    (Format.asprintf "%a" Pretty.pp_program m.Mir.program)

let test_round_trip_workload () =
  (* A real workload survives the trip and still validates. *)
  let inst = Mosaic_workloads.Registry.instance "stencil" in
  let printed =
    Format.asprintf "%a" Pretty.pp_program inst.Mosaic_workloads.Runner.program
  in
  let reparsed = Parse.program printed in
  let f = Program.func_exn reparsed "stencil" in
  let orig =
    Program.func_exn inst.Mosaic_workloads.Runner.program "stencil"
  in
  checki "same instruction count" orig.Func.ninstrs f.Func.ninstrs;
  checki "same block count"
    (Array.length orig.Func.blocks)
    (Array.length f.Func.blocks)

let suite =
  [
    ( "ir.parse",
      [
        Alcotest.test_case "simple program" `Quick test_parse_simple;
        Alcotest.test_case "parsed kernel executes" `Quick test_parsed_kernel_executes;
        Alcotest.test_case "builder round trip" `Quick test_round_trip_builder_program;
        Alcotest.test_case "comm ops round trip" `Quick test_round_trip_comm_ops;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "error line numbers" `Quick test_parse_error_reports_line;
        Alcotest.test_case "surface syntax" `Quick test_surface_syntax;
        Alcotest.test_case "workload round trip" `Quick test_round_trip_workload;
      ] );
  ]
