(* Shared harness for the golden-trace tests and the regeneration tool:
   the pinned workloads, the headline metrics extracted from a run, and
   the JSON encoding of the golden files.

   Workload sizes are deliberately tiny (a run is a few milliseconds) and
   every dataset generator is seeded, so the headline numbers are exact
   and stable across runs and machines. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Metrics = Mosaic_obs.Metrics
module Json = Mosaic_obs.Json

(* The three pinned workloads: a dependent-load microbenchmark, a small
   SPMV and a tiny BFS. [seed] perturbs the dataset generator where the
   workload exposes one (the micro chain ignores structure-free seeds
   identically). *)
let workloads =
  [
    ( "micro",
      fun ?(seed = 53) () -> W.Micro.pointer_chase ~seed ~nodes:64 ~steps:256 ()
    );
    ( "spmv",
      fun ?(seed = 7) () ->
        W.Spmv.instance ~seed ~rows:128 ~cols:128 ~per_row:4 () );
    ("bfs", fun ?(seed = 11) () -> W.Bfs.instance ~seed ~n:256 ~degree:4 ());
  ]

let names = List.map fst workloads

(* Traces come through the trace store: repeated golden runs of one
   workload interpret it once per process (and once per cache directory),
   and a cached trace is bit-identical to a fresh one, so the pinned
   headline numbers cannot depend on cache state. *)
let run ?sink ?seed name =
  let make = List.assoc name workloads in
  let inst = make ?seed () in
  let trace = W.Runner.trace_cached inst ~ntiles:1 in
  Soc.run_homogeneous ?sink Mosaic.Presets.dae_soc
    ~program:inst.W.Runner.program ~trace
    ~tile_config:Mosaic_tile.Tile_config.out_of_order

(* Headline metrics pinned by the golden files, read from the registry the
   run published into. Counters are exact; hit rates are quotients of
   counters and therefore bit-stable too. *)
let headline (r : Soc.result) =
  let m = r.Soc.metrics in
  let c name = float_of_int (Metrics.get_counter m name) in
  [
    ("cycles", c "sim.cycles");
    ("instructions", c "sim.instrs");
    ("l1_hit_rate", Metrics.get_gauge m "mem.l1_hit_rate");
    ("llc_hit_rate", Metrics.get_gauge m "mem.llc_hit_rate");
    ("dram_reads", c "dram.reads");
    ("dram_writes", c "dram.writes");
  ]

let to_json pairs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) pairs)

let of_json json =
  match json with
  | Json.Obj kvs -> List.map (fun (k, v) -> (k, Json.to_number_exn v)) kvs
  | _ -> raise (Json.Parse_error "golden file is not an object")

let golden_file name = name ^ ".json"
