(* Host-side telemetry: span tracer, progress heartbeat, manifests and
   the diff classifier.

   The tracer's contract is structural (every scope completes exactly
   once, at the right depth, with a non-negative duration — for any
   nesting shape, including raising bodies and hostile names), so the
   nesting tests are property-based. The differential tests hold the
   telemetry layer to the simulator's prime directive: enabling spans
   and progress must leave every deterministic output bit-identical,
   serial and sharded. *)

module Span = Mosaic_obs.Span
module Progress = Mosaic_obs.Progress
module Diff = Mosaic_obs.Diff
module Manifest = Mosaic_obs.Manifest
module Metrics = Mosaic_obs.Metrics
module Json = Mosaic_obs.Json
module Trace_export = Mosaic_obs.Trace_export
module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Presets = Mosaic.Presets
module TC = Mosaic_tile.Tile_config

let checkb = Alcotest.(check bool)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Names the exporters must survive: quotes, backslashes, control
   characters, non-ASCII bytes. *)
let nasty_names =
  [ "plain"; "dots.in.name"; "q\"uote"; "back\\slash"; "new\nline"; "µops" ]

(* --- Span nesting (property) ------------------------------------------ *)

type tree = Node of string * tree list

let tree_gen =
  let open QCheck.Gen in
  let name = oneofl nasty_names in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun nm -> Node (nm, [])) name
         else
           map2
             (fun nm kids -> Node (nm, kids))
             name
             (list_size (int_range 0 3) (self (n / 2))))

let rec run_tree (Node (name, kids)) =
  Span.with_span name (fun () -> List.iter run_tree kids)

(* Expected (name, depth) multiset of a tree. *)
let rec expected_spans depth (Node (name, kids)) =
  (name, depth) :: List.concat_map (expected_spans (depth + 1)) kids

let prop_span_nesting =
  QCheck.Test.make ~name:"span tracer: balanced, depth-correct, non-negative"
    ~count:50 (QCheck.make tree_gen) (fun tree ->
      Span.set_enabled true;
      Span.reset ();
      run_tree tree;
      let spans = Span.spans () in
      Span.set_enabled false;
      let got =
        List.sort compare
          (List.map (fun s -> (s.Span.name, s.Span.depth)) spans)
      in
      let want = List.sort compare (expected_spans 0 tree) in
      if got <> want then QCheck.Test.fail_report "name/depth multiset differs";
      if not (List.for_all (fun s -> s.Span.dur_s >= 0.0) spans) then
        QCheck.Test.fail_report "negative duration";
      if not (List.for_all (fun s -> s.Span.start_s >= 0.0) spans) then
        QCheck.Test.fail_report "span starts before epoch";
      true)

let test_span_disabled_noop () =
  Span.set_enabled false;
  Span.reset ();
  let r = Span.with_span "ignored" (fun () -> 42) in
  checki "body runs" 42 r;
  let t = Span.begin_span "also ignored" in
  Span.end_span t;
  checki "nothing recorded" 0 (List.length (Span.spans ()))

let test_span_exception_balance () =
  Span.set_enabled true;
  Span.reset ();
  (try Span.with_span "outer" (fun () ->
       Span.with_span "raises" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* Both scopes completed despite the raise, and depth unwound: a new
     span sits at depth 0 again. *)
  Span.with_span "after" (fun () -> ());
  let spans = Span.spans () in
  Span.set_enabled false;
  checki "all scopes recorded" 3 (List.length spans);
  let depth name =
    (List.find (fun s -> s.Span.name = name) spans).Span.depth
  in
  checki "raises at depth 1" 1 (depth "raises");
  checki "outer at depth 0" 0 (depth "outer");
  checki "after back at depth 0" 0 (depth "after")

let test_span_publish_and_json () =
  Span.set_enabled true;
  Span.reset ();
  Span.with_span "phase.a" (fun () -> ());
  Span.with_span "phase.a" (fun () -> ());
  Span.with_span "phase.b" (fun () -> ());
  let spans = Span.spans () in
  let reg = Metrics.create () in
  Span.publish reg;
  Span.publish reg (* find-or-create: second publish must not raise *);
  Span.set_enabled false;
  let gauge name =
    match Metrics.find reg name with
    | Some (Metrics.Gauge g) -> Metrics.gauge_value g
    | _ -> Alcotest.failf "missing gauge %s" name
  in
  Alcotest.(check (float 1e-9))
    "summed per name"
    (Span.total_seconds "phase.a")
    (gauge "host.phase.a_seconds");
  checkb "gc gauges present" true (gauge "host.gc.minor_words" >= 0.0);
  (* Raw spans round-trip through JSON (manifests embed them). *)
  let back = Span.of_json (Span.to_json spans) in
  checki "roundtrip count" (List.length spans) (List.length back);
  checkb "roundtrip equal" true (back = spans)

let test_chrome_export_host_spans () =
  Span.set_enabled true;
  Span.reset ();
  List.iter (fun n -> Span.with_span n (fun () -> ())) nasty_names;
  let spans = Span.spans () in
  Span.set_enabled false;
  let doc = Json.of_string (Trace_export.to_string ~host_spans:spans []) in
  let events = Json.to_list_exn (Json.member_exn "traceEvents" doc) in
  let host_x =
    List.filter
      (fun e ->
        Json.member "ph" e = Some (Json.String "X")
        && Json.member "pid" e = Some (Json.Int 1))
      events
  in
  checki "one X event per span" (List.length spans) (List.length host_x);
  let exported =
    List.sort compare
      (List.map
         (fun e -> Json.to_string_exn (Json.member_exn "name" e))
         host_x)
  in
  Alcotest.(check (list string))
    "names survive escaping" (List.sort compare nasty_names) exported

(* --- Progress --------------------------------------------------------- *)

let test_progress_rate_limit () =
  let buf = Buffer.create 256 in
  let p =
    Progress.create ~interval_s:3600.0 ~print:(Buffer.add_string buf)
      ~label:"t" ~total_instrs:(Some 1000) ()
  in
  for i = 1 to 100 do
    Progress.tick p ~cycle:i ~instrs:i
  done;
  checki "interval not elapsed: silent" 0 (Progress.lines_printed p);
  Progress.finish p ~cycle:100 ~instrs:100;
  checki "short run: no final line either" 0 (Progress.lines_printed p);
  checks "nothing printed" "" (Buffer.contents buf)

let test_progress_prints () =
  let buf = Buffer.create 256 in
  let p =
    Progress.create ~interval_s:0.0 ~print:(Buffer.add_string buf) ~label:"wl"
      ~total_instrs:(Some 200) ()
  in
  Progress.tick p ~cycle:10 ~instrs:100;
  checki "zero interval prints" 1 (Progress.lines_printed p);
  Progress.finish p ~cycle:20 ~instrs:200;
  checki "final line after a printed tick" 2 (Progress.lines_printed p);
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  checkb "labelled" true
    (String.starts_with ~prefix:"progress[wl]: " (List.hd lines));
  checkb "percentage shown" true (contains ~needle:"50.0%" (List.hd lines))

(* --- Diff classifier -------------------------------------------------- *)

let flat obj = Diff.flatten (Json.Obj obj)

let test_diff_identical () =
  let a = flat [ ("x.cycles", Json.Int 5); ("y", Json.Float 1.5) ] in
  let entries = Diff.compare a a in
  checkb "all identical" true
    (List.for_all (fun e -> e.Diff.cls = Diff.Identical) entries);
  checki "no cycle drift" 0 (List.length (Diff.cycle_drift entries))

let test_diff_classes () =
  let a =
    flat
      [
        ("sim.cycles", Json.Int 100);
        ("mips", Json.Float 2.0);
        ("host", Json.Float 10.0);
        ("gone", Json.Int 1);
        ("tag", Json.String "abc");
      ]
  and b =
    flat
      [
        ("sim.cycles", Json.Int 101);
        ("mips", Json.Float 2.02);
        ("host", Json.Float 20.0);
        ("fresh", Json.Int 1);
        ("tag", Json.String "abd");
      ]
  in
  let entries = Diff.compare ~threshold:0.05 a b in
  let cls key = (List.find (fun e -> e.Diff.key = key) entries).Diff.cls in
  checkb "cycles exact: 1-part-in-100 drifts" true (cls "sim.cycles" = Diff.Drifted);
  checkb "within threshold" true (cls "mips" = Diff.Close);
  checkb "beyond threshold" true (cls "host" = Diff.Drifted);
  checkb "removed" true (cls "gone" = Diff.Removed);
  checkb "added" true (cls "fresh" = Diff.Added);
  checkb "string drift" true (cls "tag" = Diff.Drifted);
  let drift = Diff.cycle_drift entries in
  checki "cycle drift collected" 1 (List.length drift);
  checks "the cycles key" "sim.cycles" (List.hd drift).Diff.key;
  (* Render never raises and mentions the drifted key. *)
  let table = Diff.render entries in
  checkb "rendered" true (contains ~needle:"sim.cycles" table)

let test_diff_flatten_nested () =
  let leaves =
    flat
      [
        ("a", Json.Obj [ ("b", Json.Int 1); ("c", Json.List [ Json.Int 2; Json.Int 3 ]) ]);
        ("ok", Json.Bool true);
      ]
  in
  Alcotest.(check (list string))
    "dotted keys in document order"
    [ "a.b"; "a.c.0"; "a.c.1"; "ok" ]
    (List.map fst leaves);
  checkb "bools become strings" true
    (List.assoc "ok" leaves = Diff.Str "true")

(* --- Manifest --------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let reg = Metrics.create () in
  Metrics.set (Metrics.gauge reg "sim.cycles") 918128.0;
  let m =
    Manifest.make ~kind:"run" ~name:"spmv"
      ~versions:[ ("semantics", "v1") ]
      ~digests:[ ("config", "deadbeef") ]
      ~spans:[] ~metrics:reg ()
  in
  let file = Filename.temp_file "manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Manifest.write file m;
      let back = Manifest.load file in
      checks "kind" m.Manifest.kind back.Manifest.kind;
      checks "name" m.Manifest.name back.Manifest.name;
      checkb "versions" true (back.Manifest.versions = m.Manifest.versions);
      checkb "digests" true (back.Manifest.digests = m.Manifest.digests);
      checkb "metrics json" true (back.Manifest.metrics = m.Manifest.metrics);
      (* A manifest file flattens through the diff lens with prefixed
         provenance keys, and diffing a manifest against itself is clean. *)
      let leaves = Diff.flatten_file file in
      checkb "metrics leaf" true
        (List.assoc_opt "sim.cycles" leaves = Some (Diff.Num 918128.0));
      checkb "digest leaf" true
        (List.assoc_opt "digest.config" leaves = Some (Diff.Str "deadbeef"));
      checkb "version leaf" true
        (List.assoc_opt "version.semantics" leaves = Some (Diff.Str "v1"));
      let entries = Diff.compare leaves leaves in
      checki "self-diff: no cycle drift" 0
        (List.length (Diff.cycle_drift entries)))

(* --- Telemetry leaves cycles alone (differential) --------------------- *)

let fingerprint = Test_batch.fingerprint

let test_telemetry_differential () =
  let inst = W.Micro.stream ~seed:23 ~elems:1024 () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let run ?progress ~shards () =
    Soc.run_homogeneous ?progress
      { Presets.dae_soc with Soc.shards }
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order
  in
  let reference = fingerprint (run ~shards:1 ()) in
  List.iter
    (fun shards ->
      Span.set_enabled true;
      Span.reset ();
      let progress =
        Progress.create ~interval_s:0.0
          ~print:(fun _ -> ())
          ~label:"diff" ~total_instrs:(Some (Mosaic_trace.Trace.total_dyn_instrs trace))
          ()
      in
      let r = run ~progress ~shards () in
      let sim_recorded =
        List.exists (fun s -> s.Span.name = "sim") (Span.spans ())
      in
      Span.set_enabled false;
      checkb (Printf.sprintf "sim span recorded (shards:%d)" shards) true
        sim_recorded;
      checks
        (Printf.sprintf "telemetry run bit-identical (shards:%d)" shards)
        reference (fingerprint r))
    [ 1; 2 ]

let suite =
  [
    ( "telemetry",
      [
        QCheck_alcotest.to_alcotest prop_span_nesting;
        Alcotest.test_case "disabled tracer is a no-op" `Quick
          test_span_disabled_noop;
        Alcotest.test_case "raising bodies stay balanced" `Quick
          test_span_exception_balance;
        Alcotest.test_case "publish gauges + span JSON roundtrip" `Quick
          test_span_publish_and_json;
        Alcotest.test_case "chrome export: host track well-formed" `Quick
          test_chrome_export_host_spans;
        Alcotest.test_case "progress: rate-limited to silence" `Quick
          test_progress_rate_limit;
        Alcotest.test_case "progress: prints and finishes" `Quick
          test_progress_prints;
        Alcotest.test_case "diff: identical is clean" `Quick
          test_diff_identical;
        Alcotest.test_case "diff: classification" `Quick test_diff_classes;
        Alcotest.test_case "diff: flatten shapes" `Quick
          test_diff_flatten_nested;
        Alcotest.test_case "manifest roundtrip + diff lens" `Quick
          test_manifest_roundtrip;
        Alcotest.test_case "spans+progress leave runs bit-identical" `Quick
          test_telemetry_differential;
      ] );
  ]
