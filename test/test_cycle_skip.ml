(* Differential tests for event-driven cycle skipping: runs with skipping
   on and off must agree on every simulated observable — cycle counts,
   instruction counts, per-tile stats, memory totals, DRAM traffic,
   interleaver handoffs, even the emitted event stream. Only host-time
   numbers and the retry-sampled diagnostic counters (soc.mao_stalls,
   inter.send_stalls) may differ, because skipping removes the no-op retry
   cycles that incremented them. *)

module Soc = Mosaic.Soc
module Noc = Mosaic.Noc
module Interleaver = Mosaic.Interleaver
module TC = Mosaic_tile.Tile_config
module Core_tile = Mosaic_tile.Core_tile
module Hierarchy = Mosaic_memory.Hierarchy
module Dram = Mosaic_memory.Dram
module Branch = Mosaic_tile.Branch
module Sink = Mosaic_obs.Sink
module W = Mosaic_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let no_skip cfg = { cfg with Soc.cycle_skip = false }

(* Every simulated observable of the two runs, compared field by field. *)
let assert_equivalent name (skip : Soc.result) (naive : Soc.result) =
  let ck what = checki (Printf.sprintf "%s: %s" name what) in
  ck "cycles" naive.Soc.cycles skip.Soc.cycles;
  ck "instrs" naive.Soc.instrs skip.Soc.instrs;
  ck "accel invocations" naive.Soc.accel_invocations
    skip.Soc.accel_invocations;
  ck "tile count"
    (Array.length naive.Soc.tile_stats)
    (Array.length skip.Soc.tile_stats);
  Array.iteri
    (fun i (n : Core_tile.stats) ->
      let s = skip.Soc.tile_stats.(i) in
      let ckt what = ck (Printf.sprintf "tile %d %s" i what) in
      ckt "instrs" n.Core_tile.completed_instrs s.Core_tile.completed_instrs;
      ckt "finish cycle" n.Core_tile.finish_cycle s.Core_tile.finish_cycle;
      ckt "dbbs" n.Core_tile.dbbs_launched s.Core_tile.dbbs_launched;
      ckt "mem accesses" n.Core_tile.mem_accesses s.Core_tile.mem_accesses;
      ckt "branch predictions" n.Core_tile.branch.Branch.predictions
        s.Core_tile.branch.Branch.predictions;
      ckt "branch mispredictions" n.Core_tile.branch.Branch.mispredictions
        s.Core_tile.branch.Branch.mispredictions;
      Array.iteri
        (fun cls count ->
          ck
            (Printf.sprintf "tile %d class %d" i cls)
            count
            s.Core_tile.issued_by_class.(cls))
        n.Core_tile.issued_by_class;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: tile %d energy" name i)
        n.Core_tile.energy_pj s.Core_tile.energy_pj)
    naive.Soc.tile_stats;
  ck "l1 accesses" naive.Soc.mem_totals.Hierarchy.l1_accesses
    skip.Soc.mem_totals.Hierarchy.l1_accesses;
  ck "l2 accesses" naive.Soc.mem_totals.Hierarchy.l2_accesses
    skip.Soc.mem_totals.Hierarchy.l2_accesses;
  ck "llc accesses" naive.Soc.mem_totals.Hierarchy.llc_accesses
    skip.Soc.mem_totals.Hierarchy.llc_accesses;
  ck "dram lines" naive.Soc.mem_totals.Hierarchy.dram_lines
    skip.Soc.mem_totals.Hierarchy.dram_lines;
  ck "dram reads" naive.Soc.dram.Dram.reads skip.Soc.dram.Dram.reads;
  ck "dram writes" naive.Soc.dram.Dram.writes skip.Soc.dram.Dram.writes;
  ck "interleaver sends" naive.Soc.interleaver.Interleaver.sends
    skip.Soc.interleaver.Interleaver.sends;
  ck "interleaver recvs" naive.Soc.interleaver.Interleaver.recvs
    skip.Soc.interleaver.Interleaver.recvs;
  ck "interleaver max occupancy"
    naive.Soc.interleaver.Interleaver.max_occupancy
    skip.Soc.interleaver.Interleaver.max_occupancy;
  Alcotest.(check (float 0.0))
    (name ^ ": energy") naive.Soc.energy_j skip.Soc.energy_j

(* Run the same workload under [cfg] with skipping on and off and demand
   equivalence; returns the pair for extra assertions. *)
let differential name cfg ~tile_config inst ~ntiles =
  let run cfg =
    let trace = W.Runner.trace inst ~ntiles in
    Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace ~tile_config
  in
  let skip = run { cfg with Soc.cycle_skip = true } in
  let naive = run (no_skip cfg) in
  assert_equivalent name skip naive;
  (skip, naive)

let test_micro_workloads () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun (cname, tc) ->
          ignore
            (differential
               (Printf.sprintf "%s/%s" name cname)
               Mosaic.Presets.dae_soc ~tile_config:tc inst ~ntiles:1))
        [ ("ooo", TC.out_of_order); ("ino", TC.in_order) ])
    [
      ("pointer_chase", W.Micro.pointer_chase ~seed:3 ~nodes:128 ~steps:512 ());
      ("stream", W.Micro.stream ~seed:5 ~elems:2048 ());
      ("random_access", W.Micro.random_access ~seed:9 ~elems:1024 ~accesses:512 ());
    ]

(* Skipping must also hold on the denser xeon preset (different hierarchy,
   branch predictor, FU mix). *)
let test_xeon_preset () =
  ignore
    (differential "spmv/xeon" Mosaic.Presets.xeon_soc
       ~tile_config:TC.out_of_order
       (W.Spmv.instance ~seed:17 ~rows:96 ~cols:96 ~per_row:5 ())
       ~ntiles:2)

(* Randomized micro workloads: any parameter point must be equivalent. *)
let prop_random_micro =
  let arb =
    QCheck.make
      QCheck.Gen.(
        quad (int_range 0 1000) (int_range 2 200) (int_range 1 600) bool)
  in
  QCheck.Test.make ~name:"cycle skipping invariant on random micro" ~count:25
    arb
    (fun (seed, nodes, steps, in_order) ->
      let inst =
        if seed mod 2 = 0 then W.Micro.pointer_chase ~seed ~nodes ~steps ()
        else
          W.Micro.random_access ~seed ~elems:(nodes * 4)
            ~accesses:(Stdlib.max 1 (steps / 2))
            ()
      in
      let tc = if in_order then TC.in_order else TC.out_of_order in
      ignore
        (differential "random micro" Mosaic.Presets.dae_soc ~tile_config:tc
           inst ~ntiles:1);
      true)

(* Multi-tile DAE pipeline: decoupled access/execute pairs block on
   inter-tile channels, the regime where skipping has to respect
   progress-driven wake-ups. *)
let test_dae_pipeline () =
  let inst, _info =
    W.Projection.dae_instance ~seed:13 ~n_left:64 ~n_right:128 ~degree:4 ()
  in
  let pairs = 2 in
  let access = inst.W.Runner.kernel ^ "_access"
  and execute = inst.W.Runner.kernel ^ "_execute" in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then access else execute), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then access else execute);
          tile_config = TC.in_order;
        })
  in
  let run cfg = Soc.run cfg ~program:inst.W.Runner.program ~trace ~tiles in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  assert_equivalent "projection-dae" skip naive

(* Accelerator tile: invocation finish times are SoC-level events. *)
let test_accelerator () =
  ignore
    (differential "sgemm-accel" Mosaic.Presets.dae_soc
       ~tile_config:TC.out_of_order
       (W.Sgemm.instance ~accel:true ~m:32 ~n:32 ~k:32 ())
       ~ntiles:1)

(* Mesh NoC: message arrivals ride the Interleaver's next-arrival view. *)
let test_noc () =
  let ntiles = 4 in
  let cfg =
    {
      Mosaic.Presets.dae_soc with
      Soc.noc = Some (Noc.default_config ~ntiles);
    }
  in
  ignore
    (differential "spmv/noc" cfg ~tile_config:TC.out_of_order
       (W.Spmv.instance ~seed:29 ~rows:128 ~cols:128 ~per_row:4 ())
       ~ntiles)

(* Heterogeneous clock dividers: a slow tile only launches/issues on its
   own edges, so wake-ups must round up to edge alignment. *)
let test_clock_dividers () =
  let inst = W.Sgemm.instance ~m:24 ~n:24 ~k:24 () in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let tiles =
    [|
      { Soc.kernel = "sgemm"; tile_config = TC.out_of_order };
      {
        Soc.kernel = "sgemm";
        tile_config = { TC.in_order with TC.clock_divider = 3 };
      };
    |]
  in
  let run cfg = Soc.run cfg ~program:inst.W.Runner.program ~trace ~tiles in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  assert_equivalent "mixed dividers" skip naive

(* The observability event stream is part of the contract: skipped cycles
   were no-ops, so the two runs must emit byte-identical event sequences. *)
let test_event_stream () =
  let run cfg =
    let inst = W.Micro.pointer_chase ~seed:3 ~nodes:64 ~steps:256 () in
    let trace = W.Runner.trace inst ~ntiles:1 in
    let sink = Sink.create () in
    ignore
      (Soc.run_homogeneous ~sink cfg ~program:inst.W.Runner.program ~trace
         ~tile_config:TC.out_of_order);
    Sink.to_list sink
  in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  checki "same event count" (List.length naive) (List.length skip);
  checkb "identical event stream" true (skip = naive)

(* And skipping must actually skip: a dependent-load chain stalls the core
   for the DRAM round-trip of every hop, so most cycles are quiescent. *)
let test_skipping_happens () =
  let inst = W.Micro.pointer_chase ~seed:3 ~nodes:4096 ~steps:4096 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let run cfg =
    Soc.run_homogeneous cfg ~program:inst.W.Runner.program ~trace
      ~tile_config:TC.out_of_order
  in
  let skip = run Mosaic.Presets.dae_soc in
  let naive = run (no_skip Mosaic.Presets.dae_soc) in
  checki "naive steps every cycle" naive.Soc.cycles naive.Soc.stepped_cycles;
  checkb "skip steps fewer than half the cycles" true
    (2 * skip.Soc.stepped_cycles < skip.Soc.cycles);
  checki "same simulated cycles" naive.Soc.cycles skip.Soc.cycles

let suite =
  [
    ( "soc.cycle-skip",
      [
        Alcotest.test_case "micro workloads" `Quick test_micro_workloads;
        Alcotest.test_case "xeon preset" `Quick test_xeon_preset;
        QCheck_alcotest.to_alcotest prop_random_micro;
        Alcotest.test_case "DAE pipeline" `Quick test_dae_pipeline;
        Alcotest.test_case "accelerator" `Quick test_accelerator;
        Alcotest.test_case "mesh NoC" `Quick test_noc;
        Alcotest.test_case "mixed clock dividers" `Quick test_clock_dividers;
        Alcotest.test_case "event stream identical" `Quick test_event_stream;
        Alcotest.test_case "skipping happens" `Quick test_skipping_happens;
      ] );
  ]
