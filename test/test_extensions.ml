(* Tests for the future-work extensions: dynamic branch predictors, the
   mesh NoC, and trace encoders. *)

open Mosaic_ir
module B = Builder
module Predictor = Mosaic_tile.Predictor
module Branch = Mosaic_tile.Branch
module Noc = Mosaic.Noc
module Encode = Mosaic_trace.Encode
module Trace = Mosaic_trace.Trace
module TC = Mosaic_tile.Tile_config
module Soc = Mosaic.Soc

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Predictor --- *)

let cond_br taken not_taken =
  Instr.make ~id:7 ~op:(Op.Cond_br (taken, not_taken))
    ~args:[| Instr.Imm Value.zero |] ~dst:None

let test_two_bit_learns_loop () =
  let p = Predictor.create Predictor.Two_bit in
  let br = cond_br 1 2 in
  (* Train taken repeatedly: prediction converges to the taken target. *)
  for _ = 1 to 4 do
    Predictor.train p ~branch_id:7 br ~actual:1
  done;
  Alcotest.(check (option int)) "predicts taken" (Some 1)
    (Predictor.predict p ~branch_id:7 br);
  (* A couple of not-taken outcomes flip it. *)
  for _ = 1 to 4 do
    Predictor.train p ~branch_id:7 br ~actual:2
  done;
  Alcotest.(check (option int)) "re-learns" (Some 2)
    (Predictor.predict p ~branch_id:7 br)

let test_two_bit_hysteresis () =
  let p = Predictor.create Predictor.Two_bit in
  let br = cond_br 1 2 in
  for _ = 1 to 4 do
    Predictor.train p ~branch_id:7 br ~actual:1
  done;
  (* one contrary outcome must not flip a saturated counter *)
  Predictor.train p ~branch_id:7 br ~actual:2;
  Alcotest.(check (option int)) "still predicts taken" (Some 1)
    (Predictor.predict p ~branch_id:7 br)

let test_gshare_uses_history () =
  (* An alternating pattern is hard for 2-bit but learnable with history. *)
  let run kind =
    let p = Predictor.create kind in
    let br = cond_br 1 2 in
    let mispredicts = ref 0 in
    for i = 0 to 199 do
      let actual = if i mod 2 = 0 then 1 else 2 in
      (match Predictor.predict p ~branch_id:7 br with
      | Some g when g <> actual -> incr mispredicts
      | _ -> ());
      Predictor.train p ~branch_id:7 br ~actual
    done;
    !mispredicts
  in
  let two_bit = run Predictor.Two_bit in
  let gshare = run (Predictor.Gshare { history_bits = 8 }) in
  checkb "gshare beats 2-bit on alternation" true (gshare < two_bit / 2)

let test_predictor_stats () =
  let p = Predictor.create Predictor.Two_bit in
  let br = cond_br 1 2 in
  Predictor.train p ~branch_id:1 br ~actual:1;
  Predictor.train p ~branch_id:1 br ~actual:2;
  let preds, _ = Predictor.stats p in
  checki "two predictions" 2 preds

let test_dynamic_policy_in_simulation () =
  (* A branchy kernel: dynamic prediction should be at least as good as
     no speculation and close to static on loops. *)
  let mk () =
    let p = Program.create () in
    let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
    let _ =
      B.define p "branchy" ~nparams:0 (fun b ->
          let acc = B.var b (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm 300) (fun i ->
              B.if_else b
                (B.icmp b Op.Eq (B.srem b i (B.imm 2)) (B.imm 0))
                (fun () -> B.assign b ~var:acc (B.add b acc i))
                (fun () -> B.assign b ~var:acc (B.sub b acc i)));
          B.store b ~addr:(B.elem b out (B.imm 0)) acc;
          B.ret b ())
    in
    p
  in
  let run policy name =
    let p = mk () in
    let it = Mosaic_trace.Interp.create p ~kernel:"branchy" ~ntiles:1 ~args:[] in
    let trace = Mosaic_trace.Interp.run it in
    (Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:p ~trace
       ~tile_config:{ TC.out_of_order with TC.branch = policy; name })
      .Soc.cycles
  in
  let none = run Branch.No_speculation "none" in
  let dynamic =
    run
      (Branch.Dynamic { kind = Predictor.Gshare { history_bits = 8 }; penalty = 12 })
      "dyn"
  in
  let static_ = run (Branch.Static { penalty = 12 }) "static" in
  checkb "dynamic beats no speculation" true (dynamic < none);
  (* The alternating if/else defeats the static taken heuristic; gshare
     learns it. *)
  checkb "dynamic beats static on alternation" true (dynamic < static_)

(* --- NoC --- *)

let test_noc_hops () =
  let noc = Noc.create ~ntiles:9 { Noc.width = 3; hop_latency = 4; link_capacity = 8; epoch_cycles = 32 } in
  checki "same tile" 0 (Noc.hops noc ~src:4 ~dst:4);
  checki "neighbor" 1 (Noc.hops noc ~src:0 ~dst:1);
  checki "corner to corner" 4 (Noc.hops noc ~src:0 ~dst:8)

let test_noc_latency_scales_with_distance () =
  let noc = Noc.create ~ntiles:16 { Noc.width = 4; hop_latency = 5; link_capacity = 64; epoch_cycles = 32 } in
  let near = Noc.delay noc ~src:0 ~dst:1 ~cycle:0 in
  let far = Noc.delay noc ~src:0 ~dst:15 ~cycle:0 in
  checkb "farther is slower" true (far > near);
  checki "near = 2 hops worth" (2 * 5) near;
  checki "far = 7 hops worth" (7 * 5) far

let test_noc_link_contention () =
  let noc =
    Noc.create ~ntiles:4 { Noc.width = 2; hop_latency = 2; link_capacity = 1; epoch_cycles = 16 }
  in
  (* Hammer one link within one epoch: completions must spread out. *)
  let arrivals = List.init 6 (fun _ -> Noc.delay noc ~src:0 ~dst:1 ~cycle:0) in
  let distinct = List.sort_uniq compare arrivals in
  checkb "contention spreads arrivals" true (List.length distinct > 3);
  checkb "contended counted" true ((Noc.stats noc).Noc.contended > 0)

let test_noc_bad_tile () =
  let noc = Noc.create ~ntiles:4 (Noc.default_config ~ntiles:4) in
  Alcotest.check_raises "bad tile" (Invalid_argument "Noc.delay: bad tile 9")
    (fun () -> ignore (Noc.delay noc ~src:0 ~dst:9 ~cycle:0))

let test_noc_in_soc () =
  (* Messages still all arrive when the Interleaver rides the NoC. *)
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "pc" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 20) (fun i ->
                B.send b ~chan:0 ~dst:(B.imm 3) i))
          (fun () ->
            B.if_ b
              (B.icmp b Op.Eq B.tid (B.imm 3))
              (fun () ->
                let acc = B.var b (B.imm 0) in
                B.for_ b ~from:(B.imm 0) ~to_:(B.imm 20) (fun _ ->
                    B.assign b ~var:acc (B.add b acc (B.recv b ~chan:0)));
                B.store b ~addr:(B.elem b out (B.imm 0)) acc));
        B.ret b ())
  in
  let it = Mosaic_trace.Interp.create p ~kernel:"pc" ~ntiles:4 ~args:[] in
  let trace = Mosaic_trace.Interp.run it in
  let cfg =
    { Mosaic.Presets.dae_soc with Soc.noc = Some (Noc.default_config ~ntiles:4) }
  in
  let with_noc =
    Soc.run_homogeneous cfg ~program:p ~trace ~tile_config:TC.out_of_order
  in
  checki "all messages received" 20 with_noc.Soc.interleaver.Mosaic.Interleaver.recvs

(* --- Encode --- *)

let test_encode_control_roundtrip () =
  let cases =
    [
      [||];
      [| 0 |];
      [| 0; 2; 3; 2; 3; 2; 3; 2; 3; 1 |];
      Array.init 500 (fun i -> i mod 4);
      [| 5; 5; 5; 5; 5; 5 |];
      Array.init 64 (fun i -> (i * 37) mod 11);
    ]
  in
  List.iter
    (fun path ->
      Alcotest.(check (array int))
        "control roundtrip" path
        (Encode.decode_control (Encode.encode_control path)))
    cases

let test_encode_control_compresses_loops () =
  let path = Array.init 10_000 (fun i -> if i = 0 then 0 else 2 + (i mod 2)) in
  let encoded = Encode.encode_control path in
  checkb "loopy path compresses well" true (Bytes.length encoded < 200)

let test_encode_addrs_roundtrip () =
  let cases =
    [
      [||];
      [| 4096 |];
      Array.init 100 (fun i -> 0x1000 + (4 * i));
      [| 100; 50; 100_000; 3; 3 |];
    ]
  in
  List.iter
    (fun addrs ->
      Alcotest.(check (array int))
        "addr roundtrip" addrs
        (Encode.decode_addrs (Encode.encode_addrs addrs)))
    cases

let test_encode_addrs_compresses_strides () =
  let addrs = Array.init 10_000 (fun i -> 0x10000 + (4 * i)) in
  let encoded = Encode.encode_addrs addrs in
  (* two-ish bytes per strided access vs 8 raw *)
  checkb "strided addresses compress" true (Bytes.length encoded < 25_000)

let prop_control_roundtrip =
  QCheck.Test.make ~name:"control encoding roundtrips" ~count:100
    QCheck.(array_of_size (QCheck.Gen.int_range 0 200) (int_range 0 30))
    (fun path -> Encode.decode_control (Encode.encode_control path) = path)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"address encoding roundtrips" ~count:100
    QCheck.(array_of_size (QCheck.Gen.int_range 0 200) (int_range 0 1_000_000))
    (fun addrs -> Encode.decode_addrs (Encode.encode_addrs addrs) = addrs)

let test_compressed_trace_smaller () =
  let inst = Mosaic_workloads.Registry.instance "stencil" in
  let trace = Mosaic_workloads.Runner.trace inst ~ntiles:1 in
  let raw_control, raw_memory = Trace.storage_bytes trace in
  let comp_control, comp_memory = Trace.compressed_bytes trace in
  checkb "control shrinks" true (comp_control < raw_control / 4);
  checkb "memory shrinks" true (comp_memory < raw_memory / 2)

let suite =
  [
    ( "ext.predictor",
      [
        Alcotest.test_case "two-bit learns" `Quick test_two_bit_learns_loop;
        Alcotest.test_case "two-bit hysteresis" `Quick test_two_bit_hysteresis;
        Alcotest.test_case "gshare history" `Quick test_gshare_uses_history;
        Alcotest.test_case "stats" `Quick test_predictor_stats;
        Alcotest.test_case "dynamic policy end to end" `Quick
          test_dynamic_policy_in_simulation;
      ] );
    ( "ext.noc",
      [
        Alcotest.test_case "hop counts" `Quick test_noc_hops;
        Alcotest.test_case "latency vs distance" `Quick test_noc_latency_scales_with_distance;
        Alcotest.test_case "link contention" `Quick test_noc_link_contention;
        Alcotest.test_case "bad tiles" `Quick test_noc_bad_tile;
        Alcotest.test_case "soc integration" `Quick test_noc_in_soc;
      ] );
    ( "ext.encode",
      [
        Alcotest.test_case "control roundtrip" `Quick test_encode_control_roundtrip;
        Alcotest.test_case "loops compress" `Quick test_encode_control_compresses_loops;
        Alcotest.test_case "addr roundtrip" `Quick test_encode_addrs_roundtrip;
        Alcotest.test_case "strides compress" `Quick test_encode_addrs_compresses_strides;
        Alcotest.test_case "whole trace shrinks" `Quick test_compressed_trace_smaller;
        QCheck_alcotest.to_alcotest prop_control_roundtrip;
        QCheck_alcotest.to_alcotest prop_addr_roundtrip;
      ] );
  ]
