(* Observability layer: ring-buffer event sink, metrics registry, and the
   Chrome trace / CSV exporters. *)

module Event = Mosaic_obs.Event
module Sink = Mosaic_obs.Sink
module Metrics = Mosaic_obs.Metrics
module Json = Mosaic_obs.Json
module Trace_export = Mosaic_obs.Trace_export

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

let retire ~tile ~seq = Event.Instr_retire { tile; seq }

(* --- Sink --- *)

let test_sink_basic () =
  let s = Sink.create ~capacity:16 () in
  checkb "enabled" true (Sink.enabled s);
  for i = 0 to 4 do
    Sink.emit s ~cycle:i (retire ~tile:0 ~seq:i)
  done;
  checki "length" 5 (Sink.length s);
  checki "emitted" 5 (Sink.emitted s);
  checki "dropped" 0 (Sink.dropped s);
  let cycles = List.map (fun (e : Event.t) -> e.Event.cycle) (Sink.to_list s) in
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ] cycles

let test_sink_wraparound () =
  let s = Sink.create ~capacity:8 () in
  for i = 0 to 19 do
    Sink.emit s ~cycle:i (retire ~tile:0 ~seq:i)
  done;
  checki "length capped" 8 (Sink.length s);
  checki "emitted counts all" 20 (Sink.emitted s);
  checki "dropped = emitted - capacity" 12 (Sink.dropped s);
  let cycles = List.map (fun (e : Event.t) -> e.Event.cycle) (Sink.to_list s) in
  Alcotest.(check (list int))
    "retains newest, oldest-first" [ 12; 13; 14; 15; 16; 17; 18; 19 ] cycles;
  Sink.clear s;
  checki "clear resets" 0 (Sink.length s);
  checki "clear resets emitted" 0 (Sink.emitted s)

let test_sink_disabled () =
  let s = Sink.null in
  checkb "null disabled" false (Sink.enabled s);
  (* A disabled sink must be a no-op: all counters stay at zero no matter
     how much is emitted at it. *)
  for i = 0 to 999 do
    Sink.emit s ~cycle:i (retire ~tile:1 ~seq:i)
  done;
  checki "no events" 0 (Sink.length s);
  checki "no emitted count" 0 (Sink.emitted s);
  checki "no dropped count" 0 (Sink.dropped s);
  Alcotest.(check (list int))
    "empty stream" []
    (List.map (fun (e : Event.t) -> e.Event.cycle) (Sink.to_list s))

(* --- Event naming --- *)

let test_event_tracks () =
  let tr payload = Event.track { Event.cycle = 0; payload } in
  checks "instr track" "tile.3" (tr (retire ~tile:3 ~seq:0));
  checks "cache track" "l1"
    (tr (Event.Cache_access { cache = "l1.0"; outcome = Event.Hit }));
  checks "dram track" "dram" (tr (Event.Dram_row_activate { bank = 0; row = 1 }));
  checks "noc track" "noc" (tr (Event.Noc_hop { src = 0; dst = 1; hops = 2 }));
  checks "accel track" "accel"
    (tr (Event.Accel_invoke { tile = 0; kind = "gemm"; cycles = 10 }))

(* --- Metrics --- *)

let test_metrics_counters_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "x.count" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  checki "counter" 42 (Metrics.counter_value c);
  checki "lookup" 42 (Metrics.get_counter reg "x.count");
  let g = Metrics.gauge reg "x.rate" in
  Metrics.set g 0.75;
  checkf "gauge" 0.75 (Metrics.get_gauge reg "x.rate");
  checkb "mem" true (Metrics.mem reg "x.count");
  checkb "not mem" false (Metrics.mem reg "nope")

let test_metrics_duplicate_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "dup");
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Metrics: duplicate metric dup") (fun () ->
      ignore (Metrics.gauge reg "dup"))

let test_metrics_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1.; 2.; 4.; 8. |] reg "lat" in
  checkf "empty quantile" 0.0 (Metrics.hist_quantile h 0.5);
  checkf "empty min" 0.0 (Metrics.hist_min h);
  List.iter (fun v -> Metrics.observe h v) [ 1.0; 1.0; 3.0; 7.0; 100.0 ];
  checki "count" 5 (Metrics.hist_count h);
  checkf "sum" 112.0 (Metrics.hist_sum h);
  checkf "min" 1.0 (Metrics.hist_min h);
  checkf "max" 100.0 (Metrics.hist_max h);
  checkf "p20 in first bucket" 1.0 (Metrics.hist_quantile h 0.2);
  checkf "median reports its bucket's upper bound" 4.0
    (Metrics.hist_quantile h 0.5);
  checkf "p99 hits overflow bucket -> observed max" 100.0
    (Metrics.hist_quantile h 0.99);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.hist_quantile: q out of range") (fun () ->
      ignore (Metrics.hist_quantile h 1.5))

let test_metrics_csv_roundtrip () =
  let reg = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter reg "a.count");
  Metrics.set (Metrics.gauge reg "a.rate") 0.125;
  let h = Metrics.histogram ~bounds:[| 10.; 100. |] reg "a.lat" in
  Metrics.observe h 5.0;
  Metrics.observe h 50.0;
  let rows = Metrics.rows reg in
  let parsed = Metrics.of_csv (Metrics.to_csv reg) in
  checki "row count survives" (List.length rows) (List.length parsed);
  List.iter2
    (fun (n1, k1, v1) (n2, k2, v2) ->
      checks "name" n1 n2;
      checks "kind" k1 k2;
      checkf "value" v1 v2)
    rows parsed;
  Alcotest.check_raises "bad header rejected"
    (Invalid_argument "Metrics.of_csv: bad header") (fun () ->
      ignore (Metrics.of_csv "nope\n"))

(* --- Trace export --- *)

let sample_events =
  [
    { Event.cycle = 0; payload = Event.Instr_issue { tile = 0; seq = 0; cls = "load" } };
    { Event.cycle = 3; payload = Event.Cache_access { cache = "l1.0"; outcome = Event.Miss } };
    { Event.cycle = 2; payload = retire ~tile:0 ~seq:0 };
    { Event.cycle = 5; payload = Event.Accel_invoke { tile = 1; kind = "gemm"; cycles = 40 } };
    { Event.cycle = 4; payload = Event.Dram_row_activate { bank = 2; row = 17 } };
  ]

let test_trace_json_well_formed () =
  let json = Json.of_string (Trace_export.to_string sample_events) in
  let events = Json.to_list_exn (Json.member_exn "traceEvents" json) in
  let non_meta =
    List.filter
      (fun e -> Json.to_string_exn (Json.member_exn "ph" e) <> "M")
      events
  in
  checki "all events exported" (List.length sample_events)
    (List.length non_meta);
  (* Timestamps must be monotonically non-decreasing even though the input
     events arrive out of order. *)
  let ts =
    List.map (fun e -> Json.to_number_exn (Json.member_exn "ts" e)) non_meta
  in
  checkb "monotonic ts" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts));
  (* Every event references a tid that has a thread_name metadata record. *)
  let named_tids =
    List.filter_map
      (fun e ->
        if Json.to_string_exn (Json.member_exn "ph" e) = "M" then
          Some (Json.to_number_exn (Json.member_exn "tid" e))
        else None)
      events
  in
  List.iter
    (fun e ->
      let tid = Json.to_number_exn (Json.member_exn "tid" e) in
      checkb "tid has metadata" true (List.mem tid named_tids))
    non_meta;
  (* The accelerator invocation is a complete span with a duration. *)
  let accel =
    List.find
      (fun e -> Json.to_string_exn (Json.member_exn "ph" e) = "X")
      events
  in
  checkf "accel dur" 40.0 (Json.to_number_exn (Json.member_exn "dur" accel))

let test_trace_json_empty () =
  let json = Json.of_string (Trace_export.to_string []) in
  checki "no events" 0
    (List.length (Json.to_list_exn (Json.member_exn "traceEvents" json)))

(* --- Property tests: the Chrome export is valid for ANY event stream --- *)

module Stall = Mosaic_obs.Stall

(* Strings with quotes, backslashes, control characters and non-ASCII
   bytes: the exporter must escape them all into parseable JSON. *)
let nasty_string_gen =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:char (int_range 0 12);
        oneofl [ "\"q\""; "a\\b"; "nl\n"; "tab\t"; "\x00\x1f\x7f"; "caf\xc3\xa9" ];
      ])

let event_gen =
  QCheck.Gen.(
    let payload =
      int_range 0 3 >>= fun tile ->
      oneof
        [
          ( nasty_string_gen >>= fun cls ->
            int_range 0 999 >>= fun seq ->
            return (Event.Instr_issue { tile; seq; cls }) );
          (int_range 0 999 >>= fun seq -> return (Event.Instr_retire { tile; seq }));
          ( nasty_string_gen >>= fun cache ->
            oneofl [ Event.Hit; Event.Miss; Event.Evict; Event.Writeback ]
            >>= fun outcome -> return (Event.Cache_access { cache; outcome }) );
          ( int_range 0 7 >>= fun bank ->
            int_range 0 4095 >>= fun row ->
            return (Event.Dram_row_activate { bank; row }) );
          ( int_range 0 3 >>= fun dst ->
            return (Event.Interleaver_handoff { src = tile; dst; chan = 0 }) );
          (int_range 1 6 >>= fun hops -> return (Event.Noc_hop { src = tile; dst = 0; hops }));
          ( nasty_string_gen >>= fun kind ->
            int_range 0 500 >>= fun cycles ->
            return (Event.Accel_invoke { tile; kind; cycles }) );
          (* Lengths around ncauses exercise the exporter's extra-column
             guard for hand-built samples. *)
          ( int_range 0 (Stall.ncauses + 2) >>= fun len ->
            array_size (return len) (int_range 0 100) >>= fun counts ->
            return (Event.Stall_sample { tile; counts }) );
        ]
    in
    int_range 0 5000 >>= fun cycle ->
    payload >>= fun payload -> return { Event.cycle; payload })

let prop_chrome_export_parses =
  QCheck.Test.make ~name:"chrome export of any event stream parses" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) event_gen))
    (fun events ->
      let json = Json.of_string (Trace_export.to_string events) in
      let entries = Json.to_list_exn (Json.member_exn "traceEvents" json) in
      let non_meta =
        List.filter
          (fun e -> Json.to_string_exn (Json.member_exn "ph" e) <> "M")
          entries
      in
      List.length non_meta = List.length events)

(* Cumulative profiler samples: random per-tile increments folded into
   running totals, exactly what Soc.run emits. The exported counter tracks
   must come out non-negative and monotone in ts, per tile, per cause. *)
let cumulative_samples_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun ntiles ->
    list_size (int_range 1 20)
      (pair
         (int_range 0 (ntiles - 1))
         (array_size (return Stall.ncauses) (int_range 0 50)))
    >>= fun increments ->
    let totals = Array.init ntiles (fun _ -> Array.make Stall.ncauses 0) in
    let cycle = ref 0 in
    let events =
      List.map
        (fun (tile, inc) ->
          cycle := !cycle + 1 + tile;
          Array.iteri
            (fun i d -> totals.(tile).(i) <- totals.(tile).(i) + d)
            inc;
          {
            Event.cycle = !cycle;
            payload =
              Event.Stall_sample { tile; counts = Array.copy totals.(tile) };
          })
        increments
    in
    return events)

let prop_counter_tracks_monotone =
  QCheck.Test.make ~name:"stall counter tracks non-negative and monotone"
    ~count:100
    (QCheck.make cumulative_samples_gen)
    (fun events ->
      let json = Json.of_string (Trace_export.to_string events) in
      let counters =
        List.filter
          (fun e -> Json.to_string_exn (Json.member_exn "ph" e) = "C")
          (Json.to_list_exn (Json.member_exn "traceEvents" json))
      in
      List.length counters = List.length events
      && List.for_all
           (fun e ->
             match Json.member_exn "args" e with
             | Json.Obj kvs ->
                 List.for_all (fun (_, v) -> Json.to_number_exn v >= 0.0) kvs
             | _ -> false)
           counters
      &&
      (* Per (tid, cause): values sorted by ts never decrease. The export
         is already ts-sorted, so a single sweep with a watermark per key
         suffices. *)
      let last : (float * string, float) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun e ->
          let tid = Json.to_number_exn (Json.member_exn "tid" e) in
          match Json.member_exn "args" e with
          | Json.Obj kvs ->
              List.for_all
                (fun (cause, v) ->
                  let v = Json.to_number_exn v in
                  let key = (tid, cause) in
                  let ok =
                    match Hashtbl.find_opt last key with
                    | Some prev -> v >= prev
                    | None -> true
                  in
                  Hashtbl.replace last key v;
                  ok)
                kvs
          | _ -> false)
        counters)

(* The tabular stall exporters mirror the same samples. *)
let test_stalls_csv_json () =
  let events =
    [
      {
        Event.cycle = 10;
        payload = Event.Stall_sample { tile = 0; counts = [| 1; 2; 3; 0; 0; 0; 0; 0; 4 |] };
      };
      { Event.cycle = 4; payload = retire ~tile:0 ~seq:0 };
      {
        Event.cycle = 7;
        payload = Event.Stall_sample { tile = 1; counts = [| 5; 0; 0; 0; 0; 0; 0; 0; 0 |] };
      };
    ]
  in
  let csv = Trace_export.stalls_to_csv events in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checks "header" "cycle,tile,cause,cycles" (List.hd lines);
  checki "one row per tile per cause" (2 * Stall.ncauses)
    (List.length (List.tl lines));
  (* Samples sort by cycle: tile 1's earlier sample leads. *)
  checks "first row" "7,1,busy,5" (List.nth lines 1);
  let json = Trace_export.stalls_to_json events in
  let rows = Json.to_list_exn json in
  checki "json rows" (2 * Stall.ncauses) (List.length rows);
  let r0 = List.hd rows in
  checkf "json cycle" 7.0 (Json.to_number_exn (Json.member_exn "cycle" r0));
  checks "json cause" "busy" (Json.to_string_exn (Json.member_exn "cause" r0));
  checkf "json cycles" 5.0 (Json.to_number_exn (Json.member_exn "cycles" r0))

let suite =
  [
    ( "obs.sink",
      [
        Alcotest.test_case "emit and drain" `Quick test_sink_basic;
        Alcotest.test_case "ring wraparound" `Quick test_sink_wraparound;
        Alcotest.test_case "disabled sink is a no-op" `Quick test_sink_disabled;
        Alcotest.test_case "event track names" `Quick test_event_tracks;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick
          test_metrics_counters_gauges;
        Alcotest.test_case "duplicate names rejected" `Quick
          test_metrics_duplicate_rejected;
        Alcotest.test_case "histogram quantiles" `Quick test_metrics_histogram;
        Alcotest.test_case "CSV round-trip" `Quick test_metrics_csv_roundtrip;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "chrome JSON well-formed" `Quick
          test_trace_json_well_formed;
        Alcotest.test_case "empty stream" `Quick test_trace_json_empty;
        QCheck_alcotest.to_alcotest prop_chrome_export_parses;
        QCheck_alcotest.to_alcotest prop_counter_tracks_monotone;
        Alcotest.test_case "stall CSV/JSON exporters" `Quick
          test_stalls_csv_json;
      ] );
  ]
