(* Tests for the Memory Address Orderer / LSQ model. *)

module Mao = Mosaic_tile.Mao

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk ?(capacity = 8) ?(perfect_alias = false) () =
  Mao.create ~capacity ~perfect_alias

let test_load_blocked_by_unresolved_store () =
  let m = mk () in
  Mao.insert m ~seq:0 ~kind:Mao.K_store ~addr:100 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:200 ~size:4;
  Mao.resolve m ~seq:1;
  (* store address still unresolved: the load must wait *)
  checkb "load blocked" false (Mao.can_issue m ~seq:1);
  Mao.resolve m ~seq:0;
  checkb "load free after resolve (no overlap)" true (Mao.can_issue m ~seq:1)

let test_load_blocked_by_matching_store () =
  let m = mk () in
  Mao.insert m ~seq:0 ~kind:Mao.K_store ~addr:100 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:100 ~size:4;
  Mao.resolve m ~seq:0;
  Mao.resolve m ~seq:1;
  checkb "aliasing load blocked" false (Mao.can_issue m ~seq:1);
  Mao.complete m ~seq:0;
  checkb "free after store completes" true (Mao.can_issue m ~seq:1)

let test_load_not_blocked_by_older_load () =
  let m = mk () in
  Mao.insert m ~seq:0 ~kind:Mao.K_load ~addr:100 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:100 ~size:4;
  (* loads never conflict with loads, even unresolved *)
  Mao.resolve m ~seq:1;
  checkb "load-load fine" true (Mao.can_issue m ~seq:1)

let test_store_blocked_by_any_older () =
  let m = mk () in
  Mao.insert m ~seq:0 ~kind:Mao.K_load ~addr:100 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_store ~addr:100 ~size:4;
  Mao.resolve m ~seq:0;
  Mao.resolve m ~seq:1;
  checkb "store blocked by older matching load" false (Mao.can_issue m ~seq:1);
  Mao.complete m ~seq:0;
  checkb "free after load completes" true (Mao.can_issue m ~seq:1)

let test_overlap_partial () =
  let m = mk () in
  (* 8-byte store overlapping a 4-byte load at +4 *)
  Mao.insert m ~seq:0 ~kind:Mao.K_store ~addr:100 ~size:8;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:104 ~size:4;
  Mao.resolve m ~seq:0;
  Mao.resolve m ~seq:1;
  checkb "partial overlap blocks" false (Mao.can_issue m ~seq:1)

let test_perfect_alias_resolves_upfront () =
  let m = mk ~perfect_alias:true () in
  Mao.insert m ~seq:0 ~kind:Mao.K_store ~addr:100 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:200 ~size:4;
  (* no resolve calls needed: addresses known from the trace *)
  checkb "non-aliasing load issues immediately" true (Mao.can_issue m ~seq:1)

let test_capacity_window () =
  let m = mk ~capacity:2 ~perfect_alias:true () in
  Mao.insert m ~seq:0 ~kind:Mao.K_load ~addr:0 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:64 ~size:4;
  Mao.insert m ~seq:2 ~kind:Mao.K_load ~addr:128 ~size:4;
  checkb "inside window" true (Mao.can_issue m ~seq:1);
  checkb "outside window" false (Mao.can_issue m ~seq:2);
  Mao.complete m ~seq:0;
  checkb "window slides on completion" true (Mao.can_issue m ~seq:2)

let test_occupancy_and_stalls () =
  let m = mk ~capacity:1 ~perfect_alias:true () in
  Mao.insert m ~seq:0 ~kind:Mao.K_load ~addr:0 ~size:4;
  Mao.insert m ~seq:1 ~kind:Mao.K_load ~addr:64 ~size:4;
  checki "occupancy" 2 (Mao.occupancy m);
  ignore (Mao.can_issue m ~seq:1);
  checki "stall recorded" 1 (Mao.stalls m);
  Mao.complete m ~seq:0;
  Mao.complete m ~seq:1;
  checki "drained" 0 (Mao.occupancy m)

let test_duplicate_seq_rejected () =
  let m = mk () in
  Mao.insert m ~seq:5 ~kind:Mao.K_load ~addr:0 ~size:4;
  Alcotest.check_raises "duplicate" (Invalid_argument "Mao.insert: duplicate seq 5")
    (fun () -> Mao.insert m ~seq:5 ~kind:Mao.K_load ~addr:64 ~size:4)

(* Property: under perfect alias, a load never issues while an older
   overlapping store is incomplete, for random programs. *)
let prop_no_raw_violation =
  QCheck.Test.make ~name:"MAO never lets a load pass a conflicting store"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (pair bool (int_range 0 4)))
    (fun ops ->
      let m = mk ~capacity:64 ~perfect_alias:true () in
      let entries =
        List.mapi
          (fun seq (is_store, slot) ->
            let kind = if is_store then Mao.K_store else Mao.K_load in
            Mao.insert m ~seq ~kind ~addr:(slot * 8) ~size:8;
            (seq, kind, slot))
          ops
      in
      List.for_all
        (fun (seq, kind, slot) ->
          match kind with
          | Mao.K_store -> true
          | Mao.K_load ->
              let conflicting_older =
                List.exists
                  (fun (s2, k2, slot2) ->
                    s2 < seq && k2 = Mao.K_store && slot2 = slot)
                  entries
              in
              if conflicting_older then not (Mao.can_issue m ~seq) else true)
        entries)

let suite =
  [
    ( "tile.mao",
      [
        Alcotest.test_case "unresolved store blocks load" `Quick
          test_load_blocked_by_unresolved_store;
        Alcotest.test_case "matching store blocks load" `Quick
          test_load_blocked_by_matching_store;
        Alcotest.test_case "loads pass loads" `Quick test_load_not_blocked_by_older_load;
        Alcotest.test_case "store waits for older accesses" `Quick
          test_store_blocked_by_any_older;
        Alcotest.test_case "partial overlap" `Quick test_overlap_partial;
        Alcotest.test_case "perfect alias speculation" `Quick
          test_perfect_alias_resolves_upfront;
        Alcotest.test_case "capacity window" `Quick test_capacity_window;
        Alcotest.test_case "occupancy and stalls" `Quick test_occupancy_and_stalls;
        Alcotest.test_case "duplicate seq" `Quick test_duplicate_seq_rejected;
        QCheck_alcotest.to_alcotest prop_no_raw_violation;
      ] );
  ]
