(* Workload tests: every benchmark must run to completion and produce the
   right answer (the interpreter check), at 1 tile and at an odd tile count
   (exercising uneven SPMD slicing). Dataset generators are also covered. *)

module W = Mosaic_workloads
module Trace = Mosaic_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Small instances so the whole suite stays fast. *)
let small_instance = function
  | "bfs" -> W.Bfs.instance ~n:256 ~degree:4 ()
  | "cutcp" -> W.Cutcp.instance ~grid_points:32 ~atoms:48 ~cutoff:0.5 ()
  | "histo" -> W.Histo.instance ~n:2048 ~bins:64 ()
  | "lbm" -> W.Lbm.instance ~h:12 ~w:12 ()
  | "mri-gridding" -> W.Mri_gridding.instance ~samples:512 ~grid:64 ()
  | "mri-q" -> W.Mriq.instance ~voxels:24 ~samples:32 ()
  | "sad" -> W.Sad.instance ~blocks:16 ~block_size:8 ~offsets:4 ()
  | "sgemm" -> W.Sgemm.instance ~m:12 ~n:12 ~k:12 ()
  | "spmv" -> W.Spmv.instance ~rows:128 ~cols:128 ~per_row:6 ()
  | "stencil" -> W.Stencil.instance ~h:16 ~w:16 ()
  | "tpacf" -> W.Tpacf.instance ~points:32 ~bins:6 ()
  | "projection" -> W.Projection.instance ~n_left:48 ~n_right:64 ~degree:4 ()
  | "ewsd" -> W.Ewsd.instance ~rows:64 ~cols:64 ~per_row:4 ()
  | "sinkhorn" ->
      W.Sinkhorn.instance ~dim:10 ~rows:32 ~cols:32 ~per_row:4 ~reps:2 ()
  | "sinkhorn-accel" ->
      W.Sinkhorn.instance ~accel:true ~dim:10 ~rows:32 ~cols:32 ~per_row:4
        ~reps:2 ()
  | name -> invalid_arg name

let correctness_case name =
  Alcotest.test_case name `Quick (fun () ->
      (* Runner.trace raises on a wrong answer. *)
      let t1 = W.Runner.trace (small_instance name) ~ntiles:1 in
      checkb "instructions executed" true (Trace.total_dyn_instrs t1 > 0);
      let t3 = W.Runner.trace (small_instance name) ~ntiles:3 in
      checkb "three tiles also correct" true (Trace.total_dyn_instrs t3 > 0))

let test_registry_names () =
  checki "eleven parboil kernels" 11 (List.length W.Registry.parboil_names);
  List.iter
    (fun n -> checkb n true (List.mem n W.Registry.all_names))
    W.Registry.parboil_names;
  checkb "unknown rejected" true
    (try
       ignore (W.Registry.instance "nope");
       false
     with Invalid_argument _ -> true)

let test_trace_storage_accounting () =
  let inst = small_instance "sgemm" in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let control, memory = Trace.storage_bytes trace in
  checkb "control bytes counted" true (control > 0);
  checki "memory bytes = 8 per access" (8 * Trace.total_mem_accesses trace) memory

let test_trace_save_load () =
  let inst = small_instance "stencil" in
  let trace = W.Runner.trace inst ~ntiles:2 in
  let path = Filename.temp_file "mosaic" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      checki "tiles preserved" trace.Trace.ntiles loaded.Trace.ntiles;
      checki "instructions preserved"
        (Trace.total_dyn_instrs trace)
        (Trace.total_dyn_instrs loaded))

let test_dae_instances_correct () =
  let run_pairs inst access execute pairs =
    let spec =
      Array.init (2 * pairs) (fun i ->
          ((if i < pairs then access else execute), inst.W.Runner.args))
    in
    ignore (W.Runner.trace_hetero inst ~tiles:spec)
  in
  let ewsd, info = W.Ewsd.dae_instance ~rows:64 ~cols:64 ~per_row:4 () in
  checkb "ewsd slices communicate" true (info.Mosaic_compiler.Dae.sent_loads > 0);
  run_pairs ewsd "ewsd_access" "ewsd_execute" 1;
  let ewsd2, _ = W.Ewsd.dae_instance ~rows:64 ~cols:64 ~per_row:4 () in
  run_pairs ewsd2 "ewsd_access" "ewsd_execute" 2;
  let proj, pinfo = W.Projection.dae_instance ~n_left:48 ~n_right:64 ~degree:4 () in
  checkb "projection routes atomic values" true
    (pinfo.Mosaic_compiler.Dae.routed_stores > 0);
  run_pairs proj "projection_access" "projection_execute" 2

let test_dnn_instances_build () =
  List.iter
    (fun model ->
      List.iter
        (fun accel ->
          let inst = W.Dnn.instance model ~accel in
          Mosaic_ir.Validate.check_exn inst.W.Runner.program;
          let trace = W.Runner.trace inst ~ntiles:1 in
          checkb
            (Printf.sprintf "%s traced" inst.W.Runner.name)
            true
            (Trace.total_dyn_instrs trace > 0);
          if accel then begin
            let has_accel =
              Array.exists
                (fun (tt : Trace.tile_trace) ->
                  Array.exists (fun a -> Array.length a > 0) tt.Trace.accel_params)
                trace.Trace.tiles
            in
            checkb "soc variant invokes accelerators" true has_accel
          end)
        [ false; true ])
    W.Dnn.all

let test_accel_sgemm_matches_software () =
  (* The accelerated kernel must produce the same matrix as the software
     kernel (functional model correctness). *)
  ignore (W.Runner.trace (W.Sgemm.instance ~accel:true ~m:12 ~n:12 ~k:12 ()) ~ntiles:1)

(* --- datasets --- *)

let test_random_graph_valid () =
  let g = W.Datasets.random_graph ~seed:1 ~n:100 ~degree:5 in
  checki "row_ptr length" 101 (Array.length g.W.Datasets.row_ptr);
  checki "edges" 500 (Array.length g.W.Datasets.cols);
  Array.iteri
    (fun u _ ->
      if u < 100 then
        for k = g.W.Datasets.row_ptr.(u) to g.W.Datasets.row_ptr.(u + 1) - 1 do
          let v = g.W.Datasets.cols.(k) in
          checkb "neighbor in range" true (v >= 0 && v < 100);
          checkb "no self loop" true (v <> u)
        done)
    g.W.Datasets.row_ptr

let test_bfs_distances_reference () =
  (* A path graph 0-1-2-3 encoded in CSR. *)
  let g =
    {
      W.Datasets.n = 4;
      row_ptr = [| 0; 1; 3; 5; 6 |];
      cols = [| 1; 0; 2; 1; 3; 2 |];
    }
  in
  Alcotest.(check (array int)) "hop distances" [| 0; 1; 2; 3 |]
    (W.Datasets.bfs_distances g ~source:0)

let test_sparse_shapes () =
  let sp = W.Datasets.random_sparse ~seed:2 ~rows:10 ~cols:20 ~per_row:3 in
  checki "values match nnz"
    (Array.length sp.W.Datasets.shape.W.Datasets.cols)
    (Array.length sp.W.Datasets.values);
  Array.iter
    (fun v -> checkb "column in range" true (v >= 0 && v < 20))
    sp.W.Datasets.shape.W.Datasets.cols

let test_deterministic_datasets () =
  let a = W.Datasets.random_floats ~seed:7 32 in
  let b = W.Datasets.random_floats ~seed:7 32 in
  Alcotest.(check (array (float 0.0))) "same seed same data" a b

let suite =
  [
    ( "workloads.correctness",
      List.map correctness_case
        [
          "bfs"; "cutcp"; "histo"; "lbm"; "mri-gridding"; "mri-q"; "sad";
          "sgemm"; "spmv"; "stencil"; "tpacf"; "projection"; "ewsd";
          "sinkhorn"; "sinkhorn-accel";
        ] );
    ( "workloads.infrastructure",
      [
        Alcotest.test_case "registry" `Quick test_registry_names;
        Alcotest.test_case "trace storage accounting" `Quick test_trace_storage_accounting;
        Alcotest.test_case "trace save/load" `Quick test_trace_save_load;
        Alcotest.test_case "dae instances" `Quick test_dae_instances_correct;
        Alcotest.test_case "dnn instances" `Quick test_dnn_instances_build;
        Alcotest.test_case "accelerated sgemm correct" `Quick
          test_accel_sgemm_matches_software;
      ] );
    ( "workloads.datasets",
      [
        Alcotest.test_case "random graph valid" `Quick test_random_graph_valid;
        Alcotest.test_case "bfs reference distances" `Quick test_bfs_distances_reference;
        Alcotest.test_case "sparse shapes" `Quick test_sparse_shapes;
        Alcotest.test_case "deterministic" `Quick test_deterministic_datasets;
      ] );
  ]
