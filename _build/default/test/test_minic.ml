(* Tests for the MiniC front-end. *)

open Mosaic_ir
module Minic = Mosaic_frontend.Minic
module Interp = Mosaic_trace.Interp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let run ?(ntiles = 1) ?(args = []) src kernel =
  let prog = Minic.compile src in
  let it = Interp.create prog ~kernel ~ntiles ~args in
  (prog, it)

let peek prog it name i =
  Interp.peek_global it (Program.global_exn prog name) i

let test_arithmetic () =
  let src =
    {|
global out[4] : i64;
kernel k() {
  out[0] = 2 + 3 * 4;
  out[1] = (2 + 3) * 4;
  out[2] = 17 % 5;
  out[3] = -7 + 1;
}
|}
  in
  let prog, it = run src "k" in
  let _ = Interp.run it in
  checki "precedence" 14 (Value.to_int (peek prog it "out" 0));
  checki "parens" 20 (Value.to_int (peek prog it "out" 1));
  checki "mod" 2 (Value.to_int (peek prog it "out" 2));
  checki "negation" (-6) (Value.to_int (peek prog it "out" 3))

let test_floats_and_promotion () =
  let src =
    {|
global out[3] : f64;
kernel k() {
  out[0] = 1.5 * 2;          // int promotes to float
  out[1] = sqrt(16.0) + float(1);
  out[2] = pow(2.0, 10);
}
|}
  in
  let prog, it = run src "k" in
  let _ = Interp.run it in
  checkf "promotion" 3.0 (Value.to_float (peek prog it "out" 0));
  checkf "sqrt+cast" 5.0 (Value.to_float (peek prog it "out" 1));
  checkf "pow" 1024.0 (Value.to_float (peek prog it "out" 2))

let test_control_flow () =
  let src =
    {|
global out[1] : i64;
kernel k(n) {
  var acc = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
  }
  var j = 0;
  while (j < 3) { acc = acc * 2; j = j + 1; }
  out[0] = acc;
}
|}
  in
  let prog, it = run ~args:[ Value.of_int 10 ] src "k" in
  let _ = Interp.run it in
  (* evens 0..8 sum 20, minus 5 odd decrements = 15; *8 = 120 *)
  checki "loops and branches" 120 (Value.to_int (peek prog it "out" 0))

let test_arrays_and_spmd () =
  let src =
    {|
global data[64] : f32;
kernel scale(n) {
  var chunk = n / ntiles;
  var lo = tid * chunk;
  for (i = lo; i < lo + chunk; i = i + 1) {
    data[i] = data[i] * 3.0;
  }
}
|}
  in
  let prog = Minic.compile src in
  let g = Program.global_exn prog "data" in
  let it = Interp.create prog ~kernel:"scale" ~ntiles:4 ~args:[ Value.of_int 64 ] in
  for i = 0 to 63 do
    Interp.poke_global it g i (Value.of_float (float_of_int i))
  done;
  let _ = Interp.run it in
  let ok = ref true in
  for i = 0 to 63 do
    if
      Float.abs (Value.to_float (Interp.peek_global it g i) -. (3.0 *. float_of_int i))
      > 1e-9
    then ok := false
  done;
  checkb "all tiles scaled their slices" true !ok

let test_atomics_and_logic () =
  let src =
    {|
global hist[4] : i64;
global src_data[32] : i64;
kernel count(n) {
  for (i = 0; i < n; i = i + 1) {
    var v = src_data[i];
    if (v >= 0 && v < 4) { atomic hist[v] += 1; }
    if (!(v < 4)) { atomic hist[3] += 1; }
  }
}
|}
  in
  let prog = Minic.compile src in
  let gsrc = Program.global_exn prog "src_data" in
  let it = Interp.create prog ~kernel:"count" ~ntiles:2 ~args:[ Value.of_int 32 ] in
  for i = 0 to 31 do
    Interp.poke_global it gsrc i (Value.of_int (i mod 6))
  done;
  let _ = Interp.run it in
  (* values 0..5 repeating: 0,1,2,3 get 6,6,6,5(+direct)... compute host side *)
  let expected = Array.make 4 0 in
  for i = 0 to 31 do
    let v = i mod 6 in
    if v < 4 then expected.(v) <- expected.(v) + 1;
    if not (v < 4) then expected.(3) <- expected.(3) + 1
  done;
  (* both tiles scan all 32 elements: counts double *)
  for b = 0 to 3 do
    checki "histogram bin" (2 * expected.(b))
      (Value.to_int (peek prog it "hist" b))
  done

let test_channels () =
  let src =
    {|
global out[1] : f64;
kernel pipe() {
  if (tid == 0) {
    for (i = 0; i < 5; i = i + 1) { send(0, 1, float(i)); }
  } else {
    var acc = 0.0;
    for (i = 0; i < 5; i = i + 1) { acc = acc + recv(0); }
    out[0] = acc;
  }
}
|}
  in
  let prog = Minic.compile src in
  let it = Interp.create prog ~kernel:"pipe" ~ntiles:2 ~args:[] in
  let _ = Interp.run it in
  checkf "0+1+2+3+4" 10.0 (Value.to_float (peek prog it "out" 0))

let test_compiled_kernel_simulates () =
  let src =
    {|
global a[256] : f32;
global b[256] : f32;
kernel add(n) {
  for (i = 0; i < n; i = i + 1) { b[i] = a[i] + 1.0; }
}
|}
  in
  let prog = Minic.compile src in
  let it = Interp.create prog ~kernel:"add" ~ntiles:1 ~args:[ Value.of_int 256 ] in
  let trace = Interp.run it in
  let r =
    Mosaic.Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:prog ~trace
      ~tile_config:Mosaic_tile.Tile_config.out_of_order
  in
  checkb "simulates" true (r.Mosaic.Soc.cycles > 0)

let expect_error src =
  try
    ignore (Minic.compile src);
    false
  with Minic.Error _ | Invalid_argument _ -> true

let test_errors () =
  checkb "unknown variable" true
    (expect_error "kernel k() { x = 1; }");
  checkb "unknown array" true
    (expect_error "kernel k() { nope[0] = 1; }");
  checkb "float index" true
    (expect_error "global a[4] : i64;\nkernel k() { a[1.5] = 1; }");
  checkb "float stored to int array" true
    (expect_error "global a[4] : i64;\nkernel k() { a[0] = 1.5; }");
  checkb "mod on floats" true
    (expect_error "global a[4] : f64;\nkernel k() { a[0] = 1.5 % 2.0; }");
  checkb "missing semicolon" true
    (expect_error "global a[4] : i64;\nkernel k() { a[0] = 1 }");
  checkb "no kernels" true (expect_error "global a[4] : i64;")

let test_error_line_numbers () =
  try ignore (Minic.compile "kernel k() {\n  x = 1;\n}")
  with Minic.Error { line; _ } -> checki "line" 2 line

(* Property: random integer expressions rendered as MiniC source compile
   and evaluate to the same value as a direct Int64 evaluation. *)
type iexpr =
  | L of int
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr

let arb_iexpr =
  let open QCheck.Gen in
  let leaf = map (fun n -> L n) (int_range (-50) 50) in
  let node self n =
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
          (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
          (1, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
        ]
  in
  QCheck.make (sized_size (int_range 1 6) (fix node))

let rec eval_iexpr = function
  | L n -> Int64.of_int n
  | Add (a, b) -> Int64.add (eval_iexpr a) (eval_iexpr b)
  | Sub (a, b) -> Int64.sub (eval_iexpr a) (eval_iexpr b)
  | Mul (a, b) -> Int64.mul (eval_iexpr a) (eval_iexpr b)

let rec render = function
  | L n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)

let prop_minic_expr =
  QCheck.Test.make ~name:"minic compiles expressions faithfully" ~count:60
    arb_iexpr (fun e ->
      let src =
        Printf.sprintf "global out[1] : i64;\nkernel k() { out[0] = %s; }"
          (render e)
      in
      let prog = Minic.compile src in
      let it = Interp.create prog ~kernel:"k" ~ntiles:1 ~args:[] in
      let _ = Interp.run it in
      Value.to_int64 (peek prog it "out" 0) = eval_iexpr e)

let suite =
  [
    ( "frontend.minic",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "floats and promotion" `Quick test_floats_and_promotion;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "arrays and SPMD" `Quick test_arrays_and_spmd;
        Alcotest.test_case "atomics and logic" `Quick test_atomics_and_logic;
        Alcotest.test_case "channels" `Quick test_channels;
        Alcotest.test_case "compiled kernel simulates" `Quick
          test_compiled_kernel_simulates;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "error lines" `Quick test_error_line_numbers;
        QCheck_alcotest.to_alcotest prop_minic_expr;
      ] );
  ]
