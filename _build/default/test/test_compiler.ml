(* Tests for the compiler: DDG, optimization passes, DAE slicing. *)

open Mosaic_ir
module B = Builder
module Ddg = Mosaic_compiler.Ddg
module Passes = Mosaic_compiler.Passes
module Dae = Mosaic_compiler.Dae
module Rewrite = Mosaic_compiler.Rewrite
module Interp = Mosaic_trace.Interp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- DDG --- *)

let test_ddg_intra_edges () =
  let p = Program.create () in
  let f =
    B.define p "chain" ~nparams:1 (fun b ->
        let x = B.param b 0 in
        let a = B.add b x (B.imm 1) in
        let c = B.mul b a a in
        let _ = B.sub b c x in
        B.ret b ())
  in
  let ddg = Ddg.build f in
  (* instr 0 = add (param use only), 1 = mul (uses add), 2 = sub (uses mul),
     3 = ret *)
  checki "add has no intra parents" 0 (Array.length ddg.Ddg.deps.(0).Ddg.intra);
  Alcotest.(check (array int)) "mul depends on add" [| 0 |] ddg.Ddg.deps.(1).Ddg.intra;
  Alcotest.(check (array int)) "sub depends on mul" [| 1 |] ddg.Ddg.deps.(2).Ddg.intra;
  checki "edge count" 2 (Ddg.edge_count ddg)

let test_ddg_extern_regs () =
  let p = Program.create () in
  let f =
    B.define p "crossbb" ~nparams:0 (fun b ->
        let v = B.var b (B.imm 3) in
        B.if_ b (B.icmp b Op.Ge v (B.imm 0)) (fun () ->
            (* reads v, defined in the previous block *)
            B.assign b ~var:v (B.add b v (B.imm 1)));
        B.ret b ())
  in
  let ddg = Ddg.build f in
  (* find the add in the then-block: it reads v externally *)
  let found = ref false in
  Array.iter
    (fun (blk : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Op.Binop Op.Add
            when Array.length ddg.Ddg.deps.(i.Instr.id).Ddg.extern_regs > 0 ->
              found := true
          | _ -> ())
        blk.Func.instrs)
    f.Func.blocks;
  checkb "cross-block dependence is extern" true !found

let test_ddg_params_not_extern () =
  let p = Program.create () in
  let f =
    B.define p "params" ~nparams:2 (fun b ->
        let _ = B.add b (B.param b 0) (B.param b 1) in
        B.ret b ())
  in
  let ddg = Ddg.build f in
  checki "params are always available" 0
    (Array.length ddg.Ddg.deps.(0).Ddg.extern_regs)

let test_ddg_class_histogram () =
  let p = Program.create () in
  let g = Program.alloc p "g" ~elems:4 ~elem_size:4 in
  let f =
    B.define p "histo" ~nparams:0 (fun b ->
        let v = B.load b ~size:4 (B.elem b g (B.imm 0)) in
        B.store b ~size:4 ~addr:(B.elem b g (B.imm 1)) v;
        B.ret b ())
  in
  let h = Ddg.class_histogram (Ddg.build f) in
  checki "one load" 1 (List.assoc Op.C_load h);
  checki "one store" 1 (List.assoc Op.C_store h);
  checki "two geps" 2 (List.assoc Op.C_agu h)

(* --- Rewrite helpers --- *)

let test_def_use_counts () =
  let p = Program.create () in
  let f =
    B.define p "counts" ~nparams:1 (fun b ->
        let x = B.param b 0 in
        let a = B.add b x x in
        let _ = B.mul b a (B.imm 2) in
        B.ret b ())
  in
  let defs = Rewrite.def_counts f and uses = Rewrite.use_counts f in
  checki "param used twice" 2 uses.(0);
  checki "a defined once" 1 defs.(1);
  checki "a used once" 1 uses.(1)

(* --- Passes --- *)

let count_class f cls =
  Array.fold_left
    (fun acc (b : Func.block) ->
      Array.fold_left
        (fun acc (i : Instr.t) ->
          if Op.classify i.Instr.op = cls then acc + 1 else acc)
        acc b.Func.instrs)
    0 f.Func.blocks

let test_constant_fold () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let f =
    B.define p "cf" ~nparams:0 (fun b ->
        let c = B.add b (B.imm 2) (B.imm 3) in
        let d = B.mul b c (B.imm 4) in
        B.store b ~addr:(B.elem b out (B.imm 0)) d;
        B.ret b ())
  in
  let f' = Passes.optimize f in
  checkb "shrank" true (Passes.size f' < Passes.size f);
  (* semantics preserved *)
  let p2 = Program.create () in
  let _ = Program.alloc p2 "out" ~elems:1 ~elem_size:8 in
  Program.add_func p2 f';
  let it = Interp.create p2 ~kernel:"cf" ~ntiles:1 ~args:[] in
  let _ = Interp.run it in
  checki "still 20" 20
    (Value.to_int (Interp.peek it (Program.global_exn p2 "out").Program.base))

let test_dce () =
  let p = Program.create () in
  let f =
    B.define p "dead" ~nparams:1 (fun b ->
        let _ = B.add b (B.param b 0) (B.imm 1) in
        let _ = B.mul b (B.param b 0) (B.imm 2) in
        B.ret b ())
  in
  let f' = Passes.dead_code_elim f in
  checki "all dead removed" 1 (Passes.size f')

let test_dce_keeps_effects () =
  let p = Program.create () in
  let g = Program.alloc p "g" ~elems:1 ~elem_size:8 in
  let f =
    B.define p "effects" ~nparams:0 (fun b ->
        B.store b ~addr:(B.elem b g (B.imm 0)) (B.imm 1);
        B.ret b ())
  in
  let f' = Passes.dead_code_elim f in
  checki "stores kept" (Passes.size f) (Passes.size f')

let test_optimize_preserves_loop_semantics () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let f =
    B.define p "k" ~nparams:1 (fun b ->
        let acc = B.var b (B.imm 0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            (* foldable subexpression inside the loop *)
            let three = B.add b (B.imm 1) (B.imm 2) in
            B.assign b ~var:acc (B.add b acc (B.mul b i three)));
        B.store b ~addr:(B.elem b out (B.imm 0)) acc;
        B.ret b ())
  in
  let f' = Passes.optimize f in
  checkb "folded something" true (Passes.size f' < Passes.size f);
  let p2 = Program.create () in
  let out2 = Program.alloc p2 "out" ~elems:1 ~elem_size:8 in
  Program.add_func p2 f';
  let it = Interp.create p2 ~kernel:"k" ~ntiles:1 ~args:[ Value.of_int 5 ] in
  let _ = Interp.run it in
  (* sum of 3i for i<5 = 30 *)
  checki "sum preserved" 30 (Value.to_int (Interp.peek it out2.Program.base))

(* --- CSE --- *)

let test_cse_removes_duplicates () =
  let p = Program.create () in
  let g = Program.alloc p "g" ~elems:8 ~elem_size:4 in
  let f =
    B.define p "dup" ~nparams:1 (fun b ->
        let i = B.param b 0 in
        (* two identical address computations *)
        let a1 = B.elem b g i in
        let v = B.load b ~size:4 a1 in
        let a2 = B.elem b g i in
        B.store b ~size:4 ~addr:a2 (B.fadd b v (B.fimm 1.0));
        B.ret b ())
  in
  let f' = Passes.common_subexpr_elim f in
  checkb "one gep eliminated" true (Passes.size f' < Passes.size f);
  checki "exactly one" (Passes.size f - 1) (Passes.size f')

let test_cse_respects_redefinition () =
  let p = Program.create () in
  let f =
    B.define p "redef" ~nparams:1 (fun b ->
        let x = B.var b (B.param b 0) in
        let a = B.add b x (B.imm 1) in
        B.assign b ~var:x (B.imm 9);
        (* same textual expression but x changed: must NOT be reused *)
        let bv = B.add b x (B.imm 1) in
        let _ = B.mul b a bv in
        B.ret b ())
  in
  let f' = Passes.common_subexpr_elim f in
  checki "nothing eliminated" (Passes.size f) (Passes.size f')

let test_cse_preserves_semantics () =
  let p = Program.create () in
  let g = Program.alloc p "g" ~elems:8 ~elem_size:8 in
  let f =
    B.define p "k" ~nparams:1 (fun b ->
        let i = B.param b 0 in
        let a1 = B.elem b g i in
        let a2 = B.elem b g i in
        let v1 = B.load b a1 in
        B.store b ~addr:a2 (B.add b v1 (B.imm 5));
        B.ret b ())
  in
  let f' = Passes.common_subexpr_elim f in
  let p2 = Program.create () in
  let g2 = Program.alloc p2 "g" ~elems:8 ~elem_size:8 in
  Program.add_func p2 f';
  let it = Interp.create p2 ~kernel:"k" ~ntiles:1 ~args:[ Value.of_int 3 ] in
  Interp.poke_global it g2 3 (Value.of_int 10);
  let _ = Interp.run it in
  checki "in-place add" 15 (Value.to_int (Interp.peek_global it g2 3))

(* --- DAE slicing --- *)

let daeable_kernel () =
  let p = Program.create () in
  let xs = Program.alloc p "xs" ~elems:32 ~elem_size:4 in
  let ys = Program.alloc p "ys" ~elems:32 ~elem_size:4 in
  let f =
    B.define p "axpy" ~nparams:1 (fun b ->
        let n = B.param b 0 in
        B.for_ b ~from:(B.imm 0) ~to_:n (fun i ->
            let x = B.load b ~size:4 (B.elem b xs i) in
            let v = B.fmul b x (B.fimm 2.0) in
            B.store b ~size:4 ~addr:(B.elem b ys i) v);
        B.ret b ())
  in
  (p, xs, ys, f)

let test_dae_structure () =
  let _, _, _, f = daeable_kernel () in
  let info = Dae.slice f in
  checki "one terminal load" 1 info.Dae.sent_loads;
  checki "one routed store" 1 info.Dae.routed_stores;
  (* the access slice carries no FP compute; the execute slice no loads *)
  checki "no fmul on access side" 0 (count_class info.Dae.access Op.C_fmul);
  checki "no plain loads on execute side" 0 (count_class info.Dae.execute Op.C_load);
  checki "execute has no stores" 0 (count_class info.Dae.execute Op.C_store);
  (* both slices keep the control skeleton *)
  checki "same block count (access)"
    (Array.length f.Func.blocks)
    (Array.length info.Dae.access.Func.blocks);
  checki "same block count (execute)"
    (Array.length f.Func.blocks)
    (Array.length info.Dae.execute.Func.blocks)

let test_dae_functional_equivalence () =
  let p, xs, ys, f = daeable_kernel () in
  let info = Dae.slice f in
  Program.add_func p info.Dae.access;
  Program.add_func p info.Dae.execute;
  Validate.check_exn p;
  let args = [ Value.of_int 32 ] in
  let it =
    Interp.create_hetero p ~label:"axpy-dae"
      ~tiles:[| ("axpy_access", args); ("axpy_execute", args) |]
  in
  for i = 0 to 31 do
    Interp.poke_global it xs i (Value.of_float (float_of_int i))
  done;
  let _ = Interp.run it in
  for i = 0 to 31 do
    Alcotest.(check (float 1e-9))
      "sliced result matches"
      (2.0 *. float_of_int i)
      (Value.to_float (Interp.peek_global it ys i))
  done

let test_dae_multi_pair () =
  (* Two DAE pairs: tid remapping must route each access tile to its own
     partner. *)
  let p, xs, ys, f = daeable_kernel () in
  let info = Dae.slice f in
  Program.add_func p info.Dae.access;
  Program.add_func p info.Dae.execute;
  let args = [ Value.of_int 32 ] in
  let it =
    Interp.create_hetero p ~label:"axpy-dae2"
      ~tiles:
        [|
          ("axpy_access", args);
          ("axpy_access", args);
          ("axpy_execute", args);
          ("axpy_execute", args);
        |]
  in
  for i = 0 to 31 do
    Interp.poke_global it xs i (Value.of_float (float_of_int i))
  done;
  let _ = Interp.run it in
  let ok = ref true in
  for i = 0 to 31 do
    if
      Float.abs
        (Value.to_float (Interp.peek_global it ys i) -. (2.0 *. float_of_int i))
      > 1e-9
    then ok := false
  done;
  checkb "both pairs computed their halves" true !ok

let test_dae_rejects_communicating_kernels () =
  let p = Program.create () in
  let f =
    B.define p "comm" ~nparams:0 (fun b ->
        B.send b ~chan:0 ~dst:(B.imm 0) (B.imm 1);
        B.ret b ())
  in
  checkb "rejected" true
    (try
       ignore (Dae.slice f);
       false
     with Invalid_argument _ -> true)

let test_dae_atomic_routing () =
  (* Computed atomic values route through the store channel. *)
  let p = Program.create () in
  let w = Program.alloc p "w" ~elems:8 ~elem_size:4 in
  let acc = Program.alloc p "acc" ~elems:1 ~elem_size:4 in
  let f =
    B.define p "gather" ~nparams:1 (fun b ->
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            let x = B.load b ~size:4 (B.elem b w i) in
            let v = B.fmul b x x in
            ignore (B.atomic b Op.Rmw_add ~size:4 ~addr:(B.elem b acc (B.imm 0)) v));
        B.ret b ())
  in
  let info = Dae.slice f in
  checki "atomic routed" 1 info.Dae.routed_stores;
  Program.add_func p info.Dae.access;
  Program.add_func p info.Dae.execute;
  let args = [ Value.of_int 8 ] in
  let it =
    Interp.create_hetero p ~label:"gather-dae"
      ~tiles:[| ("gather_access", args); ("gather_execute", args) |]
  in
  for i = 0 to 7 do
    Interp.poke_global it w i (Value.of_float 1.0)
  done;
  Interp.poke_global it acc 0 (Value.of_float 0.0);
  let _ = Interp.run it in
  Alcotest.(check (float 1e-9)) "sum of squares" 8.0
    (Value.to_float (Interp.peek_global it acc 0))

let suite =
  [
    ( "compiler.ddg",
      [
        Alcotest.test_case "intra-block edges" `Quick test_ddg_intra_edges;
        Alcotest.test_case "extern registers" `Quick test_ddg_extern_regs;
        Alcotest.test_case "params not extern" `Quick test_ddg_params_not_extern;
        Alcotest.test_case "class histogram" `Quick test_ddg_class_histogram;
      ] );
    ("compiler.rewrite", [ Alcotest.test_case "def/use counts" `Quick test_def_use_counts ]);
    ( "compiler.passes",
      [
        Alcotest.test_case "constant folding" `Quick test_constant_fold;
        Alcotest.test_case "dead code elimination" `Quick test_dce;
        Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_effects;
        Alcotest.test_case "optimize preserves loops" `Quick
          test_optimize_preserves_loop_semantics;
        Alcotest.test_case "cse removes duplicates" `Quick test_cse_removes_duplicates;
        Alcotest.test_case "cse respects redefinition" `Quick
          test_cse_respects_redefinition;
        Alcotest.test_case "cse preserves semantics" `Quick test_cse_preserves_semantics;
      ] );
    ( "compiler.dae",
      [
        Alcotest.test_case "slice structure" `Quick test_dae_structure;
        Alcotest.test_case "functional equivalence" `Quick test_dae_functional_equivalence;
        Alcotest.test_case "multiple pairs" `Quick test_dae_multi_pair;
        Alcotest.test_case "rejects communicating kernels" `Quick
          test_dae_rejects_communicating_kernels;
        Alcotest.test_case "atomic value routing" `Quick test_dae_atomic_routing;
      ] );
  ]
