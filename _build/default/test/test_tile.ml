(* System-level behaviour tests for the graph-based tile model, driven
   through Soc.run on purpose-built micro-kernels. *)

open Mosaic_ir
module B = Builder
module Interp = Mosaic_trace.Interp
module Soc = Mosaic.Soc
module TC = Mosaic_tile.Tile_config
module Branch = Mosaic_tile.Branch

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A serial dependence chain: n back-to-back integer adds. *)
let chain_kernel n =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "chain" ~nparams:0 (fun b ->
        let v = ref (B.imm 1) in
        for _ = 1 to n do
          v := B.add b !v (B.imm 1)
        done;
        B.store b ~addr:(B.elem b out (B.imm 0)) !v;
        B.ret b ())
  in
  p

(* Two independent n/2 chains joined at the end: same instruction count as
   [chain_kernel n] but half the critical path. *)
let parallel_kernel n =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "par" ~nparams:0 (fun b ->
        let x = ref (B.imm 1) and y = ref (B.imm 2) in
        for _ = 1 to (n / 2) - 1 do
          x := B.add b !x (B.imm 1);
          y := B.add b !y (B.imm 1)
        done;
        B.store b ~addr:(B.elem b out (B.imm 0)) (B.add b !x !y);
        B.ret b ())
  in
  p

let run_kernel ?(cfg = Mosaic.Presets.dae_soc) p kernel core =
  let it = Interp.create p ~kernel ~ntiles:1 ~args:[] in
  let trace = Interp.run it in
  Soc.run_homogeneous cfg ~program:p ~trace ~tile_config:core

let test_chain_serializes () =
  let p = chain_kernel 64 in
  let r = run_kernel p "chain" TC.out_of_order in
  (* 64 dependent 1-cycle adds cannot finish faster than 64 cycles. *)
  checkb "chain lower bound" true (r.Soc.cycles >= 64)

let test_parallelism_beats_chain () =
  let chain = run_kernel (chain_kernel 64) "chain" TC.out_of_order in
  let par = run_kernel (parallel_kernel 64) "par" TC.out_of_order in
  checkb "independent work faster than chain" true (par.Soc.cycles < chain.Soc.cycles)

let test_issue_width_matters () =
  let p = parallel_kernel 128 in
  let narrow = { TC.out_of_order with TC.issue_width = 1; name = "w1" } in
  let r1 = run_kernel p "par" narrow in
  let r4 = run_kernel (parallel_kernel 128) "par" TC.out_of_order in
  checkb "4-wide beats 1-wide" true (r4.Soc.cycles < r1.Soc.cycles)

let test_window_limits_mlp () =
  (* Many independent loads over a large array: a bigger window overlaps
     more misses. *)
  let mk () =
    let p = Program.create () in
    let arr = Program.alloc p "arr" ~elems:8192 ~elem_size:8 in
    let _ =
      B.define p "loads" ~nparams:0 (fun b ->
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm 1024) (fun i ->
              ignore (B.load b (B.elem b arr (B.mul b i (B.imm 8)))));
          B.ret b ())
    in
    p
  in
  let small = { TC.out_of_order with TC.window_size = 8; name = "small" } in
  let big = { TC.out_of_order with TC.window_size = 256; name = "big" } in
  let r_small = run_kernel (mk ()) "loads" small in
  let r_big = run_kernel (mk ()) "loads" big in
  checkb "bigger window overlaps more misses" true
    (r_big.Soc.cycles * 2 < r_small.Soc.cycles)

let test_in_order_slower_than_ooo () =
  let inst = Mosaic_workloads.Registry.instance "stencil" in
  let trace = Mosaic_workloads.Runner.trace inst ~ntiles:1 in
  let run core =
    Soc.run_homogeneous Mosaic.Presets.dae_soc
      ~program:inst.Mosaic_workloads.Runner.program ~trace ~tile_config:core
  in
  let ooo = run TC.out_of_order and ino = run TC.in_order in
  checkb "OoO faster" true (ooo.Soc.cycles < ino.Soc.cycles);
  checkb "InO IPC <= 1" true
    (float_of_int ino.Soc.instrs /. float_of_int ino.Soc.cycles <= 1.0 +. 1e-9)

let test_branch_policies_ordering () =
  (* A loop-heavy kernel: perfect prediction <= static <= no speculation. *)
  let mk () =
    let p = Program.create () in
    let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
    let _ =
      B.define p "loops" ~nparams:0 (fun b ->
          let acc = B.var b (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm 500) (fun i ->
              B.assign b ~var:acc (B.add b acc i));
          B.store b ~addr:(B.elem b out (B.imm 0)) acc;
          B.ret b ())
    in
    p
  in
  let with_policy policy name =
    run_kernel (mk ()) "loops" { TC.out_of_order with TC.branch = policy; name }
  in
  let perfect = with_policy Branch.Perfect "perfect" in
  let static_ = with_policy (Branch.Static { penalty = 12 }) "static" in
  let none = with_policy Branch.No_speculation "none" in
  checkb "perfect <= static" true (perfect.Soc.cycles <= static_.Soc.cycles);
  checkb "static < no speculation" true (static_.Soc.cycles < none.Soc.cycles)

let test_branch_stats_recorded () =
  let p = chain_kernel 4 in
  let r = run_kernel p "chain" TC.out_of_order in
  let bs = r.Soc.tile_stats.(0).Mosaic_tile.Core_tile.branch in
  checkb "predictions tracked" true (bs.Branch.predictions >= 0);
  checki "instrs all completed" r.Soc.instrs
    r.Soc.tile_stats.(0).Mosaic_tile.Core_tile.completed_instrs

let test_live_dbb_limit_throttles () =
  let mk () =
    let p = Program.create () in
    let out = Program.alloc p "out" ~elems:64 ~elem_size:8 in
    let _ =
      B.define p "unroll" ~nparams:0 (fun b ->
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm 64) (fun i ->
              B.store b ~addr:(B.elem b out i) (B.mul b i i));
          B.ret b ())
    in
    p
  in
  let base = TC.pre_rtl_accelerator () in
  let wide = { base with TC.live_dbb_limit = Some 8; name = "wide" } in
  let narrow =
    { base with TC.live_dbb_limit = Some 1; max_live_dbbs = 2; name = "narrow" }
  in
  let r_wide = run_kernel (mk ()) "unroll" wide in
  let r_narrow = run_kernel (mk ()) "unroll" narrow in
  checkb "loop replication speeds the accelerator" true
    (r_wide.Soc.cycles < r_narrow.Soc.cycles)

let test_perfect_alias_helps_stores () =
  (* Interleaved stores and loads at distinct addresses: without alias
     speculation younger ops wait on unresolved older addresses. *)
  let mk () =
    let p = Program.create () in
    let a = Program.alloc p "a" ~elems:512 ~elem_size:8 in
    let bglob = Program.alloc p "b" ~elems:512 ~elem_size:8 in
    let _ =
      B.define p "mix" ~nparams:0 (fun b ->
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm 256) (fun i ->
              let v = B.load b (B.elem b a i) in
              B.store b ~addr:(B.elem b bglob i) v);
          B.ret b ())
    in
    p
  in
  let speculative = { TC.out_of_order with TC.perfect_alias = true; name = "pa" } in
  let r_spec = run_kernel (mk ()) "mix" speculative in
  let r_base = run_kernel (mk ()) "mix" TC.out_of_order in
  checkb "perfect alias at least as fast" true (r_spec.Soc.cycles <= r_base.Soc.cycles)

let test_clock_divider_scales () =
  (* Long chain so the fixed cold-miss cost of the final store does not
     dilute the ratio. *)
  let p = chain_kernel 400 in
  let slow = { TC.out_of_order with TC.clock_divider = 2; name = "slow" } in
  let r_fast = run_kernel (chain_kernel 400) "chain" TC.out_of_order in
  let r_slow = run_kernel p "chain" slow in
  checkb "half-clock tile roughly doubles cycles" true
    (r_slow.Soc.cycles > (3 * r_fast.Soc.cycles) / 2)

let test_send_recv_timing () =
  (* Producer/consumer across two tiles through the Interleaver. *)
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "pc" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 50) (fun i ->
                B.send b ~chan:0 ~dst:(B.imm 1) i))
          (fun () ->
            let acc = B.var b (B.imm 0) in
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 50) (fun _ ->
                B.assign b ~var:acc (B.add b acc (B.recv b ~chan:0)));
            B.store b ~addr:(B.elem b out (B.imm 0)) acc);
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"pc" ~ntiles:2 ~args:[] in
  let trace = Interp.run it in
  let r =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:p ~trace
      ~tile_config:TC.out_of_order
  in
  checki "all messages delivered" 50 r.Soc.interleaver.Mosaic.Interleaver.sends;
  checki "all received" 50 r.Soc.interleaver.Mosaic.Interleaver.recvs

let test_small_buffer_backpressure () =
  let p = Program.create () in
  let _ =
    B.define p "burst" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 100) (fun i ->
                B.send b ~chan:0 ~dst:(B.imm 1) i))
          (fun () ->
            (* slow consumer: long dependent chain between receives *)
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 100) (fun _ ->
                let v = B.recv b ~chan:0 in
                let s = ref v in
                for _ = 1 to 8 do
                  s := B.mul b !s !s
                done));
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"burst" ~ntiles:2 ~args:[] in
  let trace = Interp.run it in
  let cfg = { Mosaic.Presets.dae_soc with Soc.buffer_capacity = 4 } in
  let r = Soc.run_homogeneous cfg ~program:p ~trace ~tile_config:TC.out_of_order in
  checkb "sender stalled on full buffer" true
    (r.Soc.interleaver.Mosaic.Interleaver.send_stalls > 0)

let suite =
  [
    ( "tile.execution",
      [
        Alcotest.test_case "dependence chains serialize" `Quick test_chain_serializes;
        Alcotest.test_case "parallel work overlaps" `Quick test_parallelism_beats_chain;
        Alcotest.test_case "issue width" `Quick test_issue_width_matters;
        Alcotest.test_case "window bounds MLP" `Quick test_window_limits_mlp;
        Alcotest.test_case "in-order vs OoO" `Quick test_in_order_slower_than_ooo;
        Alcotest.test_case "clock divider" `Quick test_clock_divider_scales;
      ] );
    ( "tile.speculation",
      [
        Alcotest.test_case "branch policy ordering" `Quick test_branch_policies_ordering;
        Alcotest.test_case "branch stats" `Quick test_branch_stats_recorded;
        Alcotest.test_case "perfect alias speculation" `Quick test_perfect_alias_helps_stores;
      ] );
    ( "tile.accelerator-knobs",
      [ Alcotest.test_case "live DBB limit" `Quick test_live_dbb_limit_throttles ] );
    ( "tile.communication",
      [
        Alcotest.test_case "send/recv delivery" `Quick test_send_recv_timing;
        Alcotest.test_case "buffer backpressure" `Quick test_small_buffer_backpressure;
      ] );
  ]
