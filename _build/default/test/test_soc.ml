(* Tests for the SoC driver, Interleaver and accelerator integration. *)

module Soc = Mosaic.Soc
module Interleaver = Mosaic.Interleaver
module TC = Mosaic_tile.Tile_config
module W = Mosaic_workloads
module Trace = Mosaic_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sgemm_run ?(ntiles = 2) () =
  let inst = W.Sgemm.instance ~m:16 ~n:16 ~k:16 () in
  let trace = W.Runner.trace inst ~ntiles in
  ( inst,
    trace,
    Soc.run_homogeneous Mosaic.Presets.dae_soc
      ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order )

let test_result_consistency () =
  let _, trace, r = sgemm_run () in
  checki "all dynamic instructions completed" (Trace.total_dyn_instrs trace)
    r.Soc.instrs;
  checkb "cycles positive" true (r.Soc.cycles > 0);
  checkb "ipc positive" true (r.Soc.ipc > 0.0);
  checkb "energy positive" true (r.Soc.energy_j > 0.0);
  checkb "edp consistent" true
    (Float.abs (r.Soc.edp -. (r.Soc.energy_j *. r.Soc.seconds)) < 1e-18);
  checkb "mem accesses counted" true
    (r.Soc.mem_totals.Mosaic_memory.Hierarchy.l1_accesses > 0)

let test_determinism () =
  let _, _, r1 = sgemm_run () in
  let _, _, r2 = sgemm_run () in
  checki "same cycles" r1.Soc.cycles r2.Soc.cycles;
  checki "same instrs" r1.Soc.instrs r2.Soc.instrs

let test_tile_trace_mismatch_errors () =
  let inst, trace, _ = sgemm_run () in
  checkb "tile count mismatch rejected" true
    (try
       ignore
         (Soc.run Mosaic.Presets.dae_soc ~program:inst.W.Runner.program ~trace
            ~tiles:[| { Soc.kernel = "sgemm"; tile_config = TC.out_of_order } |]);
       false
     with Invalid_argument _ -> true);
  checkb "kernel mismatch rejected" true
    (try
       ignore
         (Soc.run Mosaic.Presets.dae_soc ~program:inst.W.Runner.program ~trace
            ~tiles:
              (Array.make 2 { Soc.kernel = "nope"; tile_config = TC.out_of_order }));
       false
     with Invalid_argument _ -> true)

let test_more_tiles_scale () =
  let inst1 = W.Sgemm.instance ~m:32 ~n:32 ~k:32 () in
  let t1 = W.Runner.trace inst1 ~ntiles:1 in
  let r1 =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst1.W.Runner.program
      ~trace:t1 ~tile_config:TC.out_of_order
  in
  let inst4 = W.Sgemm.instance ~m:32 ~n:32 ~k:32 () in
  let t4 = W.Runner.trace inst4 ~ntiles:4 in
  let r4 =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst4.W.Runner.program
      ~trace:t4 ~tile_config:TC.out_of_order
  in
  checkb "4 tiles at least 2x faster" true (r4.Soc.cycles * 2 < r1.Soc.cycles)

let test_accelerator_invocation () =
  let inst = W.Sgemm.instance ~accel:true ~m:32 ~n:32 ~k:32 () in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst.W.Runner.program
      ~trace ~tile_config:TC.out_of_order
  in
  checki "one invocation" 1 r.Soc.accel_invocations;
  (* accelerated run beats the software run *)
  let sw = W.Sgemm.instance ~m:32 ~n:32 ~k:32 () in
  let sw_trace = W.Runner.trace sw ~ntiles:1 in
  let r_sw =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:sw.W.Runner.program
      ~trace:sw_trace ~tile_config:TC.out_of_order
  in
  checkb "accelerator speeds up gemm" true (r.Soc.cycles < r_sw.Soc.cycles);
  checkb "accelerator DMA hits DRAM" true
    ((r.Soc.dram.Mosaic_memory.Dram.reads : int) > 0)

let test_interleaver_direct () =
  let il = Interleaver.create ~buffer_capacity:2 ~wire_latency:3 () in
  checkb "send ok" true (Interleaver.send il ~src:0 ~dst:1 ~chan:0 ~cycle:10 ~available:10);
  checkb "send ok" true (Interleaver.send il ~src:0 ~dst:1 ~chan:0 ~cycle:11 ~available:11);
  checkb "full" false (Interleaver.send il ~src:0 ~dst:1 ~chan:0 ~cycle:12 ~available:12);
  (* arrival respects wire latency *)
  (match Interleaver.try_recv il ~tile:1 ~chan:0 ~cycle:10 with
  | Some c -> checki "arrival = available + wire" 13 c
  | None -> Alcotest.fail "message missing");
  (* late consumer gets it immediately *)
  (match Interleaver.try_recv il ~tile:1 ~chan:0 ~cycle:100 with
  | Some c -> checki "immediate when late" 101 c
  | None -> Alcotest.fail "message missing");
  Alcotest.(check (option int)) "drained" None (Interleaver.try_recv il ~tile:1 ~chan:0 ~cycle:0)

let test_interleaver_take_or_owe () =
  let il = Interleaver.create ~buffer_capacity:2 ~wire_latency:1 () in
  (* debt first, send later: the send is absorbed *)
  checkb "owe ok" true (Interleaver.take_or_owe il ~tile:0 ~chan:1);
  checkb "send absorbed" true (Interleaver.send il ~src:1 ~dst:0 ~chan:1 ~cycle:5 ~available:5);
  Alcotest.(check (option int)) "nothing buffered" None
    (Interleaver.try_recv il ~tile:0 ~chan:1 ~cycle:50);
  (* debt ceiling *)
  checkb "owe 1" true (Interleaver.take_or_owe il ~tile:0 ~chan:1);
  checkb "owe 2" true (Interleaver.take_or_owe il ~tile:0 ~chan:1);
  checkb "ceiling" false (Interleaver.take_or_owe il ~tile:0 ~chan:1)

let test_interleaver_stats () =
  let il = Interleaver.create () in
  ignore (Interleaver.send il ~src:0 ~dst:1 ~chan:0 ~cycle:0 ~available:0);
  ignore (Interleaver.try_recv il ~tile:1 ~chan:0 ~cycle:5);
  let s = Interleaver.stats il in
  checki "sends" 1 s.Interleaver.sends;
  checki "recvs" 1 s.Interleaver.recvs;
  checki "occupancy back to zero" 0 (Interleaver.occupancy il)

let test_dram_model_choice () =
  (* The same workload on SimpleDRAM vs the detailed model: both finish,
     detailed sees row hits. *)
  let inst = W.Registry.instance "stencil" in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let detailed_cfg =
    Soc.with_hierarchy Mosaic.Presets.dae_soc
      {
        Mosaic.Presets.dae_hierarchy with
        Mosaic_memory.Hierarchy.dram =
          Mosaic_memory.Hierarchy.Detailed Mosaic_memory.Dram.default_detailed;
      }
  in
  let r =
    Soc.run_homogeneous detailed_cfg ~program:inst.W.Runner.program ~trace
      ~tile_config:TC.out_of_order
  in
  checkb "finished on detailed DRAM" true (r.Soc.cycles > 0);
  checkb "row locality observed" true (r.Soc.dram.Mosaic_memory.Dram.row_hits > 0)

let test_report_renders () =
  let _, _, r = sgemm_run () in
  let out = Mosaic.Report.full r in
  List.iter
    (fun fragment ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      checkb (Printf.sprintf "report mentions %s" fragment) true
        (contains out fragment))
    [ "summary"; "per tile"; "instruction mix"; "memory system"; "IPC"; "falu" ]

let test_simple_models_bracket () =
  (* 1-IPC ignores memory; the interval model stalls on misses; both must
     bracket sensibly against MosaicSim on a memory-bound kernel. *)
  let inst = W.Registry.instance "spmv" in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let ipc1 =
    (Mosaic_baseline.Simple_models.one_ipc ~trace)
      .Mosaic_baseline.Simple_models.cycles
  in
  checki "1-IPC = dynamic instruction count" (Trace.total_dyn_instrs trace) ipc1;
  let interval =
    (Mosaic_baseline.Simple_models.interval ~program:inst.W.Runner.program
       ~trace ~hierarchy:Mosaic.Presets.xeon_hierarchy ())
      .Mosaic_baseline.Simple_models.cycles
  in
  checkb "interval sees memory stalls" true (interval > ipc1)

let suite =
  [
    ( "soc.run",
      [
        Alcotest.test_case "result consistency" `Quick test_result_consistency;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "tile/trace mismatches" `Quick test_tile_trace_mismatch_errors;
        Alcotest.test_case "multi-tile scaling" `Quick test_more_tiles_scale;
        Alcotest.test_case "accelerator invocation" `Quick test_accelerator_invocation;
        Alcotest.test_case "dram model choice" `Quick test_dram_model_choice;
      ] );
    ( "soc.interleaver",
      [
        Alcotest.test_case "send/recv timing" `Quick test_interleaver_direct;
        Alcotest.test_case "take_or_owe" `Quick test_interleaver_take_or_owe;
        Alcotest.test_case "stats" `Quick test_interleaver_stats;
      ] );
    ( "soc.reporting",
      [
        Alcotest.test_case "report renders" `Quick test_report_renders;
        Alcotest.test_case "simple models" `Quick test_simple_models_bracket;
      ] );
  ]
