(* Tests for the x86 reference model. *)

module X86 = Mosaic_baseline.X86_model
module W = Mosaic_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_x86 ?config name ~ntiles =
  let inst = W.Registry.instance name in
  let trace = W.Runner.trace inst ~ntiles in
  X86.run ?config ~program:inst.W.Runner.program ~trace
    ~hierarchy:Mosaic.Presets.xeon_hierarchy ()

let test_determinism () =
  let a = run_x86 "stencil" ~ntiles:1 in
  let b = run_x86 "stencil" ~ntiles:1 in
  checki "same cycles" a.X86.cycles b.X86.cycles

let test_fusion_reduces_instrs () =
  let inst = W.Registry.instance "stencil" in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    X86.run ~program:inst.W.Runner.program ~trace
      ~hierarchy:Mosaic.Presets.xeon_hierarchy ()
  in
  checkb "x86 count below IR count" true
    (r.X86.x86_instrs < Mosaic_trace.Trace.total_dyn_instrs trace);
  checkb "but most instructions remain" true
    (2 * r.X86.x86_instrs > Mosaic_trace.Trace.total_dyn_instrs trace)

let test_threads_speed_up () =
  let one = run_x86 "sgemm" ~ntiles:1 in
  let four = run_x86 "sgemm" ~ntiles:4 in
  checkb "parallel speedup" true (4 * four.X86.cycles < 2 * one.X86.cycles)

let test_atomics_limit_scaling () =
  (* BFS is atomic-heavy: the lock serialization must flatten scaling well
     below linear at 8 threads. *)
  let one = run_x86 "bfs" ~ntiles:1 in
  let eight = run_x86 "bfs" ~ntiles:8 in
  let speedup = float_of_int one.X86.cycles /. float_of_int eight.X86.cycles in
  checkb "sublinear atomic-bound scaling" true (speedup < 6.0)

let test_math_is_expensive () =
  (* mri-q is dominated by sin/cos; doubling the math cost should move
     total time substantially. *)
  let base = run_x86 "mri-q" ~ntiles:1 in
  let pricey =
    run_x86 "mri-q" ~ntiles:1
      ~config:{ X86.default_config with X86.math_cycles = 2.0 *. X86.default_config.X86.math_cycles }
  in
  checkb "math dominates mri-q" true
    (float_of_int pricey.X86.cycles > 1.5 *. float_of_int base.X86.cycles)

let test_mosaic_vs_x86_band () =
  (* The headline accuracy property: across the suite the factor stays in a
     sane band and the geomean is near 1. Uses three representative
     benchmarks to stay fast. *)
  let factors =
    List.map
      (fun name ->
        let inst = W.Registry.instance name in
        let trace = W.Runner.trace inst ~ntiles:1 in
        let m =
          Mosaic.Soc.run_homogeneous Mosaic.Presets.xeon_soc
            ~program:inst.W.Runner.program ~trace
            ~tile_config:Mosaic_tile.Tile_config.out_of_order
        in
        let x =
          X86.run ~program:inst.W.Runner.program ~trace
            ~hierarchy:Mosaic.Presets.xeon_hierarchy ()
        in
        float_of_int m.Mosaic.Soc.cycles /. float_of_int x.X86.cycles)
      [ "sgemm"; "spmv"; "stencil" ]
  in
  List.iter
    (fun f -> checkb "factor within band" true (f > 0.3 && f < 3.5))
    factors

let suite =
  [
    ( "baseline.x86",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "ISA fusion" `Quick test_fusion_reduces_instrs;
        Alcotest.test_case "thread scaling" `Quick test_threads_speed_up;
        Alcotest.test_case "atomic serialization" `Quick test_atomics_limit_scaling;
        Alcotest.test_case "math cost" `Quick test_math_is_expensive;
        Alcotest.test_case "accuracy band" `Quick test_mosaic_vs_x86_band;
      ] );
  ]
