(* Tests for the IR: values, opcodes, programs, builder, validator. *)

open Mosaic_ir
module B = Builder

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Value --- *)

let test_value_coercions () =
  checki "to_int of float" 3 (Value.to_int (Value.Float 3.7));
  Alcotest.(check (float 0.0)) "to_float of int" 5.0 (Value.to_float (Value.Int 5L));
  checkb "truthy int" true (Value.to_bool (Value.Int 2L));
  checkb "falsy zero" false (Value.to_bool Value.zero);
  checkb "truthy float" true (Value.to_bool (Value.Float 0.5));
  checkb "equal" true (Value.equal (Value.of_int 4) (Value.Int 4L));
  checkb "int <> float" false (Value.equal (Value.Int 1L) (Value.Float 1.0));
  Alcotest.(check string) "to_string" "42" (Value.to_string (Value.of_int 42))

(* --- Op --- *)

let test_op_classification () =
  checkb "add is ialu" true (Op.classify (Op.Binop Op.Add) = Op.C_ialu);
  checkb "mul is imul" true (Op.classify (Op.Binop Op.Mul) = Op.C_imul);
  checkb "fadd is falu" true (Op.classify (Op.Fbinop Op.Fadd) = Op.C_falu);
  checkb "load" true (Op.classify (Op.Load 4) = Op.C_load);
  checkb "load_send is load-class" true
    (Op.classify (Op.Load_send (0, 4)) = Op.C_load);
  checkb "atomic store_recv is atomic-class" true
    (Op.classify (Op.Store_recv (1, 4, Some Op.Rmw_add)) = Op.C_atomic);
  checkb "ret is branch" true (Op.classify Op.Ret = Op.C_branch)

let test_op_predicates () =
  checkb "store is mem" true (Op.is_mem (Op.Store 8));
  checkb "gep not mem" false (Op.is_mem (Op.Gep 4));
  checkb "ret terminator" true (Op.is_terminator Op.Ret);
  checkb "condbr terminator" true (Op.is_terminator (Op.Cond_br (1, 2)));
  checkb "load dynamic" true (Op.is_dynamic_cost (Op.Load 4));
  checkb "add fixed" false (Op.is_dynamic_cost (Op.Binop Op.Add));
  Alcotest.(check (option int)) "mem_size load" (Some 4) (Op.mem_size (Op.Load 4));
  Alcotest.(check (option int)) "mem_size add" None (Op.mem_size (Op.Binop Op.Add));
  checkb "load has result" true (Op.has_result (Op.Load 4));
  checkb "store no result" false (Op.has_result (Op.Store 4));
  checkb "load_send no result" false (Op.has_result (Op.Load_send (0, 4)))

let test_op_all_classes_distinct () =
  let n = List.length Op.all_classes in
  checki "distinct class strings" n
    (List.sort_uniq compare (List.map Op.class_to_string Op.all_classes)
    |> List.length)

(* --- Eval --- *)

let test_eval_ibinop () =
  Alcotest.(check int64) "add" 7L (Eval.ibinop Op.Add 3L 4L);
  Alcotest.(check int64) "sdiv by zero" 0L (Eval.ibinop Op.Sdiv 5L 0L);
  Alcotest.(check int64) "srem" 2L (Eval.ibinop Op.Srem 17L 5L);
  Alcotest.(check int64) "shl" 16L (Eval.ibinop Op.Shl 1L 4L);
  Alcotest.(check int64) "ashr negative" (-2L) (Eval.ibinop Op.Ashr (-8L) 2L)

let test_eval_preds () =
  checkb "lt" true (Eval.pred_int Op.Lt 1L 2L);
  checkb "ge" true (Eval.pred_int Op.Ge 2L 2L);
  checkb "fne" true (Eval.pred_float Op.Ne 1.0 2.0)

let test_eval_math () =
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 (Eval.math Op.Sqrt [| 9.0 |]);
  Alcotest.(check (float 1e-9)) "pow" 8.0 (Eval.math Op.Pow [| 2.0; 3.0 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Eval.math: arity mismatch")
    (fun () -> ignore (Eval.math Op.Sqrt [| 1.0; 2.0 |]))

let test_eval_rmw () =
  checkb "int add" true
    (Value.equal (Eval.rmw Op.Rmw_add (Value.Int 3L) (Value.Int 4L)) (Value.Int 7L));
  checkb "float add" true
    (Value.equal
       (Eval.rmw Op.Rmw_add (Value.Float 1.5) (Value.Float 1.0))
       (Value.Float 2.5));
  checkb "min" true
    (Value.equal (Eval.rmw Op.Rmw_min (Value.Int 3L) (Value.Int 9L)) (Value.Int 3L));
  checkb "xchg" true
    (Value.equal (Eval.rmw Op.Rmw_xchg (Value.Int 3L) (Value.Int 9L)) (Value.Int 9L))

(* --- Program --- *)

let test_program_globals () =
  let p = Program.create () in
  let a = Program.alloc p "a" ~elems:10 ~elem_size:4 in
  let b = Program.alloc p "b" ~elems:3 ~elem_size:8 in
  checkb "line aligned" true (a.Program.base mod 64 = 0);
  checkb "b after a" true (b.Program.base >= a.Program.base + 40);
  checkb "b line aligned" true (b.Program.base mod 64 = 0);
  checki "data bytes" (40 + 24) (Program.data_bytes p);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Program.alloc: duplicate global a") (fun () ->
      ignore (Program.alloc p "a" ~elems:1 ~elem_size:4));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Program.alloc: sizes must be positive") (fun () ->
      ignore (Program.alloc p "c" ~elems:0 ~elem_size:4));
  checkb "find" true (Program.find_global p "b" <> None);
  checkb "missing" true (Program.find_global p "zzz" = None)

let test_program_funcs () =
  let p = Program.create () in
  let f =
    B.define p "k" ~nparams:0 (fun b -> B.ret b ())
  in
  checkb "registered" true (Program.find_func p "k" = Some f);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Program.add_func: duplicate k") (fun () ->
      Program.add_func p f);
  checki "one func" 1 (List.length (Program.funcs p))

(* --- Builder --- *)

let test_builder_simple () =
  let p = Program.create () in
  let f =
    B.define p "arith" ~nparams:2 (fun b ->
        let x = B.param b 0 and y = B.param b 1 in
        let s = B.add b x y in
        let _ = B.mul b s (B.imm 3) in
        B.ret b ())
  in
  checki "one block" 1 (Array.length f.Func.blocks);
  checki "instrs" 3 f.Func.ninstrs;
  checkb "terminated" true
    (Op.is_terminator (Func.terminator f.Func.blocks.(0)).Instr.op)

let test_builder_if_shape () =
  let p = Program.create () in
  let f =
    B.define p "branches" ~nparams:1 (fun b ->
        B.if_else b (B.param b 0)
          (fun () -> ignore (B.add b (B.imm 1) (B.imm 2)))
          (fun () -> ignore (B.sub b (B.imm 1) (B.imm 2)));
        B.ret b ())
  in
  (* entry + then + else + join *)
  checki "four blocks" 4 (Array.length f.Func.blocks);
  Alcotest.(check (list int)) "entry successors" [ 1; 2 ]
    (Func.successors f.Func.blocks.(0))

let test_builder_for_executes () =
  (* The canonical loop shape: validated and structurally sane. *)
  let p = Program.create () in
  let f =
    B.define p "loop" ~nparams:1 (fun b ->
        let acc = B.var b (B.imm 0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            B.assign b ~var:acc (B.add b acc i));
        B.ret b ())
  in
  Alcotest.(check (list string)) "no validation errors" []
    (List.map (fun e -> Format.asprintf "%a" Validate.pp_error e)
       (Validate.check_func f))

let test_builder_unterminated () =
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder(bad): block 0 not terminated") (fun () ->
      let p = Program.create () in
      ignore (B.define p "bad" ~nparams:0 (fun _ -> ())))

let test_builder_emit_after_terminator () =
  let p = Program.create () in
  Alcotest.check_raises "emit after ret"
    (Invalid_argument "Builder(bad2): emit into terminated block 0") (fun () ->
      ignore
        (B.define p "bad2" ~nparams:0 (fun b ->
             B.ret b ();
             ignore (B.add b (B.imm 1) (B.imm 1)))))

let test_builder_assign_non_var () =
  let p = Program.create () in
  Alcotest.check_raises "assign to imm"
    (Invalid_argument "Builder.assign: target is not a variable") (fun () ->
      ignore
        (B.define p "bad3" ~nparams:0 (fun b ->
             B.assign b ~var:(B.imm 3) (B.imm 4);
             B.ret b ())))

let test_builder_param_bounds () =
  let p = Program.create () in
  Alcotest.check_raises "bad param"
    (Invalid_argument "Builder.param: bad has 1 params") (fun () ->
      ignore
        (B.define p "bad" ~nparams:1 (fun b ->
             ignore (B.param b 1);
             B.ret b ())))

(* --- Validate --- *)

let mk_func ~nregs blocks =
  Func.make ~name:"test" ~nparams:0 ~nregs ~blocks

let instr id op args dst = Instr.make ~id ~op ~args ~dst

let test_validate_catches_bad_target () =
  let f =
    mk_func ~nregs:1
      [| { Func.bid = 0; instrs = [| instr 0 (Op.Br 5) [||] None |] } |]
  in
  checkb "error found" true (Validate.check_func f <> [])

let test_validate_catches_bad_reg () =
  let f =
    mk_func ~nregs:1
      [|
        {
          Func.bid = 0;
          instrs =
            [|
              instr 0 (Op.Binop Op.Add) [| Instr.Reg 7; Instr.Imm Value.zero |] (Some 0);
              instr 1 Op.Ret [||] None;
            |];
        };
      |]
  in
  checkb "error found" true (Validate.check_func f <> [])

let test_validate_catches_unwritten_reg () =
  let f =
    mk_func ~nregs:2
      [|
        {
          Func.bid = 0;
          instrs =
            [|
              instr 0 (Op.Binop Op.Add) [| Instr.Reg 1; Instr.Imm Value.zero |] (Some 0);
              instr 1 Op.Ret [||] None;
            |];
        };
      |]
  in
  checkb "reads never-written register" true (Validate.check_func f <> [])

let test_validate_catches_mid_terminator () =
  let f =
    mk_func ~nregs:0
      [|
        {
          Func.bid = 0;
          instrs = [| instr 0 Op.Ret [||] None; instr 1 Op.Ret [||] None |];
        };
      |]
  in
  checkb "terminator mid-block" true (Validate.check_func f <> [])

let test_validate_catches_arity () =
  let f =
    mk_func ~nregs:1
      [|
        {
          Func.bid = 0;
          instrs =
            [|
              instr 0 (Op.Binop Op.Add) [| Instr.Imm Value.zero |] (Some 0);
              instr 1 Op.Ret [||] None;
            |];
        };
      |]
  in
  checkb "arity error" true (Validate.check_func f <> [])

let test_validate_unresolved_global () =
  let p = Program.create () in
  let _ =
    B.define p "g" ~nparams:0 (fun b ->
        ignore (B.load b ~size:4 (B.gep b ~scale:4 (Instr.Glob "nope") (B.imm 0)));
        B.ret b ())
  in
  checkb "unresolved global flagged" true (Validate.check_program p <> [])

(* --- Pretty --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pretty_simple () =
  let p = Program.create () in
  let g = Program.alloc p "data" ~elems:4 ~elem_size:8 in
  let f =
    B.define p "show" ~nparams:1 (fun b ->
        let v = B.load b (B.elem b g (B.param b 0)) in
        B.store b ~addr:(B.elem b g (B.imm 0)) v;
        B.ret b ())
  in
  let out = Pretty.func_to_string f in
  List.iter
    (fun fragment ->
      checkb (Printf.sprintf "contains %s" fragment) true (contains out fragment))
    [ "kernel @show"; "load.8"; "store.8"; "@data"; "ret" ]

let suite =
  [
    ("ir.value", [ Alcotest.test_case "coercions" `Quick test_value_coercions ]);
    ( "ir.op",
      [
        Alcotest.test_case "classification" `Quick test_op_classification;
        Alcotest.test_case "predicates" `Quick test_op_predicates;
        Alcotest.test_case "class names distinct" `Quick test_op_all_classes_distinct;
      ] );
    ( "ir.eval",
      [
        Alcotest.test_case "integer binops" `Quick test_eval_ibinop;
        Alcotest.test_case "predicates" `Quick test_eval_preds;
        Alcotest.test_case "math" `Quick test_eval_math;
        Alcotest.test_case "rmw" `Quick test_eval_rmw;
      ] );
    ( "ir.program",
      [
        Alcotest.test_case "global allocation" `Quick test_program_globals;
        Alcotest.test_case "function registry" `Quick test_program_funcs;
      ] );
    ( "ir.builder",
      [
        Alcotest.test_case "simple emission" `Quick test_builder_simple;
        Alcotest.test_case "if/else shape" `Quick test_builder_if_shape;
        Alcotest.test_case "for loop validates" `Quick test_builder_for_executes;
        Alcotest.test_case "unterminated rejected" `Quick test_builder_unterminated;
        Alcotest.test_case "emit after terminator" `Quick test_builder_emit_after_terminator;
        Alcotest.test_case "assign to non-var" `Quick test_builder_assign_non_var;
        Alcotest.test_case "param bounds" `Quick test_builder_param_bounds;
      ] );
    ( "ir.validate",
      [
        Alcotest.test_case "bad branch target" `Quick test_validate_catches_bad_target;
        Alcotest.test_case "register out of range" `Quick test_validate_catches_bad_reg;
        Alcotest.test_case "never-written register" `Quick test_validate_catches_unwritten_reg;
        Alcotest.test_case "terminator mid-block" `Quick test_validate_catches_mid_terminator;
        Alcotest.test_case "operand arity" `Quick test_validate_catches_arity;
        Alcotest.test_case "unresolved global" `Quick test_validate_unresolved_global;
      ] );
    ("ir.pretty", [ Alcotest.test_case "round trip fragments" `Quick test_pretty_simple ]);
  ]
