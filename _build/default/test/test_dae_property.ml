(* Property: DAE slicing preserves semantics for a randomized family of
   map-style kernels (random pure expression over two loaded streams,
   stored to an output stream), at 1 and 2 pairs. *)

open Mosaic_ir
module B = Builder
module Dae = Mosaic_compiler.Dae
module Interp = Mosaic_trace.Interp

(* Expression tree over the two loaded values. *)
type expr =
  | X
  | Y
  | Const of float
  | Add of expr * expr
  | Mul of expr * expr
  | Sub of expr * expr
  | Maxe of expr * expr

let arb_expr =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, return X);
        (3, return Y);
        (2, map (fun f -> Const (float_of_int f /. 4.0)) (int_range (-8) 8));
      ]
  in
  let node self n =
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
          (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
          (1, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
          (1, map2 (fun a b -> Maxe (a, b)) (self (n / 2)) (self (n / 2)));
        ]
  in
  QCheck.make (sized_size (QCheck.Gen.int_range 1 6) (fix node))

let rec eval_expr x y = function
  | X -> x
  | Y -> y
  | Const c -> c
  | Add (a, b) -> eval_expr x y a +. eval_expr x y b
  | Mul (a, b) -> eval_expr x y a *. eval_expr x y b
  | Sub (a, b) -> eval_expr x y a -. eval_expr x y b
  | Maxe (a, b) -> Float.max (eval_expr x y a) (eval_expr x y b)

let rec build_expr b x y = function
  | X -> x
  | Y -> y
  | Const c -> B.fimm c
  | Add (l, r) -> B.fadd b (build_expr b x y l) (build_expr b x y r)
  | Mul (l, r) -> B.fmul b (build_expr b x y l) (build_expr b x y r)
  | Sub (l, r) -> B.fsub b (build_expr b x y l) (build_expr b x y r)
  | Maxe (l, r) ->
      let lv = build_expr b x y l and rv = build_expr b x y r in
      B.select b (B.fcmp b Op.Gt lv rv) lv rv

let n_elems = 24

let build_kernel e =
  let prog = Program.create () in
  let ga = Program.alloc prog "a" ~elems:n_elems ~elem_size:4 in
  let gb = Program.alloc prog "b" ~elems:n_elems ~elem_size:4 in
  let gout = Program.alloc prog "out" ~elems:n_elems ~elem_size:4 in
  let f =
    B.define prog "map2" ~nparams:1 (fun b ->
        let n = B.param b 0 in
        let per = B.sdiv b (B.sub b (B.add b n B.ntiles) (B.imm 1)) B.ntiles in
        let lo = B.mul b B.tid per in
        let want = B.add b lo per in
        let hi = B.select b (B.icmp b Op.Lt n want) n want in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let x = B.load b ~size:4 (B.elem b ga i) in
            let y = B.load b ~size:4 (B.elem b gb i) in
            B.store b ~size:4 ~addr:(B.elem b gout i) (build_expr b x y e));
        B.ret b ())
  in
  (prog, ga, gb, gout, f)

let run_sliced e ~pairs =
  let prog, ga, gb, gout, f = build_kernel e in
  let info = Dae.slice f in
  Program.add_func prog info.Dae.access;
  Program.add_func prog info.Dae.execute;
  Validate.check_exn prog;
  let args = [ Value.of_int n_elems ] in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then "map2_access" else "map2_execute"), args))
  in
  let it = Interp.create_hetero prog ~label:"map2-dae" ~tiles:spec in
  let xs = Array.init n_elems (fun i -> float_of_int i /. 3.0) in
  let ys = Array.init n_elems (fun i -> float_of_int (n_elems - i) /. 5.0) in
  Array.iteri (fun i v -> Interp.poke_global it ga i (Value.of_float v)) xs;
  Array.iteri (fun i v -> Interp.poke_global it gb i (Value.of_float v)) ys;
  let _ = Interp.run it in
  Array.init n_elems (fun i ->
      ( Value.to_float (Interp.peek_global it gout i),
        eval_expr xs.(i) ys.(i) e ))

let close (got, want) = Float.abs (got -. want) <= 1e-6 +. (1e-6 *. Float.abs want)

let prop_dae_equivalence pairs =
  QCheck.Test.make
    ~name:(Printf.sprintf "DAE slicing preserves semantics (%d pairs)" pairs)
    ~count:40 arb_expr
    (fun e -> Array.for_all close (run_sliced e ~pairs))

let suite =
  [
    ( "compiler.dae-property",
      [
        QCheck_alcotest.to_alcotest (prop_dae_equivalence 1);
        QCheck_alcotest.to_alcotest (prop_dae_equivalence 2);
      ] );
  ]
