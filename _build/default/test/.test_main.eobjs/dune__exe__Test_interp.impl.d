test/test_interp.ml: Alcotest Array Builder Func Instr Int64 Mosaic_ir Mosaic_trace Op Program QCheck QCheck_alcotest Stdlib Value
