test/test_mao.ml: Alcotest List Mosaic_tile QCheck QCheck_alcotest
