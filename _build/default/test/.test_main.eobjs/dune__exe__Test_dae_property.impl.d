test/test_dae_property.ml: Array Builder Float Mosaic_compiler Mosaic_ir Mosaic_trace Op Printf Program QCheck QCheck_alcotest Validate Value
