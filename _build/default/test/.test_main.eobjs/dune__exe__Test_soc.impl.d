test/test_soc.ml: Alcotest Array Float List Mosaic Mosaic_baseline Mosaic_memory Mosaic_tile Mosaic_trace Mosaic_workloads Printf String
