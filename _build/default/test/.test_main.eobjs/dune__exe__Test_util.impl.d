test/test_util.ml: Alcotest Array Bounded_queue Float Fun Gen Int_vec List Mosaic_util Option Pqueue QCheck QCheck_alcotest Rng Stats String Table
