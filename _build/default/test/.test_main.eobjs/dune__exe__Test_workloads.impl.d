test/test_workloads.ml: Alcotest Array Filename Fun List Mosaic_compiler Mosaic_ir Mosaic_trace Mosaic_workloads Printf Sys
