test/test_presets.ml: Alcotest Float List Mosaic Mosaic_memory Mosaic_tile Option String
