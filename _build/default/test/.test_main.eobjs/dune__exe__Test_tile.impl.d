test/test_tile.ml: Alcotest Array Builder Mosaic Mosaic_ir Mosaic_tile Mosaic_trace Mosaic_workloads Op Program
