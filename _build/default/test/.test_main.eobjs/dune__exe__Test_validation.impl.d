test/test_validation.ml: Alcotest Mosaic Mosaic_memory Mosaic_tile Mosaic_workloads Printf
