test/test_minic.ml: Alcotest Array Float Int64 Mosaic Mosaic_frontend Mosaic_ir Mosaic_tile Mosaic_trace Printf Program QCheck QCheck_alcotest Value
