test/test_accel.ml: Alcotest Float List Mosaic_accel Mosaic_ir Value
