test/test_compiler.ml: Alcotest Array Builder Float Func Instr List Mosaic_compiler Mosaic_ir Mosaic_trace Op Program Validate Value
