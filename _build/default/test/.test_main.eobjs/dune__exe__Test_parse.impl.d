test/test_parse.ml: Alcotest Array Builder Format Func Mosaic_ir Mosaic_trace Mosaic_workloads Op Parse Pretty Program Value
