test/test_memory.ml: Alcotest Array List Mosaic_memory Mosaic_util QCheck QCheck_alcotest Stdlib
