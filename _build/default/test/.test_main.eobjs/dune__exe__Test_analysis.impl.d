test/test_analysis.ml: Alcotest Array Builder List Mosaic_ir Mosaic_trace Mosaic_util Mosaic_workloads Program QCheck QCheck_alcotest
