test/test_extensions.ml: Alcotest Array Builder Bytes Instr List Mosaic Mosaic_ir Mosaic_tile Mosaic_trace Mosaic_workloads Op Program QCheck QCheck_alcotest Value
