test/test_baseline.ml: Alcotest List Mosaic Mosaic_baseline Mosaic_tile Mosaic_trace Mosaic_workloads
