test/test_ir.ml: Alcotest Array Builder Eval Format Func Instr List Mosaic_ir Op Pretty Printf Program String Validate Value
