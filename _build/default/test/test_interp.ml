(* Tests for the trace-generating interpreter. *)

open Mosaic_ir
module B = Builder
module Interp = Mosaic_trace.Interp
module Trace = Mosaic_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let single_tile prog kernel args =
  Interp.create prog ~kernel ~ntiles:1 ~args

(* --- arithmetic semantics --- *)

let test_arith_result () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "k" ~nparams:2 (fun b ->
        let x = B.param b 0 and y = B.param b 1 in
        let v = B.add b (B.mul b x y) (B.imm 5) in
        B.store b ~addr:(B.elem b out (B.imm 0)) v;
        B.ret b ())
  in
  let it = single_tile p "k" [ Value.of_int 6; Value.of_int 7 ] in
  let _ = Interp.run it in
  checki "6*7+5" 47 (Value.to_int (Interp.peek_global it out 0))

let test_float_math () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:2 ~elem_size:8 in
  let _ =
    B.define p "k" ~nparams:1 (fun b ->
        let x = B.param b 0 in
        B.store b ~addr:(B.elem b out (B.imm 0)) (B.math1 b Op.Sqrt x);
        B.store b ~addr:(B.elem b out (B.imm 1))
          (B.fdiv b x (B.fimm 4.0));
        B.ret b ())
  in
  let it = single_tile p "k" [ Value.of_float 16.0 ] in
  let _ = Interp.run it in
  checkf "sqrt" 4.0 (Value.to_float (Interp.peek_global it out 0));
  checkf "fdiv" 4.0 (Value.to_float (Interp.peek_global it out 1))

let test_select_and_casts () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:3 ~elem_size:8 in
  let _ =
    B.define p "k" ~nparams:0 (fun b ->
        B.store b ~addr:(B.elem b out (B.imm 0))
          (B.select b (B.icmp b Op.Lt (B.imm 1) (B.imm 2)) (B.imm 10) (B.imm 20));
        B.store b ~addr:(B.elem b out (B.imm 1)) (B.sitofp b (B.imm 3));
        B.store b ~addr:(B.elem b out (B.imm 2)) (B.fptosi b (B.fimm 9.9));
        B.ret b ())
  in
  let it = single_tile p "k" [] in
  let _ = Interp.run it in
  checki "select" 10 (Value.to_int (Interp.peek_global it out 0));
  checkf "sitofp" 3.0 (Value.to_float (Interp.peek_global it out 1));
  checki "fptosi" 9 (Value.to_int (Interp.peek_global it out 2))

(* --- control flow + traces --- *)

let loop_prog n =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "sum" ~nparams:1 (fun b ->
        let acc = B.var b (B.imm 0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            B.assign b ~var:acc (B.add b acc i));
        B.store b ~addr:(B.elem b out (B.imm 0)) acc;
        B.ret b ())
  in
  (p, out, [ Value.of_int n ])

let test_loop_sum () =
  let p, out, args = loop_prog 10 in
  let it = single_tile p "sum" args in
  let _ = Interp.run it in
  checki "sum 0..9" 45 (Value.to_int (Interp.peek_global it out 0))

let test_control_trace_shape () =
  let p, _, args = loop_prog 3 in
  let it = single_tile p "sum" args in
  let trace = Interp.run it in
  let tt = trace.Trace.tiles.(0) in
  (* entry, then header/body alternation 3 times, then header + exit *)
  checki "first block is entry" 0 tt.Trace.bb_path.(0);
  checkb "path length sane" true (Array.length tt.Trace.bb_path >= 8);
  checki "dyn instrs recorded" tt.Trace.dyn_instrs
    (Array.fold_left
       (fun acc bid ->
         let f = Program.func_exn p "sum" in
         acc + Array.length (Func.block f bid).Func.instrs)
       0 tt.Trace.bb_path)

let test_mem_trace_addresses () =
  let p = Program.create () in
  let arr = Program.alloc p "arr" ~elems:8 ~elem_size:4 in
  let f =
    B.define p "touch" ~nparams:0 (fun b ->
        B.for_ b ~from:(B.imm 0) ~to_:(B.imm 8) (fun i ->
            B.store b ~size:4 ~addr:(B.elem b arr i) i);
        B.ret b ())
  in
  let it = single_tile p "touch" [] in
  let trace = Interp.run it in
  let tt = trace.Trace.tiles.(0) in
  (* find the store instruction's address stream *)
  let store_id =
    let found = ref (-1) in
    Array.iter
      (fun (blk : Func.block) ->
        Array.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with Op.Store _ -> found := i.Instr.id | _ -> ())
          blk.Func.instrs)
      f.Func.blocks;
    !found
  in
  let addrs = tt.Trace.mem_addrs.(store_id) in
  checki "eight stores" 8 (Array.length addrs);
  Array.iteri
    (fun k a -> checki "sequential addresses" (arr.Program.base + (4 * k)) a)
    addrs

(* --- SPMD --- *)

let test_spmd_tid_ntiles () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:4 ~elem_size:8 in
  let _ =
    B.define p "who" ~nparams:0 (fun b ->
        B.store b ~addr:(B.elem b out B.tid) (B.mul b B.tid B.ntiles);
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"who" ~ntiles:4 ~args:[] in
  let _ = Interp.run it in
  for tid = 0 to 3 do
    checki "tid*ntiles" (tid * 4) (Value.to_int (Interp.peek_global it out tid))
  done

let test_atomics_across_tiles () =
  let p = Program.create () in
  let counter = Program.alloc p "counter" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "count" ~nparams:1 (fun b ->
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun _ ->
            ignore
              (B.atomic b Op.Rmw_add ~addr:(B.elem b counter (B.imm 0)) (B.imm 1)));
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"count" ~ntiles:3 ~args:[ Value.of_int 100 ] in
  let _ = Interp.run it in
  checki "300 increments" 300 (Value.to_int (Interp.peek_global it counter 0))

(* --- channels --- *)

let test_send_recv_pipeline () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "pipe" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 10) (fun i ->
                B.send b ~chan:0 ~dst:(B.imm 1) i))
          (fun () ->
            let acc = B.var b (B.imm 0) in
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 10) (fun _ ->
                B.assign b ~var:acc (B.add b acc (B.recv b ~chan:0)));
            B.store b ~addr:(B.elem b out (B.imm 0)) acc);
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"pipe" ~ntiles:2 ~args:[] in
  let trace = Interp.run it in
  checki "sum received" 45 (Value.to_int (Interp.peek_global it out 0));
  (* send destinations recorded in the trace *)
  let sends =
    Array.fold_left
      (fun acc d -> acc + Array.length d)
      0 trace.Trace.tiles.(0).Trace.send_dsts
  in
  checki "ten sends traced" 10 sends

let test_load_send_store_recv () =
  let p = Program.create () in
  let src = Program.alloc p "src" ~elems:4 ~elem_size:8 in
  let dst = Program.alloc p "dst" ~elems:4 ~elem_size:8 in
  let _ =
    B.define p "dae" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            (* access tile: push loads to tile 1, stores come back *)
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 4) (fun i ->
                B.load_send b ~chan:0 ~dst:(B.imm 1) (B.elem b src i);
                B.store_recv b ~chan:1 ~addr:(B.elem b dst i) ()))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 4) (fun _ ->
                let v = B.recv b ~chan:0 in
                B.send b ~chan:1 ~dst:(B.imm 0) (B.add b v (B.imm 100))));
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"dae" ~ntiles:2 ~args:[] in
  for i = 0 to 3 do
    Interp.poke_global it src i (Value.of_int (i * 11))
  done;
  let _ = Interp.run it in
  for i = 0 to 3 do
    checki "value round-trip" ((i * 11) + 100)
      (Value.to_int (Interp.peek_global it dst i))
  done

let test_atomic_store_recv () =
  let p = Program.create () in
  let acc = Program.alloc p "acc" ~elems:1 ~elem_size:8 in
  let _ =
    B.define p "k" ~nparams:0 (fun b ->
        B.if_else b
          (B.icmp b Op.Eq B.tid (B.imm 0))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 5) (fun _ ->
                B.store_recv b ~chan:0 ~rmw:Op.Rmw_add
                  ~addr:(B.elem b acc (B.imm 0)) ()))
          (fun () ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm 5) (fun i ->
                B.send b ~chan:0 ~dst:(B.imm 0) i));
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"k" ~ntiles:2 ~args:[] in
  let _ = Interp.run it in
  checki "accumulated" 10 (Value.to_int (Interp.peek_global it acc 0))

(* --- failure modes --- *)

let test_deadlock_detection () =
  let p = Program.create () in
  let _ =
    B.define p "stuck" ~nparams:0 (fun b ->
        ignore (B.recv b ~chan:9);
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"stuck" ~ntiles:1 ~args:[] in
  checkb "deadlock raised" true
    (try
       ignore (Interp.run it);
       false
     with Interp.Deadlock _ -> true)

let test_step_limit () =
  let p = Program.create () in
  let _ =
    B.define p "forever" ~nparams:0 (fun b ->
        B.while_ b ~cond:(fun () -> B.tru) (fun () -> ());
        B.ret b ())
  in
  let it = Interp.create p ~kernel:"forever" ~ntiles:1 ~args:[] in
  checkb "limit raised" true
    (try
       ignore (Interp.run ~max_steps:10_000 it);
       false
     with Interp.Step_limit _ -> true)

let test_bad_args () =
  let p, _, _ = loop_prog 3 in
  Alcotest.check_raises "arg count"
    (Invalid_argument "Interp: sum expects 1 args, got 0") (fun () ->
      ignore (Interp.create p ~kernel:"sum" ~ntiles:1 ~args:[]))

let test_run_once () =
  let p, _, args = loop_prog 3 in
  let it = single_tile p "sum" args in
  let _ = Interp.run it in
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Interp.run: handle already consumed") (fun () ->
      ignore (Interp.run it))

let test_hetero_kernels () =
  let p = Program.create () in
  let out = Program.alloc p "out" ~elems:2 ~elem_size:8 in
  let _ =
    B.define p "a" ~nparams:0 (fun b ->
        B.store b ~addr:(B.elem b out (B.imm 0)) (B.imm 1);
        B.ret b ())
  in
  let _ =
    B.define p "b" ~nparams:0 (fun b ->
        B.store b ~addr:(B.elem b out (B.imm 1)) (B.imm 2);
        B.ret b ())
  in
  let it = Interp.create_hetero p ~label:"mix" ~tiles:[| ("a", []); ("b", []) |] in
  let trace = Interp.run it in
  checki "tile0 ran a" 1 (Value.to_int (Interp.peek_global it out 0));
  checki "tile1 ran b" 2 (Value.to_int (Interp.peek_global it out 1));
  Alcotest.(check string) "trace kernel names" "a"
    trace.Trace.tiles.(0).Trace.kernel

(* Property: random arithmetic expressions agree with OCaml evaluation. *)
let arb_expr =
  let open QCheck.Gen in
  let leaf = map (fun n -> `Imm n) (int_range (-100) 100) in
  let node self n =
    if n <= 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (2, map2 (fun a b -> `Add (a, b)) (self (n / 2)) (self (n / 2)));
          (2, map2 (fun a b -> `Sub (a, b)) (self (n / 2)) (self (n / 2)));
          (2, map2 (fun a b -> `Mul (a, b)) (self (n / 2)) (self (n / 2)));
          (1, map2 (fun a b -> `Min (a, b)) (self (n / 2)) (self (n / 2)));
        ]
  in
  QCheck.make (sized (fix node))

(* Reference semantics in Int64, matching the IR's integer width. *)
let rec eval_expr = function
  | `Imm n -> Int64.of_int n
  | `Add (a, b) -> Int64.add (eval_expr a) (eval_expr b)
  | `Sub (a, b) -> Int64.sub (eval_expr a) (eval_expr b)
  | `Mul (a, b) -> Int64.mul (eval_expr a) (eval_expr b)
  | `Min (a, b) -> Stdlib.min (eval_expr a) (eval_expr b)

let rec build_expr b = function
  | `Imm n -> B.imm n
  | `Add (x, y) -> B.add b (build_expr b x) (build_expr b y)
  | `Sub (x, y) -> B.sub b (build_expr b x) (build_expr b y)
  | `Mul (x, y) -> B.mul b (build_expr b x) (build_expr b y)
  | `Min (x, y) ->
      let xv = build_expr b x and yv = build_expr b y in
      B.select b (B.icmp b Op.Lt xv yv) xv yv

let prop_expr_agrees =
  QCheck.Test.make ~name:"interp agrees with OCaml on random expressions"
    ~count:60 arb_expr (fun e ->
      let p = Program.create () in
      let out = Program.alloc p "out" ~elems:1 ~elem_size:8 in
      let _ =
        B.define p "e" ~nparams:0 (fun b ->
            B.store b ~addr:(B.elem b out (B.imm 0)) (build_expr b e);
            B.ret b ())
      in
      let it = single_tile p "e" [] in
      let _ = Interp.run it in
      Value.to_int64 (Interp.peek_global it out 0) = eval_expr e)

let suite =
  [
    ( "interp.semantics",
      [
        Alcotest.test_case "integer arithmetic" `Quick test_arith_result;
        Alcotest.test_case "float math" `Quick test_float_math;
        Alcotest.test_case "select and casts" `Quick test_select_and_casts;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        QCheck_alcotest.to_alcotest prop_expr_agrees;
      ] );
    ( "interp.traces",
      [
        Alcotest.test_case "control trace shape" `Quick test_control_trace_shape;
        Alcotest.test_case "memory trace addresses" `Quick test_mem_trace_addresses;
      ] );
    ( "interp.spmd",
      [
        Alcotest.test_case "tid and ntiles" `Quick test_spmd_tid_ntiles;
        Alcotest.test_case "atomics across tiles" `Quick test_atomics_across_tiles;
        Alcotest.test_case "heterogeneous kernels" `Quick test_hetero_kernels;
      ] );
    ( "interp.channels",
      [
        Alcotest.test_case "send/recv pipeline" `Quick test_send_recv_pipeline;
        Alcotest.test_case "load_send + store_recv" `Quick test_load_send_store_recv;
        Alcotest.test_case "atomic store_recv" `Quick test_atomic_store_recv;
      ] );
    ( "interp.failures",
      [
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "step limit" `Quick test_step_limit;
        Alcotest.test_case "bad arg count" `Quick test_bad_args;
        Alcotest.test_case "single run" `Quick test_run_once;
      ] );
  ]
