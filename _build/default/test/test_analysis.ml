(* Tests for the Fenwick tree and trace-based characterization. *)

open Mosaic_ir
module B = Builder
module Fenwick = Mosaic_util.Fenwick
module Analysis = Mosaic_trace.Analysis
module W = Mosaic_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_fenwick_basics () =
  let t = Fenwick.create 10 in
  Fenwick.add t 0 3;
  Fenwick.add t 4 5;
  Fenwick.add t 9 2;
  checki "prefix 0" 3 (Fenwick.prefix_sum t 0);
  checki "prefix 4" 8 (Fenwick.prefix_sum t 4);
  checki "prefix all" 10 (Fenwick.prefix_sum t 9);
  checki "range" 5 (Fenwick.range_sum t ~lo:1 ~hi:5);
  checki "empty range" 0 (Fenwick.range_sum t ~lo:5 ~hi:3);
  Fenwick.add t 4 (-5);
  checki "after removal" 3 (Fenwick.prefix_sum t 8);
  Alcotest.check_raises "bounds" (Invalid_argument "Fenwick.add: out of bounds")
    (fun () -> Fenwick.add t 10 1)

let prop_fenwick_matches_array =
  QCheck.Test.make ~name:"fenwick prefix sums match a plain array" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair (int_range 0 19) (int_range (-5) 5)))
    (fun ops ->
      let t = Fenwick.create 20 in
      let arr = Array.make 20 0 in
      List.iter
        (fun (i, d) ->
          Fenwick.add t i d;
          arr.(i) <- arr.(i) + d)
        ops;
      List.for_all
        (fun i ->
          let expected = Array.fold_left ( + ) 0 (Array.sub arr 0 (i + 1)) in
          Fenwick.prefix_sum t i = expected)
        [ 0; 5; 10; 19 ])

(* A kernel that touches [n] distinct lines then re-touches them in order:
   every reuse distance equals the footprint. *)
let sweep_instance n sweeps =
  let prog = Program.create () in
  let arr = Program.alloc prog "arr" ~elems:(n * 16) ~elem_size:4 in
  let _ =
    B.define prog "sweep" ~nparams:0 (fun b ->
        B.for_ b ~from:(B.imm 0) ~to_:(B.imm sweeps) (fun _ ->
            B.for_ b ~from:(B.imm 0) ~to_:(B.imm n) (fun i ->
                ignore (B.load b ~size:4 (B.elem b arr (B.mul b i (B.imm 16))))));
        B.ret b ())
  in
  let it = Mosaic_trace.Interp.create prog ~kernel:"sweep" ~ntiles:1 ~args:[] in
  (prog, Mosaic_trace.Interp.run it)

let test_analysis_footprint_and_cold () =
  let prog, trace = sweep_instance 64 1 in
  let a = Analysis.whole prog trace in
  checki "footprint" 64 a.Analysis.footprint_lines;
  checki "all accesses cold on one sweep" 64
    (List.assoc max_int a.Analysis.reuse_hist);
  checki "mem accesses" 64 a.Analysis.mem_accesses

let test_analysis_reuse_distances () =
  let prog, trace = sweep_instance 64 3 in
  let a = Analysis.whole prog trace in
  checki "footprint stable" 64 a.Analysis.footprint_lines;
  checki "64 cold + 128 reuses" 192 a.Analysis.mem_accesses;
  (* Reuse distance of a cyclic sweep over 64 lines is 63: bucket <=64. *)
  checki "reuses land in the 64-line bucket" 128
    (List.assoc 64 a.Analysis.reuse_hist);
  (* Capacity model: a 64-line cache captures the reuses, a 32-line one
     does not. *)
  checkb "hits at 64 lines" true
    (Analysis.capacity_hit_rate a ~lines:64 > 0.6);
  checkb "thrashes at 32 lines" true
    (Analysis.capacity_hit_rate a ~lines:32 < 0.01)

let test_analysis_stride_regularity () =
  let prog, trace = sweep_instance 64 2 in
  let a = Analysis.whole prog trace in
  checkb "sequential sweep is regular" true (a.Analysis.stride_regular > 0.9);
  let inst = W.Registry.instance "tpacf" in
  let t2 = W.Runner.trace inst ~ntiles:1 in
  let a2 = Analysis.whole inst.W.Runner.program t2 in
  checkb "characterization runs on real kernels" true
    (a2.Analysis.mem_ratio > 0.0)

let test_analysis_orders_benchmarks () =
  (* Streaming stencil must look far more prefetcher-friendly than the
     pointer-chasing projection kernel. *)
  let regularity name =
    let inst = W.Registry.instance name in
    let trace = W.Runner.trace inst ~ntiles:1 in
    (Analysis.whole inst.W.Runner.program trace).Analysis.stride_regular
  in
  checkb "stencil more regular than projection" true
    (regularity "stencil" > regularity "projection")

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "fenwick basics" `Quick test_fenwick_basics;
        QCheck_alcotest.to_alcotest prop_fenwick_matches_array;
        Alcotest.test_case "footprint and cold misses" `Quick
          test_analysis_footprint_and_cold;
        Alcotest.test_case "reuse distances" `Quick test_analysis_reuse_distances;
        Alcotest.test_case "stride regularity" `Quick test_analysis_stride_regularity;
        Alcotest.test_case "orders benchmarks" `Slow test_analysis_orders_benchmarks;
      ] );
  ]
