(* Tests for accelerator models: analytic model, RTL/FPGA goldens, kinds,
   design-space exploration. *)

module Model = Mosaic_accel.Accel_model
module Rtl = Mosaic_accel.Accel_rtl
module Kinds = Mosaic_accel.Accel_kinds
module Dse = Mosaic_accel.Dse
open Mosaic_ir

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sys = Model.default_sys
let dp = { Model.plm_bytes = 64 * 1024; par_lanes = 8 }

let w ~ops ~bytes_in ~bytes_out = { Model.ops; bytes_in; bytes_out }

(* --- analytic model --- *)

let test_model_monotonic_in_work () =
  let small = Model.estimate sys dp (w ~ops:1000 ~bytes_in:4096 ~bytes_out:4096) in
  let big = Model.estimate sys dp (w ~ops:100_000 ~bytes_in:409_600 ~bytes_out:409_600) in
  checkb "more work, more cycles" true (big.Model.cycles > small.Model.cycles);
  checkb "more bytes" true (big.Model.bytes > small.Model.bytes)

let test_model_lanes_help_compute_bound () =
  let compute = w ~ops:1_000_000 ~bytes_in:4096 ~bytes_out:0 in
  let slow = Model.estimate sys { dp with Model.par_lanes = 2 } compute in
  let fast = Model.estimate sys { dp with Model.par_lanes = 32 } compute in
  checkb "lanes speed compute-bound work" true
    (fast.Model.cycles * 4 < slow.Model.cycles)

let test_model_bandwidth_bounds_streaming () =
  let streaming = w ~ops:100 ~bytes_in:1_000_000 ~bytes_out:0 in
  let est = Model.estimate sys dp streaming in
  let floor =
    int_of_float (1_000_000.0 /. sys.Model.mem_bw_bytes_per_cycle)
  in
  checkb "cannot beat the memory bandwidth" true (est.Model.cycles >= floor)

let test_model_plm_reduces_overheads () =
  let work = w ~ops:10_000 ~bytes_in:1_000_000 ~bytes_out:0 in
  let tiny = Model.estimate sys { dp with Model.plm_bytes = 4096 } work in
  let big = Model.estimate sys { dp with Model.plm_bytes = 256 * 1024 } work in
  checkb "bigger PLM, fewer chunk overheads" true (big.Model.cycles <= tiny.Model.cycles)

let test_model_energy_power () =
  let est = Model.estimate sys dp (w ~ops:10_000 ~bytes_in:65536 ~bytes_out:0) in
  checkb "power positive" true (est.Model.avg_power_w > 0.0);
  checkb "energy = power * time" true
    (Float.abs
       (est.Model.energy_j
       -. (est.Model.avg_power_w *. (float_of_int est.Model.cycles /. (sys.Model.freq_ghz *. 1e9))))
    < 1e-12)

let test_model_area_monotonic () =
  checkb "plm adds area" true
    (Model.area_um2 { dp with Model.plm_bytes = 256 * 1024 }
    > Model.area_um2 { dp with Model.plm_bytes = 4096 });
  checkb "lanes add area" true
    (Model.area_um2 { dp with Model.par_lanes = 32 }
    > Model.area_um2 { dp with Model.par_lanes = 2 })

let test_model_rejects_empty () =
  Alcotest.check_raises "empty workload"
    (Invalid_argument "Accel_model.estimate: empty workload") (fun () ->
      ignore (Model.estimate sys dp (w ~ops:0 ~bytes_in:0 ~bytes_out:0)))

let test_chunks () =
  checki "double-buffered chunks" 4
    (Model.chunks { dp with Model.plm_bytes = 8192 } (w ~ops:1 ~bytes_in:16384 ~bytes_out:0));
  checki "at least one" 1 (Model.chunks dp (w ~ops:1 ~bytes_in:1 ~bytes_out:0))

(* --- goldens --- *)

let typical = w ~ops:500_000 ~bytes_in:1_000_000 ~bytes_out:250_000

let test_rtl_close_to_model () =
  let est = Model.estimate sys dp typical in
  let rtl = Rtl.rtl_cycles sys dp typical in
  let acc = Dse.accuracy ~model:est.Model.cycles ~golden:rtl in
  checkb "model within 10% of RTL" true (acc > 0.9)

let test_fpga_slower_than_rtl () =
  let rtl = Rtl.rtl_cycles sys dp typical in
  let fpga = Rtl.fpga_cycles sys dp typical in
  checkb "fpga adds overheads" true (fpga > rtl)

let test_accuracy_helper () =
  Alcotest.(check (float 1e-9)) "symmetric" (Dse.accuracy ~model:90 ~golden:100)
    (Dse.accuracy ~model:100 ~golden:90);
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Dse.accuracy ~model:5 ~golden:5);
  Alcotest.check_raises "zero" (Invalid_argument "Dse.accuracy") (fun () ->
      ignore (Dse.accuracy ~model:0 ~golden:5))

(* --- kinds --- *)

let vi n = Value.of_int n

let test_kind_workloads () =
  let gemm = Kinds.workload "gemm" [| vi 16; vi 16; vi 16 |] in
  checki "gemm ops" (16 * 16 * 16) gemm.Model.ops;
  checki "gemm bytes out" (4 * 16 * 16) gemm.Model.bytes_out;
  let conv = Kinds.workload "conv" [| vi 3; vi 8; vi 10; vi 10; vi 3 |] in
  checki "conv ops" (10 * 10 * 8 * 3 * 3 * 3) conv.Model.ops;
  let ew = Kinds.workload "elementwise" [| vi 100 |] in
  checki "elementwise reads two operands" 800 ew.Model.bytes_in

let test_kind_errors () =
  checkb "unknown kind" true
    (try
       ignore (Kinds.workload "warp-drive" [| vi 1 |]);
       false
     with Invalid_argument _ -> true);
  checkb "missing params" true
    (try
       ignore (Kinds.workload "gemm" [| vi 4 |]);
       false
     with Invalid_argument _ -> true)

let test_kind_list_covers_registry () =
  List.iter
    (fun k ->
      let wl = Kinds.workload k [| vi 8; vi 8; vi 8; vi 8; vi 3 |] in
      checkb (k ^ " nonempty") true (wl.Model.ops > 0))
    Kinds.known_kinds

(* --- DSE --- *)

let test_dse_sweep_shape () =
  let pts =
    Dse.sweep ~kind:"gemm" ~plm_sizes:Dse.paper_plm_sizes
      ~workload_bytes:Dse.paper_workload_bytes sys
  in
  checki "4x4 grid" 16 (List.length pts);
  List.iter
    (fun (pt : Dse.point) ->
      checkb "cycles positive" true (pt.Dse.model_cycles > 0);
      checkb "area positive" true (pt.Dse.area_um2 > 0.0))
    pts

let test_dse_accuracy_bands () =
  List.iter
    (fun kind ->
      let pts =
        Dse.sweep ~kind ~plm_sizes:Dse.paper_plm_sizes
          ~workload_bytes:Dse.paper_workload_bytes sys
      in
      let vs_rtl, vs_fpga = Dse.mean_accuracy pts in
      checkb (kind ^ ": rtl accuracy high") true (vs_rtl > 0.9);
      checkb (kind ^ ": fpga accuracy lower than rtl") true (vs_fpga < vs_rtl);
      checkb (kind ^ ": fpga accuracy still decent") true (vs_fpga > 0.75))
    [ "gemm"; "histo"; "elementwise" ]

let test_dse_gemm_blocking () =
  (* Bigger PLM means better blocking for GEMM: fewer cycles at a fixed
     workload. *)
  let pts =
    Dse.sweep ~kind:"gemm" ~plm_sizes:[ 4 * 1024; 256 * 1024 ]
      ~workload_bytes:[ 4 * 1024 * 1024 ] sys
  in
  match pts with
  | [ small; big ] ->
      checkb "256KB PLM beats 4KB on 4MB gemm" true
        (big.Dse.model_cycles < small.Dse.model_cycles)
  | _ -> Alcotest.fail "expected two points"

let suite =
  [
    ( "accel.model",
      [
        Alcotest.test_case "monotonic in work" `Quick test_model_monotonic_in_work;
        Alcotest.test_case "lanes help compute" `Quick test_model_lanes_help_compute_bound;
        Alcotest.test_case "bandwidth floor" `Quick test_model_bandwidth_bounds_streaming;
        Alcotest.test_case "PLM amortizes overheads" `Quick test_model_plm_reduces_overheads;
        Alcotest.test_case "energy and power" `Quick test_model_energy_power;
        Alcotest.test_case "area monotonic" `Quick test_model_area_monotonic;
        Alcotest.test_case "rejects empty work" `Quick test_model_rejects_empty;
        Alcotest.test_case "chunking" `Quick test_chunks;
      ] );
    ( "accel.goldens",
      [
        Alcotest.test_case "model vs RTL" `Quick test_rtl_close_to_model;
        Alcotest.test_case "FPGA overheads" `Quick test_fpga_slower_than_rtl;
        Alcotest.test_case "accuracy helper" `Quick test_accuracy_helper;
      ] );
    ( "accel.kinds",
      [
        Alcotest.test_case "workload mapping" `Quick test_kind_workloads;
        Alcotest.test_case "errors" `Quick test_kind_errors;
        Alcotest.test_case "registry coverage" `Quick test_kind_list_covers_registry;
      ] );
    ( "accel.dse",
      [
        Alcotest.test_case "sweep shape" `Quick test_dse_sweep_shape;
        Alcotest.test_case "accuracy bands" `Quick test_dse_accuracy_bands;
        Alcotest.test_case "gemm blocking" `Quick test_dse_gemm_blocking;
      ] );
  ]
