(* Sanity over the shipped system presets: geometries validate, tables are
   populated, and the documented relationships hold. *)

module Presets = Mosaic.Presets
module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module TC = Mosaic_tile.Tile_config

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let validate_hierarchy (h : Hierarchy.config) =
  ignore (Cache.validate_config h.Hierarchy.l1);
  Option.iter (fun c -> ignore (Cache.validate_config c)) h.Hierarchy.l2;
  Option.iter (fun c -> ignore (Cache.validate_config c)) h.Hierarchy.llc;
  (* creating the hierarchy exercises the DRAM configs too *)
  ignore (Hierarchy.create ~ntiles:2 h)

let test_hierarchies_valid () =
  validate_hierarchy Presets.xeon_hierarchy;
  validate_hierarchy Presets.xeon_scaled_hierarchy;
  validate_hierarchy Presets.dae_hierarchy

let test_xeon_capacities () =
  let h = Presets.xeon_hierarchy in
  checki "L1 32KB" (32 * 1024) h.Hierarchy.l1.Cache.size_bytes;
  (match h.Hierarchy.l2 with
  | Some l2 -> checki "L2 2MB" (2 * 1024 * 1024) l2.Cache.size_bytes
  | None -> Alcotest.fail "xeon has a private L2");
  match h.Hierarchy.llc with
  | Some llc -> checki "LLC 20MB" (20 * 1024 * 1024) llc.Cache.size_bytes
  | None -> Alcotest.fail "xeon has an LLC"

let test_scaled_smaller () =
  let full = Presets.xeon_hierarchy and scaled = Presets.xeon_scaled_hierarchy in
  checkb "scaled L1 smaller" true
    (scaled.Hierarchy.l1.Cache.size_bytes < full.Hierarchy.l1.Cache.size_bytes)

let test_core_presets () =
  checki "Table II OoO width" 4 TC.out_of_order.TC.issue_width;
  checki "Table II OoO window" 128 TC.out_of_order.TC.window_size;
  checki "InO single issue" 1 TC.in_order.TC.issue_width;
  checkb "InO issues in order" true TC.in_order.TC.in_order;
  checkb "OoO out of order" false TC.out_of_order.TC.in_order;
  checkb "areas match Table II" true
    (TC.out_of_order.TC.area_mm2 = 8.44 && TC.in_order.TC.area_mm2 = 1.01);
  checkb "8 InO ~ area of 1 OoO" true
    (Float.abs ((8.0 *. TC.in_order.TC.area_mm2) -. TC.out_of_order.TC.area_mm2)
    < 0.5)

let test_tables_populated () =
  checkb "table1 rows" true (List.length Presets.table1_rows >= 6);
  checkb "table2 rows" true (List.length Presets.table2_rows >= 8);
  List.iter
    (fun (k, v) -> checkb k true (String.length v > 0))
    (Presets.table1_rows @ Presets.table2_rows)

let test_accel_tile_preset () =
  let a = TC.pre_rtl_accelerator ~live_dbb_limit:4 () in
  checkb "live dbb limit set" true (a.TC.live_dbb_limit = Some 4);
  checkb "perfect speculation" true (a.TC.branch = Mosaic_tile.Branch.Perfect);
  checkb "alias speculation" true a.TC.perfect_alias

let suite =
  [
    ( "presets",
      [
        Alcotest.test_case "hierarchies validate" `Quick test_hierarchies_valid;
        Alcotest.test_case "xeon capacities" `Quick test_xeon_capacities;
        Alcotest.test_case "scaled hierarchy smaller" `Quick test_scaled_smaller;
        Alcotest.test_case "core presets" `Quick test_core_presets;
        Alcotest.test_case "tables populated" `Quick test_tables_populated;
        Alcotest.test_case "accelerator tile preset" `Quick test_accel_tile_preset;
      ] );
  ]
