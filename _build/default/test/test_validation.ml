(* End-to-end validation of the memory system against its configured
   parameters, using the microbenchmark probes: the simulator must
   reproduce the latencies and bandwidths it was configured with. *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module TC = Mosaic_tile.Tile_config
module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module Dram = Mosaic_memory.Dram

let checkb = Alcotest.(check bool)

(* A bare hierarchy with known numbers: 1-cycle 8KB L1, no L2/LLC, DRAM with
   150-cycle latency and 8 lines per 64-cycle epoch (= 8 B/cycle). *)
let lab_hierarchy =
  {
    Hierarchy.l1 =
      {
        Cache.size_bytes = 8 * 1024;
        line_size = 64;
        assoc = 8;
        latency = 1;
        mshr_size = 16;
        prefetch = None;
      };
    l2 = None;
    llc = None;
    dram =
      Hierarchy.Simple
        { Dram.min_latency = 150; lines_per_epoch = 8; epoch_cycles = 64 };
    coherence = None;
  }

let lab_soc = Soc.with_hierarchy Mosaic.Presets.dae_soc lab_hierarchy

let run inst =
  let trace = W.Runner.trace inst ~ntiles:1 in
  Soc.run_homogeneous lab_soc ~program:inst.W.Runner.program ~trace
    ~tile_config:TC.out_of_order

let test_pointer_chase_sees_latency () =
  (* 4096 nodes x 8B = 32KB, 4x the L1: most hops miss to DRAM. The chain
     is fully dependent, so cycles/step must approach the DRAM latency. *)
  let steps = 2000 in
  let r = run (W.Micro.pointer_chase ~nodes:4096 ~steps ()) in
  let per_step = float_of_int r.Soc.cycles /. float_of_int steps in
  checkb
    (Printf.sprintf "latency-bound chain (%.0f cyc/step, expect ~150)" per_step)
    true
    (per_step > 100.0 && per_step < 220.0)

let test_pointer_chase_in_cache_is_fast () =
  (* 64 nodes fit in L1: each hop costs ~the L1 latency + ALU work. *)
  let steps = 2000 in
  let r = run (W.Micro.pointer_chase ~nodes:64 ~steps ()) in
  let per_step = float_of_int r.Soc.cycles /. float_of_int steps in
  checkb
    (Printf.sprintf "cache-resident chain (%.1f cyc/step)" per_step)
    true (per_step < 12.0)

let test_stream_sees_bandwidth () =
  (* 64K elements x 8B = 512KB streamed once. The configured DRAM bandwidth
     is 8 B/cycle, so the kernel cannot beat bytes/8 cycles. Without a
     prefetcher the 128-entry window covers ~16 elements = 2 concurrent
     line misses, so the expected pace is ~latency/2 per line
     (~9.4 cyc/elem); assert that window-limited regime, not peak. *)
  let elems = 64 * 1024 in
  let r = run (W.Micro.stream ~elems ()) in
  let bytes = 8 * elems in
  let bw_floor = bytes / 8 in
  checkb "cannot beat configured bandwidth" true (r.Soc.cycles >= bw_floor);
  let per_elem = float_of_int r.Soc.cycles /. float_of_int elems in
  checkb
    (Printf.sprintf "window-limited streaming pace (%.1f cyc/elem)" per_elem)
    true
    (per_elem > 6.0 && per_elem < 14.0)

let test_random_access_mlp () =
  (* Independent random misses overlap up to the 16-entry MSHR: throughput
     must beat the dependent chain by a wide margin. *)
  let accesses = 2000 in
  let chase = run (W.Micro.pointer_chase ~nodes:4096 ~steps:accesses ()) in
  let rand = run (W.Micro.random_access ~elems:4096 ~accesses ()) in
  checkb "independent misses overlap" true
    (rand.Soc.cycles * 3 < chase.Soc.cycles)

let test_prefetcher_closes_stream_gap () =
  (* With an L1 stream prefetcher, the streaming probe should get closer to
     the bandwidth floor than without. *)
  let elems = 32 * 1024 in
  let with_pf =
    let h =
      {
        lab_hierarchy with
        Hierarchy.l1 =
          {
            lab_hierarchy.Hierarchy.l1 with
            Cache.prefetch = Some Mosaic_memory.Prefetcher.default_config;
          };
      }
    in
    let inst = W.Micro.stream ~elems () in
    let trace = W.Runner.trace inst ~ntiles:1 in
    (Soc.run_homogeneous
       (Soc.with_hierarchy Mosaic.Presets.dae_soc h)
       ~program:inst.W.Runner.program ~trace ~tile_config:TC.out_of_order)
      .Soc.cycles
  in
  let without = (run (W.Micro.stream ~elems ())).Soc.cycles in
  checkb "prefetcher helps streaming" true (with_pf < without)

let suite =
  [
    ( "validation.memory-system",
      [
        Alcotest.test_case "pointer chase ~ DRAM latency" `Quick
          test_pointer_chase_sees_latency;
        Alcotest.test_case "resident chase ~ L1 latency" `Quick
          test_pointer_chase_in_cache_is_fast;
        Alcotest.test_case "stream ~ DRAM bandwidth" `Quick
          test_stream_sees_bandwidth;
        Alcotest.test_case "random access exploits MLP" `Quick
          test_random_access_mlp;
        Alcotest.test_case "prefetcher closes stream gap" `Quick
          test_prefetcher_closes_stream_gap;
      ] );
  ]
