lib/memory/cache.ml: Array Hashtbl List Option Prefetcher Stdlib
