lib/memory/cache.mli: Prefetcher
