lib/memory/dram.mli:
