lib/memory/dram.ml: Array Hashtbl Option Stdlib
