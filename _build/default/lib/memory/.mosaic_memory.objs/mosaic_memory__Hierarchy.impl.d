lib/memory/hierarchy.ml: Array Cache Dram Hashtbl List Option Prefetcher Printf Stdlib
