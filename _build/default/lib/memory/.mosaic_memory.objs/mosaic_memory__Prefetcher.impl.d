lib/memory/prefetcher.ml: Array List Seq Stdlib
