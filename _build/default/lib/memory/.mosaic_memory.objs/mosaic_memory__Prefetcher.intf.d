lib/memory/prefetcher.mli:
