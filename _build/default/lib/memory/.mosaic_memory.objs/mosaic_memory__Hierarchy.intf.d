lib/memory/hierarchy.mli: Cache Dram
