type config = {
  table_size : int;
  degree : int;
  distance : int;
  min_confidence : int;
}

let default_config =
  { table_size = 16; degree = 4; distance = 4; min_confidence = 2 }

type stream = {
  mutable last : int;
  mutable stride : int;
  mutable confidence : int;
  mutable lru : int;
}

type t = { cfg : config; streams : stream array; mutable tick : int }

let create cfg =
  {
    cfg;
    streams =
      Array.init (Stdlib.max cfg.table_size 1) (fun _ ->
          { last = -1; stride = 0; confidence = 0; lru = 0 });
    tick = 0;
  }

let active_streams t =
  Array.fold_left
    (fun acc s -> if s.confidence >= t.cfg.min_confidence then acc + 1 else acc)
    0 t.streams

(* A stream matches when the new access continues its stride, or is a
   plausible restart near its last address. *)
let observe t ~addr ~line_size =
  t.tick <- t.tick + 1;
  let cfg = t.cfg in
  let matching =
    Array.to_seq t.streams
    |> Seq.filter (fun s ->
           s.last >= 0 && s.stride <> 0 && addr = s.last + s.stride)
    |> Seq.uncons
  in
  match matching with
  | Some (s, _) ->
      s.last <- addr;
      s.confidence <- s.confidence + 1;
      s.lru <- t.tick;
      if s.confidence >= cfg.min_confidence then
        List.init cfg.degree (fun i ->
            let target = addr + (s.stride * (cfg.distance + i)) in
            target land lnot (line_size - 1))
      else []
  | None ->
      (* Try to pair with a stream whose last access is close: learn the
         stride. Otherwise steal the LRU entry. *)
      let near =
        Array.to_seq t.streams
        |> Seq.filter (fun s ->
               s.last >= 0 && addr <> s.last && abs (addr - s.last) <= 8 * line_size)
        |> Seq.uncons
      in
      (match near with
      | Some (s, _) ->
          s.stride <- addr - s.last;
          s.last <- addr;
          s.confidence <- 1;
          s.lru <- t.tick
      | None ->
          let victim =
            Array.fold_left
              (fun acc s -> if s.lru < acc.lru then s else acc)
              t.streams.(0) t.streams
          in
          victim.last <- addr;
          victim.stride <- 0;
          victim.confidence <- 0;
          victim.lru <- t.tick);
      []
