(** Compact on-disk encodings for traces (§VI-B).

    The paper reports multi-GB memory traces and ~1 GB control traces as the
    cost of accurate dynamic modeling. Two domain-specific encoders recover
    most of that space:

    - control-flow paths are dominated by loop repetition: a period-aware
      run-length code stores [(period, repetitions)] instead of every block
      id;
    - address streams are dominated by strides: zig-zag delta varints store
      a few bytes per access instead of eight.

    Both are exact (lossless) and covered by round-trip tests. *)

(** Encode a control-flow path (block ids). *)
val encode_control : int array -> Bytes.t

val decode_control : Bytes.t -> int array

(** Encode one instruction's address stream. *)
val encode_addrs : int array -> Bytes.t

val decode_addrs : Bytes.t -> int array

(** Whole-trace compressed footprint: (control bytes, memory bytes). *)
val compressed_bytes : Trace.t -> int * int
